// Figure 1: "The number of firmware can be successfully emulated."
//
// Reproduces the paper's empirical study (§II-A): a corpus of 6,529
// firmware images (2009-2016) is pushed through a FIRMADYNE-like
// full-system emulation attempt; only a small fraction boots with
// working networking. The paper's headline numbers: <670 emulable,
// 5,859 not; >65% of images don't even unpack (§VI).
#include <cstdio>

#include "src/emu/corpus.h"
#include "src/emu/firmadyne_sim.h"
#include "src/obs/bench.h"
#include "src/report/table.h"
#include "src/util/strings.h"

using namespace dtaint;

int main(int argc, char** argv) {
  bench::Harness harness("fig1_emulation", argc, argv);
  std::printf("=== Figure 1: firmware emulation study "
              "(FIRMADYNE-like, synthetic corpus) ===\n\n");

  CorpusConfig config;
  std::vector<CorpusEntry> corpus;
  std::map<uint16_t, YearTally> tallies;
  harness.Run("emulation_study", [&](bench::Rep& rep) {
    corpus = GenerateCorpus(config);
    tallies = RunEmulationStudy(corpus);
    rep.Value("images", static_cast<double>(corpus.size()));
  });

  TextTable table({"Year", "Images", "Emulated", "Failed", "Emul.%",
                   "unpack-fail", "peripheral", "nvram", "net-init"});
  int total = 0, emulated = 0, unpack_failed = 0;
  for (const auto& [year, tally] : tallies) {
    total += tally.total;
    emulated += tally.emulated;
    auto count = [&](EmulationOutcome o) {
      auto it = tally.by_outcome.find(o);
      return it == tally.by_outcome.end() ? 0 : it->second;
    };
    unpack_failed += count(EmulationOutcome::kUnpackFailed);
    table.AddRow({std::to_string(year), std::to_string(tally.total),
                  std::to_string(tally.emulated),
                  std::to_string(tally.total - tally.emulated),
                  FmtDouble(100.0 * tally.emulated / tally.total, 1),
                  std::to_string(count(EmulationOutcome::kUnpackFailed)),
                  std::to_string(count(EmulationOutcome::kPeripheralFault)),
                  std::to_string(count(EmulationOutcome::kNvramFault)),
                  std::to_string(
                      count(EmulationOutcome::kNetworkInitFailed))});
  }
  std::printf("%s\n", table.Render().c_str());

  // ASCII histogram in the figure's style: gray = failed, red(#) = ok.
  std::printf("per-year histogram ('.' = 20 failed, '#' = 20 emulated):\n");
  for (const auto& [year, tally] : tallies) {
    std::string bar;
    for (int i = 0; i < (tally.total - tally.emulated) / 20; ++i)
      bar += '.';
    for (int i = 0; i < tally.emulated / 20 + 1; ++i) bar += '#';
    std::printf("  %d |%s\n", year, bar.c_str());
  }

  std::printf("\nTotals: %d images; %d emulable (%.1f%%), %d not; "
              "%d (%.1f%%) failed to unpack\n",
              total, emulated, 100.0 * emulated / total, total - emulated,
              unpack_failed, 100.0 * unpack_failed / total);
  std::printf("Paper:  6,529 images; <670 emulable (~10%%); 5,859 not; "
              ">65%% failed to unpack (Section VI)\n");
  // The corpus is seeded, so these tallies are deterministic counts
  // the regression gate can hold exactly.
  harness.AddExternalRun(
      "totals", 0.0,
      {{"images", static_cast<double>(total)},
       {"emulated", static_cast<double>(emulated)},
       {"unpack_failed", static_cast<double>(unpack_failed)}});
  return harness.Finish(true);
}
