// Figure 1: "The number of firmware can be successfully emulated."
//
// Reproduces the paper's empirical study (§II-A): a corpus of 6,529
// firmware images (2009-2016) is pushed through a FIRMADYNE-like
// full-system emulation attempt; only a small fraction boots with
// working networking. The paper's headline numbers: <670 emulable,
// 5,859 not; >65% of images don't even unpack (§VI).
#include <cstdio>

#include "src/emu/corpus.h"
#include "src/emu/firmadyne_sim.h"
#include "src/obs/bench.h"
#include "src/obs/events.h"
#include "src/report/table.h"
#include "src/util/strings.h"

using namespace dtaint;

int main(int argc, char** argv) {
  bench::Harness harness("fig1_emulation", argc, argv);
  std::printf("=== Figure 1: firmware emulation study "
              "(FIRMADYNE-like, synthetic corpus) ===\n\n");

  CorpusConfig config;
  std::vector<CorpusEntry> corpus;
  std::map<uint16_t, YearTally> tallies;
  harness.Run("emulation_study", [&](bench::Rep& rep) {
    corpus = GenerateCorpus(config);
    tallies = RunEmulationStudy(corpus);
    rep.Value("images", static_cast<double>(corpus.size()));
  });

  TextTable table({"Year", "Images", "Emulated", "Failed", "Emul.%",
                   "unpack-fail", "peripheral", "nvram", "net-init"});
  int total = 0, emulated = 0, unpack_failed = 0;
  for (const auto& [year, tally] : tallies) {
    total += tally.total;
    emulated += tally.emulated;
    auto count = [&](EmulationOutcome o) {
      auto it = tally.by_outcome.find(o);
      return it == tally.by_outcome.end() ? 0 : it->second;
    };
    unpack_failed += count(EmulationOutcome::kUnpackFailed);
    table.AddRow({std::to_string(year), std::to_string(tally.total),
                  std::to_string(tally.emulated),
                  std::to_string(tally.total - tally.emulated),
                  FmtDouble(100.0 * tally.emulated / tally.total, 1),
                  std::to_string(count(EmulationOutcome::kUnpackFailed)),
                  std::to_string(count(EmulationOutcome::kPeripheralFault)),
                  std::to_string(count(EmulationOutcome::kNvramFault)),
                  std::to_string(
                      count(EmulationOutcome::kNetworkInitFailed))});
  }
  std::printf("%s\n", table.Render().c_str());

  // ASCII histogram in the figure's style: gray = failed, red(#) = ok.
  std::printf("per-year histogram ('.' = 20 failed, '#' = 20 emulated):\n");
  for (const auto& [year, tally] : tallies) {
    std::string bar;
    for (int i = 0; i < (tally.total - tally.emulated) / 20; ++i)
      bar += '.';
    for (int i = 0; i < tally.emulated / 20 + 1; ++i) bar += '#';
    std::printf("  %d |%s\n", year, bar.c_str());
  }

  std::printf("\nTotals: %d images; %d emulable (%.1f%%), %d not; "
              "%d (%.1f%%) failed to unpack\n",
              total, emulated, 100.0 * emulated / total, total - emulated,
              unpack_failed, 100.0 * unpack_failed / total);
  std::printf("Paper:  6,529 images; <670 emulable (~10%%); 5,859 not; "
              ">65%% failed to unpack (Section VI)\n");
  // The corpus is seeded, so these tallies are deterministic counts
  // the regression gate can hold exactly.
  harness.AddExternalRun(
      "totals", 0.0,
      {{"images", static_cast<double>(total)},
       {"emulated", static_cast<double>(emulated)},
       {"unpack_failed", static_cast<double>(unpack_failed)}});

  // Events-overhead A/B: the identical per-image sweep with the NDJSON
  // event stream off, then on (one image_begin/image_end pair per
  // image, written to a scratch file). Per the metric naming contract,
  // "events_emitted" is a deterministic count the regression gate
  // holds exactly; "events_overhead_ratio" is machine-dependent and
  // informational only.
  auto sweep = [&](obs::EventStream* events) {
    int ok = 0;
    for (const CorpusEntry& entry : corpus) {
      if (events) {
        events->Emit(obs::Event("image_begin")
                         .Str("image", entry.vendor)
                         .Num("year", static_cast<uint64_t>(entry.year)));
      }
      EmulationOutcome outcome = AttemptEmulation(entry);
      if (outcome == EmulationOutcome::kSuccess) ++ok;
      if (events) {
        events->Emit(obs::Event("image_end")
                         .Str("image", entry.vendor)
                         .Str("status", EmulationOutcomeName(outcome))
                         .Bool("complete",
                               outcome == EmulationOutcome::kSuccess));
      }
    }
    return ok;
  };
  const bench::RunResult& off_run =
      harness.Run("emulation_sweep_events_off", [&](bench::Rep& rep) {
        rep.Value("emulated", static_cast<double>(sweep(nullptr)));
      });
  const char* scratch = "bench_fig1_events.ndjson";
  uint64_t events_emitted = 0;
  const bench::RunResult& on_run =
      harness.Run("emulation_sweep_events_on", [&](bench::Rep& rep) {
        obs::EventStream stream;
        if (!stream.Open(scratch, "fig1_emulation")) return;
        rep.Value("emulated", static_cast<double>(sweep(&stream)));
        stream.Close("ok");
        events_emitted = stream.EventCount();
        rep.Value("events_emitted", static_cast<double>(events_emitted));
      });
  double ratio = off_run.wall_seconds > 0.0
                     ? on_run.wall_seconds / off_run.wall_seconds
                     : 0.0;
  harness.AddExternalRun("events_overhead", 0.0,
                         {{"events_overhead_ratio", ratio}});
  std::printf("\nEvents A/B: %llu events emitted; on/off wall ratio %.3f "
              "(informational)\n",
              static_cast<unsigned long long>(events_emitted), ratio);
  std::remove(scratch);
  std::remove((std::string(scratch) + ".flight.ndjson").c_str());
  return harness.Finish(true);
}
