// Table II: "The summary information of firmware analysis using
// DTaint" — per image: manufacturer, version, architecture, binary,
// size, functions, blocks, call-graph edges.
//
// Builds the six paper-shaped synthetic images and prints the measured
// shape next to the paper's reported row. The two largest binaries are
// generated at ~1/10 of the paper's function count (see DESIGN.md);
// the scale column records this.
#include <cstdio>

#include "src/binary/loader.h"
#include "src/cfg/callgraph.h"
#include "src/cfg/cfg_builder.h"
#include "src/obs/bench.h"
#include "src/report/table.h"
#include "src/synth/paper_images.h"
#include "src/util/strings.h"

using namespace dtaint;

int main(int argc, char** argv) {
  bench::Harness harness("table2_firmware_summary", argc, argv);
  std::printf("=== Table II: firmware image summary ===\n\n");
  TextTable table({"Idx", "Manufacturer", "Firmware", "Arch", "Binary",
                   "Size(KB)", "Functions", "Blocks", "CG edges",
                   "Scale"});
  TextTable paper({"Idx", "Manufacturer", "Firmware", "Arch", "Binary",
                   "Size(KB)", "Functions", "Blocks", "CG edges"});

  int index = 1;
  bool ok = true;
  for (const PaperImageSpec& spec : PaperImageSpecs()) {
    auto fw = BuildPaperImage(spec);
    if (!fw.ok()) {
      std::printf("build failed: %s\n", fw.status().ToString().c_str());
      return harness.Finish(false);
    }
    const FirmwareFile* file =
        fw->image.FindFile(spec.firmware.binary_path);
    auto binary = BinaryLoader::Load(file->bytes);
    if (!binary.ok()) {
      std::printf("load failed: %s\n", binary.status().ToString().c_str());
      return harness.Finish(false);
    }
    // The measured work per image: load + whole-binary CFG recovery.
    // Shape numbers are deterministic; the gate holds them exactly.
    Result<Program> program = InvalidArgument("not built");
    harness.Run(
        spec.firmware.vendor + "_" + spec.firmware.product,
        [&](bench::Rep& rep) {
          auto loaded = BinaryLoader::Load(file->bytes);
          CfgBuilder builder(*loaded);
          program = builder.BuildProgram();
          if (!program.ok()) return;
          rep.Value("functions",
                    static_cast<double>(program->functions.size()));
          rep.Value("blocks",
                    static_cast<double>(program->TotalBlocks()));
          rep.Value("call_edges",
                    static_cast<double>(program->CallEdgeCount()));
          rep.Value("size_kb",
                    static_cast<double>(file->bytes.size() / 1024));
        });
    if (!program.ok()) {
      std::printf("cfg failed: %s\n", program.status().ToString().c_str());
      return harness.Finish(false);
    }

    table.AddRow(
        {std::to_string(index), spec.firmware.vendor,
         spec.firmware.product + "_" + spec.firmware.version,
         std::string(ArchName(binary->arch)), binary->soname,
         std::to_string(file->bytes.size() / 1024),
         std::to_string(program->functions.size()),
         WithCommas(program->TotalBlocks()),
         WithCommas(program->CallEdgeCount()),
         spec.scale == 1.0 ? "1"
                           : ("1/" + std::to_string(int(1.0 / spec.scale)))});
    paper.AddRow({std::to_string(index), spec.paper_table2.manufacturer,
                  spec.paper_table2.firmware_version,
                  spec.paper_table2.arch, spec.paper_table2.binary,
                  std::to_string(spec.paper_table2.size_kb),
                  std::to_string(spec.paper_table2.functions),
                  WithCommas(spec.paper_table2.blocks),
                  WithCommas(spec.paper_table2.call_edges)});
    ++index;
  }
  std::printf("measured (this reproduction):\n%s\n",
              table.Render().c_str());
  std::printf("paper-reported:\n%s", paper.Render().c_str());
  return harness.Finish(ok);
}
