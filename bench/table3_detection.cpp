// Table III: "The summary of the taint-style vulnerabilities that
// DTaint found" — per image: analyzed functions, sink count, execution
// time, vulnerable paths, vulnerabilities.
//
// Runs the full DTaint pipeline over the six paper-shaped images.
// "Vulnerabilities" here are scored against the synthesizer's ground
// truth (TPs), which is the automated analogue of the paper's manual
// validation on real devices. Table I (sources and sinks) is printed
// first for reference.
#include <cstdio>

#include "src/binary/loader.h"
#include "src/core/dtaint.h"
#include "src/core/sources_sinks.h"
#include "src/obs/bench.h"
#include "src/report/scoring.h"
#include "src/report/table.h"
#include "src/synth/paper_images.h"
#include "src/util/strings.h"

using namespace dtaint;

int main(int argc, char** argv) {
  bench::Harness harness("table3_detection", argc, argv);
  std::printf("=== Table I: sources and sinks ===\n\n");
  {
    std::vector<std::string> sink_names;
    for (const SinkSpec& sink : AllSinks()) sink_names.push_back(sink.name);
    std::printf("  Sensitive sinks: %s\n",
                Join(sink_names, ", ").c_str());
    std::printf("  Input sources:   %s\n\n",
                Join(AllSources(), ", ").c_str());
  }

  std::printf("=== Table III: detection summary ===\n\n");
  TextTable table({"Firmware", "Analysis fns", "Sinks", "Time (min)",
                   "Vuln paths", "Vulns (TP)", "Missed", "FP",
                   "Precision", "Recall"});
  TextTable paper({"Firmware", "Analysis fns", "Sinks", "Time (min)",
                   "Vuln paths", "Vulns"});

  for (const PaperImageSpec& spec : PaperImageSpecs()) {
    auto fw = BuildPaperImage(spec);
    if (!fw.ok()) {
      std::printf("build failed: %s\n", fw.status().ToString().c_str());
      return harness.Finish(false);
    }
    const FirmwareFile* file =
        fw->image.FindFile(spec.firmware.binary_path);
    auto binary = BinaryLoader::Load(file->bytes);
    Result<AnalysisReport> report = InvalidArgument("not analyzed");
    DetectionScore score;
    // One run per image: the full detection pipeline, with detection
    // quality captured as deterministic counts and the pipeline's
    // phase split (summary/ddg) as gated time metrics.
    harness.Run(spec.firmware.vendor + "_" + spec.firmware.product,
                [&](bench::Rep& rep) {
                  DTaint detector;
                  report = spec.focus.empty()
                               ? detector.Analyze(*binary)
                               : detector.AnalyzeFunctions(*binary,
                                                           spec.focus);
                  if (!report.ok()) return;
                  score = ScoreFindings(report->findings, fw->ground_truth);
                  rep.Value("total_seconds", report->total_seconds);
                  rep.Value("ssa_seconds", report->ssa_seconds);
                  rep.Value("ddg_seconds", report->ddg_seconds);
                  rep.Value("analyzed_functions",
                            static_cast<double>(report->analyzed_functions));
                  rep.Value("sinks",
                            static_cast<double>(report->sink_count));
                  rep.Value("vuln_paths",
                            static_cast<double>(report->vulnerable_paths));
                  rep.Value("true_positives",
                            static_cast<double>(score.true_positives));
                  rep.Value("false_negatives",
                            static_cast<double>(score.false_negatives));
                  rep.Value("false_positives",
                            static_cast<double>(score.false_positives +
                                                score.safe_twin_hits));
                });
    if (!report.ok()) {
      std::printf("analysis failed: %s\n",
                  report.status().ToString().c_str());
      return harness.Finish(false);
    }

    std::string label = spec.firmware.vendor + " " + spec.firmware.product;
    table.AddRow({label, std::to_string(report->analyzed_functions),
                  std::to_string(report->sink_count),
                  FmtDouble(report->total_seconds / 60.0, 3),
                  std::to_string(report->vulnerable_paths),
                  std::to_string(score.true_positives),
                  std::to_string(score.false_negatives),
                  std::to_string(score.false_positives +
                                 score.safe_twin_hits),
                  FmtDouble(score.Precision(), 2),
                  FmtDouble(score.Recall(), 2)});
    paper.AddRow(
        {label, std::to_string(spec.paper_table3.analysis_functions),
         std::to_string(spec.paper_table3.sinks),
         FmtDouble(spec.paper_table3.minutes, 2),
         std::to_string(spec.paper_table3.vulnerable_paths),
         std::to_string(spec.paper_table3.vulnerabilities)});
  }
  std::printf("measured (this reproduction; precision/recall vs planted "
              "ground truth):\n%s\n",
              table.Render().c_str());
  std::printf("paper-reported:\n%s", paper.Render().c_str());
  return harness.Finish(true);
}
