// Ablation bench (extra, not a paper table): what each DTaint design
// choice buys. Toggles pointer-alias recognition (Algorithm 1) and
// structure-layout similarity (§III-D) and measures recall over the
// pattern plants that exercise them; compares bottom-up linking time
// against the top-down baseline for the interprocedural choice.
#include <cstdio>

#include "src/baseline/naive_reachability.h"
#include "src/baseline/worklist_ddg.h"
#include "src/binary/loader.h"
#include "src/core/dtaint.h"
#include "src/obs/bench.h"
#include "src/report/scoring.h"
#include "src/report/table.h"
#include "src/synth/firmware_synth.h"
#include "src/util/strings.h"

using namespace dtaint;

namespace {

/// A binary stacked with the feature-dependent patterns.
Result<SynthOutput> FeatureProgram() {
  ProgramSpec spec;
  spec.name = "ablation";
  spec.arch = Arch::kDtArm;
  spec.seed = 77;
  spec.filler_functions = 120;
  auto plant = [](const char* id, VulnPattern pattern, const char* source,
                  const char* sink) {
    PlantSpec p;
    p.id = id;
    p.pattern = pattern;
    p.source = source;
    p.sink = sink;
    return p;
  };
  spec.plants = {
      plant("direct1", VulnPattern::kDirect, "getenv", "system"),
      plant("direct2", VulnPattern::kDirect, "recv", "memcpy"),
      plant("wrapper1", VulnPattern::kWrapper, "recv", "strcpy"),
      plant("wrapper2", VulnPattern::kWrapper, "getenv", "system"),
      plant("alias1", VulnPattern::kAliasChain, "recv", "strcpy"),
      plant("alias2", VulnPattern::kAliasChain, "recv", "memcpy"),
      plant("dispatch1", VulnPattern::kDispatch, "recv", "memcpy"),
      plant("loop1", VulnPattern::kLoopCopy, "recv", "loop"),
  };
  return SynthesizeBinary(spec);
}

/// A program whose function pointer is registered through an alias
/// created across a call boundary (VulnPattern::kCrossCallAlias): the
/// eager per-function pass never sees the linked-summary alias, so only
/// AliasMode::kOnDemandSSE resolves the indirect call. Deliberately a
/// separate program from FeatureProgram() — it isolates what the
/// on-demand oracle buys instead of penalizing the full config.
Result<SynthOutput> CrossCallProgram() {
  ProgramSpec spec;
  spec.name = "xcall_ab";
  spec.arch = Arch::kDtArm;
  spec.seed = 91;
  spec.filler_functions = 120;
  PlantSpec p;
  p.id = "xc1";
  p.pattern = VulnPattern::kCrossCallAlias;
  p.source = "recv";
  p.sink = "memcpy";
  PlantSpec safe = p;
  safe.id = "xs1";
  safe.sanitized = true;
  spec.plants = {p, safe};
  return SynthesizeBinary(spec);
}

struct Row {
  const char* label;
  bool alias;
  bool structsim;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("ablation_features", argc, argv);
  std::printf("=== Ablation: DTaint feature toggles ===\n\n");
  auto out = FeatureProgram();
  if (!out.ok()) {
    std::printf("synth failed: %s\n", out.status().ToString().c_str());
    return harness.Finish(false);
  }

  const Row rows[] = {
      {"full DTaint", true, true},
      {"no pointer aliasing (Alg. 1 off)", false, true},
      {"no structure similarity (S III-D off)", true, false},
      {"neither", false, false},
  };

  TextTable table({"Configuration", "TP", "FN", "Recall", "Paths",
                   "SSA (s)", "DDG (s)"});
  for (const Row& row : rows) {
    // One run per configuration: recall/path counts are deterministic,
    // the phase timings ratio-gated.
    std::string run_name = std::string("alias=") + (row.alias ? "on" : "off") +
                           ",structsim=" + (row.structsim ? "on" : "off");
    Result<AnalysisReport> report = InvalidArgument("not analyzed");
    DetectionScore score;
    harness.Run(run_name, [&](bench::Rep& rep) {
      DTaintConfig config;
      config.enable_alias = row.alias;
      config.enable_structsim = row.structsim;
      DTaint detector(config);
      report = detector.Analyze(out->binary);
      if (!report.ok()) return;
      score = ScoreFindings(report->findings, out->ground_truth);
      rep.Value("ssa_seconds", report->ssa_seconds);
      rep.Value("ddg_seconds", report->ddg_seconds);
      rep.Value("true_positives", static_cast<double>(score.true_positives));
      rep.Value("false_negatives",
                static_cast<double>(score.false_negatives));
      rep.Value("vuln_paths",
                static_cast<double>(report->vulnerable_paths));
    });
    if (!report.ok()) return harness.Finish(false);
    table.AddRow({row.label, std::to_string(score.true_positives),
                  std::to_string(score.false_negatives),
                  FmtDouble(score.Recall(), 2),
                  std::to_string(report->vulnerable_paths),
                  FmtDouble(report->ssa_seconds, 2),
                  FmtDouble(report->ddg_seconds, 3)});
  }
  std::printf("%s\n", table.Render().c_str());

  // Eager vs on-demand alias resolution. Two programs: the standard
  // feature mix (detection must be identical, phase-1 time is what the
  // deferred twin rewrite saves) and the cross-call-alias program
  // (detection is what the oracle's linked-summary view buys).
  std::printf("=== AliasMode: eager vs on-demand SSE ===\n\n");
  auto xcall = CrossCallProgram();
  if (!xcall.ok()) {
    std::printf("synth failed: %s\n", xcall.status().ToString().c_str());
    return harness.Finish(false);
  }
  struct ModeCase {
    const char* program;
    const SynthOutput* out;
    AliasMode mode;
  };
  const ModeCase mode_cases[] = {
      {"feature mix", &*out, AliasMode::kEager},
      {"feature mix", &*out, AliasMode::kOnDemandSSE},
      {"cross-call alias", &*xcall, AliasMode::kEager},
      {"cross-call alias", &*xcall, AliasMode::kOnDemandSSE},
  };
  TextTable mode_table({"Program", "Mode", "TP", "FN", "Icalls resolved",
                        "Summary (s)", "Oracle queries"});
  for (const ModeCase& mc : mode_cases) {
    std::string run_name = std::string(mc.program == mode_cases[0].program
                                           ? "featuremix"
                                           : "crosscall") +
                           ",alias_mode=" + std::string(AliasModeName(mc.mode));
    Result<AnalysisReport> report = InvalidArgument("not analyzed");
    DetectionScore score;
    harness.Run(run_name, [&](bench::Rep& rep) {
      DTaintConfig config;
      config.interproc.alias_mode = mc.mode;
      report = DTaint(config).Analyze(mc.out->binary);
      if (!report.ok()) return;
      score = ScoreFindings(report->findings, mc.out->ground_truth);
      rep.Value("summary_seconds", report->interproc_stats.summary_seconds);
      rep.Value("true_positives", static_cast<double>(score.true_positives));
      rep.Value("false_negatives",
                static_cast<double>(score.false_negatives));
      rep.Value("icalls_resolved",
                static_cast<double>(report->indirect_calls_resolved));
      rep.Value("oracle_queries",
                static_cast<double>(
                    report->metrics.CounterValue("alias.ondemand.queries")));
    });
    if (!report.ok()) return harness.Finish(false);
    mode_table.AddRow(
        {mc.program, std::string(AliasModeName(mc.mode)),
         std::to_string(score.true_positives),
         std::to_string(score.false_negatives),
         std::to_string(report->indirect_calls_resolved),
         FmtDouble(report->interproc_stats.summary_seconds, 3),
         std::to_string(
             report->metrics.CounterValue("alias.ondemand.queries"))});
  }
  std::printf("%s\n", mode_table.Render().c_str());

  // Bottom-up vs top-down interprocedural traversal.
  CfgBuilder builder(out->binary);
  Program program = std::move(*builder.BuildProgram());
  BaselineStats baseline;
  harness.Run("topdown_baseline", [&](bench::Rep& rep) {
    baseline = RunWorklistDdg(program, {"main"});
    rep.Value("contexts", static_cast<double>(baseline.contexts_analyzed));
  });
  std::printf("interprocedural traversal: bottom-up analyzes each of the "
              "%zu functions once;\n  top-down worklist analyzed %zu "
              "(function, context) pairs in %.2f s\n\n",
              program.functions.size(), baseline.contexts_analyzed,
              baseline.seconds);

  // Precision value of data flow: the naive call-graph-reachability
  // scanner flags every sink co-reachable with a source — including
  // the sanitized twin and every incidental safe sink.
  std::vector<NaiveFinding> naive = NaiveReachabilityScan(program);
  std::vector<Finding> as_findings;
  for (const NaiveFinding& nf : naive) {
    Finding f;
    f.path.sink_function = nf.sink_function;
    f.path.sink_name = nf.sink;
    f.path.sink_site = nf.sink_site;
    f.path.source_name = nf.source;
    f.path.vuln_class = nf.vuln_class;
    as_findings.push_back(std::move(f));
  }
  DetectionScore naive_score = ScoreFindings(as_findings, out->ground_truth);
  DTaint full;
  auto full_report = full.Analyze(out->binary);
  DetectionScore dtaint_score =
      ScoreFindings(full_report->findings, out->ground_truth);
  std::printf("precision vs the naive reachability scanner ('grep with a "
              "call graph'):\n");
  TextTable prec({"Detector", "Flagged", "TP", "FP+twin", "Precision",
                  "Recall"});
  prec.AddRow({"naive reachability", std::to_string(naive.size()),
               std::to_string(naive_score.true_positives),
               std::to_string(naive_score.false_positives +
                              naive_score.safe_twin_hits),
               FmtDouble(naive_score.Precision(), 2),
               FmtDouble(naive_score.Recall(), 2)});
  prec.AddRow({"DTaint", std::to_string(full_report->findings.size()),
               std::to_string(dtaint_score.true_positives),
               std::to_string(dtaint_score.false_positives +
                              dtaint_score.safe_twin_hits),
               FmtDouble(dtaint_score.Precision(), 2),
               FmtDouble(dtaint_score.Recall(), 2)});
  std::printf("%s", prec.Render().c_str());
  harness.AddExternalRun(
      "precision_vs_naive", 0.0,
      {{"naive_flagged", static_cast<double>(naive.size())},
       {"naive_true_positives",
        static_cast<double>(naive_score.true_positives)},
       {"dtaint_flagged",
        static_cast<double>(full_report->findings.size())},
       {"dtaint_true_positives",
        static_cast<double>(dtaint_score.true_positives)}});
  return harness.Finish(true);
}
