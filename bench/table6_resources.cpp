// Table VI: "CPU, memory and time usage of prototype software" —
// average CPU share and peak memory of the static-symbolic-analysis
// phase vs. the data-flow-generation phase.
//
// Measured over the largest image (Hikvision-shaped centaurus) with
// getrusage + /proc/self/statm sampling around each phase.
#include <sys/resource.h>

#include <cstdio>
#include <fstream>

#include "src/binary/loader.h"
#include "src/cfg/callgraph.h"
#include "src/core/dtaint.h"
#include "src/core/interproc.h"
#include "src/core/pathfinder.h"
#include "src/core/sanitizer.h"
#include "src/core/structsim.h"
#include "src/obs/bench.h"
#include "src/report/table.h"
#include "src/synth/paper_images.h"
#include "src/util/strings.h"

using namespace dtaint;

namespace {

double CpuSeconds() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_utime.tv_sec + usage.ru_utime.tv_usec * 1e-6 +
         usage.ru_stime.tv_sec + usage.ru_stime.tv_usec * 1e-6;
}

double RssMb() {
  std::ifstream statm("/proc/self/statm");
  long pages = 0, resident = 0;
  statm >> pages >> resident;
  return resident * (sysconf(_SC_PAGESIZE) / 1024.0 / 1024.0);
}

double WallNow() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec + ts.tv_nsec * 1e-9;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("table6_resources", argc, argv);
  std::printf("=== Table VI: CPU, memory and time usage ===\n\n");

  // Largest image: Hikvision-shaped centaurus.
  auto specs = PaperImageSpecs();
  const PaperImageSpec& spec = specs.back();
  auto fw = BuildPaperImage(spec);
  if (!fw.ok()) return harness.Finish(false);
  const FirmwareFile* file = fw->image.FindFile(spec.firmware.binary_path);
  auto binary = BinaryLoader::Load(file->bytes);

  // Phase 1: lifting + static symbolic analysis (SSA).
  // Both phases record CPU share (_pct) and RSS growth (_mb) as
  // informational values — they vary with the host, so the regression
  // gate never holds them — plus deterministic result counts.
  double cpu0 = CpuSeconds(), wall0 = WallNow(), mem0 = RssMb();
  Program program;
  SymEngine engine(*binary);
  ProgramAnalysis analysis;
  harness.Run("ssa_phase", [&](bench::Rep& rep) {
    CfgBuilder b(*binary);
    program = std::move(*b.BuildProgram());
    CallGraph graph = CallGraph::Build(program);
    analysis = RunBottomUp(program, graph, engine);
    double cpu = CpuSeconds(), wall = WallNow(), mem = RssMb();
    rep.Value("cpu_pct",
              wall - wall0 <= 0 ? 0.0 : 100.0 * (cpu - cpu0) / (wall - wall0));
    rep.Value("rss_growth_mb", mem - mem0);
  });
  double cpu1 = CpuSeconds(), wall1 = WallNow(), mem1 = RssMb();

  // Phase 2: data-flow generation (indirect-call resolution, linking,
  // path search, sanitization).
  std::vector<IndirectResolution> resolutions;
  std::vector<TaintPath> paths, vulns;
  harness.Run("ddg_phase", [&](bench::Rep& rep) {
    resolutions = ResolveIndirectCalls(program, analysis.summaries);
    CallGraph graph2 = CallGraph::Build(program);
    ProgramAnalysis linked = RunBottomUp(program, graph2, engine);
    PathFinder finder(program, linked);
    paths = finder.FindAll();
    vulns = FilterVulnerable(paths);
    double cpu = CpuSeconds(), wall = WallNow(), mem = RssMb();
    rep.Value("cpu_pct",
              wall - wall1 <= 0 ? 0.0 : 100.0 * (cpu - cpu1) / (wall - wall1));
    rep.Value("rss_growth_mb", mem - mem1);
    rep.Value("paths", static_cast<double>(paths.size()));
    rep.Value("vulnerable", static_cast<double>(vulns.size()));
    rep.Value("indirect_resolved", static_cast<double>(resolutions.size()));
  });
  double cpu2 = CpuSeconds(), wall2 = WallNow(), mem2 = RssMb();

  TextTable table({"Phase", "CPU usage", "Peak RSS", "Wall time"});
  auto cpu_pct = [](double cpu, double wall) {
    return wall <= 0 ? 0.0 : 100.0 * cpu / wall;
  };
  table.AddRow({"Static symbolic analysis",
                FmtDouble(cpu_pct(cpu1 - cpu0, wall1 - wall0), 0) + "%",
                FmtDouble(mem1 - mem0, 1) + " MB (+base " +
                    FmtDouble(mem0, 1) + ")",
                FmtDouble(wall1 - wall0, 2) + " s"});
  table.AddRow({"Data flow generation",
                FmtDouble(cpu_pct(cpu2 - cpu1, wall2 - wall1), 0) + "%",
                FmtDouble(mem2 - mem1, 1) + " MB",
                FmtDouble(wall2 - wall1, 2) + " s"});
  std::printf("measured on %s (%zu functions; largest image):\n%s\n",
              binary->soname.c_str(), program.functions.size(),
              table.Render().c_str());
  std::printf("paper-reported (128 GB testbed, full 14k-function "
              "binary):\n");
  std::printf("  Static symbolic analysis: 25%% CPU, 15.3 GB\n");
  std::printf("  Data flow generation:     10%% CPU, 208.9 MB\n\n");
  std::printf("shape check: SSA dominates memory/CPU; DDG phase is the "
              "cheap one (%s)\n",
              (mem1 - mem0) > (mem2 - mem1) ? "holds" : "DOES NOT HOLD");
  std::printf("(paths found: %zu, vulnerable: %zu, indirect resolved: "
              "%zu)\n",
              paths.size(), vulns.size(), resolutions.size());
  // The shape check above is advisory (RSS deltas are noisy on small
  // synthetic images); exit status matches the original bench.
  return harness.Finish(true);
}
