// Table IV: "The previous reported vulnerabilities with the taint
// style using DTaint" — vulnerability label, sink, source, security
// check (all 'N': unchecked).
//
// Runs detection over the images carrying CVE-labeled plants and
// reports, for every known-vulnerability plant, whether DTaint
// recovered exactly the paper's sink/source pair.
#include <cstdio>

#include "src/binary/loader.h"
#include "src/core/dtaint.h"
#include "src/obs/bench.h"
#include "src/report/scoring.h"
#include "src/report/table.h"
#include "src/synth/paper_images.h"

using namespace dtaint;

namespace {

struct ImageScore {
  PaperImageSpec spec;
  std::vector<PlantedVuln> ground_truth;
  DetectionScore score;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("table4_known_vulns", argc, argv);
  std::printf("=== Table IV: previously reported vulnerabilities ===\n\n");
  TextTable table({"Vulnerability", "Sink", "Source", "Security check",
                   "Detected"});

  // One run covering the whole detection sweep: the per-CVE hits are
  // deterministic counts the regression gate holds exactly.
  bool failed = false;
  std::vector<ImageScore> scored;
  harness.Run("detect_all", [&](bench::Rep& rep) {
    scored.clear();
    double detect_seconds = 0.0;
    for (const PaperImageSpec& spec : PaperImageSpecs()) {
      auto fw = BuildPaperImage(spec);
      if (!fw.ok()) {
        failed = true;
        return;
      }
      const FirmwareFile* file =
          fw->image.FindFile(spec.firmware.binary_path);
      auto binary = BinaryLoader::Load(file->bytes);
      DTaint detector;
      auto report = spec.focus.empty()
                        ? detector.Analyze(*binary)
                        : detector.AnalyzeFunctions(*binary, spec.focus);
      if (!report.ok()) {
        failed = true;
        return;
      }
      detect_seconds += report->total_seconds;
      scored.push_back({spec, fw->ground_truth,
                        ScoreFindings(report->findings, fw->ground_truth)});
    }
    rep.Value("detect_seconds", detect_seconds);
  });
  if (failed) return harness.Finish(false);

  int detected = 0, total = 0;
  for (const ImageScore& image : scored) {
    const DetectionScore& score = image.score;
    for (const PlantedVuln& plant : image.ground_truth) {
      if (plant.sanitized) continue;
      // Table IV covers the CVE/EDB-labeled (previously known) bugs.
      if (plant.cve_label.empty() ||
          plant.cve_label.find("unknown") != std::string::npos) {
        continue;
      }
      ++total;
      bool found = false;
      for (const std::string& id : score.found_ids) {
        if (id == plant.id) found = true;
      }
      if (found) ++detected;
      table.AddRow({plant.cve_label, plant.sink, plant.source, "N",
                    found ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("detected %d / %d known vulnerabilities "
              "(paper: 8 of 8 across Tables IV rows)\n",
              detected, total);
  harness.AddExternalRun("totals", 0.0,
                         {{"known_vulns", static_cast<double>(total)},
                          {"detected", static_cast<double>(detected)}});
  return harness.Finish(detected == total);
}
