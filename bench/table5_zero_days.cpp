// Table V: "Zero-day vulnerabilities discovered using our tool" —
// firmware, vulnerability type, bug status, count.
//
// The paper's 13 zero-days map to the "unknown"-labeled plants; this
// bench verifies DTaint rediscovers each and prints the per-firmware
// tally in the table's shape.
#include <cstdio>
#include <map>

#include "src/binary/loader.h"
#include "src/core/dtaint.h"
#include "src/obs/bench.h"
#include "src/report/scoring.h"
#include "src/report/table.h"
#include "src/synth/paper_images.h"

using namespace dtaint;

int main(int argc, char** argv) {
  bench::Harness harness("table5_zero_days", argc, argv);
  std::printf("=== Table V: zero-day vulnerabilities ===\n\n");
  TextTable table({"Firmware", "Type", "Bug status", "Bugs",
                   "Detected"});

  int total_zero_days = 0, total_detected = 0;
  for (const PaperImageSpec& spec : PaperImageSpecs()) {
    auto fw = BuildPaperImage(spec);
    if (!fw.ok()) return harness.Finish(false);
    const FirmwareFile* file =
        fw->image.FindFile(spec.firmware.binary_path);
    auto binary = BinaryLoader::Load(file->bytes);
    Result<AnalysisReport> report = InvalidArgument("not analyzed");
    DetectionScore score;
    // One run per image: detection time is gated by ratio, the zero-day
    // rediscovery tallies are deterministic counts held exactly.
    harness.Run(
        spec.firmware.vendor + "_" + spec.firmware.product,
        [&](bench::Rep& rep) {
          DTaint detector;
          report = spec.focus.empty()
                       ? detector.Analyze(*binary)
                       : detector.AnalyzeFunctions(*binary, spec.focus);
          if (!report.ok()) return;
          score = ScoreFindings(report->findings, fw->ground_truth);
          rep.Value("total_seconds", report->total_seconds);
        });
    if (!report.ok()) return harness.Finish(false);

    // Group the unknown plants by (class, status) like the paper does.
    struct Tally {
      int bugs = 0;
      int detected = 0;
    };
    std::map<std::pair<std::string, std::string>, Tally> rows;
    for (const PlantedVuln& plant : fw->ground_truth) {
      if (plant.sanitized) continue;
      if (plant.cve_label.find("unknown") == std::string::npos) continue;
      std::string status = "-";
      if (plant.cve_label.find("repaired") != std::string::npos) {
        status = "repaired";
      } else if (plant.cve_label.find("reviewing") != std::string::npos) {
        status = "reviewing";
      } else if (plant.cve_label.find("reported") != std::string::npos) {
        status = "reported";
      }
      Tally& t = rows[{std::string(VulnClassName(plant.vuln_class)),
                       status}];
      ++t.bugs;
      ++total_zero_days;
      for (const std::string& id : score.found_ids) {
        if (id == plant.id) {
          ++t.detected;
          ++total_detected;
        }
      }
    }
    std::string label =
        spec.firmware.vendor + " " + spec.firmware.product;
    for (const auto& [key, tally] : rows) {
      table.AddRow({label, key.first, key.second,
                    std::to_string(tally.bugs),
                    std::to_string(tally.detected)});
      label = "";  // only print the firmware name on its first row
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("rediscovered %d / %d planted zero-days "
              "(paper: 13 zero-days across 4 vendors)\n",
              total_detected, total_zero_days);
  harness.AddExternalRun(
      "totals", 0.0,
      {{"zero_days", static_cast<double>(total_zero_days)},
       {"detected", static_cast<double>(total_detected)}});
  return harness.Finish(total_detected == total_zero_days);
}
