// Table V: "Zero-day vulnerabilities discovered using our tool" —
// firmware, vulnerability type, bug status, count.
//
// The paper's 13 zero-days map to the "unknown"-labeled plants; this
// bench verifies DTaint rediscovers each and prints the per-firmware
// tally in the table's shape.
#include <cstdio>
#include <map>

#include "src/binary/loader.h"
#include "src/core/dtaint.h"
#include "src/report/scoring.h"
#include "src/report/table.h"
#include "src/synth/paper_images.h"

using namespace dtaint;

int main() {
  std::printf("=== Table V: zero-day vulnerabilities ===\n\n");
  TextTable table({"Firmware", "Type", "Bug status", "Bugs",
                   "Detected"});

  int total_zero_days = 0, total_detected = 0;
  for (const PaperImageSpec& spec : PaperImageSpecs()) {
    auto fw = BuildPaperImage(spec);
    if (!fw.ok()) return 1;
    const FirmwareFile* file =
        fw->image.FindFile(spec.firmware.binary_path);
    auto binary = BinaryLoader::Load(file->bytes);
    DTaint detector;
    auto report = spec.focus.empty()
                      ? detector.Analyze(*binary)
                      : detector.AnalyzeFunctions(*binary, spec.focus);
    if (!report.ok()) return 1;
    DetectionScore score =
        ScoreFindings(report->findings, fw->ground_truth);

    // Group the unknown plants by (class, status) like the paper does.
    struct Tally {
      int bugs = 0;
      int detected = 0;
    };
    std::map<std::pair<std::string, std::string>, Tally> rows;
    for (const PlantedVuln& plant : fw->ground_truth) {
      if (plant.sanitized) continue;
      if (plant.cve_label.find("unknown") == std::string::npos) continue;
      std::string status = "-";
      if (plant.cve_label.find("repaired") != std::string::npos) {
        status = "repaired";
      } else if (plant.cve_label.find("reviewing") != std::string::npos) {
        status = "reviewing";
      } else if (plant.cve_label.find("reported") != std::string::npos) {
        status = "reported";
      }
      Tally& t = rows[{std::string(VulnClassName(plant.vuln_class)),
                       status}];
      ++t.bugs;
      ++total_zero_days;
      for (const std::string& id : score.found_ids) {
        if (id == plant.id) {
          ++t.detected;
          ++total_detected;
        }
      }
    }
    std::string label =
        spec.firmware.vendor + " " + spec.firmware.product;
    for (const auto& [key, tally] : rows) {
      table.AddRow({label, key.first, key.second,
                    std::to_string(tally.bugs),
                    std::to_string(tally.detected)});
      label = "";  // only print the firmware name on its first row
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("rediscovered %d / %d planted zero-days "
              "(paper: 13 zero-days across 4 vendors)\n",
              total_detected, total_zero_days);
  return total_detected == total_zero_days ? 0 : 1;
}
