// Table VII: "Time cost between Angr and DTaint" — SSA and DDG
// seconds for four programs: cgibin, setup.cgi, httpd, openssl.
//
// DTaint: SSA = lifting + one bottom-up symbolic pass per function;
// DDG = indirect-call resolution + summary linking + path search.
//
// Baseline ("Angr-like", src/baseline): top-down, context-sensitive.
// Its SSA cost re-runs the per-function symbolic analysis once per
// distinct calling context (the paper: "the same callee [is] analyzed
// multiple times"); its DDG cost is the iterative worklist that builds
// dependence edges for every register/memory variable. The expected
// *shape*: baseline SSA ~2x DTaint's, baseline DDG orders of magnitude
// slower.
#include <cstdio>

#include "src/baseline/worklist_ddg.h"
#include "src/binary/loader.h"
#include "src/core/dtaint.h"
#include "src/obs/bench.h"
#include "src/obs/stopwatch.h"
#include "src/report/table.h"
#include "src/synth/firmware_synth.h"
#include "src/synth/paper_images.h"
#include "src/util/strings.h"

using namespace dtaint;

namespace {

/// OpenSSL-shaped program: the Heartbleed plant (paper Figs. 2-3: a
/// length read out of the record buffer in ssl3_read_n flows, through
/// a struct-parked pointer, into the memcpy in tls1_process_heartbeat
/// — our alias-chain pattern with a memcpy sink) inside a large
/// library-shaped body.
ProgramSpec OpensslSpec() {
  ProgramSpec spec;
  spec.name = "openssl";
  spec.arch = Arch::kDtArm;
  spec.seed = 19690;
  PlantSpec heartbleed;
  heartbleed.id = "heartbleed";
  heartbleed.pattern = VulnPattern::kAliasChain;
  heartbleed.source = "recv";
  heartbleed.sink = "memcpy";
  heartbleed.cve_label = "CVE-2014-0160";
  spec.plants = {heartbleed};
  spec.filler_functions = 620;
  spec.filler_min_blocks = 6;
  spec.filler_max_blocks = 18;
  spec.filler_call_density = 3.2;
  return spec;
}

struct ProgramUnderTest {
  std::string label;
  Binary binary;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("table7_time_cost", argc, argv);
  std::printf("=== Table VII: time cost, Angr-like baseline vs DTaint "
              "===\n\n");

  // The same three firmware binaries the paper uses, plus openssl.
  std::vector<ProgramUnderTest> programs;
  for (const PaperImageSpec& spec : PaperImageSpecs()) {
    if (spec.firmware.program.name != "cgibin" &&
        spec.firmware.program.name != "setup.cgi" &&
        spec.firmware.program.name != "httpd") {
      continue;
    }
    if (spec.firmware.product == "DIR-890L") continue;  // one cgibin
    auto fw = BuildPaperImage(spec);
    if (!fw.ok()) return harness.Finish(false);
    const FirmwareFile* file =
        fw->image.FindFile(spec.firmware.binary_path);
    auto binary = BinaryLoader::Load(file->bytes);
    programs.push_back({spec.firmware.program.name, std::move(*binary)});
  }
  {
    auto out = SynthesizeBinary(OpensslSpec());
    if (!out.ok()) return harness.Finish(false);
    programs.push_back({"openssl", std::move(out->binary)});
  }

  TextTable table({"Program", "Angr SSA (s)", "Angr DDG (s)",
                   "DTaint SSA (s)", "DTaint DDG (s)", "DDG speedup"});
  TextTable paper({"Program", "Angr SSA (s)", "Angr DDG (s)",
                   "DTaint SSA (s)", "DTaint DDG (s)"});
  paper.AddRow({"cgibin", "134.49", "16463.32", "62.34", "10.48"});
  paper.AddRow({"setup.cgi", "39.17", "539.68", "33.85", "1.205"});
  paper.AddRow({"httpd", "106.92", "22195.45", "60.92", "8.87"});
  paper.AddRow({"openssl", "102.94", "7345.56", "47.33", "3.09"});

  for (const ProgramUnderTest& put : programs) {
    // One run per program carrying both sides of the comparison: the
    // four *_seconds values are ratio-gated, the speedup informational,
    // the baseline's context/edge totals deterministic counts.
    Result<AnalysisReport> report = InvalidArgument("not analyzed");
    BaselineStats ddg;
    double baseline_ssa = 0.0;
    size_t program_functions = 0;
    harness.Run(put.label, [&](bench::Rep& rep) {
      // ---- DTaint --------------------------------------------------------
      DTaint detector;
      report = detector.Analyze(put.binary);
      if (!report.ok()) return;

      // ---- baseline SSA --------------------------------------------------
      // Angr's per-function symbolic pass explores with a richer state
      // budget (it tracks every variable and does not prune with the
      // loop-once heuristic as aggressively); modeled here as the same
      // engine with a doubled path budget, run once per function.
      obs::Stopwatch ssa_watch;
      CfgBuilder builder(put.binary);
      Program program = std::move(*builder.BuildProgram());
      program_functions = program.functions.size();
      EngineConfig heavy;
      heavy.max_paths = 96;
      heavy.max_block_visits = 8192;
      SymEngine heavy_engine(put.binary, heavy);
      for (const auto& [_, fn] : program.functions) {
        (void)heavy_engine.Analyze(fn);
      }
      baseline_ssa = ssa_watch.Seconds();

      // ---- baseline DDG --------------------------------------------------
      // The worklist interprocedural pass: per (function, callsite-chain)
      // context it re-derives the function's data flows (a fresh symbolic
      // pass per context — "the same callee [is] analyzed multiple
      // times") and iterates reaching definitions over every register and
      // memory variable to fixpoint.
      BaselineConfig config;
      config.context_depth = 3;
      config.max_contexts = 50000;
      obs::Stopwatch ddg_watch;
      ddg = RunWorklistDdg(program, {"main"}, config);
      SymEngine engine(put.binary);
      for (const std::string& fn_name : ddg.context_functions) {
        const Function* fn = program.FindFunction(fn_name);
        if (fn) (void)engine.Analyze(*fn);
      }
      ddg.seconds = ddg_watch.Seconds();

      rep.Value("dtaint_ssa_seconds", report->ssa_seconds);
      rep.Value("dtaint_ddg_seconds", report->ddg_seconds);
      rep.Value("baseline_ssa_seconds", baseline_ssa);
      rep.Value("baseline_ddg_seconds", ddg.seconds);
      rep.Value("ddg_speedup", report->ddg_seconds > 0
                                   ? ddg.seconds / report->ddg_seconds
                                   : 0.0);
      rep.Value("contexts", static_cast<double>(ddg.contexts_analyzed));
      rep.Value("dep_edges", static_cast<double>(ddg.dependence_edges));
    });
    if (!report.ok()) return harness.Finish(false);

    double speedup =
        report->ddg_seconds > 0 ? ddg.seconds / report->ddg_seconds : 0;
    table.AddRow({put.label, FmtDouble(baseline_ssa, 2),
                  FmtDouble(ddg.seconds, 2),
                  FmtDouble(report->ssa_seconds, 2),
                  FmtDouble(report->ddg_seconds, 3),
                  FmtDouble(speedup, 1) + "x"});
    std::printf("  %-10s baseline: %zu contexts (%zu unique fns), %s "
                "block executions, %s dep edges%s\n",
                put.label.c_str(), ddg.contexts_analyzed,
                program_functions,
                WithCommas(ddg.block_executions).c_str(),
                WithCommas(ddg.dependence_edges).c_str(),
                ddg.budget_exhausted ? " (budget hit)" : "");
  }

  std::printf("\nmeasured (this reproduction):\n%s\n",
              table.Render().c_str());
  std::printf("paper-reported:\n%s\n", paper.Render().c_str());
  std::printf("shape to hold: DTaint DDG is dramatically cheaper than the "
              "worklist baseline;\nSSA moderately cheaper (each function "
              "analyzed once vs once per context).\n");
  return harness.Finish(true);
}
