// Microbenchmarks (google-benchmark) for the analysis hot paths:
// decode, lift, CFG recovery, per-function symbolic analysis, alias
// recognition, layout similarity, and whole-binary detection.
#include <benchmark/benchmark.h>

#include "src/cfg/callgraph.h"
#include "src/cfg/cfg_builder.h"
#include "src/core/alias.h"
#include "src/core/dtaint.h"
#include "src/core/structsim.h"
#include "src/isa/decode.h"
#include "src/isa/encode.h"
#include "src/lifter/lifter.h"
#include "src/synth/firmware_synth.h"

namespace dtaint {
namespace {

/// Shared medium-sized program for the per-phase benchmarks.
const SynthOutput& TestProgram() {
  static const SynthOutput out = [] {
    ProgramSpec spec;
    spec.name = "bench";
    spec.arch = Arch::kDtArm;
    spec.seed = 42;
    spec.filler_functions = 120;
    PlantSpec p;
    p.id = "b1";
    p.pattern = VulnPattern::kAliasChain;
    p.source = "recv";
    p.sink = "strcpy";
    spec.plants = {p};
    return std::move(*SynthesizeBinary(spec));
  }();
  return out;
}

void BM_DecodeInsn(benchmark::State& state) {
  uint32_t word = *Encode({Op::kLdrW, 1, 5, 0, 0x4C});
  for (auto _ : state) {
    benchmark::DoNotOptimize(Decode(word));
  }
}
BENCHMARK(BM_DecodeInsn);

void BM_EncodeInsn(benchmark::State& state) {
  Insn insn{Op::kAddI, 2, 3, 0, 100};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Encode(insn));
  }
}
BENCHMARK(BM_EncodeInsn);

void BM_LiftBlock(benchmark::State& state) {
  const Binary& bin = TestProgram().binary;
  Lifter lifter(bin);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lifter.LiftBlock(bin.entry));
  }
}
BENCHMARK(BM_LiftBlock);

void BM_BuildProgramCfg(benchmark::State& state) {
  const Binary& bin = TestProgram().binary;
  CfgBuilder builder(bin);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.BuildProgram());
  }
}
BENCHMARK(BM_BuildProgramCfg);

void BM_SymExecFunction(benchmark::State& state) {
  const Binary& bin = TestProgram().binary;
  CfgBuilder builder(bin);
  Program program = std::move(*builder.BuildProgram());
  SymEngine engine(bin);
  const Function& fn = program.functions.at("b1_handler");
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Analyze(fn));
  }
}
BENCHMARK(BM_SymExecFunction);

void BM_AliasReplace(benchmark::State& state) {
  const Binary& bin = TestProgram().binary;
  CfgBuilder builder(bin);
  Program program = std::move(*builder.BuildProgram());
  SymEngine engine(bin);
  FunctionSummary summary =
      engine.Analyze(program.functions.at("b1_woo"));
  for (auto _ : state) {
    FunctionSummary copy = summary;
    benchmark::DoNotOptimize(AliasReplace(copy));
  }
}
BENCHMARK(BM_AliasReplace);

void BM_LayoutSimilarity(benchmark::State& state) {
  const Binary& bin = TestProgram().binary;
  CfgBuilder builder(bin);
  Program program = std::move(*builder.BuildProgram());
  SymEngine engine(bin);
  FunctionSummary a = engine.Analyze(program.functions.at("b1_woo"));
  FunctionSummary b = engine.Analyze(program.functions.at("b1_handler"));
  auto la = ExtractLayouts(a);
  auto lb = ExtractLayouts(b);
  if (la.empty() || lb.empty()) {
    state.SkipWithError("no layouts");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(LayoutSimilarity(la[0], lb[0]));
  }
}
BENCHMARK(BM_LayoutSimilarity);

void BM_WholeBinaryDetection(benchmark::State& state) {
  const Binary& bin = TestProgram().binary;
  DTaint detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Analyze(bin));
  }
}
BENCHMARK(BM_WholeBinaryDetection);

void BM_BottomUpLinking(benchmark::State& state) {
  const Binary& bin = TestProgram().binary;
  CfgBuilder builder(bin);
  Program program = std::move(*builder.BuildProgram());
  SymEngine engine(bin);
  CallGraph graph = CallGraph::Build(program);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunBottomUp(program, graph, engine));
  }
}
BENCHMARK(BM_BottomUpLinking);

}  // namespace
}  // namespace dtaint
