// Microbenchmarks (google-benchmark) for the analysis hot paths:
// decode, lift, CFG recovery, per-function symbolic analysis, alias
// recognition, layout similarity, and whole-binary detection.
//
// A custom main feeds every google-benchmark result into the shared
// bench harness so micro_engine emits the same BENCH_*.json document
// as the macro benches: each benchmark becomes a run with
// `real_nanos` / `cpu_nanos` per-iteration values (the `_nanos`
// suffix puts them under bench_diff's nanosecond-scale ratio gate).
#include <benchmark/benchmark.h>

#include <array>

#include "src/obs/bench.h"

#include "src/cfg/callgraph.h"
#include "src/cfg/cfg_builder.h"
#include "src/core/alias.h"
#include "src/core/alias_ondemand.h"
#include "src/core/dtaint.h"
#include "src/core/structsim.h"
#include "src/isa/decode.h"
#include "src/isa/encode.h"
#include "src/lifter/lifter.h"
#include "src/symexec/intern.h"
#include "src/symexec/symstate.h"
#include "src/synth/firmware_synth.h"

namespace dtaint {
namespace {

// ---- SymExpr hot-operation microbenchmarks ---------------------------------
//
// Each pair runs the same operation with hash-consing on (the default)
// and off (the legacy heap-allocating path), so the interner's win is
// visible in isolation: Equal on interned operands is a pointer
// compare, Replace prunes by the per-node bloom/kind masks, and Bin
// normalization stops allocating on the hit path.

/// A deep expression exercising every recursive operation:
/// deref(...deref(arg0+1)+2...)+depth with alternating Add/Deref spine.
SymRef DeepExpr(int depth) {
  SymRef e = SymExpr::Arg(0);
  for (int i = 1; i <= depth; ++i) {
    e = SymExpr::Deref(SymAdd(e, i));
    e = SymExpr::Bin(BinOp::kXor, e, SymExpr::InitReg(i % 8));
  }
  return e;
}

void BM_SymExprEqualDeep_Interned(benchmark::State& state) {
  ScopedExprInterning on(true);
  // Two separately-built but structurally identical trees: interning
  // canonicalizes them to the same node, so Equal is one compare.
  SymRef a = DeepExpr(32);
  SymRef b = DeepExpr(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SymExpr::Equal(a, b));
  }
}
BENCHMARK(BM_SymExprEqualDeep_Interned);

void BM_SymExprEqualDeep_Legacy(benchmark::State& state) {
  ScopedExprInterning off(false);
  SymRef a = DeepExpr(32);
  SymRef b = DeepExpr(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SymExpr::Equal(a, b));
  }
}
BENCHMARK(BM_SymExprEqualDeep_Legacy);

void BM_SymExprReplace_Interned(benchmark::State& state) {
  ScopedExprInterning on(true);
  SymRef hay = DeepExpr(32);
  SymRef from = SymExpr::Arg(0);  // buried at the bottom of the spine
  SymRef to = SymExpr::Sp0();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SymExpr::Replace(hay, from, to));
  }
}
BENCHMARK(BM_SymExprReplace_Interned);

void BM_SymExprReplace_Legacy(benchmark::State& state) {
  ScopedExprInterning off(false);
  SymRef hay = DeepExpr(32);
  SymRef from = SymExpr::Arg(0);
  SymRef to = SymExpr::Sp0();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SymExpr::Replace(hay, from, to));
  }
}
BENCHMARK(BM_SymExprReplace_Legacy);

void BM_SymExprReplaceMiss_Interned(benchmark::State& state) {
  ScopedExprInterning on(true);
  // Absent needle: the bloom/kind-mask prune answers without a walk.
  SymRef hay = DeepExpr(32);
  SymRef from = SymExpr::Arg(7);
  SymRef to = SymExpr::Sp0();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SymExpr::Replace(hay, from, to));
  }
}
BENCHMARK(BM_SymExprReplaceMiss_Interned);

void BM_BinNormalization_Interned(benchmark::State& state) {
  ScopedExprInterning on(true);
  SymRef base = SymExpr::Arg(0);
  for (auto _ : state) {
    // (arg0 + 4) + 4 + ... — the store-address pattern the engine
    // normalizes millions of times; every node here is an intern hit.
    SymRef e = base;
    for (int i = 0; i < 16; ++i) e = SymAdd(e, 4);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_BinNormalization_Interned);

void BM_BinNormalization_Legacy(benchmark::State& state) {
  ScopedExprInterning off(false);
  SymRef base = SymExpr::Arg(0);
  for (auto _ : state) {
    SymRef e = base;
    for (int i = 0; i < 16; ++i) e = SymAdd(e, 4);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_BinNormalization_Legacy);

void BM_IsTaintedDeep_Interned(benchmark::State& state) {
  ScopedExprInterning on(true);
  SymRef e = SymAdd(SymExpr::Bin(BinOp::kXor, DeepExpr(32),
                                 SymExpr::Taint(0x10, "recv")),
                    8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(e->IsTainted());
  }
}
BENCHMARK(BM_IsTaintedDeep_Interned);

/// Shared medium-sized program for the per-phase benchmarks.
const SynthOutput& TestProgram() {
  static const SynthOutput out = [] {
    ProgramSpec spec;
    spec.name = "bench";
    spec.arch = Arch::kDtArm;
    spec.seed = 42;
    spec.filler_functions = 120;
    PlantSpec p;
    p.id = "b1";
    p.pattern = VulnPattern::kAliasChain;
    p.source = "recv";
    p.sink = "strcpy";
    spec.plants = {p};
    return std::move(*SynthesizeBinary(spec));
  }();
  return out;
}

void BM_DecodeInsn(benchmark::State& state) {
  uint32_t word = *Encode({Op::kLdrW, 1, 5, 0, 0x4C});
  for (auto _ : state) {
    benchmark::DoNotOptimize(Decode(word));
  }
}
BENCHMARK(BM_DecodeInsn);

void BM_EncodeInsn(benchmark::State& state) {
  Insn insn{Op::kAddI, 2, 3, 0, 100};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Encode(insn));
  }
}
BENCHMARK(BM_EncodeInsn);

void BM_LiftBlock(benchmark::State& state) {
  const Binary& bin = TestProgram().binary;
  Lifter lifter(bin);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lifter.LiftBlock(bin.entry));
  }
}
BENCHMARK(BM_LiftBlock);

void BM_BuildProgramCfg(benchmark::State& state) {
  const Binary& bin = TestProgram().binary;
  CfgBuilder builder(bin);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.BuildProgram());
  }
}
BENCHMARK(BM_BuildProgramCfg);

void BM_SymExecFunction(benchmark::State& state) {
  const Binary& bin = TestProgram().binary;
  CfgBuilder builder(bin);
  Program program = std::move(*builder.BuildProgram());
  SymEngine engine(bin);
  const Function& fn = program.functions.at("b1_handler");
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Analyze(fn));
  }
}
BENCHMARK(BM_SymExecFunction);

void BM_SymExecFunction_Legacy(benchmark::State& state) {
  ScopedExprInterning off(false);
  const Binary& bin = TestProgram().binary;
  CfgBuilder builder(bin);
  Program program = std::move(*builder.BuildProgram());
  SymEngine engine(bin);
  const Function& fn = program.functions.at("b1_handler");
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Analyze(fn));
  }
}
BENCHMARK(BM_SymExecFunction_Legacy);

// ---- symbolic-state microbenchmarks ----------------------------------------
//
// Fork/mutate churn is the engine's inner loop: every symbolic branch
// copies the path state. The CoW pair measures the persistent
// spine+overlay representation against the legacy deep-copying
// containers on an identically populated state.

/// Populates a state the way a deep path does: register traffic, ~100
/// distinct memory cells (long paths accumulate stores well past the
/// entry state's six), and a dozen constraints.
SymState PopulateState() {
  SymState s = SymState::Entry(Arch::kDtArm);
  for (int r = 0; r < kNumIrRegs; ++r) {
    s.SetReg(r, SymAdd(SymExpr::Arg(r % 4), r));
  }
  for (int i = 0; i < 96; ++i) {
    s.StoreMem(SymAdd(SymExpr::Arg(i % 4), 8 * i),
               SymExpr::Const(static_cast<uint32_t>(i)), 4);
  }
  for (int i = 0; i < 12; ++i) {
    s.PushConstraint({BinOp::kCmpLt, SymExpr::Arg(i % 4),
                      SymExpr::Const(static_cast<uint32_t>(64 + i)), true,
                      static_cast<uint32_t>(0x100 + i)});
  }
  return s;
}

/// One fork plus the child's small divergence — the per-branch cost.
void StateForkBody(benchmark::State& state) {
  SymState parent = PopulateState();
  // Pre-intern the divergence expressions so the loop times state
  // operations, not expression construction (identical in both modes).
  SymRef daddr = SymAdd(SymExpr::Arg(0), 4);
  std::array<SymRef, 16> dvals;
  for (size_t i = 0; i < dvals.size(); ++i) {
    dvals[i] = SymExpr::Const(static_cast<uint32_t>(0x9000 + i));
  }
  uint32_t salt = 0;
  for (auto _ : state) {
    SymState child = parent.Fork();
    const SymRef& v = dvals[++salt % dvals.size()];
    child.StoreMem(daddr, v, 4);
    child.SetReg(2, v);
    benchmark::DoNotOptimize(child.MemEntryCount());
  }
}

void BM_StateFork(benchmark::State& state) {
  ScopedStateCow on(true);
  StateForkBody(state);
}
BENCHMARK(BM_StateFork);

void BM_StateFork_Legacy(benchmark::State& state) {
  ScopedStateCow off(false);
  StateForkBody(state);
}
BENCHMARK(BM_StateFork_Legacy);

/// Fan-out/fan-in churn: a parent forks eight children, each diverges
/// with stores and a constraint, and all observables are consumed —
/// the shape of a branchy block's exploration frontier.
void StateMergeBody(benchmark::State& state) {
  SymState parent = PopulateState();
  for (auto _ : state) {
    size_t sum = 0;
    for (int c = 0; c < 8; ++c) {
      SymState child = parent.Fork();
      child.PushConstraint({BinOp::kCmpEq, SymExpr::Arg(c % 4),
                            SymExpr::Const(static_cast<uint32_t>(c)), true,
                            0x200});
      for (int i = 0; i < 4; ++i) {
        child.StoreMem(SymAdd(SymExpr::Sp0(), -(8 * c + i)),
                       SymExpr::Const(static_cast<uint32_t>(c * 16 + i)), 4);
      }
      sum += child.MemEntryCount() + child.ConstraintCount();
    }
    benchmark::DoNotOptimize(sum);
  }
}

void BM_StateMerge(benchmark::State& state) {
  ScopedStateCow on(true);
  StateMergeBody(state);
}
BENCHMARK(BM_StateMerge);

void BM_StateMerge_Legacy(benchmark::State& state) {
  ScopedStateCow off(false);
  StateMergeBody(state);
}
BENCHMARK(BM_StateMerge_Legacy);

void BM_AliasReplace(benchmark::State& state) {
  const Binary& bin = TestProgram().binary;
  CfgBuilder builder(bin);
  Program program = std::move(*builder.BuildProgram());
  SymEngine engine(bin);
  FunctionSummary summary =
      engine.Analyze(program.functions.at("b1_woo"));
  for (auto _ : state) {
    FunctionSummary copy = summary;
    benchmark::DoNotOptimize(AliasReplace(copy));
  }
}
BENCHMARK(BM_AliasReplace);

// ---- on-demand alias oracle queries ----------------------------------------
//
// Cold = first TwinsFor on a summary (fact collection + twin
// computation, what phase 1 saves by deferring); warm = the memoized
// path every later taint-transfer / indirect-call query takes;
// MayAlias = a full canonicalize-and-compare query through the memo.

void BM_AliasQueryColdTwins(benchmark::State& state) {
  const Binary& bin = TestProgram().binary;
  CfgBuilder builder(bin);
  Program program = std::move(*builder.BuildProgram());
  SymEngine engine(bin);
  FunctionSummary summary =
      engine.Analyze(program.functions.at("b1_woo"));
  for (auto _ : state) {
    OnDemandAliasOracle oracle;
    benchmark::DoNotOptimize(oracle.TwinsFor(summary));
  }
}
BENCHMARK(BM_AliasQueryColdTwins);

void BM_AliasQueryWarmTwins(benchmark::State& state) {
  const Binary& bin = TestProgram().binary;
  CfgBuilder builder(bin);
  Program program = std::move(*builder.BuildProgram());
  SymEngine engine(bin);
  FunctionSummary summary =
      engine.Analyze(program.functions.at("b1_woo"));
  OnDemandAliasOracle oracle;
  oracle.TwinsFor(summary);
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.TwinsFor(summary));
  }
}
BENCHMARK(BM_AliasQueryWarmTwins);

void BM_AliasQueryMayAlias(benchmark::State& state) {
  const Binary& bin = TestProgram().binary;
  CfgBuilder builder(bin);
  Program program = std::move(*builder.BuildProgram());
  SymEngine engine(bin);
  FunctionSummary summary =
      engine.Analyze(program.functions.at("b1_woo"));
  OnDemandAliasOracle oracle;
  const std::vector<AliasFact>& facts = oracle.FactsFor(summary);
  if (facts.empty()) {
    state.SkipWithError("no alias facts in b1_woo");
    return;
  }
  // The two SSE spellings of the same cell: through the alias name and
  // through the stored base+offset — a query that must canonicalize.
  SymRef via_alias = SymExpr::Deref(SymAdd(facts[0].alias_loc, 0x10));
  SymRef via_base = SymExpr::Deref(
      SymAdd(SymAdd(facts[0].base, facts[0].offset), 0x10));
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.MayAlias(summary, via_alias, via_base));
  }
}
BENCHMARK(BM_AliasQueryMayAlias);

void BM_LayoutSimilarity(benchmark::State& state) {
  const Binary& bin = TestProgram().binary;
  CfgBuilder builder(bin);
  Program program = std::move(*builder.BuildProgram());
  SymEngine engine(bin);
  FunctionSummary a = engine.Analyze(program.functions.at("b1_woo"));
  FunctionSummary b = engine.Analyze(program.functions.at("b1_handler"));
  auto la = ExtractLayouts(a);
  auto lb = ExtractLayouts(b);
  if (la.empty() || lb.empty()) {
    state.SkipWithError("no layouts");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(LayoutSimilarity(la[0], lb[0]));
  }
}
BENCHMARK(BM_LayoutSimilarity);

void BM_WholeBinaryDetection(benchmark::State& state) {
  const Binary& bin = TestProgram().binary;
  DTaint detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Analyze(bin));
  }
}
BENCHMARK(BM_WholeBinaryDetection);

void BM_BottomUpLinking(benchmark::State& state) {
  const Binary& bin = TestProgram().binary;
  CfgBuilder builder(bin);
  Program program = std::move(*builder.BuildProgram());
  SymEngine engine(bin);
  CallGraph graph = CallGraph::Build(program);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunBottomUp(program, graph, engine));
  }
}
BENCHMARK(BM_BottomUpLinking);

/// ConsoleReporter subclass that tees every per-iteration result into
/// the harness while keeping google-benchmark's normal console table.
class HarnessReporter : public benchmark::ConsoleReporter {
 public:
  explicit HarnessReporter(bench::Harness& harness) : harness_(harness) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type == Run::RT_Aggregate) continue;
      double iters = run.iterations > 0
                         ? static_cast<double>(run.iterations)
                         : 1.0;
      harness_.AddExternalRun(
          run.benchmark_name(), run.real_accumulated_time,
          {{"real_nanos", run.real_accumulated_time * 1e9 / iters},
           {"cpu_nanos", run.cpu_accumulated_time * 1e9 / iters}});
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  bench::Harness& harness_;
};

}  // namespace
}  // namespace dtaint

int main(int argc, char** argv) {
  // The harness consumes --json-out/--trace-out/--reps; the leftovers
  // go to google-benchmark (we skip ReportUnrecognizedArguments so the
  // harness flags don't trip it).
  dtaint::bench::Harness harness("micro_engine", argc, argv);
  benchmark::Initialize(&argc, argv);
  dtaint::HarnessReporter reporter(harness);
  size_t ran = benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return harness.Finish(ran > 0);
}
