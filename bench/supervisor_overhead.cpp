// Supervisor bench (extra): isolated workers vs in-process A/B.
//
// The crash-isolated scan supervisor (src/resilience/supervisor.h)
// buys fault containment with a fork per image, a pipe round-trip,
// and a JSON wire codec on every outcome. This bench prices that
// isolation tax: the same synthesized fleet is scanned twice through
// the same ScanSupervisor — once with force_in_process (direct call,
// the A side) and once with real forked workers (the B side) — and
// the wall-clock ratio is reported as supervisor.overhead_ratio.
//
// The ratio is informational (the `_ratio` suffix exempts it from the
// bench_diff regression gate — fork cost is kernel- and
// machine-dependent), but the detection counts are not: both sides
// must produce identical findings/function/tp tallies, or the wire
// codec is corrupting outcomes in flight. Those bare counts are
// exact-match gated against the committed baseline.
#include <cstdio>
#include <vector>

#include "src/core/dtaint.h"
#include "src/obs/bench.h"
#include "src/report/json.h"
#include "src/report/table.h"
#include "src/resilience/supervisor.h"
#include "src/synth/firmware_synth.h"
#include "src/util/strings.h"

using namespace dtaint;

namespace {

std::vector<Binary> BuildFleet() {
  std::vector<Binary> fleet;
  for (int seed = 0; seed < 8; ++seed) {
    ProgramSpec spec;
    spec.name = "sup" + std::to_string(seed);
    spec.arch = seed % 2 ? Arch::kDtMips : Arch::kDtArm;
    spec.seed = 7000 + static_cast<uint64_t>(seed);
    spec.filler_functions = 24;
    PlantSpec p;
    p.id = "v";
    p.pattern = static_cast<VulnPattern>(seed % 5);
    p.source = (p.pattern == VulnPattern::kDispatch ||
                p.pattern == VulnPattern::kLoopCopy ||
                p.pattern == VulnPattern::kAliasChain)
                   ? "recv"
                   : "getenv";
    p.sink = p.pattern == VulnPattern::kLoopCopy
                 ? "loop"
                 : (p.pattern == VulnPattern::kDispatch ? "memcpy"
                                                        : "system");
    spec.plants = {p};
    auto out = SynthesizeBinary(spec);
    if (out.ok()) fleet.push_back(std::move(out->binary));
  }
  return fleet;
}

std::vector<TaskSpec> FleetTasks(const std::vector<Binary>& fleet) {
  std::vector<TaskSpec> tasks;
  for (size_t i = 0; i < fleet.size(); ++i) {
    TaskSpec task;
    task.label = "sup" + std::to_string(i);
    task.fingerprint = "bench_fp_" + std::to_string(i);
    tasks.push_back(task);
  }
  return tasks;
}

struct FleetTotals {
  uint64_t done = 0;
  uint64_t functions = 0;
  uint64_t findings = 0;
  uint64_t tp = 0;
};

/// One full fleet pass through the supervisor; the TaskFn runs a real
/// analysis and serializes real findings, so the isolated side pays
/// the genuine wire-codec cost, not a toy payload's.
FleetTotals RunFleet(const std::vector<Binary>& fleet,
                     const std::vector<TaskSpec>& tasks, bool in_process,
                     bench::Rep& rep) {
  SupervisorConfig config;
  config.force_in_process = in_process;
  ScanSupervisor supervisor(config);
  auto results = supervisor.Run(
      tasks, [&](size_t index, const AnalysisBudget&) {
        ScanOutcome out;
        auto report = DTaint(DTaintConfig{}).Analyze(fleet[index]);
        if (!report.ok()) {
          out.status = "failed";
          return out;
        }
        out.status = "ok";
        out.complete = report->complete;
        out.functions = report->functions;
        out.findings = report->findings.size();
        out.findings_json = FindingsToJson(report->findings);
        return out;
      });
  FleetTotals totals;
  for (const TaskResult& result : results) {
    if (result.state != TaskResult::State::kDone) continue;
    ++totals.done;
    totals.functions += result.outcome.functions;
    totals.findings += result.outcome.findings;
    totals.tp += result.outcome.tp;
  }
  rep.Value("done", static_cast<double>(totals.done));
  rep.Value("functions", static_cast<double>(totals.functions));
  rep.Value("findings", static_cast<double>(totals.findings));
  return totals;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("supervisor_overhead", argc, argv);
  std::printf("=== Scan supervisor: isolated workers vs in-process ===\n\n");

  std::vector<Binary> fleet = BuildFleet();
  std::vector<TaskSpec> tasks = FleetTasks(fleet);
  std::printf("fleet: %zu binaries, one fork per image on the isolated "
              "side\n\n",
              fleet.size());

  // Median-of-3 by wall time: fork+waitpid latency is at the mercy of
  // the scheduler, and the ratio is the headline.
  bench::RunOptions median3;
  median3.reps = 3;

  FleetTotals in_process_totals, isolated_totals;
  const bench::RunResult& in_process =
      harness.Run("in_process", median3, [&](bench::Rep& rep) {
        in_process_totals = RunFleet(fleet, tasks, /*in_process=*/true, rep);
      });
  const bench::RunResult& isolated =
      harness.Run("isolated", median3, [&](bench::Rep& rep) {
        isolated_totals = RunFleet(fleet, tasks, /*in_process=*/false, rep);
      });

  double ratio = in_process.wall_seconds > 0.0
                     ? isolated.wall_seconds / in_process.wall_seconds
                     : 0.0;
  TextTable table({"Mode", "Wall (s)", "Done", "Functions", "Findings"});
  auto row = [&](const char* name, const bench::RunResult& r) {
    table.AddRow({name, FmtDouble(r.wall_seconds, 3),
                  std::to_string(static_cast<size_t>(r.values.at("done"))),
                  std::to_string(
                      static_cast<size_t>(r.values.at("functions"))),
                  std::to_string(
                      static_cast<size_t>(r.values.at("findings")))});
  };
  row("in-process", in_process);
  row("isolated workers", isolated);
  std::printf("%s\n", table.Render().c_str());

  harness.AddExternalRun("derived", 0.0,
                         {{"supervisor.overhead_ratio", ratio}});
  harness.Note("overhead_ratio is informational: fork cost is "
               "machine-dependent; the count identity is the gate");

  bool identical = in_process_totals.done == isolated_totals.done &&
                   in_process_totals.functions == isolated_totals.functions &&
                   in_process_totals.findings == isolated_totals.findings &&
                   in_process_totals.tp == isolated_totals.tp;
  bool all_done = in_process_totals.done == tasks.size() &&
                  isolated_totals.done == tasks.size();
  std::printf("isolation overhead: %.2fx wall; outcomes identical across "
              "the wire: %s; all %zu images scanned on both sides: %s\n",
              ratio, identical ? "yes" : "NO", tasks.size(),
              all_done ? "yes" : "NO");
  return harness.Finish(identical && all_done);
}
