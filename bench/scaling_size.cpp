// Scaling bench (extra): analysis cost vs program size.
//
// The paper's core efficiency claim is structural — every function is
// symbolically analyzed exactly once, and linking is a cheap
// substitution pass — so end-to-end cost should grow near-linearly in
// function count while the top-down baseline grows with the number of
// calling *contexts*. This bench sweeps synthesized binaries from 100
// to 1600 functions and prints both curves, plus the effect of the
// parallel intraprocedural phase.
#include <cstdio>

#include "src/baseline/worklist_ddg.h"
#include "src/core/dtaint.h"
#include "src/obs/stopwatch.h"
#include "src/report/table.h"
#include "src/synth/firmware_synth.h"
#include "src/util/strings.h"

using namespace dtaint;

namespace {

SynthOutput ProgramOfSize(int functions) {
  ProgramSpec spec;
  spec.name = "scale" + std::to_string(functions);
  spec.arch = Arch::kDtArm;
  spec.seed = 1000 + functions;
  spec.filler_functions = functions - 3;  // plants + main fill the rest
  PlantSpec p;
  p.id = "s";
  p.pattern = VulnPattern::kWrapper;
  p.source = "recv";
  p.sink = "strcpy";
  spec.plants = {p};
  return std::move(*SynthesizeBinary(spec));
}

}  // namespace

int main() {
  std::printf("=== Scaling: cost vs program size ===\n\n");
  TextTable table({"Functions", "Blocks", "DTaint total (s)",
                   "s per 1k fns", "Baseline ctxs", "Baseline DDG (s)",
                   "DTaint 4-thread (s)"});

  for (int functions : {100, 200, 400, 800, 1600}) {
    SynthOutput out = ProgramOfSize(functions);

    DTaint seq;
    auto report = seq.Analyze(out.binary);
    if (!report.ok()) return 1;

    DTaintConfig par_config;
    par_config.interproc.num_threads = 4;
    DTaint par(par_config);
    auto par_report = par.Analyze(out.binary);

    CfgBuilder builder(out.binary);
    Program program = std::move(*builder.BuildProgram());
    BaselineConfig config;
    config.max_contexts = 100000;
    obs::Stopwatch baseline_watch;
    BaselineStats baseline = RunWorklistDdg(program, {"main"}, config);
    double baseline_seconds = baseline_watch.Seconds();

    table.AddRow(
        {std::to_string(report->analyzed_functions),
         WithCommas(report->blocks),
         FmtDouble(report->total_seconds, 3),
         FmtDouble(1000.0 * report->total_seconds /
                       report->analyzed_functions,
                   3),
         WithCommas(baseline.contexts_analyzed),
         FmtDouble(baseline_seconds, 3),
         FmtDouble(par_report->total_seconds, 3)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("expectation: 's per 1k fns' roughly flat (each function "
              "analyzed once);\nbaseline contexts grow super-linearly "
              "with call-graph density.\nnote: the 4-thread column is "
              "typically NOT faster — the symbolic phase is\nsmall-"
              "allocation-bound and contends in the default allocator "
              "(see InterprocConfig).\n");
  return 0;
}
