// Scaling bench (extra): analysis cost vs program size.
//
// The paper's core efficiency claim is structural — every function is
// symbolically analyzed exactly once, and linking is a cheap
// substitution pass — so end-to-end cost should grow near-linearly in
// function count while the top-down baseline grows with the number of
// calling *contexts*. This bench sweeps synthesized binaries from 100
// to 1600 functions and prints both curves, plus the effect of the
// parallel intraprocedural phase.
#include <cstdio>

#include "src/baseline/worklist_ddg.h"
#include "src/core/dtaint.h"
#include "src/obs/bench.h"
#include "src/obs/stopwatch.h"
#include "src/report/table.h"
#include "src/synth/firmware_synth.h"
#include "src/util/strings.h"

using namespace dtaint;

namespace {

SynthOutput ProgramOfSize(int functions) {
  ProgramSpec spec;
  spec.name = "scale" + std::to_string(functions);
  spec.arch = Arch::kDtArm;
  spec.seed = 1000 + functions;
  spec.filler_functions = functions - 3;  // plants + main fill the rest
  PlantSpec p;
  p.id = "s";
  p.pattern = VulnPattern::kWrapper;
  p.source = "recv";
  p.sink = "strcpy";
  spec.plants = {p};
  return std::move(*SynthesizeBinary(spec));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("scaling_size", argc, argv);
  std::printf("=== Scaling: cost vs program size ===\n\n");
  TextTable table({"Functions", "Blocks", "DTaint total (s)",
                   "s per 1k fns", "Baseline ctxs", "Baseline DDG (s)",
                   "DTaint 4-thread (s)"});

  for (int functions : {100, 200, 400, 800, 1600}) {
    SynthOutput out = ProgramOfSize(functions);

    // One run per size point: shape counts (functions/blocks/contexts)
    // are deterministic; the three timing curves are ratio-gated.
    Result<AnalysisReport> report = InvalidArgument("not analyzed");
    Result<AnalysisReport> par_report = InvalidArgument("not analyzed");
    BaselineStats baseline;
    double baseline_seconds = 0.0;
    harness.Run("functions=" + std::to_string(functions),
                [&](bench::Rep& rep) {
                  DTaint seq;
                  report = seq.Analyze(out.binary);
                  if (!report.ok()) return;

                  DTaintConfig par_config;
                  par_config.interproc.num_threads = 4;
                  DTaint par(par_config);
                  par_report = par.Analyze(out.binary);

                  CfgBuilder builder(out.binary);
                  Program program = std::move(*builder.BuildProgram());
                  BaselineConfig config;
                  config.max_contexts = 100000;
                  obs::Stopwatch baseline_watch;
                  baseline = RunWorklistDdg(program, {"main"}, config);
                  baseline_seconds = baseline_watch.Seconds();

                  rep.Value("total_seconds", report->total_seconds);
                  rep.Value("parallel_total_seconds",
                            par_report->total_seconds);
                  rep.Value("baseline_ddg_seconds", baseline_seconds);
                  rep.Value("analyzed_functions",
                            static_cast<double>(report->analyzed_functions));
                  rep.Value("blocks", static_cast<double>(report->blocks));
                  rep.Value("baseline_contexts",
                            static_cast<double>(baseline.contexts_analyzed));
                });
    if (!report.ok()) return harness.Finish(false);

    table.AddRow(
        {std::to_string(report->analyzed_functions),
         WithCommas(report->blocks),
         FmtDouble(report->total_seconds, 3),
         FmtDouble(1000.0 * report->total_seconds /
                       report->analyzed_functions,
                   3),
         WithCommas(baseline.contexts_analyzed),
         FmtDouble(baseline_seconds, 3),
         FmtDouble(par_report->total_seconds, 3)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("expectation: 's per 1k fns' roughly flat (each function "
              "analyzed once);\nbaseline contexts grow super-linearly "
              "with call-graph density.\nnote: the 4-thread column is "
              "typically NOT faster — the symbolic phase is\nsmall-"
              "allocation-bound and contends in the default allocator "
              "(see InterprocConfig).\n");
  return harness.Finish(true);
}
