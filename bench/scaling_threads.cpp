// Thread-scaling bench: sequential vs N-thread summary phase.
//
// The intraprocedural summary phase analyzes each function
// independently, so it parallelizes embarrassingly — but before the
// expression interner (src/symexec/intern.h) the threads serialized on
// the allocator and extra workers ran *slower* than one. This bench
// measures what the interner bought: the summary-production time
// (InterprocStats::summary_seconds) of a 12-binary corpus scan at
// num_threads = 1, 2, 4, 8, median-of-3 per point (via the shared
// bench harness), and reports the speedup of each point over
// sequential.
//
// Findings must be identical at every thread count (the differential
// test suite proves full-report byte equality; this bench totals
// findings as a cheap cross-check). The speedup self-check (>= 2x at
// 4 threads) is only enforced when the host actually has >= 4 cores —
// on a single-core box the bench still runs, still checks determinism,
// and prints the per-point numbers with an honest note.
// `--legacy` re-runs the sweep with interning disabled (the old
// heap-allocating expressions) for a direct before/after on the same
// host and corpus.
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "src/core/dtaint.h"
#include "src/obs/bench.h"
#include "src/report/table.h"
#include "src/symexec/intern.h"
#include "src/symexec/symstate.h"
#include "src/synth/firmware_synth.h"
#include "src/util/strings.h"

using namespace dtaint;

namespace {

std::vector<Binary> BuildCorpus() {
  std::vector<Binary> corpus;
  for (int seed = 0; seed < 12; ++seed) {
    ProgramSpec spec;
    spec.name = "scale" + std::to_string(seed);
    spec.arch = seed % 2 ? Arch::kDtMips : Arch::kDtArm;
    spec.seed = 7000 + static_cast<uint64_t>(seed);
    // Branch-heavy, compute-dense fillers (same workload shape as
    // bench/cache_warm): per-function symbolic exploration dominates,
    // which is exactly the work the thread pool spreads.
    spec.filler_functions = 40;
    spec.filler_min_blocks = 18;
    spec.filler_max_blocks = 44;
    spec.filler_alu_burst = 192;
    PlantSpec p;
    p.id = "v";
    p.pattern = static_cast<VulnPattern>(seed % 5);
    p.source = (p.pattern == VulnPattern::kDispatch ||
                p.pattern == VulnPattern::kLoopCopy ||
                p.pattern == VulnPattern::kAliasChain)
                   ? "recv"
                   : "getenv";
    p.sink = p.pattern == VulnPattern::kLoopCopy
                 ? "loop"
                 : (p.pattern == VulnPattern::kDispatch ? "memcpy"
                                                        : "system");
    spec.plants = {p};
    auto out = SynthesizeBinary(spec);
    if (out.ok()) corpus.push_back(std::move(out->binary));
  }
  return corpus;
}

void Sweep(const std::vector<Binary>& corpus, int num_threads,
           bench::Rep& rep) {
  double summary_seconds = 0.0;
  size_t findings = 0;
  for (const Binary& binary : corpus) {
    DTaintConfig config;
    config.interproc.num_threads = num_threads;
    auto report = DTaint(config).Analyze(binary);
    if (!report.ok()) continue;
    summary_seconds += report->interproc_stats.summary_seconds;
    findings += report->findings.size();
  }
  rep.Value("summary_seconds", summary_seconds);
  rep.Value("findings", static_cast<double>(findings));
}

}  // namespace

int main(int argc, char** argv) {
  bool legacy = false;
  bool legacy_state = false;
  for (int i = 1; i < argc; ++i) {
    legacy = legacy || std::strcmp(argv[i], "--legacy") == 0;
    legacy_state =
        legacy_state || std::strcmp(argv[i], "--legacy-state") == 0;
  }
  ScopedExprInterning toggle(!legacy);
  ScopedStateCow state_toggle(!legacy_state);
  bench::Harness harness(legacy ? "scaling_threads_legacy"
                                : "scaling_threads",
                         argc, argv);
  std::printf("=== Thread scaling: summary phase, 1/2/4/8 workers%s ===\n\n",
              legacy ? " (LEGACY: interning off)" : "");
  unsigned cores = std::thread::hardware_concurrency();
  std::vector<Binary> corpus = BuildCorpus();
  // Median-of-3 by summary time per point — one noisy scheduler tick
  // on a small box otherwise swings the headline ratio.
  bench::RunOptions median3;
  median3.reps = 3;
  median3.median_key = "summary_seconds";
  std::printf("corpus: %zu binaries, ~43 functions each; host cores: %u; "
              "median-of-%d\n\n",
              corpus.size(), cores, harness.RepsFor(median3.reps));
  harness.Note("host cores: " + std::to_string(cores));

  const int kThreadPoints[] = {1, 2, 4, 8};
  std::vector<const bench::RunResult*> results;
  for (int n : kThreadPoints) {
    results.push_back(&harness.Run(
        "threads=" + std::to_string(n), median3,
        [&](bench::Rep& rep) { Sweep(corpus, n, rep); }));
  }

  const bench::RunResult& seq = *results[0];
  double seq_summary = seq.values.at("summary_seconds");
  TextTable table({"Threads", "Summary (s)", "Wall (s)", "Findings",
                   "Summary speedup"});
  for (size_t i = 0; i < results.size(); ++i) {
    const bench::RunResult& r = *results[i];
    table.AddRow({std::to_string(kThreadPoints[i]),
                  FmtDouble(r.values.at("summary_seconds"), 3),
                  FmtDouble(r.wall_seconds, 3),
                  std::to_string(
                      static_cast<size_t>(r.values.at("findings"))),
                  FmtDouble(seq_summary / r.values.at("summary_seconds"),
                            2) +
                      "x"});
  }
  std::printf("%s\n", table.Render().c_str());

  bool identical = true;
  for (const bench::RunResult* r : results) {
    identical =
        identical && r->values.at("findings") == seq.values.at("findings");
  }
  double speedup4 = seq_summary / results[2]->values.at("summary_seconds");
  harness.AddExternalRun("derived", 0.0,
                         {{"four_thread_speedup", speedup4}});
  std::printf("findings identical across thread counts: %s\n",
              identical ? "yes" : "NO");
  if (cores >= 4) {
    std::printf("4-thread summary speedup: %.2fx (target >= 2x)\n",
                speedup4);
    return harness.Finish(identical && speedup4 >= 2.0);
  }
  std::printf("4-thread summary speedup: %.2fx — host has %u core(s), so "
              "the >= 2x target is not enforceable here (threads can only "
              "time-slice one core); determinism is still checked\n",
              speedup4, cores);
  return harness.Finish(identical);
}
