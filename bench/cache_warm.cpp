// Cache bench (extra): cold vs warm corpus re-scan.
//
// The persistent function-summary cache targets the fleet-audit loop:
// the same firmware corpus is re-scanned after every detector or
// signature tweak, but the binaries themselves rarely change. This
// bench scans a 20-binary synthesized corpus three ways — cold (no
// cache), populating (cold + store overhead), and warm (every summary
// served from disk).
//
// Two times are reported per phase. "Summary (s)" is the
// summary-production time (InterprocStats::summary_seconds: symbolic
// analysis + alias rewrite, or a cache hit) — the work the cache can
// serve, and the headline self-check: warm must be at least 3x faster
// than cold. "Wall (s)" is the whole pipeline including the phases no
// summary cache can skip (lifting, linking, indirect-call resolution,
// path search), so its ratio is Amdahl-bounded well below the
// summary-phase ratio; it is printed so the end-to-end win is never
// overstated.
//
// Repetition (median-of-3 by summary time) and per-phase metrics come
// from the shared bench harness; each rep's cache.* counters are a
// clean per-rep registry delta, so reps can't contaminate each other.
#include <cstdio>
#include <filesystem>
#include <vector>

#include "src/cache/summary_cache.h"
#include "src/core/dtaint.h"
#include "src/obs/bench.h"
#include "src/report/table.h"
#include "src/synth/firmware_synth.h"
#include "src/util/strings.h"

using namespace dtaint;

namespace {

std::vector<Binary> BuildCorpus() {
  std::vector<Binary> corpus;
  for (int seed = 0; seed < 20; ++seed) {
    ProgramSpec spec;
    spec.name = "fleet" + std::to_string(seed);
    spec.arch = seed % 2 ? Arch::kDtMips : Arch::kDtArm;
    spec.seed = 4000 + static_cast<uint64_t>(seed);
    // Branch-heavy, compute-dense fillers: symbolic exploration (up to
    // the per-function path budget, with checksum/parse-style
    // arithmetic on every path) dominates, as in real parser-dense
    // firmware — the workload the cache exists for. Tiny straight-line
    // functions are cheaper to re-analyze than to deserialize and
    // would undersell.
    spec.filler_functions = 40;
    spec.filler_min_blocks = 18;
    spec.filler_max_blocks = 44;
    spec.filler_alu_burst = 192;
    PlantSpec p;
    p.id = "v";
    p.pattern = static_cast<VulnPattern>(seed % 5);
    p.source = (p.pattern == VulnPattern::kDispatch ||
                p.pattern == VulnPattern::kLoopCopy ||
                p.pattern == VulnPattern::kAliasChain)
                   ? "recv"
                   : "getenv";
    p.sink = p.pattern == VulnPattern::kLoopCopy
                 ? "loop"
                 : (p.pattern == VulnPattern::kDispatch ? "memcpy"
                                                        : "system");
    spec.plants = {p};
    auto out = SynthesizeBinary(spec);
    if (out.ok()) corpus.push_back(std::move(out->binary));
  }
  return corpus;
}

struct SweepTotals {
  double summary_seconds = 0.0;
  size_t findings = 0;
  size_t hits = 0;
  size_t misses = 0;
};

/// Scans the corpus once and records the rep's results; hit/miss
/// counters come from the per-report registry-backed compat stats.
SweepTotals Sweep(const std::vector<Binary>& corpus, SummaryCache* cache,
                  bench::Rep& rep) {
  SweepTotals t;
  for (const Binary& binary : corpus) {
    DTaintConfig config;
    config.interproc.cache = cache;
    auto report = DTaint(config).Analyze(binary);
    if (!report.ok()) continue;
    t.summary_seconds += report->interproc_stats.summary_seconds;
    t.findings += report->findings.size();
    t.hits += report->interproc_stats.cache_hits;
    t.misses += report->interproc_stats.cache_misses;
  }
  rep.Value("summary_seconds", t.summary_seconds);
  rep.Value("findings", static_cast<double>(t.findings));
  rep.Value("hits", static_cast<double>(t.hits));
  rep.Value("misses", static_cast<double>(t.misses));
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("cache_warm", argc, argv);
  std::printf("=== Summary cache: cold vs warm corpus scan ===\n\n");
  std::filesystem::path dir = "bench_cache_warm_dir";
  std::filesystem::remove_all(dir);
  CacheConfig cache_config;
  cache_config.disk_dir = dir.string();

  std::vector<Binary> corpus = BuildCorpus();
  // Median-of-3 by summary-production time — one noisy scheduler tick
  // on a small box otherwise swings the headline ratio by tens of
  // percent.
  bench::RunOptions median3;
  median3.reps = 3;
  median3.median_key = "summary_seconds";
  std::printf("corpus: %zu binaries, ~63 functions each; median-of-%d\n\n",
              corpus.size(), harness.RepsFor(median3.reps));

  const bench::RunResult& cold = harness.Run(
      "cold", median3, [&](bench::Rep& rep) { Sweep(corpus, nullptr, rep); });

  // The summed per-report compat counters must equal both the cache's
  // own lifetime CacheStats and the harness's per-rep registry delta —
  // three views of the same traffic.
  bool compat_ok = true;
  bench::RunOptions once;
  const bench::RunResult& populate =
      harness.Run("populate", once, [&](bench::Rep& rep) {
        SummaryCache cache(cache_config);
        SweepTotals t = Sweep(corpus, &cache, rep);
        CacheStats stats = cache.stats();
        compat_ok = compat_ok && t.hits == stats.hits &&
                    t.misses == stats.misses;
      });
  compat_ok =
      compat_ok &&
      populate.metrics.CounterValue("cache.hits") ==
          static_cast<uint64_t>(populate.values.at("hits")) &&
      populate.metrics.CounterValue("cache.misses") ==
          static_cast<uint64_t>(populate.values.at("misses"));

  const bench::RunResult& warm =
      harness.Run("warm", median3, [&](bench::Rep& rep) {
        // Fresh instance per rep = fresh process: the memory tier
        // starts empty and everything must come off disk.
        SummaryCache cache(cache_config);
        SweepTotals t = Sweep(corpus, &cache, rep);
        CacheStats stats = cache.stats();
        compat_ok = compat_ok && t.hits == stats.hits &&
                    t.misses == stats.misses;
      });
  compat_ok = compat_ok &&
              warm.metrics.CounterValue("cache.hits") ==
                  static_cast<uint64_t>(warm.values.at("hits"));
  std::filesystem::remove_all(dir);

  double cold_summary = cold.values.at("summary_seconds");
  double warm_summary = warm.values.at("summary_seconds");
  TextTable table({"Phase", "Summary (s)", "Wall (s)", "Findings",
                   "Hits", "Misses", "Summary speedup"});
  auto row = [&](const char* name, const bench::RunResult& r) {
    table.AddRow({name, FmtDouble(r.values.at("summary_seconds"), 3),
                  FmtDouble(r.wall_seconds, 3),
                  std::to_string(static_cast<size_t>(r.values.at("findings"))),
                  std::to_string(static_cast<size_t>(r.values.at("hits"))),
                  std::to_string(static_cast<size_t>(r.values.at("misses"))),
                  FmtDouble(cold_summary / r.values.at("summary_seconds"),
                            2) +
                      "x"});
  };
  row("cold (no cache)", cold);
  row("populating", populate);
  row("warm (from disk)", warm);
  std::printf("%s\n", table.Render().c_str());

  double speedup = cold_summary / warm_summary;
  harness.AddExternalRun("derived", 0.0,
                         {{"warm_speedup", speedup},
                          {"wall_speedup",
                           cold.wall_seconds / warm.wall_seconds}});
  harness.Note("warm_speedup target >= 3x");
  bool identical = cold.values.at("findings") == warm.values.at("findings") &&
                   cold.values.at("findings") ==
                       populate.values.at("findings");
  std::printf("warm summary-production speedup: %.2fx (target >= 3x); "
              "end-to-end wall: %.2fx; findings identical across "
              "phases: %s\n",
              speedup, cold.wall_seconds / warm.wall_seconds,
              identical ? "yes" : "NO");
  std::printf("(the differential test suite proves full-report byte "
              "equality; this bench only totals findings)\n");
  std::printf("registry-backed hit/miss counters match the cache's own "
              "CacheStats and the per-rep metrics delta: %s\n",
              compat_ok ? "yes" : "NO");
  bool ok = speedup >= 3.0 && identical &&
            warm.values.at("misses") == 0 && compat_ok;
  return harness.Finish(ok);
}
