// Cache bench (extra): cold vs warm corpus re-scan.
//
// The persistent function-summary cache targets the fleet-audit loop:
// the same firmware corpus is re-scanned after every detector or
// signature tweak, but the binaries themselves rarely change. This
// bench scans a 20-binary synthesized corpus three ways — cold (no
// cache), populating (cold + store overhead), and warm (every summary
// served from disk).
//
// Two times are reported per phase. "Summary (s)" is the
// summary-production time (InterprocStats::summary_seconds: symbolic
// analysis + alias rewrite, or a cache hit) — the work the cache can
// serve, and the headline self-check: warm must be at least 3x faster
// than cold. "Wall (s)" is the whole pipeline including the phases no
// summary cache can skip (lifting, linking, indirect-call resolution,
// path search), so its ratio is Amdahl-bounded well below the
// summary-phase ratio; it is printed so the end-to-end win is never
// overstated.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "src/cache/summary_cache.h"
#include "src/core/dtaint.h"
#include "src/obs/stopwatch.h"
#include "src/report/table.h"
#include "src/synth/firmware_synth.h"
#include "src/util/strings.h"

using namespace dtaint;

namespace {

std::vector<Binary> BuildCorpus() {
  std::vector<Binary> corpus;
  for (int seed = 0; seed < 20; ++seed) {
    ProgramSpec spec;
    spec.name = "fleet" + std::to_string(seed);
    spec.arch = seed % 2 ? Arch::kDtMips : Arch::kDtArm;
    spec.seed = 4000 + static_cast<uint64_t>(seed);
    // Branch-heavy, compute-dense fillers: symbolic exploration (up to
    // the per-function path budget, with checksum/parse-style
    // arithmetic on every path) dominates, as in real parser-dense
    // firmware — the workload the cache exists for. Tiny straight-line
    // functions are cheaper to re-analyze than to deserialize and
    // would undersell.
    spec.filler_functions = 40;
    spec.filler_min_blocks = 18;
    spec.filler_max_blocks = 44;
    spec.filler_alu_burst = 192;
    PlantSpec p;
    p.id = "v";
    p.pattern = static_cast<VulnPattern>(seed % 5);
    p.source = (p.pattern == VulnPattern::kDispatch ||
                p.pattern == VulnPattern::kLoopCopy ||
                p.pattern == VulnPattern::kAliasChain)
                   ? "recv"
                   : "getenv";
    p.sink = p.pattern == VulnPattern::kLoopCopy
                 ? "loop"
                 : (p.pattern == VulnPattern::kDispatch ? "memcpy"
                                                        : "system");
    spec.plants = {p};
    auto out = SynthesizeBinary(spec);
    if (out.ok()) corpus.push_back(std::move(out->binary));
  }
  return corpus;
}

struct SweepResult {
  double seconds = 0.0;          // wall clock for the whole sweep
  double summary_seconds = 0.0;  // summary production (what the cache serves)
  size_t findings = 0;
  size_t hits = 0;
  size_t misses = 0;
};

SweepResult Sweep(const std::vector<Binary>& corpus, SummaryCache* cache) {
  SweepResult r;
  obs::Stopwatch watch;
  for (const Binary& binary : corpus) {
    DTaintConfig config;
    config.interproc.cache = cache;
    auto report = DTaint(config).Analyze(binary);
    if (!report.ok()) continue;
    r.summary_seconds += report->interproc_stats.summary_seconds;
    r.findings += report->findings.size();
    // Registry-backed compat counters (InterprocStats is populated from
    // the "cache.*" metrics); summed over the sweep they must equal the
    // cache's own lifetime CacheStats — checked in main.
    r.hits += report->interproc_stats.cache_hits;
    r.misses += report->interproc_stats.cache_misses;
  }
  r.seconds = watch.Seconds();
  return r;
}

/// Runs the sweep `reps` times and keeps the run with the median
/// summary-production time — one noisy scheduler tick on a small box
/// otherwise swings the headline ratio by tens of percent.
template <typename MakeSweep>
SweepResult MedianOf(int reps, MakeSweep make_sweep) {
  std::vector<SweepResult> runs;
  for (int i = 0; i < reps; ++i) runs.push_back(make_sweep());
  std::sort(runs.begin(), runs.end(),
            [](const SweepResult& a, const SweepResult& b) {
              return a.summary_seconds < b.summary_seconds;
            });
  return runs[runs.size() / 2];
}

}  // namespace

int main() {
  std::printf("=== Summary cache: cold vs warm corpus scan ===\n\n");
  std::filesystem::path dir = "bench_cache_warm_dir";
  std::filesystem::remove_all(dir);
  CacheConfig cache_config;
  cache_config.disk_dir = dir.string();

  std::vector<Binary> corpus = BuildCorpus();
  std::printf("corpus: %zu binaries, ~63 functions each\n\n",
              corpus.size());

  SweepResult cold = MedianOf(3, [&] { return Sweep(corpus, nullptr); });

  bool compat_ok = true;
  SweepResult populate;
  {
    SummaryCache cache(cache_config);
    populate = Sweep(corpus, &cache);
    CacheStats stats = cache.stats();
    compat_ok = compat_ok && populate.hits == stats.hits &&
                populate.misses == stats.misses;
  }

  SweepResult warm = MedianOf(3, [&] {
    // Fresh instance per run = fresh process: the memory tier starts
    // empty and everything must come off disk.
    SummaryCache cache(cache_config);
    SweepResult r = Sweep(corpus, &cache);
    CacheStats stats = cache.stats();
    compat_ok = compat_ok && r.hits == stats.hits &&
                r.misses == stats.misses;
    return r;
  });
  std::filesystem::remove_all(dir);

  TextTable table({"Phase", "Summary (s)", "Wall (s)", "Findings",
                   "Hits", "Misses", "Summary speedup"});
  auto row = [&](const char* name, const SweepResult& r) {
    table.AddRow({name, FmtDouble(r.summary_seconds, 3),
                  FmtDouble(r.seconds, 3), std::to_string(r.findings),
                  std::to_string(r.hits), std::to_string(r.misses),
                  FmtDouble(cold.summary_seconds / r.summary_seconds, 2) +
                      "x"});
  };
  row("cold (no cache)", cold);
  row("populating", populate);
  row("warm (from disk)", warm);
  std::printf("%s\n", table.Render().c_str());

  double speedup = cold.summary_seconds / warm.summary_seconds;
  bool identical = cold.findings == warm.findings &&
                   cold.findings == populate.findings;
  std::printf("warm summary-production speedup: %.2fx (target >= 3x); "
              "end-to-end wall: %.2fx; findings identical across "
              "phases: %s\n",
              speedup, cold.seconds / warm.seconds,
              identical ? "yes" : "NO");
  std::printf("(the differential test suite proves full-report byte "
              "equality; this bench only totals findings)\n");
  std::printf("registry-backed hit/miss counters match the cache's own "
              "CacheStats: %s\n", compat_ok ? "yes" : "NO");
  return (speedup >= 3.0 && identical && warm.misses == 0 && compat_ok)
             ? 0
             : 1;
}
