// Dense dynamic bitset with a two-word inline buffer.
//
// Replaces the std::set<uint32_t> visited-block sets in the symbolic
// engine: blocks are numbered densely per function, so membership is a
// word index + mask instead of a red-black tree walk, and copying a
// path state copies two inline words for the common (≤128 block)
// function instead of rebuilding a tree. Bits auto-grow on Set; Test
// beyond the current capacity reads as false.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace dtaint {

class DynamicBitset {
 public:
  static constexpr size_t kInlineWords = 2;

  DynamicBitset() = default;
  ~DynamicBitset() { delete[] heap_; }

  DynamicBitset(const DynamicBitset& other) { CopyFrom(other); }
  DynamicBitset& operator=(const DynamicBitset& other) {
    if (this != &other) {
      delete[] heap_;
      heap_ = nullptr;
      CopyFrom(other);
    }
    return *this;
  }
  DynamicBitset(DynamicBitset&& other) noexcept { MoveFrom(other); }
  DynamicBitset& operator=(DynamicBitset&& other) noexcept {
    if (this != &other) {
      delete[] heap_;
      MoveFrom(other);
    }
    return *this;
  }

  bool Test(size_t bit) const {
    size_t word = bit >> 6;
    if (word >= words_) return false;
    return (data()[word] >> (bit & 63)) & 1;
  }

  void Set(size_t bit) {
    size_t word = bit >> 6;
    if (word >= words_) Grow(word + 1);
    data()[word] |= uint64_t{1} << (bit & 63);
  }

  /// Number of set bits.
  size_t Count() const {
    size_t n = 0;
    for (size_t i = 0; i < words_; ++i) n += Popcount(data()[i]);
    return n;
  }

  size_t capacity_bits() const { return words_ * 64; }

 private:
  static size_t Popcount(uint64_t w) {
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<size_t>(__builtin_popcountll(w));
#else
    size_t n = 0;
    while (w) {
      w &= w - 1;
      ++n;
    }
    return n;
#endif
  }

  uint64_t* data() { return heap_ ? heap_ : inline_; }
  const uint64_t* data() const { return heap_ ? heap_ : inline_; }

  void Grow(size_t need_words) {
    size_t new_words = words_ * 2;
    if (new_words < need_words) new_words = need_words;
    auto* fresh = new uint64_t[new_words];
    std::memcpy(fresh, data(), words_ * sizeof(uint64_t));
    std::memset(fresh + words_, 0, (new_words - words_) * sizeof(uint64_t));
    delete[] heap_;
    heap_ = fresh;
    words_ = new_words;
  }

  void CopyFrom(const DynamicBitset& other) {
    words_ = other.words_;
    if (other.heap_) {
      heap_ = new uint64_t[words_];
      std::memcpy(heap_, other.heap_, words_ * sizeof(uint64_t));
    } else {
      heap_ = nullptr;
      std::memcpy(inline_, other.inline_, sizeof(inline_));
    }
  }

  void MoveFrom(DynamicBitset& other) {
    words_ = other.words_;
    heap_ = other.heap_;
    std::memcpy(inline_, other.inline_, sizeof(inline_));
    other.heap_ = nullptr;
    other.words_ = kInlineWords;
    std::memset(other.inline_, 0, sizeof(other.inline_));
  }

  size_t words_ = kInlineWords;
  uint64_t inline_[kInlineWords] = {0, 0};
  uint64_t* heap_ = nullptr;
};

}  // namespace dtaint
