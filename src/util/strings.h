// Small string formatting helpers shared by printers and reports.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dtaint {

/// Formats v as "0x<hex>" without leading zeros (0 -> "0x0").
std::string HexStr(uint64_t v);

/// Joins parts with sep: Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if text starts with prefix.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Pads or truncates to exactly width columns (left-aligned).
std::string PadRight(std::string_view text, size_t width);

/// Pads on the left (right-aligned numbers in tables).
std::string PadLeft(std::string_view text, size_t width);

/// Formats a double with the given number of decimals.
std::string FmtDouble(double v, int decimals);

/// Formats an integer with thousands separators: 1234567 -> "1,234,567".
std::string WithCommas(uint64_t v);

/// Minimal JSON string escaping (quotes, backslash, control chars).
/// Lives here, below both src/report and src/cache, so the summary
/// cache's debug dumps don't have to depend on the report layer.
std::string JsonEscape(std::string_view text);

}  // namespace dtaint
