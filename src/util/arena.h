// Bump-pointer arena for per-function analysis scratch.
//
// The symbolic engine allocates a torrent of tiny, same-lifetime
// objects per function — memory-trie nodes, constraint-trail links,
// overlay spill arrays — that all die together the moment the
// function's summary is produced. A general-purpose allocator pays a
// sync'd free-list round-trip for each of them; the arena pays one
// pointer bump, and the whole population is released wholesale by
// Reset() (or the destructor).
//
// Non-trivially-destructible objects can be allocated through New /
// NewArray, which register their destructors on an intrusive list
// (the list nodes live in the arena too). Reset runs them newest-first
// — reverse construction order — so objects may reference earlier
// allocations from their destructors. SymRef fields are the motivating
// case: with interning on they are non-owning and destruction is free,
// but the legacy heap-allocating mode still holds real refcounts that
// must drop.
//
// Single-threaded by design: one arena per function analysis, owned by
// the worker that runs it. Not internally synchronized.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <utility>

namespace dtaint {

class BumpArena {
 public:
  static constexpr size_t kDefaultChunkBytes = 16 * 1024;

  explicit BumpArena(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes < 256 ? 256 : chunk_bytes) {}
  ~BumpArena() { Release(); }

  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;

  /// Raw storage, uninitialized. Alignment must be a power of two.
  void* Alloc(size_t bytes, size_t align = alignof(std::max_align_t)) {
    uintptr_t p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    if (p + bytes > limit_) {
      AddChunk(bytes + align);
      p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    }
    cursor_ = p + bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Constructs a T in the arena; registers its destructor unless T is
  /// trivially destructible.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    T* obj = new (Alloc(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      RegisterDtor(&DestroyThunk<T>, obj, 1);
    }
    return obj;
  }

  /// Value-initialized array of n Ts; one destructor record covers the
  /// whole array.
  template <typename T>
  T* NewArray(size_t n) {
    T* arr = static_cast<T*>(Alloc(sizeof(T) * n, alignof(T)));
    for (size_t i = 0; i < n; ++i) new (arr + i) T();
    if constexpr (!std::is_trivially_destructible_v<T>) {
      RegisterDtor(&DestroyThunk<T>, arr, n);
    }
    return arr;
  }

  /// Runs registered destructors (newest first) and frees every chunk.
  /// The arena is immediately reusable.
  void Reset() {
    Release();
    dtors_ = nullptr;
    chunks_ = nullptr;
    cursor_ = 0;
    limit_ = 0;
    bytes_reserved_ = 0;
  }

  /// Total bytes malloc'd for chunks (capacity, not live objects).
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Chunk {
    Chunk* next;
    // payload follows
  };
  struct DtorRecord {
    void (*destroy)(void* first, size_t count);
    void* first;
    size_t count;
    DtorRecord* next;
  };

  template <typename T>
  static void DestroyThunk(void* first, size_t count) {
    T* arr = static_cast<T*>(first);
    for (size_t i = count; i > 0; --i) arr[i - 1].~T();
  }

  void RegisterDtor(void (*destroy)(void*, size_t), void* first,
                    size_t count) {
    auto* rec = static_cast<DtorRecord*>(
        Alloc(sizeof(DtorRecord), alignof(DtorRecord)));
    rec->destroy = destroy;
    rec->first = first;
    rec->count = count;
    rec->next = dtors_;
    dtors_ = rec;
  }

  void AddChunk(size_t min_payload) {
    size_t payload = min_payload > chunk_bytes_ ? min_payload : chunk_bytes_;
    size_t total = sizeof(Chunk) + payload;
    auto* chunk = static_cast<Chunk*>(std::malloc(total));
    chunk->next = chunks_;
    chunks_ = chunk;
    cursor_ = reinterpret_cast<uintptr_t>(chunk) + sizeof(Chunk);
    limit_ = reinterpret_cast<uintptr_t>(chunk) + total;
    bytes_reserved_ += total;
  }

  void Release() {
    for (DtorRecord* rec = dtors_; rec; rec = rec->next) {
      rec->destroy(rec->first, rec->count);
    }
    for (Chunk* chunk = chunks_; chunk;) {
      Chunk* next = chunk->next;
      std::free(chunk);
      chunk = next;
    }
  }

  size_t chunk_bytes_;
  Chunk* chunks_ = nullptr;
  DtorRecord* dtors_ = nullptr;
  uintptr_t cursor_ = 0;
  uintptr_t limit_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace dtaint
