#include "src/util/json.h"

#include <cctype>
#include <cstdlib>

namespace dtaint {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  auto it = object().find(key);
  return it == object().end() ? nullptr : &it->second;
}

namespace {

constexpr int kMaxDepth = 200;  // recursion guard

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    Status status = ParseValue(&value, 0);
    if (!status.ok()) return status;
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing garbage");
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return CorruptData("json: " + what + " at offset " +
                       std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        Status status = ParseString(&s);
        if (!status.ok()) return status;
        *out = JsonValue(std::move(s));
        return Status::Ok();
      }
      case 't':
        if (!ConsumeWord("true")) return Error("bad literal");
        *out = JsonValue(true);
        return Status::Ok();
      case 'f':
        if (!ConsumeWord("false")) return Error("bad literal");
        *out = JsonValue(false);
        return Status::Ok();
      case 'n':
        if (!ConsumeWord("null")) return Error("bad literal");
        *out = JsonValue();
        return Status::Ok();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    JsonValue::Object object;
    SkipWhitespace();
    if (Consume('}')) {
      *out = JsonValue(std::move(object));
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      object.insert_or_assign(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}'");
    }
    *out = JsonValue(std::move(object));
    return Status::Ok();
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    JsonValue::Array array;
    SkipWhitespace();
    if (Consume(']')) {
      *out = JsonValue(std::move(array));
      return Status::Ok();
    }
    while (true) {
      JsonValue value;
      Status status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']'");
    }
    *out = JsonValue(std::move(array));
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    std::string s;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        s += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': s += '"'; break;
        case '\\': s += '\\'; break;
        case '/': s += '/'; break;
        case 'b': s += '\b'; break;
        case 'f': s += '\f'; break;
        case 'n': s += '\n'; break;
        case 'r': s += '\r'; break;
        case 't': s += '\t'; break;
        case 'u': {
          uint32_t cp = 0;
          if (!ParseHex4(&cp)) return Error("bad \\u escape");
          // Surrogate pair?
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              uint32_t low = 0;
              if (!ParseHex4(&low) || low < 0xDC00 || low > 0xDFFF) {
                return Error("bad low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else {
              return Error("lone high surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("lone low surrogate");
          }
          AppendUtf8(&s, cp);
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    *out = std::move(s);
    return Status::Ok();
  }

  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    *out = v;
    return true;
  }

  static void AppendUtf8(std::string* s, uint32_t cp) {
    if (cp < 0x80) {
      *s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *s += static_cast<char>(0xC0 | (cp >> 6));
      *s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *s += static_cast<char>(0xE0 | (cp >> 12));
      *s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *s += static_cast<char>(0xF0 | (cp >> 18));
      *s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() || !std::isdigit(
            static_cast<unsigned char>(text_[pos_]))) {
      pos_ = start;
      return Error("expected value");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("bad fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("bad exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    // The slice is a valid JSON number; strtod accepts a superset.
    std::string number(text_.substr(start, pos_ - start));
    *out = JsonValue(std::strtod(number.c_str(), nullptr));
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace dtaint
