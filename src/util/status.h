// Lightweight status/result types used across the library.
//
// The library avoids exceptions on expected failure paths (malformed
// binaries, corrupted firmware images, unsupported instructions) and
// returns Status / Result<T> instead, in the spirit of well-known
// distributed-systems codebases.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace dtaint {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kCorruptData,
  kUnsupported,
  kOutOfRange,
  kInternal,
};

/// Human-readable name for a StatusCode ("OK", "CORRUPT_DATA", ...).
std::string_view StatusCodeName(StatusCode code);

/// A success-or-error value carrying a code and a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status CorruptData(std::string msg) {
  return Status(StatusCode::kCorruptData, std::move(msg));
}
inline Status Unsupported(std::string msg) {
  return Status(StatusCode::kUnsupported, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

/// A value-or-error. Either holds a T (ok()) or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).ok() && "Result must not hold OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) return kOkStatus;
    return std::get<Status>(data_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace dtaint
