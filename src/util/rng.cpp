#include "src/util/rng.h"

#include <cassert>

namespace dtaint {

uint64_t Rng::Next() {
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::Below(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::Range(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Below(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

double Rng::Uniform() {
  // 53 bits of randomness in the mantissa.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

size_t Rng::WeightedPick(const std::vector<double>& weights) {
  if (weights.empty()) return 0;
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0);
  if (total <= 0.0) return 0;
  double x = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    double w = weights[i] > 0 ? weights[i] : 0;
    if (x < w) return i;
    x -= w;
  }
  return weights.size() - 1;
}

Rng Rng::Fork(uint64_t label) {
  return Rng(Next() ^ (label * 0xD1B54A32D192ED03ULL));
}

}  // namespace dtaint
