// FNV-1a hashing, hash-combining helpers, and the stable 128-bit
// fingerprint used as the function-summary cache key.
//
// Used for heap-pointer identity (hash of the callsite chain, paper
// §III-E), expression interning, firmware image checksums, and
// content-addressed summary caching.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace dtaint {

inline constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001B3ULL;

/// 64-bit FNV-1a over raw bytes.
uint64_t Fnv1a(std::span<const uint8_t> bytes, uint64_t seed = kFnvOffset);

/// 64-bit FNV-1a over a string.
uint64_t Fnv1a(std::string_view text, uint64_t seed = kFnvOffset);

/// Mixes a 64-bit value into an existing hash (order-sensitive).
constexpr uint64_t HashCombine(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

/// A 128-bit digest. Ordered so it can key std::map.
struct Hash128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const Hash128& other) const = default;
  bool operator<(const Hash128& other) const {
    return hi != other.hi ? hi < other.hi : lo < other.lo;
  }

  /// 32 lowercase hex characters (hi then lo) — the on-disk cache
  /// entry's file name.
  std::string ToHex() const;
};

/// Streaming 128-bit fingerprint builder (two decorrelated FNV-style
/// lanes plus a strong finalizer). The digest depends only on the
/// sequence of mixed *values* — never on pointers or iteration order of
/// unordered containers — so it is stable across process runs, which is
/// what lets cache entries written by one scan be reused by the next.
class Fingerprint128 {
 public:
  // Inline: key derivation mixes one value per IR field, so this runs
  // hundreds of thousands of times per scanned function.
  Fingerprint128& Mix(uint64_t v) {
    // Two FNV-style lanes with different primes; the second lane also
    // folds in the running position so swapped values land differently.
    a_ = (a_ ^ v) * kFnvPrime;
    b_ = (b_ ^ (v + 0x9E3779B97F4A7C15ULL + length_)) * 0xC2B2AE3D27D4EB4FULL;
    ++length_;
    return *this;
  }
  Fingerprint128& Mix(std::string_view text);
  Fingerprint128& Mix(std::span<const uint8_t> bytes);

  Hash128 Digest() const;

 private:
  uint64_t a_ = kFnvOffset;
  uint64_t b_ = 0x9AE16A3B2F90404FULL;
  uint64_t length_ = 0;
};

}  // namespace dtaint
