// FNV-1a hashing and hash-combining helpers.
//
// Used for heap-pointer identity (hash of the callsite chain, paper
// §III-E), expression interning, and firmware image checksums.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace dtaint {

inline constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001B3ULL;

/// 64-bit FNV-1a over raw bytes.
uint64_t Fnv1a(std::span<const uint8_t> bytes, uint64_t seed = kFnvOffset);

/// 64-bit FNV-1a over a string.
uint64_t Fnv1a(std::string_view text, uint64_t seed = kFnvOffset);

/// Mixes a 64-bit value into an existing hash (order-sensitive).
constexpr uint64_t HashCombine(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace dtaint
