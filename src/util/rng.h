// Deterministic, seedable pseudo-random generator used by the firmware
// synthesizer and the corpus models. All experiments are reproducible
// given a fixed seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dtaint {

/// SplitMix64-based PRNG: tiny, fast, good distribution, fully
/// deterministic across platforms (unlike std::mt19937 distributions).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi);

  /// True with probability p (clamped to [0,1]).
  bool Chance(double p);

  /// Uniform double in [0, 1).
  double Uniform();

  /// Picks an index according to non-negative weights; returns
  /// weights.size() == 0 ? 0 : chosen index. All-zero weights pick 0.
  size_t WeightedPick(const std::vector<double>& weights);

  /// Derives an independent child generator (stable for given label).
  Rng Fork(uint64_t label);

 private:
  uint64_t state_;
};

}  // namespace dtaint
