#include "src/util/hash.h"

namespace dtaint {

uint64_t Fnv1a(std::span<const uint8_t> bytes, uint64_t seed) {
  uint64_t h = seed;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t Fnv1a(std::string_view text, uint64_t seed) {
  uint64_t h = seed;
  for (char c : text) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

namespace {

/// splitmix64 finalizer: full-avalanche mixing of one 64-bit lane.
uint64_t Avalanche(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::string Hash128::ToHex() const {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = kDigits[(hi >> (4 * i)) & 0xF];
    out[31 - i] = kDigits[(lo >> (4 * i)) & 0xF];
  }
  return out;
}

Fingerprint128& Fingerprint128::Mix(std::string_view text) {
  // Length first so "ab"+"c" and "a"+"bc" mix differently.
  Mix(static_cast<uint64_t>(text.size()));
  uint64_t word = 0;
  int filled = 0;
  for (char c : text) {
    word = (word << 8) | static_cast<uint8_t>(c);
    if (++filled == 8) {
      Mix(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled > 0) Mix(word);
  return *this;
}

Fingerprint128& Fingerprint128::Mix(std::span<const uint8_t> bytes) {
  return Mix(std::string_view(reinterpret_cast<const char*>(bytes.data()),
                              bytes.size()));
}

Hash128 Fingerprint128::Digest() const {
  Hash128 digest;
  digest.hi = Avalanche(a_ + 0x2545F4914F6CDD1DULL * length_);
  digest.lo = Avalanche(b_ ^ Avalanche(a_));
  return digest;
}

}  // namespace dtaint
