#include "src/util/hash.h"

namespace dtaint {

uint64_t Fnv1a(std::span<const uint8_t> bytes, uint64_t seed) {
  uint64_t h = seed;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t Fnv1a(std::string_view text, uint64_t seed) {
  uint64_t h = seed;
  for (char c : text) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace dtaint
