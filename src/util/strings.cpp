#include "src/util/strings.h"

#include <cstdio>

namespace dtaint {

std::string HexStr(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string PadRight(std::string_view text, size_t width) {
  std::string out(text.substr(0, width));
  out.resize(width, ' ');
  return out;
}

std::string PadLeft(std::string_view text, size_t width) {
  if (text.size() >= width) return std::string(text.substr(0, width));
  std::string out(width - text.size(), ' ');
  out += text;
  return out;
}

std::string FmtDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string WithCommas(uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace dtaint
