// Tiny append-only JSON builder: tracks comma placement per nesting
// level so call sites stay linear. The producing side of the repo's
// JSON formats (src/util/json.h is the consuming side); every document
// built with it is validated against ParseJson in the test suites.
//
// Extracted from src/report/json.cpp so the report layer and the bench
// telemetry harness (src/obs/bench.h) emit JSON the same way.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/strings.h"

namespace dtaint {

class JsonBuilder {
 public:
  std::string Take() && { return std::move(out_); }

  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  void Key(std::string_view name) {
    Comma();
    out_ += '"';
    out_ += JsonEscape(name);
    out_ += "\":";
    just_keyed_ = true;
  }
  void String(std::string_view value) {
    Comma();
    out_ += '"';
    out_ += JsonEscape(value);
    out_ += '"';
  }
  void Number(uint64_t value) {
    Comma();
    out_ += std::to_string(value);
  }
  void Number(double value) {
    Comma();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    out_ += buf;
  }
  void Bool(bool value) {
    Comma();
    out_ += value ? "true" : "false";
  }
  /// Splices a pre-serialized JSON value (e.g. MetricsSnapshotToJson
  /// output) in as one element.
  void Raw(std::string_view json) {
    Comma();
    out_ += json;
  }

 private:
  void Open(char c) {
    Comma();
    out_ += c;
    need_comma_.push_back(false);
  }
  void Close(char c) {
    out_ += c;
    need_comma_.pop_back();
    if (!need_comma_.empty()) need_comma_.back() = true;
  }
  void Comma() {
    if (just_keyed_) {
      just_keyed_ = false;
      return;
    }
    if (!need_comma_.empty()) {
      if (need_comma_.back()) out_ += ',';
      need_comma_.back() = true;
    }
  }

  std::string out_;
  std::vector<bool> need_comma_;
  bool just_keyed_ = false;
};

}  // namespace dtaint
