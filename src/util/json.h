// Minimal JSON parser (RFC 8259 subset: full syntax, numbers held as
// double) — the consuming side of the repo's JSON producers. Report
// JSON, trace JSON, and metrics JSON are all validated against this
// parser in the test suites, so "what we emit" and "what a consumer
// can read back" can never drift apart silently.
//
// Deliberately small: parse into an owning tree, no serialization (the
// producers own their formats), no streaming.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/util/status.h"

namespace dtaint {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  /// Ordered map: iteration order is key order, not document order.
  using Object = std::map<std::string, JsonValue, std::less<>>;

  JsonValue() : data_(nullptr) {}
  explicit JsonValue(bool b) : data_(b) {}
  explicit JsonValue(double d) : data_(d) {}
  explicit JsonValue(std::string s) : data_(std::move(s)) {}
  explicit JsonValue(Array a) : data_(std::move(a)) {}
  explicit JsonValue(Object o) : data_(std::move(o)) {}

  Kind kind() const { return static_cast<Kind>(data_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_number() const { return kind() == Kind::kNumber; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_array() const { return kind() == Kind::kArray; }
  bool is_object() const { return kind() == Kind::kObject; }

  bool boolean() const { return std::get<bool>(data_); }
  double number() const { return std::get<double>(data_); }
  const std::string& string() const { return std::get<std::string>(data_); }
  const Array& array() const { return std::get<Array>(data_); }
  const Object& object() const { return std::get<Object>(data_); }

  /// Object member lookup; nullptr when not an object or key absent.
  const JsonValue* Find(std::string_view key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      data_;
};

/// Parses exactly one JSON document (trailing whitespace allowed,
/// trailing garbage is an error). Errors carry a byte offset.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace dtaint
