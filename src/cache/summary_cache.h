// Content-addressed persistent cache of function summaries.
//
// DTaint's structural win is that every function is symbolically
// analyzed exactly once per run (Algorithm 2); this cache extends
// "once" across runs. The key is a 128-bit fingerprint of the
// function's *lifted IR* plus an engine-configuration fingerprint, so a
// re-scan of a firmware corpus re-analyzes only functions whose code or
// analysis configuration actually changed — everything else (shared
// libc/busybox code between firmware revisions, unchanged binaries) is
// a lookup.
//
// Two tiers:
//  * an in-memory LRU of *encoded* blobs (bounded by entries and
//    bytes) — every hit round-trips through the codec, so a cached
//    result is by construction identical to what a cold process would
//    read back from disk;
//  * an optional on-disk store (one `<key>.dtsc` file per entry,
//    written atomically via rename).
//
// Corruption tolerance is a hard requirement: a damaged entry —
// truncated file, flipped bit, stale codec version — must behave
// exactly like a miss (recompute, overwrite), never crash, and never
// alter analysis results. The differential-oracle test suite holds the
// cache to "cold == warm == corrupted-then-recovered" on every corpus
// it can synthesize.
//
// All methods are thread-safe: the interprocedural phase looks up and
// stores from its worker pool when InterprocConfig::num_threads > 1.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "src/cfg/function.h"
#include "src/obs/metrics.h"
#include "src/resilience/retry.h"
#include "src/symexec/defpairs.h"
#include "src/symexec/engine.h"
#include "src/util/hash.h"

namespace dtaint {

struct CacheConfig {
  /// Directory for the on-disk tier; empty = in-memory only. Created
  /// on first store if missing.
  std::string disk_dir;
  /// In-memory LRU bounds (whichever trips first evicts).
  size_t max_memory_entries = 4096;
  size_t max_memory_bytes = 64u << 20;
  /// Also write a human-readable `<key>.json` dump beside each disk
  /// entry (triage aid; never read back).
  bool write_debug_json = false;
  /// Bounded retry-with-backoff for disk-tier reads and writes. After
  /// the final attempt fails the cache falls back to cache-off for
  /// that entry (miss on read, memory-only on write).
  RetryPolicy retry;
};

/// Counters: monotonic over the cache's lifetime. `hits` counts every
/// successful lookup (memory or disk); `disk_hits` the subset served
/// by promoting a disk entry into memory. A corrupt entry counts as
/// both `corrupt_entries` and `misses`.
struct CacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;
  size_t stores = 0;
  size_t disk_hits = 0;
  size_t corrupt_entries = 0;
  size_t memory_entries = 0;
  size_t memory_bytes = 0;
  size_t io_retries = 0;   // disk operations that needed a re-try
  size_t io_failures = 0;  // disk operations abandoned after all tries
};

class SummaryCache {
 public:
  explicit SummaryCache(CacheConfig config = {});

  /// Returns the cached summary for `key`, or nullopt. Decode failures
  /// (corruption, version skew) discard the entry and report a miss.
  std::optional<FunctionSummary> Lookup(const Hash128& key);

  /// Encodes and inserts `summary` under `key` (memory tier + disk
  /// tier when configured). Disk write failures are swallowed: the
  /// cache is an accelerator, never a correctness dependency.
  void Store(const Hash128& key, const FunctionSummary& summary);

  CacheStats stats() const;

  const CacheConfig& config() const { return config_; }

 private:
  void InsertMemoryLocked(const Hash128& key, std::vector<uint8_t> blob);
  void EvictLocked();
  std::string PathFor(const Hash128& key) const;

  CacheConfig config_;

  mutable std::mutex mu_;
  struct Entry {
    Hash128 key;
    std::vector<uint8_t> blob;
  };
  std::list<Entry> lru_;  // front = most recently used
  std::map<Hash128, std::list<Entry>::iterator> index_;
  CacheStats stats_;

  // Registry mirrors of stats_ ("cache.*" in the global metrics
  // registry): every increment above lands in both, so InterprocStats
  // can be populated from the registry without asking the cache.
  // Handles resolved once here; stable for the registry's lifetime.
  obs::Counter& m_hits_;
  obs::Counter& m_misses_;
  obs::Counter& m_evictions_;
  obs::Counter& m_stores_;
  obs::Counter& m_disk_hits_;
  obs::Counter& m_corrupt_;
  obs::Counter& m_io_retries_;
  obs::Counter& m_io_failures_;
  obs::Gauge& m_memory_bytes_;
};

/// Fingerprint of everything outside the function body that can change
/// what SymEngine::Analyze produces: codec version, target arch,
/// engine budgets/toggles, the alias mode, and the binary's
/// readable data bytes (the engine concretizes loads from
/// .rodata/.data, so those bytes are part of the analysis input).
///
/// `alias_mode_key` encodes the alias configuration: 0 = alias off,
/// 1 = eager Algorithm 1 rewrite, 2 = on-demand SSE (summaries carry
/// no alias twins). 0/1 mix the same bits the pre-mode bool did, so
/// caches written before the mode existed stay valid; a bool still
/// converts correctly (false -> 0, true -> 1 = eager).
Hash128 EngineFingerprint(const Binary& binary, const EngineConfig& config,
                          int alias_mode_key);

/// Cache key for one function: the engine fingerprint extended with the
/// function's full lifted IR — blocks, statements, expressions, CFG
/// edges and callsites. Any single-instruction change reaches the key
/// through the lifted statements. Deliberately EXCLUDES
/// CallSite::resolved_targets: structure-similarity resolution only
/// affects the later linking phase, never the intraprocedural summary
/// being cached, so resolving indirect calls must not invalidate
/// entries (the re-link pass inside one scan re-uses them).
Hash128 FunctionKey(const Function& fn, const Hash128& engine_fingerprint);

}  // namespace dtaint
