#include "src/cache/summary_codec.h"

#include <map>
#include <tuple>

#include "src/symexec/intern.h"
#include "src/util/hash.h"
#include "src/util/strings.h"

namespace dtaint {

namespace {

// Decoded expressions are rebuilt through the normalizing factories, so
// a blob can never smuggle in a tree shape the engine could not have
// produced. The depth cap bounds decoder recursion on hostile input;
// genuine summaries stay far below it (the engine widens expressions
// past ~100 nodes).
constexpr int kMaxExprDepth = 512;

// Summaries are expression *DAGs*: per-path def pairs and constraint
// lists share most subtrees. Each unique node (by pointer identity) is
// encoded once; re-occurrences are a back-reference tag + the node's
// post-order id. This keeps blobs and decode time proportional to the
// number of unique nodes instead of the fully-expanded tree, and the
// decoder reconstructs the same sharing, so encode(decode(b)) == b.
//
// The identity used is the *canonical* (hash-consed) node: every
// expression is routed through ExprInterner::Canonical before its
// pointer enters the dedup maps. That makes the sharing structure — and
// therefore the bytes — a function of the summary's value alone,
// independent of how its expressions were built (interned factories,
// the legacy heap path, or a decode of an older blob). The
// interned-vs-legacy differential suite byte-compares encodings to hold
// this line.
constexpr uint8_t kExprBackRef = 0xFF;

class Writer {
 public:
  void U8(uint8_t v) { out_.push_back(v); }
  void U16(uint16_t v) {
    U8(static_cast<uint8_t>(v));
    U8(static_cast<uint8_t>(v >> 8));
  }
  void U32(uint32_t v) {
    U16(static_cast<uint16_t>(v));
    U16(static_cast<uint16_t>(v >> 16));
  }
  void U64(uint64_t v) {
    U32(static_cast<uint32_t>(v));
    U32(static_cast<uint32_t>(v >> 32));
  }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

  void Expr(const SymRef& raw) {
    if (!raw) {
      U8(0);
      return;
    }
    // Canonical identity: O(1) when already interned (the default),
    // and an intern of the subtree for legacy/hand-built expressions.
    SymRef e = ExprInterner::Global().Canonical(raw);
    auto it = expr_ids_.find(e.get());
    if (it != expr_ids_.end()) {
      U8(kExprBackRef);
      U32(it->second);
      return;
    }
    U8(static_cast<uint8_t>(e->kind()) + 1);
    switch (e->kind()) {
      case SymKind::kConst:
        U32(e->const_value());
        break;
      case SymKind::kArg:
        U32(static_cast<uint32_t>(e->arg_index()));
        break;
      case SymKind::kSp0:
        break;
      case SymKind::kRet:
        U32(e->ret_site());
        break;
      case SymKind::kHeap:
        U64(e->heap_id());
        break;
      case SymKind::kTaint:
        U32(e->taint_site());
        Str(e->taint_source());
        break;
      case SymKind::kInit:
        U32(static_cast<uint32_t>(e->init_reg()));
        break;
      case SymKind::kDeref:
        U8(e->deref_size());
        Expr(e->lhs());
        break;
      case SymKind::kBin:
        U8(static_cast<uint8_t>(e->binop()));
        Expr(e->lhs());
        Expr(e->rhs());
        break;
    }
    // Post-order id assignment (children first) — the decoder appends
    // to its pool in the same order.
    expr_ids_.emplace(e.get(), next_expr_id_++);
  }

  void Constraint(const PathConstraint& c) {
    // Path-constraint lists are copied wholesale between def pairs on
    // the same path, so the same constraint recurs hundreds of times
    // per summary (sharing its expression pointers). Intern them like
    // expression nodes: full record once, back-reference after.
    ConstraintKey key = KeyFor(c);
    auto it = constraint_ids_.find(key);
    if (it != constraint_ids_.end()) {
      U8(kExprBackRef);
      U32(it->second);
      return;
    }
    U8(1);
    U8(static_cast<uint8_t>(c.op));
    Expr(c.lhs);
    Expr(c.rhs);
    U8(c.taken ? 1 : 0);
    U32(c.site);
    constraint_ids_.emplace(key, next_constraint_id_++);
  }

  void ConstraintList(const std::vector<PathConstraint>& list) {
    // Whole lists recur as well: the engine copies a path's constraint
    // list into every def pair and call recorded along it, so most
    // lists are exact repeats. Interning the sequence makes a repeat
    // cost five bytes instead of one back-reference per member.
    ListKey key;
    key.reserve(list.size());
    for (const PathConstraint& c : list) key.push_back(KeyFor(c));
    auto it = list_ids_.find(key);
    if (it != list_ids_.end()) {
      U8(kExprBackRef);
      U32(it->second);
      return;
    }
    U8(1);
    U32(static_cast<uint32_t>(list.size()));
    for (const PathConstraint& c : list) Constraint(c);
    list_ids_.emplace(std::move(key), next_list_id_++);
  }

  std::vector<uint8_t> Take() && { return std::move(out_); }

 private:
  using ConstraintKey =
      std::tuple<uint8_t, const SymExpr*, const SymExpr*, bool, uint32_t>;
  using ListKey = std::vector<ConstraintKey>;

  // Constraint dedup keys carry canonical expression pointers for the
  // same reason Expr does: identical constraints must collide whether
  // their expressions happen to share heap nodes or not.
  static ConstraintKey KeyFor(const PathConstraint& c) {
    ExprInterner& interner = ExprInterner::Global();
    return ConstraintKey{static_cast<uint8_t>(c.op),
                         c.lhs ? interner.Canonical(c.lhs).get() : nullptr,
                         c.rhs ? interner.Canonical(c.rhs).get() : nullptr,
                         c.taken, c.site};
  }

  std::vector<uint8_t> out_;
  std::map<const SymExpr*, uint32_t> expr_ids_;
  uint32_t next_expr_id_ = 0;
  std::map<ConstraintKey, uint32_t> constraint_ids_;
  uint32_t next_constraint_id_ = 0;
  std::map<ListKey, uint32_t> list_ids_;
  uint32_t next_list_id_ = 0;
};

/// Bounds-checked reader: the first overrun latches the fail flag and
/// every later read returns zero, so decode loops terminate and the
/// caller needs a single ok() check per structure.
class Reader {
 public:
  explicit Reader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  bool ok() const { return !failed_; }
  size_t remaining() const { return failed_ ? 0 : bytes_.size() - pos_; }

  uint8_t U8() {
    if (remaining() < 1) return Fail();
    return bytes_[pos_++];
  }
  uint16_t U16() {
    uint16_t lo = U8();
    return static_cast<uint16_t>(lo | (U8() << 8));
  }
  uint32_t U32() {
    uint32_t lo = U16();
    return lo | (static_cast<uint32_t>(U16()) << 16);
  }
  uint64_t U64() {
    uint64_t lo = U32();
    return lo | (static_cast<uint64_t>(U32()) << 32);
  }
  std::string Str() {
    uint32_t len = U32();
    if (remaining() < len) {
      Fail();
      return {};
    }
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return s;
  }
  /// Element count for a vector about to be decoded: each element costs
  /// at least one byte, so any count beyond the remaining bytes is
  /// corruption (and would otherwise allocate unboundedly).
  uint32_t Count() {
    uint32_t n = U32();
    if (n > remaining()) {
      Fail();
      return 0;
    }
    return n;
  }

  SymRef Expr(int depth = 0) {
    if (depth > kMaxExprDepth) {
      Fail();
      return nullptr;
    }
    uint8_t tag = U8();
    if (!ok() || tag == 0) return nullptr;
    if (tag == kExprBackRef) {
      uint32_t id = U32();
      if (id >= expr_pool_.size()) {
        Fail();
        return nullptr;
      }
      return expr_pool_[id];
    }
    SymRef node;
    switch (static_cast<SymKind>(tag - 1)) {
      case SymKind::kConst:
        node = SymExpr::Const(U32());
        break;
      case SymKind::kArg:
        node = SymExpr::Arg(static_cast<int>(U32()));
        break;
      case SymKind::kSp0:
        node = SymExpr::Sp0();
        break;
      case SymKind::kRet:
        node = SymExpr::Ret(U32());
        break;
      case SymKind::kHeap:
        node = SymExpr::Heap(U64());
        break;
      case SymKind::kTaint: {
        uint32_t site = U32();
        node = SymExpr::Taint(site, Str());
        break;
      }
      case SymKind::kInit:
        node = SymExpr::InitReg(static_cast<int>(U32()));
        break;
      case SymKind::kDeref: {
        uint8_t size = U8();
        SymRef addr = Expr(depth + 1);
        if (!addr) {
          Fail();
          return nullptr;
        }
        node = SymExpr::Deref(std::move(addr), size);
        break;
      }
      case SymKind::kBin: {
        uint8_t op = U8();
        if (op > static_cast<uint8_t>(BinOp::kCmpGt)) {
          Fail();
          return nullptr;
        }
        SymRef lhs = Expr(depth + 1);
        SymRef rhs = Expr(depth + 1);
        if (!lhs || !rhs) {
          Fail();
          return nullptr;
        }
        node = SymExpr::Bin(static_cast<BinOp>(op), std::move(lhs),
                            std::move(rhs));
        break;
      }
      default:
        Fail();
        return nullptr;
    }
    if (!ok() || !node) {
      Fail();
      return nullptr;
    }
    expr_pool_.push_back(node);
    return node;
  }

  PathConstraint Constraint() {
    PathConstraint c;
    uint8_t tag = U8();
    if (tag == kExprBackRef) {
      uint32_t id = U32();
      if (id >= constraint_pool_.size()) {
        Fail();
        return c;
      }
      return constraint_pool_[id];
    }
    if (tag != 1) {
      Fail();
      return c;
    }
    uint8_t op = U8();
    if (op > static_cast<uint8_t>(BinOp::kCmpGt)) {
      Fail();
      return c;
    }
    c.op = static_cast<BinOp>(op);
    c.lhs = Expr();
    c.rhs = Expr();
    c.taken = U8() != 0;
    c.site = U32();
    if (ok()) constraint_pool_.push_back(c);
    return c;
  }

  std::vector<PathConstraint> ConstraintList() {
    std::vector<PathConstraint> list;
    uint8_t tag = U8();
    if (tag == kExprBackRef) {
      uint32_t id = U32();
      if (id >= list_pool_.size()) {
        Fail();
        return list;
      }
      return list_pool_[id];
    }
    if (tag != 1) {
      Fail();
      return list;
    }
    uint32_t n = Count();
    list.reserve(n);
    for (uint32_t i = 0; i < n && ok(); ++i) list.push_back(Constraint());
    if (ok()) list_pool_.push_back(list);
    return list;
  }

 private:
  uint8_t Fail() {
    failed_ = true;
    return 0;
  }

  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
  bool failed_ = false;
  std::vector<SymRef> expr_pool_;
  std::vector<PathConstraint> constraint_pool_;
  std::vector<std::vector<PathConstraint>> list_pool_;
};

}  // namespace

std::vector<uint8_t> EncodeSummary(const FunctionSummary& summary) {
  Writer w;
  w.U32(kSummaryCodecMagic);
  w.U16(kSummaryCodecVersion);

  w.Str(summary.name);
  w.U32(summary.addr);

  w.U32(static_cast<uint32_t>(summary.def_pairs.size()));
  for (const DefPair& dp : summary.def_pairs) {
    w.Expr(dp.d);
    w.Expr(dp.u);
    w.U32(dp.site);
    w.U32(static_cast<uint32_t>(dp.path_id));
    w.ConstraintList(dp.constraints);
  }

  w.U32(static_cast<uint32_t>(summary.undefined_uses.size()));
  for (const UseRecord& use : summary.undefined_uses) {
    w.Expr(use.u);
    w.U32(use.site);
    w.U32(static_cast<uint32_t>(use.path_id));
  }

  w.U32(static_cast<uint32_t>(summary.calls.size()));
  for (const CallEvent& call : summary.calls) {
    w.U32(call.callsite);
    w.Str(call.callee);
    w.U8(call.is_import ? 1 : 0);
    w.U8(call.is_indirect ? 1 : 0);
    w.Expr(call.indirect_target);
    w.U32(static_cast<uint32_t>(call.args.size()));
    for (const SymRef& arg : call.args) w.Expr(arg);
    w.ConstraintList(call.constraints);
    w.U32(static_cast<uint32_t>(call.path_id));
  }

  w.U32(static_cast<uint32_t>(summary.return_values.size()));
  for (const SymRef& ret : summary.return_values) w.Expr(ret);

  // TypeMap iterates its sorted underlying map — deterministic bytes.
  w.U32(static_cast<uint32_t>(summary.types.entries().size()));
  for (const auto& [hash, type] : summary.types.entries()) {
    w.U64(hash);
    w.U8(static_cast<uint8_t>(type));
  }

  w.U32(static_cast<uint32_t>(summary.paths_explored));
  w.U32(static_cast<uint32_t>(summary.blocks_visited));
  w.U8(summary.truncated ? 1 : 0);
  w.U32(static_cast<uint32_t>(summary.alias_pairs));

  std::vector<uint8_t> out = std::move(w).Take();
  uint64_t checksum = Fnv1a(std::span<const uint8_t>(out));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(checksum >> (8 * i)));
  }
  return out;
}

Result<FunctionSummary> DecodeSummary(std::span<const uint8_t> bytes) {
  if (bytes.size() < 4 + 2 + 8) {
    return CorruptData("summary blob too short");
  }
  uint64_t stored = 0;
  for (int i = 7; i >= 0; --i) {
    stored = (stored << 8) | bytes[bytes.size() - 8 + i];
  }
  std::span<const uint8_t> payload = bytes.first(bytes.size() - 8);
  if (Fnv1a(payload) != stored) {
    return CorruptData("summary blob checksum mismatch");
  }

  Reader r(payload);
  if (r.U32() != kSummaryCodecMagic) {
    return CorruptData("summary blob bad magic");
  }
  uint16_t version = r.U16();
  if (version != kSummaryCodecVersion) {
    return Unsupported("summary codec version " + std::to_string(version) +
                       " (want " + std::to_string(kSummaryCodecVersion) +
                       ")");
  }

  FunctionSummary summary;
  summary.name = r.Str();
  summary.addr = r.U32();

  uint32_t def_count = r.Count();
  summary.def_pairs.reserve(def_count);
  for (uint32_t i = 0; i < def_count && r.ok(); ++i) {
    DefPair dp;
    dp.d = r.Expr();
    dp.u = r.Expr();
    dp.site = r.U32();
    dp.path_id = static_cast<int>(r.U32());
    dp.constraints = r.ConstraintList();
    if (!dp.d || !dp.u) return CorruptData("def pair missing expression");
    summary.def_pairs.push_back(std::move(dp));
  }

  uint32_t use_count = r.Count();
  summary.undefined_uses.reserve(use_count);
  for (uint32_t i = 0; i < use_count && r.ok(); ++i) {
    UseRecord use;
    use.u = r.Expr();
    use.site = r.U32();
    use.path_id = static_cast<int>(r.U32());
    if (!use.u) return CorruptData("use record missing expression");
    summary.undefined_uses.push_back(std::move(use));
  }

  uint32_t call_count = r.Count();
  summary.calls.reserve(call_count);
  for (uint32_t i = 0; i < call_count && r.ok(); ++i) {
    CallEvent call;
    call.callsite = r.U32();
    call.callee = r.Str();
    call.is_import = r.U8() != 0;
    call.is_indirect = r.U8() != 0;
    call.indirect_target = r.Expr();
    uint32_t arg_count = r.Count();
    call.args.reserve(arg_count);
    for (uint32_t a = 0; a < arg_count && r.ok(); ++a) {
      call.args.push_back(r.Expr());
    }
    call.constraints = r.ConstraintList();
    call.path_id = static_cast<int>(r.U32());
    summary.calls.push_back(std::move(call));
  }

  uint32_t ret_count = r.Count();
  summary.return_values.reserve(ret_count);
  for (uint32_t i = 0; i < ret_count && r.ok(); ++i) {
    summary.return_values.push_back(r.Expr());
  }

  uint32_t type_count = r.Count();
  for (uint32_t i = 0; i < type_count && r.ok(); ++i) {
    uint64_t hash = r.U64();
    uint8_t type = r.U8();
    if (type > static_cast<uint8_t>(ValueType::kCharPtr)) {
      return CorruptData("bad value type in summary blob");
    }
    summary.types.Restore(hash, static_cast<ValueType>(type));
  }

  summary.paths_explored = static_cast<int>(r.U32());
  summary.blocks_visited = static_cast<int>(r.U32());
  summary.truncated = r.U8() != 0;
  summary.alias_pairs = r.U32();

  if (!r.ok()) return CorruptData("summary blob truncated");
  if (r.remaining() != 0) {
    return CorruptData("summary blob has trailing bytes");
  }
  return summary;
}

std::string SummaryToDebugJson(const FunctionSummary& summary) {
  std::string out = "{";
  out += "\"function\":\"" + JsonEscape(summary.name) + "\"";
  out += ",\"addr\":\"" + HexStr(summary.addr) + "\"";
  out += ",\"paths_explored\":" + std::to_string(summary.paths_explored);
  out += ",\"blocks_visited\":" + std::to_string(summary.blocks_visited);
  out += std::string(",\"truncated\":") +
         (summary.truncated ? "true" : "false");
  out += ",\"alias_pairs\":" + std::to_string(summary.alias_pairs);

  out += ",\"def_pairs\":[";
  for (size_t i = 0; i < summary.def_pairs.size(); ++i) {
    const DefPair& dp = summary.def_pairs[i];
    if (i) out += ',';
    out += "{\"d\":\"" + JsonEscape(dp.d->ToString()) + "\",\"u\":\"" +
           JsonEscape(dp.u->ToString()) + "\",\"site\":\"" +
           HexStr(dp.site) + "\",\"constraints\":" +
           std::to_string(dp.constraints.size()) + "}";
  }
  out += "]";

  out += ",\"undefined_uses\":[";
  for (size_t i = 0; i < summary.undefined_uses.size(); ++i) {
    if (i) out += ',';
    out += "\"" + JsonEscape(summary.undefined_uses[i].u->ToString()) + "\"";
  }
  out += "]";

  out += ",\"calls\":[";
  for (size_t i = 0; i < summary.calls.size(); ++i) {
    const CallEvent& call = summary.calls[i];
    if (i) out += ',';
    out += "{\"callee\":\"" + JsonEscape(call.callee) + "\",\"site\":\"" +
           HexStr(call.callsite) + "\",\"indirect\":" +
           (call.is_indirect ? "true" : "false") + "}";
  }
  out += "]";

  out += ",\"return_values\":[";
  for (size_t i = 0; i < summary.return_values.size(); ++i) {
    if (i) out += ',';
    out += "\"" +
           JsonEscape(summary.return_values[i]
                          ? summary.return_values[i]->ToString()
                          : "<none>") +
           "\"";
  }
  out += "]";

  out += ",\"types\":" + std::to_string(summary.types.size());
  out += "}";
  return out;
}

}  // namespace dtaint
