#include "src/cache/summary_cache.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/cache/summary_codec.h"
#include "src/resilience/fault.h"

namespace dtaint {

namespace {

void MixExpr(Fingerprint128& fp, const ExprRef& e) {
  if (!e) {
    fp.Mix(0);
    return;
  }
  fp.Mix(static_cast<uint64_t>(e->kind()) + 1);
  switch (e->kind()) {
    case ExprKind::kConst:
      fp.Mix(e->const_value());
      break;
    case ExprKind::kRdTmp:
      fp.Mix(static_cast<uint64_t>(e->tmp()));
      break;
    case ExprKind::kGet:
      fp.Mix(static_cast<uint64_t>(e->reg()));
      break;
    case ExprKind::kLoad:
      fp.Mix(e->load_size());
      MixExpr(fp, e->lhs());
      break;
    case ExprKind::kBinop:
      fp.Mix(static_cast<uint64_t>(e->binop()));
      MixExpr(fp, e->lhs());
      MixExpr(fp, e->rhs());
      break;
  }
}

void MixStmt(Fingerprint128& fp, const Stmt& stmt) {
  fp.Mix(static_cast<uint64_t>(stmt.kind));
  fp.Mix(stmt.addr);
  fp.Mix(static_cast<uint64_t>(stmt.tmp));
  fp.Mix(static_cast<uint64_t>(stmt.reg));
  fp.Mix(stmt.size);
  fp.Mix(stmt.target);
  MixExpr(fp, stmt.expr);
  MixExpr(fp, stmt.addr_expr);
  MixExpr(fp, stmt.data_expr);
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

bool WriteFileAtomic(const std::string& path,
                     std::span<const uint8_t> bytes) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
  return !ec;
}

}  // namespace

Hash128 EngineFingerprint(const Binary& binary, const EngineConfig& config,
                          int alias_mode_key) {
  Fingerprint128 fp;
  fp.Mix(kSummaryCodecVersion);
  fp.Mix(static_cast<uint64_t>(binary.arch));
  fp.Mix(static_cast<uint64_t>(config.max_paths));
  fp.Mix(static_cast<uint64_t>(config.max_block_visits));
  fp.Mix(static_cast<uint64_t>(config.max_expr_depth));
  fp.Mix(config.record_types ? 1 : 0);
  // 0 = alias off, 1 = eager, 2 = on-demand SSE. Eager summaries carry
  // Algorithm 1's twin pairs and on-demand ones do not, so the modes
  // must never share cache entries.
  fp.Mix(static_cast<uint64_t>(alias_mode_key));
  // The engine concretizes constant-address loads out of mapped data
  // sections (string literals, dispatch tables), so those bytes are
  // analysis input. Text bytes are covered per-function by the lifted
  // IR instead, which is what lets identical functions share entries.
  for (const Section& section : binary.sections) {
    if (section.kind == SectionKind::kText) continue;
    fp.Mix(section.name);
    fp.Mix(section.addr);
    fp.Mix(section.size);
    fp.Mix(std::span<const uint8_t>(section.bytes));
  }
  // Import stub addresses decide which calls get library models.
  for (const Import& import : binary.imports) {
    fp.Mix(import.name);
    fp.Mix(import.stub_addr);
  }
  return fp.Digest();
}

Hash128 FunctionKey(const Function& fn, const Hash128& engine_fingerprint) {
  Fingerprint128 fp;
  fp.Mix(engine_fingerprint.hi);
  fp.Mix(engine_fingerprint.lo);
  fp.Mix(fn.name);
  fp.Mix(fn.addr);
  fp.Mix(fn.size);

  fp.Mix(fn.blocks.size());
  for (const auto& [addr, block] : fn.blocks) {
    fp.Mix(addr);
    fp.Mix(block.size);
    fp.Mix(static_cast<uint64_t>(block.next_tmp));
    fp.Mix(static_cast<uint64_t>(block.jumpkind));
    fp.Mix(block.return_addr);
    MixExpr(fp, block.next);
    fp.Mix(block.stmts.size());
    for (const Stmt& stmt : block.stmts) MixStmt(fp, stmt);
  }

  fp.Mix(fn.succs.size());
  for (const auto& [from, tos] : fn.succs) {
    fp.Mix(from);
    fp.Mix(tos.size());
    for (uint32_t to : tos) fp.Mix(to);
  }

  fp.Mix(fn.callsites.size());
  for (const CallSite& cs : fn.callsites) {
    fp.Mix(cs.block_addr);
    fp.Mix(cs.call_addr);
    fp.Mix(cs.return_addr);
    fp.Mix(cs.is_indirect ? 1 : 0);
    fp.Mix(cs.target_addr);
    fp.Mix(cs.target_name);
    fp.Mix(cs.target_is_import ? 1 : 0);
    // resolved_targets intentionally not mixed — see header.
  }
  return fp.Digest();
}

SummaryCache::SummaryCache(CacheConfig config)
    : config_(std::move(config)),
      m_hits_(obs::MetricsRegistry::Global().counter("cache.hits")),
      m_misses_(obs::MetricsRegistry::Global().counter("cache.misses")),
      m_evictions_(obs::MetricsRegistry::Global().counter("cache.evictions")),
      m_stores_(obs::MetricsRegistry::Global().counter("cache.stores")),
      m_disk_hits_(obs::MetricsRegistry::Global().counter("cache.disk_hits")),
      m_corrupt_(
          obs::MetricsRegistry::Global().counter("cache.corrupt_entries")),
      m_io_retries_(obs::MetricsRegistry::Global().counter("cache.io_retries")),
      m_io_failures_(
          obs::MetricsRegistry::Global().counter("cache.io_failures")),
      m_memory_bytes_(
          obs::MetricsRegistry::Global().gauge("cache.memory_bytes")) {}

std::string SummaryCache::PathFor(const Hash128& key) const {
  return config_.disk_dir + "/" + key.ToHex() + ".dtsc";
}

std::optional<FunctionSummary> SummaryCache::Lookup(const Hash128& key) {
  std::lock_guard<std::mutex> lock(mu_);

  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    auto decoded = DecodeSummary(it->second->blob);
    if (decoded.ok()) {
      ++stats_.hits;
      m_hits_.Add();
      return std::move(*decoded);
    }
    // Poisoned in-memory entry (should be impossible, but never trust
    // a cache): drop it and fall through to disk/miss.
    ++stats_.corrupt_entries;
    m_corrupt_.Add();
    stats_.memory_bytes -= it->second->blob.size();
    lru_.erase(it->second);
    index_.erase(it);
    m_memory_bytes_.Set(static_cast<double>(stats_.memory_bytes));
  }

  if (!config_.disk_dir.empty()) {
    // Transient read errors (NFS hiccup, throttled disk — modeled by
    // the cache_read fault site) are retried with backoff; if the read
    // never succeeds this entry is simply a miss.
    const std::string path = PathFor(key);
    std::vector<uint8_t> blob;
    int retries = 0;
    bool read_ok = RetryIo(
        config_.retry,
        [&] {
          if (FaultPlan::Global().ShouldFail(FaultSite::kCacheRead, path)) {
            return false;
          }
          blob = ReadFileBytes(path);
          return true;
        },
        &retries);
    if (retries > 0) {
      stats_.io_retries += static_cast<size_t>(retries);
      m_io_retries_.Add(static_cast<uint64_t>(retries));
    }
    if (!read_ok) {
      ++stats_.io_failures;
      m_io_failures_.Add();
      blob.clear();
    }
    if (!blob.empty()) {
      auto decoded = DecodeSummary(blob);
      if (decoded.ok()) {
        InsertMemoryLocked(key, std::move(blob));
        ++stats_.hits;
        m_hits_.Add();
        ++stats_.disk_hits;
        m_disk_hits_.Add();
        return std::move(*decoded);
      }
      // Bad entry on disk: count it, treat as miss; the recompute's
      // Store will overwrite the damaged file.
      ++stats_.corrupt_entries;
      m_corrupt_.Add();
    }
  }

  ++stats_.misses;
  m_misses_.Add();
  return std::nullopt;
}

void SummaryCache::Store(const Hash128& key, const FunctionSummary& summary) {
  std::vector<uint8_t> blob = EncodeSummary(summary);

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.stores;
  m_stores_.Add();
  if (!config_.disk_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.disk_dir, ec);
    if (!ec) {
      // Same transient-error policy as reads: retry with backoff, then
      // give up on the disk tier for this entry (the memory insert
      // below still happens — the cache never blocks a store).
      const std::string path = PathFor(key);
      int retries = 0;
      bool wrote = RetryIo(
          config_.retry,
          [&] {
            if (FaultPlan::Global().ShouldFail(FaultSite::kCacheWrite,
                                               path)) {
              return false;
            }
            return WriteFileAtomic(path, blob);
          },
          &retries);
      if (retries > 0) {
        stats_.io_retries += static_cast<size_t>(retries);
        m_io_retries_.Add(static_cast<uint64_t>(retries));
      }
      if (!wrote) {
        ++stats_.io_failures;
        m_io_failures_.Add();
      }
      if (wrote && config_.write_debug_json) {
        std::string json = SummaryToDebugJson(summary);
        WriteFileAtomic(
            config_.disk_dir + "/" + key.ToHex() + ".json",
            std::span<const uint8_t>(
                reinterpret_cast<const uint8_t*>(json.data()), json.size()));
      }
    }
  }
  InsertMemoryLocked(key, std::move(blob));
}

void SummaryCache::InsertMemoryLocked(const Hash128& key,
                                      std::vector<uint8_t> blob) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    stats_.memory_bytes -= it->second->blob.size();
    lru_.erase(it->second);
    index_.erase(it);
  }
  stats_.memory_bytes += blob.size();
  lru_.push_front(Entry{key, std::move(blob)});
  index_[key] = lru_.begin();
  EvictLocked();
  stats_.memory_entries = index_.size();
  m_memory_bytes_.Set(static_cast<double>(stats_.memory_bytes));
}

void SummaryCache::EvictLocked() {
  while (!lru_.empty() && (index_.size() > config_.max_memory_entries ||
                           stats_.memory_bytes > config_.max_memory_bytes)) {
    if (index_.size() == 1) break;  // always keep the newest entry
    stats_.memory_bytes -= lru_.back().blob.size();
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
    m_evictions_.Add();
  }
}

CacheStats SummaryCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dtaint
