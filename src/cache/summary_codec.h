// Versioned binary codec for FunctionSummary — the value format of the
// persistent summary cache.
//
// Layout (all integers little-endian):
//
//   u32 magic "DTSC"  | u16 version | payload ... | u64 FNV-1a checksum
//
// The checksum covers every byte before it, so bit flips and
// truncations anywhere in the blob are rejected with a clean Status
// (the cache then recomputes — a corrupted entry must never crash or,
// worse, silently alter analysis results). A version mismatch is
// likewise a decode error: bumping kSummaryCodecVersion invalidates
// every existing entry, which is the codec's whole invalidation story.
//
// Symbolic expressions are encoded with structural sharing: a summary
// is a DAG (per-path def pairs and constraints share subtrees), so
// each unique node is written once and later occurrences are a
// back-reference to its id. Path constraints are interned the same
// way: per-path constraint lists are copied wholesale between def
// pairs, so the same record recurs hundreds of times per summary.
// Blob size and decode time scale with the unique-node count, and
// decode rebuilds the same shared structure.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/symexec/defpairs.h"
#include "src/util/status.h"

namespace dtaint {

inline constexpr uint32_t kSummaryCodecMagic = 0x44545343;  // "DTSC"
inline constexpr uint16_t kSummaryCodecVersion = 1;

/// Serializes a summary (def pairs, undefined uses, calls, return
/// values, types, exploration stats) into the versioned blob above.
/// Deterministic: equal summaries encode to equal bytes.
std::vector<uint8_t> EncodeSummary(const FunctionSummary& summary);

/// Decodes a blob produced by EncodeSummary. Any corruption —
/// truncation, bit flip, bad magic, over-long counts — yields a
/// kCorruptData error; a version mismatch yields kUnsupported. Never
/// crashes on hostile bytes.
Result<FunctionSummary> DecodeSummary(std::span<const uint8_t> bytes);

/// Human-debuggable JSON rendering of a summary, in the style of
/// src/report/json — written next to cache entries when the cache's
/// debug dump is enabled, and handy in tests.
std::string SummaryToDebugJson(const FunctionSummary& summary);

}  // namespace dtaint
