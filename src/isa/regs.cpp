#include "src/isa/regs.h"

#include <cassert>

namespace dtaint {

std::string_view ArchName(Arch arch) {
  switch (arch) {
    case Arch::kDtArm:
      return "ARM";
    case Arch::kDtMips:
      return "MIPS";
  }
  return "?";
}

const CallingConvention& ConventionFor(Arch arch) {
  static const CallingConvention kArm{Arch::kDtArm, {0, 1, 2, 3}, 0};
  static const CallingConvention kMips{Arch::kDtMips, {4, 5, 6, 7}, 2};
  return arch == Arch::kDtArm ? kArm : kMips;
}

std::string RegName(Arch arch, int r) {
  assert(r >= 0 && r < kNumRegs);
  if (r == kRegSp) return "sp";
  if (r == kRegLr) return "lr";
  if (r == kRegPc) return "pc";
  if (arch == Arch::kDtMips) {
    if (r >= 4 && r <= 7) return "a" + std::to_string(r - 4);
    if (r == 2) return "v0";
  }
  return "r" + std::to_string(r);
}

bool IsBigEndian(Arch arch) { return arch == Arch::kDtMips; }

uint32_t ReadWord(Arch arch, const uint8_t* p) {
  if (IsBigEndian(arch)) {
    return (uint32_t{p[0]} << 24) | (uint32_t{p[1]} << 16) |
           (uint32_t{p[2]} << 8) | uint32_t{p[3]};
  }
  return uint32_t{p[0]} | (uint32_t{p[1]} << 8) | (uint32_t{p[2]} << 16) |
         (uint32_t{p[3]} << 24);
}

void WriteWord(Arch arch, uint8_t* p, uint32_t v) {
  if (IsBigEndian(arch)) {
    p[0] = static_cast<uint8_t>(v >> 24);
    p[1] = static_cast<uint8_t>(v >> 16);
    p[2] = static_cast<uint8_t>(v >> 8);
    p[3] = static_cast<uint8_t>(v);
  } else {
    p[0] = static_cast<uint8_t>(v);
    p[1] = static_cast<uint8_t>(v >> 8);
    p[2] = static_cast<uint8_t>(v >> 16);
    p[3] = static_cast<uint8_t>(v >> 24);
  }
}

}  // namespace dtaint
