#include "src/isa/encode.h"

namespace dtaint {

Result<uint32_t> Encode(const Insn& insn) {
  if (insn.rd >= kNumRegs || insn.rn >= kNumRegs || insn.rm >= kNumRegs) {
    return InvalidArgument("register index out of range");
  }
  uint32_t word = static_cast<uint32_t>(insn.op) << 24;
  switch (FormatOf(insn.op)) {
    case OpFormat::kR:
      word |= uint32_t{insn.rd} << 20;
      word |= uint32_t{insn.rn} << 16;
      word |= uint32_t{insn.rm} << 12;
      return word;
    case OpFormat::kI:
      if (insn.op == Op::kMovHi) {
        // MovHi's immediate is an unsigned 16-bit pattern.
        if (insn.imm < 0 || insn.imm > 0xFFFF) {
          return InvalidArgument("movhi immediate out of range");
        }
      } else if (insn.imm < kImm16Min || insn.imm > kImm16Max) {
        return InvalidArgument("imm16 out of range: " +
                               std::to_string(insn.imm));
      }
      word |= uint32_t{insn.rd} << 20;
      word |= uint32_t{insn.rn} << 16;
      word |= static_cast<uint32_t>(insn.imm) & 0xFFFF;
      return word;
    case OpFormat::kB:
      if (insn.imm < kImm24Min || insn.imm > kImm24Max) {
        return InvalidArgument("imm24 out of range: " +
                               std::to_string(insn.imm));
      }
      word |= static_cast<uint32_t>(insn.imm) & 0xFFFFFF;
      return word;
    case OpFormat::kNone:
      if (insn.op == Op::kInvalid) {
        return InvalidArgument("cannot encode invalid opcode");
      }
      return word;
  }
  return Internal("unreachable");
}

}  // namespace dtaint
