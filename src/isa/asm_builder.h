// A small assembler used by the firmware synthesizer and by tests to
// author DT-RISC functions symbolically: labels for local branches and
// named symbols for calls, resolved at binary link time.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/isa/encode.h"
#include "src/isa/insn.h"
#include "src/util/status.h"

namespace dtaint {

/// A pending reference from an instruction to a target that is resolved
/// later (a local label, or an external function by name).
struct Fixup {
  size_t insn_index;   // which instruction's imm field to patch
  std::string target;  // label or symbol name
  bool is_call;        // kBl (call) vs branch
};

/// One assembled function: instructions plus unresolved call fixups.
/// Local label branches are resolved by Finish(); calls to other
/// functions stay symbolic until BinaryWriter lays out the image.
struct AsmFunction {
  std::string name;
  std::vector<Insn> insns;
  std::vector<Fixup> call_fixups;  // still-symbolic kBl targets
};

/// Builder for a single function. Typical use:
///
///   FnBuilder b("parse_header");
///   b.MovI(0, 0);
///   b.Label("loop");
///   ...
///   b.Bne("loop");
///   b.Call("memcpy");
///   b.Ret();
///   AsmFunction fn = std::move(b).Finish().value();
class FnBuilder {
 public:
  explicit FnBuilder(std::string name);

  // -- data movement / ALU ------------------------------------------------
  FnBuilder& MovR(int rd, int rm);
  FnBuilder& MovI(int rd, int32_t imm);
  /// Loads an arbitrary 32-bit constant (MovI + MovHi when needed).
  FnBuilder& MovConst(int rd, uint32_t value);
  FnBuilder& AddR(int rd, int rn, int rm);
  FnBuilder& AddI(int rd, int rn, int32_t imm);
  FnBuilder& SubR(int rd, int rn, int rm);
  FnBuilder& SubI(int rd, int rn, int32_t imm);
  FnBuilder& MulR(int rd, int rn, int rm);
  FnBuilder& AndI(int rd, int rn, int32_t imm);
  FnBuilder& OrrR(int rd, int rn, int rm);
  FnBuilder& LslI(int rd, int rn, int32_t imm);
  FnBuilder& LsrI(int rd, int rn, int32_t imm);

  // -- memory ---------------------------------------------------------------
  FnBuilder& LdrW(int rt, int base, int32_t off);
  FnBuilder& StrW(int rt, int base, int32_t off);
  FnBuilder& LdrB(int rt, int base, int32_t off);
  FnBuilder& StrB(int rt, int base, int32_t off);
  FnBuilder& LdrWR(int rt, int base, int idx);
  FnBuilder& StrWR(int rt, int base, int idx);
  FnBuilder& LdrBR(int rt, int base, int idx);
  FnBuilder& StrBR(int rt, int base, int idx);

  // -- compare / control flow -----------------------------------------------
  FnBuilder& CmpR(int rn, int rm);
  FnBuilder& CmpI(int rn, int32_t imm);
  FnBuilder& Label(const std::string& name);
  FnBuilder& B(const std::string& label);
  FnBuilder& Beq(const std::string& label);
  FnBuilder& Bne(const std::string& label);
  FnBuilder& Blt(const std::string& label);
  FnBuilder& Bge(const std::string& label);
  FnBuilder& Ble(const std::string& label);
  FnBuilder& Bgt(const std::string& label);
  /// Call a function by name (resolved by the binary writer).
  FnBuilder& Call(const std::string& symbol);
  /// Indirect call through a register.
  FnBuilder& CallReg(int rm);
  FnBuilder& Ret();
  FnBuilder& Nop();

  /// Raw instruction append (tests).
  FnBuilder& Emit(const Insn& insn);

  size_t size() const { return insns_.size(); }
  const std::string& name() const { return name_; }

  /// Resolves local label branches; returns the function or an error
  /// (undefined label, branch out of range).
  Result<AsmFunction> Finish() &&;

 private:
  FnBuilder& Branch(Op op, const std::string& label);

  std::string name_;
  std::vector<Insn> insns_;
  std::map<std::string, size_t> labels_;  // label -> insn index
  std::vector<Fixup> branch_fixups_;      // local label refs
  std::vector<Fixup> call_fixups_;        // symbolic call refs
};

}  // namespace dtaint
