// Register model and calling conventions for the DT-RISC instruction set.
//
// DT-RISC is the repo's stand-in for the ARM/MIPS cores found in real
// firmware (see DESIGN.md, substitutions). It has 16 general registers
// and comes in two flavors that differ exactly where DTaint's analysis
// cares:
//   * dtarm  — little-endian; arguments in r0..r3, return in r0,
//              link register r14 (mirrors ARM EABI, paper §III-B).
//   * dtmips — big-endian; arguments in r4..r7, return in r2,
//              link register r14 (mirrors MIPS o32).
// Both pass excess arguments on the stack (sp = r13), stack grows down.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dtaint {

/// Architecture flavor of a binary. Decides endianness, calling
/// convention and register display names.
enum class Arch : uint8_t {
  kDtArm = 0,   // little-endian, ARM-like conventions
  kDtMips = 1,  // big-endian, MIPS-like conventions
};

std::string_view ArchName(Arch arch);

/// Register indices shared by both flavors.
inline constexpr int kNumRegs = 16;
inline constexpr int kRegSp = 13;  // stack pointer
inline constexpr int kRegLr = 14;  // link register
inline constexpr int kRegPc = 15;  // program counter (not writable by ALU)

/// How many arguments are passed in registers before the stack is used.
inline constexpr int kNumRegArgs = 4;
/// DTaint models up to arg0..arg9 (paper §III-B).
inline constexpr int kMaxModeledArgs = 10;

/// Per-arch calling convention description.
struct CallingConvention {
  Arch arch;
  int arg_regs[kNumRegArgs];  // registers carrying args 0..3
  int ret_reg;                // register carrying the return value

  /// Register for the i-th argument, or -1 if it is stack-passed.
  int ArgReg(int i) const {
    return (i >= 0 && i < kNumRegArgs) ? arg_regs[i] : -1;
  }
  /// Argument index carried by register r, or -1.
  int ArgIndexOfReg(int r) const {
    for (int i = 0; i < kNumRegArgs; ++i)
      if (arg_regs[i] == r) return i;
    return -1;
  }
  /// Stack offset (relative to sp at function entry) of the i-th
  /// argument, for i >= kNumRegArgs.
  int StackArgOffset(int i) const { return (i - kNumRegArgs) * 4; }
};

/// Calling convention for an architecture flavor.
const CallingConvention& ConventionFor(Arch arch);

/// Display name of register r under the given flavor ("r5", "sp", or
/// MIPS-style "a0"/"v0" for argument/return registers).
std::string RegName(Arch arch, int r);

/// True for big-endian flavors (dtmips).
bool IsBigEndian(Arch arch);

/// Byte-order helpers honoring the arch flavor.
uint32_t ReadWord(Arch arch, const uint8_t* p);
void WriteWord(Arch arch, uint8_t* p, uint32_t v);

}  // namespace dtaint
