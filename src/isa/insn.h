// DT-RISC instruction model.
//
// Fixed 32-bit instruction words. Field layout by format:
//   R-type:  op[31:24] rd[23:20] rn[19:16] rm[15:12] (low 12 bits zero)
//   I-type:  op[31:24] rd[23:20] rn[19:16] imm16[15:0]   (signed)
//   B-type:  op[31:24] imm24[23:0]                        (signed words)
//
// Loads/stores use the I-type layout with rd = transfer register and
// rn = base register — exactly the "base + offset" addressing DTaint's
// variable description relies on (paper §III-B).
#pragma once

#include <cstdint>
#include <string>

#include "src/isa/regs.h"

namespace dtaint {

enum class Op : uint8_t {
  kInvalid = 0x00,
  // Data movement.
  kMovR = 0x01,   // rd = rm                        (R)
  kMovI = 0x02,   // rd = sext(imm16)               (I, rn unused)
  kMovHi = 0x03,  // rd = (rd & 0xFFFF) | imm<<16   (I, rn unused)
  // ALU, register and immediate forms.
  kAddR = 0x04,  // rd = rn + rm
  kAddI = 0x05,  // rd = rn + sext(imm16)
  kSubR = 0x06,
  kSubI = 0x07,
  kMulR = 0x08,
  kAndR = 0x09,
  kAndI = 0x0A,
  kOrrR = 0x0B,
  kOrrI = 0x0C,
  kXorR = 0x0D,
  kXorI = 0x0E,
  kLslI = 0x0F,  // rd = rn << imm
  kLsrI = 0x10,  // rd = rn >> imm (logical)
  // Memory. rd = transfer reg, rn = base, imm16 = signed offset.
  kLdrW = 0x11,  // rd = mem32[rn + imm]
  kStrW = 0x12,  // mem32[rn + imm] = rd
  kLdrB = 0x13,  // rd = zext(mem8[rn + imm])
  kStrB = 0x14,  // mem8[rn + imm] = rd & 0xFF
  // Register-indexed memory (array walks / loop copies).
  kLdrWR = 0x15,  // rd = mem32[rn + rm]
  kStrWR = 0x16,  // mem32[rn + rm] = rd
  kLdrBR = 0x17,  // rd = zext(mem8[rn + rm])
  kStrBR = 0x18,  // mem8[rn + rm] = rd & 0xFF
  // Compare (sets flags used by conditional branches).
  kCmpR = 0x19,  // flags = rn ? rm
  kCmpI = 0x1A,  // flags = rn ? sext(imm16)
  // Control flow. Branch offsets are in words, relative to the *next*
  // instruction (pc + 4).
  kB = 0x1B,    // unconditional
  kBeq = 0x1C,
  kBne = 0x1D,
  kBlt = 0x1E,
  kBge = 0x1F,
  kBle = 0x20,
  kBgt = 0x21,
  kBl = 0x22,   // call: lr = pc + 4; pc += off     (B)
  kBlr = 0x23,  // indirect call: lr = pc+4; pc = rm (R, rm only)
  kRet = 0x24,  // pc = lr                           (R, no fields)
  kNop = 0x25,
  kSvc = 0x26,  // system call, imm16 = number       (I)
};

/// Static classification of an opcode's encoding format.
enum class OpFormat : uint8_t { kR, kI, kB, kNone };

OpFormat FormatOf(Op op);
std::string_view OpName(Op op);

/// True for opcodes that terminate a basic block.
bool IsBlockTerminator(Op op);
/// True for conditional branches (kBeq..kBgt).
bool IsCondBranch(Op op);

/// A decoded instruction. Fields not used by the format are zero.
struct Insn {
  Op op = Op::kInvalid;
  uint8_t rd = 0;
  uint8_t rn = 0;
  uint8_t rm = 0;
  int32_t imm = 0;  // sign-extended imm16 (I) or imm24 words (B)

  bool operator==(const Insn& other) const = default;

  /// Disassembly, e.g. "ldr r1, [r5, #0x4c]" or "bl #+12".
  std::string ToString(Arch arch) const;
};

/// Size of every DT-RISC instruction in bytes.
inline constexpr uint32_t kInsnSize = 4;

}  // namespace dtaint
