#include "src/isa/decode.h"

namespace dtaint {

namespace {

bool IsKnownOp(uint8_t raw) {
  return raw >= static_cast<uint8_t>(Op::kMovR) &&
         raw <= static_cast<uint8_t>(Op::kSvc);
}

int32_t SignExtend16(uint32_t v) {
  return static_cast<int32_t>(static_cast<int16_t>(v & 0xFFFF));
}

int32_t SignExtend24(uint32_t v) {
  v &= 0xFFFFFF;
  if (v & 0x800000) v |= 0xFF000000;
  return static_cast<int32_t>(v);
}

}  // namespace

bool IsValidOpcode(uint32_t word) {
  return IsKnownOp(static_cast<uint8_t>(word >> 24));
}

Result<Insn> Decode(uint32_t word) {
  uint8_t raw = static_cast<uint8_t>(word >> 24);
  if (!IsKnownOp(raw)) {
    return CorruptData("unknown opcode byte " + std::to_string(raw));
  }
  Insn insn;
  insn.op = static_cast<Op>(raw);
  switch (FormatOf(insn.op)) {
    case OpFormat::kR:
      insn.rd = (word >> 20) & 0xF;
      insn.rn = (word >> 16) & 0xF;
      insn.rm = (word >> 12) & 0xF;
      break;
    case OpFormat::kI:
      insn.rd = (word >> 20) & 0xF;
      insn.rn = (word >> 16) & 0xF;
      insn.imm = insn.op == Op::kMovHi
                     ? static_cast<int32_t>(word & 0xFFFF)
                     : SignExtend16(word);
      break;
    case OpFormat::kB:
      insn.imm = SignExtend24(word);
      break;
    case OpFormat::kNone:
      break;
  }
  return insn;
}

}  // namespace dtaint
