#include "src/isa/insn.h"

#include "src/util/strings.h"

namespace dtaint {

OpFormat FormatOf(Op op) {
  switch (op) {
    case Op::kMovR:
    case Op::kAddR:
    case Op::kSubR:
    case Op::kMulR:
    case Op::kAndR:
    case Op::kOrrR:
    case Op::kXorR:
    case Op::kLdrWR:
    case Op::kStrWR:
    case Op::kLdrBR:
    case Op::kStrBR:
    case Op::kCmpR:
    case Op::kBlr:
      return OpFormat::kR;
    case Op::kMovI:
    case Op::kMovHi:
    case Op::kAddI:
    case Op::kSubI:
    case Op::kAndI:
    case Op::kOrrI:
    case Op::kXorI:
    case Op::kLslI:
    case Op::kLsrI:
    case Op::kLdrW:
    case Op::kStrW:
    case Op::kLdrB:
    case Op::kStrB:
    case Op::kCmpI:
    case Op::kSvc:
      return OpFormat::kI;
    case Op::kB:
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBle:
    case Op::kBgt:
    case Op::kBl:
      return OpFormat::kB;
    case Op::kRet:
    case Op::kNop:
      return OpFormat::kNone;
    case Op::kInvalid:
      return OpFormat::kNone;
  }
  return OpFormat::kNone;
}

std::string_view OpName(Op op) {
  switch (op) {
    case Op::kInvalid: return "<invalid>";
    case Op::kMovR: return "mov";
    case Op::kMovI: return "mov";
    case Op::kMovHi: return "movhi";
    case Op::kAddR: return "add";
    case Op::kAddI: return "add";
    case Op::kSubR: return "sub";
    case Op::kSubI: return "sub";
    case Op::kMulR: return "mul";
    case Op::kAndR: return "and";
    case Op::kAndI: return "and";
    case Op::kOrrR: return "orr";
    case Op::kOrrI: return "orr";
    case Op::kXorR: return "xor";
    case Op::kXorI: return "xor";
    case Op::kLslI: return "lsl";
    case Op::kLsrI: return "lsr";
    case Op::kLdrW: return "ldr";
    case Op::kStrW: return "str";
    case Op::kLdrB: return "ldrb";
    case Op::kStrB: return "strb";
    case Op::kLdrWR: return "ldr";
    case Op::kStrWR: return "str";
    case Op::kLdrBR: return "ldrb";
    case Op::kStrBR: return "strb";
    case Op::kCmpR: return "cmp";
    case Op::kCmpI: return "cmp";
    case Op::kB: return "b";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kBlt: return "blt";
    case Op::kBge: return "bge";
    case Op::kBle: return "ble";
    case Op::kBgt: return "bgt";
    case Op::kBl: return "bl";
    case Op::kBlr: return "blr";
    case Op::kRet: return "ret";
    case Op::kNop: return "nop";
    case Op::kSvc: return "svc";
  }
  return "?";
}

bool IsBlockTerminator(Op op) {
  switch (op) {
    case Op::kB:
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBle:
    case Op::kBgt:
    case Op::kRet:
      return true;
    default:
      return false;
  }
}

bool IsCondBranch(Op op) {
  return op >= Op::kBeq && op <= Op::kBgt;
}

std::string Insn::ToString(Arch arch) const {
  auto r = [&](int reg) { return RegName(arch, reg); };
  std::string name(OpName(op));
  switch (op) {
    case Op::kMovR:
      return name + " " + r(rd) + ", " + r(rm);
    case Op::kMovI:
      return name + " " + r(rd) + ", #" + std::to_string(imm);
    case Op::kMovHi:
      return name + " " + r(rd) + ", #" + HexStr(uint32_t(imm) & 0xFFFF);
    case Op::kAddR:
    case Op::kSubR:
    case Op::kMulR:
    case Op::kAndR:
    case Op::kOrrR:
    case Op::kXorR:
      return name + " " + r(rd) + ", " + r(rn) + ", " + r(rm);
    case Op::kAddI:
    case Op::kSubI:
    case Op::kAndI:
    case Op::kOrrI:
    case Op::kXorI:
    case Op::kLslI:
    case Op::kLsrI:
      return name + " " + r(rd) + ", " + r(rn) + ", #" +
             std::to_string(imm);
    case Op::kLdrW:
    case Op::kLdrB:
    case Op::kStrW:
    case Op::kStrB:
      return name + " " + r(rd) + ", [" + r(rn) + ", #" +
             std::to_string(imm) + "]";
    case Op::kLdrWR:
    case Op::kLdrBR:
    case Op::kStrWR:
    case Op::kStrBR:
      return name + " " + r(rd) + ", [" + r(rn) + ", " + r(rm) + "]";
    case Op::kCmpR:
      return name + " " + r(rn) + ", " + r(rm);
    case Op::kCmpI:
      return name + " " + r(rn) + ", #" + std::to_string(imm);
    case Op::kB:
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBle:
    case Op::kBgt:
    case Op::kBl:
      return name + " #" + (imm >= 0 ? "+" : "") +
             std::to_string(imm * 4);
    case Op::kBlr:
      return name + " " + r(rm);
    case Op::kRet:
    case Op::kNop:
      return name;
    case Op::kSvc:
      return name + " #" + std::to_string(imm);
    case Op::kInvalid:
      return name;
  }
  return name;
}

}  // namespace dtaint
