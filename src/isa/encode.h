// Instruction encoding: Insn -> 32-bit word.
#pragma once

#include <cstdint>

#include "src/isa/insn.h"
#include "src/util/status.h"

namespace dtaint {

/// Encodes an instruction into its 32-bit word. Fails on out-of-range
/// fields (immediates beyond 16/24 bits, register indices >= 16).
Result<uint32_t> Encode(const Insn& insn);

/// Range limits for encodable immediates.
inline constexpr int32_t kImm16Min = -32768;
inline constexpr int32_t kImm16Max = 32767;
inline constexpr int32_t kImm24Min = -(1 << 23);
inline constexpr int32_t kImm24Max = (1 << 23) - 1;

}  // namespace dtaint
