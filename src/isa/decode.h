// Instruction decoding: 32-bit word -> Insn.
#pragma once

#include <cstdint>

#include "src/isa/insn.h"
#include "src/util/status.h"

namespace dtaint {

/// Decodes a 32-bit instruction word. Fails on unknown opcodes, which
/// function discovery treats as "not code" (data in .text, padding).
Result<Insn> Decode(uint32_t word);

/// True if the opcode byte of `word` names a valid DT-RISC opcode.
bool IsValidOpcode(uint32_t word);

}  // namespace dtaint
