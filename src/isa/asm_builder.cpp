#include "src/isa/asm_builder.h"

namespace dtaint {

FnBuilder::FnBuilder(std::string name) : name_(std::move(name)) {}

FnBuilder& FnBuilder::Emit(const Insn& insn) {
  insns_.push_back(insn);
  return *this;
}

FnBuilder& FnBuilder::MovR(int rd, int rm) {
  return Emit({Op::kMovR, uint8_t(rd), 0, uint8_t(rm), 0});
}
FnBuilder& FnBuilder::MovI(int rd, int32_t imm) {
  return Emit({Op::kMovI, uint8_t(rd), 0, 0, imm});
}
FnBuilder& FnBuilder::MovConst(int rd, uint32_t value) {
  int32_t lo = static_cast<int32_t>(static_cast<int16_t>(value & 0xFFFF));
  MovI(rd, lo);
  // MovI sign-extends the low half; MovHi then overwrites bits 31..16
  // while preserving bits 15..0, so two instructions cover any value.
  if (static_cast<uint32_t>(lo) != value) {
    Emit({Op::kMovHi, uint8_t(rd), 0, 0,
          static_cast<int32_t>((value >> 16) & 0xFFFF)});
  }
  return *this;
}
FnBuilder& FnBuilder::AddR(int rd, int rn, int rm) {
  return Emit({Op::kAddR, uint8_t(rd), uint8_t(rn), uint8_t(rm), 0});
}
FnBuilder& FnBuilder::AddI(int rd, int rn, int32_t imm) {
  return Emit({Op::kAddI, uint8_t(rd), uint8_t(rn), 0, imm});
}
FnBuilder& FnBuilder::SubR(int rd, int rn, int rm) {
  return Emit({Op::kSubR, uint8_t(rd), uint8_t(rn), uint8_t(rm), 0});
}
FnBuilder& FnBuilder::SubI(int rd, int rn, int32_t imm) {
  return Emit({Op::kSubI, uint8_t(rd), uint8_t(rn), 0, imm});
}
FnBuilder& FnBuilder::MulR(int rd, int rn, int rm) {
  return Emit({Op::kMulR, uint8_t(rd), uint8_t(rn), uint8_t(rm), 0});
}
FnBuilder& FnBuilder::AndI(int rd, int rn, int32_t imm) {
  return Emit({Op::kAndI, uint8_t(rd), uint8_t(rn), 0, imm});
}
FnBuilder& FnBuilder::OrrR(int rd, int rn, int rm) {
  return Emit({Op::kOrrR, uint8_t(rd), uint8_t(rn), uint8_t(rm), 0});
}
FnBuilder& FnBuilder::LslI(int rd, int rn, int32_t imm) {
  return Emit({Op::kLslI, uint8_t(rd), uint8_t(rn), 0, imm});
}
FnBuilder& FnBuilder::LsrI(int rd, int rn, int32_t imm) {
  return Emit({Op::kLsrI, uint8_t(rd), uint8_t(rn), 0, imm});
}

FnBuilder& FnBuilder::LdrW(int rt, int base, int32_t off) {
  return Emit({Op::kLdrW, uint8_t(rt), uint8_t(base), 0, off});
}
FnBuilder& FnBuilder::StrW(int rt, int base, int32_t off) {
  return Emit({Op::kStrW, uint8_t(rt), uint8_t(base), 0, off});
}
FnBuilder& FnBuilder::LdrB(int rt, int base, int32_t off) {
  return Emit({Op::kLdrB, uint8_t(rt), uint8_t(base), 0, off});
}
FnBuilder& FnBuilder::StrB(int rt, int base, int32_t off) {
  return Emit({Op::kStrB, uint8_t(rt), uint8_t(base), 0, off});
}
FnBuilder& FnBuilder::LdrWR(int rt, int base, int idx) {
  return Emit({Op::kLdrWR, uint8_t(rt), uint8_t(base), uint8_t(idx), 0});
}
FnBuilder& FnBuilder::StrWR(int rt, int base, int idx) {
  return Emit({Op::kStrWR, uint8_t(rt), uint8_t(base), uint8_t(idx), 0});
}
FnBuilder& FnBuilder::LdrBR(int rt, int base, int idx) {
  return Emit({Op::kLdrBR, uint8_t(rt), uint8_t(base), uint8_t(idx), 0});
}
FnBuilder& FnBuilder::StrBR(int rt, int base, int idx) {
  return Emit({Op::kStrBR, uint8_t(rt), uint8_t(base), uint8_t(idx), 0});
}

FnBuilder& FnBuilder::CmpR(int rn, int rm) {
  return Emit({Op::kCmpR, 0, uint8_t(rn), uint8_t(rm), 0});
}
FnBuilder& FnBuilder::CmpI(int rn, int32_t imm) {
  return Emit({Op::kCmpI, 0, uint8_t(rn), 0, imm});
}

FnBuilder& FnBuilder::Label(const std::string& name) {
  labels_[name] = insns_.size();
  return *this;
}

FnBuilder& FnBuilder::Branch(Op op, const std::string& label) {
  branch_fixups_.push_back({insns_.size(), label, /*is_call=*/false});
  return Emit({op, 0, 0, 0, 0});
}

FnBuilder& FnBuilder::B(const std::string& l) { return Branch(Op::kB, l); }
FnBuilder& FnBuilder::Beq(const std::string& l) { return Branch(Op::kBeq, l); }
FnBuilder& FnBuilder::Bne(const std::string& l) { return Branch(Op::kBne, l); }
FnBuilder& FnBuilder::Blt(const std::string& l) { return Branch(Op::kBlt, l); }
FnBuilder& FnBuilder::Bge(const std::string& l) { return Branch(Op::kBge, l); }
FnBuilder& FnBuilder::Ble(const std::string& l) { return Branch(Op::kBle, l); }
FnBuilder& FnBuilder::Bgt(const std::string& l) { return Branch(Op::kBgt, l); }

FnBuilder& FnBuilder::Call(const std::string& symbol) {
  call_fixups_.push_back({insns_.size(), symbol, /*is_call=*/true});
  return Emit({Op::kBl, 0, 0, 0, 0});
}

FnBuilder& FnBuilder::CallReg(int rm) {
  return Emit({Op::kBlr, 0, 0, uint8_t(rm), 0});
}

FnBuilder& FnBuilder::Ret() { return Emit({Op::kRet, 0, 0, 0, 0}); }
FnBuilder& FnBuilder::Nop() { return Emit({Op::kNop, 0, 0, 0, 0}); }

Result<AsmFunction> FnBuilder::Finish() && {
  for (const Fixup& fx : branch_fixups_) {
    auto it = labels_.find(fx.target);
    if (it == labels_.end()) {
      return InvalidArgument("undefined label '" + fx.target +
                             "' in function " + name_);
    }
    // Branch offset is in words relative to pc + 4.
    int64_t delta = static_cast<int64_t>(it->second) -
                    (static_cast<int64_t>(fx.insn_index) + 1);
    if (delta < kImm24Min || delta > kImm24Max) {
      return OutOfRange("branch to '" + fx.target + "' out of range");
    }
    insns_[fx.insn_index].imm = static_cast<int32_t>(delta);
  }
  AsmFunction fn;
  fn.name = std::move(name_);
  fn.insns = std::move(insns_);
  fn.call_fixups = std::move(call_fixups_);
  return fn;
}

}  // namespace dtaint
