// The DTBIN binary container — the repo's ELF stand-in.
//
// A binary has sections (.text/.data/.rodata/.bss), a symbol table of
// defined functions, and an import table naming external library
// functions (strcpy, recv, system, ...). Imported functions get "stub"
// addresses in a PLT-like address range; a BL to a stub address is a
// library call, which is how DTaint's source/sink model locates its
// sources and sinks (paper Table I).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/isa/regs.h"
#include "src/util/status.h"

namespace dtaint {

/// Fixed load addresses. Data sections live at fixed bases so code can
/// materialize pointers into them before the text size is known.
inline constexpr uint32_t kTextBase = 0x00010000;
inline constexpr uint32_t kPltBase = 0x00001000;    // import stubs
inline constexpr uint32_t kPltStride = 0x10;        // one stub every 16B
inline constexpr uint32_t kRodataBase = 0x00800000;
inline constexpr uint32_t kDataBase = 0x00900000;
inline constexpr uint32_t kBssBase = 0x00A00000;

enum class SectionKind : uint8_t { kText = 0, kRodata, kData, kBss };

std::string_view SectionKindName(SectionKind kind);

struct Section {
  SectionKind kind;
  std::string name;   // ".text", ".data", ...
  uint32_t addr = 0;  // load address
  uint32_t size = 0;  // virtual size (>= bytes.size() for .bss)
  std::vector<uint8_t> bytes;
};

struct Symbol {
  std::string name;
  uint32_t addr = 0;
  uint32_t size = 0;       // bytes of code
  bool is_function = true;
};

struct Import {
  std::string name;        // e.g. "strcpy"
  uint32_t stub_addr = 0;  // PLT-like address BLs resolve to
};

/// A fully materialized binary, produced by BinaryWriter::Build or
/// BinaryLoader::Load.
struct Binary {
  Arch arch = Arch::kDtArm;
  std::string soname;  // display name, e.g. "cgibin"
  uint32_t entry = 0;
  std::vector<Section> sections;
  std::vector<Symbol> symbols;
  std::vector<Import> imports;

  const Section* FindSection(std::string_view name) const;
  const Symbol* FindSymbol(std::string_view name) const;
  /// Symbol whose [addr, addr+size) contains `addr`, if any.
  const Symbol* SymbolAt(uint32_t addr) const;
  /// Import with the given stub address, if any.
  const Import* ImportAt(uint32_t addr) const;
  /// True if addr lies in the PLT stub range of any import.
  bool IsImportStub(uint32_t addr) const;

  /// Reads a 32-bit word from any mapped section (arch endianness).
  Result<uint32_t> ReadWordAt(uint32_t addr) const;

  /// Total mapped size in bytes (sum of section virtual sizes).
  uint64_t MappedSize() const;
};

}  // namespace dtaint
