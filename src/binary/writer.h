// BinaryWriter: lays out assembled functions and data into a Binary,
// resolves symbolic call fixups (to local functions or import stubs),
// and serializes the DTBIN container to bytes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/binary/binary.h"
#include "src/isa/asm_builder.h"
#include "src/util/status.h"

namespace dtaint {

/// A request to patch a .data/.rodata word with a function's final
/// address — how synthesized dispatch tables hold function pointers.
struct DataReloc {
  std::string section;  // ".data" or ".rodata"
  uint32_t offset = 0;  // byte offset within the section payload
  std::string symbol;   // function whose address is written
};

class BinaryWriter {
 public:
  BinaryWriter(Arch arch, std::string soname);

  /// Appends a function to .text (layout order = insertion order).
  void AddFunction(AsmFunction fn);

  /// Declares an external library function; repeated adds are no-ops.
  void AddImport(const std::string& name);

  /// Appends raw bytes to .rodata / .data; returns the byte offset of
  /// the blob within the section.
  uint32_t AddRodata(std::vector<uint8_t> bytes);
  uint32_t AddData(std::vector<uint8_t> bytes);
  /// Reserves zero-initialized space in .bss; returns its offset.
  uint32_t AddBss(uint32_t size);

  /// Requests a pointer-to-function patch inside .data/.rodata.
  void AddDataReloc(DataReloc reloc);

  /// Entry point symbol (defaults to the first function).
  void SetEntry(const std::string& symbol);

  /// Lays out sections, assigns addresses, resolves all fixups.
  Result<Binary> Build() const;

  /// Serializes a built Binary to the DTBIN wire format.
  static std::vector<uint8_t> Serialize(const Binary& binary);

  size_t function_count() const { return functions_.size(); }

 private:
  Arch arch_;
  std::string soname_;
  std::string entry_symbol_;
  std::vector<AsmFunction> functions_;
  std::vector<std::string> imports_;          // insertion order
  std::map<std::string, size_t> import_idx_;  // name -> index
  std::vector<uint8_t> rodata_;
  std::vector<uint8_t> data_;
  uint32_t bss_size_ = 0;
  std::vector<DataReloc> data_relocs_;
};

}  // namespace dtaint
