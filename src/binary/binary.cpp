#include "src/binary/binary.h"

#include <algorithm>

namespace dtaint {

std::string_view SectionKindName(SectionKind kind) {
  switch (kind) {
    case SectionKind::kText:
      return ".text";
    case SectionKind::kRodata:
      return ".rodata";
    case SectionKind::kData:
      return ".data";
    case SectionKind::kBss:
      return ".bss";
  }
  return "?";
}

const Section* Binary::FindSection(std::string_view name) const {
  for (const Section& s : sections) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const Symbol* Binary::FindSymbol(std::string_view name) const {
  for (const Symbol& s : symbols) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const Symbol* Binary::SymbolAt(uint32_t addr) const {
  for (const Symbol& s : symbols) {
    if (addr >= s.addr && addr < s.addr + s.size) return &s;
  }
  return nullptr;
}

const Import* Binary::ImportAt(uint32_t addr) const {
  for (const Import& imp : imports) {
    if (imp.stub_addr == addr) return &imp;
  }
  return nullptr;
}

bool Binary::IsImportStub(uint32_t addr) const {
  return ImportAt(addr) != nullptr;
}

Result<uint32_t> Binary::ReadWordAt(uint32_t addr) const {
  for (const Section& s : sections) {
    if (addr >= s.addr && addr + 4 <= s.addr + s.size) {
      uint32_t off = addr - s.addr;
      if (off + 4 > s.bytes.size()) return uint32_t{0};  // .bss tail
      return ReadWord(arch, s.bytes.data() + off);
    }
  }
  return OutOfRange("address not mapped: " + std::to_string(addr));
}

uint64_t Binary::MappedSize() const {
  uint64_t total = 0;
  for (const Section& s : sections) total += s.size;
  return total;
}

}  // namespace dtaint
