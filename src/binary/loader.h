// BinaryLoader: parses DTBIN bytes back into a Binary, verifying the
// container checksum and structural well-formedness. This is the repo's
// "ELF loader" stage — the first thing DTaint's pipeline does once the
// firmware extractor has produced a candidate binary.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "src/binary/binary.h"
#include "src/util/status.h"

namespace dtaint {

class BinaryLoader {
 public:
  /// Parses and validates a serialized DTBIN image. `origin` (a file
  /// path or firmware-member path) is woven into every error message
  /// together with the byte offset the parse failed at, so a fleet
  /// scan's incident log pinpoints the bad input without re-parsing.
  static Result<Binary> Load(std::span<const uint8_t> bytes,
                             std::string_view origin = {});

  /// Reads `path` from disk and parses it, with the path as origin.
  static Result<Binary> LoadFile(const std::string& path);

  /// Quick magic check without a full parse (used by the firmware
  /// extractor to pick executable files out of a root filesystem).
  static bool LooksLikeBinary(std::span<const uint8_t> bytes);
};

}  // namespace dtaint
