#include "src/binary/loader.h"

#include <fstream>

#include "src/resilience/fault.h"
#include "src/util/hash.h"

namespace dtaint {

namespace {

/// Cursor over the serialized image with bounds-checked readers.
class Reader {
 public:
  explicit Reader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  size_t pos() const { return pos_; }
  size_t remaining() const { return bytes_.size() - pos_; }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return bytes_[pos_++];
  }
  uint16_t U16() {
    uint16_t lo = U8();
    return static_cast<uint16_t>(lo | (uint16_t{U8()} << 8));
  }
  uint32_t U32() {
    uint32_t lo = U16();
    return lo | (uint32_t{U16()} << 16);
  }
  uint64_t U64() {
    uint64_t lo = U32();
    return lo | (uint64_t{U32()} << 32);
  }
  std::string Str() {
    uint16_t len = U16();
    if (!Need(len)) return {};
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return s;
  }
  std::vector<uint8_t> Bytes(size_t n) {
    if (!Need(n)) return {};
    std::vector<uint8_t> out(bytes_.begin() + pos_, bytes_.begin() + pos_ + n);
    pos_ += n;
    return out;
  }

 private:
  bool Need(size_t n) {
    if (pos_ + n > bytes_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

bool BinaryLoader::LooksLikeBinary(std::span<const uint8_t> bytes) {
  return bytes.size() >= 4 && bytes[0] == 'D' && bytes[1] == 'T' &&
         bytes[2] == 'B' && bytes[3] == '1';
}

Result<Binary> BinaryLoader::Load(std::span<const uint8_t> bytes,
                                  std::string_view origin) {
  // Every error names the input and the byte offset the parse died at:
  // "cgibin.bin: section payload truncated at offset 142". Incident
  // logs from a fleet scan are actionable without replaying the parse.
  const std::string where =
      origin.empty() ? std::string() : std::string(origin) + ": ";
  if (FaultPlan::Global().ShouldFail(FaultSite::kLoad, origin)) {
    return Internal(where + "injected load fault");
  }
  if (!LooksLikeBinary(bytes)) {
    return CorruptData(where + "missing DTB1 magic at offset 0");
  }
  if (bytes.size() < 12 + 8) {
    return CorruptData(where + "image truncated (" +
                       std::to_string(bytes.size()) + " bytes)");
  }
  // Verify trailing checksum over everything before it.
  size_t body_size = bytes.size() - 8;
  uint64_t want = 0;
  for (int i = 7; i >= 0; --i) want = (want << 8) | bytes[body_size + i];
  uint64_t got = Fnv1a(bytes.subspan(0, body_size));
  if (want != got) {
    return CorruptData(where + "checksum mismatch (corrupted image)");
  }

  Reader r(bytes.subspan(0, body_size));
  auto corrupt = [&](const std::string& what) {
    return CorruptData(where + what + " at offset " +
                       std::to_string(r.pos()));
  };
  (void)r.Bytes(4);  // magic, already checked
  uint8_t arch_raw = r.U8();
  if (arch_raw > static_cast<uint8_t>(Arch::kDtMips)) {
    return corrupt("unknown architecture tag");
  }
  Binary bin;
  bin.arch = static_cast<Arch>(arch_raw);
  (void)r.U8();   // flags
  (void)r.U16();  // reserved
  bin.soname = r.Str();
  bin.entry = r.U32();
  uint32_t n_sections = r.U32();
  uint32_t n_symbols = r.U32();
  uint32_t n_imports = r.U32();
  if (!r.ok()) return corrupt("header truncated");
  if (n_sections > 64 || n_symbols > 1u << 20 || n_imports > 4096) {
    return corrupt("implausible table sizes");
  }

  for (uint32_t i = 0; i < n_sections; ++i) {
    Section s;
    uint8_t kind = r.U8();
    if (kind > static_cast<uint8_t>(SectionKind::kBss)) {
      return corrupt("bad section kind");
    }
    s.kind = static_cast<SectionKind>(kind);
    s.name = r.Str();
    s.addr = r.U32();
    s.size = r.U32();
    uint32_t payload = r.U32();
    if (!r.ok() || payload > r.remaining()) {
      return corrupt("section payload truncated");
    }
    if (payload > s.size) return corrupt("payload larger than section");
    s.bytes = r.Bytes(payload);
    bin.sections.push_back(std::move(s));
  }
  for (uint32_t i = 0; i < n_symbols; ++i) {
    Symbol sym;
    sym.name = r.Str();
    sym.addr = r.U32();
    sym.size = r.U32();
    sym.is_function = r.U8() != 0;
    bin.symbols.push_back(std::move(sym));
  }
  for (uint32_t i = 0; i < n_imports; ++i) {
    Import imp;
    imp.name = r.Str();
    imp.stub_addr = r.U32();
    bin.imports.push_back(std::move(imp));
  }
  if (!r.ok()) return corrupt("tables truncated");

  // Structural sanity.
  // Mapped sections must not overlap in the address space — an
  // overlapping layout lets one section's bytes shadow another's,
  // which corrupts concretized data loads downstream.
  for (size_t i = 0; i < bin.sections.size(); ++i) {
    const Section& a = bin.sections[i];
    uint64_t a_end = uint64_t{a.addr} + a.size;
    for (size_t j = i + 1; j < bin.sections.size(); ++j) {
      const Section& b = bin.sections[j];
      uint64_t b_end = uint64_t{b.addr} + b.size;
      if (a.addr < b_end && b.addr < a_end && a.size > 0 && b.size > 0) {
        return CorruptData(where + "overlapping sections: " + a.name +
                           " and " + b.name);
      }
    }
  }
  // Symbols must point into .text. 64-bit arithmetic: addr + size on
  // a hostile input can wrap uint32 and sneak past a 32-bit compare.
  const Section* text = bin.FindSection(".text");
  if (!text) return CorruptData(where + "no .text section");
  uint64_t text_end = uint64_t{text->addr} + text->size;
  for (const Symbol& sym : bin.symbols) {
    if (sym.is_function &&
        (sym.addr < text->addr ||
         uint64_t{sym.addr} + sym.size > text_end)) {
      return CorruptData(where + "function symbol outside .text: " +
                         sym.name);
    }
  }
  return bin;
}

Result<Binary> BinaryLoader::LoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFound(path + ": cannot open file");
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  return Load(bytes, path);
}

}  // namespace dtaint
