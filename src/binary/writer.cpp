#include "src/binary/writer.h"

#include <cassert>

#include "src/isa/encode.h"
#include "src/util/hash.h"

namespace dtaint {

namespace {

// Little-endian metadata writers (metadata endianness is fixed; only
// instruction/data words inside sections honor the arch flavor).
void PutU8(std::vector<uint8_t>& out, uint8_t v) { out.push_back(v); }
void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}
void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v));
  PutU16(out, static_cast<uint16_t>(v >> 16));
}
void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}
void PutStr(std::vector<uint8_t>& out, const std::string& s) {
  PutU16(out, static_cast<uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

}  // namespace

BinaryWriter::BinaryWriter(Arch arch, std::string soname)
    : arch_(arch), soname_(std::move(soname)) {}

void BinaryWriter::AddFunction(AsmFunction fn) {
  if (entry_symbol_.empty()) entry_symbol_ = fn.name;
  functions_.push_back(std::move(fn));
}

void BinaryWriter::AddImport(const std::string& name) {
  if (import_idx_.count(name)) return;
  import_idx_[name] = imports_.size();
  imports_.push_back(name);
}

uint32_t BinaryWriter::AddRodata(std::vector<uint8_t> bytes) {
  uint32_t off = static_cast<uint32_t>(rodata_.size());
  rodata_.insert(rodata_.end(), bytes.begin(), bytes.end());
  while (rodata_.size() % 4) rodata_.push_back(0);
  return off;
}

uint32_t BinaryWriter::AddData(std::vector<uint8_t> bytes) {
  uint32_t off = static_cast<uint32_t>(data_.size());
  data_.insert(data_.end(), bytes.begin(), bytes.end());
  while (data_.size() % 4) data_.push_back(0);
  return off;
}

uint32_t BinaryWriter::AddBss(uint32_t size) {
  uint32_t off = bss_size_;
  bss_size_ += (size + 3) & ~3u;
  return off;
}

void BinaryWriter::AddDataReloc(DataReloc reloc) {
  data_relocs_.push_back(std::move(reloc));
}

void BinaryWriter::SetEntry(const std::string& symbol) {
  entry_symbol_ = symbol;
}

Result<Binary> BinaryWriter::Build() const {
  Binary bin;
  bin.arch = arch_;
  bin.soname = soname_;

  // Import stubs live below .text at fixed stride.
  for (size_t i = 0; i < imports_.size(); ++i) {
    bin.imports.push_back(
        {imports_[i], kPltBase + static_cast<uint32_t>(i) * kPltStride});
  }

  // Lay out functions contiguously in .text.
  std::map<std::string, uint32_t> fn_addr;
  uint32_t cursor = kTextBase;
  for (const AsmFunction& fn : functions_) {
    if (fn_addr.count(fn.name)) {
      return InvalidArgument("duplicate function symbol: " + fn.name);
    }
    fn_addr[fn.name] = cursor;
    cursor += static_cast<uint32_t>(fn.insns.size()) * kInsnSize;
  }

  auto resolve = [&](const std::string& name) -> std::optional<uint32_t> {
    if (auto it = fn_addr.find(name); it != fn_addr.end()) return it->second;
    if (auto it = import_idx_.find(name); it != import_idx_.end()) {
      return kPltBase + static_cast<uint32_t>(it->second) * kPltStride;
    }
    return std::nullopt;
  };

  // Encode .text with call fixups resolved to absolute targets.
  Section text{SectionKind::kText, ".text", kTextBase, 0, {}};
  for (const AsmFunction& fn : functions_) {
    uint32_t base = fn_addr[fn.name];
    std::vector<Insn> insns = fn.insns;
    for (const Fixup& fx : fn.call_fixups) {
      auto target = resolve(fx.target);
      if (!target) {
        return NotFound("unresolved call target '" + fx.target +
                        "' in function " + fn.name);
      }
      uint32_t pc = base + static_cast<uint32_t>(fx.insn_index) * kInsnSize;
      int64_t delta =
          (static_cast<int64_t>(*target) - (static_cast<int64_t>(pc) + 4)) /
          kInsnSize;
      if (delta < kImm24Min || delta > kImm24Max) {
        return OutOfRange("call to '" + fx.target + "' out of BL range");
      }
      insns[fx.insn_index].imm = static_cast<int32_t>(delta);
    }
    for (const Insn& insn : insns) {
      auto word = Encode(insn);
      if (!word.ok()) {
        return Status(word.status().code(), "in function " + fn.name +
                                                ": " +
                                                word.status().message());
      }
      uint8_t buf[4];
      WriteWord(arch_, buf, *word);
      text.bytes.insert(text.bytes.end(), buf, buf + 4);
    }
    bin.symbols.push_back(
        {fn.name, base, static_cast<uint32_t>(fn.insns.size()) * kInsnSize,
         true});
  }
  text.size = static_cast<uint32_t>(text.bytes.size());

  // Data sections live at fixed bases (binary.h) so code could embed
  // pointers into them before layout. .text must stay below .rodata.
  if (kTextBase + text.size > kRodataBase) {
    return OutOfRange(".text overflows into .rodata region");
  }
  if (rodata_.size() > kDataBase - kRodataBase ||
      data_.size() > kBssBase - kDataBase) {
    return OutOfRange("data section too large for fixed layout");
  }

  Section rodata{SectionKind::kRodata, ".rodata", kRodataBase,
                 static_cast<uint32_t>(rodata_.size()), rodata_};
  Section data{SectionKind::kData, ".data", kDataBase,
               static_cast<uint32_t>(data_.size()), data_};
  Section bss{SectionKind::kBss, ".bss", kBssBase, bss_size_, {}};

  // Apply function-pointer relocations into data/rodata payloads.
  for (const DataReloc& reloc : data_relocs_) {
    Section* sec = nullptr;
    if (reloc.section == ".data") sec = &data;
    else if (reloc.section == ".rodata") sec = &rodata;
    else return InvalidArgument("reloc into unknown section " + reloc.section);
    if (reloc.offset + 4 > sec->bytes.size()) {
      return OutOfRange("reloc offset beyond section " + reloc.section);
    }
    auto target = resolve(reloc.symbol);
    if (!target) return NotFound("unresolved data reloc: " + reloc.symbol);
    WriteWord(arch_, sec->bytes.data() + reloc.offset, *target);
  }

  bin.sections.push_back(std::move(text));
  if (!rodata.bytes.empty()) bin.sections.push_back(std::move(rodata));
  if (!data.bytes.empty()) bin.sections.push_back(std::move(data));
  if (bss.size > 0) bin.sections.push_back(std::move(bss));

  auto entry = resolve(entry_symbol_);
  if (!entry) return NotFound("entry symbol not defined: " + entry_symbol_);
  bin.entry = *entry;
  return bin;
}

std::vector<uint8_t> BinaryWriter::Serialize(const Binary& binary) {
  std::vector<uint8_t> out;
  out.push_back('D');
  out.push_back('T');
  out.push_back('B');
  out.push_back('1');
  PutU8(out, static_cast<uint8_t>(binary.arch));
  PutU8(out, 0);  // flags
  PutU16(out, 0);
  PutStr(out, binary.soname);
  PutU32(out, binary.entry);
  PutU32(out, static_cast<uint32_t>(binary.sections.size()));
  PutU32(out, static_cast<uint32_t>(binary.symbols.size()));
  PutU32(out, static_cast<uint32_t>(binary.imports.size()));
  for (const Section& s : binary.sections) {
    PutU8(out, static_cast<uint8_t>(s.kind));
    PutStr(out, s.name);
    PutU32(out, s.addr);
    PutU32(out, s.size);
    PutU32(out, static_cast<uint32_t>(s.bytes.size()));
    out.insert(out.end(), s.bytes.begin(), s.bytes.end());
  }
  for (const Symbol& sym : binary.symbols) {
    PutStr(out, sym.name);
    PutU32(out, sym.addr);
    PutU32(out, sym.size);
    PutU8(out, sym.is_function ? 1 : 0);
  }
  for (const Import& imp : binary.imports) {
    PutStr(out, imp.name);
    PutU32(out, imp.stub_addr);
  }
  uint64_t checksum = Fnv1a(std::span<const uint8_t>(out.data(), out.size()));
  PutU64(out, checksum);
  return out;
}

}  // namespace dtaint
