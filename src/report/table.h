// Plain-text table rendering for the benchmark harnesses: every bench
// binary prints rows shaped like the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace dtaint {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with column auto-sizing and an underline under headers.
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dtaint
