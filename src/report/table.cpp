#include "src/report/table.h"

#include <algorithm>

#include "src/util/strings.h"

namespace dtaint {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      out += PadRight(cells[i], widths[i]);
      if (i + 1 < cells.size()) out += "  ";
    }
    out += "\n";
  };
  emit_row(headers_);
  std::string rule;
  for (size_t i = 0; i < widths.size(); ++i) {
    rule += std::string(widths[i], '-');
    if (i + 1 < widths.size()) rule += "  ";
  }
  out += rule + "\n";
  for (const auto& row : rows_) emit_row(row);
  return out;
}

}  // namespace dtaint
