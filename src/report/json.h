// JSON serialization of analysis reports — the machine-readable output
// a downstream CI pipeline or triage UI would consume.
#pragma once

#include <string>

#include "src/core/dtaint.h"
#include "src/report/scoring.h"
#include "src/util/strings.h"  // JsonEscape

namespace dtaint {

/// Serializes a full analysis report:
/// { "binary": ..., "arch": ..., "shape": {...}, "timings": {...},
///   "interproc": {...}, "pathfinder": {sinks_visited, paths_explored,
///   pruned_by_depth, paths_found, sanitized_away},
///   "hot_functions": [{name, seconds, cached} ...],
///   "metrics": {counters, gauges, histograms}  (per-run delta),
///   "findings": [ {class, sink, source, function, site, hops:[...],
///                  constraints:[...]} ... ] }
std::string ReportToJson(const AnalysisReport& report);

/// Serializes a detection score (precision/recall vs ground truth).
std::string ScoreToJson(const DetectionScore& score);

}  // namespace dtaint
