// JSON serialization of analysis reports — the machine-readable output
// a downstream CI pipeline or triage UI would consume.
#pragma once

#include <string>

#include "src/core/dtaint.h"
#include "src/report/scoring.h"

namespace dtaint {

/// Minimal JSON string escaping (quotes, backslash, control chars).
std::string JsonEscape(std::string_view text);

/// Serializes a full analysis report:
/// { "binary": ..., "arch": ..., "shape": {...}, "timings": {...},
///   "findings": [ {class, sink, source, function, site, hops:[...],
///                  constraints:[...]} ... ] }
std::string ReportToJson(const AnalysisReport& report);

/// Serializes a detection score (precision/recall vs ground truth).
std::string ScoreToJson(const DetectionScore& score);

}  // namespace dtaint
