// JSON serialization of analysis reports — the machine-readable output
// a downstream CI pipeline or triage UI would consume.
#pragma once

#include <string>

#include "src/core/dtaint.h"
#include "src/report/scoring.h"
#include "src/util/strings.h"  // JsonEscape

namespace dtaint {

/// Serializes a full analysis report:
/// { "binary": ..., "arch": ..., "complete": bool, "shape": {...},
///   "timings": {...}, "interproc": {...},
///   "pathfinder": {sinks_visited, paths_explored, pruned_by_depth,
///   paths_found, degraded_paths, sanitized_away},
///   "resilience": {degraded_functions, truncated_functions,
///   suppressed_findings}, "incidents": [...],
///   "hot_functions": [{name, seconds, cached} ...],
///   "metrics": {counters, gauges, histograms}  (per-run delta),
///   "findings": [ {class, sink, source, function, site, hops:[...],
///                  constraints:[...]} ... ] }
std::string ReportToJson(const AnalysisReport& report);

/// Serializes just the findings array (same element schema as
/// ReportToJson's "findings"). Deterministic for a given analysis —
/// no timings or metrics — so differential tests and fleet reports can
/// compare detection output byte-for-byte across runs.
std::string FindingsToJson(const std::vector<Finding>& findings);

/// Serializes a detection score (precision/recall vs ground truth).
std::string ScoreToJson(const DetectionScore& score);

}  // namespace dtaint
