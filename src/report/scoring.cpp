#include "src/report/scoring.h"

#include <set>

namespace dtaint {

DetectionScore ScoreFindings(const std::vector<Finding>& findings,
                             const std::vector<PlantedVuln>& ground_truth) {
  DetectionScore score;
  std::set<std::string> hit_vulnerable;
  std::set<std::string> hit_safe;
  size_t unmatched = 0;

  for (const Finding& finding : findings) {
    const TaintPath& path = finding.path;
    bool matched = false;
    for (const PlantedVuln& plant : ground_truth) {
      if (plant.sink_function != path.sink_function) continue;
      if (plant.sink != path.sink_name) continue;
      matched = true;
      if (plant.sanitized) {
        hit_safe.insert(plant.id);
      } else {
        hit_vulnerable.insert(plant.id);
      }
      break;
    }
    if (!matched) ++unmatched;
  }

  for (const PlantedVuln& plant : ground_truth) {
    if (plant.sanitized) continue;
    if (hit_vulnerable.count(plant.id)) {
      ++score.true_positives;
      score.found_ids.push_back(plant.id);
    } else {
      ++score.false_negatives;
      score.missed_ids.push_back(plant.id);
    }
  }
  score.safe_twin_hits = hit_safe.size();
  score.false_positives = unmatched;
  return score;
}

}  // namespace dtaint
