// Detection scoring against synthesized ground truth.
//
// The paper validates findings by hand against CVEs and real devices;
// our firmware is synthesized, so every planted vulnerability (and
// every deliberately-sanitized twin) is known exactly and findings can
// be scored as TP/FP/FN automatically.
#pragma once

#include <string>
#include <vector>

#include "src/core/dtaint.h"
#include "src/core/sources_sinks.h"

namespace dtaint {

/// One planted taint-style pattern in a synthesized binary.
struct PlantedVuln {
  std::string id;             // unique tag, e.g. "dir645-v1"
  std::string sink_function;  // function containing the sink call
  std::string sink;           // "strcpy", "system", "loop", ...
  std::string source;         // "recv", "getenv", ...
  VulnClass vuln_class = VulnClass::kBufferOverflow;
  bool sanitized = false;     // true: this is a safe twin (must NOT fire)
  bool needs_alias = false;       // reachable only through Algorithm 1
  bool needs_structsim = false;   // reachable only through §III-D
  bool interprocedural = false;   // source and sink in different functions
  std::string cve_label;      // display label for Table IV rows
};

struct DetectionScore {
  size_t true_positives = 0;
  size_t false_positives = 0;   // findings matching no vulnerable plant
  size_t false_negatives = 0;   // vulnerable plants not found
  size_t safe_twin_hits = 0;    // findings on sanitized twins (FP class)
  std::vector<std::string> missed_ids;
  std::vector<std::string> found_ids;

  double Precision() const {
    size_t denom = true_positives + false_positives + safe_twin_hits;
    return denom == 0 ? 1.0 : static_cast<double>(true_positives) / denom;
  }
  double Recall() const {
    size_t denom = true_positives + false_negatives;
    return denom == 0 ? 1.0 : static_cast<double>(true_positives) / denom;
  }
};

/// Matches findings to plants by (sink_function, sink) identity; each
/// plant counts once no matter how many paths hit it.
DetectionScore ScoreFindings(const std::vector<Finding>& findings,
                             const std::vector<PlantedVuln>& ground_truth);

}  // namespace dtaint
