#include "src/report/json.h"

#include "src/util/json_writer.h"
#include "src/util/strings.h"

namespace dtaint {

namespace {

/// Emits one finding object (shared by ReportToJson and
/// FindingsToJson so the two stay schema-identical).
void AppendFinding(JsonBuilder& json, const Finding& finding) {
  const TaintPath& path = finding.path;
  json.BeginObject();
  json.Key("class");
  json.String(VulnClassName(path.vuln_class));
  json.Key("sink");
  json.String(path.sink_name);
  json.Key("source");
  json.String(path.source_name);
  json.Key("function");
  json.String(path.sink_function);
  json.Key("sink_site");
  json.String(HexStr(path.sink_site));
  json.Key("source_site");
  json.String(HexStr(path.source_site));
  if (path.sink_arg) {
    json.Key("sink_argument");
    json.String(path.sink_arg->ToString());
  }
  json.Key("hops");
  json.BeginArray();
  for (const PathHop& hop : path.hops) {
    json.BeginObject();
    json.Key("function");
    json.String(hop.function);
    json.Key("site");
    json.String(HexStr(hop.site));
    json.Key("note");
    json.String(hop.note);
    json.EndObject();
  }
  json.EndArray();
  json.Key("constraints");
  json.BeginArray();
  for (const PathConstraint& c : path.constraints) {
    json.String(c.ToString());
  }
  json.EndArray();
  json.EndObject();
}

}  // namespace

std::string ReportToJson(const AnalysisReport& report) {
  JsonBuilder json;
  json.BeginObject();
  json.Key("binary");
  json.String(report.binary_name);
  json.Key("arch");
  json.String(ArchName(report.arch));
  json.Key("complete");
  json.Bool(report.complete);

  json.Key("shape");
  json.BeginObject();
  json.Key("functions");
  json.Number(static_cast<uint64_t>(report.functions));
  json.Key("analyzed_functions");
  json.Number(static_cast<uint64_t>(report.analyzed_functions));
  json.Key("blocks");
  json.Number(static_cast<uint64_t>(report.blocks));
  json.Key("call_graph_edges");
  json.Number(static_cast<uint64_t>(report.call_graph_edges));
  json.Key("sink_count");
  json.Number(static_cast<uint64_t>(report.sink_count));
  json.EndObject();

  json.Key("timings_seconds");
  json.BeginObject();
  json.Key("ssa");
  json.Number(report.ssa_seconds);
  json.Key("ddg");
  json.Number(report.ddg_seconds);
  json.Key("total");
  json.Number(report.total_seconds);
  json.EndObject();

  json.Key("paths");
  json.BeginObject();
  json.Key("total");
  json.Number(static_cast<uint64_t>(report.total_paths));
  json.Key("vulnerable");
  json.Number(static_cast<uint64_t>(report.vulnerable_paths));
  json.EndObject();

  json.Key("interproc");
  json.BeginObject();
  json.Key("summary_seconds");
  json.Number(report.interproc_stats.summary_seconds);
  json.Key("functions_processed");
  json.Number(static_cast<uint64_t>(report.interproc_stats.functions_processed));
  json.Key("defs_propagated");
  json.Number(static_cast<uint64_t>(report.interproc_stats.defs_propagated));
  json.Key("uses_forwarded");
  json.Number(static_cast<uint64_t>(report.interproc_stats.uses_forwarded));
  json.Key("rets_replaced");
  json.Number(static_cast<uint64_t>(report.interproc_stats.rets_replaced));
  json.Key("alias_pairs_added");
  json.Number(static_cast<uint64_t>(report.interproc_stats.alias_pairs_added));
  json.Key("indirect_calls_resolved");
  json.Number(static_cast<uint64_t>(report.indirect_calls_resolved));
  json.Key("cache");
  json.BeginObject();
  json.Key("hits");
  json.Number(static_cast<uint64_t>(report.interproc_stats.cache_hits));
  json.Key("misses");
  json.Number(static_cast<uint64_t>(report.interproc_stats.cache_misses));
  json.Key("evictions");
  json.Number(static_cast<uint64_t>(report.interproc_stats.cache_evictions));
  json.Key("memory_bytes");
  json.Number(
      static_cast<uint64_t>(report.interproc_stats.cache_memory_bytes));
  json.EndObject();
  json.EndObject();

  json.Key("pathfinder");
  json.BeginObject();
  json.Key("sinks_visited");
  json.Number(static_cast<uint64_t>(report.pathfinder_stats.sinks_visited));
  json.Key("paths_explored");
  json.Number(static_cast<uint64_t>(report.pathfinder_stats.paths_explored));
  json.Key("pruned_by_depth");
  json.Number(static_cast<uint64_t>(report.pathfinder_stats.pruned_by_depth));
  json.Key("paths_found");
  json.Number(static_cast<uint64_t>(report.pathfinder_stats.paths_found));
  json.Key("degraded_paths");
  json.Number(static_cast<uint64_t>(report.pathfinder_stats.degraded_paths));
  json.Key("sanitized_away");
  json.Number(static_cast<uint64_t>(report.pathfinder_stats.sanitized_away));
  json.EndObject();

  json.Key("resilience");
  json.BeginObject();
  json.Key("degraded_functions");
  json.Number(static_cast<uint64_t>(report.degraded_functions));
  json.Key("truncated_functions");
  json.Number(
      static_cast<uint64_t>(report.interproc_stats.truncated_functions));
  json.Key("suppressed_findings");
  json.Number(static_cast<uint64_t>(report.suppressed_findings));
  json.EndObject();

  json.Key("incidents");
  json.Raw(IncidentsToJson(report.incidents));

  json.Key("hot_functions");
  json.BeginArray();
  for (const HotFunction& hot : report.hot_functions) {
    json.BeginObject();
    json.Key("name");
    json.String(hot.name);
    json.Key("seconds");
    json.Number(hot.seconds);
    json.Key("cached");
    json.Bool(hot.cached);
    json.EndObject();
  }
  json.EndArray();

  json.Key("metrics");
  json.Raw(obs::MetricsSnapshotToJson(report.metrics));

  json.Key("findings");
  json.BeginArray();
  for (const Finding& finding : report.findings) {
    AppendFinding(json, finding);
  }
  json.EndArray();
  json.EndObject();
  return std::move(json).Take();
}

std::string FindingsToJson(const std::vector<Finding>& findings) {
  JsonBuilder json;
  json.BeginArray();
  for (const Finding& finding : findings) {
    AppendFinding(json, finding);
  }
  json.EndArray();
  return std::move(json).Take();
}

std::string ScoreToJson(const DetectionScore& score) {
  JsonBuilder json;
  json.BeginObject();
  json.Key("true_positives");
  json.Number(static_cast<uint64_t>(score.true_positives));
  json.Key("false_positives");
  json.Number(static_cast<uint64_t>(score.false_positives));
  json.Key("false_negatives");
  json.Number(static_cast<uint64_t>(score.false_negatives));
  json.Key("safe_twin_hits");
  json.Number(static_cast<uint64_t>(score.safe_twin_hits));
  json.Key("precision");
  json.Number(score.Precision());
  json.Key("recall");
  json.Number(score.Recall());
  json.Key("found");
  json.BeginArray();
  for (const std::string& id : score.found_ids) json.String(id);
  json.EndArray();
  json.Key("missed");
  json.BeginArray();
  for (const std::string& id : score.missed_ids) json.String(id);
  json.EndArray();
  json.EndObject();
  return std::move(json).Take();
}

}  // namespace dtaint
