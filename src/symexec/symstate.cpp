#include "src/symexec/symstate.h"

#include <cassert>

#include "src/ir/expr.h"

namespace dtaint {

SymState SymState::Entry(Arch arch) {
  SymState state;
  state.arch_ = arch;
  state.regs_.resize(kNumIrRegs);
  const CallingConvention& cc = ConventionFor(arch);
  for (int r = 0; r < kNumIrRegs; ++r) {
    state.regs_[r] = SymExpr::InitReg(r);
  }
  for (int i = 0; i < kNumRegArgs; ++i) {
    state.regs_[cc.arg_regs[i]] = SymExpr::Arg(i);
  }
  state.regs_[kRegSp] = SymExpr::Sp0();
  // Stack-passed arguments arg4..arg9 live at [Sp0 + k]; seed them so a
  // load finds the argument symbol rather than an anonymous deref.
  for (int i = kNumRegArgs; i < kMaxModeledArgs; ++i) {
    SymRef slot = SymAdd(SymExpr::Sp0(), cc.StackArgOffset(i));
    state.StoreMem(slot, SymExpr::Arg(i), 4);
  }
  return state;
}

const SymRef& SymState::Reg(int reg) const {
  assert(reg >= 0 && reg < static_cast<int>(regs_.size()));
  return regs_[reg];
}

void SymState::SetReg(int reg, SymRef value) {
  assert(reg >= 0 && reg < static_cast<int>(regs_.size()));
  regs_[reg] = std::move(value);
}

SymRef SymState::LoadMem(const SymRef& addr, uint8_t size,
                         bool* was_defined) {
  auto [begin, end] = mem_.equal_range(addr->hash());
  for (auto it = begin; it != end; ++it) {
    if (SymExpr::Equal(it->second.addr, addr)) {
      if (was_defined) *was_defined = true;
      return it->second.value;
    }
  }
  if (was_defined) *was_defined = false;
  return SymExpr::Deref(addr, size);
}

void SymState::StoreMem(const SymRef& addr, SymRef value, uint8_t size) {
  auto [begin, end] = mem_.equal_range(addr->hash());
  for (auto it = begin; it != end; ++it) {
    if (SymExpr::Equal(it->second.addr, addr)) {
      it->second.value = std::move(value);
      it->second.size = size;
      return;
    }
  }
  mem_.emplace(addr->hash(), MemEntry{addr, std::move(value), size});
}

SymRef SymState::PeekMem(const SymRef& addr) const {
  auto [begin, end] = mem_.equal_range(addr->hash());
  for (auto it = begin; it != end; ++it) {
    if (SymExpr::Equal(it->second.addr, addr)) return it->second.value;
  }
  return nullptr;
}

}  // namespace dtaint
