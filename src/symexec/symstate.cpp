#include "src/symexec/symstate.h"

#include <atomic>
#include <cassert>

#include "src/ir/expr.h"

namespace dtaint {

namespace {

std::atomic<bool> g_state_cow{true};

// ---- hash-trie memory ------------------------------------------------------
//
// A 16-way trie over the 64-bit address-expression hash, 4 bits per
// level. Nodes and leaves are immutable once published: an insert
// path-copies the node chain from the root down (≤16 levels, ~2 in
// practice), so every prior state keeps seeing its own root. Slots are
// tagged pointers: low bit set = MemLeaf (all cells sharing one full
// hash), clear = interior MemNode. Everything lives in the owning
// exploration's StateArena; MemCell arrays register destructors there
// so legacy (owning) SymRefs release correctly when the arena resets.

struct MemLeaf {
  uint64_t hash = 0;
  uint32_t count = 0;
  const SymState::MemCell* cells = nullptr;
};

struct MemNode {
  uintptr_t slots[16] = {};
};

constexpr uintptr_t kLeafTag = 1;

bool IsLeaf(uintptr_t slot) { return (slot & kLeafTag) != 0; }
const MemLeaf* AsLeaf(uintptr_t slot) {
  return reinterpret_cast<const MemLeaf*>(slot & ~kLeafTag);
}
const MemNode* AsNode(uintptr_t slot) {
  return reinterpret_cast<const MemNode*>(slot);
}
uintptr_t LeafSlot(const MemLeaf* leaf) {
  return reinterpret_cast<uintptr_t>(leaf) | kLeafTag;
}

/// Same canonical address? Pointer compare first — interned nodes make
/// this the common case — structural Equal as the fallback.
bool SameAddr(const SymRef& a, const SymRef& b) {
  return a.get() == b.get() || SymExpr::Equal(a, b);
}

/// New leaf = `old` (may be null) with `cell` replacing the
/// equal-address entry or appended. `added` reports whether the
/// address is new to the leaf.
const MemLeaf* LeafWith(StateArena& sa, const MemLeaf* old, uint64_t hash,
                        const SymState::MemCell& cell, bool* added) {
  uint32_t n = old ? old->count : 0;
  int replace = -1;
  for (uint32_t i = 0; i < n; ++i) {
    if (SameAddr(old->cells[i].addr, cell.addr)) {
      replace = static_cast<int>(i);
      break;
    }
  }
  uint32_t new_n = replace >= 0 ? n : n + 1;
  auto* cells = sa.arena.NewArray<SymState::MemCell>(new_n);
  for (uint32_t i = 0; i < n; ++i) cells[i] = old->cells[i];
  cells[replace >= 0 ? static_cast<uint32_t>(replace) : n] = cell;
  auto* leaf = sa.arena.New<MemLeaf>();
  leaf->hash = hash;
  leaf->count = new_n;
  leaf->cells = cells;
  *added = replace < 0;
  return leaf;
}

/// Persistent insert: returns the slot of the copied subtree.
uintptr_t InsertSlot(StateArena& sa, uintptr_t slot, int shift,
                     uint64_t hash, const SymState::MemCell& cell,
                     bool* added) {
  if (!slot) return LeafSlot(LeafWith(sa, nullptr, hash, cell, added));
  if (IsLeaf(slot)) {
    const MemLeaf* leaf = AsLeaf(slot);
    if (leaf->hash == hash) {
      return LeafSlot(LeafWith(sa, leaf, hash, cell, added));
    }
    // Hash prefixes diverge somewhere below: push the old leaf one
    // level down and recurse — distinct 64-bit hashes guarantee a
    // distinguishing nibble before the hash runs out.
    auto* node = sa.arena.New<MemNode>();
    ++sa.stats.trie_nodes;
    node->slots[(leaf->hash >> shift) & 15] = slot;
    uintptr_t* target = &node->slots[(hash >> shift) & 15];
    *target = InsertSlot(sa, *target, shift + 4, hash, cell, added);
    return reinterpret_cast<uintptr_t>(node);
  }
  auto* node = sa.arena.New<MemNode>(*AsNode(slot));
  ++sa.stats.trie_nodes;
  uintptr_t* target = &node->slots[(hash >> shift) & 15];
  *target = InsertSlot(sa, *target, shift + 4, hash, cell, added);
  return reinterpret_cast<uintptr_t>(node);
}

const SymState::MemCell* FindSlot(uintptr_t slot, uint64_t hash,
                                  const SymRef& addr) {
  int shift = 0;
  while (slot) {
    if (IsLeaf(slot)) {
      const MemLeaf* leaf = AsLeaf(slot);
      if (leaf->hash != hash) return nullptr;
      for (uint32_t i = 0; i < leaf->count; ++i) {
        if (SameAddr(leaf->cells[i].addr, addr)) return &leaf->cells[i];
      }
      return nullptr;
    }
    slot = AsNode(slot)->slots[(hash >> shift) & 15];
    shift += 4;
  }
  return nullptr;
}

/// Which taint-class bit a store through `addr` contributes.
uint32_t TaintClassOfAddr(const SymRef& addr) {
  SymRef root = RootPointerOf(addr);
  if (!root) return kTaintClassOtherMem;
  switch (root->kind()) {
    case SymKind::kArg: {
      int idx = root->arg_index();
      if (idx >= 0 && idx < 10) return uint32_t{1} << idx;
      return kTaintClassOtherMem;
    }
    case SymKind::kHeap:
      return kTaintClassHeap;
    case SymKind::kRet:
      return kTaintClassRet;
    case SymKind::kSp0:
      return kTaintClassSp;
    default:
      return kTaintClassOtherMem;
  }
}

}  // namespace

bool StateCowEnabled() {
  return g_state_cow.load(std::memory_order_relaxed);
}

void SetStateCow(bool enabled) {
  g_state_cow.store(enabled, std::memory_order_relaxed);
}

SymState SymState::Entry(Arch arch, std::shared_ptr<StateArena> arena) {
  SymState state;
  state.arch_ = arch;
  state.cow_ = StateCowEnabled();
  const CallingConvention& cc = ConventionFor(arch);
  if (state.cow_) {
    state.arena_ = arena ? std::move(arena) : std::make_shared<StateArena>();
    for (int c = 0; c < kNumRegChunks; ++c) {
      state.chunks_[c] = std::make_shared<RegChunk>();
    }
    for (int r = 0; r < kNumIrRegs; ++r) {
      state.chunks_[r / kRegChunkSize]->regs[r % kRegChunkSize] =
          SymExpr::InitReg(r);
    }
    for (int i = 0; i < kNumRegArgs; ++i) {
      int r = cc.arg_regs[i];
      state.chunks_[r / kRegChunkSize]->regs[r % kRegChunkSize] =
          SymExpr::Arg(i);
    }
    state.chunks_[kRegSp / kRegChunkSize]->regs[kRegSp % kRegChunkSize] =
        SymExpr::Sp0();
  } else {
    state.regs_.resize(kNumIrRegs);
    for (int r = 0; r < kNumIrRegs; ++r) {
      state.regs_[r] = SymExpr::InitReg(r);
    }
    for (int i = 0; i < kNumRegArgs; ++i) {
      state.regs_[cc.arg_regs[i]] = SymExpr::Arg(i);
    }
    state.regs_[kRegSp] = SymExpr::Sp0();
  }
  // Stack-passed arguments arg4..arg9 live at [Sp0 + k]; seed them so a
  // load finds the argument symbol rather than an anonymous deref.
  for (int i = kNumRegArgs; i < kMaxModeledArgs; ++i) {
    SymRef slot = SymAdd(SymExpr::Sp0(), cc.StackArgOffset(i));
    state.StoreMem(slot, SymExpr::Arg(i), 4);
  }
  return state;
}

SymState SymState::Fork() {
  if (cow_) CommitOverlay();
  return *this;  // CoW: shares the committed spine. Legacy: deep copy.
}

const SymRef& SymState::Reg(int reg) const {
  assert(reg >= 0 && reg < kNumIrRegs);
  const SymRef& value =
      cow_ ? chunks_[reg / kRegChunkSize]->regs[reg % kRegChunkSize]
           : regs_[reg];
  if (tape_.ptr) tape_.ptr->OnRegRead(reg, value);
  return value;
}

void SymState::SetReg(int reg, SymRef value) {
  assert(reg >= 0 && reg < kNumIrRegs);
  if (tape_.ptr) tape_.ptr->OnRegWrite(reg, value);
  if (value && value->IsTainted()) taint_mask_ |= kTaintClassReg;
  if (!cow_) {
    regs_[reg] = std::move(value);
    return;
  }
  std::shared_ptr<RegChunk>& chunk = chunks_[reg / kRegChunkSize];
  // Sharing is confined to one exploration on one thread, so the
  // use_count check cannot race: a count of 1 proves exclusivity.
  if (chunk.use_count() > 1) {
    chunk = std::make_shared<RegChunk>(*chunk);
    ++arena_->stats.cow_chunk_copies;
  }
  chunk->regs[reg % kRegChunkSize] = std::move(value);
}

void SymState::NoteTaintedStore(const SymRef& addr) {
  taint_mask_ |= TaintClassOfAddr(addr);
}

void SymState::CommitOverlay() {
  for (int i = 0; i < overlay_count_; ++i) {
    MemCell& cell = overlay_[i];
    bool added = false;  // already counted when the cell entered the overlay
    mem_root_ =
        InsertSlot(*arena_, mem_root_, 0, cell.addr->hash(), cell, &added);
    cell = MemCell{};
  }
  overlay_count_ = 0;
}

const SymState::MemCell* SymState::FindInTrie(const SymRef& addr) const {
  return FindSlot(mem_root_, addr->hash(), addr);
}

SymRef SymState::LoadMem(const SymRef& addr, uint8_t size,
                         bool* was_defined) {
  if (cow_) {
    for (int i = 0; i < overlay_count_; ++i) {
      if (SameAddr(overlay_[i].addr, addr)) {
        if (tape_.ptr) tape_.ptr->OnMemRead(addr, overlay_[i].value);
        if (was_defined) *was_defined = true;
        return overlay_[i].value;
      }
    }
    if (const MemCell* cell = FindInTrie(addr)) {
      if (tape_.ptr) tape_.ptr->OnMemRead(addr, cell->value);
      if (was_defined) *was_defined = true;
      return cell->value;
    }
    if (tape_.ptr) tape_.ptr->OnMemRead(addr, nullptr);
    if (was_defined) *was_defined = false;
    return SymExpr::Deref(addr, size);
  }
  auto [begin, end] = mem_.equal_range(addr->hash());
  for (auto it = begin; it != end; ++it) {
    if (SameAddr(it->second.addr, addr)) {
      if (tape_.ptr) tape_.ptr->OnMemRead(addr, it->second.value);
      if (was_defined) *was_defined = true;
      return it->second.value;
    }
  }
  if (tape_.ptr) tape_.ptr->OnMemRead(addr, nullptr);
  if (was_defined) *was_defined = false;
  return SymExpr::Deref(addr, size);
}

void SymState::StoreMem(const SymRef& addr, SymRef value, uint8_t size) {
  if (tape_.ptr) tape_.ptr->OnMemWrite(addr, value, size);
  if (value && value->IsTainted()) NoteTaintedStore(addr);
  if (cow_) {
    for (int i = 0; i < overlay_count_; ++i) {
      if (SameAddr(overlay_[i].addr, addr)) {
        overlay_[i].value = std::move(value);
        overlay_[i].size = size;
        return;
      }
    }
    if (!FindInTrie(addr)) ++mem_count_;
    if (overlay_count_ == kOverlayCap) {
      CommitOverlay();
      ++arena_->stats.overlay_spills;
    }
    overlay_[overlay_count_++] = MemCell{addr, std::move(value), size};
    return;
  }
  auto [begin, end] = mem_.equal_range(addr->hash());
  for (auto it = begin; it != end; ++it) {
    if (SameAddr(it->second.addr, addr)) {
      it->second.value = std::move(value);
      it->second.size = size;
      return;
    }
  }
  mem_.emplace(addr->hash(), MemCell{addr, std::move(value), size});
}

SymRef SymState::PeekMem(const SymRef& addr) const {
  if (cow_) {
    for (int i = 0; i < overlay_count_; ++i) {
      if (SameAddr(overlay_[i].addr, addr)) return overlay_[i].value;
    }
    if (const MemCell* cell = FindInTrie(addr)) return cell->value;
    return nullptr;
  }
  auto [begin, end] = mem_.equal_range(addr->hash());
  for (auto it = begin; it != end; ++it) {
    if (SameAddr(it->second.addr, addr)) return it->second.value;
  }
  return nullptr;
}

size_t SymState::MemEntryCount() const {
  return cow_ ? mem_count_ : mem_.size();
}

void SymState::PushConstraint(const PathConstraint& c) {
  if (!cow_) {
    constraints_.push_back(c);
    return;
  }
  trail_ = arena_->arena.New<TrailNode>(TrailNode{c, trail_});
  ++trail_len_;
}

std::vector<PathConstraint> SymState::ConstraintsSnapshot() const {
  if (!cow_) return constraints_;
  std::vector<PathConstraint> out(trail_len_);
  size_t i = trail_len_;
  for (const TrailNode* node = trail_; node; node = node->prev) {
    out[--i] = node->c;
  }
  return out;
}

size_t SymState::ConstraintCount() const {
  return cow_ ? trail_len_ : constraints_.size();
}

bool SymState::VisitedBlock(uint32_t addr, int index) const {
  if (cow_) return visited_.Test(static_cast<size_t>(index));
  return visited_blocks_.count(addr) != 0;
}

void SymState::MarkVisited(uint32_t addr, int index) {
  if (cow_) {
    visited_.Set(static_cast<size_t>(index));
  } else {
    visited_blocks_.insert(addr);
  }
}

}  // namespace dtaint
