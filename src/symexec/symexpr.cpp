#include "src/symexec/symexpr.h"

#include <cassert>

#include "src/symexec/intern.h"
#include "src/util/hash.h"
#include "src/util/strings.h"

namespace dtaint {

namespace {

int64_t SignExt32(uint32_t v) {
  return static_cast<int64_t>(static_cast<int32_t>(v));
}

uint32_t FoldConst(BinOp op, uint32_t a, uint32_t b) {
  switch (op) {
    case BinOp::kAdd: return a + b;
    case BinOp::kSub: return a - b;
    case BinOp::kMul: return a * b;
    case BinOp::kAnd: return a & b;
    case BinOp::kOr: return a | b;
    case BinOp::kXor: return a ^ b;
    case BinOp::kShl: return b >= 32 ? 0 : a << b;
    case BinOp::kShr: return b >= 32 ? 0 : a >> b;
    case BinOp::kCmpEq: return a == b;
    case BinOp::kCmpNe: return a != b;
    case BinOp::kCmpLt:
      return static_cast<int32_t>(a) < static_cast<int32_t>(b);
    case BinOp::kCmpGe:
      return static_cast<int32_t>(a) >= static_cast<int32_t>(b);
    case BinOp::kCmpLe:
      return static_cast<int32_t>(a) <= static_cast<int32_t>(b);
    case BinOp::kCmpGt:
      return static_cast<int32_t>(a) > static_cast<int32_t>(b);
  }
  return 0;
}

}  // namespace

uint64_t SymExpr::ShapeHash(SymKind kind, uint64_t a, uint8_t size,
                            BinOp op, const SymExpr* lhs,
                            const SymExpr* rhs, std::string_view text) {
  uint64_t h = HashCombine(0x1234ABCD, static_cast<uint64_t>(kind));
  h = HashCombine(h, a);
  h = HashCombine(h, size);
  h = HashCombine(h, static_cast<uint64_t>(op));
  if (lhs) h = HashCombine(h, lhs->hash_);
  if (rhs) h = HashCombine(h, rhs->hash_);
  if (!text.empty()) h = HashCombine(h, Fnv1a(text));
  return h;
}

SymExpr::SymExpr(SymKind kind, uint64_t a, uint8_t size, BinOp op,
                 SymRef lhs, SymRef rhs, std::string text,
                 uint64_t shape_hash)
    : kind_(kind), size_(size), op_(op), a_(a), lhs_(std::move(lhs)),
      rhs_(std::move(rhs)), text_(std::move(text)), hash_(shape_hash) {
  assert(hash_ ==
         ShapeHash(kind_, a_, size_, op_, lhs_.get(), rhs_.get(), text_));
  depth_ = 1 + (lhs_ ? lhs_->depth_ : 0) + (rhs_ ? rhs_->depth_ : 0);
  kind_mask_ = static_cast<uint16_t>(KindBit(kind_) |
                                     (lhs_ ? lhs_->kind_mask_ : 0) |
                                     (rhs_ ? rhs_->kind_mask_ : 0));
  bloom_ = BloomBit(hash_) | (lhs_ ? lhs_->bloom_ : 0) |
           (rhs_ ? rhs_->bloom_ : 0);
}

SymRef SymExpr::Make(SymKind kind, uint64_t a, uint8_t size, BinOp op,
                     SymRef lhs, SymRef rhs, std::string text) {
  if (ExprInterningEnabled()) {
    return ExprInterner::Global().Intern(kind, a, size, op, std::move(lhs),
                                         std::move(rhs), std::move(text));
  }
  uint64_t h = ShapeHash(kind, a, size, op, lhs.get(), rhs.get(), text);
  return SymRef(new SymExpr(kind, a, size, op, std::move(lhs),
                            std::move(rhs), std::move(text), h));
}

SymRef SymExpr::Const(uint32_t value) {
  return Make(SymKind::kConst, value, 4, BinOp::kAdd, nullptr, nullptr);
}
SymRef SymExpr::Arg(int index) {
  return Make(SymKind::kArg, static_cast<uint64_t>(index), 4, BinOp::kAdd,
              nullptr, nullptr);
}
SymRef SymExpr::Sp0() {
  return Make(SymKind::kSp0, 0, 4, BinOp::kAdd, nullptr, nullptr);
}
SymRef SymExpr::Ret(uint32_t callsite) {
  return Make(SymKind::kRet, callsite, 4, BinOp::kAdd, nullptr, nullptr);
}
SymRef SymExpr::Heap(uint64_t id) {
  return Make(SymKind::kHeap, id, 4, BinOp::kAdd, nullptr, nullptr);
}
SymRef SymExpr::Taint(uint32_t site, std::string source) {
  return Make(SymKind::kTaint, site, 4, BinOp::kAdd, nullptr, nullptr,
              std::move(source));
}
SymRef SymExpr::InitReg(int reg) {
  return Make(SymKind::kInit, static_cast<uint64_t>(reg), 4, BinOp::kAdd,
              nullptr, nullptr);
}
SymRef SymExpr::Deref(SymRef addr, uint8_t size) {
  return Make(SymKind::kDeref, 0, size, BinOp::kAdd, std::move(addr),
              nullptr);
}

SymRef SymExpr::Bin(BinOp op, SymRef lhs, SymRef rhs) {
  // Constant folding (compares fold to 0/1, which lets the engine take
  // concrete branches deterministically).
  if (lhs->kind_ == SymKind::kConst && rhs->kind_ == SymKind::kConst) {
    return Const(FoldConst(op, lhs->const_value(), rhs->const_value()));
  }
  // Normalize subtraction-of-constant into addition.
  if (op == BinOp::kSub && rhs->kind_ == SymKind::kConst) {
    return Bin(BinOp::kAdd, std::move(lhs),
               Const(0u - rhs->const_value()));
  }
  if (op == BinOp::kAdd) {
    // Constant to the right.
    if (lhs->kind_ == SymKind::kConst) std::swap(lhs, rhs);
    if (rhs->kind_ == SymKind::kConst) {
      if (rhs->const_value() == 0) return lhs;
      // Re-associate: (x + c1) + c2 -> x + (c1 + c2).
      if (lhs->kind_ == SymKind::kBin && lhs->op_ == BinOp::kAdd &&
          lhs->rhs_->kind_ == SymKind::kConst) {
        uint32_t c = lhs->rhs_->const_value() + rhs->const_value();
        if (c == 0) return lhs->lhs_;
        return Make(SymKind::kBin, 0, 4, BinOp::kAdd, lhs->lhs_, Const(c));
      }
    }
  }
  // x - x -> 0.
  if (op == BinOp::kSub && Equal(lhs, rhs)) return Const(0);
  return Make(SymKind::kBin, 0, 4, op, std::move(lhs), std::move(rhs));
}

bool SymExpr::Equal(const SymRef& a, const SymRef& b) {
  if (a.get() == b.get()) return true;
  if (!a || !b) return false;
  if (a->interned_ && b->interned_) {
    // Hash-consed nodes are canonical: distinct pointers are distinct
    // structures. The deep walk survives as a differential check.
    assert(!DeepEqual(*a, *b));
    return false;
  }
  return DeepEqual(*a, *b);
}

bool SymExpr::DeepEqual(const SymExpr& a, const SymExpr& b) {
  if (&a == &b) return true;
  if (a.hash_ != b.hash_) return false;
  if (!SameShallowFields(a, b)) return false;
  return Equal(a.lhs_, b.lhs_) && Equal(a.rhs_, b.rhs_);
}

SymExpr::BaseOffset SymExpr::SplitBaseOffset(const SymRef& expr) {
  if (expr->kind_ == SymKind::kConst) {
    return {nullptr, SignExt32(expr->const_value())};
  }
  if (expr->kind_ == SymKind::kBin && expr->op_ == BinOp::kAdd &&
      expr->rhs_->kind_ == SymKind::kConst) {
    return {expr->lhs_, SignExt32(expr->rhs_->const_value())};
  }
  return {expr, 0};
}

bool SymExpr::Contains(const SymRef& needle) const {
  if (!needle) return false;
  if (!MayContain(*needle)) return false;
  return ContainsImpl(*needle);
}

bool SymExpr::ContainsImpl(const SymExpr& needle) const {
  if (this == &needle) return true;
  // Interned nodes match by identity alone (checked above); a mixed or
  // legacy pair falls back to the shared structural compare.
  if (!(interned_ && needle.interned_) && hash_ == needle.hash_ &&
      SameShallowFields(*this, needle) && Equal(lhs_, needle.lhs_) &&
      Equal(rhs_, needle.rhs_)) {
    return true;
  }
  if (lhs_ && lhs_->MayContain(needle) && lhs_->ContainsImpl(needle)) {
    return true;
  }
  if (rhs_ && rhs_->MayContain(needle) && rhs_->ContainsImpl(needle)) {
    return true;
  }
  return false;
}

void SymExpr::CollectDerefs(const SymRef& expr, std::vector<SymRef>* out,
                            bool skip_self) {
  if (!expr->ContainsKind(SymKind::kDeref)) return;
  if (expr->kind_ == SymKind::kDeref && !skip_self) {
    out->push_back(expr);
  }
  if (expr->lhs_) CollectDerefs(expr->lhs_, out, false);
  if (expr->rhs_) CollectDerefs(expr->rhs_, out, false);
}

SymRef SymExpr::Replace(const SymRef& self, const SymRef& from,
                        const SymRef& to) {
  if (Equal(self, from)) return to;
  // Subtree pruning: the kind bitmask and hash bloom prove absence
  // without walking (the self-match above is covered by the bloom —
  // every node's own hash bit is set in it).
  if (!self->MayContain(*from)) return self;
  if (!self->lhs_ && !self->rhs_) return self;
  SymRef new_lhs = self->lhs_ ? Replace(self->lhs_, from, to) : nullptr;
  SymRef new_rhs = self->rhs_ ? Replace(self->rhs_, from, to) : nullptr;
  if (new_lhs.get() == self->lhs_.get() &&
      new_rhs.get() == self->rhs_.get()) {
    return self;
  }
  if (self->kind_ == SymKind::kDeref) {
    return Deref(std::move(new_lhs), self->size_);
  }
  if (self->kind_ == SymKind::kBin) {
    return Bin(self->op_, std::move(new_lhs), std::move(new_rhs));
  }
  return self;
}

std::optional<std::pair<uint32_t, std::string>> SymExpr::FindTaint() const {
  if (kind_ == SymKind::kTaint) {
    return std::make_pair(taint_site(), text_);
  }
  // Descend only into subtrees that carry taint; the leftmost-first
  // order of the original full walk is preserved.
  if (lhs_ && lhs_->IsTainted()) return lhs_->FindTaint();
  if (rhs_ && rhs_->IsTainted()) return rhs_->FindTaint();
  return std::nullopt;
}

std::string SymExpr::ToString() const {
  switch (kind_) {
    case SymKind::kConst: {
      int64_t sv = SignExt32(const_value());
      if (sv < 0) return "-" + HexStr(static_cast<uint64_t>(-sv));
      return HexStr(const_value());
    }
    case SymKind::kArg:
      return "arg" + std::to_string(arg_index());
    case SymKind::kSp0:
      return "SP";
    case SymKind::kRet:
      return "ret_{" + HexStr(ret_site()) + "}";
    case SymKind::kHeap:
      return "heap_{" + HexStr(heap_id() & 0xFFFFFFFF) + "}";
    case SymKind::kTaint:
      return "taint(" + text_ + "@" + HexStr(taint_site()) + ")";
    case SymKind::kInit:
      return "init_r" + std::to_string(init_reg());
    case SymKind::kDeref:
      return (size_ == 1 ? "deref8(" : "deref(") + lhs_->ToString() + ")";
    case SymKind::kBin: {
      if (op_ == BinOp::kAdd && rhs_->kind_ == SymKind::kConst) {
        int64_t off = SignExt32(rhs_->const_value());
        if (off < 0) {
          return lhs_->ToString() + "-" +
                 HexStr(static_cast<uint64_t>(-off));
        }
        return lhs_->ToString() + "+" + HexStr(rhs_->const_value());
      }
      return "(" + lhs_->ToString() + " " + std::string(BinOpName(op_)) +
             " " + rhs_->ToString() + ")";
    }
  }
  return "?";
}

SymRef SymAdd(SymRef a, int64_t c) {
  return SymExpr::Bin(BinOp::kAdd, std::move(a),
                      SymExpr::Const(static_cast<uint32_t>(c)));
}

SymRef StripIndex(SymRef base) {
  while (base && base->kind() == SymKind::kBin &&
         base->binop() == BinOp::kAdd &&
         base->rhs()->kind() != SymKind::kConst) {
    base = base->lhs();
  }
  return base;
}

}  // namespace dtaint
