#include "src/symexec/defpairs.h"

#include "src/util/strings.h"

namespace dtaint {

std::string DefPair::ToString() const {
  return (d ? d->ToString() : std::string("<none>")) + " = " +
         (u ? u->ToString() : std::string("<none>")) + "  @" + HexStr(site);
}

std::string PathConstraint::ToString() const {
  std::string s = lhs->ToString() + " " + std::string(BinOpName(op)) + " " +
                  rhs->ToString();
  if (!taken) s = "!(" + s + ")";
  return s + "  @" + HexStr(site);
}

SymRef RootPointerOf(const SymRef& expr) {
  if (!expr) return nullptr;
  SymRef cur = expr;
  for (;;) {
    switch (cur->kind()) {
      case SymKind::kDeref:
        cur = cur->lhs();
        break;
      case SymKind::kBin: {
        auto split = SymExpr::SplitBaseOffset(cur);
        if (split.base && split.base.get() != cur.get()) {
          cur = split.base;
          break;
        }
        // Residual Add with a symbolic right side is an array walk
        // (buf + i); the root lives down the left spine.
        if (cur->binop() == BinOp::kAdd) {
          cur = cur->lhs();
          break;
        }
        return cur;
      }
      default:
        return cur;
    }
  }
}

std::string SummaryToString(const FunctionSummary& summary,
                            size_t max_items) {
  std::string out = "summary of " + summary.name + " @" +
                    HexStr(summary.addr) + " (" +
                    std::to_string(summary.paths_explored) + " paths, " +
                    std::to_string(summary.blocks_visited) + " blocks" +
                    (summary.truncated ? ", TRUNCATED" : "") + ")\n";
  out += "  definition pairs (" +
         std::to_string(summary.def_pairs.size()) + "):\n";
  size_t shown = 0;
  for (const DefPair& dp : summary.def_pairs) {
    if (shown++ >= max_items) {
      out += "    ...\n";
      break;
    }
    out += "    " + dp.ToString() + "\n";
  }
  out += "  undefined uses (" +
         std::to_string(summary.undefined_uses.size()) + "):\n";
  shown = 0;
  for (const UseRecord& use : summary.undefined_uses) {
    if (shown++ >= max_items) {
      out += "    ...\n";
      break;
    }
    out += "    " + use.u->ToString() + "  @" + HexStr(use.site) + "\n";
  }
  out += "  calls (" + std::to_string(summary.calls.size()) + "):\n";
  shown = 0;
  for (const CallEvent& call : summary.calls) {
    if (shown++ >= max_items) {
      out += "    ...\n";
      break;
    }
    out += "    " +
           (call.is_indirect
                ? "[indirect " + (call.indirect_target
                                      ? call.indirect_target->ToString()
                                      : std::string("?")) + "]"
                : call.callee) +
           "(";
    for (size_t i = 0; i < call.args.size(); ++i) {
      if (i) out += ", ";
      out += call.args[i] ? call.args[i]->ToString() : "?";
    }
    out += ")  @" + HexStr(call.callsite) + "\n";
  }
  out += "  returns:";
  for (const SymRef& ret : summary.return_values) {
    out += " " + (ret ? ret->ToString() : std::string("?"));
  }
  out += "\n";
  return out;
}

std::vector<const DefPair*> FunctionSummary::EscapingDefs() const {
  std::vector<const DefPair*> out;
  for (const DefPair& dp : def_pairs) {
    if (!dp.d || dp.d->kind() != SymKind::kDeref) continue;
    SymRef root = RootPointerOf(dp.d);
    if (!root) continue;
    switch (root->kind()) {
      case SymKind::kArg:
      case SymKind::kHeap:
      case SymKind::kRet:
        out.push_back(&dp);
        break;
      default:
        break;
    }
  }
  return out;
}

}  // namespace dtaint
