// Data-type inference (paper §III-B "Data Type").
//
// DTaint infers primitive types two ways: (1) from standard library
// signatures (both strcpy arguments are char*), and (2) from machine
// instructions (a load/store base register holds a pointer; a CMP
// operand against an immediate is an integer). Types feed pointer-alias
// recognition (is `u` a pointer?) and the data-structure layout used
// for indirect-call matching.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/symexec/symexpr.h"

namespace dtaint {

enum class ValueType : uint8_t {
  kUnknown = 0,
  kInt,
  kChar,
  kPtr,      // pointer to unknown
  kCharPtr,  // pointer to char buffer
};

std::string_view ValueTypeName(ValueType type);

/// Lattice join: Unknown is bottom; conflicting concrete types keep the
/// pointer interpretation (pointers are what the layout metric needs,
/// and load/store evidence is stronger than compare evidence).
ValueType JoinTypes(ValueType a, ValueType b);

/// True for kPtr / kCharPtr.
bool IsPointerType(ValueType type);

/// Per-function type environment keyed by symbolic-expression hash.
class TypeMap {
 public:
  /// Records evidence that `expr` has `type` (joined with existing).
  void Observe(const SymRef& expr, ValueType type);

  /// Current best type for `expr` (kUnknown if never observed).
  ValueType TypeOf(const SymRef& expr) const;

  size_t size() const { return types_.size(); }

  /// Merges all observations from `other` into this map.
  void MergeFrom(const TypeMap& other);

  /// Raw (expression-hash → type) entries, in sorted order. Exposed for
  /// the summary-cache codec, which must persist and restore the map
  /// byte-exactly.
  const std::map<uint64_t, ValueType>& entries() const { return types_; }

  /// Reinserts a raw entry (summary-cache codec decode path). Joined
  /// with any existing evidence, same as Observe.
  void Restore(uint64_t expr_hash, ValueType type) {
    ValueType& slot = types_[expr_hash];
    slot = JoinTypes(slot, type);
  }

 private:
  // Hash collisions are acceptable here: they merge type evidence of
  // two expressions, which only ever widens a type to pointer.
  std::map<uint64_t, ValueType> types_;
};

/// Library signature table: parameter/return types of the modeled libc
/// functions ("standard C/C++ library function calls" evidence).
struct LibSignature {
  std::string name;
  std::vector<ValueType> params;
  ValueType ret = ValueType::kUnknown;
};

/// Signature of a modeled library function, or nullptr.
const LibSignature* FindLibSignature(std::string_view name);

}  // namespace dtaint
