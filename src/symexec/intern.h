// Hash-consing interner for SymExpr — every expression built through
// the SymExpr factories canonicalizes here, so structurally equal
// expressions are the *same* node and structural equality degenerates
// to a pointer compare (the workhorse fast path behind alias
// recognition, def-pair lookup and the backward path search).
//
// Design:
//  * The table is sharded 64 ways by node hash; each shard owns a
//    mutex, an open-addressed pointer table, and a bump-pointer arena
//    the nodes live in. Factory traffic from the parallel bottom-up
//    phase thus stripes across independent locks, and a hit allocates
//    nothing at all — no shared_ptr control block, no node.
//  * Interned SymRefs are non-owning (aliasing shared_ptr with no
//    control block): copying one costs zero atomic operations, which
//    is what removes the refcount/allocator contention that used to
//    make `num_threads > 1` slower than sequential.
//  * Nodes are immortal: the arena lives for the process. Expressions
//    are tiny and heavily shared (fleet scans re-create the same
//    arg/deref spines for every function), so residency is bounded by
//    the number of *unique* shapes ever built — observable via the
//    `intern.nodes` / `intern.bytes` metrics.
//  * The legacy heap-allocating path stays selectable
//    (SetExprInterning(false)) so the differential oracle can prove
//    the interner is invisible to analysis results.
//
// Thread-safety: Intern() may be called from any number of threads.
// Parents are only published after their children, and every lookup
// synchronizes on the owning shard's mutex, so a node obtained from
// the table (directly or through a parent's child pointer) is always
// fully constructed. SetExprInterning() must not race factory calls —
// it is a test/CLI-setup knob, not a hot-path switch.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/symexec/symexpr.h"

namespace dtaint {

/// Aggregate interner counters (summed over shards).
struct InternStats {
  uint64_t nodes = 0;      // unique nodes resident in the table
  uint64_t hits = 0;       // factory calls served by an existing node
  uint64_t bytes = 0;      // arena bytes reserved for nodes
  uint64_t contended = 0;  // shard-lock acquisitions that had to wait
};

class ExprInterner {
 public:
  static constexpr size_t kShards = 64;

  ExprInterner();
  ExprInterner(const ExprInterner&) = delete;
  ExprInterner& operator=(const ExprInterner&) = delete;

  /// The process-wide interner every SymExpr factory routes through.
  static ExprInterner& Global();

  /// Returns the canonical node for the given shape, creating it on
  /// first sight. Children are canonicalized first (hash-consing is
  /// bottom-up: canonical children make the shape key a pointer tuple).
  SymRef Intern(SymKind kind, uint64_t a, uint8_t size, BinOp op,
                SymRef lhs, SymRef rhs, std::string text);

  /// Rebuilds `expr` out of canonical nodes. Pointer-identical no-op
  /// when the tree is already canonical.
  SymRef Canonical(const SymRef& expr);

  /// Point-in-time counters, summed across shards.
  InternStats stats() const;

  /// Pushes counter deltas since the last publish into the global
  /// metrics registry ("intern.nodes", "intern.hits", "intern.bytes",
  /// "intern.contended" — contention is counted per shard and exported
  /// in aggregate). Called by RunBottomUp / DTaint::Analyze so the
  /// interner participates in each report's metrics object.
  void PublishMetrics();

 private:
  struct Shard;

  // Direct-mapped lock-free cache for the leaf shapes the engine builds
  // millions of times (small constants, formal args, SP0, initial
  // registers): a hit is one acquire-load plus a relaxed counter
  // bump — no hash, no shard lock. Slots are populated by whichever
  // thread interns the shape first; nodes are immortal so a stale read
  // is impossible.
  static constexpr uint64_t kLeafConsts = 1024;
  static constexpr uint64_t kLeafArgs = 16;
  static constexpr uint64_t kLeafRegs = 32;

  Shard& ShardFor(uint64_t hash);

  std::unique_ptr<Shard[]> shards_;
  std::atomic<const SymExpr*> leaf_consts_[kLeafConsts] = {};
  std::atomic<const SymExpr*> leaf_args_[kLeafArgs] = {};
  std::atomic<const SymExpr*> leaf_regs_[kLeafRegs] = {};
  std::atomic<const SymExpr*> leaf_sp0_{nullptr};
  std::atomic<uint64_t> leaf_hits_{0};

  std::mutex publish_mu_;
  InternStats published_;  // totals already pushed to the registry
};

/// Whether the SymExpr factories hash-cons (default true). The
/// uninterned path exists for the differential oracle and A/B
/// benchmarks; both paths produce analysis-identical results.
bool ExprInterningEnabled();
void SetExprInterning(bool enabled);

/// RAII toggle for tests/benchmarks.
class ScopedExprInterning {
 public:
  explicit ScopedExprInterning(bool enabled)
      : prev_(ExprInterningEnabled()) {
    SetExprInterning(enabled);
  }
  ~ScopedExprInterning() { SetExprInterning(prev_); }
  ScopedExprInterning(const ScopedExprInterning&) = delete;
  ScopedExprInterning& operator=(const ScopedExprInterning&) = delete;

 private:
  bool prev_;
};

}  // namespace dtaint
