// Static symbolic analysis of one function (paper §III-B).
//
// Explores the function CFG path-by-path over the lifted IR:
//  * calling-convention-aware entry state (args symbolic, sp = SP);
//  * both directions of every symbolic conditional are explored, with
//    the branch condition recorded as a path constraint;
//  * the loop heuristic "blocks in the same loop are only analyzed
//    once" is realized by never revisiting a block on the same path
//    (back edges are not followed), so a block may still carry several
//    distinct symbolic states from different paths;
//  * direct library calls apply a behavioral model (taint injection
//    for sources, buffer copies for str*/mem* functions, heap identity
//    for malloc); local callees yield a ret_{callsite} symbol whose
//    meaning is filled in later by the bottom-up interprocedural pass;
//  * every store becomes a definition pair, every load from undefined
//    memory becomes a lazily-named deref variable (and an undefined
//    use when rooted at an argument).
#pragma once

#include <cstdint>

#include "src/binary/binary.h"
#include "src/cfg/function.h"
#include "src/resilience/budget.h"
#include "src/symexec/defpairs.h"
#include "src/symexec/symstate.h"
#include "src/util/status.h"

namespace dtaint {

struct EngineConfig {
  int max_paths = 48;          // terminated-path budget per function
  int max_block_visits = 4096; // total block executions per function
  int max_expr_depth = 96;     // widen expressions beyond this
  bool record_types = true;
  /// Block-level transfer memoization: when a block's input footprint
  /// (the registers/memory it actually reads) matches a prior visit
  /// exactly, replay the recorded output delta instead of re-executing
  /// its statements. Invisible to analysis results (the differential
  /// oracle pins this), so deliberately NOT part of the engine cache
  /// fingerprint. Auto-disabled under a limited AnalysisBudget and in
  /// legacy-state mode, where exact step accounting / the original
  /// execution order are the point.
  bool block_memo = true;
};

class SymEngine {
 public:
  SymEngine(const Binary& binary, EngineConfig config = {})
      : binary_(binary), config_(config) {}

  /// Runs static symbolic analysis over one lifted function. When a
  /// budget tracker is supplied, exploration charges it cooperatively
  /// (one step per IR statement, one state per path enqueue); on
  /// exhaustion the partial exploration is discarded and the
  /// conservative MakeDegradedSummary result is returned instead, so
  /// callers always compose against a sound summary.
  FunctionSummary Analyze(const Function& fn,
                          BudgetTracker* budget = nullptr) const;

  const EngineConfig& config() const { return config_; }
  const Binary& binary() const { return binary_; }

 private:
  const Binary& binary_;
  EngineConfig config_;
};

/// Behavioral model of one library function, applied at import calls.
struct LibModel {
  std::string name;
  int taints_pointee_of_arg = -1;  // recv/read: arg index whose buffer
                                   // is overwritten with attacker data
  bool returns_tainted_buffer = false;  // getenv-style: *ret is tainted
  int copy_dst_arg = -1;           // strcpy-style copies
  int copy_src_arg = -1;
  std::vector<int> extra_dst_args; // sscanf: multiple out-pointers
  bool allocates = false;          // malloc-style: returns heap pointer
  int returns_arg = -1;            // strcpy returns dst
  int returns_deref_of_arg = -1;   // strlen-style: the return value is
                                   // a function of the buffer contents,
                                   // modeled as deref(arg) so length
                                   // checks tie back to the region
};

/// Model for a library function, or nullptr if unmodeled.
const LibModel* FindLibModel(std::string_view name);

/// The conservative stand-in emitted when a function's analysis budget
/// is exhausted (or a `summary` fault is injected): every register
/// argument is treated as a pointer whose pointee is both read
/// (undefined use, so callers forward taint into it) and potentially
/// rewritten with its own — possibly attacker-derived — contents
/// (identity def pair deref(arg_i) = deref(arg_i)); the return value
/// is the Or-fold of all argument pointees, i.e. tainted iff any
/// argument's buffer is. All pairs and the summary itself carry the
/// `degraded` flag so downstream consumers can tell over-approximation
/// from observed flow. Marked `truncated` too, and never cached.
FunctionSummary MakeDegradedSummary(const Function& fn);

}  // namespace dtaint
