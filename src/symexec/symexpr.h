// Symbolic value expressions — the vocabulary of DTaint's "variable
// description through the memory" (paper §III-B).
//
// A variable is described by where it lives: absolute addresses stay
// concrete, indirect accesses become `deref(base + offset)` chains, and
// unknown inputs are named symbols:
//   * Arg(i)      — formal argument arg0..arg9 (calling convention)
//   * Sp0         — the stack pointer at function entry
//   * Ret(site)   — return value of the call at `site` (paper's
//                   ret_{callsite})
//   * Heap(id)    — heap pointer identified by the hash of its
//                   callsite chain (paper §III-E, Listing 1)
//   * Taint(site) — attacker-controlled bytes introduced by a source
//                   library call at `site`
//
// Expressions are immutable, shared, and — by default — hash-consed
// through the ExprInterner (src/symexec/intern.h): the factories return
// the canonical node for each structure, so structural equality is a
// pointer compare and Contains/Replace/taint queries short-circuit on
// per-node flags cached at construction (a kind bitmask and a subtree
// hash bloom). Add/Sub chains are normalized to `base + const` so that
// GetBasePtr-style decomposition (paper Algorithm 1) is syntactic.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/ir/expr.h"

namespace dtaint {

enum class SymKind : uint8_t {
  kConst,
  kArg,    // formal argument symbol
  kSp0,    // initial stack pointer
  kRet,    // return value of a callsite
  kHeap,   // heap object identity
  kTaint,  // attacker-controlled data from a source
  kInit,   // initial (unknown) value of a register
  kDeref,  // memory contents at an address expression
  kBin,    // binary operator over two symbolic values
};

class SymExpr;
class ExprInterner;
using SymRef = std::shared_ptr<const SymExpr>;

class SymExpr {
 public:
  // ---- factories (normalizing) -------------------------------------------
  static SymRef Const(uint32_t value);
  static SymRef Arg(int index);
  static SymRef Sp0();
  static SymRef Ret(uint32_t callsite);
  static SymRef Heap(uint64_t id);
  static SymRef Taint(uint32_t site, std::string source);
  static SymRef InitReg(int reg);
  static SymRef Deref(SymRef addr, uint8_t size = 4);
  /// Binop with normalization: constants fold; Add/Sub re-associate so
  /// the constant offset bubbles to the top-right: ((x+c1)+c2)=(x+(c1+c2)).
  static SymRef Bin(BinOp op, SymRef lhs, SymRef rhs);

  // ---- accessors -----------------------------------------------------------
  SymKind kind() const { return kind_; }
  uint32_t const_value() const { return static_cast<uint32_t>(a_); }
  int arg_index() const { return static_cast<int>(a_); }
  uint32_t ret_site() const { return static_cast<uint32_t>(a_); }
  uint64_t heap_id() const { return a_; }
  uint32_t taint_site() const { return static_cast<uint32_t>(a_); }
  const std::string& taint_source() const { return text_; }
  int init_reg() const { return static_cast<int>(a_); }
  uint8_t deref_size() const { return size_; }
  BinOp binop() const { return op_; }
  const SymRef& lhs() const { return lhs_; }
  const SymRef& rhs() const { return rhs_; }

  uint64_t hash() const { return hash_; }

  /// True when this node is the canonical hash-consed instance. Two
  /// interned nodes are structurally equal iff they are the same
  /// pointer.
  bool interned() const { return interned_; }

  /// True if any node of kind `k` occurs in this expression (exact —
  /// the kind bitmask is unioned over the whole subtree at
  /// construction). The O(1) guard in front of kind-targeted rewrites
  /// like heap re-keying and formal-argument substitution.
  bool ContainsKind(SymKind k) const {
    return (kind_mask_ & KindBit(k)) != 0;
  }

  /// Structural equality. O(1) for interned operands (pointer compare,
  /// with the deep walk kept as a debug-build differential assert);
  /// hash-gated deep comparison otherwise.
  static bool Equal(const SymRef& a, const SymRef& b);

  /// Decomposes into (base, constant offset): `x` -> (x, 0),
  /// `x + 5` -> (x, 5). Constants decompose to (nullptr, c).
  struct BaseOffset {
    SymRef base;      // nullptr when the value is purely constant
    int64_t offset;
  };
  static BaseOffset SplitBaseOffset(const SymRef& expr);

  /// True if `needle` occurs anywhere inside this expression.
  bool Contains(const SymRef& needle) const;

  /// All Deref subexpressions acting as pointers inside `expr` (paper
  /// Algorithm 1's GetPtrInVar). Includes nested derefs; excludes the
  /// expression itself when skip_self is set.
  static void CollectDerefs(const SymRef& expr, std::vector<SymRef>* out,
                            bool skip_self = false);

  /// Structural replace: every occurrence of `from` becomes `to`.
  /// Returns this expression unchanged (same pointer) if absent.
  static SymRef Replace(const SymRef& self, const SymRef& from,
                        const SymRef& to);

  /// Number of nodes (used to bound expression growth).
  int Depth() const { return depth_; }

  /// True if any Taint node occurs in the expression. O(1): answered
  /// from the kind bitmask cached at construction.
  bool IsTainted() const { return ContainsKind(SymKind::kTaint); }
  /// First (leftmost) taint node, if any. The descent only enters
  /// subtrees whose bitmask carries the taint bit.
  std::optional<std::pair<uint32_t, std::string>> FindTaint() const;

  /// Printable form mirroring the paper: "deref(arg0+0x4c)", "SP-0x100",
  /// "ret_{0x6c4c}", "taint@0x6c78".
  std::string ToString() const;

 private:
  friend class ExprInterner;  // constructs nodes in its arena

  /// `shape_hash` must be ShapeHash over the same fields — both callers
  /// (the interner's miss path and the legacy factory) have already
  /// computed it for the table probe, so the constructor takes it
  /// instead of hashing twice (debug builds assert the match).
  SymExpr(SymKind kind, uint64_t a, uint8_t size, BinOp op, SymRef lhs,
          SymRef rhs, std::string text, uint64_t shape_hash);

  static SymRef Make(SymKind kind, uint64_t a, uint8_t size, BinOp op,
                     SymRef lhs, SymRef rhs, std::string text = {});

  static constexpr uint16_t KindBit(SymKind k) {
    return static_cast<uint16_t>(uint16_t{1} << static_cast<int>(k));
  }
  static constexpr uint64_t BloomBit(uint64_t hash) {
    return uint64_t{1} << (hash & 63);
  }
  /// May `needle` occur inside this subtree? One-sided: false is
  /// definitive (kind bitmask + subtree hash bloom), true means "walk".
  bool MayContain(const SymExpr& needle) const {
    return (kind_mask_ & KindBit(needle.kind_)) != 0 &&
           (bloom_ & BloomBit(needle.hash_)) != 0;
  }

  /// The structural hash of a node with these fields (children by
  /// canonical identity of their own hashes). Single definition shared
  /// by the constructor and the interner's pre-construction lookup.
  static uint64_t ShapeHash(SymKind kind, uint64_t a, uint8_t size,
                            BinOp op, const SymExpr* lhs,
                            const SymExpr* rhs, std::string_view text);

  /// Field-for-field comparison of two nodes excluding children — the
  /// single shallow-compare both Equal and Contains build on (so the
  /// two cannot drift).
  static bool SameShallowFields(const SymExpr& x, const SymExpr& y) {
    return x.kind_ == y.kind_ && x.a_ == y.a_ && x.size_ == y.size_ &&
           x.op_ == y.op_ && x.text_ == y.text_;
  }

  /// Full structural walk, hash-gated. The reference semantics Equal's
  /// pointer fast path must agree with (debug builds assert this).
  static bool DeepEqual(const SymExpr& a, const SymExpr& b);

  bool ContainsImpl(const SymExpr& needle) const;

  SymKind kind_;
  uint8_t size_ = 4;
  BinOp op_ = BinOp::kAdd;
  bool interned_ = false;   // set by ExprInterner on its nodes
  uint16_t kind_mask_ = 0;  // union of KindBit over the subtree
  uint64_t a_ = 0;          // const/arg/ret/heap/init payload
  SymRef lhs_;
  SymRef rhs_;
  std::string text_;        // taint source name
  uint64_t hash_ = 0;
  uint64_t bloom_ = 0;      // union of BloomBit(hash) over the subtree
  int depth_ = 1;
};

/// Convenience: a + c (normalized).
SymRef SymAdd(SymRef a, int64_t c);

/// Strips symbolic index terms from an address base: after
/// normalization a residual Add with a non-constant right side is an
/// array walk (buf + i); the stable region base is the left spine.
/// StripIndex(buf + i) == buf; StripIndex(buf) == buf.
SymRef StripIndex(SymRef base);

}  // namespace dtaint
