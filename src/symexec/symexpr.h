// Symbolic value expressions — the vocabulary of DTaint's "variable
// description through the memory" (paper §III-B).
//
// A variable is described by where it lives: absolute addresses stay
// concrete, indirect accesses become `deref(base + offset)` chains, and
// unknown inputs are named symbols:
//   * Arg(i)      — formal argument arg0..arg9 (calling convention)
//   * Sp0         — the stack pointer at function entry
//   * Ret(site)   — return value of the call at `site` (paper's
//                   ret_{callsite})
//   * Heap(id)    — heap pointer identified by the hash of its
//                   callsite chain (paper §III-E, Listing 1)
//   * Taint(site) — attacker-controlled bytes introduced by a source
//                   library call at `site`
//
// Expressions are immutable, shared, and carry structural hashes so
// equality checks (the workhorse of alias analysis and def-pair lookup)
// are cheap. Add/Sub chains are normalized to `base + const` so that
// GetBasePtr-style decomposition (paper Algorithm 1) is syntactic.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/ir/expr.h"

namespace dtaint {

enum class SymKind : uint8_t {
  kConst,
  kArg,    // formal argument symbol
  kSp0,    // initial stack pointer
  kRet,    // return value of a callsite
  kHeap,   // heap object identity
  kTaint,  // attacker-controlled data from a source
  kInit,   // initial (unknown) value of a register
  kDeref,  // memory contents at an address expression
  kBin,    // binary operator over two symbolic values
};

class SymExpr;
using SymRef = std::shared_ptr<const SymExpr>;

class SymExpr {
 public:
  // ---- factories (normalizing) -------------------------------------------
  static SymRef Const(uint32_t value);
  static SymRef Arg(int index);
  static SymRef Sp0();
  static SymRef Ret(uint32_t callsite);
  static SymRef Heap(uint64_t id);
  static SymRef Taint(uint32_t site, std::string source);
  static SymRef InitReg(int reg);
  static SymRef Deref(SymRef addr, uint8_t size = 4);
  /// Binop with normalization: constants fold; Add/Sub re-associate so
  /// the constant offset bubbles to the top-right: ((x+c1)+c2)=(x+(c1+c2)).
  static SymRef Bin(BinOp op, SymRef lhs, SymRef rhs);

  // ---- accessors -----------------------------------------------------------
  SymKind kind() const { return kind_; }
  uint32_t const_value() const { return static_cast<uint32_t>(a_); }
  int arg_index() const { return static_cast<int>(a_); }
  uint32_t ret_site() const { return static_cast<uint32_t>(a_); }
  uint64_t heap_id() const { return a_; }
  uint32_t taint_site() const { return static_cast<uint32_t>(a_); }
  const std::string& taint_source() const { return text_; }
  int init_reg() const { return static_cast<int>(a_); }
  uint8_t deref_size() const { return size_; }
  BinOp binop() const { return op_; }
  const SymRef& lhs() const { return lhs_; }
  const SymRef& rhs() const { return rhs_; }

  uint64_t hash() const { return hash_; }

  /// Deep structural equality (hash-gated).
  static bool Equal(const SymRef& a, const SymRef& b);

  /// Decomposes into (base, constant offset): `x` -> (x, 0),
  /// `x + 5` -> (x, 5). Constants decompose to (nullptr, c).
  struct BaseOffset {
    SymRef base;      // nullptr when the value is purely constant
    int64_t offset;
  };
  static BaseOffset SplitBaseOffset(const SymRef& expr);

  /// True if `needle` occurs anywhere inside this expression.
  bool Contains(const SymRef& needle) const;

  /// All Deref subexpressions acting as pointers inside `expr` (paper
  /// Algorithm 1's GetPtrInVar). Includes nested derefs; excludes the
  /// expression itself when skip_self is set.
  static void CollectDerefs(const SymRef& expr, std::vector<SymRef>* out,
                            bool skip_self = false);

  /// Structural replace: every occurrence of `from` becomes `to`.
  /// Returns this expression unchanged (same pointer) if absent.
  static SymRef Replace(const SymRef& self, const SymRef& from,
                        const SymRef& to);

  /// Number of nodes (used to bound expression growth).
  int Depth() const { return depth_; }

  /// True if any Taint node occurs in the expression.
  bool IsTainted() const;
  /// First taint node found, if any.
  std::optional<std::pair<uint32_t, std::string>> FindTaint() const;

  /// Printable form mirroring the paper: "deref(arg0+0x4c)", "SP-0x100",
  /// "ret_{0x6c4c}", "taint@0x6c78".
  std::string ToString() const;

 private:
  SymExpr(SymKind kind, uint64_t a, uint8_t size, BinOp op, SymRef lhs,
          SymRef rhs, std::string text);

  static SymRef Make(SymKind kind, uint64_t a, uint8_t size, BinOp op,
                     SymRef lhs, SymRef rhs, std::string text = {});

  SymKind kind_;
  uint8_t size_ = 4;
  BinOp op_ = BinOp::kAdd;
  uint64_t a_ = 0;          // const/arg/ret/heap/init payload
  SymRef lhs_;
  SymRef rhs_;
  std::string text_;        // taint source name
  uint64_t hash_ = 0;
  int depth_ = 1;
};

/// Convenience: a + c (normalized).
SymRef SymAdd(SymRef a, int64_t c);

/// Strips symbolic index terms from an address base: after
/// normalization a residual Add with a non-constant right side is an
/// array walk (buf + i); the stable region base is the left spine.
/// StripIndex(buf + i) == buf; StripIndex(buf) == buf.
SymRef StripIndex(SymRef base);

}  // namespace dtaint
