// Symbolic machine state for one exploration path.
//
// Registers map to symbolic values; memory is a map from canonical
// address expressions to stored values. Loading an address that was
// never stored yields the lazy `deref(addr)` variable description the
// paper builds everything on. Each state also carries the path's
// branch-condition trail.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "src/isa/regs.h"
#include "src/symexec/defpairs.h"
#include "src/symexec/symexpr.h"

namespace dtaint {

class SymState {
 public:
  /// Initial state at function entry: argument registers hold
  /// arg0..arg3, sp holds Sp0, stack slots above sp hold arg4..arg9
  /// (lazily via LoadMem), everything else InitReg (paper §III-B).
  static SymState Entry(Arch arch);

  // ---- registers -----------------------------------------------------------
  const SymRef& Reg(int reg) const;
  void SetReg(int reg, SymRef value);

  // ---- memory --------------------------------------------------------------
  /// Reads `size` bytes at `addr`. If nothing was stored there on this
  /// path, returns deref(addr) (and reports it as an undefined use
  /// via `was_defined=false`).
  SymRef LoadMem(const SymRef& addr, uint8_t size, bool* was_defined);
  /// Writes to `addr`, replacing any prior value at an equal address.
  void StoreMem(const SymRef& addr, SymRef value, uint8_t size);
  /// Value at an exactly-equal address, or nullptr.
  SymRef PeekMem(const SymRef& addr) const;

  size_t MemEntryCount() const { return mem_.size(); }

  // ---- path metadata --------------------------------------------------------
  std::vector<PathConstraint>& constraints() { return constraints_; }
  const std::vector<PathConstraint>& constraints() const {
    return constraints_;
  }

  std::set<uint32_t>& visited_blocks() { return visited_blocks_; }
  const std::set<uint32_t>& visited_blocks() const { return visited_blocks_; }

  int path_id = 0;

 private:
  SymState() = default;

  Arch arch_ = Arch::kDtArm;
  std::vector<SymRef> regs_;  // kNumIrRegs entries

  struct MemEntry {
    SymRef addr;
    SymRef value;
    uint8_t size;
  };
  // Keyed by address-expression hash; collisions resolved by Equal.
  std::multimap<uint64_t, MemEntry> mem_;

  std::vector<PathConstraint> constraints_;
  std::set<uint32_t> visited_blocks_;
};

}  // namespace dtaint
