// Symbolic machine state for one exploration path.
//
// Registers map to symbolic values; memory is a map from canonical
// address expressions to stored values. Loading an address that was
// never stored yields the lazy `deref(addr)` variable description the
// paper builds everything on. Each state also carries the path's
// branch-condition trail.
//
// Two representations live behind one API:
//
//  * Copy-on-write (the default). The state is a persistent structure:
//    an immutable shared spine — a ref-counted chunked register file
//    plus a 16-way hash-trie over canonical address expressions — with
//    a small per-path delta overlay in front of the trie. Fork()
//    commits the overlay into the trie (path-copying O(overlay) nodes)
//    and then shares the whole spine with the child, so forking is
//    O(1) in the size of the state and StoreMem/SetReg touch only the
//    overlay / one register chunk. Trie nodes, spilled overlay arrays
//    and the constraint trail all live in a per-function StateArena
//    freed wholesale once the function's summary is produced; states
//    keep the arena alive via shared_ptr, so member teardown order
//    never dangles. The visited-block set is a dense DynamicBitset
//    indexed by the engine's per-function block numbering, and a
//    monotone taint bitmask (one bit per source class: each formal
//    argument, heap/ret/sp-rooted memory, register-held) answers
//    "could this path hold attacker data?" in O(1) without walking a
//    single expression.
//
//  * Legacy (SetStateCow(false)): the original eagerly-copied
//    std::multimap / std::vector / std::set containers. Kept
//    selectable — mirroring the expression interner's escape hatch —
//    so the state differential oracle can pin byte-identical analysis
//    reports across both representations.
//
// Thread model: a state (and its arena) is owned by the single worker
// thread analyzing one function; spines are shared only among the
// forks of that one exploration, which is what makes the
// use_count()==1 in-place mutation fast path sound.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/isa/regs.h"
#include "src/symexec/defpairs.h"
#include "src/symexec/symexpr.h"
#include "src/util/arena.h"
#include "src/util/bitset.h"

namespace dtaint {

/// Whether SymState uses the copy-on-write representation (default
/// true). The legacy path exists for the differential oracle and A/B
/// benchmarks; both produce byte-identical analysis results. Not a
/// hot-path switch: flip it between analyses, never during one.
bool StateCowEnabled();
void SetStateCow(bool enabled);

/// RAII toggle for tests/benchmarks.
class ScopedStateCow {
 public:
  explicit ScopedStateCow(bool enabled) : prev_(StateCowEnabled()) {
    SetStateCow(enabled);
  }
  ~ScopedStateCow() { SetStateCow(prev_); }
  ScopedStateCow(const ScopedStateCow&) = delete;
  ScopedStateCow& operator=(const ScopedStateCow&) = delete;

 private:
  bool prev_;
};

/// Counters the copy-on-write machinery maintains per arena (i.e. per
/// function exploration); the engine folds them into the summary's
/// ExplorationStats.
struct StateStats {
  uint64_t cow_chunk_copies = 0;  // register chunks cloned on write
  uint64_t overlay_spills = 0;    // overlay commits forced by capacity
  uint64_t trie_nodes = 0;        // hash-trie nodes allocated
};

/// Per-function allocation context shared by every state of one
/// exploration: the bump arena backing trie nodes, overlay spill
/// arrays and constraint-trail links, plus the CoW counters. Freed
/// wholesale (arena Reset via destructor) when the last state and the
/// exploration drop their references.
struct StateArena {
  BumpArena arena;
  StateStats stats;
};

/// Observation hooks the engine's block-transfer memoizer attaches
/// while recording a block: every register/memory read that consults
/// state established *before* the block becomes part of the block's
/// input footprint, every write part of its output delta.
class StateTape {
 public:
  virtual ~StateTape() = default;
  virtual void OnRegRead(int reg, const SymRef& value) = 0;
  virtual void OnRegWrite(int reg, const SymRef& value) = 0;
  /// `value` is nullptr when the location was undefined on this path.
  virtual void OnMemRead(const SymRef& addr, const SymRef& value) = 0;
  virtual void OnMemWrite(const SymRef& addr, const SymRef& value,
                          uint8_t size) = 0;
};

// Taint-class bits for SymState::taint_mask(): one bit per source
// class. Bits 0..9 — a tainted value was stored through a pointer
// rooted at arg0..arg9; then heap/ret/sp-rooted and unrooted memory;
// kTaintClassReg — a register held a tainted value. The mask is
// monotone (never cleared by overwrites): it answers MAY-hold, the
// short-circuit side of IsTainted-style queries.
inline constexpr uint32_t kTaintClassArg0 = 1u << 0;  // ... arg9 = 1u<<9
inline constexpr uint32_t kTaintClassHeap = 1u << 10;
inline constexpr uint32_t kTaintClassRet = 1u << 11;
inline constexpr uint32_t kTaintClassSp = 1u << 12;
inline constexpr uint32_t kTaintClassOtherMem = 1u << 13;
inline constexpr uint32_t kTaintClassReg = 1u << 14;

class SymState {
 public:
  /// Initial state at function entry: argument registers hold
  /// arg0..arg3, sp holds Sp0, stack slots above sp hold arg4..arg9
  /// (lazily via LoadMem), everything else InitReg (paper §III-B).
  /// In CoW mode the state allocates out of `arena` (a fresh one is
  /// created when omitted); legacy mode ignores it.
  static SymState Entry(Arch arch,
                        std::shared_ptr<StateArena> arena = nullptr);

  /// Child state sharing this state's spine. CoW: commits the overlay
  /// into the trie, then the copy is O(1) — chunk refcount bumps plus
  /// two bitset words. Legacy: a plain deep copy, preserving the
  /// original engine's behavior bit-for-bit.
  SymState Fork();

  // ---- registers -----------------------------------------------------------
  const SymRef& Reg(int reg) const;
  void SetReg(int reg, SymRef value);

  // ---- memory --------------------------------------------------------------
  /// Reads `size` bytes at `addr`. If nothing was stored there on this
  /// path, returns deref(addr) (and reports it as an undefined use
  /// via `was_defined=false`).
  SymRef LoadMem(const SymRef& addr, uint8_t size, bool* was_defined);
  /// Writes to `addr`, replacing any prior value at an equal address.
  void StoreMem(const SymRef& addr, SymRef value, uint8_t size);
  /// Value at an exactly-equal address, or nullptr. Does not fire the
  /// tape — this is the memoizer's footprint probe.
  SymRef PeekMem(const SymRef& addr) const;

  size_t MemEntryCount() const;

  // ---- path constraints ----------------------------------------------------
  void PushConstraint(const PathConstraint& c);
  /// The trail in push order, materialized (the engine copies it into
  /// every DefPair/CallEvent it records).
  std::vector<PathConstraint> ConstraintsSnapshot() const;
  size_t ConstraintCount() const;

  // ---- visited blocks ------------------------------------------------------
  /// `index` is the engine's dense per-function block number for
  /// `addr`; CoW tests one bit, legacy consults the address set (so
  /// the legacy representation stays exactly the original one).
  bool VisitedBlock(uint32_t addr, int index) const;
  void MarkVisited(uint32_t addr, int index);

  // ---- taint bitmask -------------------------------------------------------
  /// Union of kTaintClass* bits observed on this path (monotone).
  uint32_t taint_mask() const { return taint_mask_; }
  /// O(1) may-hold-taint query: no stored value anywhere on this path
  /// ever contained a Taint node iff false.
  bool MayHoldTaint() const { return taint_mask_ != 0; }

  // ---- memo tape -----------------------------------------------------------
  void AttachTape(StateTape* tape) { tape_.ptr = tape; }
  void DetachTape() { tape_.ptr = nullptr; }

  const std::shared_ptr<StateArena>& arena() const { return arena_; }
  bool cow() const { return cow_; }

  int path_id = 0;

  /// One memory cell: canonical address expression -> stored value.
  struct MemCell {
    SymRef addr;
    SymRef value;
    uint8_t size = 0;
  };

 private:
  SymState() = default;

  static constexpr int kRegChunkSize = 8;
  static constexpr int kNumRegChunks =
      (kNumIrRegs + kRegChunkSize - 1) / kRegChunkSize;
  static constexpr int kOverlayCap = 8;

  struct RegChunk {
    SymRef regs[kRegChunkSize];
  };

  /// Constraint-trail link (arena-allocated, immutable once pushed;
  /// forks share the prefix).
  struct TrailNode {
    PathConstraint c;
    const TrailNode* prev = nullptr;
  };

  /// Tape pointer that never survives a copy or move: a forked or
  /// queued state must not keep feeding a recorder attached to its
  /// parent.
  struct TapeRef {
    StateTape* ptr = nullptr;
    TapeRef() = default;
    TapeRef(const TapeRef&) {}
    TapeRef& operator=(const TapeRef&) { return *this; }
    TapeRef(TapeRef&&) noexcept {}
    TapeRef& operator=(TapeRef&&) noexcept { return *this; }
  };

  void NoteTaintedStore(const SymRef& addr);
  /// Moves every overlay cell into the trie (path-copying); afterwards
  /// the overlay is empty and the spine is safe to share.
  void CommitOverlay();
  /// Trie lookup, or nullptr.
  const MemCell* FindInTrie(const SymRef& addr) const;

  Arch arch_ = Arch::kDtArm;
  bool cow_ = true;
  TapeRef tape_;

  // --- CoW representation ---
  std::shared_ptr<StateArena> arena_;
  std::shared_ptr<RegChunk> chunks_[kNumRegChunks];
  uintptr_t mem_root_ = 0;  // tagged trie slot (see symstate.cpp); 0 = empty
  MemCell overlay_[kOverlayCap];
  uint8_t overlay_count_ = 0;
  size_t mem_count_ = 0;  // distinct addresses (overlay + trie)
  const TrailNode* trail_ = nullptr;
  uint32_t trail_len_ = 0;
  DynamicBitset visited_;

  // --- legacy representation ---
  std::vector<SymRef> regs_;  // kNumIrRegs entries
  // Keyed by address-expression hash; collisions resolved by a pointer
  // compare (canonical nodes) before the structural Equal.
  std::multimap<uint64_t, MemCell> mem_;
  std::vector<PathConstraint> constraints_;
  std::set<uint32_t> visited_blocks_;

  uint32_t taint_mask_ = 0;
};

}  // namespace dtaint
