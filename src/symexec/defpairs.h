// Definition pairs, uses, path constraints, call events, and the
// per-function summary produced by static symbolic analysis.
//
// The definition pair (d, u) — paper §III-B — records "location d was
// defined with value u". DTaint derives everything downstream from
// these: pointer aliases (Algorithm 1), structure layouts (§III-D),
// interprocedural flow (Algorithm 2) and the sink-to-source paths.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/symexec/symexpr.h"
#include "src/symexec/types.h"

namespace dtaint {

/// One branch condition recorded along a path: `lhs op rhs` was
/// observed `taken` at `site`. These are the "constraint expressions"
/// checked by the sanitization phase (paper §IV).
struct PathConstraint {
  BinOp op = BinOp::kCmpEq;
  SymRef lhs;
  SymRef rhs;
  bool taken = true;   // whether the guard evaluated true on this path
  uint32_t site = 0;

  std::string ToString() const;
};

/// One (d, u) definition pair observed on some path.
struct DefPair {
  SymRef d;            // location: Deref(...) for memory, or a symbol
  SymRef u;            // defined value
  uint32_t site = 0;   // guest address of the defining store/call
  int path_id = 0;     // which explored path produced it
  /// Constraints active when the definition executed (needed by the
  /// loop-copy sink check, which has no call event to read them from).
  std::vector<PathConstraint> constraints;
  /// True when this pair came from a budget-degraded summary (directly
  /// or imported from a degraded callee during linking). The path
  /// finder refuses to report flows built on degraded pairs — they are
  /// conservative over-approximations, not observed data flow.
  bool degraded = false;

  std::string ToString() const;
};

/// A use of a variable that had no reaching definition in the function
/// (to be forwarded to callers, Algorithm 2 ForwardUndefinedUse).
struct UseRecord {
  SymRef u;            // the consumed value expression
  uint32_t site = 0;
  int path_id = 0;
};

/// A call observed during symbolic exploration, with fully symbolic
/// arguments and the constraint prefix active at the call.
struct CallEvent {
  uint32_t callsite = 0;        // address of the BL/BLR
  std::string callee;           // name; empty for unresolved indirect
  bool is_import = false;
  bool is_indirect = false;
  SymRef indirect_target;       // symbolic target for indirect calls
  std::vector<SymRef> args;     // arg0..argN as seen at the call
  std::vector<PathConstraint> constraints;  // active constraints
  int path_id = 0;
};

/// Engine-internals counters for one function's exploration: CoW state
/// traffic and block-transfer memoization effectiveness. Diagnostics
/// only — surfaced through the `engine.*` metrics and the NDJSON
/// function_end events, and deliberately NOT serialized by the summary
/// codec (cache blobs and their content-addressed fingerprints are
/// unchanged; a cache-served summary reports zeros here).
struct ExplorationStats {
  uint64_t state_forks = 0;       // path forks (both representations)
  uint64_t cow_chunk_copies = 0;  // register chunks cloned on write
  uint64_t overlay_spills = 0;    // overlay commits forced by capacity
  uint64_t trie_nodes = 0;        // memory-trie nodes allocated
  uint64_t memo_lookups = 0;      // block executions that probed the memo
  uint64_t memo_hits = 0;         // of those, replayed a recorded delta
  uint64_t tainted_paths = 0;     // finished paths whose taint mask != 0
  uint64_t arena_bytes = 0;       // state-arena bytes reserved
};

/// Everything the engine learned about one function.
struct FunctionSummary {
  std::string name;
  uint32_t addr = 0;

  std::vector<DefPair> def_pairs;
  std::vector<UseRecord> undefined_uses;
  std::vector<CallEvent> calls;
  /// Possible return values (one per explored path that returned).
  std::vector<SymRef> return_values;
  TypeMap types;

  /// Exploration statistics.
  int paths_explored = 0;
  int blocks_visited = 0;
  bool truncated = false;  // hit a path/step budget
  /// True when the analysis budget was exhausted and this summary is
  /// the conservative stand-in from MakeDegradedSummary: every pointer
  /// argument potentially modified, return tainted-if-any-arg-tainted.
  /// Degraded summaries are never written to the persistent cache.
  bool degraded = false;
  /// Set during linking when any return value flowing into this
  /// summary originated in a degraded callee; propagated transitively
  /// so findings through such values can be suppressed.
  bool ret_degraded = false;
  /// Def pairs added by the alias pass (Algorithm 1), once it has run
  /// over this summary. Carried here so a summary served from the
  /// persistent cache reports the same count as one aliased in-process.
  size_t alias_pairs = 0;
  /// Exploration-internals counters (never serialized; see above).
  ExplorationStats engine_stats;

  /// Definition pairs whose location root is a formal argument or a
  /// returned pointer — the part of the summary callers must see.
  std::vector<const DefPair*> EscapingDefs() const;
};

/// True if the location expression is rooted (innermost base) at a
/// formal argument / Sp0 / heap symbol; extracts the root.
SymRef RootPointerOf(const SymRef& expr);

/// Human-readable dump of a function summary (definition pairs,
/// undefined uses, calls, return values) — the CLI's `inspect
/// --summary` view and a debugging staple.
std::string SummaryToString(const FunctionSummary& summary,
                            size_t max_items = 64);

}  // namespace dtaint
