#include "src/symexec/engine.h"

#include <deque>
#include <memory>
#include <unordered_map>

#include "src/util/hash.h"

namespace dtaint {

namespace {

/// Fresh opaque symbol used when an expression is widened (depth cap)
/// or a value is unknowable; keyed so repeated widenings differ.
SymRef FreshUnknown(uint32_t salt) {
  return SymExpr::InitReg(static_cast<int>(0x10000 + salt));
}

}  // namespace

const LibModel* FindLibModel(std::string_view name) {
  static const std::vector<LibModel> kModels = [] {
    std::vector<LibModel> models;
    auto taints_arg = [&models](const char* name, int arg, int ret_arg = -1) {
      LibModel m;
      m.name = name;
      m.taints_pointee_of_arg = arg;
      m.returns_arg = ret_arg;
      models.push_back(std::move(m));
    };
    auto taints_ret = [&models](const char* name) {
      LibModel m;
      m.name = name;
      m.returns_tainted_buffer = true;
      models.push_back(std::move(m));
    };
    auto copies = [&models](const char* name, int dst, int src,
                            int ret_arg = -1) {
      LibModel m;
      m.name = name;
      m.copy_dst_arg = dst;
      m.copy_src_arg = src;
      m.returns_arg = ret_arg;
      models.push_back(std::move(m));
    };
    // Sources: network/file reads write attacker bytes into a buffer arg.
    taints_arg("read", 1);
    taints_arg("recv", 1);
    taints_arg("recvfrom", 1);
    taints_arg("recvmsg", 1);
    taints_arg("fgets", 0, /*ret_arg=*/0);
    // Sources returning a pointer to attacker-controlled bytes.
    taints_ret("getenv");
    taints_ret("websGetVar");
    taints_ret("find_var");
    // Copies (sinks for overflow checking; also propagate data).
    copies("strcpy", 0, 1, /*ret_arg=*/0);
    copies("strncpy", 0, 1, /*ret_arg=*/0);
    copies("strcat", 0, 1, /*ret_arg=*/0);
    copies("memcpy", 0, 1, /*ret_arg=*/0);
    copies("sprintf", 0, 2);
    copies("snprintf", 0, 3);
    {
      LibModel m;
      m.name = "sscanf";
      m.copy_src_arg = 0;
      m.extra_dst_args = {2, 3, 4};
      models.push_back(std::move(m));
    }
    {
      LibModel m;
      m.name = "malloc";
      m.allocates = true;
      models.push_back(std::move(m));
    }
    // String interrogation: the result is a pure function of the buffer
    // contents, modeled as deref(arg) so `strlen(s) < 64` constrains
    // the same region the taint lives in.
    {
      LibModel m;
      m.name = "strlen";
      m.returns_deref_of_arg = 0;
      models.push_back(std::move(m));
    }
    {
      LibModel m;
      m.name = "atoi";
      m.returns_deref_of_arg = 0;
      models.push_back(std::move(m));
    }
    return models;
  }();
  for (const LibModel& m : kModels) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

namespace {

/// One in-flight exploration unit: a block about to be executed under a
/// path state.
struct Work {
  uint32_t block_addr;
  SymState state;
};

/// Pointer-first canonical comparison (both operands may be null).
bool SameValue(const SymRef& a, const SymRef& b) {
  if (a.get() == b.get()) return true;
  if (!a || !b) return false;
  return SymExpr::Equal(a, b);
}

// ---- block-transfer memoization --------------------------------------------
//
// A block's effect on a path state is a deterministic function of (a)
// the immutable block/binary and (b) the values the block actually
// reads out of the incoming state. Executing a block under a recording
// tape captures exactly those reads — registers and memory cells
// consulted before the block wrote them — as an ordered probe list,
// and every externally visible effect (state writes, def pairs,
// undefined uses, call events, type observations, the successor
// decision) as a replayable delta. A later visit whose state matches
// every probe (canonical pointer compare, falling back to structural
// Equal — exact, not a hash gamble) must produce the same effects, by
// induction over the probe order: probe k is a deterministic function
// of the block and probes 0..k-1. Replay substitutes the current
// path's id and constraint trail, which are the only path-dependent
// parts of the recorded effects (constraints never change mid-block —
// they are pushed at block exits). Blocks that widened (the fresh
// symbol draws from a global counter) are never memoized, and the
// whole machinery is off under a limited budget so degradation points
// stay bit-exact with per-statement charging.

/// The successor decision a block execution arrived at; shared by the
/// executed and replayed paths (Dispatch interprets it).
struct ExitDecision {
  enum Kind : uint8_t { kFinish, kGoto, kFork, kReturn } kind = kFinish;
  uint32_t target = 0;       // kGoto destination / kFork taken target
  uint32_t fallthrough = 0;  // kFork untaken side
  bool has_fallthrough = false;
  BinOp op = BinOp::kCmpEq;  // kFork guard
  SymRef guard_lhs, guard_rhs;
  uint32_t site = 0;
  SymRef ret_value;          // kReturn
};

struct MemoProbe {
  int reg = -1;  // >= 0: register probe; -1: memory probe at `addr`
  SymRef addr;
  SymRef value;  // expected value; nullptr = location undefined
};

struct MemoWrite {
  int reg = -1;
  SymRef addr;
  SymRef value;
  uint8_t size = 0;
};

struct MemoDef {
  SymRef d, u;
  uint32_t site = 0;
};

struct MemoUse {
  SymRef u;
  uint32_t site = 0;
};

struct BlockMemo {
  std::vector<MemoProbe> probes;
  std::vector<MemoWrite> writes;
  std::vector<MemoDef> defs;
  std::vector<MemoUse> uses;
  std::vector<CallEvent> calls;  // path_id/constraints filled at replay
  std::vector<std::pair<SymRef, ValueType>> types;
  uint32_t steps = 0;  // statements the recorded execution charged
  ExitDecision exit;
};

constexpr size_t kMaxMemoPerBlock = 4;  // distinct footprints kept per block
constexpr size_t kMaxMemoProbes = 32;   // beyond this, recording is abandoned
constexpr size_t kMaxMemoWrites = 128;

/// StateTape that builds a BlockMemo while a block executes. Reads of
/// locations the block already wrote are replay-internal and excluded
/// from the footprint; duplicate probes are collapsed (same state →
/// same value, so one check suffices).
class MemoRecorder : public StateTape {
 public:
  void Begin() {
    memo = BlockMemo{};
    written_regs_ = 0;
    probed_regs_ = 0;
    written_addrs_.clear();
    active = true;
  }

  void OnRegRead(int reg, const SymRef& value) override {
    if (!active) return;
    if (reg < 0 || reg >= 64) {
      active = false;
      return;
    }
    uint64_t bit = uint64_t{1} << reg;
    if ((written_regs_ | probed_regs_) & bit) return;
    probed_regs_ |= bit;
    memo.probes.push_back({reg, nullptr, value});
    if (memo.probes.size() > kMaxMemoProbes) active = false;
  }

  void OnRegWrite(int reg, const SymRef& value) override {
    if (!active) return;
    if (reg < 0 || reg >= 64) {
      active = false;
      return;
    }
    written_regs_ |= uint64_t{1} << reg;
    memo.writes.push_back({reg, nullptr, value, 0});
    if (memo.writes.size() > kMaxMemoWrites) active = false;
  }

  void OnMemRead(const SymRef& addr, const SymRef& value) override {
    if (!active) return;
    for (const SymRef& w : written_addrs_) {
      if (SameValue(w, addr)) return;
    }
    for (const MemoProbe& p : memo.probes) {
      if (p.reg < 0 && SameValue(p.addr, addr)) return;
    }
    memo.probes.push_back({-1, addr, value});
    if (memo.probes.size() > kMaxMemoProbes) active = false;
  }

  void OnMemWrite(const SymRef& addr, const SymRef& value,
                  uint8_t size) override {
    if (!active) return;
    written_addrs_.push_back(addr);
    memo.writes.push_back({-1, addr, value, size});
    if (memo.writes.size() > kMaxMemoWrites) active = false;
  }

  BlockMemo memo;
  bool active = false;

 private:
  uint64_t written_regs_ = 0;
  uint64_t probed_regs_ = 0;
  std::vector<SymRef> written_addrs_;
};

class Exploration {
 public:
  Exploration(const Binary& binary, const Function& fn,
              const EngineConfig& config, FunctionSummary& summary,
              BudgetTracker* budget)
      : binary_(binary), fn_(fn), config_(config), summary_(summary),
        budget_(budget), cc_(ConventionFor(binary.arch)) {}

  void Run() {
    // Dense per-function block numbering for the visited bitset (map
    // order = address order, deterministic).
    for (const auto& [addr, block] : fn_.blocks) {
      block_index_.emplace(addr, static_cast<int>(block_index_.size()));
    }
    bool cow = StateCowEnabled();
    // Memoization replays whole blocks; under a limited budget the
    // per-statement charge points ARE the observable behavior
    // (degradation must trip at the same statement), so it stays off.
    memo_enabled_ =
        config_.block_memo && cow && !(budget_ && budget_->limits().limited());
    if (cow) arena_ = std::make_shared<StateArena>();
    SymState init = SymState::Entry(binary_.arch, arena_);
    init.path_id = next_path_id_++;
    work_.push_back({fn_.addr, std::move(init)});
    while (!work_.empty()) {
      if (budget_ && budget_->exhausted()) break;
      if (summary_.paths_explored >= config_.max_paths ||
          block_visits_ >= config_.max_block_visits) {
        summary_.truncated = true;
        break;
      }
      Work work = std::move(work_.back());
      work_.pop_back();
      ExecuteBlock(work.block_addr, std::move(work.state));
    }
    if (arena_) {
      summary_.engine_stats.cow_chunk_copies = arena_->stats.cow_chunk_copies;
      summary_.engine_stats.overlay_spills = arena_->stats.overlay_spills;
      summary_.engine_stats.trie_nodes = arena_->stats.trie_nodes;
      summary_.engine_stats.arena_bytes = arena_->arena.bytes_reserved();
    }
  }

 private:
  SymRef Widen(SymRef value) {
    if (value->Depth() <= config_.max_expr_depth) return value;
    return FreshUnknown(widen_counter_++);
  }

  SymRef EvalExpr(const ExprRef& e, std::vector<SymRef>& tmps,
                  SymState& state, uint32_t site) {
    switch (e->kind()) {
      case ExprKind::kConst:
        return SymExpr::Const(e->const_value());
      case ExprKind::kRdTmp:
        return tmps[e->tmp()];
      case ExprKind::kGet:
        return state.Reg(e->reg());
      case ExprKind::kLoad: {
        SymRef addr = EvalExpr(e->lhs(), tmps, state, site);
        if (config_.record_types) {
          auto split = SymExpr::SplitBaseOffset(addr);
          if (split.base) ObserveType(split.base, ValueType::kPtr);
        }
        // Concrete addresses into .rodata/.data read the actual bytes —
        // string literals, dispatch tables (function pointers!).
        if (addr->kind() == SymKind::kConst && e->load_size() == 4) {
          auto word = binary_.ReadWordAt(addr->const_value());
          if (word.ok()) return SymExpr::Const(*word);
        }
        bool defined = false;
        SymRef value = state.LoadMem(addr, e->load_size(), &defined);
        if (!defined) {
          SymRef root = RootPointerOf(value);
          if (root && (root->kind() == SymKind::kArg ||
                       root->kind() == SymKind::kRet ||
                       root->kind() == SymKind::kHeap)) {
            RecordUndefinedUse(state, value, site);
          }
        }
        return value;
      }
      case ExprKind::kBinop: {
        SymRef lhs = EvalExpr(e->lhs(), tmps, state, site);
        SymRef rhs = EvalExpr(e->rhs(), tmps, state, site);
        return Widen(SymExpr::Bin(e->binop(), lhs, rhs));
      }
    }
    return FreshUnknown(widen_counter_++);
  }

  /// Collects call arguments arg0..arg{n-1} from the state.
  std::vector<SymRef> CollectArgs(SymState& state, int count) {
    std::vector<SymRef> args;
    for (int i = 0; i < count; ++i) {
      if (i < kNumRegArgs) {
        args.push_back(state.Reg(cc_.arg_regs[i]));
      } else {
        SymRef slot =
            SymAdd(state.Reg(kRegSp), (i - kNumRegArgs) * 4);
        args.push_back(state.LoadMem(slot, 4, nullptr));
      }
    }
    return args;
  }

  // ---- effect funnels (observed by the memo recorder) ----------------------

  void RecordDef(SymState& state, SymRef location, SymRef value,
                 uint32_t site) {
    if (recorder_.active) {
      recorder_.memo.defs.push_back({location, value, site});
    }
    DefPair dp;
    dp.d = std::move(location);
    dp.u = std::move(value);
    dp.site = site;
    dp.path_id = state.path_id;
    dp.constraints = state.ConstraintsSnapshot();
    summary_.def_pairs.push_back(std::move(dp));
  }

  void RecordUndefinedUse(SymState& state, const SymRef& value,
                          uint32_t site) {
    if (recorder_.active) recorder_.memo.uses.push_back({value, site});
    summary_.undefined_uses.push_back({value, site, state.path_id});
  }

  void RecordCall(CallEvent event) {
    if (recorder_.active) {
      CallEvent proto = event;
      proto.constraints.clear();
      proto.path_id = 0;
      recorder_.memo.calls.push_back(std::move(proto));
    }
    summary_.calls.push_back(std::move(event));
  }

  void ObserveType(const SymRef& expr, ValueType type) {
    if (recorder_.active) recorder_.memo.types.push_back({expr, type});
    summary_.types.Observe(expr, type);
  }

  /// Applies a library model's memory/taint/return effects.
  void ApplyLibCall(const CallSite& cs, const LibModel* model,
                    const std::string& name, std::vector<SymRef>& args,
                    SymState& state) {
    SymRef ret = SymExpr::Ret(cs.call_addr);
    if (model) {
      if (model->taints_pointee_of_arg >= 0 &&
          model->taints_pointee_of_arg < static_cast<int>(args.size())) {
        const SymRef& buf = args[model->taints_pointee_of_arg];
        SymRef taint = SymExpr::Taint(cs.call_addr, name);
        state.StoreMem(buf, taint, 4);
        RecordDef(state, SymExpr::Deref(buf), taint, cs.call_addr);
      }
      if (model->returns_tainted_buffer) {
        SymRef taint = SymExpr::Taint(cs.call_addr, name);
        state.StoreMem(ret, taint, 1);
        RecordDef(state, SymExpr::Deref(ret, 1), taint, cs.call_addr);
      }
      if (model->copy_dst_arg >= 0 && model->copy_src_arg >= 0 &&
          model->copy_dst_arg < static_cast<int>(args.size()) &&
          model->copy_src_arg < static_cast<int>(args.size())) {
        const SymRef& dst = args[model->copy_dst_arg];
        const SymRef& src = args[model->copy_src_arg];
        SymRef value = state.LoadMem(src, 4, nullptr);
        state.StoreMem(dst, value, 4);
        RecordDef(state, SymExpr::Deref(dst), value, cs.call_addr);
      }
      for (int dst_idx : model->extra_dst_args) {
        if (model->copy_src_arg < 0 ||
            dst_idx >= static_cast<int>(args.size())) {
          continue;
        }
        const SymRef& dst = args[dst_idx];
        SymRef value =
            state.LoadMem(args[model->copy_src_arg], 4, nullptr);
        state.StoreMem(dst, value, 4);
        RecordDef(state, SymExpr::Deref(dst), value, cs.call_addr);
      }
      if (model->allocates) {
        // Heap identity = hash of the callsite chain; intraprocedurally
        // the chain is just this callsite, and the interprocedural pass
        // extends the hash as summaries flow into callers (§III-E).
        ret = SymExpr::Heap(
            HashCombine(kFnvOffset, cs.call_addr));
      }
      if (model->returns_arg >= 0 &&
          model->returns_arg < static_cast<int>(args.size())) {
        ret = args[model->returns_arg];
      }
      if (model->returns_deref_of_arg >= 0 &&
          model->returns_deref_of_arg < static_cast<int>(args.size())) {
        ret = state.LoadMem(args[model->returns_deref_of_arg], 4, nullptr);
      }
    }
    state.SetReg(cc_.ret_reg, ret);
    // Library-signature type evidence (paper: "the parameters are
    // specified data types").
    if (config_.record_types) {
      if (const LibSignature* sig = FindLibSignature(name)) {
        for (size_t i = 0; i < sig->params.size() && i < args.size(); ++i) {
          ObserveType(args[i], sig->params[i]);
        }
        ObserveType(ret, sig->ret);
      }
    }
  }

  int BlockIndexOf(uint32_t block_addr) const {
    auto it = block_index_.find(block_addr);
    return it == block_index_.end() ? 0 : it->second;
  }

  bool ProbesMatch(const BlockMemo& memo, const SymState& state) const {
    for (const MemoProbe& p : memo.probes) {
      if (p.reg >= 0) {
        if (!SameValue(state.Reg(p.reg), p.value)) return false;
      } else {
        SymRef current = state.PeekMem(p.addr);
        if (!SameValue(current, p.value)) return false;
      }
    }
    return true;
  }

  void ReplayMemo(const BlockMemo& memo, SymState state) {
    // Bulk step charge keeps the budget's effort counters identical to
    // the executed path (only reachable with an unlimited budget).
    if (budget_ && budget_->ChargeSteps(memo.steps)) return;
    for (const MemoWrite& w : memo.writes) {
      if (w.reg >= 0) {
        state.SetReg(w.reg, w.value);
      } else {
        state.StoreMem(w.addr, w.value, w.size);
      }
    }
    std::vector<PathConstraint> constraints;
    if (!memo.defs.empty() || !memo.calls.empty()) {
      constraints = state.ConstraintsSnapshot();
    }
    for (const MemoDef& d : memo.defs) {
      DefPair dp;
      dp.d = d.d;
      dp.u = d.u;
      dp.site = d.site;
      dp.path_id = state.path_id;
      dp.constraints = constraints;
      summary_.def_pairs.push_back(std::move(dp));
    }
    for (const MemoUse& u : memo.uses) {
      summary_.undefined_uses.push_back({u.u, u.site, state.path_id});
    }
    for (const CallEvent& proto : memo.calls) {
      CallEvent event = proto;
      event.constraints = constraints;
      event.path_id = state.path_id;
      summary_.calls.push_back(std::move(event));
    }
    for (const auto& [expr, type] : memo.types) {
      summary_.types.Observe(expr, type);
    }
    Dispatch(memo.exit, std::move(state));
  }

  void ExecuteBlock(uint32_t block_addr, SymState state) {
    const IRBlock* block = fn_.BlockAt(block_addr);
    if (!block) {
      FinishPath(state);
      return;
    }
    int block_idx = BlockIndexOf(block_addr);
    if (state.VisitedBlock(block_addr, block_idx)) {
      // Loop heuristic: a block is analyzed once per path.
      FinishPath(state);
      return;
    }
    state.MarkVisited(block_addr, block_idx);
    ++block_visits_;
    ++summary_.blocks_visited;

    bool recording = false;
    if (memo_enabled_) {
      ++summary_.engine_stats.memo_lookups;
      auto it = memo_.find(block_addr);
      if (it != memo_.end()) {
        for (const auto& entry : it->second) {
          if (ProbesMatch(*entry, state)) {
            ++summary_.engine_stats.memo_hits;
            ReplayMemo(*entry, std::move(state));
            return;
          }
        }
      }
      if (it == memo_.end() || it->second.size() < kMaxMemoPerBlock) {
        recorder_.Begin();
        state.AttachTape(&recorder_);
        recording = true;
      }
    }
    uint32_t widen_before = widen_counter_;
    uint32_t steps_in_block = 0;

    std::vector<SymRef> tmps(block->next_tmp);
    uint32_t cur_site = block_addr;

    // Pending symbolic conditional exit, if any (lifter emits at most
    // one, as the final statement before the block terminator).
    struct PendingExit {
      SymRef guard_lhs, guard_rhs;
      BinOp op;
      uint32_t target;
      uint32_t site;
      bool concrete = false;
      bool concrete_taken = false;
    };
    std::optional<PendingExit> pending_exit;

    for (const Stmt& stmt : block->stmts) {
      // Cooperative watchdog: one budget step per IR statement. On
      // exhaustion abandon the block mid-way — the caller throws the
      // whole partial summary away and degrades.
      ++steps_in_block;
      if (budget_ && budget_->ChargeStep()) {
        state.DetachTape();
        recorder_.active = false;
        return;
      }
      switch (stmt.kind) {
        case StmtKind::kIMark:
          cur_site = stmt.addr;
          break;
        case StmtKind::kWrTmp:
          tmps[stmt.tmp] = EvalExpr(stmt.expr, tmps, state, cur_site);
          break;
        case StmtKind::kPut: {
          SymRef value = EvalExpr(stmt.expr, tmps, state, cur_site);
          if (config_.record_types && stmt.reg == kFlagRhs &&
              value->kind() == SymKind::kConst) {
            // CMP rX, #imm marks rX's value as an integer.
            ObserveType(state.Reg(kFlagLhs), ValueType::kInt);
          }
          state.SetReg(stmt.reg, std::move(value));
          break;
        }
        case StmtKind::kStore: {
          SymRef addr = EvalExpr(stmt.addr_expr, tmps, state, cur_site);
          SymRef data = EvalExpr(stmt.data_expr, tmps, state, cur_site);
          if (config_.record_types) {
            auto split = SymExpr::SplitBaseOffset(addr);
            if (split.base) {
              ObserveType(split.base, ValueType::kPtr);
            }
          }
          state.StoreMem(addr, data, stmt.size);
          RecordDef(state, SymExpr::Deref(addr, stmt.size), data, cur_site);
          break;
        }
        case StmtKind::kExit: {
          // Guard is Binop(cmp, flagL, flagR); evaluate its operands so
          // the constraint names program values, not flag registers.
          SymRef lhs = EvalExpr(stmt.expr->lhs(), tmps, state, cur_site);
          SymRef rhs = EvalExpr(stmt.expr->rhs(), tmps, state, cur_site);
          PendingExit px;
          px.op = stmt.expr->binop();
          px.guard_lhs = lhs;
          px.guard_rhs = rhs;
          px.target = stmt.target;
          px.site = cur_site;
          SymRef folded = SymExpr::Bin(px.op, lhs, rhs);
          if (folded->kind() == SymKind::kConst) {
            px.concrete = true;
            px.concrete_taken = folded->const_value() != 0;
          }
          pending_exit = std::move(px);
          break;
        }
      }
    }

    // Decide successors.
    ExitDecision exit;
    switch (block->jumpkind) {
      case JumpKind::kBoring: {
        uint32_t fallthrough = 0;
        bool has_fallthrough = false;
        if (block->next && block->next->kind() == ExprKind::kConst) {
          fallthrough = block->next->const_value();
          has_fallthrough =
              fallthrough >= fn_.addr && fallthrough < fn_.addr + fn_.size;
        }
        if (pending_exit) {
          const PendingExit& px = *pending_exit;
          if (px.concrete) {
            // Deterministic branch: follow only the feasible side.
            if (px.concrete_taken) {
              exit.kind = ExitDecision::kGoto;
              exit.target = px.target;
            } else if (has_fallthrough) {
              exit.kind = ExitDecision::kGoto;
              exit.target = fallthrough;
            }
          } else {
            // Symbolic: explore both directions (paper: "DTaint
            // explores both directions of each conditional branch").
            exit.kind = ExitDecision::kFork;
            exit.target = px.target;
            exit.fallthrough = fallthrough;
            exit.has_fallthrough = has_fallthrough;
            exit.op = px.op;
            exit.guard_lhs = px.guard_lhs;
            exit.guard_rhs = px.guard_rhs;
            exit.site = px.site;
          }
        } else if (has_fallthrough) {
          exit.kind = ExitDecision::kGoto;
          exit.target = fallthrough;
        }
        break;
      }
      case JumpKind::kCall: {
        const CallSite* cs = nullptr;
        for (const CallSite& c : fn_.callsites) {
          if (c.block_addr == block_addr && !c.is_indirect) cs = &c;
        }
        if (cs) HandleDirectCall(*cs, state);
        if (block->return_addr >= fn_.addr &&
            block->return_addr < fn_.addr + fn_.size) {
          exit.kind = ExitDecision::kGoto;
          exit.target = block->return_addr;
        }
        break;
      }
      case JumpKind::kIndirectCall: {
        const CallSite* cs = nullptr;
        for (const CallSite& c : fn_.callsites) {
          if (c.block_addr == block_addr && c.is_indirect) cs = &c;
        }
        if (cs) {
          CallEvent event;
          event.callsite = cs->call_addr;
          event.is_indirect = true;
          // The target expression is the evaluated `next`.
          std::vector<SymRef> dummy_tmps = tmps;
          event.indirect_target =
              EvalExpr(block->next, dummy_tmps, state, cs->call_addr);
          event.args = CollectArgs(state, kNumRegArgs + 2);
          event.constraints = state.ConstraintsSnapshot();
          event.path_id = state.path_id;
          RecordCall(std::move(event));
          state.SetReg(cc_.ret_reg, SymExpr::Ret(cs->call_addr));
        }
        if (block->return_addr >= fn_.addr &&
            block->return_addr < fn_.addr + fn_.size) {
          exit.kind = ExitDecision::kGoto;
          exit.target = block->return_addr;
        }
        break;
      }
      case JumpKind::kRet: {
        exit.kind = ExitDecision::kReturn;
        exit.ret_value = state.Reg(cc_.ret_reg);
        break;
      }
    }

    if (recording) {
      state.DetachTape();
      // A widened block bakes a draw from the global fresh-symbol
      // counter into its delta; replaying it would desequence later
      // widenings. Never memoize those.
      if (recorder_.active && widen_counter_ == widen_before) {
        auto memo = std::make_unique<BlockMemo>(std::move(recorder_.memo));
        memo->steps = steps_in_block;
        memo->exit = exit;
        memo_[block_addr].push_back(std::move(memo));
      }
      recorder_.active = false;
    }
    Dispatch(exit, std::move(state));
  }

  void Dispatch(const ExitDecision& exit, SymState state) {
    switch (exit.kind) {
      case ExitDecision::kFinish:
        FinishPath(state);
        return;
      case ExitDecision::kGoto:
        Continue(exit.target, std::move(state));
        return;
      case ExitDecision::kReturn:
        summary_.return_values.push_back(exit.ret_value);
        FinishPath(state);
        return;
      case ExitDecision::kFork: {
        ++summary_.engine_stats.state_forks;
        SymState taken = state.Fork();
        taken.path_id = next_path_id_++;
        taken.PushConstraint(
            {exit.op, exit.guard_lhs, exit.guard_rhs, true, exit.site});
        Continue(exit.target, std::move(taken));
        if (exit.has_fallthrough) {
          state.PushConstraint(
              {exit.op, exit.guard_lhs, exit.guard_rhs, false, exit.site});
          Continue(exit.fallthrough, std::move(state));
        } else {
          FinishPath(state);
        }
        return;
      }
    }
  }

  void HandleDirectCall(const CallSite& cs, SymState& state) {
    const LibModel* model =
        cs.target_is_import ? FindLibModel(cs.target_name) : nullptr;
    int arg_count = kNumRegArgs + 2;
    if (cs.target_is_import) {
      if (const LibSignature* sig = FindLibSignature(cs.target_name)) {
        arg_count = static_cast<int>(sig->params.size());
      }
    }
    CallEvent event;
    event.callsite = cs.call_addr;
    event.callee = cs.target_name;
    event.is_import = cs.target_is_import;
    event.args = CollectArgs(state, arg_count);
    event.constraints = state.ConstraintsSnapshot();
    event.path_id = state.path_id;

    if (cs.target_is_import) {
      ApplyLibCall(cs, model, cs.target_name, event.args, state);
    } else {
      // Local callee: the return value is the opaque ret_{callsite}
      // symbol; the interprocedural pass later substitutes the callee's
      // summary (Algorithm 2).
      state.SetReg(cc_.ret_reg, SymExpr::Ret(cs.call_addr));
    }
    RecordCall(std::move(event));
  }

  void Continue(uint32_t block_addr, SymState state) {
    if (budget_) budget_->ChargeState();
    work_.push_back({block_addr, std::move(state)});
  }

  void FinishPath(const SymState& state) {
    if (state.MayHoldTaint()) ++summary_.engine_stats.tainted_paths;
    ++summary_.paths_explored;
  }

  const Binary& binary_;
  const Function& fn_;
  const EngineConfig& config_;
  FunctionSummary& summary_;
  BudgetTracker* budget_;
  const CallingConvention& cc_;

  std::vector<Work> work_;
  std::shared_ptr<StateArena> arena_;
  std::unordered_map<uint32_t, int> block_index_;
  std::unordered_map<uint32_t, std::vector<std::unique_ptr<BlockMemo>>> memo_;
  MemoRecorder recorder_;
  bool memo_enabled_ = false;
  int next_path_id_ = 0;
  int block_visits_ = 0;
  uint32_t widen_counter_ = 0;
};

}  // namespace

FunctionSummary SymEngine::Analyze(const Function& fn,
                                   BudgetTracker* budget) const {
  FunctionSummary summary;
  summary.name = fn.name;
  summary.addr = fn.addr;
  Exploration exploration(binary_, fn, config_, summary, budget);
  exploration.Run();
  if (budget && budget->exhausted()) return MakeDegradedSummary(fn);
  return summary;
}

FunctionSummary MakeDegradedSummary(const Function& fn) {
  FunctionSummary summary;
  summary.name = fn.name;
  summary.addr = fn.addr;
  summary.degraded = true;
  summary.truncated = true;
  summary.paths_explored = 0;
  SymRef ret;
  for (int i = 0; i < kNumRegArgs; ++i) {
    SymRef pointee = SymExpr::Deref(SymExpr::Arg(i));
    DefPair dp;
    dp.d = pointee;
    dp.u = pointee;
    dp.site = fn.addr;
    dp.path_id = 0;
    dp.degraded = true;
    summary.def_pairs.push_back(std::move(dp));
    summary.undefined_uses.push_back({pointee, fn.addr, 0});
    ret = ret ? SymExpr::Bin(BinOp::kOr, ret, pointee) : pointee;
  }
  summary.return_values.push_back(std::move(ret));
  return summary;
}

}  // namespace dtaint
