#include "src/symexec/engine.h"

#include <deque>

#include "src/util/hash.h"

namespace dtaint {

namespace {

/// Fresh opaque symbol used when an expression is widened (depth cap)
/// or a value is unknowable; keyed so repeated widenings differ.
SymRef FreshUnknown(uint32_t salt) {
  return SymExpr::InitReg(static_cast<int>(0x10000 + salt));
}

}  // namespace

const LibModel* FindLibModel(std::string_view name) {
  static const std::vector<LibModel> kModels = [] {
    std::vector<LibModel> models;
    auto taints_arg = [&models](const char* name, int arg, int ret_arg = -1) {
      LibModel m;
      m.name = name;
      m.taints_pointee_of_arg = arg;
      m.returns_arg = ret_arg;
      models.push_back(std::move(m));
    };
    auto taints_ret = [&models](const char* name) {
      LibModel m;
      m.name = name;
      m.returns_tainted_buffer = true;
      models.push_back(std::move(m));
    };
    auto copies = [&models](const char* name, int dst, int src,
                            int ret_arg = -1) {
      LibModel m;
      m.name = name;
      m.copy_dst_arg = dst;
      m.copy_src_arg = src;
      m.returns_arg = ret_arg;
      models.push_back(std::move(m));
    };
    // Sources: network/file reads write attacker bytes into a buffer arg.
    taints_arg("read", 1);
    taints_arg("recv", 1);
    taints_arg("recvfrom", 1);
    taints_arg("recvmsg", 1);
    taints_arg("fgets", 0, /*ret_arg=*/0);
    // Sources returning a pointer to attacker-controlled bytes.
    taints_ret("getenv");
    taints_ret("websGetVar");
    taints_ret("find_var");
    // Copies (sinks for overflow checking; also propagate data).
    copies("strcpy", 0, 1, /*ret_arg=*/0);
    copies("strncpy", 0, 1, /*ret_arg=*/0);
    copies("strcat", 0, 1, /*ret_arg=*/0);
    copies("memcpy", 0, 1, /*ret_arg=*/0);
    copies("sprintf", 0, 2);
    copies("snprintf", 0, 3);
    {
      LibModel m;
      m.name = "sscanf";
      m.copy_src_arg = 0;
      m.extra_dst_args = {2, 3, 4};
      models.push_back(std::move(m));
    }
    {
      LibModel m;
      m.name = "malloc";
      m.allocates = true;
      models.push_back(std::move(m));
    }
    // String interrogation: the result is a pure function of the buffer
    // contents, modeled as deref(arg) so `strlen(s) < 64` constrains
    // the same region the taint lives in.
    {
      LibModel m;
      m.name = "strlen";
      m.returns_deref_of_arg = 0;
      models.push_back(std::move(m));
    }
    {
      LibModel m;
      m.name = "atoi";
      m.returns_deref_of_arg = 0;
      models.push_back(std::move(m));
    }
    return models;
  }();
  for (const LibModel& m : kModels) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

namespace {

/// One in-flight exploration unit: a block about to be executed under a
/// path state.
struct Work {
  uint32_t block_addr;
  SymState state;
};

class Exploration {
 public:
  Exploration(const Binary& binary, const Function& fn,
              const EngineConfig& config, FunctionSummary& summary,
              BudgetTracker* budget)
      : binary_(binary), fn_(fn), config_(config), summary_(summary),
        budget_(budget), cc_(ConventionFor(binary.arch)) {}

  void Run() {
    SymState init = SymState::Entry(binary_.arch);
    init.path_id = next_path_id_++;
    work_.push_back({fn_.addr, std::move(init)});
    while (!work_.empty()) {
      if (budget_ && budget_->exhausted()) return;
      if (summary_.paths_explored >= config_.max_paths ||
          block_visits_ >= config_.max_block_visits) {
        summary_.truncated = true;
        break;
      }
      Work work = std::move(work_.back());
      work_.pop_back();
      ExecuteBlock(work.block_addr, std::move(work.state));
    }
  }

 private:
  SymRef Widen(SymRef value) {
    if (value->Depth() <= config_.max_expr_depth) return value;
    return FreshUnknown(widen_counter_++);
  }

  SymRef EvalExpr(const ExprRef& e, std::vector<SymRef>& tmps,
                  SymState& state, uint32_t site) {
    switch (e->kind()) {
      case ExprKind::kConst:
        return SymExpr::Const(e->const_value());
      case ExprKind::kRdTmp:
        return tmps[e->tmp()];
      case ExprKind::kGet:
        return state.Reg(e->reg());
      case ExprKind::kLoad: {
        SymRef addr = EvalExpr(e->lhs(), tmps, state, site);
        if (config_.record_types) {
          auto split = SymExpr::SplitBaseOffset(addr);
          if (split.base) summary_.types.Observe(split.base, ValueType::kPtr);
        }
        // Concrete addresses into .rodata/.data read the actual bytes —
        // string literals, dispatch tables (function pointers!).
        if (addr->kind() == SymKind::kConst && e->load_size() == 4) {
          auto word = binary_.ReadWordAt(addr->const_value());
          if (word.ok()) return SymExpr::Const(*word);
        }
        bool defined = false;
        SymRef value = state.LoadMem(addr, e->load_size(), &defined);
        if (!defined) {
          SymRef root = RootPointerOf(value);
          if (root && (root->kind() == SymKind::kArg ||
                       root->kind() == SymKind::kRet ||
                       root->kind() == SymKind::kHeap)) {
            summary_.undefined_uses.push_back(
                {value, site, state.path_id});
          }
        }
        return value;
      }
      case ExprKind::kBinop: {
        SymRef lhs = EvalExpr(e->lhs(), tmps, state, site);
        SymRef rhs = EvalExpr(e->rhs(), tmps, state, site);
        return Widen(SymExpr::Bin(e->binop(), lhs, rhs));
      }
    }
    return FreshUnknown(widen_counter_++);
  }

  /// Collects call arguments arg0..arg{n-1} from the state.
  std::vector<SymRef> CollectArgs(SymState& state, int count) {
    std::vector<SymRef> args;
    for (int i = 0; i < count; ++i) {
      if (i < kNumRegArgs) {
        args.push_back(state.Reg(cc_.arg_regs[i]));
      } else {
        SymRef slot =
            SymAdd(state.Reg(kRegSp), (i - kNumRegArgs) * 4);
        args.push_back(state.LoadMem(slot, 4, nullptr));
      }
    }
    return args;
  }

  void RecordDef(SymState& state, SymRef location, SymRef value,
                 uint32_t site) {
    DefPair dp;
    dp.d = std::move(location);
    dp.u = std::move(value);
    dp.site = site;
    dp.path_id = state.path_id;
    dp.constraints = state.constraints();
    summary_.def_pairs.push_back(std::move(dp));
  }

  /// Applies a library model's memory/taint/return effects.
  void ApplyLibCall(const CallSite& cs, const LibModel* model,
                    const std::string& name, std::vector<SymRef>& args,
                    SymState& state) {
    SymRef ret = SymExpr::Ret(cs.call_addr);
    if (model) {
      if (model->taints_pointee_of_arg >= 0 &&
          model->taints_pointee_of_arg < static_cast<int>(args.size())) {
        const SymRef& buf = args[model->taints_pointee_of_arg];
        SymRef taint = SymExpr::Taint(cs.call_addr, name);
        state.StoreMem(buf, taint, 4);
        RecordDef(state, SymExpr::Deref(buf), taint, cs.call_addr);
      }
      if (model->returns_tainted_buffer) {
        SymRef taint = SymExpr::Taint(cs.call_addr, name);
        state.StoreMem(ret, taint, 1);
        RecordDef(state, SymExpr::Deref(ret, 1), taint, cs.call_addr);
      }
      if (model->copy_dst_arg >= 0 && model->copy_src_arg >= 0 &&
          model->copy_dst_arg < static_cast<int>(args.size()) &&
          model->copy_src_arg < static_cast<int>(args.size())) {
        const SymRef& dst = args[model->copy_dst_arg];
        const SymRef& src = args[model->copy_src_arg];
        SymRef value = state.LoadMem(src, 4, nullptr);
        state.StoreMem(dst, value, 4);
        RecordDef(state, SymExpr::Deref(dst), value, cs.call_addr);
      }
      for (int dst_idx : model->extra_dst_args) {
        if (model->copy_src_arg < 0 ||
            dst_idx >= static_cast<int>(args.size())) {
          continue;
        }
        const SymRef& dst = args[dst_idx];
        SymRef value =
            state.LoadMem(args[model->copy_src_arg], 4, nullptr);
        state.StoreMem(dst, value, 4);
        RecordDef(state, SymExpr::Deref(dst), value, cs.call_addr);
      }
      if (model->allocates) {
        // Heap identity = hash of the callsite chain; intraprocedurally
        // the chain is just this callsite, and the interprocedural pass
        // extends the hash as summaries flow into callers (§III-E).
        ret = SymExpr::Heap(
            HashCombine(kFnvOffset, cs.call_addr));
      }
      if (model->returns_arg >= 0 &&
          model->returns_arg < static_cast<int>(args.size())) {
        ret = args[model->returns_arg];
      }
      if (model->returns_deref_of_arg >= 0 &&
          model->returns_deref_of_arg < static_cast<int>(args.size())) {
        ret = state.LoadMem(args[model->returns_deref_of_arg], 4, nullptr);
      }
    }
    state.SetReg(cc_.ret_reg, ret);
    // Library-signature type evidence (paper: "the parameters are
    // specified data types").
    if (config_.record_types) {
      if (const LibSignature* sig = FindLibSignature(name)) {
        for (size_t i = 0; i < sig->params.size() && i < args.size(); ++i) {
          summary_.types.Observe(args[i], sig->params[i]);
        }
        summary_.types.Observe(ret, sig->ret);
      }
    }
  }

  void ExecuteBlock(uint32_t block_addr, SymState state) {
    const IRBlock* block = fn_.BlockAt(block_addr);
    if (!block) {
      FinishPath(state);
      return;
    }
    if (state.visited_blocks().count(block_addr)) {
      // Loop heuristic: a block is analyzed once per path.
      FinishPath(state);
      return;
    }
    state.visited_blocks().insert(block_addr);
    ++block_visits_;
    ++summary_.blocks_visited;

    std::vector<SymRef> tmps(block->next_tmp);
    uint32_t cur_site = block_addr;

    // Pending symbolic conditional exit, if any (lifter emits at most
    // one, as the final statement before the block terminator).
    struct PendingExit {
      SymRef guard_lhs, guard_rhs;
      BinOp op;
      uint32_t target;
      uint32_t site;
      bool concrete = false;
      bool concrete_taken = false;
    };
    std::optional<PendingExit> pending_exit;

    for (const Stmt& stmt : block->stmts) {
      // Cooperative watchdog: one budget step per IR statement. On
      // exhaustion abandon the block mid-way — the caller throws the
      // whole partial summary away and degrades.
      if (budget_ && budget_->ChargeStep()) return;
      switch (stmt.kind) {
        case StmtKind::kIMark:
          cur_site = stmt.addr;
          break;
        case StmtKind::kWrTmp:
          tmps[stmt.tmp] = EvalExpr(stmt.expr, tmps, state, cur_site);
          break;
        case StmtKind::kPut: {
          SymRef value = EvalExpr(stmt.expr, tmps, state, cur_site);
          if (config_.record_types && stmt.reg == kFlagRhs &&
              value->kind() == SymKind::kConst) {
            // CMP rX, #imm marks rX's value as an integer.
            summary_.types.Observe(state.Reg(kFlagLhs), ValueType::kInt);
          }
          state.SetReg(stmt.reg, std::move(value));
          break;
        }
        case StmtKind::kStore: {
          SymRef addr = EvalExpr(stmt.addr_expr, tmps, state, cur_site);
          SymRef data = EvalExpr(stmt.data_expr, tmps, state, cur_site);
          if (config_.record_types) {
            auto split = SymExpr::SplitBaseOffset(addr);
            if (split.base) {
              summary_.types.Observe(split.base, ValueType::kPtr);
            }
          }
          state.StoreMem(addr, data, stmt.size);
          RecordDef(state, SymExpr::Deref(addr, stmt.size), data, cur_site);
          break;
        }
        case StmtKind::kExit: {
          // Guard is Binop(cmp, flagL, flagR); evaluate its operands so
          // the constraint names program values, not flag registers.
          SymRef lhs = EvalExpr(stmt.expr->lhs(), tmps, state, cur_site);
          SymRef rhs = EvalExpr(stmt.expr->rhs(), tmps, state, cur_site);
          PendingExit px;
          px.op = stmt.expr->binop();
          px.guard_lhs = lhs;
          px.guard_rhs = rhs;
          px.target = stmt.target;
          px.site = cur_site;
          SymRef folded = SymExpr::Bin(px.op, lhs, rhs);
          if (folded->kind() == SymKind::kConst) {
            px.concrete = true;
            px.concrete_taken = folded->const_value() != 0;
          }
          pending_exit = std::move(px);
          break;
        }
      }
    }

    // Decide successors.
    switch (block->jumpkind) {
      case JumpKind::kBoring: {
        uint32_t fallthrough = 0;
        bool has_fallthrough = false;
        if (block->next && block->next->kind() == ExprKind::kConst) {
          fallthrough = block->next->const_value();
          has_fallthrough =
              fallthrough >= fn_.addr && fallthrough < fn_.addr + fn_.size;
        }
        if (pending_exit) {
          const PendingExit& px = *pending_exit;
          if (px.concrete) {
            // Deterministic branch: follow only the feasible side.
            if (px.concrete_taken) {
              Continue(px.target, std::move(state));
            } else if (has_fallthrough) {
              Continue(fallthrough, std::move(state));
            } else {
              FinishPath(state);
            }
            return;
          }
          // Symbolic: explore both directions (paper: "DTaint explores
          // both directions of each conditional branch").
          SymState taken = state;
          taken.path_id = next_path_id_++;
          taken.constraints().push_back(
              {px.op, px.guard_lhs, px.guard_rhs, true, px.site});
          Continue(px.target, std::move(taken));
          if (has_fallthrough) {
            state.constraints().push_back(
                {px.op, px.guard_lhs, px.guard_rhs, false, px.site});
            Continue(fallthrough, std::move(state));
          } else {
            FinishPath(state);
          }
          return;
        }
        if (has_fallthrough) {
          Continue(fallthrough, std::move(state));
        } else {
          FinishPath(state);
        }
        return;
      }
      case JumpKind::kCall: {
        const CallSite* cs = nullptr;
        for (const CallSite& c : fn_.callsites) {
          if (c.block_addr == block_addr && !c.is_indirect) cs = &c;
        }
        if (cs) HandleDirectCall(*cs, state);
        if (block->return_addr >= fn_.addr &&
            block->return_addr < fn_.addr + fn_.size) {
          Continue(block->return_addr, std::move(state));
        } else {
          FinishPath(state);
        }
        return;
      }
      case JumpKind::kIndirectCall: {
        const CallSite* cs = nullptr;
        for (const CallSite& c : fn_.callsites) {
          if (c.block_addr == block_addr && c.is_indirect) cs = &c;
        }
        if (cs) {
          CallEvent event;
          event.callsite = cs->call_addr;
          event.is_indirect = true;
          // The target expression is the evaluated `next`.
          std::vector<SymRef> dummy_tmps = tmps;
          event.indirect_target =
              EvalExpr(block->next, dummy_tmps, state, cs->call_addr);
          event.args = CollectArgs(state, kNumRegArgs + 2);
          event.constraints = state.constraints();
          event.path_id = state.path_id;
          summary_.calls.push_back(std::move(event));
          state.SetReg(cc_.ret_reg, SymExpr::Ret(cs->call_addr));
        }
        if (block->return_addr >= fn_.addr &&
            block->return_addr < fn_.addr + fn_.size) {
          Continue(block->return_addr, std::move(state));
        } else {
          FinishPath(state);
        }
        return;
      }
      case JumpKind::kRet: {
        summary_.return_values.push_back(state.Reg(cc_.ret_reg));
        FinishPath(state);
        return;
      }
    }
  }

  void HandleDirectCall(const CallSite& cs, SymState& state) {
    const LibModel* model =
        cs.target_is_import ? FindLibModel(cs.target_name) : nullptr;
    int arg_count = kNumRegArgs + 2;
    if (cs.target_is_import) {
      if (const LibSignature* sig = FindLibSignature(cs.target_name)) {
        arg_count = static_cast<int>(sig->params.size());
      }
    }
    CallEvent event;
    event.callsite = cs.call_addr;
    event.callee = cs.target_name;
    event.is_import = cs.target_is_import;
    event.args = CollectArgs(state, arg_count);
    event.constraints = state.constraints();
    event.path_id = state.path_id;

    if (cs.target_is_import) {
      ApplyLibCall(cs, model, cs.target_name, event.args, state);
    } else {
      // Local callee: the return value is the opaque ret_{callsite}
      // symbol; the interprocedural pass later substitutes the callee's
      // summary (Algorithm 2).
      state.SetReg(cc_.ret_reg, SymExpr::Ret(cs.call_addr));
    }
    summary_.calls.push_back(std::move(event));
  }

  void Continue(uint32_t block_addr, SymState state) {
    if (budget_) budget_->ChargeState();
    work_.push_back({block_addr, std::move(state)});
  }

  void FinishPath(const SymState& state) {
    (void)state;
    ++summary_.paths_explored;
  }

  const Binary& binary_;
  const Function& fn_;
  const EngineConfig& config_;
  FunctionSummary& summary_;
  BudgetTracker* budget_;
  const CallingConvention& cc_;

  std::vector<Work> work_;
  int next_path_id_ = 0;
  int block_visits_ = 0;
  uint32_t widen_counter_ = 0;
};

}  // namespace

FunctionSummary SymEngine::Analyze(const Function& fn,
                                   BudgetTracker* budget) const {
  FunctionSummary summary;
  summary.name = fn.name;
  summary.addr = fn.addr;
  Exploration exploration(binary_, fn, config_, summary, budget);
  exploration.Run();
  if (budget && budget->exhausted()) return MakeDegradedSummary(fn);
  return summary;
}

FunctionSummary MakeDegradedSummary(const Function& fn) {
  FunctionSummary summary;
  summary.name = fn.name;
  summary.addr = fn.addr;
  summary.degraded = true;
  summary.truncated = true;
  summary.paths_explored = 0;
  SymRef ret;
  for (int i = 0; i < kNumRegArgs; ++i) {
    SymRef pointee = SymExpr::Deref(SymExpr::Arg(i));
    DefPair dp;
    dp.d = pointee;
    dp.u = pointee;
    dp.site = fn.addr;
    dp.path_id = 0;
    dp.degraded = true;
    summary.def_pairs.push_back(std::move(dp));
    summary.undefined_uses.push_back({pointee, fn.addr, 0});
    ret = ret ? SymExpr::Bin(BinOp::kOr, ret, pointee) : pointee;
  }
  summary.return_values.push_back(std::move(ret));
  return summary;
}

}  // namespace dtaint
