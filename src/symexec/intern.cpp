#include "src/symexec/intern.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <new>
#include <utility>

#include "src/obs/metrics.h"

namespace dtaint {

namespace {

std::atomic<bool> g_interning_enabled{true};

/// Non-owning view of an immortal arena node: an aliasing shared_ptr
/// with no control block. Copying it performs no atomic operations.
SymRef NonOwningRef(const SymExpr* node) {
  return SymRef(SymRef(), node);
}

}  // namespace

bool ExprInterningEnabled() {
  return g_interning_enabled.load(std::memory_order_relaxed);
}

void SetExprInterning(bool enabled) {
  g_interning_enabled.store(enabled, std::memory_order_relaxed);
}

/// One lock stripe: an open-addressed pointer table plus the arena its
/// nodes live in. Nodes are placement-new'd into arena blocks and never
/// destroyed; the table only ever grows.
struct ExprInterner::Shard {
  static constexpr size_t kInitialSlots = 1024;   // power of two
  static constexpr size_t kArenaBlockBytes = 64 * 1024;

  /// The node's hash lives next to its pointer so a probe rejects
  /// non-matching slots without dereferencing the (cold) node — on
  /// miss-heavy workloads the table is the working set, and touching
  /// one line per probe instead of two is the difference that shows.
  struct Slot {
    uint64_t hash = 0;
    const SymExpr* node = nullptr;
  };

  std::mutex mu;
  std::vector<Slot> slots = std::vector<Slot>(kInitialSlots);
  size_t used = 0;

  std::vector<std::unique_ptr<std::byte[]>> arena;
  size_t arena_pos = 0;       // offset into the current (last) block
  uint64_t arena_bytes = 0;   // total reserved across blocks

  uint64_t hits = 0;
  uint64_t contended = 0;

  void* Allocate(size_t size, size_t align) {
    size_t pos = (arena_pos + align - 1) & ~(align - 1);
    if (arena.empty() || pos + size > kArenaBlockBytes) {
      arena.push_back(std::make_unique<std::byte[]>(kArenaBlockBytes));
      arena_bytes += kArenaBlockBytes;
      pos = 0;
    }
    arena_pos = pos + size;
    return arena.back().get() + pos;
  }

  void Grow() {
    std::vector<Slot> bigger(slots.size() * 2);
    size_t mask = bigger.size() - 1;
    for (const Slot& slot : slots) {
      if (!slot.node) continue;
      size_t i = (slot.hash >> 6) & mask;
      while (bigger[i].node) i = (i + 1) & mask;
      bigger[i] = slot;
    }
    slots = std::move(bigger);
  }
};

ExprInterner::ExprInterner() : shards_(new Shard[kShards]) {}

ExprInterner& ExprInterner::Global() {
  static ExprInterner* interner = new ExprInterner();
  return *interner;
}

ExprInterner::Shard& ExprInterner::ShardFor(uint64_t hash) {
  return shards_[hash & (kShards - 1)];
}

SymRef ExprInterner::Intern(SymKind kind, uint64_t a, uint8_t size,
                            BinOp op, SymRef lhs, SymRef rhs,
                            std::string text) {
  // A handful of leaf shapes (small constants, formal args, SP0,
  // initial registers) account for a large share of all factory calls.
  // They get a lock-free direct-mapped cache: one acquire-load on a
  // hit, no hash, no shard lock. Misses fall through to the table once
  // and then publish the canonical node into the cache slot.
  std::atomic<const SymExpr*>* leaf_slot = nullptr;
  if (!lhs && !rhs && size == 4 && op == BinOp::kAdd && text.empty()) {
    switch (kind) {
      case SymKind::kConst:
        if (a < kLeafConsts) leaf_slot = &leaf_consts_[a];
        break;
      case SymKind::kArg:
        if (a < kLeafArgs) leaf_slot = &leaf_args_[a];
        break;
      case SymKind::kInit:
        if (a < kLeafRegs) leaf_slot = &leaf_regs_[a];
        break;
      case SymKind::kSp0:
        leaf_slot = &leaf_sp0_;
        break;
      default:
        break;
    }
    if (leaf_slot) {
      if (const SymExpr* hit = leaf_slot->load(std::memory_order_acquire)) {
        leaf_hits_.fetch_add(1, std::memory_order_relaxed);
        return NonOwningRef(hit);
      }
    }
  }

  // Bottom-up invariant: children of an interned node are interned, so
  // the shape key below can compare children by pointer.
  if (lhs && !lhs->interned()) lhs = Canonical(lhs);
  if (rhs && !rhs->interned()) rhs = Canonical(rhs);

  const uint64_t h = SymExpr::ShapeHash(kind, a, size, op, lhs.get(),
                                        rhs.get(), text);
  Shard& shard = ShardFor(h);

  std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    lock.lock();
    ++shard.contended;
  }

  const size_t mask = shard.slots.size() - 1;
  size_t i = (h >> 6) & mask;
  for (; shard.slots[i].node; i = (i + 1) & mask) {
    if (shard.slots[i].hash != h) continue;
    const SymExpr* node = shard.slots[i].node;
    if (node->kind_ == kind && node->a_ == a && node->size_ == size &&
        node->op_ == op && node->lhs_.get() == lhs.get() &&
        node->rhs_.get() == rhs.get() && node->text_ == text) {
      ++shard.hits;
      if (leaf_slot) leaf_slot->store(node, std::memory_order_release);
      return NonOwningRef(node);
    }
  }

  if (shard.used + 1 > shard.slots.size() / 2) {
    shard.Grow();
    const size_t grown_mask = shard.slots.size() - 1;
    i = (h >> 6) & grown_mask;
    while (shard.slots[i].node) i = (i + 1) & grown_mask;
  }

  void* mem = shard.Allocate(sizeof(SymExpr), alignof(SymExpr));
  SymExpr* node = new (mem)
      SymExpr(kind, a, size, op, std::move(lhs), std::move(rhs),
              std::move(text), h);
  node->interned_ = true;
  shard.slots[i] = {h, node};
  ++shard.used;
  if (leaf_slot) leaf_slot->store(node, std::memory_order_release);
  return NonOwningRef(node);
}

SymRef ExprInterner::Canonical(const SymRef& expr) {
  if (!expr || expr->interned_) return expr;
  SymRef lhs = expr->lhs_ ? Canonical(expr->lhs_) : nullptr;
  SymRef rhs = expr->rhs_ ? Canonical(expr->rhs_) : nullptr;
  return Intern(expr->kind_, expr->a_, expr->size_, expr->op_,
                std::move(lhs), std::move(rhs), expr->text_);
}

InternStats ExprInterner::stats() const {
  InternStats total;
  total.hits = leaf_hits_.load(std::memory_order_relaxed);
  for (size_t s = 0; s < kShards; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    total.nodes += shard.used;
    total.hits += shard.hits;
    total.bytes += shard.arena_bytes;
    total.contended += shard.contended;
  }
  return total;
}

void ExprInterner::PublishMetrics() {
  InternStats now = stats();
  std::lock_guard<std::mutex> lock(publish_mu_);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.counter("intern.nodes").Add(now.nodes - published_.nodes);
  registry.counter("intern.hits").Add(now.hits - published_.hits);
  registry.counter("intern.bytes").Add(now.bytes - published_.bytes);
  registry.counter("intern.contended")
      .Add(now.contended - published_.contended);
  published_ = now;
}

}  // namespace dtaint
