#include "src/symexec/types.h"

namespace dtaint {

std::string_view ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kUnknown: return "unknown";
    case ValueType::kInt: return "int";
    case ValueType::kChar: return "char";
    case ValueType::kPtr: return "ptr";
    case ValueType::kCharPtr: return "char*";
  }
  return "?";
}

ValueType JoinTypes(ValueType a, ValueType b) {
  if (a == b) return a;
  if (a == ValueType::kUnknown) return b;
  if (b == ValueType::kUnknown) return a;
  // char* is the most specific pointer; any pointer evidence wins over
  // scalar evidence.
  if (a == ValueType::kCharPtr || b == ValueType::kCharPtr) {
    return ValueType::kCharPtr;
  }
  if (IsPointerType(a) || IsPointerType(b)) return ValueType::kPtr;
  return ValueType::kInt;
}

bool IsPointerType(ValueType type) {
  return type == ValueType::kPtr || type == ValueType::kCharPtr;
}

void TypeMap::Observe(const SymRef& expr, ValueType type) {
  if (!expr || type == ValueType::kUnknown) return;
  ValueType& slot = types_[expr->hash()];
  slot = JoinTypes(slot, type);
}

ValueType TypeMap::TypeOf(const SymRef& expr) const {
  if (!expr) return ValueType::kUnknown;
  auto it = types_.find(expr->hash());
  return it == types_.end() ? ValueType::kUnknown : it->second;
}

void TypeMap::MergeFrom(const TypeMap& other) {
  for (const auto& [hash, type] : other.types_) {
    ValueType& slot = types_[hash];
    slot = JoinTypes(slot, type);
  }
}

const LibSignature* FindLibSignature(std::string_view name) {
  using VT = ValueType;
  static const std::vector<LibSignature> kSignatures = {
      // string / memory copies (sinks)
      {"strcpy", {VT::kCharPtr, VT::kCharPtr}, VT::kCharPtr},
      {"strncpy", {VT::kCharPtr, VT::kCharPtr, VT::kInt}, VT::kCharPtr},
      {"strcat", {VT::kCharPtr, VT::kCharPtr}, VT::kCharPtr},
      {"memcpy", {VT::kPtr, VT::kPtr, VT::kInt}, VT::kPtr},
      {"sprintf", {VT::kCharPtr, VT::kCharPtr, VT::kCharPtr}, VT::kInt},
      {"sscanf", {VT::kCharPtr, VT::kCharPtr, VT::kPtr}, VT::kInt},
      // command execution (sinks)
      {"system", {VT::kCharPtr}, VT::kInt},
      {"popen", {VT::kCharPtr, VT::kCharPtr}, VT::kPtr},
      // input (sources)
      {"read", {VT::kInt, VT::kPtr, VT::kInt}, VT::kInt},
      {"recv", {VT::kInt, VT::kPtr, VT::kInt, VT::kInt}, VT::kInt},
      {"recvfrom",
       {VT::kInt, VT::kPtr, VT::kInt, VT::kInt, VT::kPtr, VT::kPtr},
       VT::kInt},
      {"recvmsg", {VT::kInt, VT::kPtr, VT::kInt}, VT::kInt},
      {"getenv", {VT::kCharPtr}, VT::kCharPtr},
      {"fgets", {VT::kCharPtr, VT::kInt, VT::kPtr}, VT::kCharPtr},
      {"websGetVar", {VT::kPtr, VT::kCharPtr, VT::kCharPtr}, VT::kCharPtr},
      {"find_var", {VT::kPtr, VT::kCharPtr}, VT::kCharPtr},
      // misc
      {"malloc", {VT::kInt}, VT::kPtr},
      {"free", {VT::kPtr}, VT::kInt},
      {"strlen", {VT::kCharPtr}, VT::kInt},
      {"strcmp", {VT::kCharPtr, VT::kCharPtr}, VT::kInt},
      {"strchr", {VT::kCharPtr, VT::kInt}, VT::kCharPtr},
      {"strstr", {VT::kCharPtr, VT::kCharPtr}, VT::kCharPtr},
      {"atoi", {VT::kCharPtr}, VT::kInt},
      {"snprintf",
       {VT::kCharPtr, VT::kInt, VT::kCharPtr, VT::kCharPtr},
       VT::kInt},
      {"socket", {VT::kInt, VT::kInt, VT::kInt}, VT::kInt},
      {"close", {VT::kInt}, VT::kInt},
      {"printf", {VT::kCharPtr}, VT::kInt},
      {"fprintf", {VT::kPtr, VT::kCharPtr}, VT::kInt},
      {"exit", {VT::kInt}, VT::kInt},
  };
  for (const LibSignature& sig : kSignatures) {
    if (sig.name == name) return &sig;
  }
  return nullptr;
}

}  // namespace dtaint
