#include "src/resilience/budget.h"

#include "src/symexec/intern.h"

namespace dtaint {

std::string_view BudgetExhaustionName(BudgetExhaustion cause) {
  switch (cause) {
    case BudgetExhaustion::kNone:
      return "none";
    case BudgetExhaustion::kDeadline:
      return "deadline";
    case BudgetExhaustion::kSteps:
      return "steps";
    case BudgetExhaustion::kStates:
      return "states";
    case BudgetExhaustion::kExprNodes:
      return "expr_nodes";
    case BudgetExhaustion::kInjected:
      return "injected";
  }
  return "none";
}

BudgetTracker::BudgetTracker(const AnalysisBudget& limits)
    : limits_(limits), start_(std::chrono::steady_clock::now()) {}

bool BudgetTracker::ChargeStep() {
  ++steps_;
  if (exhausted()) return true;
  if (!limits_.limited()) return false;
  if (limits_.max_steps > 0 && steps_ >= limits_.max_steps) {
    cause_ = BudgetExhaustion::kSteps;
    return true;
  }
  if (steps_ % kSlowCheckInterval == 0) SlowCheck();
  return exhausted();
}

bool BudgetTracker::ChargeSteps(uint64_t n) {
  steps_ += n;
  if (exhausted()) return true;
  if (!limits_.limited()) return false;
  if (limits_.max_steps > 0 && steps_ >= limits_.max_steps) {
    cause_ = BudgetExhaustion::kSteps;
    return true;
  }
  SlowCheck();
  return exhausted();
}

bool BudgetTracker::ChargeState() {
  ++states_;
  if (exhausted()) return true;
  if (limits_.max_states > 0 && states_ >= limits_.max_states) {
    cause_ = BudgetExhaustion::kStates;
  }
  return exhausted();
}

void BudgetTracker::SlowCheck() {
  if (limits_.deadline_ms > 0) {
    double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    if (elapsed_ms >= limits_.deadline_ms) {
      cause_ = BudgetExhaustion::kDeadline;
      return;
    }
  }
  if (limits_.max_expr_nodes > 0) {
    // stats() sums 64 shards — fine at this cadence, too costly per
    // step.
    expr_nodes_seen_ = ExprInterner::Global().stats().nodes;
    if (expr_nodes_seen_ >= limits_.max_expr_nodes) {
      cause_ = BudgetExhaustion::kExprNodes;
    }
  }
}

BudgetCounters BudgetTracker::counters() const {
  BudgetCounters c;
  c.steps = steps_;
  c.states = states_;
  c.elapsed_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
  c.expr_nodes = expr_nodes_seen_;
  c.exhausted_by = cause_;
  return c;
}

}  // namespace dtaint
