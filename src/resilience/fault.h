// Deterministic fault injection for the pipeline's failure edges.
//
// Resilience code is only trustworthy if its failure paths run in CI.
// A FaultPlan names pipeline sites where failures can be injected
// deterministically — lift error on function N, budget exhaustion in
// the summary phase, a disk-cache I/O error, a truncated firmware
// section — so tests/resilience_test.cpp can prove that a corpus scan
// completes with correct partial results under each fault.
//
// Rules come from the DTAINT_FAULTS environment variable (read once,
// lazily) or from the Install* API (tests). Spec grammar, rules
// separated by ';' or ',':
//
//   site[@match][:count][+skip]
//
//   site   lift | summary | pathfind | cache_read | cache_write |
//          extract | load | crash | worker_kill | worker_hang |
//          journal_torn
//   match  substring the site's detail string must contain (function
//          name, binary name, file path); empty matches everything
//   count  how many matching occurrences fail (default 1, '*' = all)
//   skip   matching occurrences to let pass first (default 0)
//
// Examples:
//   DTAINT_FAULTS="lift@parse_uri"        first lift of parse_uri fails
//   DTAINT_FAULTS="cache_read:2"          first two disk reads error
//   DTAINT_FAULTS="summary@handler+1"     second summary of *handler*
//   DTAINT_FAULTS="extract:*"             every extraction fails
//
// ShouldFail is the single hot-path entry point: a relaxed atomic load
// when no plan is installed (the overwhelmingly common case), a
// mutex-guarded rule scan otherwise. Matching occurrences are counted
// per rule, so "the Nth occurrence" is deterministic even when sites
// are hit from the phase-1 worker pool.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace dtaint {

enum class FaultSite : uint8_t {
  kLift,        // per-function CFG recovery / lifting
  kSummary,     // per-function symbolic analysis (degrades, not fails)
  kPathfinder,  // sink-to-source search for one binary
  kCacheRead,   // disk-cache entry read (transient I/O error)
  kCacheWrite,  // disk-cache entry write (transient I/O error)
  kExtract,     // firmware unpacking
  kLoad,        // binary image parsing
  kCrash,       // hard process death mid-scan (corpus_scan consults it
                // right after image_begin in-process, and the scan
                // supervisor consults it in the parent before each
                // first dispatch; the kill-mid-scan oracles in
                // tests/events_test.cpp and tests/supervisor_test.cpp
                // prove the event stream, flight recorder, and resume
                // journal survive)
  kWorkerKill,  // isolated scan worker SIGKILLs itself at task start —
                // the synthetic poison image the supervisor must
                // retry and eventually quarantine
  kWorkerHang,  // isolated scan worker spins forever at task start —
                // exercises the per-image wall-clock watchdog
  kJournalTorn, // journal append writes only a prefix of the record
                // and no newline — the torn-write the replay path
                // must skip (that record, and possibly the next line
                // it glues onto, is lost; the journal is at-least-once
                // and the image is simply re-scanned)
};

/// "lift", "summary", "pathfind", "cache_read", ...
std::string_view FaultSiteName(FaultSite site);
/// Inverse of FaultSiteName; false on unknown names.
bool ParseFaultSite(std::string_view name, FaultSite* out);

struct FaultRule {
  FaultSite site = FaultSite::kLift;
  std::string match;  // substring of the detail; empty matches all
  int skip = 0;       // matching occurrences to let pass first
  int count = 1;      // occurrences that fail after the skip; -1 = all
};

class FaultPlan {
 public:
  /// The process-wide plan every instrumented site consults. First
  /// access installs rules from DTAINT_FAULTS, if set.
  static FaultPlan& Global();

  /// Parses and installs a spec (see grammar above), replacing any
  /// existing rules. Empty spec just clears.
  Status InstallSpec(std::string_view spec);
  /// Installs rules directly (test API), replacing existing ones.
  void Install(std::vector<FaultRule> rules);
  /// Removes all rules (tests call this in TearDown).
  void Clear();

  /// True when the site should fail this occurrence. `detail` is the
  /// site-specific context string rules match against.
  bool ShouldFail(FaultSite site, std::string_view detail = {});

  /// Total faults fired since process start (monotonic).
  uint64_t injected() const { return injected_.load(std::memory_order_relaxed); }

  /// Acquires the rule lock for the duration of a fork(2), so a forked
  /// scan worker never inherits it mid-ShouldFail from another thread.
  std::unique_lock<std::mutex> LockForFork() {
    return std::unique_lock<std::mutex>(mu_);
  }

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

 private:
  FaultPlan() = default;

  struct ActiveRule {
    FaultRule rule;
    int seen = 0;   // matching occurrences observed
    int fired = 0;  // of those, how many were failed
  };

  std::mutex mu_;
  std::vector<ActiveRule> rules_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> injected_{0};
};

}  // namespace dtaint
