// Crash-isolated scan supervisor — fork-per-image worker pool with
// watchdogs, resource limits, retry/quarantine policy, and a resumable
// checkpoint journal (src/resilience/journal.h).
//
// The in-process incident machinery (incident.h, budget.h) contains
// *expected* failures: malformed binaries, exhausted budgets. It cannot
// contain a worker that SIGSEGVs in the lifter, leaks until the OOM
// killer fires, or spins forever in a pathological loop — one poison
// image would take the whole fleet run down with it. The supervisor
// closes that gap: each image is scanned in a forked child, the
// ScanOutcome comes back over a pipe in a small versioned wire frame,
// and the parent enforces a per-image wall-clock watchdog plus
// RLIMIT_AS / RLIMIT_CPU in the child.
//
// Worker lifecycle state machine (per image):
//
//   PENDING --fork--> RUNNING --frame ok--------------------> DONE
//                        |  `--timeout--> KILLED(SIGKILL) --.
//                        `--signal/OOM/exit/bad frame-------+--> FAILED
//   FAILED --attempts left--> PENDING (backoff, tightened budget)
//   FAILED --attempts exhausted--> QUARANTINED
//
// Every failure becomes a typed Incident (phase "supervisor"); retries
// back off with deterministic jitter (retry.h, seeded from the image
// fingerprint) and re-run under a *tightened* AnalysisBudget
// (TightenBudget: full -> degraded -> harshly degraded), so an image
// that only dies when allowed to run long gets a cheap second chance.
// After 1 + max_retries attempts the image is quarantined: recorded,
// reported, and never allowed to poison the rest of the fleet.
//
// If fork or pipe creation itself fails (containers without
// CAP_SYS_ADMIN analogues, fd exhaustion), the supervisor degrades to
// running the task in-process — isolation is best-effort, the scan
// itself is not.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/resilience/budget.h"
#include "src/resilience/incident.h"
#include "src/resilience/journal.h"
#include "src/util/status.h"

namespace dtaint {

/// Wire format version for the worker->parent result frame.
inline constexpr uint32_t kWireVersion = 1;

/// Child exit codes with supervisor meaning. Chosen high to stay clear
/// of the scan body's own exit codes and shell conventions.
inline constexpr int kWorkerExitOom = 77;    // std::bad_alloc caught
inline constexpr int kWorkerExitError = 76;  // other uncaught exception

/// Why a worker attempt failed (drives the Incident message and the
/// worker_exit event).
enum class WorkerFailure : uint8_t {
  kTimeout,  // watchdog deadline passed; parent SIGKILLed it
  kSignal,   // died on a signal (SIGSEGV, SIGKILL from OOM killer, ...)
  kOom,      // exited kWorkerExitOom: allocation failed under RLIMIT_AS
  kExit,     // nonzero exit for any other reason
  kWire,     // exited 0 but the result frame didn't decode
};

/// "timeout", "signal", "oom", "exit", "wire".
std::string_view WorkerFailureName(WorkerFailure failure);

/// Budget for attempt `attempt` (1-based). Attempt 1 runs the base
/// budget untouched; each later attempt caps every limit at a degraded
/// constant halved again per extra attempt — a crashing image gets
/// progressively cheaper chances, never more expensive ones. Limits
/// the base leaves unlimited (0) become limited on retry.
AnalysisBudget TightenBudget(const AnalysisBudget& base, int attempt);

/// Encodes an outcome as one wire frame: magic, version, payload
/// length, JSON payload (ScanOutcomeToJson). Length-prefixed so the
/// parent can tell "complete frame" from "child died mid-write".
std::string EncodeWireResult(const ScanOutcome& outcome);

/// Strict inverse; any truncation, bad magic, or version skew fails.
Result<ScanOutcome> DecodeWireResult(std::string_view frame);

struct SupervisorConfig {
  /// Concurrent worker processes.
  int workers = 1;
  /// Extra attempts after the first before quarantine (so an image is
  /// tried at most 1 + max_retries times).
  int max_retries = 2;
  /// Per-image wall-clock watchdog; 0 = no deadline.
  uint32_t image_timeout_ms = 0;
  /// RLIMIT_AS for each worker; 0 = unlimited. (Meaningless under
  /// ASan, which reserves terabytes of shadow address space.)
  uint32_t mem_limit_mb = 0;
  /// RLIMIT_CPU seconds; 0 = derive from image_timeout_ms (rounded up,
  /// +1s slack) or leave unlimited when there is no deadline either.
  uint32_t cpu_limit_s = 0;
  /// Base analysis budget; retries run TightenBudget(budget, attempt).
  AnalysisBudget budget;
  /// Journal directory; empty = no journal (and resume impossible).
  std::string journal_dir;
  /// Replay the journal first and skip images already done/quarantined.
  bool resume = false;
  /// Stop dispatching new images after a quarantine (fail-fast fleets).
  bool stop_on_failure = false;
  /// Run every task in-process (no fork) — the A side of the bench A/B
  /// and the deterministic-path half of the supervisor tests. Journal
  /// and resume still work.
  bool force_in_process = false;
  /// Retry backoff shape (jitter seed comes from each image's
  /// fingerprint, not from here).
  int backoff_initial_us = 200;
  int backoff_total_cap_us = 1'000'000;
};

/// One unit of supervised work.
struct TaskSpec {
  std::string label;        // fleet label, also the fault-site detail
  std::string fingerprint;  // content identity for the journal
};

/// What happened to one task, attempts included.
struct TaskResult {
  enum class State : uint8_t {
    kDone,         // outcome is valid (possibly replayed from journal)
    kQuarantined,  // gave up after 1 + max_retries attempts
    kSkipped,      // never dispatched (stop_on_failure tripped first)
  };
  State state = State::kSkipped;
  ScanOutcome outcome;
  uint32_t attempts = 0;
  uint32_t worker_restarts = 0;  // failed attempts (== attempts-1 when done)
  bool resumed = false;          // satisfied from the journal replay
  bool in_process = false;       // ran without isolation (forced or fallback)
  std::string quarantine_reason;
  /// Supervisor-level incidents (one per failed attempt, plus the
  /// quarantine verdict), distinct from outcome.incidents.
  std::vector<Incident> incidents;
};

/// Run-level tallies, mirrored into metrics counters (supervisor.*).
struct SupervisorStats {
  uint64_t tasks = 0;
  uint64_t workers_spawned = 0;
  uint64_t worker_failures = 0;
  uint64_t retries = 0;
  uint64_t quarantined = 0;
  uint64_t resumed = 0;
  uint64_t in_process_fallbacks = 0;
  uint64_t journal_records_replayed = 0;
  uint64_t journal_garbage_lines = 0;
};

/// The task body: scan image `index` under `budget` and return its
/// outcome. In isolated mode it runs inside the forked child; it must
/// not assume it shares memory with the caller afterwards.
using TaskFn = std::function<ScanOutcome(size_t index, const AnalysisBudget& budget)>;

class ScanSupervisor {
 public:
  explicit ScanSupervisor(SupervisorConfig config);

  /// Runs every task to a terminal state (done / quarantined /
  /// skipped). Results are returned in task order regardless of
  /// completion order. Emits supervisor lifecycle events
  /// (image_resumed, image_retry, image_quarantined, worker_exit,
  /// journal_replay) into the global event stream when it is open.
  std::vector<TaskResult> Run(const std::vector<TaskSpec>& tasks,
                              const TaskFn& fn);

  const SupervisorStats& stats() const { return stats_; }

 private:
  struct Active;  // one live worker slot (supervisor.cpp)

  /// Forks and runs task `index` (attempt `attempt`) in a child whose
  /// frame arrives on `*out_fd`. False when fork/pipe failed and the
  /// caller should fall back to in-process execution.
  bool SpawnWorker(const TaskSpec& task, size_t index, int attempt,
                   const TaskFn& fn, Active* slot);

  /// The child side: rlimits, worker fault sites, run fn, write frame.
  [[noreturn]] void RunChild(const TaskSpec& task, size_t index, int attempt,
                             const TaskFn& fn, int pipe_fd);

  /// In-process execution of one attempt (forced mode and fork
  /// fallback). False on failure, with the failure kind and a detail
  /// message filled in (worker fault sites become synthetic failures;
  /// exceptions become kExit / kOom).
  bool RunInProcess(const TaskSpec& task, size_t index, int attempt,
                    const TaskFn& fn, ScanOutcome* outcome,
                    WorkerFailure* failure, std::string* detail);

  SupervisorConfig config_;
  SupervisorStats stats_;
  ScanJournal journal_;
};

}  // namespace dtaint
