// Per-function analysis budgets — bounded effort for firmware-scale
// scanning.
//
// DTaint's fleet use case (paper §IV scans ~1.5k binaries across 6
// images; the crawl behind it covers 6,529) cannot afford one
// state-exploding function stalling a corpus run. Following the SSE
// follow-up work (arXiv:2109.12209), per-function effort is bounded by
// an AnalysisBudget: wall-clock deadline, symbolic-step count, queued
// symbolic states, and a process-wide interned-expression-node
// ceiling. Hot loops in the symbolic engine and the alias pass charge
// a BudgetTracker cooperatively; on exhaustion the function yields a
// *conservative degraded summary* (see MakeDegradedSummary in
// src/symexec/engine.h) instead of aborting the scan — the Sdft move
// (arXiv:2111.04005) of substituting a sound summary when precise
// analysis is infeasible.
//
// Semantics notes:
//  * All limits default to 0 = unlimited; the tracker is a no-op then.
//  * Step/state budgets are deterministic: the same function under the
//    same limit always degrades at the same point. Deadline budgets
//    are inherently wall-clock dependent; tests use step budgets.
//  * A degraded summary is never written to the persistent cache, so a
//    later run with a larger budget re-analyzes the function (the
//    cache only ever holds full-effort results).
#pragma once

#include <chrono>
#include <cstdint>
#include <string_view>

namespace dtaint {

/// Limits on one function's analysis effort. 0 means unlimited.
struct AnalysisBudget {
  /// Wall-clock deadline per function, in milliseconds.
  double deadline_ms = 0;
  /// Symbolic statement evaluations per function.
  uint64_t max_steps = 0;
  /// Symbolic states enqueued per function (path forks).
  uint64_t max_states = 0;
  /// Ceiling on *process-wide* unique interned expression nodes; trips
  /// when the interner grows past it while this function is analyzed.
  uint64_t max_expr_nodes = 0;

  bool limited() const {
    return deadline_ms > 0 || max_steps > 0 || max_states > 0 ||
           max_expr_nodes > 0;
  }
};

/// Which limit tripped (kInjected: a FaultPlan rule fired).
enum class BudgetExhaustion : uint8_t {
  kNone = 0,
  kDeadline,
  kSteps,
  kStates,
  kExprNodes,
  kInjected,
};

/// "none", "deadline", "steps", "states", "expr_nodes", "injected".
std::string_view BudgetExhaustionName(BudgetExhaustion cause);

/// Point-in-time effort counters, embedded in incident records so a
/// degraded function's report says how far the analysis got.
struct BudgetCounters {
  uint64_t steps = 0;
  uint64_t states = 0;
  double elapsed_ms = 0;
  uint64_t expr_nodes = 0;  // interner population at the last check
  BudgetExhaustion exhausted_by = BudgetExhaustion::kNone;
};

/// Cooperative watchdog for one function's analysis. Owned by a single
/// worker thread — not internally synchronized (each analysis in the
/// phase-1 pool constructs its own). Charging is O(1); the clock and
/// the interner (both comparatively expensive) are consulted only
/// every kSlowCheckInterval steps.
class BudgetTracker {
 public:
  explicit BudgetTracker(const AnalysisBudget& limits);

  /// Charges one symbolic step. Returns true when the budget is (now)
  /// exhausted; callers should stop exploring and degrade.
  bool ChargeStep();

  /// Bulk-charges `n` steps at once — the block-memoization replay
  /// path, which retires a whole recorded block without per-statement
  /// execution, uses this to keep step accounting identical to the
  /// executed path.
  bool ChargeSteps(uint64_t n);

  /// Charges one enqueued symbolic state.
  bool ChargeState();

  /// True once any limit has tripped (sticky).
  bool exhausted() const { return cause_ != BudgetExhaustion::kNone; }
  BudgetExhaustion cause() const { return cause_; }

  /// Marks the budget as exhausted by fault injection (FaultPlan).
  void MarkInjected() { cause_ = BudgetExhaustion::kInjected; }

  /// Effort snapshot (elapsed time computed at call time).
  BudgetCounters counters() const;

  const AnalysisBudget& limits() const { return limits_; }

 private:
  static constexpr uint64_t kSlowCheckInterval = 1024;

  /// Deadline + interner-population check, amortized over steps.
  void SlowCheck();

  AnalysisBudget limits_;
  std::chrono::steady_clock::time_point start_;
  uint64_t steps_ = 0;
  uint64_t states_ = 0;
  uint64_t expr_nodes_seen_ = 0;
  BudgetExhaustion cause_ = BudgetExhaustion::kNone;
};

}  // namespace dtaint
