#include "src/resilience/fault.h"

#include <cstdlib>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/util/strings.h"

namespace dtaint {

namespace {

bool ParseNonNegativeInt(std::string_view text, int* out) {
  if (text.empty() || text.size() > 9) return false;
  int value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  *out = value;
  return true;
}

struct SiteName {
  FaultSite site;
  std::string_view name;
};

constexpr SiteName kSiteNames[] = {
    {FaultSite::kLift, "lift"},
    {FaultSite::kSummary, "summary"},
    {FaultSite::kPathfinder, "pathfind"},
    {FaultSite::kCacheRead, "cache_read"},
    {FaultSite::kCacheWrite, "cache_write"},
    {FaultSite::kExtract, "extract"},
    {FaultSite::kLoad, "load"},
    {FaultSite::kCrash, "crash"},
    {FaultSite::kWorkerKill, "worker_kill"},
    {FaultSite::kWorkerHang, "worker_hang"},
    {FaultSite::kJournalTorn, "journal_torn"},
};

}  // namespace

std::string_view FaultSiteName(FaultSite site) {
  for (const SiteName& entry : kSiteNames) {
    if (entry.site == site) return entry.name;
  }
  return "unknown";
}

bool ParseFaultSite(std::string_view name, FaultSite* out) {
  for (const SiteName& entry : kSiteNames) {
    if (entry.name == name) {
      *out = entry.site;
      return true;
    }
  }
  return false;
}

FaultPlan& FaultPlan::Global() {
  static FaultPlan* plan = [] {
    auto* p = new FaultPlan();
    if (const char* spec = std::getenv("DTAINT_FAULTS")) {
      Status status = p->InstallSpec(spec);
      if (!status.ok()) {
        DTAINT_LOG(obs::LogLevel::kError, "fault",
                   "ignoring bad DTAINT_FAULTS: %s",
                   status.ToString().c_str());
      }
    }
    return p;
  }();
  return *plan;
}

Status FaultPlan::InstallSpec(std::string_view spec) {
  std::vector<FaultRule> rules;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find_first_of(";,", start);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) {
      if (end == spec.size()) break;
      continue;
    }

    FaultRule rule;
    // Peel "+skip" then ":count" then "@match" off the right. A '+'
    // inside the match text is left alone (only one past the '@'
    // separator can be the skip suffix... which must follow the match).
    size_t at_pos = item.find('@');
    if (size_t plus = item.rfind('+');
        plus != std::string_view::npos &&
        (at_pos == std::string_view::npos || plus > at_pos)) {
      std::string_view skip = item.substr(plus + 1);
      int value = 0;
      if (!ParseNonNegativeInt(skip, &value)) {
        return InvalidArgument("bad fault skip: " + std::string(item));
      }
      rule.skip = value;
      item = item.substr(0, plus);
    }
    if (size_t colon = item.rfind(':'); colon != std::string_view::npos) {
      std::string_view count = item.substr(colon + 1);
      if (count == "*") {
        rule.count = -1;
      } else {
        int value = 0;
        if (!ParseNonNegativeInt(count, &value) || value <= 0) {
          return InvalidArgument("bad fault count: " + std::string(item));
        }
        rule.count = value;
      }
      item = item.substr(0, colon);
    }
    if (size_t at = item.find('@'); at != std::string_view::npos) {
      rule.match = std::string(item.substr(at + 1));
      item = item.substr(0, at);
    }
    if (!ParseFaultSite(item, &rule.site)) {
      return InvalidArgument("unknown fault site: " + std::string(item));
    }
    rules.push_back(std::move(rule));
    if (end == spec.size()) break;
  }
  Install(std::move(rules));
  return Status::Ok();
}

void FaultPlan::Install(std::vector<FaultRule> rules) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  rules_.reserve(rules.size());
  for (FaultRule& rule : rules) rules_.push_back({std::move(rule), 0, 0});
  enabled_.store(!rules_.empty(), std::memory_order_release);
}

void FaultPlan::Clear() { Install({}); }

bool FaultPlan::ShouldFail(FaultSite site, std::string_view detail) {
  if (!enabled_.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  for (ActiveRule& active : rules_) {
    const FaultRule& rule = active.rule;
    if (rule.site != site) continue;
    if (!rule.match.empty() &&
        detail.find(rule.match) == std::string_view::npos) {
      continue;
    }
    int occurrence = active.seen++;
    if (occurrence < rule.skip) continue;
    if (rule.count >= 0 && active.fired >= rule.count) continue;
    ++active.fired;
    injected_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::Global().counter("resilience.faults_injected").Add();
    DTAINT_LOG(obs::LogLevel::kWarn, "fault",
               "injected fault at %.*s (%.*s), occurrence %d",
               static_cast<int>(FaultSiteName(site).size()),
               FaultSiteName(site).data(), static_cast<int>(detail.size()),
               detail.data(), occurrence + 1);
    return true;
  }
  return false;
}

}  // namespace dtaint
