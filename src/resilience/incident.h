// Incident records — the error-isolation currency of the pipeline.
//
// A corpus scan must never die because one binary is malformed or one
// function exhausts its analysis budget. Instead, each isolated
// failure is recorded as an Incident (which binary, which phase, why,
// and how much effort the budget had granted) and the scan continues.
// Incidents surface in the JSON report under the "incidents" array and
// in the fleet summary, so triage can distinguish "no vulnerabilities"
// from "analysis never completed".
#pragma once

#include <string>
#include <vector>

#include "src/resilience/budget.h"
#include "src/util/status.h"

namespace dtaint {

struct Incident {
  /// Binary/image the failure belongs to (soname or fleet label).
  std::string binary;
  /// Pipeline phase: "extract", "load", "lift", "summary", "pathfind",
  /// "cache", "analyze".
  std::string phase;
  /// Site context: function name, file path, cache key.
  std::string detail;
  /// Why it failed (never OK).
  Status status;
  /// Effort counters at the failure point; all-zero (cause "none") for
  /// non-budget incidents.
  BudgetCounters budget;

  /// "<binary>/<phase>(<detail>): <status>" — log/table form.
  std::string ToString() const;
};

/// Serializes one incident as a JSON object:
/// {"binary":..., "phase":..., "detail":..., "code":..., "message":...,
///  "budget":{"steps":..,"states":..,"elapsed_ms":..,"exhausted_by":..}}
/// The budget object is emitted only when a budget cause is set.
std::string IncidentToJson(const Incident& incident);

/// Serializes a list as a JSON array.
std::string IncidentsToJson(const std::vector<Incident>& incidents);

}  // namespace dtaint
