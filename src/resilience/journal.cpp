#include "src/resilience/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/resilience/fault.h"
#include "src/util/json.h"
#include "src/util/json_writer.h"
#include "src/util/strings.h"

namespace dtaint {

namespace {

bool ParseStatusCode(std::string_view name, StatusCode* out) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    StatusCode code = static_cast<StatusCode>(c);
    if (StatusCodeName(code) == name) {
      *out = code;
      return true;
    }
  }
  return false;
}

bool ParseBudgetExhaustion(std::string_view name, BudgetExhaustion* out) {
  for (int c = 0; c <= static_cast<int>(BudgetExhaustion::kInjected); ++c) {
    BudgetExhaustion cause = static_cast<BudgetExhaustion>(c);
    if (BudgetExhaustionName(cause) == name) {
      *out = cause;
      return true;
    }
  }
  return false;
}

std::string FieldString(const JsonValue& object, std::string_view key) {
  const JsonValue* v = object.Find(key);
  if (!v || !v->is_string()) return {};
  return v->string();
}

uint64_t FieldU64(const JsonValue& object, std::string_view key) {
  const JsonValue* v = object.Find(key);
  if (!v || !v->is_number()) return 0;
  double d = v->number();
  return d <= 0 ? 0 : static_cast<uint64_t>(d);
}

double FieldDouble(const JsonValue& object, std::string_view key) {
  const JsonValue* v = object.Find(key);
  return v && v->is_number() ? v->number() : 0.0;
}

bool FieldBool(const JsonValue& object, std::string_view key) {
  const JsonValue* v = object.Find(key);
  return v && v->is_bool() && v->boolean();
}

Status AppendIncidents(const JsonValue& parent, std::string_view key,
                       std::vector<Incident>* out) {
  const JsonValue* list = parent.Find(key);
  if (!list) return Status::Ok();
  if (!list->is_array()) return CorruptData("incidents: not an array");
  for (const JsonValue& entry : list->array()) {
    auto incident = IncidentFromJson(entry);
    if (!incident.ok()) return incident.status();
    out->push_back(std::move(*incident));
  }
  return Status::Ok();
}

}  // namespace

// ---- ScanOutcome codec ----------------------------------------------------

std::string ScanOutcomeToJson(const ScanOutcome& outcome) {
  std::string out = "{";
  out += "\"status\":\"" + JsonEscape(outcome.status) + "\",";
  out += "\"row\":\"" + JsonEscape(outcome.row) + "\",";
  out += std::string("\"complete\":") + (outcome.complete ? "true" : "false");
  out += ",\"functions\":" + std::to_string(outcome.functions);
  out += ",\"findings\":" + std::to_string(outcome.findings);
  // Raw report fragments travel as escaped *strings*, not as embedded
  // JSON: unescape(escape(x)) == x for any byte string, which is what
  // makes a journal replay reproduce the fleet report byte-for-byte.
  // Re-serializing a parsed tree would not make that guarantee.
  out += ",\"findings_json\":\"" + JsonEscape(outcome.findings_json) + "\"";
  if (outcome.has_score) {
    out += ",\"score_json\":\"" + JsonEscape(outcome.score_json) + "\"";
  }
  out += ",\"tp\":" + std::to_string(outcome.tp);
  out += ",\"fn\":" + std::to_string(outcome.fn);
  out += ",\"fp\":" + std::to_string(outcome.fp);
  out += ",\"incidents\":" + IncidentsToJson(outcome.incidents);
  out += "}";
  return out;
}

Result<ScanOutcome> ScanOutcomeFromJson(const JsonValue& value) {
  if (!value.is_object()) return CorruptData("outcome: not an object");
  ScanOutcome outcome;
  outcome.status = FieldString(value, "status");
  if (outcome.status.empty()) return CorruptData("outcome: missing status");
  outcome.row = FieldString(value, "row");
  outcome.complete = FieldBool(value, "complete");
  outcome.functions = FieldU64(value, "functions");
  outcome.findings = FieldU64(value, "findings");
  const JsonValue* findings = value.Find("findings_json");
  if (!findings || !findings->is_string()) {
    return CorruptData("outcome: missing findings_json");
  }
  outcome.findings_json = findings->string();
  if (const JsonValue* score = value.Find("score_json");
      score && score->is_string()) {
    outcome.has_score = true;
    outcome.score_json = score->string();
  }
  outcome.tp = FieldU64(value, "tp");
  outcome.fn = FieldU64(value, "fn");
  outcome.fp = FieldU64(value, "fp");
  Status status = AppendIncidents(value, "incidents", &outcome.incidents);
  if (!status.ok()) return status;
  return outcome;
}

Result<ScanOutcome> ScanOutcomeFromJson(std::string_view json) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  return ScanOutcomeFromJson(*parsed);
}

Result<Incident> IncidentFromJson(const JsonValue& value) {
  if (!value.is_object()) return CorruptData("incident: not an object");
  Incident incident;
  incident.binary = FieldString(value, "binary");
  incident.phase = FieldString(value, "phase");
  incident.detail = FieldString(value, "detail");
  StatusCode code = StatusCode::kInternal;
  if (!ParseStatusCode(FieldString(value, "code"), &code)) {
    return CorruptData("incident: bad status code");
  }
  incident.status = Status(code, FieldString(value, "message"));
  if (const JsonValue* budget = value.Find("budget");
      budget && budget->is_object()) {
    incident.budget.steps = FieldU64(*budget, "steps");
    incident.budget.states = FieldU64(*budget, "states");
    incident.budget.elapsed_ms = FieldDouble(*budget, "elapsed_ms");
    incident.budget.expr_nodes = FieldU64(*budget, "expr_nodes");
    if (!ParseBudgetExhaustion(FieldString(*budget, "exhausted_by"),
                               &incident.budget.exhausted_by)) {
      return CorruptData("incident: bad exhausted_by");
    }
  }
  return incident;
}

// ---- JournalRecord codec --------------------------------------------------

std::string JournalRecordToLine(const JournalRecord& record) {
  std::string out = "{\"v\":" + std::to_string(kJournalSchemaVersion);
  out += ",\"type\":\"" + JsonEscape(record.type) + "\"";
  out += ",\"image\":\"" + JsonEscape(record.image) + "\"";
  out += ",\"fp\":\"" + JsonEscape(record.fingerprint) + "\"";
  if (record.type != "image_begin") {
    out += ",\"attempts\":" + std::to_string(record.attempts);
    out += ",\"worker_restarts\":" + std::to_string(record.worker_restarts);
    if (!record.reason.empty()) {
      out += ",\"reason\":\"" + JsonEscape(record.reason) + "\"";
    }
    out += ",\"incidents\":" + IncidentsToJson(record.incidents);
    if (record.outcome) {
      out += ",\"outcome\":" + ScanOutcomeToJson(*record.outcome);
    }
  }
  out += "}";
  return out;
}

Result<JournalRecord> JournalRecordFromLine(std::string_view line) {
  auto parsed = ParseJson(line);
  if (!parsed.ok()) return parsed.status();
  if (!parsed->is_object()) return CorruptData("journal: not an object");
  const JsonValue* version = parsed->Find("v");
  if (!version || !version->is_number() ||
      static_cast<int>(version->number()) != kJournalSchemaVersion) {
    return CorruptData("journal: bad schema version");
  }
  JournalRecord record;
  record.type = FieldString(*parsed, "type");
  if (record.type != "image_begin" && record.type != "image_done" &&
      record.type != "image_quarantined") {
    return CorruptData("journal: unknown record type");
  }
  record.image = FieldString(*parsed, "image");
  record.fingerprint = FieldString(*parsed, "fp");
  if (record.fingerprint.empty()) {
    return CorruptData("journal: missing fingerprint");
  }
  record.attempts = static_cast<uint32_t>(FieldU64(*parsed, "attempts"));
  record.worker_restarts =
      static_cast<uint32_t>(FieldU64(*parsed, "worker_restarts"));
  record.reason = FieldString(*parsed, "reason");
  Status status = AppendIncidents(*parsed, "incidents", &record.incidents);
  if (!status.ok()) return status;
  if (const JsonValue* outcome = parsed->Find("outcome")) {
    auto decoded = ScanOutcomeFromJson(*outcome);
    if (!decoded.ok()) return decoded.status();
    record.outcome = std::move(*decoded);
  }
  if (record.type == "image_done" && !record.outcome) {
    return CorruptData("journal: image_done without outcome");
  }
  return record;
}

// ---- ScanJournal ----------------------------------------------------------

ScanJournal::~ScanJournal() {
  if (fd_ >= 0) ::close(fd_);
}

ScanJournal::ScanJournal(ScanJournal&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

ScanJournal& ScanJournal::operator=(ScanJournal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

std::string ScanJournal::PathFor(const std::string& dir) {
  return (std::filesystem::path(dir) / "journal.ndjson").string();
}

Result<ScanJournal> ScanJournal::Open(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Internal("journal: cannot create " + dir + ": " + ec.message());
  }
  ScanJournal journal;
  journal.path_ = PathFor(dir);
  journal.fd_ = ::open(journal.path_.c_str(),
                       O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (journal.fd_ < 0) {
    return Internal("journal: cannot open " + journal.path_ + ": " +
                    std::strerror(errno));
  }
  return journal;
}

Status ScanJournal::Append(const JournalRecord& record) {
  if (fd_ < 0) return Internal("journal: not open");
  std::string line = JournalRecordToLine(record);
  if (FaultPlan::Global().ShouldFail(FaultSite::kJournalTorn,
                                     record.type + ":" + record.image)) {
    // Deterministic torn write: half the record, no newline — what a
    // machine crash mid-write leaves. The process carries on (unlike a
    // real crash) so tests can observe the replay skipping it.
    line.resize(line.size() / 2);
  } else {
    line += '\n';
  }
  size_t off = 0;
  while (off < line.size()) {
    ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Internal(std::string("journal: write failed: ") +
                      std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<JournalReplay> ScanJournal::Replay(const std::string& dir) {
  JournalReplay replay;
  std::string path = PathFor(dir);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return replay;
  std::ifstream in(path, std::ios::binary);
  if (!in) return Internal("journal: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();

  std::map<std::string, std::string, std::less<>> begun;  // fp -> image
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line(text.data() + pos,
                          (eol == std::string::npos ? text.size() : eol) -
                              pos);
    pos = eol == std::string::npos ? text.size() : eol + 1;
    if (line.empty()) continue;
    auto record = JournalRecordFromLine(line);
    if (!record.ok()) {
      ++replay.garbage_lines;
      continue;
    }
    ++replay.records;
    if (record->type == "image_begin") {
      begun.emplace(record->fingerprint, record->image);
    } else if (record->type == "image_done") {
      begun.erase(record->fingerprint);
      replay.done[record->fingerprint] = std::move(*record);
    } else {  // image_quarantined
      begun.erase(record->fingerprint);
      replay.quarantined[record->fingerprint] = std::move(*record);
    }
  }
  for (auto& [fp, image] : begun) {
    // Begun, never resolved: the image the dead run was scanning.
    if (!replay.done.count(fp) && !replay.quarantined.count(fp)) {
      replay.in_flight.push_back(image);
    }
  }
  return replay;
}

}  // namespace dtaint
