#include "src/resilience/supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <new>
#include <thread>
#include <utility>

#include "src/obs/events.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/resilience/fault.h"
#include "src/resilience/retry.h"
#include "src/util/hash.h"

namespace dtaint {

namespace {

using Clock = std::chrono::steady_clock;

constexpr char kWireMagic[4] = {'D', 'T', 'S', 'W'};

uint32_t ReadU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

void PutU32Le(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

}  // namespace

std::string_view WorkerFailureName(WorkerFailure failure) {
  switch (failure) {
    case WorkerFailure::kTimeout:
      return "timeout";
    case WorkerFailure::kSignal:
      return "signal";
    case WorkerFailure::kOom:
      return "oom";
    case WorkerFailure::kExit:
      return "exit";
    case WorkerFailure::kWire:
      return "wire";
  }
  return "unknown";
}

AnalysisBudget TightenBudget(const AnalysisBudget& base, int attempt) {
  if (attempt <= 1) return base;
  // Degraded ceilings for the first retry; every further retry halves
  // them again. Generous enough that an ordinary firmware image still
  // completes (degraded summaries are sound), tight enough that an
  // image which only crashes when allowed to run long dies cheap.
  constexpr double kDeadlineMs = 5'000;
  constexpr uint64_t kMaxSteps = 2'000'000;
  constexpr uint64_t kMaxStates = 65'536;
  constexpr uint64_t kMaxExprNodes = 8'000'000;
  int shift = std::min(attempt - 2, 16);
  auto cap = [shift](uint64_t base_limit, uint64_t degraded) {
    degraded >>= shift;
    if (degraded == 0) degraded = 1;
    return base_limit == 0 ? degraded : std::min(base_limit, degraded);
  };
  AnalysisBudget out = base;
  double deadline = kDeadlineMs / static_cast<double>(1 << shift);
  out.deadline_ms =
      base.deadline_ms <= 0 ? deadline : std::min(base.deadline_ms, deadline);
  out.max_steps = cap(base.max_steps, kMaxSteps);
  out.max_states = cap(base.max_states, kMaxStates);
  out.max_expr_nodes = cap(base.max_expr_nodes, kMaxExprNodes);
  return out;
}

std::string EncodeWireResult(const ScanOutcome& outcome) {
  std::string payload = ScanOutcomeToJson(outcome);
  std::string frame;
  frame.reserve(12 + payload.size());
  frame.append(kWireMagic, sizeof(kWireMagic));
  PutU32Le(&frame, kWireVersion);
  PutU32Le(&frame, static_cast<uint32_t>(payload.size()));
  frame += payload;
  return frame;
}

Result<ScanOutcome> DecodeWireResult(std::string_view frame) {
  if (frame.size() < 12) return CorruptData("wire: short frame");
  if (std::memcmp(frame.data(), kWireMagic, sizeof(kWireMagic)) != 0) {
    return CorruptData("wire: bad magic");
  }
  if (ReadU32Le(frame.data() + 4) != kWireVersion) {
    return CorruptData("wire: version skew");
  }
  uint32_t payload_len = ReadU32Le(frame.data() + 8);
  // Exact length: a short read is a child that died mid-write, trailing
  // bytes are a framing bug — both are failures, never a guess.
  if (frame.size() != 12 + static_cast<size_t>(payload_len)) {
    return CorruptData("wire: truncated frame");
  }
  return ScanOutcomeFromJson(frame.substr(12));
}

// ---- ScanSupervisor -------------------------------------------------------

/// One live forked worker.
struct ScanSupervisor::Active {
  pid_t pid = -1;
  int fd = -1;  // read end of the result pipe (non-blocking)
  size_t index = 0;
  Clock::time_point deadline;
  bool has_deadline = false;
  bool timed_out = false;
  std::string buf;  // accumulated wire frame
};

ScanSupervisor::ScanSupervisor(SupervisorConfig config)
    : config_(std::move(config)) {
  if (config_.workers < 1) config_.workers = 1;
  if (config_.max_retries < 0) config_.max_retries = 0;
}

bool ScanSupervisor::SpawnWorker(const TaskSpec& task, size_t index,
                                 int attempt, const TaskFn& fn, Active* slot) {
  int fds[2];
  if (::pipe(fds) != 0) {
    DTAINT_LOG(obs::LogLevel::kWarn, "supervisor",
               "pipe failed (%s); running %s in-process",
               std::strerror(errno), task.label.c_str());
    return false;
  }
  pid_t pid = -1;
  {
    // Hold every singleton lock the child might need across the fork:
    // the heartbeat thread emits events concurrently, and a child
    // forked while another thread holds one of these mutexes would
    // deadlock on its first emission (the lock owner doesn't exist in
    // the child). The locks are only ever taken one-at-a-time by their
    // owners (never nested), so acquiring all of them here cannot
    // deadlock either.
    auto stream_lock = obs::EventStream::Global().LockForFork();
    auto metrics_lock = obs::MetricsRegistry::Global().LockForFork();
    auto recorder_lock = obs::FlightRecorder::Global().LockForFork();
    auto fault_lock = FaultPlan::Global().LockForFork();
    pid = ::fork();
    if (pid == 0) {
      // This thread did the forking, so the child's copy of each mutex
      // is owned by the (only surviving) thread — unlocking is legal.
      fault_lock.unlock();
      recorder_lock.unlock();
      metrics_lock.unlock();
      stream_lock.unlock();
      ::close(fds[0]);
      RunChild(task, index, attempt, fn, fds[1]);
    }
  }
  if (pid < 0) {
    DTAINT_LOG(obs::LogLevel::kWarn, "supervisor",
               "fork failed (%s); running %s in-process",
               std::strerror(errno), task.label.c_str());
    ::close(fds[0]);
    ::close(fds[1]);
    return false;
  }
  ::close(fds[1]);
  int flags = ::fcntl(fds[0], F_GETFL, 0);
  ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
  slot->pid = pid;
  slot->fd = fds[0];
  slot->index = index;
  slot->has_deadline = config_.image_timeout_ms > 0;
  if (slot->has_deadline) {
    slot->deadline =
        Clock::now() + std::chrono::milliseconds(config_.image_timeout_ms);
  }
  slot->timed_out = false;
  slot->buf.clear();
  return true;
}

void ScanSupervisor::RunChild(const TaskSpec& task, size_t index, int attempt,
                              const TaskFn& fn, int pipe_fd) {
  // Resource limits first: they bound everything that follows,
  // including the fault sites and the scan itself.
  if (config_.mem_limit_mb > 0) {
    struct rlimit lim;
    lim.rlim_cur = lim.rlim_max =
        static_cast<rlim_t>(config_.mem_limit_mb) << 20;
    ::setrlimit(RLIMIT_AS, &lim);
  }
  uint32_t cpu_s = config_.cpu_limit_s;
  if (cpu_s == 0 && config_.image_timeout_ms > 0) {
    // CPU backstop behind the wall-clock watchdog: a worker that pegs
    // a core past the deadline dies even if the parent is wedged.
    cpu_s = config_.image_timeout_ms / 1000 + 2;
  }
  if (cpu_s > 0) {
    struct rlimit lim;
    lim.rlim_cur = cpu_s;
    lim.rlim_max = cpu_s + 1;
    ::setrlimit(RLIMIT_CPU, &lim);
  }
  // The synthetic poison images. Note each child starts from a fresh
  // copy of the parent's FaultPlan occurrence counters, so a
  // worker_kill rule fires in *every* forked attempt regardless of its
  // count — exactly what a deterministically-crashing image does.
  if (FaultPlan::Global().ShouldFail(FaultSite::kWorkerKill, task.label)) {
    ::raise(SIGKILL);
  }
  if (FaultPlan::Global().ShouldFail(FaultSite::kWorkerHang, task.label)) {
    for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::string frame;
  try {
    frame = EncodeWireResult(fn(index, TightenBudget(config_.budget, attempt)));
  } catch (const std::bad_alloc&) {
    ::_exit(kWorkerExitOom);
  } catch (...) {
    ::_exit(kWorkerExitError);
  }
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = ::write(pipe_fd, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::_exit(kWorkerExitError);
    }
    off += static_cast<size_t>(n);
  }
  // _exit, never exit: the child shares the parent's event-stream fd
  // and singletons; running atexit handlers or destructors here would
  // close/flush state the parent still owns.
  ::_exit(0);
}

bool ScanSupervisor::RunInProcess(const TaskSpec& task, size_t index,
                                  int attempt, const TaskFn& fn,
                                  ScanOutcome* outcome, WorkerFailure* failure,
                                  std::string* detail) {
  // The worker fault sites still apply, as synthetic failures instead
  // of real deaths — so the retry/quarantine state machine is testable
  // deterministically without fork. (In-process, the plan's occurrence
  // counters are shared across attempts, so `worker_kill@img` with the
  // default count of 1 fails once and lets the retry succeed.)
  FaultPlan& plan = FaultPlan::Global();
  if (plan.ShouldFail(FaultSite::kWorkerKill, task.label)) {
    *failure = WorkerFailure::kSignal;
    *detail = "injected worker_kill";
    return false;
  }
  if (plan.ShouldFail(FaultSite::kWorkerHang, task.label)) {
    *failure = WorkerFailure::kTimeout;
    *detail = "injected worker_hang";
    return false;
  }
  try {
    *outcome = fn(index, TightenBudget(config_.budget, attempt));
    return true;
  } catch (const std::bad_alloc&) {
    *failure = WorkerFailure::kOom;
    *detail = "allocation failed";
  } catch (const std::exception& e) {
    *failure = WorkerFailure::kExit;
    *detail = e.what();
  } catch (...) {
    *failure = WorkerFailure::kExit;
    *detail = "unknown exception";
  }
  return false;
}

std::vector<TaskResult> ScanSupervisor::Run(const std::vector<TaskSpec>& tasks,
                                            const TaskFn& fn) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::EventStream& stream = obs::EventStream::Global();
  stats_ = SupervisorStats{};
  stats_.tasks = tasks.size();
  metrics.counter("supervisor.tasks").Add(tasks.size());

  std::vector<TaskResult> results(tasks.size());

  JournalReplay replay;
  if (!config_.journal_dir.empty()) {
    if (config_.resume) {
      auto replayed = ScanJournal::Replay(config_.journal_dir);
      if (replayed.ok()) {
        replay = std::move(*replayed);
      } else {
        DTAINT_LOG(obs::LogLevel::kWarn, "supervisor",
                   "journal replay failed, running from scratch: %s",
                   replayed.status().ToString().c_str());
      }
      stats_.journal_records_replayed = replay.records;
      stats_.journal_garbage_lines = replay.garbage_lines;
      metrics.counter("supervisor.journal_garbage_lines")
          .Add(replay.garbage_lines);
      if (stream.enabled()) {
        obs::Event event("journal_replay");
        event.Num("records", static_cast<uint64_t>(replay.records))
            .Num("garbage_lines", static_cast<uint64_t>(replay.garbage_lines))
            .Num("done", static_cast<uint64_t>(replay.done.size()))
            .Num("quarantined",
                 static_cast<uint64_t>(replay.quarantined.size()))
            .Num("in_flight", static_cast<uint64_t>(replay.in_flight.size()));
        stream.Emit(event);
      }
    }
    auto journal = ScanJournal::Open(config_.journal_dir);
    if (journal.ok()) {
      journal_ = std::move(*journal);
    } else {
      DTAINT_LOG(obs::LogLevel::kError, "supervisor",
                 "continuing without a journal: %s",
                 journal.status().ToString().c_str());
    }
  }

  struct TaskState {
    int attempt = 0;  // attempts used so far
    std::vector<int> backoff_plan;
    std::vector<Incident> incidents;
  };
  std::vector<TaskState> states(tasks.size());

  struct Pending {
    size_t index;
    Clock::time_point not_before;
  };
  std::deque<Pending> pending;
  bool stopped = false;

  auto emit_resumed = [&](const TaskSpec& task, const TaskResult& result,
                          std::string_view status) {
    ++stats_.resumed;
    metrics.counter("supervisor.resumed").Add();
    if (stream.enabled()) {
      obs::Event event("image_resumed");
      event.Str("image", task.label)
          .Str("status", status)
          .Num("attempts", static_cast<uint64_t>(result.attempts));
      stream.Emit(event);
    }
  };

  Clock::time_point start = Clock::now();
  for (size_t i = 0; i < tasks.size(); ++i) {
    const TaskSpec& task = tasks[i];
    if (auto it = replay.done.find(task.fingerprint); it != replay.done.end()) {
      TaskResult& result = results[i];
      result.state = TaskResult::State::kDone;
      result.outcome = *it->second.outcome;
      result.attempts = it->second.attempts;
      result.worker_restarts = it->second.worker_restarts;
      result.incidents = it->second.incidents;
      result.resumed = true;
      emit_resumed(task, result, result.outcome.status);
      continue;
    }
    if (auto it = replay.quarantined.find(task.fingerprint);
        it != replay.quarantined.end()) {
      TaskResult& result = results[i];
      result.state = TaskResult::State::kQuarantined;
      result.attempts = it->second.attempts;
      result.worker_restarts = it->second.worker_restarts;
      result.incidents = it->second.incidents;
      result.quarantine_reason = it->second.reason;
      result.resumed = true;
      emit_resumed(task, result, "quarantined");
      continue;
    }
    pending.push_back({i, start});
  }

  auto journal_append = [&](const JournalRecord& record) {
    if (!journal_.open()) return;
    Status status = journal_.Append(record);
    if (!status.ok()) {
      DTAINT_LOG(obs::LogLevel::kWarn, "supervisor", "journal append: %s",
                 status.ToString().c_str());
    }
  };

  auto handle_success = [&](size_t index, ScanOutcome outcome) {
    const TaskSpec& task = tasks[index];
    TaskState& st = states[index];
    TaskResult& result = results[index];
    result.state = TaskResult::State::kDone;
    result.outcome = std::move(outcome);
    result.attempts = static_cast<uint32_t>(st.attempt);
    result.worker_restarts = static_cast<uint32_t>(st.attempt - 1);
    result.incidents = st.incidents;
    JournalRecord record;
    record.type = "image_done";
    record.image = task.label;
    record.fingerprint = task.fingerprint;
    record.attempts = result.attempts;
    record.worker_restarts = result.worker_restarts;
    record.incidents = result.incidents;
    record.outcome = result.outcome;
    journal_append(record);
  };

  auto handle_failure = [&](size_t index, WorkerFailure failure,
                            const std::string& detail) {
    const TaskSpec& task = tasks[index];
    TaskState& st = states[index];
    ++stats_.worker_failures;
    metrics.counter("supervisor.worker_failures").Add();

    Incident incident;
    incident.binary = task.label;
    incident.phase = "supervisor";
    incident.detail = "attempt " + std::to_string(st.attempt);
    std::string message = "worker " + std::string(WorkerFailureName(failure));
    if (!detail.empty()) message += ": " + detail;
    incident.status = Internal(message);
    st.incidents.push_back(incident);
    EmitIncident(stream, incident);
    if (stream.enabled()) {
      obs::Event event("worker_exit");
      event.Str("image", task.label)
          .Num("attempt", st.attempt)
          .Str("failure", WorkerFailureName(failure))
          .Str("detail", detail);
      stream.Emit(event);
    }

    if (st.attempt <= config_.max_retries) {
      int backoff_us =
          static_cast<size_t>(st.attempt) <= st.backoff_plan.size()
              ? st.backoff_plan[static_cast<size_t>(st.attempt - 1)]
              : 0;
      ++stats_.retries;
      metrics.counter("supervisor.retries").Add();
      if (stream.enabled()) {
        obs::Event event("image_retry");
        event.Str("image", task.label)
            .Num("next_attempt", st.attempt + 1)
            .Str("failure", WorkerFailureName(failure))
            .Num("backoff_us", static_cast<uint64_t>(backoff_us));
        stream.Emit(event);
      }
      pending.push_back(
          {index, Clock::now() + std::chrono::microseconds(backoff_us)});
      return;
    }

    // Quarantine: out of attempts. The terminal incident names the
    // final failure mode so the fleet report explains the hole.
    TaskResult& result = results[index];
    std::string reason = "worker " + std::string(WorkerFailureName(failure)) +
                         " after " + std::to_string(st.attempt) + " attempts";
    Incident verdict;
    verdict.binary = task.label;
    verdict.phase = "supervisor";
    verdict.detail = "quarantine";
    verdict.status = Internal(reason);
    st.incidents.push_back(verdict);
    EmitIncident(stream, verdict);

    result.state = TaskResult::State::kQuarantined;
    result.attempts = static_cast<uint32_t>(st.attempt);
    result.worker_restarts = static_cast<uint32_t>(st.attempt);
    result.incidents = st.incidents;
    result.quarantine_reason = reason;
    ++stats_.quarantined;
    metrics.counter("supervisor.quarantined").Add();
    if (stream.enabled()) {
      obs::Event event("image_quarantined");
      event.Str("image", task.label)
          .Num("attempts", static_cast<uint64_t>(result.attempts))
          .Str("reason", reason);
      stream.Emit(event);
    }
    JournalRecord record;
    record.type = "image_quarantined";
    record.image = task.label;
    record.fingerprint = task.fingerprint;
    record.attempts = result.attempts;
    record.worker_restarts = result.worker_restarts;
    record.reason = reason;
    record.incidents = result.incidents;
    journal_append(record);
    if (config_.stop_on_failure) stopped = true;
  };

  std::vector<Active> active;

  auto dispatch = [&](size_t index) {
    const TaskSpec& task = tasks[index];
    TaskState& st = states[index];
    ++st.attempt;
    if (st.attempt == 1) {
      RetryPolicy policy;
      policy.attempts = 1 + config_.max_retries;
      policy.initial_backoff_us = config_.backoff_initial_us;
      policy.max_total_backoff_us = config_.backoff_total_cap_us;
      policy.jitter_seed = Fnv1a(task.fingerprint);
      st.backoff_plan = RetryScheduleUs(policy);
      JournalRecord record;
      record.type = "image_begin";
      record.image = task.label;
      record.fingerprint = task.fingerprint;
      journal_append(record);
      // The kill-mid-scan oracle: hard supervisor death right after
      // the begin record is durable — resume must re-run this image.
      if (FaultPlan::Global().ShouldFail(FaultSite::kCrash, task.label)) {
        std::abort();
      }
    }
    if (!config_.force_in_process) {
      Active slot;
      if (SpawnWorker(task, index, st.attempt, fn, &slot)) {
        ++stats_.workers_spawned;
        metrics.counter("supervisor.workers_spawned").Add();
        active.push_back(std::move(slot));
        return;
      }
      ++stats_.in_process_fallbacks;
      metrics.counter("supervisor.in_process_fallbacks").Add();
    }
    ScanOutcome outcome;
    WorkerFailure failure = WorkerFailure::kExit;
    std::string detail;
    results[index].in_process = true;
    if (RunInProcess(task, index, st.attempt, fn, &outcome, &failure,
                     &detail)) {
      handle_success(index, std::move(outcome));
    } else {
      handle_failure(index, failure, detail);
    }
  };

  auto reap = [&](Active& slot, int status) {
    if (slot.timed_out) {
      handle_failure(slot.index, WorkerFailure::kTimeout,
                     "exceeded " + std::to_string(config_.image_timeout_ms) +
                         "ms watchdog");
      return;
    }
    if (WIFSIGNALED(status)) {
      handle_failure(slot.index, WorkerFailure::kSignal,
                     "signal " + std::to_string(WTERMSIG(status)));
      return;
    }
    int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    if (code == kWorkerExitOom) {
      handle_failure(slot.index, WorkerFailure::kOom,
                     "allocation failed under mem limit");
      return;
    }
    if (code != 0) {
      handle_failure(slot.index, WorkerFailure::kExit,
                     "exit code " + std::to_string(code));
      return;
    }
    auto outcome = DecodeWireResult(slot.buf);
    if (!outcome.ok()) {
      handle_failure(slot.index, WorkerFailure::kWire,
                     outcome.status().message());
      return;
    }
    handle_success(slot.index, std::move(*outcome));
  };

  while (!pending.empty() || !active.empty()) {
    Clock::time_point now = Clock::now();

    if (stopped && !pending.empty()) {
      for (const Pending& p : pending) {
        TaskResult& result = results[p.index];
        if (result.state == TaskResult::State::kSkipped) {
          result.attempts = static_cast<uint32_t>(states[p.index].attempt);
          result.incidents = states[p.index].incidents;
        }
      }
      pending.clear();
      continue;
    }

    // Fill free worker slots with whatever is eligible to run.
    bool dispatched = true;
    while (dispatched && !stopped &&
           static_cast<int>(active.size()) < config_.workers) {
      dispatched = false;
      for (size_t k = 0; k < pending.size(); ++k) {
        if (pending[k].not_before <= now) {
          size_t index = pending[k].index;
          pending.erase(pending.begin() + static_cast<ptrdiff_t>(k));
          dispatch(index);  // may push a retry back onto `pending`
          dispatched = true;
          break;
        }
      }
    }

    if (active.empty()) {
      if (pending.empty()) break;
      // Everything eligible has run; sleep toward the earliest backoff.
      Clock::time_point earliest = pending.front().not_before;
      for (const Pending& p : pending) {
        earliest = std::min(earliest, p.not_before);
      }
      if (earliest > now) {
        std::this_thread::sleep_for(
            std::min<Clock::duration>(earliest - now,
                                      std::chrono::milliseconds(50)));
      }
      continue;
    }

    std::vector<struct pollfd> fds;
    fds.reserve(active.size());
    int timeout_ms = 200;
    for (const Active& slot : active) {
      fds.push_back({slot.fd, POLLIN, 0});
      if (slot.has_deadline && !slot.timed_out) {
        auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                             slot.deadline - now)
                             .count();
        timeout_ms = std::max(
            0, std::min<int>(timeout_ms, static_cast<int>(remaining)));
      }
    }
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    now = Clock::now();

    bool reaped = false;
    for (size_t k = 0; k < active.size() && !reaped; ++k) {
      Active& slot = active[k];
      if (fds[k].revents & (POLLIN | POLLHUP | POLLERR)) {
        char buf[4096];
        for (;;) {
          ssize_t n = ::read(slot.fd, buf, sizeof(buf));
          if (n > 0) {
            slot.buf.append(buf, static_cast<size_t>(n));
            continue;
          }
          if (n < 0 && errno == EINTR) continue;
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          // EOF (or a hard read error): the child is done writing.
          ::close(slot.fd);
          int status = 0;
          while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {
          }
          reap(slot, status);
          active.erase(active.begin() + static_cast<ptrdiff_t>(k));
          reaped = true;
          break;
        }
      }
    }
    if (reaped) continue;

    for (Active& slot : active) {
      if (slot.has_deadline && !slot.timed_out && now >= slot.deadline) {
        slot.timed_out = true;
        ::kill(slot.pid, SIGKILL);  // EOF + reap happen on the next poll
      }
    }
  }

  return results;
}

}  // namespace dtaint
