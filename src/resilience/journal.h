// Crash-safe scan checkpoint journal — the resume half of the scan
// supervisor (src/resilience/supervisor.h).
//
// A fleet run over thousands of firmware images must survive kill -9
// of the *supervisor* without losing the hours already spent. Every
// image outcome is appended to `<journal-dir>/journal.ndjson` as one
// O_APPEND write(2) (the same crash-safety contract as the event
// stream, src/obs/events.h): each record that was appended before the
// kill is on disk as a whole parseable line, and a torn final line is
// skipped by the replay. On `corpus_scan --resume`, the journal is
// replayed, images whose content fingerprint has an `image_done` or
// `image_quarantined` record are satisfied from the journal without
// re-analysis, and the merged fleet report is byte-identical to an
// uninterrupted run's (the resume oracle in tests/supervisor_test.cpp
// kills a scan at a fault-injected point and asserts exactly that).
//
// Record schema (NDJSON, one object per line, versioned):
//
//   {"v":1,"type":"image_begin","image":L,"fp":F}
//   {"v":1,"type":"image_done","image":L,"fp":F,"attempts":N,
//    "worker_restarts":R,"incidents":[...],"outcome":{...}}
//   {"v":1,"type":"image_quarantined","image":L,"fp":F,"attempts":N,
//    "worker_restarts":R,"reason":S,"incidents":[...]}
//
// `fp` is the content fingerprint of the packed image blob
// (Fingerprint128 hex), so a journal never resumes a *different*
// image that happens to share a label, and survives corpus reordering.
//
// The journal is at-least-once, not exactly-once: a record lost to a
// torn write (or to the kJournalTorn fault site) only costs that
// image a re-scan on resume — it can never corrupt the merged report,
// because the replay drops any line that does not parse as a whole
// versioned record.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/resilience/incident.h"
#include "src/util/status.h"

namespace dtaint {

class JsonValue;

/// Bumped whenever a record's shape changes; replay ignores records
/// from other versions (they count as garbage).
inline constexpr int kJournalSchemaVersion = 1;

/// Everything the fleet report needs from one image's scan — the unit
/// the supervisor's workers return over the wire and the journal
/// checkpoints. JSON fragments (findings, score) are carried as raw
/// pre-serialized strings so a journal replay reproduces the fleet
/// report byte-for-byte.
struct ScanOutcome {
  /// "ok", "unextractable", or "failed" (the supervisor adds
  /// "quarantined" at the TaskResult level, never here).
  std::string status;
  /// Human table cell ("ok", "unextractable", "FAILED: extract", ...).
  std::string row;
  bool complete = false;
  uint64_t functions = 0;
  uint64_t findings = 0;
  /// Raw JSON array (report/json.h FindingsToJson output), embedded
  /// verbatim in the fleet report.
  std::string findings_json = "[]";
  bool has_score = false;
  /// Raw JSON object (report/scoring.h ScoreToJson output).
  std::string score_json;
  /// Detection tallies, already folded (fp includes safe-twin hits);
  /// they count toward fleet totals only when `complete`.
  uint64_t tp = 0;
  uint64_t fn = 0;
  uint64_t fp = 0;
  /// Analysis incidents, relabeled with the fleet image label.
  std::vector<Incident> incidents;
};

/// Serializes an outcome as one JSON object (stable key order — the
/// codec is part of the resume oracle's byte-identity contract).
std::string ScanOutcomeToJson(const ScanOutcome& outcome);

/// Inverse of ScanOutcomeToJson; also accepts an already-parsed value.
Result<ScanOutcome> ScanOutcomeFromJson(std::string_view json);
Result<ScanOutcome> ScanOutcomeFromJson(const JsonValue& value);

/// Parses one incident serialized by IncidentToJson (incident.h).
Result<Incident> IncidentFromJson(const JsonValue& value);

struct JournalRecord {
  /// "image_begin", "image_done", or "image_quarantined".
  std::string type;
  std::string image;        // fleet label (human)
  std::string fingerprint;  // content identity (machine)
  uint32_t attempts = 1;
  uint32_t worker_restarts = 0;
  std::string reason;  // quarantine reason; empty otherwise
  /// Supervisor-level incidents (worker deaths, quarantine) — kept
  /// separate from outcome.incidents (analysis-level) so a resumed
  /// run rebuilds the fleet incident list in the same order.
  std::vector<Incident> incidents;
  std::optional<ScanOutcome> outcome;  // image_done only
};

/// One line, no trailing newline.
std::string JournalRecordToLine(const JournalRecord& record);
/// Strict inverse: wrong version, unknown type, or missing fields is
/// an error (replay counts it as garbage).
Result<JournalRecord> JournalRecordFromLine(std::string_view line);

/// What a replay recovered. Lookup is by content fingerprint.
struct JournalReplay {
  std::map<std::string, JournalRecord, std::less<>> done;
  std::map<std::string, JournalRecord, std::less<>> quarantined;
  /// Images with an image_begin but no terminal record — what the
  /// dead scan was chewing on (they re-run on resume).
  std::vector<std::string> in_flight;
  size_t records = 0;        // well-formed records folded
  size_t garbage_lines = 0;  // torn/corrupt lines skipped
};

/// Append-only journal writer. One O_APPEND write(2) per record; no
/// buffering, so a SIGKILL after Append returns can never lose the
/// record (only a machine crash can, and replay tolerates the torn
/// line that leaves).
class ScanJournal {
 public:
  ScanJournal() = default;
  ~ScanJournal();
  ScanJournal(ScanJournal&& other) noexcept;
  ScanJournal& operator=(ScanJournal&& other) noexcept;
  ScanJournal(const ScanJournal&) = delete;
  ScanJournal& operator=(const ScanJournal&) = delete;

  /// Creates `dir` (and parents) if needed and opens the journal file
  /// for appending. The file is never truncated — interrupted runs
  /// and their resumes share one journal.
  static Result<ScanJournal> Open(const std::string& dir);

  /// Journal file path for a given directory.
  static std::string PathFor(const std::string& dir);

  /// Appends one record as a single write. Consults the kJournalTorn
  /// fault site (detail "type:image") and then deliberately writes
  /// only a prefix with no newline — the deterministic torn-write the
  /// replay tests exercise.
  Status Append(const JournalRecord& record);

  bool open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Replays `dir`'s journal. A missing directory or file is an empty
  /// replay (resume of a fresh journal is a full run), not an error;
  /// only an unreadable existing file fails.
  static Result<JournalReplay> Replay(const std::string& dir);

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace dtaint
