// Bounded retry-with-backoff for transient I/O.
//
// The disk tier of the summary cache lives on whatever storage a
// firmware fleet scanner gets — NFS, overlay filesystems, throttled
// cloud disks — where reads and writes fail transiently. Each cache
// I/O is retried a few times with doubling backoff; if the operation
// still fails the caller falls back to cache-off for that entry (the
// cache is an accelerator, never a correctness dependency).
#pragma once

#include <chrono>
#include <thread>

namespace dtaint {

struct RetryPolicy {
  int attempts = 3;             // total tries, including the first
  int initial_backoff_us = 200; // sleep before try 2; doubles per retry
};

/// Runs `op` (a callable returning bool, true = success) up to
/// `policy.attempts` times, sleeping with doubling backoff between
/// tries. Returns whether it eventually succeeded; `*retries`, when
/// non-null, receives the number of re-tries taken (0 = first try
/// succeeded or never succeeded... see return value for which).
template <typename Op>
bool RetryIo(const RetryPolicy& policy, Op&& op, int* retries = nullptr) {
  int backoff_us = policy.initial_backoff_us;
  for (int attempt = 0; attempt < policy.attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      backoff_us *= 2;
      if (retries) ++*retries;
    }
    if (op()) return true;
  }
  return false;
}

}  // namespace dtaint
