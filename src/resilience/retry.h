// Bounded retry-with-backoff for transient I/O.
//
// The disk tier of the summary cache lives on whatever storage a
// firmware fleet scanner gets — NFS, overlay filesystems, throttled
// cloud disks — where reads and writes fail transiently. Each cache
// I/O is retried a few times with doubling backoff; if the operation
// still fails the caller falls back to cache-off for that entry (the
// cache is an accelerator, never a correctness dependency).
//
// Two fleet lessons are baked into the schedule:
//  * Deterministic jitter. N scan workers sharing one disk cache fail
//    together when the disk hiccups; bare doubling backoff has them
//    all retry in lockstep and hammer the disk again at the same
//    instant. Each sleep is drawn from [base/2, base] by a splitmix64
//    hash of (jitter_seed, attempt), so two workers with different
//    seeds (the supervisor seeds from the image fingerprint) spread
//    out, while the same worker replays the exact same schedule run
//    after run — fault-injection tests stay deterministic.
//  * A total wall-clock cap. Backoff doubles, so a long retry budget
//    against a dead disk can sleep for seconds per operation;
//    max_total_backoff_us bounds the *sum* of sleeps so a fleet run
//    degrades to cache-off quickly instead of crawling.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace dtaint {

struct RetryPolicy {
  int attempts = 3;              // total tries, including the first
  int initial_backoff_us = 200;  // nominal sleep before try 2; doubles
  /// Cap on the *sum* of all sleeps for one operation; once spent,
  /// remaining attempts run back-to-back. 0 = uncapped.
  int max_total_backoff_us = 1'000'000;
  /// Identity of this retry stream: callers that share a resource use
  /// distinct seeds (e.g. a content fingerprint) so their jittered
  /// schedules decorrelate. The same seed always replays the same
  /// schedule.
  uint64_t jitter_seed = 0;
};

/// splitmix64 — tiny, stateless, well-mixed; good enough to
/// decorrelate backoff schedules (not a cryptographic PRF).
constexpr uint64_t RetryMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Uncapped jittered sleep before retry `retry` (1-based: retry 1
/// precedes the second attempt). Deterministic in (policy.jitter_seed,
/// retry); always in [base/2, base] for base = initial << (retry-1).
inline int RetryBackoffUs(const RetryPolicy& policy, int retry) {
  if (retry < 1 || policy.initial_backoff_us <= 0) return 0;
  // Clamp the shift so a large attempts count can't overflow.
  int shift = std::min(retry - 1, 20);
  int64_t base = static_cast<int64_t>(policy.initial_backoff_us) << shift;
  base = std::min<int64_t>(base, 1 << 30);
  int64_t half = base / 2;
  uint64_t h = RetryMix64(policy.jitter_seed * 0x9E3779B97F4A7C15ULL +
                          static_cast<uint64_t>(retry));
  return static_cast<int>(half + static_cast<int64_t>(h % (half + 1)));
}

/// The full planned sleep schedule (attempts-1 entries), with the
/// total-wall-clock cap applied: each entry is clamped to whatever cap
/// budget is left. Pure — tests assert on it without sleeping, and
/// RetryIo executes exactly this plan.
inline std::vector<int> RetryScheduleUs(const RetryPolicy& policy) {
  std::vector<int> plan;
  if (policy.attempts <= 1) return plan;
  plan.reserve(static_cast<size_t>(policy.attempts - 1));
  int64_t spent = 0;
  for (int retry = 1; retry < policy.attempts; ++retry) {
    int sleep_us = RetryBackoffUs(policy, retry);
    if (policy.max_total_backoff_us > 0) {
      int64_t remaining = policy.max_total_backoff_us - spent;
      if (remaining < 0) remaining = 0;
      sleep_us = static_cast<int>(
          std::min<int64_t>(sleep_us, remaining));
    }
    spent += sleep_us;
    plan.push_back(sleep_us);
  }
  return plan;
}

/// Runs `op` (a callable returning bool, true = success) up to
/// `policy.attempts` times, sleeping per RetryScheduleUs between
/// tries. Returns whether it eventually succeeded; `*retries`, when
/// non-null, receives the number of re-tries taken (0 = first try
/// succeeded or never succeeded... see return value for which).
template <typename Op>
bool RetryIo(const RetryPolicy& policy, Op&& op, int* retries = nullptr) {
  std::vector<int> plan = RetryScheduleUs(policy);
  for (int attempt = 0; attempt < policy.attempts; ++attempt) {
    if (attempt > 0) {
      int sleep_us = plan[static_cast<size_t>(attempt - 1)];
      if (sleep_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      }
      if (retries) ++*retries;
    }
    if (op()) return true;
  }
  return false;
}

}  // namespace dtaint
