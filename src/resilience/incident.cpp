#include "src/resilience/incident.h"

#include "src/util/strings.h"

namespace dtaint {

std::string Incident::ToString() const {
  std::string out = binary;
  out += '/';
  out += phase;
  if (!detail.empty()) {
    out += '(';
    out += detail;
    out += ')';
  }
  out += ": ";
  out += status.ToString();
  return out;
}

std::string IncidentToJson(const Incident& incident) {
  std::string out = "{";
  out += "\"binary\":\"" + JsonEscape(incident.binary) + "\",";
  out += "\"phase\":\"" + JsonEscape(incident.phase) + "\",";
  out += "\"detail\":\"" + JsonEscape(incident.detail) + "\",";
  out += "\"code\":\"" +
         JsonEscape(StatusCodeName(incident.status.code())) + "\",";
  out += "\"message\":\"" + JsonEscape(incident.status.message()) + "\"";
  if (incident.budget.exhausted_by != BudgetExhaustion::kNone) {
    out += ",\"budget\":{";
    out += "\"steps\":" + std::to_string(incident.budget.steps) + ",";
    out += "\"states\":" + std::to_string(incident.budget.states) + ",";
    out += "\"elapsed_ms\":" + FmtDouble(incident.budget.elapsed_ms, 3) + ",";
    out += "\"expr_nodes\":" + std::to_string(incident.budget.expr_nodes) +
           ",";
    out += "\"exhausted_by\":\"" +
           std::string(BudgetExhaustionName(incident.budget.exhausted_by)) +
           "\"";
    out += "}";
  }
  out += "}";
  return out;
}

std::string IncidentsToJson(const std::vector<Incident>& incidents) {
  std::string out = "[";
  for (size_t i = 0; i < incidents.size(); ++i) {
    if (i) out += ",";
    out += IncidentToJson(incidents[i]);
  }
  out += "]";
  return out;
}

}  // namespace dtaint
