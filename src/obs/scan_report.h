// Fleet aggregation over NDJSON event streams (src/obs/events.h) —
// the library behind tools/scan_report.
//
// Input is one or more event streams: live ones, finished ones, and —
// the case that motivates the whole subsystem — truncated ones left by
// killed or crashed workers (flight-recorder dumps are valid input
// too, but overlap the tail of their parent stream, so aggregate one
// or the other). Parsing is line-at-a-time and defensive: a torn final
// line, a flight-recorder slot overwritten mid-dump, or garbage in the
// middle is counted as malformed and skipped, never fatal.
//
// The aggregate answers the fleet operator's triage questions:
//  * per-image status table — an image_begin with no matching
//    image_end is reported as "in_flight": that is the image the dead
//    worker was chewing on;
//  * phase time breakdown (phase_end durations summed by phase name);
//  * top-k hot functions by summary-production time;
//  * incident and degradation counts by phase;
//  * whether each stream terminated cleanly (stream_end present).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace dtaint::obs {

struct ImageRollup {
  std::string image;
  std::string vendor;
  std::string product;
  std::string arch;
  std::string packing;
  /// image_end status ("ok" / "unextractable" / "failed"), or
  /// "in_flight" while only image_begin has been seen, or
  /// "quarantined" once the supervisor gave up on the image.
  std::string status = "in_flight";
  bool complete = false;
  uint64_t functions = 0;
  uint64_t findings = 0;
  double duration_ms = 0.0;
  /// Scan attempts for this image. Streams from the same image merge
  /// into this one logical row (ImageFor keys on the image name), so a
  /// crashed worker's stream plus its retry's stream still report one
  /// row with attempts=2. Counted from image_begin events and raised
  /// to any attempt count carried by supervisor lifecycle events
  /// (image_retry / image_quarantined / image_resumed), which also
  /// cover attempts killed before their first event flushed.
  uint64_t attempts = 0;
  /// image_begin events folded so far (internal feed for `attempts`;
  /// kept separate so lifecycle events that carry an absolute attempt
  /// count never double-count with the begins).
  uint64_t begin_events = 0;
  /// Satisfied from the resume journal (image_resumed event) rather
  /// than rescanned in the stream(s) being aggregated.
  bool resumed = false;
};

struct PhaseRollup {
  std::string phase;
  uint64_t runs = 0;
  double total_ms = 0.0;
};

struct FunctionRollup {
  std::string function;
  double total_ms = 0.0;
  uint64_t calls = 0;
  uint64_t cached = 0;  // of those, served from the summary cache
  /// Block-transfer memoization traffic summed over the function's
  /// explorations (from the function_end events' memo_* fields), so
  /// the hot-function table can show a memo hit rate next to the cost.
  uint64_t memo_hits = 0;
  uint64_t memo_lookups = 0;
};

struct ScanAggregate {
  size_t streams = 0;
  /// Streams with no stream_end event — killed/crashed/still running.
  size_t truncated_streams = 0;
  size_t events = 0;
  size_t malformed_lines = 0;

  std::vector<ImageRollup> images;  // first-seen order
  std::vector<PhaseRollup> phases;  // name order
  /// All functions seen, time-descending (callers truncate to top-k
  /// via ScanReportOptions before rendering).
  std::vector<FunctionRollup> functions;
  std::map<std::string, uint64_t, std::less<>> incidents_by_phase;
  std::map<std::string, uint64_t, std::less<>> events_by_type;

  uint64_t binaries = 0;        // binary_end events
  uint64_t findings = 0;        // finding events
  uint64_t incidents = 0;
  uint64_t degraded_functions = 0;  // function_end with degraded:true
  uint64_t heartbeats = 0;
  /// Supervisor lifecycle tallies (src/resilience/supervisor.h events;
  /// all zero for in-process scans, which never emit them).
  uint64_t image_retries = 0;     // image_retry events
  uint64_t quarantined_images = 0;  // image_quarantined events
  uint64_t worker_exits = 0;      // worker_exit events (failed attempts)
  uint64_t resumed_images = 0;    // image_resumed events
  /// Gauges of the most recent heartbeat across all streams.
  uint64_t last_images_done = 0;
  uint64_t last_images_total = 0;
  uint64_t last_functions_done = 0;
  double last_rss_mb = 0.0;
};

struct ScanReportOptions {
  size_t top_functions = 10;
};

/// Folds one stream's text (possibly truncated mid-line) into `agg`.
/// Never fails: unparseable lines bump malformed_lines.
void AggregateEvents(std::string_view ndjson, ScanAggregate* agg);

/// Sorts functions time-descending (name ascending on ties) and
/// truncates to options.top_functions. Call once after the last
/// AggregateEvents.
void FinalizeAggregate(ScanAggregate* agg, const ScanReportOptions& options);

/// Reads + aggregates + finalizes a list of stream files. Fails only
/// on an unreadable file, never on stream contents.
Result<ScanAggregate> AggregateEventFiles(
    const std::vector<std::string>& paths,
    const ScanReportOptions& options = {});

/// Fleet summary as markdown (the human/PR-comment form).
std::string AggregateToMarkdown(const ScanAggregate& agg);

/// Fleet summary as a JSON document (round-trips through
/// util/json.h's parser; validated in the test suite).
std::string AggregateToJson(const ScanAggregate& agg);

}  // namespace dtaint::obs
