#include "src/obs/scan_report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/obs/events.h"
#include "src/util/json.h"
#include "src/util/json_writer.h"

namespace dtaint::obs {

namespace {

std::string_view FieldStr(const JsonValue& event, std::string_view key) {
  const JsonValue* v = event.Find(key);
  if (!v || !v->is_string()) return {};
  return v->string();
}

double FieldNum(const JsonValue& event, std::string_view key) {
  const JsonValue* v = event.Find(key);
  if (!v || !v->is_number()) return 0.0;
  return v->number();
}

bool FieldBool(const JsonValue& event, std::string_view key) {
  const JsonValue* v = event.Find(key);
  return v && v->is_bool() && v->boolean();
}

ImageRollup& ImageFor(ScanAggregate* agg, std::string_view name) {
  for (ImageRollup& im : agg->images) {
    if (im.image == name) return im;
  }
  agg->images.emplace_back();
  agg->images.back().image = std::string(name);
  return agg->images.back();
}

PhaseRollup& PhaseFor(ScanAggregate* agg, std::string_view name) {
  for (PhaseRollup& ph : agg->phases) {
    if (ph.phase == name) return ph;
  }
  agg->phases.emplace_back();
  agg->phases.back().phase = std::string(name);
  return agg->phases.back();
}

FunctionRollup& FunctionFor(ScanAggregate* agg, std::string_view name) {
  for (FunctionRollup& fn : agg->functions) {
    if (fn.function == name) return fn;
  }
  agg->functions.emplace_back();
  agg->functions.back().function = std::string(name);
  return agg->functions.back();
}

void FoldEvent(const JsonValue& event, std::string_view type,
               ScanAggregate* agg) {
  if (type == "image_begin") {
    ImageRollup& im = ImageFor(agg, FieldStr(event, "image"));
    im.vendor = FieldStr(event, "vendor");
    im.product = FieldStr(event, "product");
    im.arch = FieldStr(event, "arch");
    im.packing = FieldStr(event, "packing");
    ++im.begin_events;
    im.attempts = std::max(im.attempts, im.begin_events);
  } else if (type == "image_retry") {
    // Supervisor re-dispatch: raise the attempt count to next_attempt
    // (covers attempts whose worker died before image_begin flushed).
    ImageRollup& im = ImageFor(agg, FieldStr(event, "image"));
    im.attempts = std::max(
        im.attempts, static_cast<uint64_t>(FieldNum(event, "next_attempt")));
    ++agg->image_retries;
  } else if (type == "worker_exit") {
    ImageRollup& im = ImageFor(agg, FieldStr(event, "image"));
    im.attempts = std::max(im.attempts,
                           static_cast<uint64_t>(FieldNum(event, "attempt")));
    ++agg->worker_exits;
  } else if (type == "image_quarantined") {
    ImageRollup& im = ImageFor(agg, FieldStr(event, "image"));
    im.status = "quarantined";
    im.attempts = std::max(im.attempts,
                           static_cast<uint64_t>(FieldNum(event, "attempts")));
    ++agg->quarantined_images;
  } else if (type == "image_resumed") {
    // Journal replay satisfied this image: no scan events will follow
    // in this stream, so the lifecycle event *is* the row.
    ImageRollup& im = ImageFor(agg, FieldStr(event, "image"));
    std::string_view status = FieldStr(event, "status");
    if (!status.empty()) im.status = std::string(status);
    im.attempts = std::max(im.attempts,
                           static_cast<uint64_t>(FieldNum(event, "attempts")));
    im.resumed = true;
    ++agg->resumed_images;
  } else if (type == "image_end") {
    ImageRollup& im = ImageFor(agg, FieldStr(event, "image"));
    im.status = FieldStr(event, "status");
    im.complete = FieldBool(event, "complete");
    im.functions = static_cast<uint64_t>(FieldNum(event, "functions"));
    im.findings = static_cast<uint64_t>(FieldNum(event, "findings"));
    im.duration_ms = FieldNum(event, "duration_ms");
  } else if (type == "phase_end") {
    PhaseRollup& ph = PhaseFor(agg, FieldStr(event, "phase"));
    ++ph.runs;
    ph.total_ms += FieldNum(event, "duration_ms");
  } else if (type == "function_end") {
    FunctionRollup& fn = FunctionFor(agg, FieldStr(event, "function"));
    ++fn.calls;
    fn.total_ms += FieldNum(event, "micros") / 1000.0;
    if (FieldBool(event, "cached")) ++fn.cached;
    if (FieldBool(event, "degraded")) ++agg->degraded_functions;
    fn.memo_hits += static_cast<uint64_t>(FieldNum(event, "memo_hits"));
    fn.memo_lookups += static_cast<uint64_t>(FieldNum(event, "memo_lookups"));
  } else if (type == "incident") {
    ++agg->incidents;
    std::string_view phase = FieldStr(event, "phase");
    ++agg->incidents_by_phase[phase.empty() ? std::string("?")
                                            : std::string(phase)];
  } else if (type == "finding") {
    ++agg->findings;
  } else if (type == "binary_end") {
    ++agg->binaries;
  } else if (type == "heartbeat") {
    ++agg->heartbeats;
    agg->last_images_done = static_cast<uint64_t>(FieldNum(event, "images_done"));
    agg->last_images_total =
        static_cast<uint64_t>(FieldNum(event, "images_total"));
    agg->last_functions_done =
        static_cast<uint64_t>(FieldNum(event, "functions_done"));
    agg->last_rss_mb = FieldNum(event, "rss_mb");
  }
}

}  // namespace

void AggregateEvents(std::string_view ndjson, ScanAggregate* agg) {
  ++agg->streams;
  bool terminated = false;
  size_t pos = 0;
  while (pos < ndjson.size()) {
    size_t eol = ndjson.find('\n', pos);
    // A final line without its newline is the torn-write case: try it
    // anyway — it parses iff the write completed before the kill.
    std::string_view line = ndjson.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? ndjson.size() : eol + 1;
    if (line.empty()) continue;
    auto parsed = ParseJson(line);
    if (!parsed.ok() || !parsed->is_object()) {
      ++agg->malformed_lines;
      continue;
    }
    std::string_view type = FieldStr(*parsed, "type");
    if (type.empty()) {
      ++agg->malformed_lines;
      continue;
    }
    ++agg->events;
    ++agg->events_by_type[std::string(type)];
    if (type == "stream_end") terminated = true;
    FoldEvent(*parsed, type, agg);
  }
  if (!terminated) ++agg->truncated_streams;
}

void FinalizeAggregate(ScanAggregate* agg, const ScanReportOptions& options) {
  std::sort(agg->phases.begin(), agg->phases.end(),
            [](const PhaseRollup& a, const PhaseRollup& b) {
              return a.phase < b.phase;
            });
  std::sort(agg->functions.begin(), agg->functions.end(),
            [](const FunctionRollup& a, const FunctionRollup& b) {
              if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
              return a.function < b.function;
            });
  if (agg->functions.size() > options.top_functions) {
    agg->functions.resize(options.top_functions);
  }
}

Result<ScanAggregate> AggregateEventFiles(
    const std::vector<std::string>& paths,
    const ScanReportOptions& options) {
  ScanAggregate agg;
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return NotFound("cannot read event stream: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    AggregateEvents(text, &agg);
  }
  FinalizeAggregate(&agg, options);
  return agg;
}

std::string AggregateToMarkdown(const ScanAggregate& agg) {
  std::string out = "# Fleet scan report\n\n";
  char buf[160];
  size_t complete = 0, in_flight = 0;
  for (const ImageRollup& im : agg.images) {
    if (im.complete) ++complete;
    if (im.status == "in_flight") ++in_flight;
  }
  std::snprintf(buf, sizeof(buf),
                "- streams: %zu (%zu truncated)\n"
                "- events: %zu (%zu malformed line(s) skipped)\n",
                agg.streams, agg.truncated_streams, agg.events,
                agg.malformed_lines);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "- images: %zu (%zu complete, %zu in flight)\n",
                agg.images.size(), complete, in_flight);
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "- binaries: %llu, findings: %llu, incidents: %llu, degraded "
      "functions: %llu\n",
      static_cast<unsigned long long>(agg.binaries),
      static_cast<unsigned long long>(agg.findings),
      static_cast<unsigned long long>(agg.incidents),
      static_cast<unsigned long long>(agg.degraded_functions));
  out += buf;
  if (agg.image_retries || agg.quarantined_images || agg.worker_exits ||
      agg.resumed_images) {
    std::snprintf(
        buf, sizeof(buf),
        "- supervisor: %llu retried, %llu quarantined, %llu worker "
        "exit(s), %llu resumed\n",
        static_cast<unsigned long long>(agg.image_retries),
        static_cast<unsigned long long>(agg.quarantined_images),
        static_cast<unsigned long long>(agg.worker_exits),
        static_cast<unsigned long long>(agg.resumed_images));
    out += buf;
  }
  if (agg.heartbeats) {
    std::snprintf(
        buf, sizeof(buf),
        "- last heartbeat: images %llu/%llu, functions %llu, rss %.1f MB "
        "(%llu beat(s))\n",
        static_cast<unsigned long long>(agg.last_images_done),
        static_cast<unsigned long long>(agg.last_images_total),
        static_cast<unsigned long long>(agg.last_functions_done),
        agg.last_rss_mb, static_cast<unsigned long long>(agg.heartbeats));
    out += buf;
  }

  if (!agg.images.empty()) {
    out += "\n## Images\n\n"
           "| Image | Arch | Packing | Status | Complete | Fns | Findings "
           "| Attempts | ms |\n"
           "|---|---|---|---|---|---:|---:|---:|---:|\n";
    for (const ImageRollup& im : agg.images) {
      std::snprintf(buf, sizeof(buf),
                    "| %s | %s | %s | %s%s | %s | %llu | %llu | %llu | %.1f "
                    "|\n",
                    im.image.c_str(), im.arch.c_str(), im.packing.c_str(),
                    im.status.c_str(), im.resumed ? " (resumed)" : "",
                    im.complete ? "yes" : "no",
                    static_cast<unsigned long long>(im.functions),
                    static_cast<unsigned long long>(im.findings),
                    static_cast<unsigned long long>(
                        im.attempts ? im.attempts : 1),
                    im.duration_ms);
      out += buf;
    }
  }

  if (!agg.phases.empty()) {
    out += "\n## Phase time\n\n| Phase | Runs | Total ms |\n|---|---:|---:|\n";
    for (const PhaseRollup& ph : agg.phases) {
      std::snprintf(buf, sizeof(buf), "| %s | %llu | %.1f |\n",
                    ph.phase.c_str(),
                    static_cast<unsigned long long>(ph.runs), ph.total_ms);
      out += buf;
    }
  }

  if (!agg.functions.empty()) {
    out += "\n## Hot functions\n\n"
           "| Function | Calls | Cached | Memo hit % | Total ms |\n"
           "|---|---:|---:|---:|---:|\n";
    for (const FunctionRollup& fn : agg.functions) {
      double memo_pct = fn.memo_lookups == 0
                            ? 0.0
                            : 100.0 * static_cast<double>(fn.memo_hits) /
                                  static_cast<double>(fn.memo_lookups);
      std::snprintf(buf, sizeof(buf), "| %s | %llu | %llu | %.1f | %.2f |\n",
                    fn.function.c_str(),
                    static_cast<unsigned long long>(fn.calls),
                    static_cast<unsigned long long>(fn.cached), memo_pct,
                    fn.total_ms);
      out += buf;
    }
  }

  if (!agg.incidents_by_phase.empty()) {
    out += "\n## Incidents by phase\n\n| Phase | Count |\n|---|---:|\n";
    for (const auto& [phase, count] : agg.incidents_by_phase) {
      std::snprintf(buf, sizeof(buf), "| %s | %llu |\n", phase.c_str(),
                    static_cast<unsigned long long>(count));
      out += buf;
    }
  }

  if (!agg.events_by_type.empty()) {
    out += "\n## Events by type\n\n| Type | Count |\n|---|---:|\n";
    for (const auto& [type, count] : agg.events_by_type) {
      std::snprintf(buf, sizeof(buf), "| %s | %llu |\n", type.c_str(),
                    static_cast<unsigned long long>(count));
      out += buf;
    }
  }
  return out;
}

std::string AggregateToJson(const ScanAggregate& agg) {
  JsonBuilder b;
  b.BeginObject();
  b.Key("schema_version");
  b.Number(static_cast<uint64_t>(kEventSchemaVersion));
  b.Key("streams");
  b.Number(static_cast<uint64_t>(agg.streams));
  b.Key("truncated_streams");
  b.Number(static_cast<uint64_t>(agg.truncated_streams));
  b.Key("events");
  b.Number(static_cast<uint64_t>(agg.events));
  b.Key("malformed_lines");
  b.Number(static_cast<uint64_t>(agg.malformed_lines));
  b.Key("binaries");
  b.Number(agg.binaries);
  b.Key("findings");
  b.Number(agg.findings);
  b.Key("incidents");
  b.Number(agg.incidents);
  b.Key("degraded_functions");
  b.Number(agg.degraded_functions);
  b.Key("image_retries");
  b.Number(agg.image_retries);
  b.Key("quarantined_images");
  b.Number(agg.quarantined_images);
  b.Key("worker_exits");
  b.Number(agg.worker_exits);
  b.Key("resumed_images");
  b.Number(agg.resumed_images);
  b.Key("heartbeats");
  b.Number(agg.heartbeats);
  if (agg.heartbeats) {
    b.Key("last_heartbeat");
    b.BeginObject();
    b.Key("images_done");
    b.Number(agg.last_images_done);
    b.Key("images_total");
    b.Number(agg.last_images_total);
    b.Key("functions_done");
    b.Number(agg.last_functions_done);
    b.Key("rss_mb");
    b.Number(agg.last_rss_mb);
    b.EndObject();
  }

  b.Key("images");
  b.BeginArray();
  for (const ImageRollup& im : agg.images) {
    b.BeginObject();
    b.Key("image");
    b.String(im.image);
    b.Key("vendor");
    b.String(im.vendor);
    b.Key("product");
    b.String(im.product);
    b.Key("arch");
    b.String(im.arch);
    b.Key("packing");
    b.String(im.packing);
    b.Key("status");
    b.String(im.status);
    b.Key("complete");
    b.Bool(im.complete);
    b.Key("functions");
    b.Number(im.functions);
    b.Key("findings");
    b.Number(im.findings);
    b.Key("attempts");
    b.Number(im.attempts ? im.attempts : 1);
    b.Key("resumed");
    b.Bool(im.resumed);
    b.Key("duration_ms");
    b.Number(im.duration_ms);
    b.EndObject();
  }
  b.EndArray();

  b.Key("phases");
  b.BeginArray();
  for (const PhaseRollup& ph : agg.phases) {
    b.BeginObject();
    b.Key("phase");
    b.String(ph.phase);
    b.Key("runs");
    b.Number(ph.runs);
    b.Key("total_ms");
    b.Number(ph.total_ms);
    b.EndObject();
  }
  b.EndArray();

  b.Key("hot_functions");
  b.BeginArray();
  for (const FunctionRollup& fn : agg.functions) {
    b.BeginObject();
    b.Key("function");
    b.String(fn.function);
    b.Key("calls");
    b.Number(fn.calls);
    b.Key("cached");
    b.Number(fn.cached);
    b.Key("memo_hits");
    b.Number(fn.memo_hits);
    b.Key("memo_lookups");
    b.Number(fn.memo_lookups);
    b.Key("total_ms");
    b.Number(fn.total_ms);
    b.EndObject();
  }
  b.EndArray();

  b.Key("incidents_by_phase");
  b.BeginObject();
  for (const auto& [phase, count] : agg.incidents_by_phase) {
    b.Key(phase);
    b.Number(count);
  }
  b.EndObject();

  b.Key("events_by_type");
  b.BeginObject();
  for (const auto& [type, count] : agg.events_by_type) {
    b.Key(type);
    b.Number(count);
  }
  b.EndObject();

  b.EndObject();
  return std::move(b).Take();
}

}  // namespace dtaint::obs
