// Structured leveled logging — the pipeline's diagnostic channel.
//
// Records carry (level, component, message) and render by default as
// one `ts=… level=… tid=… <component>: <message>` line on stderr; a
// replaceable sink lets tests capture records and embedders reroute
// them. The disabled path of a DTAINT_LOG statement is one relaxed
// atomic load and a branch — the format arguments are never evaluated —
// so debug logging can stay in analysis inner loops.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

namespace dtaint::obs {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// "error", "warn", "info", "debug".
std::string_view LogLevelName(LogLevel level);

/// Parses a level name (as accepted by --log-level). Returns false and
/// leaves *out untouched on anything else.
bool ParseLogLevel(std::string_view text, LogLevel* out);

/// Global threshold: records above it are dropped. Default: kWarn.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
extern std::atomic<int> g_log_level;
}

/// The cost of a disabled log statement.
inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) <=
         internal::g_log_level.load(std::memory_order_relaxed);
}

/// Small dense ordinal for the calling thread (0 for the first thread
/// that asks, 1 for the next, …). Shared with the span tracer so log
/// lines and trace events agree on thread identity.
uint32_t ThreadId();

/// Sink signature. Receives already-filtered records; must be
/// thread-safe (the default stderr sink writes one line atomically).
using LogSink = void (*)(LogLevel level, std::string_view component,
                         std::string_view message, void* user);

/// Replaces the sink; nullptr restores the stderr default.
void SetLogSink(LogSink sink, void* user);

/// The built-in stderr sink (`ts=… level=… tid=… component: message`,
/// one atomic line per record). Exposed so tee sinks — the event
/// stream's flight recorder captures log records while keeping stderr
/// behavior — can chain to it instead of re-implementing the format.
void DefaultLogSink(LogLevel level, std::string_view component,
                    std::string_view message, void* user);

/// Emits one record if `level` is enabled.
void Log(LogLevel level, std::string_view component,
         std::string_view message);

/// printf-style convenience. Formats only when the level is enabled.
[[gnu::format(printf, 3, 4)]] void Logf(LogLevel level, const char* component,
                                        const char* fmt, ...);

}  // namespace dtaint::obs

/// Statement-position logging with a no-op disabled path (arguments are
/// not evaluated when the level is off).
#define DTAINT_LOG(level, component, ...)                     \
  do {                                                        \
    if (::dtaint::obs::LogEnabled(level)) {                   \
      ::dtaint::obs::Logf((level), (component), __VA_ARGS__); \
    }                                                         \
  } while (0)
