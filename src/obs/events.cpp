#include "src/obs/events.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <ctime>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/util/strings.h"

namespace dtaint::obs {

// ---- Event ----------------------------------------------------------------

Event::Event(std::string_view type) : type_(type) {}

Event& Event::Str(std::string_view key, std::string_view value) {
  fields_ += ",\"";
  fields_ += JsonEscape(key);
  fields_ += "\":\"";
  fields_ += JsonEscape(value);
  fields_ += '"';
  return *this;
}

Event& Event::Num(std::string_view key, uint64_t value) {
  fields_ += ",\"";
  fields_ += JsonEscape(key);
  fields_ += "\":";
  fields_ += std::to_string(value);
  return *this;
}

Event& Event::Double(std::string_view key, double value, int decimals) {
  fields_ += ",\"";
  fields_ += JsonEscape(key);
  fields_ += "\":";
  fields_ += FmtDouble(value, decimals);
  return *this;
}

Event& Event::Bool(std::string_view key, bool value) {
  fields_ += ",\"";
  fields_ += JsonEscape(key);
  fields_ += value ? "\":true" : "\":false";
  return *this;
}

// ---- FlightRecorder -------------------------------------------------------

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Arm(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = std::min(path.size(), sizeof(path_) - 1);
  std::memcpy(path_, path.data(), n);
  path_[n] = '\0';
  for (Slot& slot : slots_) slot.len = 0;
  seq_.store(0, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

void FlightRecorder::Disarm() { armed_.store(false, std::memory_order_release); }

void FlightRecorder::Record(std::string_view line) {
  if (!armed()) return;
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t s = seq_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[s % kSlots];
  size_t n = std::min(line.size(), kSlotBytes - 2);
  std::memcpy(slot.text, line.data(), n);
  slot.text[n] = '\n';
  slot.len = static_cast<uint32_t>(n + 1);
}

void FlightRecorder::DumpToFd(int fd) const {
  uint64_t end = seq_.load(std::memory_order_relaxed);
  uint64_t begin = end > kSlots ? end - kSlots : 0;
  for (uint64_t s = begin; s < end; ++s) {
    const Slot& slot = slots_[s % kSlots];
    uint32_t len = slot.len;
    if (len == 0 || len > kSlotBytes) continue;
    ssize_t ignored = ::write(fd, slot.text, len);
    (void)ignored;
  }
}

bool FlightRecorder::Dump() {
  if (!armed()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  int fd = ::open(path_, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  DumpToFd(fd);
  ::close(fd);
  return true;
}

void FlightRecorder::DumpFromSignal() {
  // No locking — the handler may have interrupted a Record() holding
  // mu_. open/write/close are async-signal-safe; a concurrently
  // written slot may come out torn, and NDJSON consumers skip it.
  if (!armed_.load(std::memory_order_acquire)) return;
  int fd = ::open(path_, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  DumpToFd(fd);
  ::close(fd);
}

// ---- crash hook -----------------------------------------------------------

namespace {

void CrashSignalHandler(int signum) {
  FlightRecorder::Global().DumpFromSignal();
  // Re-raise with the default action so the exit status still says
  // "killed by signal" (and core dumps still happen where enabled).
  ::signal(signum, SIG_DFL);
  ::raise(signum);
}

/// Log-sink tee: renders the record exactly like the default stderr
/// sink *and* records a "log"-type NDJSON line into the flight
/// recorder, so a crash dump interleaves diagnostics with events.
void FlightLogSink(LogLevel level, std::string_view component,
                   std::string_view message, void* /*user*/) {
  DefaultLogSink(level, component, message, nullptr);
  FlightRecorder& recorder = FlightRecorder::Global();
  if (!recorder.armed()) return;
  std::string line = "{\"v\":" + std::to_string(kEventSchemaVersion) +
                     ",\"type\":\"log\",\"level\":\"";
  line += LogLevelName(level);
  line += "\",\"tid\":" + std::to_string(ThreadId());
  line += ",\"component\":\"" + JsonEscape(component) + "\"";
  line += ",\"message\":\"" + JsonEscape(message) + "\"}";
  recorder.Record(line);
}

}  // namespace

void InstallCrashHandler() {
  static bool installed = [] {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = CrashSignalHandler;
    sigemptyset(&action.sa_mask);
    for (int signum : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT}) {
      ::sigaction(signum, &action, nullptr);
    }
    return true;
  }();
  (void)installed;
}

// ---- EventStream ----------------------------------------------------------

EventStream& EventStream::Global() {
  static EventStream* stream = new EventStream();
  return *stream;
}

EventStream::~EventStream() {
  if (fd_ >= 0) ::close(fd_);
}

bool EventStream::Open(const std::string& path, std::string_view tool) {
  std::unique_lock<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // O_APPEND: each write(2) lands atomically at the end of the file,
  // so concurrent emitters never interleave mid-line and every
  // completed emit survives a crash as a whole line.
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
  if (fd_ < 0) return false;
  path_ = path;
  t0_ = std::chrono::steady_clock::now();
  count_.store(0, std::memory_order_relaxed);
  counts_by_type_.clear();
  enabled_.store(true, std::memory_order_release);
  lock.unlock();

  FlightRecorder::Global().Arm(path + ".flight.ndjson");
  InstallCrashHandler();
  SetLogSink(&FlightLogSink, nullptr);

  Event begin("stream_begin");
  begin.Str("tool", tool)
      .Num("pid", static_cast<uint64_t>(::getpid()))
      .Num("unix_ms",
           static_cast<uint64_t>(std::time(nullptr)) * uint64_t{1000});
  Emit(begin);
  return true;
}

void EventStream::Close(std::string_view outcome) {
  if (!enabled()) return;
  Event end("stream_end");
  end.Str("outcome", outcome)
      .Num("events", EventCount() + 1);  // count includes this line
  Emit(end);
  SetLogSink(nullptr, nullptr);
  FlightRecorder::Global().Disarm();
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_release);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

double EventStream::NowRelMillis() const {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

void EventStream::WriteLine(std::string_view line) {
  // Single write(2) per line: atomic append, no userspace buffering to
  // lose in a crash.
  ssize_t ignored = ::write(fd_, line.data(), line.size());
  (void)ignored;
}

void EventStream::Emit(const Event& event) {
  if (!enabled()) return;
  std::string line = "{\"v\":" + std::to_string(kEventSchemaVersion) +
                     ",\"type\":\"" + JsonEscape(event.type()) +
                     "\",\"ts_ms\":" + FmtDouble(NowRelMillis(), 3) +
                     ",\"tid\":" + std::to_string(ThreadId());
  line += event.fields();
  line += "}\n";
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ < 0) return;
    WriteLine(line);
    ++counts_by_type_[event.type()];
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry::Global().counter("events.emitted").Add();
  FlightRecorder::Global().Record(
      std::string_view(line.data(), line.size() - 1));  // sans '\n'
}

void EventStream::EmitHeartbeat(uint64_t images_done, uint64_t images_total,
                                uint64_t functions_done,
                                double functions_per_sec) {
  if (!enabled()) return;
  Event beat("heartbeat");
  beat.Num("images_done", images_done)
      .Num("images_total", images_total)
      .Num("functions_done", functions_done)
      .Double("functions_per_sec", functions_per_sec, 1)
      .Double("rss_mb", static_cast<double>(CurrentRssBytes()) / (1 << 20), 1)
      .Num("events", EventCount());
  Emit(beat);
}

std::map<std::string, uint64_t> EventStream::CountsByType() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {counts_by_type_.begin(), counts_by_type_.end()};
}

// ---- helpers --------------------------------------------------------------

void EmitIncident(EventStream& stream, const Incident& incident) {
  if (!stream.enabled()) return;
  Event event("incident");
  event.Str("binary", incident.binary)
      .Str("phase", incident.phase)
      .Str("detail", incident.detail)
      .Str("code", StatusCodeName(incident.status.code()))
      .Str("message", incident.status.message());
  if (incident.budget.exhausted_by != BudgetExhaustion::kNone) {
    event.Str("cause", BudgetExhaustionName(incident.budget.exhausted_by))
        .Num("steps", incident.budget.steps)
        .Num("states", incident.budget.states)
        .Double("elapsed_ms", incident.budget.elapsed_ms, 3);
  }
  stream.Emit(event);
  // An incident is the "something went wrong" moment — flush the ring
  // now so the lead-up survives even if the process dies later.
  FlightRecorder::Global().Dump();
}

uint64_t CurrentRssBytes() {
#ifdef __linux__
  // statm field 2 is resident pages.
  FILE* statm = std::fopen("/proc/self/statm", "r");
  if (!statm) return 0;
  unsigned long size = 0, resident = 0;
  int matched = std::fscanf(statm, "%lu %lu", &size, &resident);
  std::fclose(statm);
  if (matched != 2) return 0;
  long page = ::sysconf(_SC_PAGESIZE);
  return static_cast<uint64_t>(resident) *
         static_cast<uint64_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

// ---- Heartbeat ------------------------------------------------------------

Heartbeat::Heartbeat(EventStream& stream, uint32_t period_ms)
    : stream_(stream) {
  if (!stream.enabled() || period_ms == 0) return;
  last_beat_ = std::chrono::steady_clock::now();
  running_ = true;
  thread_ = std::thread([this, period_ms] {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      if (cv_.wait_for(lock, std::chrono::milliseconds(period_ms),
                       [this] { return stop_; })) {
        return;
      }
      lock.unlock();
      Beat();
      lock.lock();
    }
  });
}

void Heartbeat::Beat() {
  uint64_t functions = MetricsRegistry::Global()
                           .counter("summary.functions_done")
                           .Value();
  auto now = std::chrono::steady_clock::now();
  double dt =
      std::chrono::duration_cast<std::chrono::duration<double>>(now -
                                                                last_beat_)
          .count();
  double rate =
      dt > 0 ? static_cast<double>(functions - last_functions_) / dt : 0.0;
  stream_.EmitHeartbeat(images_done_.load(std::memory_order_relaxed),
                        images_total_.load(std::memory_order_relaxed),
                        functions, rate);
  last_functions_ = functions;
  last_beat_ = now;
}

void Heartbeat::Stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  running_ = false;
  // Final deterministic beat: every heartbeat-enabled run ends with at
  // least one gauge reading, even if it finished inside one period.
  Beat();
}

}  // namespace dtaint::obs
