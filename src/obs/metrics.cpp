#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "src/util/strings.h"

namespace dtaint::obs {

void Histogram::Observe(uint64_t v) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::ValueAtQuantile(double q) const {
  uint64_t total = Count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile sample, 1-based, at least 1.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      uint64_t upper =
          i == 0 ? 0 : (i >= 64 ? UINT64_MAX : (uint64_t{1} << i) - 1);
      return std::min(upper, Max());
    }
  }
  return Max();
}

HistogramStats Histogram::Stats() const {
  std::vector<uint64_t> buckets(kBuckets);
  for (int i = 0; i < kBuckets; ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return HistogramStatsFromBuckets(std::move(buckets), Sum(), Max());
}

HistogramStats HistogramStatsFromBuckets(std::vector<uint64_t> buckets,
                                         uint64_t sum, uint64_t max_clamp) {
  HistogramStats stats;
  stats.sum = sum;
  stats.max = max_clamp;
  for (uint64_t b : buckets) stats.count += b;
  auto quantile = [&](double q) -> uint64_t {
    if (stats.count == 0) return 0;
    uint64_t rank =
        static_cast<uint64_t>(q * static_cast<double>(stats.count));
    if (rank == 0) rank = 1;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
      cumulative += buckets[i];
      if (cumulative >= rank) {
        uint64_t upper =
            i == 0 ? 0 : (i >= 64 ? UINT64_MAX : (uint64_t{1} << i) - 1);
        return std::min(upper, max_clamp);
      }
    }
    return max_clamp;
  };
  stats.p50 = quantile(0.5);
  stats.p90 = quantile(0.9);
  stats.p95 = quantile(0.95);
  stats.p99 = quantile(0.99);
  stats.buckets = std::move(buckets);
  return stats;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& before) const {
  MetricsSnapshot delta = *this;
  for (auto& [name, value] : delta.counters) {
    uint64_t prior = before.CounterValue(name);
    value = value >= prior ? value - prior : 0;
  }
  for (auto& [name, stats] : delta.histograms) {
    auto it = before.histograms.find(name);
    if (it == before.histograms.end()) continue;
    const HistogramStats& prior = it->second;
    // Bucket-wise subtraction needs raw buckets on both sides;
    // hand-built snapshots without them keep cumulative values.
    if (stats.buckets.empty() || prior.buckets.empty() ||
        stats.buckets.size() != prior.buckets.size()) {
      continue;
    }
    std::vector<uint64_t> diff = stats.buckets;
    for (size_t i = 0; i < diff.size(); ++i) {
      uint64_t b = prior.buckets[i];
      diff[i] = diff[i] >= b ? diff[i] - b : 0;
    }
    uint64_t sum = stats.sum >= prior.sum ? stats.sum - prior.sum : 0;
    stats = HistogramStatsFromBuckets(std::move(diff), sum, stats.max);
  }
  return delta;
}

std::string MetricsSnapshotToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    out += '"' + JsonEscape(name) + "\":" + buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) +
           ",\"max\":" + std::to_string(h.max) +
           ",\"p50\":" + std::to_string(h.p50) +
           ",\"p90\":" + std::to_string(h.p90) +
           ",\"p95\":" + std::to_string(h.p95) +
           ",\"p99\":" + std::to_string(h.p99) + '}';
  }
  out += "}}";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(&enabled_)))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(&enabled_)))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram(&enabled_)))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, g] : gauges_) {
    g->value_.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [name, h] : histograms_) {
    for (auto& bucket : h->buckets_) {
      bucket.store(0, std::memory_order_relaxed);
    }
    h->count_.store(0, std::memory_order_relaxed);
    h->sum_.store(0, std::memory_order_relaxed);
    h->max_.store(0, std::memory_order_relaxed);
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, c] : counters_) snapshot.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snapshot.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    snapshot.histograms[name] = h->Stats();
  }
  return snapshot;
}

}  // namespace dtaint::obs
