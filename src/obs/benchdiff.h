// Comparison engine for BENCH_*.json documents (src/obs/bench.h) —
// the library behind the tools/bench_diff binary and the CI
// bench-regression gate.
//
// Each (run, metric) pair in the baseline is matched against the
// current document and classified by the metric-naming contract:
//
//  * time metrics (`wall_seconds`, names ending `_seconds` /
//    `_nanos`): gated on the current/baseline ratio. A regression
//    needs ratio > threshold AND the current value above the noise
//    floor (tiny absolute times are scheduler noise, not signal);
//    ratio < 1/threshold is reported as an improvement.
//  * informational metrics (names ending `_ratio`, `_speedup`,
//    `_pct`, `_mb`): machine-dependent; reported, never gated.
//  * everything else: deterministic counts (findings, hits, paths).
//    Any mismatch beyond `value_rel_tol` is a behavioral drift and
//    fails the gate even when timings look fine.
//
// Runs or metrics present in the baseline but missing from the current
// document fail the gate (a silently dropped measurement is how perf
// coverage rots); metrics only present in the current document are
// reported as new and pass.
#pragma once

#include <string>
#include <vector>

#include "src/util/json.h"
#include "src/util/status.h"

namespace dtaint::bench {

struct DiffOptions {
  /// Time-metric regression gate: fail when current/baseline exceeds
  /// this (and the current value clears the noise floor).
  double time_threshold = 1.5;
  /// Seconds below which `_seconds` metrics are never gated.
  double noise_floor_seconds = 0.02;
  /// Nanoseconds below which `_nanos` metrics are never gated.
  double noise_floor_nanos = 50.0;
  /// Relative tolerance for deterministic-count metrics (0 = exact).
  double value_rel_tol = 0.0;
  /// Downgrade missing runs/metrics from failures to notes.
  bool allow_missing = false;
};

enum class MetricClass { kTimeSeconds, kTimeNanos, kInformational, kCount };

/// How a metric name is gated; exposed for tests and the doc table.
MetricClass ClassifyMetric(std::string_view name);

enum class DiffStatus {
  kOk,         // within threshold / exact match
  kImproved,   // time metric got >= threshold faster
  kBelowFloor, // time metric under the noise floor, not gated
  kInfo,       // informational metric, never gated
  kRegressed,  // time metric blew the ratio gate
  kChanged,    // deterministic count drifted
  kMissing,    // baseline metric/run absent from current
  kNew,        // current metric/run absent from baseline
};

struct MetricDelta {
  std::string bench;
  std::string run;
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  double ratio = 0.0;  // current / baseline; 0 when baseline is 0
  DiffStatus status = DiffStatus::kOk;
};

struct DiffReport {
  std::vector<MetricDelta> rows;

  /// True when any row fails the gate (the bench_diff exit-1 signal).
  bool HasRegression() const;

  /// Markdown delta table; `only_notable` hides kOk/kBelowFloor rows.
  std::string ToMarkdown(bool only_notable) const;
};

/// Diffs two parsed BENCH documents. Errors on schema-version mismatch
/// or documents that don't look like bench output.
Result<DiffReport> DiffBenchDocs(const JsonValue& baseline,
                                 const JsonValue& current,
                                 const DiffOptions& options);

/// Convenience: parse + diff two documents from JSON text.
Result<DiffReport> DiffBenchJson(std::string_view baseline_text,
                                 std::string_view current_text,
                                 const DiffOptions& options);

}  // namespace dtaint::bench
