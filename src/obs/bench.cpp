#include "src/obs/bench.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>
#include <vector>

#include "src/obs/log.h"
#include "src/obs/stopwatch.h"
#include "src/obs/trace.h"
#include "src/util/json_writer.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

namespace dtaint::bench {

namespace {

/// DTAINT_* variables whose presence changes what a bench measures;
/// captured into the env block so a diff across two documents can
/// explain itself.
constexpr const char* kCapturedEnvVars[] = {
    "DTAINT_BENCH_N", "DTAINT_BENCH_WARMUP", "DTAINT_FAULTS",
    "DTAINT_LOG",     "DTAINT_FUZZ_N",
};

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (!value || !*value) return fallback;
  return std::atoi(value);
}

}  // namespace

EnvBlock CaptureEnv() {
  EnvBlock env;
  if (const char* sha = std::getenv("GITHUB_SHA"); sha && *sha) {
    env.git_sha = sha;
  } else {
#ifdef DTAINT_GIT_SHA
    env.git_sha = DTAINT_GIT_SHA;
#else
    env.git_sha = "unknown";
#endif
  }
#if defined(__clang__)
  env.compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  env.compiler = std::string("gcc ") + __VERSION__;
#else
  env.compiler = "unknown";
#endif
#ifdef DTAINT_CXX_FLAGS
  env.compiler_flags = DTAINT_CXX_FLAGS;
#endif
#ifdef DTAINT_BUILD_TYPE
  env.build_type = DTAINT_BUILD_TYPE;
#endif
#if defined(__unix__) || defined(__APPLE__)
  utsname uts{};
  if (uname(&uts) == 0) {
    env.os = std::string(uts.sysname) + " " + uts.machine;
  }
#endif
  if (env.os.empty()) env.os = "unknown";
  env.cpu_count = std::thread::hardware_concurrency();
  for (const char* name : kCapturedEnvVars) {
    if (const char* value = std::getenv(name)) env.env[name] = value;
  }
  return env;
}

Harness::Harness(std::string name, int argc, char** argv)
    : name_(std::move(name)),
      now_([] {
        static const obs::Stopwatch epoch;
        return epoch.Seconds();
      }),
      registry_(&obs::MetricsRegistry::Global()) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0) {
      json_out_ = argv[i + 1];
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      trace_out_ = argv[i + 1];
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      reps_override_ = std::atoi(argv[i + 1]);
    }
  }
  if (reps_override_ <= 0) reps_override_ = EnvInt("DTAINT_BENCH_N", 0);
  warmup_override_ = EnvInt("DTAINT_BENCH_WARMUP", -1);
  if (!trace_out_.empty() && !obs::Tracer::Global().enabled()) {
    obs::Tracer::Global().Start();
    started_tracer_ = true;
  }
}

int Harness::RepsFor(int default_reps) const {
  int reps = reps_override_ > 0 ? reps_override_ : default_reps;
  return std::max(reps, 1);
}

const RunResult& Harness::Run(std::string run_name, const RunOptions& opts,
                              const std::function<void(Rep&)>& body) {
  int reps = RepsFor(opts.reps);
  int warmup = warmup_override_ >= 0 ? warmup_override_ : opts.warmup;

  for (int i = 0; i < warmup; ++i) {
    Rep rep;
    body(rep);
  }

  struct Measured {
    double wall = 0.0;
    Rep rep;
    obs::MetricsSnapshot delta;
  };
  std::vector<Measured> measured(static_cast<size_t>(reps));
  for (Measured& m : measured) {
    obs::MetricsSnapshot before = registry_->Snapshot();
    double t0 = now_();
    body(m.rep);
    m.wall = now_() - t0;
    m.delta = registry_->Snapshot().DeltaSince(before);
  }

  // Median by the key metric; reps that didn't record it rank by wall
  // clock. Stable sort keeps rep order deterministic on ties (the fake
  // clock in the test suite produces exact ties on purpose).
  auto key = [&](const Measured& m) {
    auto it = m.rep.values_.find(opts.median_key);
    return it != m.rep.values_.end() ? it->second : m.wall;
  };
  std::vector<size_t> order(measured.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) {
                     return key(measured[a]) < key(measured[b]);
                   });
  const Measured& median = measured[order[order.size() / 2]];

  RunResult result;
  result.name = std::move(run_name);
  result.reps = reps;
  result.warmup = warmup;
  result.median_key = opts.median_key;
  result.wall_seconds = median.wall;
  result.wall_min = median.wall;
  result.wall_max = median.wall;
  for (const Measured& m : measured) {
    result.wall_min = std::min(result.wall_min, m.wall);
    result.wall_max = std::max(result.wall_max, m.wall);
  }
  result.values = median.rep.values_;
  result.metrics = median.delta;
  runs_.push_back(std::move(result));
  return runs_.back();
}

const RunResult& Harness::AddExternalRun(
    std::string run_name, double wall_seconds,
    std::map<std::string, double, std::less<>> values) {
  RunResult result;
  result.name = std::move(run_name);
  result.reps = 1;
  result.median_key = "wall_seconds";
  result.wall_seconds = wall_seconds;
  result.wall_min = wall_seconds;
  result.wall_max = wall_seconds;
  result.values = std::move(values);
  runs_.push_back(std::move(result));
  return runs_.back();
}

void Harness::Note(std::string note) { notes_.push_back(std::move(note)); }

std::string Harness::ToJson(bool ok) const {
  EnvBlock env = CaptureEnv();
  JsonBuilder json;
  json.BeginObject();
  json.Key("schema_version");
  json.Number(static_cast<uint64_t>(kBenchSchemaVersion));
  json.Key("bench");
  json.String(name_);
  json.Key("ok");
  json.Bool(ok);

  json.Key("env");
  json.BeginObject();
  json.Key("git_sha");
  json.String(env.git_sha);
  json.Key("compiler");
  json.String(env.compiler);
  json.Key("compiler_flags");
  json.String(env.compiler_flags);
  json.Key("build_type");
  json.String(env.build_type);
  json.Key("os");
  json.String(env.os);
  json.Key("cpu_count");
  json.Number(static_cast<uint64_t>(env.cpu_count));
  json.Key("env");
  json.BeginObject();
  for (const auto& [name, value] : env.env) {
    json.Key(name);
    json.String(value);
  }
  json.EndObject();
  json.EndObject();

  json.Key("notes");
  json.BeginArray();
  for (const std::string& note : notes_) json.String(note);
  json.EndArray();

  json.Key("runs");
  json.BeginArray();
  for (const RunResult& run : runs_) {
    json.BeginObject();
    json.Key("name");
    json.String(run.name);
    json.Key("reps");
    json.Number(static_cast<uint64_t>(run.reps));
    json.Key("warmup");
    json.Number(static_cast<uint64_t>(run.warmup));
    json.Key("median_key");
    json.String(run.median_key);
    json.Key("wall_seconds");
    json.Number(run.wall_seconds);
    json.Key("wall_min");
    json.Number(run.wall_min);
    json.Key("wall_max");
    json.Number(run.wall_max);
    json.Key("values");
    json.BeginObject();
    for (const auto& [name, value] : run.values) {
      json.Key(name);
      json.Number(value);
    }
    json.EndObject();
    json.Key("metrics");
    json.Raw(obs::MetricsSnapshotToJson(run.metrics));
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return std::move(json).Take();
}

int Harness::Finish(bool ok) {
  int rc = ok ? 0 : 1;
  if (!json_out_.empty()) {
    std::ofstream out(json_out_, std::ios::trunc);
    out << ToJson(ok) << '\n';
    if (!out.good()) {
      DTAINT_LOG(obs::LogLevel::kError, "bench",
                 "cannot write bench json to %s", json_out_.c_str());
      rc = 2;
    } else {
      std::printf("bench json: %s\n", json_out_.c_str());
    }
  }
  if (!trace_out_.empty()) {
    if (started_tracer_) obs::Tracer::Global().Stop();
    if (!obs::Tracer::Global().WriteChromeJson(trace_out_)) {
      DTAINT_LOG(obs::LogLevel::kError, "bench", "cannot write trace to %s",
                 trace_out_.c_str());
      rc = 2;
    } else {
      std::printf("trace json: %s\n", trace_out_.c_str());
    }
  }
  return rc;
}

void Harness::SetClockForTest(std::function<double()> now_seconds) {
  now_ = std::move(now_seconds);
}

void Harness::SetRegistryForTest(obs::MetricsRegistry* registry) {
  registry_ = registry;
}

}  // namespace dtaint::bench
