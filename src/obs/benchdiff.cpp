#include "src/obs/benchdiff.h"

#include <cmath>
#include <cstdio>

#include "src/obs/bench.h"
#include "src/util/strings.h"

namespace dtaint::bench {

namespace {

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

const char* StatusName(DiffStatus status) {
  switch (status) {
    case DiffStatus::kOk: return "ok";
    case DiffStatus::kImproved: return "improved";
    case DiffStatus::kBelowFloor: return "below-floor";
    case DiffStatus::kInfo: return "info";
    case DiffStatus::kRegressed: return "REGRESSED";
    case DiffStatus::kChanged: return "CHANGED";
    case DiffStatus::kMissing: return "MISSING";
    case DiffStatus::kNew: return "new";
  }
  return "?";
}

bool Fails(DiffStatus status) {
  return status == DiffStatus::kRegressed ||
         status == DiffStatus::kChanged || status == DiffStatus::kMissing;
}

/// Integral values print as integers, everything else with enough
/// decimals for sub-millisecond times.
std::string FmtValue(double v) {
  if (std::nearbyint(v) == v && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  return FmtDouble(v, 6);
}

/// One run's comparable scalars: wall_seconds + the "values" object.
Result<std::map<std::string, double, std::less<>>> RunMetrics(
    const JsonValue& run) {
  std::map<std::string, double, std::less<>> metrics;
  const JsonValue* wall = run.Find("wall_seconds");
  if (!wall || !wall->is_number()) {
    return InvalidArgument("run is missing wall_seconds");
  }
  metrics["wall_seconds"] = wall->number();
  const JsonValue* values = run.Find("values");
  if (!values || !values->is_object()) {
    return InvalidArgument("run is missing the values object");
  }
  for (const auto& [name, value] : values->object()) {
    if (!value.is_number()) {
      return InvalidArgument("non-numeric value metric: " + name);
    }
    metrics[name] = value.number();
  }
  return metrics;
}

struct ParsedDoc {
  std::string bench;
  // run name -> metric name -> value, in document order of runs.
  std::vector<std::pair<std::string,
                        std::map<std::string, double, std::less<>>>> runs;
};

Result<ParsedDoc> ParseDoc(const JsonValue& doc, const char* which) {
  if (!doc.is_object()) {
    return InvalidArgument(std::string(which) +
                           " document is not a JSON object");
  }
  const JsonValue* version = doc.Find("schema_version");
  if (!version || !version->is_number()) {
    return InvalidArgument(std::string(which) +
                           " document has no schema_version");
  }
  if (static_cast<int>(version->number()) != kBenchSchemaVersion) {
    return InvalidArgument(
        std::string(which) + " document has schema_version " +
        FmtValue(version->number()) + ", this build understands " +
        std::to_string(kBenchSchemaVersion));
  }
  const JsonValue* bench = doc.Find("bench");
  const JsonValue* runs = doc.Find("runs");
  if (!bench || !bench->is_string() || !runs || !runs->is_array()) {
    return InvalidArgument(std::string(which) +
                           " document is missing bench/runs");
  }
  ParsedDoc parsed;
  parsed.bench = bench->string();
  for (const JsonValue& run : runs->array()) {
    const JsonValue* name = run.Find("name");
    if (!name || !name->is_string()) {
      return InvalidArgument(std::string(which) + " run has no name");
    }
    auto metrics = RunMetrics(run);
    if (!metrics.ok()) return metrics.status();
    parsed.runs.emplace_back(name->string(), std::move(*metrics));
  }
  return parsed;
}

}  // namespace

MetricClass ClassifyMetric(std::string_view name) {
  if (EndsWith(name, "_ratio") || EndsWith(name, "_speedup") ||
      EndsWith(name, "_pct") || EndsWith(name, "_mb")) {
    return MetricClass::kInformational;
  }
  if (name == "wall_seconds" || EndsWith(name, "_seconds")) {
    return MetricClass::kTimeSeconds;
  }
  if (EndsWith(name, "_nanos")) return MetricClass::kTimeNanos;
  return MetricClass::kCount;
}

bool DiffReport::HasRegression() const {
  for (const MetricDelta& row : rows) {
    if (Fails(row.status)) return true;
  }
  return false;
}

std::string DiffReport::ToMarkdown(bool only_notable) const {
  std::string out =
      "| run | metric | baseline | current | ratio | status |\n"
      "|---|---|---:|---:|---:|---|\n";
  size_t shown = 0;
  for (const MetricDelta& row : rows) {
    if (only_notable && (row.status == DiffStatus::kOk ||
                         row.status == DiffStatus::kBelowFloor ||
                         row.status == DiffStatus::kInfo)) {
      continue;
    }
    ++shown;
    out += "| " + row.run + " | " + row.metric + " | " +
           FmtValue(row.baseline) + " | " + FmtValue(row.current) + " | " +
           (row.ratio > 0 ? FmtDouble(row.ratio, 2) + "x" : "-") + " | " +
           StatusName(row.status) + " |\n";
  }
  if (shown == 0) out += "| - | - | - | - | - | all ok |\n";
  return out;
}

Result<DiffReport> DiffBenchDocs(const JsonValue& baseline,
                                 const JsonValue& current,
                                 const DiffOptions& options) {
  auto base = ParseDoc(baseline, "baseline");
  if (!base.ok()) return base.status();
  auto cur = ParseDoc(current, "current");
  if (!cur.ok()) return cur.status();
  if (base->bench != cur->bench) {
    return InvalidArgument("bench name mismatch: baseline is '" +
                           base->bench + "', current is '" + cur->bench +
                           "'");
  }

  auto find_run = [](const ParsedDoc& doc, const std::string& name)
      -> const std::map<std::string, double, std::less<>>* {
    for (const auto& [run_name, metrics] : doc.runs) {
      if (run_name == name) return &metrics;
    }
    return nullptr;
  };

  DiffReport report;
  auto add = [&](const std::string& run, const std::string& metric,
                 double base_v, double cur_v, double ratio,
                 DiffStatus status) {
    MetricDelta row;
    row.bench = cur->bench;
    row.run = run;
    row.metric = metric;
    row.baseline = base_v;
    row.current = cur_v;
    row.ratio = ratio;
    row.status = status;
    report.rows.push_back(std::move(row));
  };

  for (const auto& [run_name, base_metrics] : base->runs) {
    const auto* cur_metrics = find_run(*cur, run_name);
    if (!cur_metrics) {
      if (!options.allow_missing) add(run_name, "*", 0, 0, 0,
                                      DiffStatus::kMissing);
      continue;
    }
    for (const auto& [metric, base_v] : base_metrics) {
      auto it = cur_metrics->find(metric);
      if (it == cur_metrics->end()) {
        if (!options.allow_missing) add(run_name, metric, base_v, 0, 0,
                                        DiffStatus::kMissing);
        continue;
      }
      double cur_v = it->second;
      double ratio = base_v != 0.0 ? cur_v / base_v : 0.0;
      DiffStatus status = DiffStatus::kOk;
      switch (ClassifyMetric(metric)) {
        case MetricClass::kInformational:
          status = DiffStatus::kInfo;
          break;
        case MetricClass::kTimeSeconds:
        case MetricClass::kTimeNanos: {
          double floor = ClassifyMetric(metric) == MetricClass::kTimeNanos
                             ? options.noise_floor_nanos
                             : options.noise_floor_seconds;
          if (base_v < floor && cur_v < floor) {
            status = DiffStatus::kBelowFloor;
          } else if (base_v == 0.0 ||
                     ratio > options.time_threshold) {
            status = DiffStatus::kRegressed;
          } else if (ratio < 1.0 / options.time_threshold) {
            status = DiffStatus::kImproved;
          }
          break;
        }
        case MetricClass::kCount: {
          double scale = std::max(std::fabs(base_v), 1e-12);
          if (std::fabs(cur_v - base_v) / scale > options.value_rel_tol) {
            status = DiffStatus::kChanged;
          }
          break;
        }
      }
      add(run_name, metric, base_v, cur_v, ratio, status);
    }
    for (const auto& [metric, cur_v] : *cur_metrics) {
      if (base_metrics.find(metric) == base_metrics.end()) {
        add(run_name, metric, 0, cur_v, 0, DiffStatus::kNew);
      }
    }
  }
  for (const auto& [run_name, metrics] : cur->runs) {
    if (!find_run(*base, run_name)) {
      add(run_name, "*", 0, 0, 0, DiffStatus::kNew);
    }
  }
  return report;
}

Result<DiffReport> DiffBenchJson(std::string_view baseline_text,
                                 std::string_view current_text,
                                 const DiffOptions& options) {
  auto base = ParseJson(baseline_text);
  if (!base.ok()) return base.status();
  auto cur = ParseJson(current_text);
  if (!cur.ok()) return cur.status();
  return DiffBenchDocs(*base, *cur, options);
}

}  // namespace dtaint::bench
