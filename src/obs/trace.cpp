#include "src/obs/trace.h"

#include <cstdio>
#include <fstream>

#include "src/obs/log.h"
#include "src/util/strings.h"

namespace dtaint::obs {

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  t0_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Stop() { enabled_.store(false, std::memory_order_relaxed); }

uint64_t Tracer::NowRelNanos() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0_)
          .count());
}

void Tracer::RecordComplete(std::string_view category, std::string_view name,
                            uint64_t rel_start_ns, uint64_t dur_ns) {
  if (!enabled()) return;
  uint32_t tid = ThreadId();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{std::string(category), std::string(name),
                          rel_start_ns, dur_ns, tid});
}

size_t Tracer::EventCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string Tracer::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  char buf[64];
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (i) out += ',';
    out += "{\"name\":\"" + JsonEscape(e.name) + "\",\"cat\":\"" +
           JsonEscape(e.category) + "\",\"ph\":\"X\",\"ts\":";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.start_ns) / 1000.0);
    out += buf;
    out += ",\"dur\":";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.dur_ns) / 1000.0);
    out += buf;
    out += ",\"pid\":1,\"tid\":" + std::to_string(e.tid) + '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  std::string json = ToChromeJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  return out.good();
}

}  // namespace dtaint::obs
