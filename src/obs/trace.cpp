#include "src/obs/trace.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "src/obs/log.h"
#include "src/util/strings.h"

namespace dtaint::obs {

namespace {

/// One Chrome complete-event record, no separators: the two output
/// modes share this so buffered and streamed traces are byte-identical
/// per record.
void AppendEventJson(std::string& out, std::string_view category,
                     std::string_view name, uint64_t start_ns,
                     uint64_t dur_ns, uint32_t tid) {
  char buf[64];
  out += "{\"name\":\"" + JsonEscape(name) + "\",\"cat\":\"" +
         JsonEscape(category) + "\",\"ph\":\"X\",\"ts\":";
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(start_ns) / 1000.0);
  out += buf;
  out += ",\"dur\":";
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(dur_ns) / 1000.0);
  out += buf;
  out += ",\"pid\":1,\"tid\":" + std::to_string(tid) + '}';
}

bool WriteAll(int fd, std::string_view text) {
  size_t off = 0;
  while (off < text.size()) {
    ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  t0_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Stop() { enabled_.store(false, std::memory_order_relaxed); }

bool Tracer::StreamTo(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stream_fd_ >= 0) {
    ::close(stream_fd_);
    stream_fd_ = -1;
  }
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
  if (fd < 0) return false;
  // The opener goes out immediately so even a zero-event crash leaves
  // a file that `]` completes to the empty array.
  if (!WriteAll(fd, "[\n")) {
    ::close(fd);
    return false;
  }
  stream_fd_ = fd;
  stream_first_ = true;
  stream_count_ = 0;
  events_.clear();
  t0_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
  return true;
}

bool Tracer::FinishStream() {
  enabled_.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (stream_fd_ < 0) return false;
  bool ok = WriteAll(stream_fd_, "]\n");
  ok = (::close(stream_fd_) == 0) && ok;
  stream_fd_ = -1;
  return ok;
}

bool Tracer::streaming() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stream_fd_ >= 0;
}

uint64_t Tracer::NowRelNanos() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0_)
          .count());
}

void Tracer::RecordComplete(std::string_view category, std::string_view name,
                            uint64_t rel_start_ns, uint64_t dur_ns) {
  if (!enabled()) return;
  uint32_t tid = ThreadId();
  std::lock_guard<std::mutex> lock(mu_);
  if (stream_fd_ >= 0) {
    // Comma PREFIXED, whole record in one write(2): the file never
    // holds a dangling separator, so `]` always completes it.
    std::string line = stream_first_ ? "" : ",";
    stream_first_ = false;
    AppendEventJson(line, category, name, rel_start_ns, dur_ns, tid);
    line += '\n';
    if (WriteAll(stream_fd_, line)) ++stream_count_;
    return;
  }
  events_.push_back(Event{std::string(category), std::string(name),
                          rel_start_ns, dur_ns, tid});
}

size_t Tracer::EventCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stream_fd_ >= 0 || stream_count_ ? stream_count_ : events_.size();
}

std::string Tracer::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (i) out += ',';
    AppendEventJson(out, e.category, e.name, e.start_ns, e.dur_ns, e.tid);
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  std::string json = ToChromeJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  return out.good();
}

}  // namespace dtaint::obs
