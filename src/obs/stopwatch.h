// Monotonic wall-clock helper shared by the pipeline phases, the span
// tracer, and the benches — the one place steady_clock arithmetic
// lives, so timing code reads the same everywhere.
#pragma once

#include <chrono>
#include <cstdint>

namespace dtaint::obs {

class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() : start_(Clock::now()) {}

  /// Seconds elapsed since construction (or the last Restart).
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds elapsed — what the tracer records.
  uint64_t Nanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  void Restart() { start_ = Clock::now(); }

 private:
  Clock::time_point start_;
};

}  // namespace dtaint::obs
