// Benchmark telemetry harness — the shared measurement spine of every
// bench binary (bench/*.cpp). It owns the three things the benches
// used to hand-roll or skip entirely:
//
//  * repetition: warmup + median-of-N per named run, with the median
//    picked by a designated key metric (default wall_seconds) so one
//    noisy scheduler tick can't swing a headline ratio;
//  * attribution: a MetricsRegistry snapshot before and after every
//    rep, so each result carries a clean per-rep metrics delta
//    (per-phase seconds, cache hit rates, intern stats) with no manual
//    timers and no cross-rep bleed;
//  * evidence: environment capture (git sha, compiler + flags, build
//    type, cpu count, DTAINT_* env) and a stable versioned JSON
//    document written via `--json-out BENCH_<name>.json`, the unit the
//    bench_diff tool and the CI bench-regression gate consume.
//
// Flags every harness-using bench accepts:
//   --json-out FILE   write the BENCH json document
//   --trace-out FILE  Chrome trace of everything the reps executed
//   --reps N          override each run's rep count
// Environment:
//   DTAINT_BENCH_N       same as --reps (CI sets 1 for the fast gate)
//   DTAINT_BENCH_WARMUP  override each run's warmup count
//
// Metric naming contract (what bench_diff gates on — see
// src/obs/benchdiff.h): names ending in `_seconds` (and the built-in
// wall_seconds) are wall-clock time, ratio-gated above a noise floor;
// `_nanos` likewise at nanosecond scale; names ending in `_ratio`,
// `_speedup`, `_pct`, or `_mb` are machine-dependent and informational
// only; every other value is treated as a deterministic count and must
// match the baseline exactly.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "src/obs/metrics.h"

namespace dtaint::bench {

/// Bumped whenever the BENCH_*.json document shape changes; bench_diff
/// refuses to compare documents across versions.
inline constexpr int kBenchSchemaVersion = 1;

/// Build/host provenance embedded in every BENCH document.
struct EnvBlock {
  std::string git_sha;
  std::string compiler;
  std::string compiler_flags;
  std::string build_type;
  std::string os;
  unsigned cpu_count = 0;
  /// DTAINT_* variables present in the process environment.
  std::map<std::string, std::string, std::less<>> env;
};

EnvBlock CaptureEnv();

/// Handed to the measured body once per rep; the body records the
/// scalar results it wants in the BENCH document.
class Rep {
 public:
  void Value(std::string_view name, double v) {
    values_[std::string(name)] = v;
  }

 private:
  friend class Harness;
  std::map<std::string, double, std::less<>> values_;
};

struct RunOptions {
  int reps = 1;    // DTAINT_BENCH_N / --reps override this
  int warmup = 0;  // DTAINT_BENCH_WARMUP overrides this
  /// Rep-ranking key for median selection; falls back to wall_seconds
  /// when a rep didn't record it.
  std::string median_key = "wall_seconds";
};

/// One named measurement: the median rep's values + metrics delta,
/// with the wall-clock spread across reps for honesty.
struct RunResult {
  std::string name;
  int reps = 0;
  int warmup = 0;
  std::string median_key;
  double wall_seconds = 0.0;  // median rep
  double wall_min = 0.0;
  double wall_max = 0.0;
  std::map<std::string, double, std::less<>> values;
  obs::MetricsSnapshot metrics;  // median rep's per-rep registry delta
};

class Harness {
 public:
  /// Parses --json-out / --trace-out / --reps out of argv (other flags
  /// are left for the bench to interpret) and starts the global tracer
  /// when a trace was requested.
  Harness(std::string name, int argc = 0, char** argv = nullptr);
  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  const std::string& name() const { return name_; }
  bool json_requested() const { return !json_out_.empty(); }

  /// Effective rep count for a run that defaults to `default_reps`,
  /// after --reps / DTAINT_BENCH_N (benches print it up front).
  int RepsFor(int default_reps) const;

  /// Executes `body` warmup+reps times, snapshotting the metrics
  /// registry around each timed rep, and records the median rep.
  const RunResult& Run(std::string run_name, const RunOptions& opts,
                       const std::function<void(Rep&)>& body);
  const RunResult& Run(std::string run_name,
                       const std::function<void(Rep&)>& body) {
    return Run(std::move(run_name), RunOptions{}, body);
  }

  /// Records a run measured by an external framework (google-benchmark
  /// in bench/micro_engine.cpp) so it lands in the same document.
  const RunResult& AddExternalRun(
      std::string run_name, double wall_seconds,
      std::map<std::string, double, std::less<>> values);

  /// Freeform provenance line surfaced in the document's "notes".
  void Note(std::string note);

  /// A deque so the references Run()/AddExternalRun() return stay
  /// valid across later runs (benches hold results for summary rows).
  const std::deque<RunResult>& runs() const { return runs_; }

  /// The full BENCH document; `ok` is the bench's self-check verdict.
  std::string ToJson(bool ok) const;

  /// Writes --json-out / --trace-out if requested and returns the
  /// bench's exit code: `ok ? 0 : 1`, or 2 when a write failed.
  int Finish(bool ok);

  // ---- test hooks ----------------------------------------------------------
  /// Replaces the wall clock (monotonic seconds) for deterministic
  /// median-selection tests.
  void SetClockForTest(std::function<double()> now_seconds);
  /// Redirects per-rep snapshots to a private registry.
  void SetRegistryForTest(obs::MetricsRegistry* registry);

 private:
  std::string name_;
  std::string json_out_;
  std::string trace_out_;
  bool started_tracer_ = false;
  int reps_override_ = 0;    // 0 = none
  int warmup_override_ = -1;  // -1 = none
  std::function<double()> now_;
  obs::MetricsRegistry* registry_;
  std::deque<RunResult> runs_;
  std::deque<std::string> notes_;
};

}  // namespace dtaint::bench
