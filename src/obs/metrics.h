// Metrics registry — named counters, gauges, and log-scale histograms
// that every pipeline phase reports into (naming scheme:
// `phase.metric`, e.g. "cache.hits", "pathfind.paths_explored").
//
// Design constraints, in order:
//  * thread-safe: phase 1 of the interprocedural pass updates from a
//    worker pool; instruments are single relaxed atomics;
//  * cheap when disabled: every mutation starts with one relaxed load
//    of the registry's enabled flag and allocates nothing;
//  * stable handles: counter()/gauge()/histogram() return references
//    that live as long as the registry, so hot paths look a name up
//    once and keep the handle.
//
// The process-global registry (MetricsRegistry::Global()) is what the
// pipeline uses; tests construct private registries.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dtaint::obs {

class MetricsRegistry;

/// Monotonic counter.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  std::atomic<uint64_t> value_{0};
  const std::atomic<bool>* enabled_;
};

/// Last-writer-wins instantaneous value (e.g. cache memory footprint).
class Gauge {
 public:
  void Set(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  std::atomic<double> value_{0.0};
  const std::atomic<bool>* enabled_;
};

/// Quantile summary of a histogram at one point in time.
struct HistogramStats {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;

  /// Raw power-of-two bucket counts (Histogram::kBuckets entries when
  /// captured from a registry, empty when hand-built). Not serialized;
  /// carried so MetricsSnapshot::DeltaSince can subtract histograms
  /// bucket-wise instead of leaking cumulative quantiles across runs.
  std::vector<uint64_t> buckets;

  bool operator==(const HistogramStats&) const = default;
};

/// Recomputes count + quantiles from raw bucket counts. Quantiles are
/// bucket upper bounds clamped to `max_clamp` (the exact observed max
/// for a live histogram; the cumulative max for a delta, where the
/// true per-interval max is unknowable — still a sound upper bound).
HistogramStats HistogramStatsFromBuckets(std::vector<uint64_t> buckets,
                                         uint64_t sum, uint64_t max_clamp);

/// Log-scale (power-of-two bucket) histogram of non-negative integer
/// samples: bucket i holds values with bit_width == i, i.e. bucket 0 is
/// {0}, bucket i>=1 covers [2^(i-1), 2^i). Quantiles report the upper
/// bound of the bucket containing the rank, clamped to the exact
/// observed maximum — deterministic for a given multiset of samples.
class Histogram {
 public:
  static constexpr int kBuckets = 65;  // bit_width of a uint64 is 0..64

  void Observe(uint64_t v);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }

  /// q in [0, 1]; returns 0 when empty.
  uint64_t ValueAtQuantile(double q) const;

  HistogramStats Stats() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  const std::atomic<bool>* enabled_;
};

/// Point-in-time copy of every instrument, name-sorted (so any
/// serialization of it is deterministic given deterministic values).
struct MetricsSnapshot {
  std::map<std::string, uint64_t, std::less<>> counters;
  std::map<std::string, double, std::less<>> gauges;
  std::map<std::string, HistogramStats, std::less<>> histograms;

  /// Counter value by name; 0 when absent.
  uint64_t CounterValue(std::string_view name) const;

  /// Per-run view: counters become deltas against `before`; histograms
  /// are subtracted bucket-wise (count/sum/quantiles recomputed over
  /// the interval's samples only, max kept as the cumulative upper
  /// bound) when both snapshots carry raw buckets, so successive runs
  /// against one registry don't contaminate each other's quantiles;
  /// gauges keep this snapshot's (current) values.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& before) const;

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Serializes a snapshot as
/// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,max,
/// p50,p90,p95,p99}}} — the payload of --metrics-out, of the report's
/// "metrics" object, and of each bench run's "metrics" block. Raw
/// buckets are intentionally not serialized.
std::string MetricsSnapshotToJson(const MetricsSnapshot& snapshot);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The registry the pipeline reports into.
  static MetricsRegistry& Global();

  /// Collection on/off (default on). Disabling makes every instrument
  /// mutation a no-op branch; existing values stay readable.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Get-or-create. References stay valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot Snapshot() const;
  std::string ToJson() const { return MetricsSnapshotToJson(Snapshot()); }

  /// Acquires the registry's map lock for the duration of a fork(2),
  /// so a forked scan worker never inherits it mid-counter-creation
  /// from another thread (instrument *mutation* is lock-free and safe
  /// regardless). See FlightRecorder::LockForFork.
  std::unique_lock<std::mutex> LockForFork() {
    return std::unique_lock<std::mutex>(mu_);
  }

  /// Zeroes every registered instrument (handles stay valid). The
  /// scoped-reset alternative to snapshot/delta isolation: bench reps
  /// that want pristine counters call this between reps instead of
  /// carrying `before` snapshots around. Not safe while workers are
  /// concurrently mutating instruments — call between runs, not during.
  void Reset();

 private:
  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace dtaint::obs
