#include "src/obs/log.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <string>

#include "src/obs/stopwatch.h"

namespace dtaint::obs {

namespace internal {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
}  // namespace internal

namespace {

std::atomic<LogSink> g_sink{nullptr};
std::atomic<void*> g_sink_user{nullptr};

/// Seconds since the first log statement of the process — stable within
/// a run, meaningless across runs, which is all a log timestamp needs.
double UptimeSeconds() {
  static const Stopwatch start;
  return start.Seconds();
}

}  // namespace

void DefaultLogSink(LogLevel level, std::string_view component,
                    std::string_view message, void* /*user*/) {
  // One buffered line per record so concurrent threads don't interleave
  // mid-line.
  std::string line = "ts=";
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%.3f", UptimeSeconds());
  line += ts;
  line += " level=";
  line += LogLevelName(level);
  line += " tid=";
  line += std::to_string(ThreadId());
  line += ' ';
  line.append(component.data(), component.size());
  line += ": ";
  line.append(message.data(), message.size());
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
  }
  return "?";
}

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  for (LogLevel level : {LogLevel::kError, LogLevel::kWarn, LogLevel::kInfo,
                         LogLevel::kDebug}) {
    if (text == LogLevelName(level)) {
      *out = level;
      return true;
    }
  }
  return false;
}

void SetLogLevel(LogLevel level) {
  internal::g_log_level.store(static_cast<int>(level),
                              std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(
      internal::g_log_level.load(std::memory_order_relaxed));
}

uint32_t ThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id = next.fetch_add(1);
  return id;
}

void SetLogSink(LogSink sink, void* user) {
  // user first: a racing Log must never pair the new sink with the old
  // user pointer's lifetime assumptions. (Callers swap sinks only at
  // quiescent points; this just keeps the benign order.)
  g_sink_user.store(user, std::memory_order_relaxed);
  g_sink.store(sink, std::memory_order_relaxed);
}

void Log(LogLevel level, std::string_view component,
         std::string_view message) {
  if (!LogEnabled(level)) return;
  LogSink sink = g_sink.load(std::memory_order_relaxed);
  void* user = g_sink_user.load(std::memory_order_relaxed);
  if (!sink) {
    DefaultLogSink(level, component, message, nullptr);
  } else {
    sink(level, component, message, user);
  }
}

void Logf(LogLevel level, const char* component, const char* fmt, ...) {
  if (!LogEnabled(level)) return;
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n < 0) return;
  size_t len = std::min(static_cast<size_t>(n), sizeof(buf) - 1);
  Log(level, component, std::string_view(buf, len));
}

}  // namespace dtaint::obs
