// Live scan telemetry — a versioned, crash-safe NDJSON event stream.
//
// A fleet scan that dies three hours in must not be a black box: the
// Chrome trace and the JSON report only exist if the run *finishes*.
// The event stream is the always-durable record: every scan-lifecycle
// event (corpus/image/phase/function begin+end, cache traffic, budget
// exhaustion, alias-mode decisions, incidents, per-finding evidence,
// periodic heartbeats) is serialized as one JSON line and appended to
// the `--events-out` file with a single O_APPEND write(2) — so every
// event that was emitted before a crash is on disk, each on its own
// parseable line. Consumers (tools/scan_report, the fleet triage
// pipeline) tolerate a torn final line; everything before it is valid.
//
// Event schema v1 — every line carries the envelope
//   {"v":1,"type":"<type>","ts_ms":<ms since stream open>,"tid":N,...}
// plus type-specific fields. Types emitted by the pipeline:
//
//   stream_begin / stream_end    tool, pid, unix_ms / outcome, events
//   corpus_begin / corpus_end    fleet scan brackets (corpus_scan)
//   image_begin / image_end      per-image outcome, status, duration_ms
//   binary_begin / binary_end    one Analyze() call
//   phase_begin / phase_end      lift|summary|link|structsim|pathfind|
//                                sanitize, with duration_ms and
//                                per-phase gauges (cache hits/misses,
//                                resolved indirect calls, paths)
//   function_begin / function_end  per-function summary production:
//                                micros, cached (cache hit/miss),
//                                degraded
//   alias_mode                   which alias strategy the run chose
//   incident                     mirror of a resilience Incident
//                                (budget exhaustion carries its cause)
//   finding                      per-finding evidence: class, source,
//                                sink, sink function/site, hops,
//                                constraint count
//   heartbeat                    progress gauges: images done/total,
//                                functions done + functions/sec, RSS,
//                                events emitted — a stalled worker is
//                                distinguishable from a slow one
//   log                          flight-recorder-only: a log record
//
// Event *counts* per type are deterministic for a given program and
// config (timestamps are not); the bench overhead gate exact-matches
// them.
//
// The flight recorder is the crash half: a fixed-size lock-protected
// ring of the most recent event lines plus log records. Incident
// emission flushes it to `<events-out>.flight.ndjson`, and a fatal-
// signal hook (SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT) dumps it with
// async-signal-safe writes only — so the last moments before a crash
// are always recoverable even if the OS page cache ate the tail of the
// main stream.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "src/resilience/incident.h"

namespace dtaint::obs {

/// Bumped whenever the line envelope or a type's fields change shape;
/// consumers check the stream_begin "v".
inline constexpr int kEventSchemaVersion = 1;

/// One event under construction: type + flat field list. Field helpers
/// append pre-escaped `"key":value` fragments; the stream adds the
/// envelope (v, ts_ms, tid) at emit time.
class Event {
 public:
  explicit Event(std::string_view type);

  Event& Str(std::string_view key, std::string_view value);
  Event& Num(std::string_view key, uint64_t value);
  Event& Num(std::string_view key, int value) {
    return Num(key, static_cast<uint64_t>(value < 0 ? 0 : value));
  }
  Event& Double(std::string_view key, double value, int decimals = 3);
  Event& Bool(std::string_view key, bool value);

  const std::string& type() const { return type_; }
  const std::string& fields() const { return fields_; }

 private:
  std::string type_;
  std::string fields_;  // ",\"k\":v,\"k2\":v2" — envelope tail
};

/// Fixed-size ring of the most recent NDJSON lines. Record() is
/// mutex-guarded (cheap; emission is never the hot path — the write(2)
/// of the main stream dominates). Dump() rewrites the armed path with
/// the ring's contents oldest-first; DumpFromSignal() does the same
/// with open/write/close only and NO locking — best effort by design:
/// a line being concurrently overwritten may come out torn, which the
/// NDJSON consumers already tolerate.
class FlightRecorder {
 public:
  static constexpr size_t kSlots = 256;
  static constexpr size_t kSlotBytes = 768;

  static FlightRecorder& Global();

  /// Enables recording and sets the dump path (also what the fatal-
  /// signal hook writes). Clears previously recorded lines.
  void Arm(const std::string& path);
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Appends one line (truncated to kSlotBytes-2). No-op when disarmed.
  void Record(std::string_view line);

  /// Normal-context dump (takes the lock). False on I/O failure.
  bool Dump();
  /// Async-signal-safe dump for the crash hook.
  void DumpFromSignal();

  /// Total lines recorded since Arm (tests).
  uint64_t recorded() const { return seq_.load(std::memory_order_relaxed); }

  /// Acquires the recorder's lock for the duration of a fork(2). The
  /// scan supervisor holds it (with the other singleton locks) across
  /// fork so a child never inherits a mutex mid-Record from another
  /// thread — which would deadlock the child's first event emission.
  std::unique_lock<std::mutex> LockForFork() {
    return std::unique_lock<std::mutex>(mu_);
  }

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

 private:
  FlightRecorder() = default;
  void DumpToFd(int fd) const;

  struct Slot {
    uint32_t len = 0;
    char text[kSlotBytes];
  };

  mutable std::mutex mu_;
  Slot slots_[kSlots];
  std::atomic<uint64_t> seq_{0};
  std::atomic<bool> armed_{false};
  char path_[512] = {0};
};

/// Installs the fatal-signal hook (SIGSEGV, SIGBUS, SIGILL, SIGFPE,
/// SIGABRT) that dumps the flight recorder before re-raising the
/// default action. Idempotent; EventStream::Open calls it.
void InstallCrashHandler();

class EventStream {
 public:
  EventStream() = default;
  ~EventStream();
  EventStream(const EventStream&) = delete;
  EventStream& operator=(const EventStream&) = delete;

  /// The stream the pipeline reports into (opened by --events-out).
  static EventStream& Global();

  /// Creates/truncates `path`, writes the stream_begin event, arms the
  /// global flight recorder at `path + ".flight.ndjson"`, installs the
  /// crash hook, and tees log records into the recorder. False on I/O
  /// failure (stream stays disabled).
  bool Open(const std::string& path, std::string_view tool);

  /// Writes the stream_end event and closes. Safe when never opened.
  void Close(std::string_view outcome);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Serializes and appends one event line (single write(2)); also
  /// records the line into the flight recorder and bumps the per-type
  /// count. No-op when the stream is not open.
  void Emit(const Event& event);

  /// Emits a heartbeat carrying the standard progress gauges. Callers
  /// pass totals; functions/sec and RSS are computed here.
  void EmitHeartbeat(uint64_t images_done, uint64_t images_total,
                     uint64_t functions_done, double functions_per_sec);

  /// Lifetime event count (including stream_begin).
  uint64_t EventCount() const { return count_.load(std::memory_order_relaxed); }

  /// Per-type emission counts — deterministic for a given scan, which
  /// is what the bench overhead gate exact-matches.
  std::map<std::string, uint64_t> CountsByType() const;

  /// Milliseconds since Open (what ts_ms carries).
  double NowRelMillis() const;

  /// See FlightRecorder::LockForFork.
  std::unique_lock<std::mutex> LockForFork() {
    return std::unique_lock<std::mutex>(mu_);
  }

 private:
  void WriteLine(std::string_view line);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  int fd_ = -1;
  std::string path_;
  std::chrono::steady_clock::time_point t0_;
  std::atomic<uint64_t> count_{0};
  std::map<std::string, uint64_t, std::less<>> counts_by_type_;
};

/// Emits an `incident` event mirroring `incident` (budget cause
/// included when set) and flushes the flight recorder — incident
/// handling is one of the two flush triggers, so the recorder's view
/// of "what led up to this" is on disk even if the process dies later.
void EmitIncident(EventStream& stream, const Incident& incident);

/// Resident-set size of this process in bytes (Linux /proc; 0 where
/// unavailable).
uint64_t CurrentRssBytes();

/// Background heartbeat: a thread that emits one heartbeat event every
/// `period_ms` while alive, plus a final one at destruction (so every
/// run with heartbeats enabled ends with a deterministic last gauge
/// reading). Images gauges are fed by the owner via the atomics;
/// functions_done reads the "summary.functions_done" live counter the
/// interprocedural pass increments per function. No thread is spawned
/// when the stream is disabled or period_ms is 0.
class Heartbeat {
 public:
  Heartbeat(EventStream& stream, uint32_t period_ms);
  ~Heartbeat() { Stop(); }
  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  std::atomic<uint64_t>& images_done() { return images_done_; }
  std::atomic<uint64_t>& images_total() { return images_total_; }

  /// Emits the final beat and joins the thread. Idempotent.
  void Stop();

 private:
  void Beat();

  EventStream& stream_;
  std::atomic<uint64_t> images_done_{0};
  std::atomic<uint64_t> images_total_{0};
  uint64_t last_functions_ = 0;
  std::chrono::steady_clock::time_point last_beat_;
  bool running_ = false;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace dtaint::obs
