// Span tracer — RAII scoped spans serialized as Chrome trace-event
// JSON ("X" complete events), loadable in chrome://tracing or Perfetto.
//
// The pipeline nests spans three deep: binary (one per Analyze call) →
// phase (lift, summary, structsim, link, pathfind, sanitize) →
// function (one per intraprocedural symbolic analysis). Nesting is
// positional — Chrome reconstructs the stack per thread from
// timestamps — so spans from the interprocedural worker pool land on
// their own tracks via obs::ThreadId().
//
// Cost model: a span against a stopped tracer stores two string_views
// and a null pointer — no clock read, no allocation (asserted by the
// obs test suite). Only an enabled span pays for a timestamp pair and,
// at destruction, one mutex-guarded event append.
//
// Two output modes:
//  * Buffered (Start + WriteChromeJson): events accumulate in memory
//    and the whole JSON Object Format document is written at the end.
//    Zero I/O during the run, but a crash loses the entire trace.
//  * Streamed (StreamTo + FinishStream): events are appended to the
//    file as they finish, in Chrome's JSON Array Format, one write(2)
//    per record with the separating comma *prefixed* to the record.
//    Crash-tolerance guarantee: at any instant the file is
//    `[\n` + zero or more `,`-separated records — appending a single
//    `]` makes it a valid JSON array (and Perfetto loads the
//    unterminated form as-is). Every span that finished before a crash
//    is in the file; nothing dangles except possibly a torn final
//    record, which recovery tooling may drop.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dtaint::obs {

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The tracer the pipeline reports into (started by --trace-out).
  static Tracer& Global();

  /// Clears recorded events and starts accepting spans; timestamps are
  /// relative to this call.
  void Start();

  /// Stops accepting spans (recorded events are kept for export).
  void Stop();

  /// Crash-tolerant alternative to Start(): creates/truncates `path`,
  /// writes the array opener, and streams each completed event to the
  /// file immediately (one write(2) per record, comma prefixed — see
  /// the file comment for the recovery guarantee). Implies Start();
  /// events are NOT additionally buffered in memory. False on I/O
  /// failure (tracer stays stopped).
  bool StreamTo(const std::string& path);

  /// Writes the closing `]` and closes the streamed file; stops the
  /// tracer. False on I/O failure or if not streaming.
  bool FinishStream();

  bool streaming() const;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds since Start() — what spans record.
  uint64_t NowRelNanos() const;

  /// Appends one complete event; `rel_start_ns` is an offset from
  /// Start(). Dropped when the tracer is stopped. Public so tests can
  /// record deterministic timestamps.
  void RecordComplete(std::string_view category, std::string_view name,
                      uint64_t rel_start_ns, uint64_t dur_ns);

  size_t EventCount() const;

  /// {"traceEvents":[{"name":…,"cat":…,"ph":"X","ts":…,"dur":…,
  ///   "pid":1,"tid":…},…],"displayTimeUnit":"ms"} — ts/dur in
  /// microseconds with nanosecond precision, as the format specifies.
  std::string ToChromeJson() const;

  /// Writes ToChromeJson() to `path`; false on I/O failure.
  bool WriteChromeJson(const std::string& path) const;

 private:
  struct Event {
    std::string category;
    std::string name;
    uint64_t start_ns = 0;
    uint64_t dur_ns = 0;
    uint32_t tid = 0;
  };

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::chrono::steady_clock::time_point t0_;
  // Streamed mode (guarded by mu_): destination fd, whether the next
  // record is the first (no comma prefix), events written so far.
  int stream_fd_ = -1;
  bool stream_first_ = true;
  size_t stream_count_ = 0;
};

/// RAII scoped span. Construction against a stopped tracer is a no-op
/// (no clock read, no allocation); against a running one, destruction
/// records a complete event covering the span's lifetime. The category
/// and name string_views must outlive the span — in the pipeline they
/// are literals and Program-owned function names.
class Span {
 public:
  Span() = default;
  Span(Tracer& tracer, std::string_view category, std::string_view name) {
    if (!tracer.enabled()) return;
    tracer_ = &tracer;
    category_ = category;
    name_ = name;
    start_ns_ = tracer.NowRelNanos();
  }

  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept {
    Finish();
    tracer_ = other.tracer_;
    category_ = other.category_;
    name_ = other.name_;
    start_ns_ = other.start_ns_;
    other.tracer_ = nullptr;
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { Finish(); }

  /// Records the event now instead of at destruction.
  void Finish() {
    if (!tracer_) return;
    tracer_->RecordComplete(category_, name_, start_ns_,
                            tracer_->NowRelNanos() - start_ns_);
    tracer_ = nullptr;
  }

 private:
  Tracer* tracer_ = nullptr;
  std::string_view category_;
  std::string_view name_;
  uint64_t start_ns_ = 0;
};

}  // namespace dtaint::obs
