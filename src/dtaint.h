// Umbrella header: everything a library consumer needs.
//
//   #include "src/dtaint.h"
//
//   dtaint::DTaint detector;
//   auto report = detector.Analyze(binary);
//
// Individual headers remain includable for finer-grained dependencies.
#pragma once

#include "src/binary/binary.h"
#include "src/binary/loader.h"
#include "src/binary/writer.h"
#include "src/cfg/callgraph.h"
#include "src/cfg/cfg_builder.h"
#include "src/cfg/loops.h"
#include "src/core/alias.h"
#include "src/core/dtaint.h"
#include "src/core/interproc.h"
#include "src/core/pathfinder.h"
#include "src/core/sanitizer.h"
#include "src/core/sources_sinks.h"
#include "src/core/structsim.h"
#include "src/firmware/extractor.h"
#include "src/firmware/image.h"
#include "src/firmware/packer.h"
#include "src/ir/block.h"
#include "src/ir/printer.h"
#include "src/isa/asm_builder.h"
#include "src/isa/decode.h"
#include "src/isa/encode.h"
#include "src/lifter/lifter.h"
#include "src/report/json.h"
#include "src/report/scoring.h"
#include "src/report/table.h"
#include "src/symexec/engine.h"
#include "src/synth/firmware_synth.h"
#include "src/synth/paper_images.h"
#include "src/util/status.h"

namespace dtaint {

/// Library version (semver).
inline constexpr const char* kVersion = "1.0.0";

}  // namespace dtaint
