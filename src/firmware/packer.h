// FirmwarePacker: serializes a FirmwareImage into a distributable blob
// ("what the vendor website ships"), applying the image's packing mode.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/firmware/image.h"
#include "src/util/status.h"

namespace dtaint {

/// Magic at the start of every packed image ("what binwalk scans for").
inline constexpr uint8_t kFwMagic[4] = {'D', 'T', 'F', 'W'};
/// XOR key used by Packing::kXor vendors.
inline constexpr uint8_t kXorKey = 0x5A;

class FirmwarePacker {
 public:
  /// Packs an image into its on-the-wire blob. kEncrypted/kUnknown
  /// payloads are scrambled irrecoverably (keyed by image hash), so a
  /// correct extractor must fail on them — matching real life.
  static std::vector<uint8_t> Pack(const FirmwareImage& image);
};

}  // namespace dtaint
