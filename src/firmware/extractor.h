// FirmwareExtractor — the repo's Binwalk stand-in.
//
// Scans a blob for the DTFW magic (images may be wrapped in vendor
// headers / padding), parses the filesystem, undoes recoverable
// packing (plain, xor), verifies the payload checksum, and returns the
// unpacked FirmwareImage plus the list of executable candidates.
// Encrypted/unknown packings fail with a descriptive status, modeling
// the >65% unpack-failure rate reported in the paper (§VI).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/firmware/image.h"
#include "src/util/status.h"

namespace dtaint {

struct ExtractionResult {
  FirmwareImage image;
  /// Paths of files that look like DTBIN executables, in rootfs order.
  std::vector<std::string> executable_paths;
};

class FirmwareExtractor {
 public:
  /// Extracts the first firmware image found in `blob`. `origin` (the
  /// blob's file name or fleet label) is woven into error messages so
  /// corpus-scan incident logs name the offending image.
  static Result<ExtractionResult> Extract(std::span<const uint8_t> blob,
                                          std::string_view origin = {});

  /// Finds the offset of the DTFW magic, scanning like binwalk does.
  static std::optional<size_t> FindMagic(std::span<const uint8_t> blob);
};

}  // namespace dtaint
