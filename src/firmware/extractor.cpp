#include "src/firmware/extractor.h"

#include "src/binary/loader.h"
#include "src/firmware/packer.h"
#include "src/resilience/fault.h"
#include "src/util/hash.h"

namespace dtaint {

namespace {

class Reader {
 public:
  explicit Reader(std::span<const uint8_t> bytes) : bytes_(bytes) {}
  bool ok() const { return ok_; }
  size_t remaining() const { return bytes_.size() - pos_; }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return bytes_[pos_++];
  }
  uint16_t U16() {
    uint16_t lo = U8();
    return static_cast<uint16_t>(lo | (uint16_t{U8()} << 8));
  }
  uint32_t U32() {
    uint32_t lo = U16();
    return lo | (uint32_t{U16()} << 16);
  }
  uint64_t U64() {
    uint64_t lo = U32();
    return lo | (uint64_t{U32()} << 32);
  }
  std::string Str() {
    uint16_t len = U16();
    if (!Need(len)) return {};
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return s;
  }
  std::vector<uint8_t> Bytes(size_t n) {
    if (!Need(n)) return {};
    std::vector<uint8_t> out(bytes_.begin() + pos_, bytes_.begin() + pos_ + n);
    pos_ += n;
    return out;
  }

 private:
  bool Need(size_t n) {
    if (pos_ + n > bytes_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::optional<size_t> FirmwareExtractor::FindMagic(
    std::span<const uint8_t> blob) {
  if (blob.size() < 4) return std::nullopt;
  for (size_t i = 0; i + 4 <= blob.size(); ++i) {
    if (blob[i] == kFwMagic[0] && blob[i + 1] == kFwMagic[1] &&
        blob[i + 2] == kFwMagic[2] && blob[i + 3] == kFwMagic[3]) {
      return i;
    }
  }
  return std::nullopt;
}

Result<ExtractionResult> FirmwareExtractor::Extract(
    std::span<const uint8_t> blob, std::string_view origin) {
  const std::string where =
      origin.empty() ? std::string() : std::string(origin) + ": ";
  if (FaultPlan::Global().ShouldFail(FaultSite::kExtract, origin)) {
    return Internal(where + "injected extract fault");
  }
  auto magic_off = FindMagic(blob);
  if (!magic_off) {
    return NotFound(where + "no firmware signature found in blob");
  }
  Reader r(blob.subspan(*magic_off));
  (void)r.Bytes(4);  // magic
  uint8_t version = r.U8();
  if (version != 1) {
    return Unsupported(where + "unsupported firmware format version");
  }
  uint8_t packing_raw = r.U8();
  if (packing_raw > static_cast<uint8_t>(Packing::kUnknown)) {
    return CorruptData(where + "bad packing tag");
  }
  Packing packing = static_cast<Packing>(packing_raw);
  uint8_t arch_raw = r.U8();
  if (arch_raw > static_cast<uint8_t>(Arch::kDtMips)) {
    return CorruptData(where + "bad architecture tag");
  }
  (void)r.U8();  // reserved

  ExtractionResult result;
  FirmwareImage& image = result.image;
  image.packing = packing;
  image.arch = static_cast<Arch>(arch_raw);
  image.vendor = r.Str();
  image.product = r.Str();
  image.version = r.Str();
  image.release_year = r.U16();
  uint64_t want_checksum = r.U64();
  uint32_t fs_size = r.U32();
  if (!r.ok() || fs_size > r.remaining()) {
    return CorruptData(where + "firmware header truncated");
  }
  std::vector<uint8_t> fs = r.Bytes(fs_size);

  // Undo recoverable packing; refuse unrecoverable ones, like binwalk
  // does for vendor-encrypted images.
  switch (packing) {
    case Packing::kPlain:
      break;
    case Packing::kXor:
      for (uint8_t& b : fs) b ^= kXorKey;
      break;
    case Packing::kEncrypted:
      return Unsupported(where +
                         "vendor-encrypted filesystem (no key available)");
    case Packing::kUnknown:
      return Unsupported(where + "unrecognized filesystem/compression format");
  }

  uint64_t got_checksum =
      Fnv1a(std::span<const uint8_t>(fs.data(), fs.size()));
  if (got_checksum != want_checksum) {
    return CorruptData(where + "filesystem checksum mismatch after unpack");
  }

  Reader fr(fs);
  uint32_t n_files = fr.U32();
  if (n_files > 1u << 16) {
    return CorruptData(where + "implausible file count");
  }
  for (uint32_t i = 0; i < n_files; ++i) {
    FirmwareFile f;
    f.path = fr.Str();
    uint32_t size = fr.U32();
    if (!fr.ok() || size > fr.remaining()) {
      return CorruptData(where + "file entry truncated: " + f.path);
    }
    f.bytes = fr.Bytes(size);
    if (BinaryLoader::LooksLikeBinary(f.bytes)) {
      result.executable_paths.push_back(f.path);
    }
    image.files.push_back(std::move(f));
  }
  if (!fr.ok()) return CorruptData(where + "filesystem table truncated");
  return result;
}

}  // namespace dtaint
