// Firmware image model — the repo's stand-in for vendor firmware blobs.
//
// A firmware image is a header plus a flat root-filesystem table
// (path -> payload). Images carry vendor metadata (vendor, product,
// version, release year, architecture) mirroring what the paper's
// crawler scraped from vendor sites, and "packing" attributes that
// model why real images resist unpacking (vendor encryption, unknown
// compression) — the paper reports >65% of images failed to unpack.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/isa/regs.h"
#include "src/util/status.h"

namespace dtaint {

/// How an image's payload is packed. Only kPlain and kXor are
/// extractable by our binwalk-like tool; the others simulate vendor
/// encryption / proprietary compression.
enum class Packing : uint8_t {
  kPlain = 0,
  kXor = 1,        // trivially obfuscated, extractor can undo it
  kEncrypted = 2,  // extraction fails (no key)
  kUnknown = 3,    // unrecognized format, extraction fails
};

std::string_view PackingName(Packing packing);

struct FirmwareFile {
  std::string path;  // e.g. "/bin/cgibin", "/etc/passwd"
  std::vector<uint8_t> bytes;
};

/// In-memory firmware image (pre-packing).
struct FirmwareImage {
  std::string vendor;        // "D-Link", "Netgear", ...
  std::string product;       // "DIR-645"
  std::string version;       // "1.03"
  uint16_t release_year = 2014;
  Arch arch = Arch::kDtArm;
  Packing packing = Packing::kPlain;
  std::vector<FirmwareFile> files;

  const FirmwareFile* FindFile(std::string_view path) const;
  /// Display label "Vendor Product_Version".
  std::string Label() const;
  /// Total payload size in bytes.
  uint64_t TotalBytes() const;
};

}  // namespace dtaint
