#include "src/firmware/packer.h"

#include "src/util/hash.h"

namespace dtaint {

namespace {

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}
void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v));
  PutU16(out, static_cast<uint16_t>(v >> 16));
}
void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}
void PutStr(std::vector<uint8_t>& out, const std::string& s) {
  PutU16(out, static_cast<uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

}  // namespace

std::vector<uint8_t> FirmwarePacker::Pack(const FirmwareImage& image) {
  // Build the filesystem payload first.
  std::vector<uint8_t> fs;
  PutU32(fs, static_cast<uint32_t>(image.files.size()));
  for (const FirmwareFile& f : image.files) {
    PutStr(fs, f.path);
    PutU32(fs, static_cast<uint32_t>(f.bytes.size()));
    fs.insert(fs.end(), f.bytes.begin(), f.bytes.end());
  }
  uint64_t fs_checksum = Fnv1a(std::span<const uint8_t>(fs.data(), fs.size()));

  // Apply packing transform.
  switch (image.packing) {
    case Packing::kPlain:
      break;
    case Packing::kXor:
      for (uint8_t& b : fs) b ^= kXorKey;
      break;
    case Packing::kEncrypted:
    case Packing::kUnknown: {
      // Irrecoverable keystream derived from the payload itself;
      // extraction without the vendor key is impossible by design.
      uint64_t key = HashCombine(fs_checksum, 0xDEADBEEFCAFEF00DULL);
      for (size_t i = 0; i < fs.size(); ++i) {
        key = key * 6364136223846793005ULL + 1442695040888963407ULL;
        fs[i] ^= static_cast<uint8_t>(key >> 33);
      }
      break;
    }
  }

  std::vector<uint8_t> out;
  out.insert(out.end(), kFwMagic, kFwMagic + 4);
  out.push_back(1);  // format version
  out.push_back(static_cast<uint8_t>(image.packing));
  out.push_back(static_cast<uint8_t>(image.arch));
  out.push_back(0);  // reserved
  PutStr(out, image.vendor);
  PutStr(out, image.product);
  PutStr(out, image.version);
  PutU16(out, image.release_year);
  PutU64(out, fs_checksum);
  PutU32(out, static_cast<uint32_t>(fs.size()));
  out.insert(out.end(), fs.begin(), fs.end());
  return out;
}

}  // namespace dtaint
