#include "src/firmware/image.h"

namespace dtaint {

std::string_view PackingName(Packing packing) {
  switch (packing) {
    case Packing::kPlain:
      return "plain";
    case Packing::kXor:
      return "xor";
    case Packing::kEncrypted:
      return "encrypted";
    case Packing::kUnknown:
      return "unknown";
  }
  return "?";
}

const FirmwareFile* FirmwareImage::FindFile(std::string_view path) const {
  for (const FirmwareFile& f : files) {
    if (f.path == path) return &f;
  }
  return nullptr;
}

std::string FirmwareImage::Label() const {
  return vendor + " " + product + "_" + version;
}

uint64_t FirmwareImage::TotalBytes() const {
  uint64_t total = 0;
  for (const FirmwareFile& f : files) total += f.bytes.size();
  return total;
}

}  // namespace dtaint
