#include "src/vm/vm.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "src/isa/decode.h"
#include "src/util/strings.h"

namespace dtaint {

namespace {

/// lr value planted at the entry so the final Ret is recognizable.
constexpr uint32_t kRetSentinel = 0xDEAD0000;

int32_t Signed(uint32_t v) { return static_cast<int32_t>(v); }

}  // namespace

Vm::Vm(const Binary& binary, VmConfig config)
    : binary_(binary), config_(std::move(config)) {
  // Map every initialized section into guest memory (dispatch tables in
  // .data, strings in .rodata, and .text for completeness).
  for (const Section& sec : binary_.sections) {
    for (size_t i = 0; i < sec.bytes.size(); ++i) {
      mem_[sec.addr + static_cast<uint32_t>(i)] = sec.bytes[i];
    }
  }
}

uint8_t Vm::ReadByte(uint32_t addr) const {
  auto it = mem_.find(addr);
  return it == mem_.end() ? 0 : it->second;
}

uint32_t Vm::ReadWordMem(uint32_t addr) const {
  // Word accesses honor the flavor's data endianness (dispatch tables
  // and .rodata words were laid out by the arch-aware writer).
  uint8_t bytes[4] = {ReadByte(addr), ReadByte(addr + 1),
                      ReadByte(addr + 2), ReadByte(addr + 3)};
  return ReadWord(binary_.arch, bytes);
}

void Vm::WriteByte(uint32_t addr, uint8_t value, uint32_t site,
                   bool is_prologue_store) {
  if (!is_prologue_store && armed_lr_slots_.count(addr & ~3u)) {
    Flag(ViolationKind::kStackSmash, site,
         "write to saved return address at " + HexStr(addr & ~3u));
    if (config_.stop_on_violation) {
      halt_ = true;
      return;
    }
  }
  mem_[addr] = value;
}

void Vm::WriteWordMem(uint32_t addr, uint32_t value, uint32_t site,
                      bool is_prologue_store) {
  uint8_t bytes[4];
  WriteWord(binary_.arch, bytes, value);
  for (int i = 0; i < 4; ++i) {
    WriteByte(addr + i, bytes[i], site, is_prologue_store);
    if (halt_) return;
  }
}

void Vm::Flag(ViolationKind kind, uint32_t site, std::string detail) {
  result_.violations.push_back({kind, site, std::move(detail)});
}

uint32_t Vm::Arg(int index) const {
  const CallingConvention& cc = ConventionFor(binary_.arch);
  if (index < kNumRegArgs) return regs_[cc.arg_regs[index]];
  return ReadWordMem(regs_[kRegSp] +
                     static_cast<uint32_t>(cc.StackArgOffset(index)));
}

uint32_t Vm::FeedAttackerBytes(uint32_t dst, uint32_t max_len,
                               bool nul_terminate, uint32_t site) {
  uint32_t written = 0;
  while (written < max_len &&
         attacker_cursor_ < config_.attacker_bytes.size()) {
    WriteByte(dst + written, config_.attacker_bytes[attacker_cursor_],
              site, false);
    if (halt_) return written;
    ++attacker_cursor_;
    ++written;
  }
  if (nul_terminate) WriteByte(dst + written, 0, site, false);
  return written;
}

std::string Vm::ReadCString(uint32_t addr, uint32_t cap) const {
  std::string out;
  for (uint32_t i = 0; i < cap; ++i) {
    uint8_t c = ReadByte(addr + i);
    if (c == 0) break;
    out += static_cast<char>(c);
  }
  return out;
}

bool Vm::HandleImport(const std::string& name, uint32_t site) {
  const CallingConvention& cc = ConventionFor(binary_.arch);
  uint32_t ret = 0;

  auto copy_n = [&](uint32_t dst, uint32_t src, uint32_t n) {
    for (uint32_t i = 0; i < n && !halt_; ++i) {
      WriteByte(dst + i, ReadByte(src + i), site, false);
    }
  };
  auto copy_cstring = [&](uint32_t dst, uint32_t src,
                          uint32_t cap) -> uint32_t {
    uint32_t i = 0;
    for (; i < cap && !halt_; ++i) {
      uint8_t c = ReadByte(src + i);
      WriteByte(dst + i, c, site, false);
      if (c == 0) break;
    }
    return i;
  };

  if (name == "recv" || name == "read" || name == "recvfrom" ||
      name == "recvmsg") {
    ret = FeedAttackerBytes(Arg(1), Arg(2), false, site);
  } else if (name == "fgets") {
    uint32_t len = Arg(1);
    FeedAttackerBytes(Arg(0), len > 0 ? len - 1 : 0, true, site);
    ret = Arg(0);
  } else if (name == "getenv" || name == "websGetVar" ||
             name == "find_var") {
    uint32_t str = scratch_bump_;
    uint32_t n = FeedAttackerBytes(str, 1024, true, site);
    scratch_bump_ += n + 16;
    ret = str;
  } else if (name == "strcpy") {
    copy_cstring(Arg(0), Arg(1), 1u << 16);
    ret = Arg(0);
  } else if (name == "strncpy") {
    copy_n(Arg(0), Arg(1), Arg(2));
    ret = Arg(0);
  } else if (name == "strcat") {
    uint32_t dst = Arg(0);
    while (ReadByte(dst) != 0) ++dst;
    copy_cstring(dst, Arg(1), 1u << 16);
    ret = Arg(0);
  } else if (name == "memcpy") {
    copy_n(Arg(0), Arg(1), Arg(2));
    ret = Arg(0);
  } else if (name == "sprintf" || name == "snprintf") {
    bool bounded = name == "snprintf";
    uint32_t dst = Arg(0);
    uint32_t cap = bounded ? Arg(1) : 0xFFFFFFFF;
    std::string fmt = ReadCString(Arg(bounded ? 2 : 1));
    int vararg = bounded ? 3 : 2;
    std::string expanded;
    for (size_t i = 0; i < fmt.size(); ++i) {
      if (fmt[i] == '%' && i + 1 < fmt.size() && fmt[i + 1] == 's') {
        expanded += ReadCString(Arg(vararg++));
        ++i;
      } else {
        expanded += fmt[i];
      }
    }
    uint32_t n = std::min<uint32_t>(
        static_cast<uint32_t>(expanded.size()), cap);
    for (uint32_t i = 0; i < n && !halt_; ++i) {
      WriteByte(dst + i, static_cast<uint8_t>(expanded[i]), site, false);
    }
    if (!halt_) WriteByte(dst + n, 0, site, false);
    ret = n;
  } else if (name == "sscanf") {
    // Supports the "%<width>s" conversions the synthesizer emits.
    std::string fmt = ReadCString(Arg(1));
    uint32_t width = 0xFFFFFFFF;
    size_t pct = fmt.find('%');
    if (pct != std::string::npos) {
      uint32_t w = 0;
      for (size_t i = pct + 1; i < fmt.size() && isdigit(fmt[i]); ++i) {
        w = w * 10 + static_cast<uint32_t>(fmt[i] - '0');
      }
      if (w) width = w;
    }
    uint32_t src = Arg(0), dst = Arg(2), i = 0;
    for (; i < width && !halt_; ++i) {
      uint8_t c = ReadByte(src + i);
      if (c == 0 || c == ' ' || c == '\n') break;
      WriteByte(dst + i, c, site, false);
    }
    if (!halt_) WriteByte(dst + i, 0, site, false);
    ret = 1;
  } else if (name == "system" || name == "popen") {
    std::string cmd = ReadCString(Arg(0));
    result_.executed_commands.push_back(cmd);
    if (cmd.find(';') != std::string::npos) {
      Flag(ViolationKind::kCommandInjection, site,
           name + "(\"" + cmd + "\")");
      if (config_.stop_on_violation) halt_ = true;
    }
  } else if (name == "malloc") {
    ret = heap_bump_;
    heap_bump_ += (Arg(0) + 19) & ~3u;
  } else if (name == "strlen") {
    ret = static_cast<uint32_t>(ReadCString(Arg(0)).size());
  } else if (name == "strcmp") {
    ret = static_cast<uint32_t>(
        ReadCString(Arg(0)).compare(ReadCString(Arg(1))));
  } else if (name == "atoi") {
    ret = static_cast<uint32_t>(std::atoi(ReadCString(Arg(0)).c_str()));
  } else if (name == "exit") {
    halt_ = true;
    result_.halted_cleanly = true;
  }
  // Unmodeled imports (printf, socket, ...) return 0 and do nothing.
  regs_[cc.ret_reg] = ret;
  return !halt_;
}

Result<VmResult> Vm::Run(const std::string& function) {
  const Symbol* entry = binary_.FindSymbol(function);
  if (!entry) return NotFound("no such function: " + function);

  uint32_t pc = entry->addr;
  regs_[kRegSp] = kVmStackBase;
  regs_[kRegLr] = kRetSentinel;
  halt_ = false;

  while (!halt_ && result_.steps < config_.max_steps) {
    ++result_.steps;
    auto word = binary_.ReadWordAt(pc);
    if (!word.ok()) return CorruptData("pc left mapped memory");
    auto decoded = Decode(*word);
    if (!decoded.ok()) return decoded.status();
    const Insn& insn = *decoded;
    uint32_t next_pc = pc + kInsnSize;
    uint32_t imm = static_cast<uint32_t>(insn.imm);

    auto alu = [&](uint32_t a, uint32_t b) -> uint32_t {
      switch (insn.op) {
        case Op::kAddR: case Op::kAddI: return a + b;
        case Op::kSubR: case Op::kSubI: return a - b;
        case Op::kMulR: return a * b;
        case Op::kAndR: case Op::kAndI: return a & b;
        case Op::kOrrR: case Op::kOrrI: return a | b;
        case Op::kXorR: case Op::kXorI: return a ^ b;
        case Op::kLslI: return imm >= 32 ? 0 : a << imm;
        case Op::kLsrI: return imm >= 32 ? 0 : a >> imm;
        default: return 0;
      }
    };
    auto take_branch = [&]() -> bool {
      switch (insn.op) {
        case Op::kBeq: return flag_lhs_ == flag_rhs_;
        case Op::kBne: return flag_lhs_ != flag_rhs_;
        case Op::kBlt: return Signed(flag_lhs_) < Signed(flag_rhs_);
        case Op::kBge: return Signed(flag_lhs_) >= Signed(flag_rhs_);
        case Op::kBle: return Signed(flag_lhs_) <= Signed(flag_rhs_);
        case Op::kBgt: return Signed(flag_lhs_) > Signed(flag_rhs_);
        default: return true;
      }
    };

    switch (insn.op) {
      case Op::kMovR: regs_[insn.rd] = regs_[insn.rm]; break;
      case Op::kMovI: regs_[insn.rd] = imm; break;
      case Op::kMovHi:
        regs_[insn.rd] = (regs_[insn.rd] & 0xFFFF) | (imm << 16);
        break;
      case Op::kAddR: case Op::kSubR: case Op::kMulR: case Op::kAndR:
      case Op::kOrrR: case Op::kXorR:
        regs_[insn.rd] = alu(regs_[insn.rn], regs_[insn.rm]);
        break;
      case Op::kAddI: case Op::kSubI: case Op::kAndI: case Op::kOrrI:
      case Op::kXorI: case Op::kLslI: case Op::kLsrI:
        regs_[insn.rd] = alu(regs_[insn.rn], imm);
        break;
      case Op::kLdrW:
        regs_[insn.rd] = ReadWordMem(regs_[insn.rn] + imm);
        break;
      case Op::kLdrB:
        regs_[insn.rd] = ReadByte(regs_[insn.rn] + imm);
        break;
      case Op::kLdrWR:
        regs_[insn.rd] = ReadWordMem(regs_[insn.rn] + regs_[insn.rm]);
        break;
      case Op::kLdrBR:
        regs_[insn.rd] = ReadByte(regs_[insn.rn] + regs_[insn.rm]);
        break;
      case Op::kStrW: {
        // A prologue's save of lr below sp arms the canary slot.
        bool prologue_store =
            insn.rd == kRegLr && insn.rn == kRegSp;
        uint32_t addr = regs_[insn.rn] + imm;
        if (prologue_store) armed_lr_slots_.insert(addr & ~3u);
        WriteWordMem(addr, regs_[insn.rd], pc, prologue_store);
        break;
      }
      case Op::kStrB:
        WriteByte(regs_[insn.rn] + imm,
                  static_cast<uint8_t>(regs_[insn.rd]), pc, false);
        break;
      case Op::kStrWR:
        WriteWordMem(regs_[insn.rn] + regs_[insn.rm], regs_[insn.rd], pc);
        break;
      case Op::kStrBR:
        WriteByte(regs_[insn.rn] + regs_[insn.rm],
                  static_cast<uint8_t>(regs_[insn.rd]), pc, false);
        break;
      case Op::kCmpR:
        flag_lhs_ = regs_[insn.rn];
        flag_rhs_ = regs_[insn.rm];
        break;
      case Op::kCmpI:
        flag_lhs_ = regs_[insn.rn];
        flag_rhs_ = imm;
        break;
      case Op::kB:
        next_pc = next_pc + static_cast<uint32_t>(insn.imm * 4);
        break;
      case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
      case Op::kBle: case Op::kBgt:
        if (take_branch()) {
          next_pc = next_pc + static_cast<uint32_t>(insn.imm * 4);
        }
        break;
      case Op::kBl: {
        uint32_t target = next_pc + static_cast<uint32_t>(insn.imm * 4);
        regs_[kRegLr] = next_pc;
        if (const Import* imp = binary_.ImportAt(target)) {
          if (!HandleImport(imp->name, pc)) break;
          // pc simply falls through to next_pc.
        } else {
          ++call_depth_;
          next_pc = target;
        }
        break;
      }
      case Op::kBlr: {
        uint32_t target = regs_[insn.rm];
        regs_[kRegLr] = next_pc;
        if (const Import* imp = binary_.ImportAt(target)) {
          if (!HandleImport(imp->name, pc)) break;
        } else if (binary_.SymbolAt(target)) {
          ++call_depth_;
          next_pc = target;
        } else {
          return CorruptData("indirect call to unmapped target " +
                             HexStr(target));
        }
        break;
      }
      case Op::kRet: {
        uint32_t target = regs_[kRegLr];
        // Disarm canaries of frames that are now popped.
        for (auto it = armed_lr_slots_.begin();
             it != armed_lr_slots_.end();) {
          if (*it < regs_[kRegSp]) {
            it = armed_lr_slots_.erase(it);
          } else {
            ++it;
          }
        }
        if (target == kRetSentinel) {
          result_.halted_cleanly = true;
          halt_ = true;
          break;
        }
        --call_depth_;
        next_pc = target;
        break;
      }
      case Op::kNop:
      case Op::kSvc:
        break;
      case Op::kInvalid:
        return CorruptData("invalid instruction executed");
    }
    pc = next_pc;
  }
  return result_;
}

}  // namespace dtaint
