// Concrete DT-RISC virtual machine — the dynamic-verification stage.
//
// The paper validates findings on physical devices ("We use real
// devices for verifying these vulnerabilities"). Our devices are
// synthesized, so verification runs here instead: the VM executes the
// binary from a chosen entry function with attacker-scripted input
// feeding the source functions (recv/read/getenv/...), models the libc
// sinks byte-concretely, and watches for the exploit actually landing:
//
//  * stack smash — any write (raw store or modeled copy) that
//    overwrites a frame's saved return address. Function prologues
//    save lr at [sp + frame - 4]; the VM arms that slot like a canary
//    when the prologue writes it and flags any other writer.
//  * command injection — system()/popen() invoked with a command
//    string containing an attacker-supplied ';'.
//
// A static Finding plus a VM violation at the same sink is a confirmed
// proof-of-concept; a sanitized twin must execute the same input with
// no violation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/binary/binary.h"
#include "src/util/status.h"

namespace dtaint {

/// What went wrong (from the device's point of view) during execution.
enum class ViolationKind : uint8_t {
  kStackSmash,        // saved return address overwritten
  kCommandInjection,  // ';' reached system()/popen()
};

struct Violation {
  ViolationKind kind;
  uint32_t site = 0;        // guest pc of the offending instruction/call
  std::string detail;
};

struct VmResult {
  bool halted_cleanly = false;  // returned from the entry function
  uint64_t steps = 0;
  std::vector<Violation> violations;
  /// Commands that reached system()/popen() (attack forensics).
  std::vector<std::string> executed_commands;

  bool Smashed() const {
    for (const Violation& v : violations) {
      if (v.kind == ViolationKind::kStackSmash) return true;
    }
    return false;
  }
  bool Injected() const {
    for (const Violation& v : violations) {
      if (v.kind == ViolationKind::kCommandInjection) return true;
    }
    return false;
  }
};

struct VmConfig {
  uint64_t max_steps = 200000;
  /// Bytes handed out by source functions (recv/read/fgets consume a
  /// prefix per call; getenv-style sources return it as a C string).
  std::vector<uint8_t> attacker_bytes;
  /// Stop at the first violation (default) or keep running.
  bool stop_on_violation = true;
};

class Vm {
 public:
  Vm(const Binary& binary, VmConfig config);

  /// Executes from the entry of `function` until it returns, a
  /// violation fires (with stop_on_violation), or budgets run out.
  Result<VmResult> Run(const std::string& function);

 private:
  // -- memory ----------------------------------------------------------------
  uint8_t ReadByte(uint32_t addr) const;
  uint32_t ReadWordMem(uint32_t addr) const;
  /// All guest-visible writes funnel through here (canary check).
  void WriteByte(uint32_t addr, uint8_t value, uint32_t site,
                 bool is_prologue_store);
  void WriteWordMem(uint32_t addr, uint32_t value, uint32_t site,
                    bool is_prologue_store = false);

  // -- libc models -----------------------------------------------------------
  /// Executes the import called at `site`; returns false to halt.
  bool HandleImport(const std::string& name, uint32_t site);
  uint32_t Arg(int index) const;
  /// Copies attacker bytes into guest memory; returns count written.
  uint32_t FeedAttackerBytes(uint32_t dst, uint32_t max_len,
                             bool nul_terminate, uint32_t site);
  std::string ReadCString(uint32_t addr, uint32_t cap = 4096) const;

  void Flag(ViolationKind kind, uint32_t site, std::string detail);

  const Binary& binary_;
  VmConfig config_;
  VmResult result_;

  uint32_t regs_[kNumRegs] = {};
  uint32_t flag_lhs_ = 0, flag_rhs_ = 0;
  std::map<uint32_t, uint8_t> mem_;
  std::set<uint32_t> armed_lr_slots_;  // canary addresses
  size_t attacker_cursor_ = 0;         // consumed prefix of the script
  uint32_t heap_bump_ = 0xB0000000;    // malloc arena
  uint32_t scratch_bump_ = 0xC0000000; // getenv-string arena
  int call_depth_ = 0;
  bool halt_ = false;
};

/// Stack base the VM starts with (sp at the entry function).
inline constexpr uint32_t kVmStackBase = 0x7FFF0000;

}  // namespace dtaint
