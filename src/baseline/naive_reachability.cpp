#include "src/baseline/naive_reachability.h"

#include <map>
#include <set>

namespace dtaint {

namespace {

/// All functions reachable from `start` through direct and resolved
/// indirect call edges (inclusive).
std::set<std::string> ReachableFrom(const Program& program,
                                    const std::string& start) {
  std::set<std::string> seen;
  std::vector<std::string> work{start};
  while (!work.empty()) {
    std::string name = std::move(work.back());
    work.pop_back();
    if (!seen.insert(name).second) continue;
    const Function* fn = program.FindFunction(name);
    if (!fn) continue;
    for (const CallSite& cs : fn->callsites) {
      if (cs.is_indirect) {
        for (const std::string& t : cs.resolved_targets) work.push_back(t);
      } else if (!cs.target_is_import && !cs.target_name.empty()) {
        work.push_back(cs.target_name);
      }
    }
  }
  return seen;
}

}  // namespace

std::vector<NaiveFinding> NaiveReachabilityScan(const Program& program) {
  // Collect functions containing source calls and the per-function
  // source name (first one wins — naive tools don't track more).
  std::map<std::string, std::string> source_fns;
  for (const auto& [name, fn] : program.functions) {
    for (const CallSite& cs : fn.callsites) {
      if (cs.target_is_import && IsSource(cs.target_name)) {
        source_fns.emplace(name, cs.target_name);
        break;
      }
    }
  }

  // A source "reaches" a sink if the sink's function is reachable from
  // the source's function, or vice versa (data could flow through
  // return values), or they coincide.
  std::map<std::string, std::set<std::string>> reach_cache;
  auto reaches = [&](const std::string& from,
                     const std::string& to) -> bool {
    auto it = reach_cache.find(from);
    if (it == reach_cache.end()) {
      it = reach_cache.emplace(from, ReachableFrom(program, from)).first;
    }
    return it->second.count(to) > 0;
  };

  std::vector<NaiveFinding> findings;
  for (const auto& [name, fn] : program.functions) {
    for (const CallSite& cs : fn.callsites) {
      if (!cs.target_is_import) continue;
      auto sink = FindSink(cs.target_name);
      if (!sink) continue;
      for (const auto& [src_fn, src_name] : source_fns) {
        if (src_fn == name || reaches(src_fn, name) ||
            reaches(name, src_fn)) {
          NaiveFinding finding;
          finding.sink_function = name;
          finding.sink_site = cs.call_addr;
          finding.sink = cs.target_name;
          finding.source = src_name;
          finding.vuln_class = sink->vuln_class;
          findings.push_back(std::move(finding));
          break;  // one report per sink callsite
        }
      }
    }
  }
  return findings;
}

}  // namespace dtaint
