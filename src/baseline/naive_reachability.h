// Second baseline: naive source/sink reachability ("grep with a call
// graph"). A sink callsite is flagged whenever some source callsite
// can reach it through the call graph — no data flow, no aliasing, no
// sanitization constraints. This is the strawman many quick-audit
// scripts implement; comparing its precision against DTaint's
// quantifies what the paper's data-flow machinery buys beyond mere
// co-reachability (used by bench/ablation_features).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/cfg/cfg_builder.h"
#include "src/core/sources_sinks.h"

namespace dtaint {

struct NaiveFinding {
  std::string sink_function;
  uint32_t sink_site = 0;
  std::string sink;
  std::string source;           // some reaching source (first found)
  VulnClass vuln_class = VulnClass::kBufferOverflow;
};

/// Flags every sink callsite reachable (in the inter-procedural
/// control-flow sense) from a source callsite: the source's function
/// reaches the sink's function through call edges, or they share a
/// function.
std::vector<NaiveFinding> NaiveReachabilityScan(const Program& program);

}  // namespace dtaint
