#include "src/baseline/worklist_ddg.h"

#include <deque>

#include "src/obs/stopwatch.h"
#include "src/util/hash.h"

namespace dtaint {

namespace {

/// Reaching-definition state: for every variable (register or abstract
/// memory slot) the set of sites that may have defined it.
struct FlowState {
  // regs[r] = set of defining sites.
  std::map<int, std::set<uint32_t>> regs;
  // mem[slot-key] = set of defining sites. Slots are keyed by the
  // hash of the (base register, constant offset) address shape.
  std::map<uint64_t, std::set<uint32_t>> mem;

  bool MergeFrom(const FlowState& other) {
    bool changed = false;
    for (const auto& [r, defs] : other.regs) {
      auto& mine = regs[r];
      for (uint32_t d : defs) changed |= mine.insert(d).second;
    }
    for (const auto& [slot, defs] : other.mem) {
      auto& mine = mem[slot];
      for (uint32_t d : defs) changed |= mine.insert(d).second;
    }
    return changed;
  }
};

/// Abstract slot key for a memory operand expression: the pair of the
/// base register mentioned in the address and its constant offset.
uint64_t SlotKey(const ExprRef& addr) {
  // Address shapes from the lifter: Binop(Add, Get/RdTmp..., Const) —
  // but temps hide the register, so hash the whole tree structurally.
  uint64_t h = kFnvOffset;
  std::vector<const Expr*> stack{addr.get()};
  while (!stack.empty()) {
    const Expr* e = stack.back();
    stack.pop_back();
    h = HashCombine(h, static_cast<uint64_t>(e->kind()));
    switch (e->kind()) {
      case ExprKind::kConst:
        h = HashCombine(h, e->const_value());
        break;
      case ExprKind::kGet:
        h = HashCombine(h, static_cast<uint64_t>(e->reg()));
        break;
      case ExprKind::kRdTmp:
        // Temps are block-local; treat uniformly so slots stay coarse.
        break;
      case ExprKind::kBinop:
        h = HashCombine(h, static_cast<uint64_t>(e->binop()));
        stack.push_back(e->lhs().get());
        stack.push_back(e->rhs().get());
        break;
      case ExprKind::kLoad:
        stack.push_back(e->lhs().get());
        break;
    }
  }
  return h;
}

class BaselineRun {
 public:
  BaselineRun(const Program& program, const BaselineConfig& config,
              BaselineStats& stats)
      : program_(program), config_(config), stats_(stats) {}

  void AnalyzeFunction(const std::string& name,
                       std::vector<uint32_t> context) {
    if (stats_.contexts_analyzed >=
        static_cast<size_t>(config_.max_contexts)) {
      stats_.budget_exhausted = true;
      return;
    }
    // Context key: function plus k-limited callsite chain. The same
    // function is re-analyzed for every distinct context — the cost
    // center the paper describes.
    uint64_t key = Fnv1a(name);
    for (uint32_t cs : context) key = HashCombine(key, cs);
    if (!visited_.insert(key).second) return;
    const Function* fn = program_.FindFunction(name);
    if (!fn || fn->blocks.empty()) return;
    ++stats_.contexts_analyzed;
    stats_.context_functions.push_back(name);

    // Iterative worklist over the CFG until fixpoint.
    std::map<uint32_t, FlowState> in_states;
    std::deque<uint32_t> worklist{fn->addr};
    std::map<uint32_t, int> iterations;
    while (!worklist.empty()) {
      uint32_t addr = worklist.front();
      worklist.pop_front();
      if (++iterations[addr] > config_.max_iterations) continue;
      const IRBlock* block = fn->BlockAt(addr);
      if (!block) continue;

      FlowState state = in_states[addr];
      ExecuteBlock(*block, state);
      ++stats_.block_executions;

      auto succs_it = fn->succs.find(addr);
      if (succs_it != fn->succs.end()) {
        for (uint32_t succ : succs_it->second) {
          if (in_states[succ].MergeFrom(state)) {
            worklist.push_back(succ);
          }
        }
      }
    }

    // Descend into every callee with the extended context.
    for (const CallSite& cs : fn->callsites) {
      std::vector<std::string> targets;
      if (cs.is_indirect) {
        targets = cs.resolved_targets;
      } else if (!cs.target_is_import && !cs.target_name.empty()) {
        targets.push_back(cs.target_name);
      }
      std::vector<uint32_t> child_context = context;
      child_context.push_back(cs.call_addr);
      if (static_cast<int>(child_context.size()) > config_.context_depth) {
        child_context.erase(child_context.begin());
      }
      for (const std::string& target : targets) {
        AnalyzeFunction(target, child_context);
      }
    }
  }

 private:
  void ExecuteBlock(const IRBlock& block, FlowState& state) {
    uint32_t site = block.addr;
    for (const Stmt& stmt : block.stmts) {
      switch (stmt.kind) {
        case StmtKind::kIMark:
          site = stmt.addr;
          break;
        case StmtKind::kWrTmp:
          CountUses(stmt.expr, state);
          break;
        case StmtKind::kPut:
          CountUses(stmt.expr, state);
          state.regs[stmt.reg] = {site};
          break;
        case StmtKind::kStore:
          CountUses(stmt.addr_expr, state);
          CountUses(stmt.data_expr, state);
          state.mem[SlotKey(stmt.addr_expr)] = {site};
          break;
        case StmtKind::kExit:
          CountUses(stmt.expr, state);
          break;
      }
    }
  }

  /// Materializes def->use dependence edges for every variable read by
  /// the expression ("data dependence on every variable").
  void CountUses(const ExprRef& expr, FlowState& state) {
    if (!expr) return;
    switch (expr->kind()) {
      case ExprKind::kGet: {
        auto it = state.regs.find(expr->reg());
        if (it != state.regs.end()) {
          stats_.dependence_edges += it->second.size();
        }
        break;
      }
      case ExprKind::kLoad: {
        CountUses(expr->lhs(), state);
        auto it = state.mem.find(SlotKey(expr->lhs()));
        if (it != state.mem.end()) {
          stats_.dependence_edges += it->second.size();
        }
        break;
      }
      case ExprKind::kBinop:
        CountUses(expr->lhs(), state);
        CountUses(expr->rhs(), state);
        break;
      case ExprKind::kConst:
      case ExprKind::kRdTmp:
        break;
    }
  }

  const Program& program_;
  const BaselineConfig& config_;
  BaselineStats& stats_;
  std::set<uint64_t> visited_;
};

}  // namespace

BaselineStats RunWorklistDdg(const Program& program,
                             const std::vector<std::string>& entries,
                             const BaselineConfig& config) {
  BaselineStats stats;
  obs::Stopwatch watch;
  BaselineRun run(program, config, stats);

  std::vector<std::string> roots = entries;
  if (roots.empty()) {
    // Roots: functions nobody calls directly. Fallback: everything.
    std::set<std::string> called;
    for (const auto& [_, fn] : program.functions) {
      for (const CallSite& cs : fn.callsites) {
        if (!cs.target_is_import && !cs.target_name.empty()) {
          called.insert(cs.target_name);
        }
        for (const std::string& t : cs.resolved_targets) called.insert(t);
      }
    }
    for (const auto& [name, _] : program.functions) {
      if (!called.count(name)) roots.push_back(name);
    }
    if (roots.empty()) {
      for (const auto& [name, _] : program.functions) roots.push_back(name);
    }
  }
  for (const std::string& root : roots) {
    run.AnalyzeFunction(root, {});
  }
  stats.seconds = watch.Seconds();
  return stats;
}

}  // namespace dtaint
