// Baseline: top-down, context-sensitive, worklist-based data-dependence
// analysis in the style the paper attributes to Angr (§V-B, Table VII):
// "a worklist-based and iterative approach to generate interprocedural
// data flows ... it builds data dependence on every variable (in the
// register and memory). When the binary complexity is high, it needs to
// repeatedly build the data flows for the same block and function with
// different context."
//
// Structural differences from DTaint that make it slow — on purpose,
// because they are the paper's explanation of the Table VII gap:
//  * top-down traversal from entry points; callees are re-analyzed for
//    every distinct calling context (callsite chain, k-limited);
//  * an iterative worklist per function that re-executes blocks until
//    the per-variable dependence sets reach a fixpoint (instead of
//    path-wise symbolic states);
//  * dependence edges tracked for EVERY register and memory slot, not
//    just taint-relevant definition pairs.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "src/binary/binary.h"
#include "src/cfg/cfg_builder.h"
#include "src/util/status.h"

namespace dtaint {

struct BaselineConfig {
  int context_depth = 2;        // k of the callsite-chain contexts
  int max_iterations = 64;      // worklist fixpoint cap per context
  int max_contexts = 4096;      // total (function, context) budget
};

struct BaselineStats {
  size_t contexts_analyzed = 0;     // (function, callsite-chain) pairs
  size_t block_executions = 0;      // block x iteration x context
  size_t dependence_edges = 0;      // def -> use edges materialized
  double seconds = 0.0;
  bool budget_exhausted = false;
  /// One entry per analyzed context: the function name. A function
  /// reached under k distinct callsite chains appears k times — this
  /// is exactly the repeated work Table VII attributes to the
  /// top-down approach.
  std::vector<std::string> context_functions;
};

/// Runs the baseline DDG construction over a lifted program.
/// `entries` are the root functions (empty = all functions without
/// callers, or every function if the graph is fully connected).
BaselineStats RunWorklistDdg(const Program& program,
                             const std::vector<std::string>& entries = {},
                             const BaselineConfig& config = {});

}  // namespace dtaint
