#include "src/ir/printer.h"

#include "src/isa/decode.h"
#include "src/util/strings.h"

namespace dtaint {

std::string PrintBlockWithDisasm(const Binary& binary,
                                 const IRBlock& block) {
  std::string out;
  for (const Stmt& s : block.stmts) {
    if (s.kind == StmtKind::kIMark) {
      auto word = binary.ReadWordAt(s.addr);
      out += HexStr(s.addr) + ": ";
      if (word.ok()) {
        auto insn = Decode(*word);
        out += insn.ok() ? insn->ToString(binary.arch) : "<bad insn>";
      } else {
        out += "<unmapped>";
      }
      out += "\n";
    } else {
      out += "    " + s.ToString() + "\n";
    }
  }
  out += "    NEXT(" + std::string(JumpKindName(block.jumpkind)) + "): ";
  out += block.next ? block.next->ToString() : std::string("<none>");
  out += "\n";
  return out;
}

}  // namespace dtaint
