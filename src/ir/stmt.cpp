#include "src/ir/stmt.h"

#include "src/util/strings.h"

namespace dtaint {

Stmt Stmt::IMark(uint32_t addr) {
  Stmt s;
  s.kind = StmtKind::kIMark;
  s.addr = addr;
  return s;
}
Stmt Stmt::WrTmp(int tmp, ExprRef expr) {
  Stmt s;
  s.kind = StmtKind::kWrTmp;
  s.tmp = tmp;
  s.expr = std::move(expr);
  return s;
}
Stmt Stmt::Put(int reg, ExprRef expr) {
  Stmt s;
  s.kind = StmtKind::kPut;
  s.reg = reg;
  s.expr = std::move(expr);
  return s;
}
Stmt Stmt::Store(ExprRef addr, ExprRef data, uint8_t size) {
  Stmt s;
  s.kind = StmtKind::kStore;
  s.addr_expr = std::move(addr);
  s.data_expr = std::move(data);
  s.size = size;
  return s;
}
Stmt Stmt::Exit(ExprRef guard, uint32_t target) {
  Stmt s;
  s.kind = StmtKind::kExit;
  s.expr = std::move(guard);
  s.target = target;
  return s;
}

std::string Stmt::ToString() const {
  switch (kind) {
    case StmtKind::kIMark:
      return "------ IMark(" + HexStr(addr) + ") ------";
    case StmtKind::kWrTmp:
      return "t" + std::to_string(tmp) + " = " + expr->ToString();
    case StmtKind::kPut:
      return "PUT(" + std::to_string(reg) + ") = " + expr->ToString();
    case StmtKind::kStore:
      return "STORE" + std::to_string(int{size}) + "(" +
             addr_expr->ToString() + ") = " + data_expr->ToString();
    case StmtKind::kExit:
      return "if (" + expr->ToString() + ") goto " + HexStr(target);
  }
  return "?";
}

std::string_view JumpKindName(JumpKind kind) {
  switch (kind) {
    case JumpKind::kBoring:
      return "Ijk_Boring";
    case JumpKind::kCall:
      return "Ijk_Call";
    case JumpKind::kIndirectCall:
      return "Ijk_IndirectCall";
    case JumpKind::kRet:
      return "Ijk_Ret";
  }
  return "?";
}

}  // namespace dtaint
