// IR statements and jump kinds.
#pragma once

#include <cstdint>
#include <string>

#include "src/ir/expr.h"

namespace dtaint {

enum class StmtKind : uint8_t {
  kIMark,  // instruction boundary marker (guest address)
  kWrTmp,  // tmp := expr
  kPut,    // reg := expr
  kStore,  // mem[addr] := data
  kExit,   // if (guard) goto target  (conditional block exit)
};

/// One IR statement. Fields unused by the kind are empty/zero.
struct Stmt {
  StmtKind kind = StmtKind::kIMark;
  uint32_t addr = 0;      // kIMark: guest address
  int tmp = -1;           // kWrTmp
  int reg = -1;           // kPut
  ExprRef expr;           // kWrTmp/kPut value, kExit guard
  ExprRef addr_expr;      // kStore address
  ExprRef data_expr;      // kStore data
  uint8_t size = 4;       // kStore width
  uint32_t target = 0;    // kExit branch target (guest address)

  static Stmt IMark(uint32_t addr);
  static Stmt WrTmp(int tmp, ExprRef expr);
  static Stmt Put(int reg, ExprRef expr);
  static Stmt Store(ExprRef addr, ExprRef data, uint8_t size);
  static Stmt Exit(ExprRef guard, uint32_t target);

  std::string ToString() const;
};

/// Why a block ends — mirrors VEX jump kinds.
enum class JumpKind : uint8_t {
  kBoring,        // fallthrough or direct branch
  kCall,          // direct call (next = callee const)
  kIndirectCall,  // call through register
  kRet,           // function return
};

std::string_view JumpKindName(JumpKind kind);

}  // namespace dtaint
