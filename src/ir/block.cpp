#include "src/ir/block.h"

#include "src/util/strings.h"

namespace dtaint {

std::string IRBlock::ToString() const {
  std::string out = "IRBlock @ " + HexStr(addr) + " (" +
                    std::to_string(size) + " bytes)\n";
  for (const Stmt& s : stmts) {
    out += "  " + s.ToString() + "\n";
  }
  out += "  NEXT: ";
  out += next ? next->ToString() : std::string("<none>");
  out += "; ";
  out += JumpKindName(jumpkind);
  out += "\n";
  return out;
}

}  // namespace dtaint
