// IRBlock — the lifted form of one basic block (VEX "IRSB").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/stmt.h"

namespace dtaint {

struct IRBlock {
  uint32_t addr = 0;             // guest address of the first insn
  uint32_t size = 0;             // bytes of guest code covered
  std::vector<Stmt> stmts;
  int next_tmp = 0;              // number of temporaries used

  JumpKind jumpkind = JumpKind::kBoring;
  ExprRef next;                  // where control goes (const or tmp)
  uint32_t return_addr = 0;      // for calls: the fallthrough address

  /// Address one past the last guest instruction.
  uint32_t EndAddr() const { return addr + size; }

  std::string ToString() const;
};

}  // namespace dtaint
