// IR expressions — the repo's VEX-IR stand-in (paper §III-B lifts
// machine code into VEX; DTaint's analysis consumes the IR, not the
// machine code).
//
// Expressions are immutable trees shared via shared_ptr. A block's
// statements write temporaries (WrTmp), registers (Put) and memory
// (Store); expressions read them (RdTmp/Get/Load).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace dtaint {

/// IR register space: guest GPRs 0..15 plus two flag pseudo-registers
/// holding the operands of the last compare. Conditional exits test
/// Binop(CmpXX, Get(kFlagLhs), Get(kFlagRhs)) — keeping the compared
/// values visible, which is what DTaint's sanitization-constraint
/// checks need (paper §IV: "n < 64" style constraints).
inline constexpr int kFlagLhs = 16;
inline constexpr int kFlagRhs = 17;
inline constexpr int kNumIrRegs = 18;

enum class ExprKind : uint8_t {
  kConst,
  kRdTmp,
  kGet,
  kLoad,
  kBinop,
};

enum class BinOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  kCmpEq,
  kCmpNe,
  kCmpLt,
  kCmpGe,
  kCmpLe,
  kCmpGt,
};

std::string_view BinOpName(BinOp op);
/// True for the six comparison operators.
bool IsCompare(BinOp op);

class Expr;
using ExprRef = std::shared_ptr<const Expr>;

/// Immutable IR expression node.
class Expr {
 public:
  // Factories.
  static ExprRef MakeConst(uint32_t value);
  static ExprRef MakeRdTmp(int tmp);
  static ExprRef MakeGet(int reg);
  static ExprRef MakeLoad(ExprRef addr, uint8_t size);
  static ExprRef MakeBinop(BinOp op, ExprRef lhs, ExprRef rhs);

  ExprKind kind() const { return kind_; }
  uint32_t const_value() const { return value_; }
  int tmp() const { return static_cast<int>(value_); }
  int reg() const { return static_cast<int>(value_); }
  uint8_t load_size() const { return size_; }
  BinOp binop() const { return op_; }
  const ExprRef& lhs() const { return lhs_; }
  const ExprRef& rhs() const { return rhs_; }

  /// Structural pretty-print, e.g. "Add(Get(r5), 0x4c)".
  std::string ToString() const;

 private:
  Expr(ExprKind kind, uint32_t value, uint8_t size, BinOp op, ExprRef lhs,
       ExprRef rhs)
      : kind_(kind), value_(value), size_(size), op_(op),
        lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  ExprKind kind_;
  uint32_t value_;  // const value / tmp index / reg index
  uint8_t size_;    // load size in bytes
  BinOp op_;
  ExprRef lhs_;
  ExprRef rhs_;
};

}  // namespace dtaint
