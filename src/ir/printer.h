// Disassembly-style printing of lifted functions (debugging aid and
// example output).
#pragma once

#include <string>

#include "src/binary/binary.h"
#include "src/ir/block.h"

namespace dtaint {

/// Renders an IR block with guest disassembly interleaved at IMarks.
std::string PrintBlockWithDisasm(const Binary& binary, const IRBlock& block);

}  // namespace dtaint
