#include "src/ir/expr.h"

#include "src/util/strings.h"

namespace dtaint {

std::string_view BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "Add";
    case BinOp::kSub: return "Sub";
    case BinOp::kMul: return "Mul";
    case BinOp::kAnd: return "And";
    case BinOp::kOr: return "Or";
    case BinOp::kXor: return "Xor";
    case BinOp::kShl: return "Shl";
    case BinOp::kShr: return "Shr";
    case BinOp::kCmpEq: return "CmpEQ";
    case BinOp::kCmpNe: return "CmpNE";
    case BinOp::kCmpLt: return "CmpLT";
    case BinOp::kCmpGe: return "CmpGE";
    case BinOp::kCmpLe: return "CmpLE";
    case BinOp::kCmpGt: return "CmpGT";
  }
  return "?";
}

bool IsCompare(BinOp op) { return op >= BinOp::kCmpEq; }

ExprRef Expr::MakeConst(uint32_t value) {
  return ExprRef(new Expr(ExprKind::kConst, value, 4, BinOp::kAdd, nullptr,
                          nullptr));
}
ExprRef Expr::MakeRdTmp(int tmp) {
  return ExprRef(new Expr(ExprKind::kRdTmp, static_cast<uint32_t>(tmp), 4,
                          BinOp::kAdd, nullptr, nullptr));
}
ExprRef Expr::MakeGet(int reg) {
  return ExprRef(new Expr(ExprKind::kGet, static_cast<uint32_t>(reg), 4,
                          BinOp::kAdd, nullptr, nullptr));
}
ExprRef Expr::MakeLoad(ExprRef addr, uint8_t size) {
  return ExprRef(new Expr(ExprKind::kLoad, 0, size, BinOp::kAdd,
                          std::move(addr), nullptr));
}
ExprRef Expr::MakeBinop(BinOp op, ExprRef lhs, ExprRef rhs) {
  return ExprRef(new Expr(ExprKind::kBinop, 0, 4, op, std::move(lhs),
                          std::move(rhs)));
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kConst:
      return HexStr(value_);
    case ExprKind::kRdTmp:
      return "t" + std::to_string(value_);
    case ExprKind::kGet:
      return "Get(" + std::to_string(value_) + ")";
    case ExprKind::kLoad:
      return "Load" + std::to_string(int{size_}) + "(" + lhs_->ToString() +
             ")";
    case ExprKind::kBinop:
      return std::string(BinOpName(op_)) + "(" + lhs_->ToString() + ", " +
             rhs_->ToString() + ")";
  }
  return "?";
}

}  // namespace dtaint
