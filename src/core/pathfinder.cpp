#include "src/core/pathfinder.h"

#include <set>
#include <unordered_map>

#include "src/cfg/loops.h"
#include "src/core/alias_ondemand.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/util/arena.h"
#include "src/util/strings.h"

namespace dtaint {

bool DefCoversUse(const SymRef& def_loc, const SymRef& use_expr) {
  if (!def_loc || !use_expr) return false;
  if (def_loc->kind() != SymKind::kDeref ||
      use_expr->kind() != SymKind::kDeref) {
    return false;
  }
  if (SymExpr::Equal(def_loc, use_expr)) return true;
  auto def_split = SymExpr::SplitBaseOffset(def_loc->lhs());
  auto use_split = SymExpr::SplitBaseOffset(use_expr->lhs());
  const SymRef def_base = def_split.base ? def_split.base : def_loc->lhs();
  const SymRef use_base = use_split.base ? use_split.base : use_expr->lhs();
  if (!SymExpr::Equal(def_base, use_base)) return false;
  // Same base: exact field match (sizes may differ: a byte view of a
  // word field still reads the defined bytes).
  return def_split.offset == use_split.offset;
}

namespace {

/// True when the def defines an entire buffer region that the use reads
/// a part of: def = deref(B) holding taint, use = deref(B + k). Source
/// models write whole buffers this way (recv taints deref(buf)).
bool RegionDefCoversUse(const SymRef& def_loc, const SymRef& def_val,
                        const SymRef& use_expr) {
  if (!def_loc || !def_val || !use_expr) return false;
  if (!def_val->IsTainted()) return false;
  if (def_loc->kind() != SymKind::kDeref ||
      use_expr->kind() != SymKind::kDeref) {
    return false;
  }
  auto def_split = SymExpr::SplitBaseOffset(def_loc->lhs());
  auto use_split = SymExpr::SplitBaseOffset(use_expr->lhs());
  SymRef def_base = def_split.base ? def_split.base : def_loc->lhs();
  SymRef use_base = use_split.base ? use_split.base : use_expr->lhs();
  // Array walks read buf+i: strip the symbolic index so the region
  // base compares against the whole-buffer definition deref(buf).
  def_base = StripIndex(def_base);
  use_base = StripIndex(use_base);
  return SymExpr::Equal(def_base, use_base);
}

/// Open-addressed set of (function id, expression hash) pairs marking
/// walk nodes already explored for one trace start. Tables live in the
/// tracer's bump arena — a FindAll run performs thousands of short
/// traces, and the former std::set cost a node allocation (plus a
/// function-name string copy) per visited node; here an insert is a
/// probe into a flat table and abandoned tables are reclaimed wholesale
/// when the tracer is destroyed.
class VisitedSet {
 public:
  explicit VisitedSet(BumpArena& arena) : arena_(arena) {
    slots_ = arena_.NewArray<Slot>(kInitialCap);
    cap_ = kInitialCap;
  }

  /// True when (fn_id, expr_hash) was not yet present (and is now).
  bool Insert(uint64_t fn_id, uint64_t expr_hash) {
    if ((size_ + 1) * 4 >= cap_ * 3) Grow();
    // fn_id is offset by 1 on storage so a zeroed slot means empty.
    uint64_t key1 = fn_id + 1;
    size_t mask = cap_ - 1;
    size_t i = Mix(key1, expr_hash) & mask;
    while (slots_[i].key1 != 0) {
      if (slots_[i].key1 == key1 && slots_[i].key2 == expr_hash) return false;
      i = (i + 1) & mask;
    }
    slots_[i] = {key1, expr_hash};
    ++size_;
    return true;
  }

 private:
  struct Slot {
    uint64_t key1 = 0;  // fn_id + 1; 0 = empty
    uint64_t key2 = 0;  // expression hash
  };
  static constexpr size_t kInitialCap = 64;  // power of two

  static size_t Mix(uint64_t a, uint64_t b) {
    uint64_t h = a * 0x9e3779b97f4a7c15ull ^ b;
    h ^= h >> 32;
    return static_cast<size_t>(h);
  }

  void Grow() {
    Slot* old = slots_;
    size_t old_cap = cap_;
    cap_ *= 2;
    slots_ = arena_.NewArray<Slot>(cap_);
    size_t mask = cap_ - 1;
    for (size_t j = 0; j < old_cap; ++j) {
      if (old[j].key1 == 0) continue;
      size_t i = Mix(old[j].key1, old[j].key2) & mask;
      while (slots_[i].key1 != 0) i = (i + 1) & mask;
      slots_[i] = old[j];
    }
    // `old` stays in the arena until the tracer dies — deliberate.
  }

  BumpArena& arena_;
  Slot* slots_ = nullptr;
  size_t cap_ = 0;
  size_t size_ = 0;
};

class Tracer {
 public:
  Tracer(const Program& program, const ProgramAnalysis& analysis,
         const PathFinderConfig& config, std::vector<TaintPath>& out,
         PathFinderStats& stats)
      : program_(program), analysis_(analysis), config_(config), out_(out),
        stats_(stats) {
    // Reverse call-event index: callee name -> (caller, event).
    for (const auto& [caller, summary] : analysis_.summaries) {
      const Function* fn = program_.FindFunction(caller);
      for (const CallEvent& event : summary.calls) {
        if (event.is_import) continue;
        if (event.is_indirect) {
          if (!fn) continue;
          const CallSite* cs = fn->CallSiteAt(event.callsite);
          if (!cs) continue;
          for (const std::string& target : cs->resolved_targets) {
            callers_of_[target].push_back({caller, &event});
          }
        } else if (!event.callee.empty()) {
          callers_of_[event.callee].push_back({caller, &event});
        }
      }
    }
  }

  /// Launches a trace for one sink occurrence.
  void TraceSink(const std::string& fn, const TaintPath& seed,
                 const std::vector<SymRef>& start_exprs) {
    ++stats_.sinks_visited;
    paths_found_for_sink_ = 0;
    for (const SymRef& expr : start_exprs) {
      if (paths_found_for_sink_ >= config_.max_paths_per_sink) break;
      TaintPath path = seed;
      VisitedSet visited(arena_);
      Walk(FnId(fn), fn, expr, path, visited, config_.max_depth);
    }
  }

 private:
  /// Dense id for a function name — the visited set compares ids, not
  /// strings, so its slots are two machine words.
  uint64_t FnId(const std::string& fn) {
    auto [it, added] = fn_ids_.emplace(fn, fn_ids_.size());
    return it->second;
  }

  void Emit(TaintPath path, uint32_t taint_site,
            const std::string& taint_source) {
    path.source_name = taint_source;
    path.source_site = taint_site;
    if (degraded_hops_ > 0) path.crossed_degraded = true;
    auto key = std::make_tuple(path.sink_site, path.source_site,
                               path.sink_name);
    if (!emitted_.insert(key).second) return;
    if (path.crossed_degraded) ++stats_.degraded_paths;
    out_.push_back(std::move(path));
    ++paths_found_for_sink_;
    ++stats_.paths_found;
  }

  void Walk(uint64_t fn_id, const std::string& fn, const SymRef& expr,
            TaintPath& path, VisitedSet& visited, int depth) {
    if (!expr) return;
    if (depth <= 0) {
      ++stats_.pruned_by_depth;
      return;
    }
    if (paths_found_for_sink_ >= config_.max_paths_per_sink) return;
    if (!visited.Insert(fn_id, expr->hash())) return;
    ++stats_.paths_explored;
    path.traced_exprs.push_back(expr);

    // Found attacker data?
    if (auto taint = expr->FindTaint()) {
      Emit(path, taint->first, taint->second);
      path.traced_exprs.pop_back();
      return;
    }

    auto summary_it = analysis_.summaries.find(fn);
    if (summary_it == analysis_.summaries.end()) {
      path.traced_exprs.pop_back();
      return;
    }
    const FunctionSummary& summary = summary_it->second;

    // (a) Backward through definition pairs: any deref component of
    // the expression may have been defined elsewhere in the function
    // (or by a linked callee summary). In on-demand alias mode the
    // alias-renamed twins are not materialized in the summary; the
    // oracle supplies them here, at the taint-transfer site — computed
    // over the *linked* pairs, so cross-call aliases participate.
    std::vector<SymRef> deref_parts;
    SymExpr::CollectDerefs(expr, &deref_parts);
    const std::vector<DefPair>* twins = nullptr;
    if (analysis_.alias_oracle) {
      const std::vector<DefPair>& t = analysis_.alias_oracle->TwinsFor(summary);
      if (!t.empty()) twins = &t;
    }
    for (const SymRef& part : deref_parts) {
      bool stop = MatchDefs(summary.def_pairs, fn_id, fn, expr, part, path,
                            visited, depth);
      if (!stop && twins) {
        stop = MatchDefs(*twins, fn_id, fn, expr, part, path, visited, depth);
      }
      if (stop) {
        path.traced_exprs.pop_back();
        return;
      }
    }

    // (b) Into callers: a value rooted at a formal argument flows from
    // every callsite's actual argument.
    SymRef root = RootPointerOf(expr);
    if (root && root->kind() == SymKind::kArg) {
      auto callers_it = callers_of_.find(fn);
      if (callers_it != callers_of_.end()) {
        for (const auto& [caller, event] : callers_it->second) {
          int idx = root->arg_index();
          if (idx < 0 || idx >= static_cast<int>(event->args.size()) ||
              !event->args[idx]) {
            continue;
          }
          SymRef lifted =
              SymExpr::Replace(expr, root, event->args[idx]);
          path.hops.push_back(
              {caller, event->callsite,
               "via call to " + fn + " (" + root->ToString() + " = " +
                   event->args[idx]->ToString() + ")"});
          size_t constraints_before = path.constraints.size();
          path.constraints.insert(path.constraints.end(),
                                  event->constraints.begin(),
                                  event->constraints.end());
          Walk(FnId(caller), caller, lifted, path, visited, depth - 1);
          path.constraints.resize(constraints_before);
          path.hops.pop_back();
          if (paths_found_for_sink_ >= config_.max_paths_per_sink) {
            path.traced_exprs.pop_back();
            return;
          }
        }
      }
    }
    path.traced_exprs.pop_back();
  }

  /// Matches one deref `part` of `expr` against a span of definition
  /// pairs (the summary's own, or the on-demand alias twins). Returns
  /// true when the per-sink path cap was hit and the walk should stop.
  bool MatchDefs(const std::vector<DefPair>& pairs, uint64_t fn_id,
                 const std::string& fn, const SymRef& expr, const SymRef& part,
                 TaintPath& path, VisitedSet& visited, int depth) {
    for (const DefPair& dp : pairs) {
      if (!dp.u || SymExpr::Equal(dp.u, expr)) continue;
      bool covers = DefCoversUse(dp.d, part);
      bool region = !covers && RegionDefCoversUse(dp.d, dp.u, part);
      if (!covers && !region) continue;
      path.hops.push_back(
          {fn, dp.site, dp.d->ToString() + " = " + dp.u->ToString()});
      // The defined value replaces the matched deref inside the
      // expression; for region matches the taint covers the part.
      SymRef next = region ? dp.u : SymExpr::Replace(expr, part, dp.u);
      if (dp.degraded) ++degraded_hops_;
      Walk(fn_id, fn, next, path, visited, depth - 1);
      if (dp.degraded) --degraded_hops_;
      path.hops.pop_back();
      if (paths_found_for_sink_ >= config_.max_paths_per_sink) return true;
    }
    return false;
  }

  const Program& program_;
  const ProgramAnalysis& analysis_;
  const PathFinderConfig& config_;
  std::vector<TaintPath>& out_;
  std::map<std::string, std::vector<std::pair<std::string, const CallEvent*>>>
      callers_of_;
  std::set<std::tuple<uint32_t, uint32_t, std::string>> emitted_;
  PathFinderStats& stats_;
  /// Backs every VisitedSet table for the lifetime of one FindAll run.
  BumpArena arena_;
  std::unordered_map<std::string, uint64_t> fn_ids_;
  int paths_found_for_sink_ = 0;
  /// Degraded def pairs currently on the walk stack; any emit while
  /// nonzero marks the path crossed_degraded.
  int degraded_hops_ = 0;
};

}  // namespace

size_t PathFinder::SinkCount() const {
  size_t count = 0;
  for (const auto& [_, summary] : analysis_.summaries) {
    std::set<uint32_t> seen;
    for (const CallEvent& event : summary.calls) {
      if (event.is_import && FindSink(event.callee) &&
          seen.insert(event.callsite).second) {
        ++count;
      }
    }
  }
  return count;
}

std::vector<TaintPath> PathFinder::FindAll() const {
  std::vector<TaintPath> paths;
  stats_ = PathFinderStats{};
  Tracer tracer(program_, analysis_, config_, paths, stats_);

  for (const auto& [fn_name, summary] : analysis_.summaries) {
    // Library-call sinks.
    std::set<uint32_t> seen_sites;
    for (const CallEvent& event : summary.calls) {
      if (!event.is_import) continue;
      auto sink = FindSink(event.callee);
      if (!sink) continue;
      if (!seen_sites.insert(event.callsite).second) continue;
      if (sink->tainted_param >= static_cast<int>(event.args.size())) {
        continue;
      }
      const SymRef& arg = event.args[sink->tainted_param];
      if (!arg) continue;

      TaintPath seed;
      seed.sink_function = fn_name;
      seed.sink_site = event.callsite;
      seed.sink_name = event.callee;
      seed.vuln_class = sink->vuln_class;
      seed.sink_arg = arg;
      seed.constraints = event.constraints;
      seed.hops.push_back({fn_name, event.callsite,
                           "sink " + event.callee + "(" + arg->ToString() +
                               ")"});
      // Trace the argument value itself (tainted lengths / pointers to
      // attacker buffers) and its pointee (tainted string contents).
      std::vector<SymRef> starts{arg};
      if (arg->kind() != SymKind::kConst) {
        starts.push_back(SymExpr::Deref(arg));
      }
      tracer.TraceSink(fn_name, seed, starts);
    }

    // Loop-copy sinks: stores inside a natural loop whose address has
    // a non-constant (per-iteration) component.
    if (config_.detect_loop_copies) {
      const Function* fn = program_.FindFunction(fn_name);
      if (!fn) continue;
      LoopInfo loops = FindLoops(*fn);
      if (loops.loops.empty()) continue;
      // Map def sites to blocks to test loop membership.
      std::set<uint32_t> emitted_sites;
      for (const DefPair& dp : summary.def_pairs) {
        if (!dp.d || dp.d->kind() != SymKind::kDeref) continue;
        // Address must vary per iteration: base+offset split leaves a
        // symbolic, non-argument residue (e.g. deref(buf + idx)).
        auto split = SymExpr::SplitBaseOffset(dp.d->lhs());
        if (!split.base || split.base->kind() != SymKind::kBin) continue;
        // Locate the block containing this site.
        uint32_t block_addr = 0;
        for (const auto& [addr, block] : fn->blocks) {
          if (dp.site >= addr && dp.site < addr + block.size) {
            block_addr = addr;
            break;
          }
        }
        if (!block_addr || !loops.InAnyLoop(block_addr)) continue;
        if (!emitted_sites.insert(dp.site).second) continue;

        TaintPath seed;
        seed.sink_function = fn_name;
        seed.sink_site = dp.site;
        seed.sink_name = "loop";
        seed.vuln_class = VulnClass::kBufferOverflow;
        seed.sink_arg = dp.u;
        seed.sink_store_addr = dp.d->lhs();
        seed.constraints = dp.constraints;
        seed.crossed_degraded = dp.degraded;
        seed.hops.push_back(
            {fn_name, dp.site, "loop copy " + dp.d->ToString()});
        tracer.TraceSink(fn_name, seed, {dp.u});
      }
    }
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.counter("pathfind.sinks_visited").Add(stats_.sinks_visited);
  registry.counter("pathfind.paths_explored").Add(stats_.paths_explored);
  registry.counter("pathfind.pruned_by_depth").Add(stats_.pruned_by_depth);
  registry.counter("pathfind.paths_found").Add(stats_.paths_found);
  DTAINT_LOG(obs::LogLevel::kDebug, "pathfind",
             "%zu sinks visited, %zu steps, %zu depth-pruned, %zu paths",
             stats_.sinks_visited, stats_.paths_explored,
             stats_.pruned_by_depth, stats_.paths_found);
  return paths;
}

}  // namespace dtaint
