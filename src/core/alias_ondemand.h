// On-demand SSE alias resolution (AliasMode::kOnDemandSSE) — the
// authors' follow-up to Algorithm 1 (arXiv 2109.12209).
//
// Instead of materializing every alias-renamed definition pair up
// front (AliasReplace, phase 1), this oracle answers "may these two
// structured symbolic expressions name the same storage?" lazily, at
// the two places the answer is consumed:
//
//  * taint transfer: the backward path walk (src/core/pathfinder.cpp)
//    matches a use against a function's definition pairs — with the
//    oracle it additionally matches against TwinsFor(summary), the
//    alias-renamed pairs computed on first demand;
//  * indirect-call resolution: structsim's SSE tier compares the
//    call-target SSE against known function-pointer stores, including
//    the oracle twins.
//
// Two properties make this mode more than a lazy spelling of the
// eager pass:
//
//  1. Queries run against *linked* summaries (after Algorithm 2
//     imported callee definitions), so aliases created across call
//     boundaries — caller stores p into a struct inside callee A,
//     callee B stores a function pointer through p — participate. The
//     eager pass runs per function before linking and structurally
//     cannot see these.
//  2. The hash-consed interner (PR 4) makes SSE equality a pointer
//     compare, so each memoized query is cheap; the cubic rewrite is
//     paid only for functions the path walk actually visits.
//
// Memoization is per function (keyed by name — summaries are unique
// per program analysis) and thread-safe. The memo table is bounded by
// AnalysisBudget::max_expr_nodes: once the total retained twin-pair
// count crosses the limit, further functions get an *empty* twin set
// (conservative: fewer alias matches can only drop findings, so a
// tiny-budget run's findings stay a subset of a generous run's —
// proven in tests/resilience_test.cpp).
//
// Metrics: alias.ondemand.queries / alias.ondemand.hits count memo
// lookups; structsim adds alias.ondemand.resolved_icalls.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/alias.h"
#include "src/resilience/budget.h"
#include "src/symexec/defpairs.h"

namespace dtaint {

class OnDemandAliasOracle {
 public:
  /// `budget.max_expr_nodes` bounds the memo table (0 = unbounded);
  /// the other limits are not consulted here.
  explicit OnDemandAliasOracle(const AnalysisBudget& budget = {});

  /// Alias-renamed twin definition pairs for `summary` — Algorithm 1's
  /// rewrite output, computed from the summary's (linked) pairs on
  /// first demand and memoized. The reference stays valid for the
  /// oracle's lifetime. Returns an empty set once the memo budget is
  /// exhausted.
  const std::vector<DefPair>& TwinsFor(const FunctionSummary& summary);

  /// The summary's alias facts (memoized alongside the twins).
  const std::vector<AliasFact>& FactsFor(const FunctionSummary& summary);

  /// Canonical SSE of `expr` under the summary's alias facts: every
  /// occurrence of an alias cell (the fact's deref location) is
  /// rewritten to the pointer it stores (base + offset), to a bounded
  /// fixpoint. Two expressions alias iff their canonical SSEs are
  /// Equal — with interning, a pointer compare.
  SymRef CanonicalSse(const FunctionSummary& summary, const SymRef& expr);

  /// May `a` and `b` name the same storage in `summary`? Reflexive and
  /// symmetric; defined as Equal(CanonicalSse(a), CanonicalSse(b)).
  bool MayAlias(const FunctionSummary& summary, const SymRef& a,
                const SymRef& b);

  // ---- introspection (tests, metrics) --------------------------------------
  size_t memo_functions() const;
  /// Total twin pairs retained across all memo entries.
  size_t memo_pairs() const;
  /// True once the memo budget tripped (sticky).
  bool exhausted() const;

 private:
  struct Entry {
    std::vector<AliasFact> facts;
    std::vector<DefPair> twins;
    bool ready = false;
  };

  /// Computes (or returns) the entry; must be called with mu_ held.
  Entry& EntryForLocked(const FunctionSummary& summary);

  mutable std::mutex mu_;
  std::map<std::string, Entry> memo_;
  AnalysisBudget budget_;
  size_t memo_pairs_ = 0;
  bool exhausted_ = false;
};

}  // namespace dtaint
