// Source/sink model (paper §IV, Table I).
//
// Sinks are the unsafe library calls plus the "loop copy" code
// pattern; sources are the attacker-controlled input functions. Each
// sink names which parameter must stay sanitized and what vulnerability
// class an unsanitized path implies.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dtaint {

enum class VulnClass : uint8_t {
  kBufferOverflow,
  kCommandInjection,
};

std::string_view VulnClassName(VulnClass cls);

struct SinkSpec {
  std::string name;      // library function, or "loop" for loop copies
  int tainted_param;     // parameter index whose taint is dangerous
  VulnClass vuln_class;
};

/// All modeled sinks (Table I: strcpy, strncpy, sprintf, memcpy,
/// strcat, sscanf, system, popen, loop).
const std::vector<SinkSpec>& AllSinks();

/// Spec for a sink function, or nullopt.
std::optional<SinkSpec> FindSink(std::string_view name);

/// All modeled sources (Table I: read, recv, recvfrom, recvmsg,
/// getenv, fgets, websGetVar, find_var).
const std::vector<std::string>& AllSources();

bool IsSource(std::string_view name);

}  // namespace dtaint
