#include "src/core/alias.h"

#include "src/obs/log.h"

namespace dtaint {

std::string_view AliasModeName(AliasMode mode) {
  switch (mode) {
    case AliasMode::kEager:
      return "eager";
    case AliasMode::kOnDemandSSE:
      return "ondemand";
  }
  return "eager";
}

bool ParseAliasMode(std::string_view text, AliasMode* out) {
  if (text == "eager") {
    *out = AliasMode::kEager;
    return true;
  }
  if (text == "ondemand" || text == "on-demand" || text == "ondemand-sse") {
    *out = AliasMode::kOnDemandSSE;
    return true;
  }
  return false;
}

bool IsPointerValue(const SymRef& value, const TypeMap& types) {
  if (!value) return false;
  if (IsPointerType(types.TypeOf(value))) return true;
  auto split = SymExpr::SplitBaseOffset(value);
  const SymRef& base = split.base ? split.base : value;
  switch (base->kind()) {
    case SymKind::kSp0:
    case SymKind::kHeap:
      return true;
    case SymKind::kArg:
    case SymKind::kRet:
    case SymKind::kDeref:
      return IsPointerType(types.TypeOf(base));
    default:
      return false;
  }
}

namespace {

/// Permissive pointer gate (AliasFactPolicy::kPermissive): everything
/// IsPointerValue accepts, plus Arg/Ret/Deref-rooted values with no
/// type evidence. Init-register values and arithmetic residues stay
/// excluded — treating them as pointers would fabricate facts eager
/// mode can never have.
bool IsPointerValuePermissive(const SymRef& value, const TypeMap& types) {
  if (IsPointerValue(value, types)) return true;
  auto split = SymExpr::SplitBaseOffset(value);
  const SymRef& base = split.base ? split.base : value;
  switch (base->kind()) {
    case SymKind::kArg:
    case SymKind::kRet:
    case SymKind::kDeref:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::vector<AliasFact> CollectAliasFacts(const FunctionSummary& summary,
                                         AliasFactPolicy policy) {
  // Phase 1 (Alg. 1 lines 3-12): (d.op == deref) && u is a pointer
  // =>  ALIAS fact.
  std::vector<AliasFact> facts;
  for (const DefPair& dp : summary.def_pairs) {
    if (!dp.d || dp.d->kind() != SymKind::kDeref) continue;
    if (!dp.u) continue;
    bool pointer = policy == AliasFactPolicy::kPermissive
                       ? IsPointerValuePermissive(dp.u, summary.types)
                       : IsPointerValue(dp.u, summary.types);
    if (pointer) {
      auto split = SymExpr::SplitBaseOffset(dp.u);
      if (split.base) {
        facts.push_back({dp.d, split.base, split.offset});
      }
    }
  }
  return facts;
}

std::vector<DefPair> ComputeAliasTwins(const FunctionSummary& summary,
                                       const std::vector<AliasFact>& facts,
                                       BudgetTracker* budget,
                                       bool* truncated) {
  std::vector<DefPair> additions;
  if (facts.empty()) return additions;

  // DOP set: memory definitions whose location mentions pointers.
  struct DopEntry {
    const DefPair* pair;
    std::vector<SymRef> ptrs;  // GetPtrInVar(d)
  };
  std::vector<DopEntry> dop;
  for (const DefPair& dp : summary.def_pairs) {
    if (!dp.d || dp.d->kind() != SymKind::kDeref) continue;
    // Gather the base pointers occurring inside d (e.g.
    // deref(deref(arg0+0x58)+0xEC) contains base pointers arg0 and
    // deref(arg0+0x58)).
    std::vector<SymRef> ptrs;
    SymExpr::CollectDerefs(dp.d, &ptrs, /*skip_self=*/true);
    // The innermost non-deref roots are base pointers too.
    SymRef root = RootPointerOf(dp.d);
    if (root && root->kind() != SymKind::kConst) ptrs.push_back(root);
    if (!ptrs.empty()) {
      dop.push_back({&dp, std::move(ptrs)});
    }
  }

  // Phase 2 (lines 13-22): rewrite each DOP entry through every
  // matching alias: new_d = d.Replace(p, alias_loc - offset).
  for (const DopEntry& entry : dop) {
    for (const SymRef& ptr : entry.ptrs) {
      for (const AliasFact& fact : facts) {
        if (budget && budget->ChargeStep()) {
          if (truncated) *truncated = true;
          return additions;
        }
        if (!SymExpr::Equal(fact.base, ptr)) continue;
        // Do not rewrite a location with an alias derived from itself
        // (deref(X) = X + k would loop).
        if (SymExpr::Equal(fact.alias_loc, entry.pair->d)) continue;
        SymRef replacement = SymAdd(fact.alias_loc, -fact.offset);
        SymRef new_d =
            SymExpr::Replace(entry.pair->d, ptr, replacement);
        if (SymExpr::Equal(new_d, entry.pair->d)) continue;
        DefPair twin = *entry.pair;
        twin.d = std::move(new_d);
        additions.push_back(std::move(twin));
      }
    }
  }
  return additions;
}

AliasResult AliasReplace(FunctionSummary& summary, BudgetTracker* budget) {
  AliasResult result;
  if (budget && budget->exhausted()) {
    summary.truncated = true;
    return result;
  }

  result.facts = CollectAliasFacts(summary);
  bool truncated = false;
  std::vector<DefPair> additions =
      ComputeAliasTwins(summary, result.facts, budget, &truncated);
  if (truncated) summary.truncated = true;

  result.pairs_added = additions.size();
  for (DefPair& dp : additions) {
    summary.def_pairs.push_back(std::move(dp));
  }
  if (result.pairs_added > 0) {
    DTAINT_LOG(obs::LogLevel::kDebug, "alias",
               "%zu alias-derived def pair(s) from %zu fact(s)",
               result.pairs_added, result.facts.size());
  }
  return result;
}

}  // namespace dtaint
