// DTaint — the end-to-end detector facade.
//
// Pipeline (paper Fig. 4 + §IV): load binary -> lift & build CFGs ->
// per-function static symbolic analysis (bottom-up, once per function)
// with pointer-alias recognition -> indirect-call resolution by
// data-structure-layout similarity -> interprocedural linking ->
// sink-to-source backward path search -> sanitization constraint
// checks -> vulnerability report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/binary/binary.h"
#include "src/cfg/callgraph.h"
#include "src/cfg/cfg_builder.h"
#include "src/core/interproc.h"
#include "src/core/pathfinder.h"
#include "src/core/sanitizer.h"
#include "src/core/structsim.h"
#include "src/obs/metrics.h"
#include "src/util/status.h"

namespace dtaint {

struct DTaintConfig {
  EngineConfig engine;
  InterprocConfig interproc;
  PathFinderConfig pathfinder;
  /// Feature toggles (for the ablation benches).
  bool enable_alias = true;
  bool enable_structsim = true;
};

/// One reported vulnerability (an unsanitized source->sink path).
struct Finding {
  TaintPath path;
  std::string Summary() const;
};

/// Full result of analyzing one binary.
struct AnalysisReport {
  std::string binary_name;
  Arch arch = Arch::kDtArm;

  // Program shape (paper Table II columns).
  size_t functions = 0;
  size_t blocks = 0;
  size_t call_graph_edges = 0;

  // Detection results (paper Table III columns).
  size_t analyzed_functions = 0;
  size_t sink_count = 0;
  size_t vulnerable_paths = 0;     // paths surviving sanitization check
  size_t total_paths = 0;          // all sink->source paths found
  std::vector<Finding> findings;

  // Phase timings (paper Tables VI/VII).
  double ssa_seconds = 0.0;        // lifting + symbolic analysis
  double ddg_seconds = 0.0;        // alias + structsim + linking + paths
  double total_seconds = 0.0;

  // Internals for inspection.
  InterprocStats interproc_stats;
  size_t indirect_calls_resolved = 0;

  /// Path-search effort for this run (sanitized_away filled in here:
  /// total_paths - vulnerable_paths). Deterministic, unlike timings.
  PathFinderStats pathfinder_stats;

  /// Hot-function profile: top functions by summary-analysis wall time,
  /// merged across both bottom-up passes (most expensive first).
  std::vector<HotFunction> hot_functions;

  /// Per-run metrics delta (global registry counters as deltas over
  /// this Analyze call; gauges/histograms as current values). Embedded
  /// in the JSON report as the "metrics" object.
  obs::MetricsSnapshot metrics;

  // Resilience accounting (PR: budgets, degraded summaries, error
  // isolation). `complete` is the one-bit triage answer: did any
  // effort cap, degradation, lift failure, or suppression fire? When
  // false the absence of findings is NOT a clean bill of health.
  bool complete = true;
  /// Functions replaced by the conservative degraded summary (last
  /// bottom-up pass).
  size_t degraded_functions = 0;
  /// Vulnerable paths withheld because they crossed degraded
  /// (over-approximated) data flow. Guarantees a tight-budget run
  /// reports a subset of a generous-budget run's findings.
  size_t suppressed_findings = 0;
  /// Isolated per-function failures: lift errors and budget
  /// exhaustions, with phase/detail/status/budget counters.
  std::vector<Incident> incidents;
};

class DTaint {
 public:
  explicit DTaint(DTaintConfig config = {}) : config_(config) {}

  /// Analyzes one loaded binary end to end.
  Result<AnalysisReport> Analyze(const Binary& binary) const;

  /// Analyzes only the named functions (the paper manually restricts
  /// huge binaries to their protocol modules, §V-A3/A4). Empty filter
  /// means "all functions".
  Result<AnalysisReport> AnalyzeFunctions(
      const Binary& binary, const std::vector<std::string>& only) const;

  const DTaintConfig& config() const { return config_; }

 private:
  DTaintConfig config_;
};

}  // namespace dtaint
