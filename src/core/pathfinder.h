// Sink-to-source path discovery.
//
// With linked summaries in hand, DTaint "tracks the sinks and performs
// backward depth-first traversal to generate paths from sinks to
// sources" (paper §I/§III). A trace starts at a sink call's dangerous
// argument and walks backward through:
//   * definition pairs (def-use matching by memory *region*: a load of
//     deref(buf+k) matches a whole-buffer definition deref(buf) = ...,
//     which is how source functions taint entire buffers);
//   * formal arguments (arg_i of the sink's function is traced into
//     every caller's actual argument via the recorded call events);
// until a Taint symbol (injected by a source library model) is reached
// or the search bottoms out.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/cfg/callgraph.h"
#include "src/cfg/cfg_builder.h"
#include "src/core/interproc.h"
#include "src/core/sources_sinks.h"

namespace dtaint {

/// One hop of a sink-to-source path (backward order: sink first).
struct PathHop {
  std::string function;
  uint32_t site = 0;      // def site / callsite crossed
  std::string note;       // human-readable description
};

/// A complete source → sink data path (pre-sanitization-check).
struct TaintPath {
  // Sink side.
  std::string sink_function;   // function containing the sink call
  uint32_t sink_site = 0;      // callsite of the sink
  std::string sink_name;       // "strcpy", "system", "loop", ...
  VulnClass vuln_class = VulnClass::kBufferOverflow;
  SymRef sink_arg;             // the dangerous argument expression
  SymRef sink_store_addr;      // loop sinks: the store address (its
                               // index term is what bounds checks hit)

  // Source side.
  std::string source_name;     // "recv", "getenv", ...
  uint32_t source_site = 0;

  // Trace.
  std::vector<PathHop> hops;

  /// Constraints active at the sink plus those of crossed callsites —
  /// the material the sanitization checker inspects.
  std::vector<PathConstraint> constraints;
  /// Expressions the tainted value passed through (sink-side first);
  /// sanitization constraints may be phrased against any of them.
  std::vector<SymRef> traced_exprs;

  /// True when any hop matched a definition pair marked `degraded`
  /// (from a budget-exhausted callee's conservative summary). Such a
  /// path rides on over-approximated data flow, not observed flow; the
  /// detector suppresses it from findings and flags the report
  /// incomplete instead — guaranteeing a tight-budget run never
  /// reports paths a generous-budget run would not.
  bool crossed_degraded = false;
};

struct PathFinderConfig {
  int max_depth = 24;          // backward-step budget per trace
  int max_paths_per_sink = 8;  // stop after this many distinct sources
  bool detect_loop_copies = true;
};

/// Search-effort accounting for one FindAll pass. Deterministic for a
/// given program+config (the traversal is), so safe to serialize into
/// reports that are diffed byte-for-byte.
struct PathFinderStats {
  size_t sinks_visited = 0;    // sink occurrences traced (library + loop)
  size_t paths_explored = 0;   // backward Walk steps taken
  size_t pruned_by_depth = 0;  // walks cut short by the max_depth budget
  size_t paths_found = 0;      // distinct sink-to-source paths emitted
  size_t degraded_paths = 0;   // of those, paths crossing degraded pairs
  /// Found paths the sanitization checker later ruled safe. The
  /// checker runs after FindAll, so the *driver* (AnalyzeBinary) fills
  /// this in; it stays 0 when PathFinder is used standalone.
  size_t sanitized_away = 0;
};

class PathFinder {
 public:
  PathFinder(const Program& program, const ProgramAnalysis& analysis,
             PathFinderConfig config = {})
      : program_(program), analysis_(analysis), config_(config) {}

  /// Finds every sink-to-source path in the program.
  std::vector<TaintPath> FindAll() const;

  /// Number of sink callsites scanned (paper Table III "Sinks count").
  size_t SinkCount() const;

  /// Effort counters of the most recent FindAll call.
  const PathFinderStats& stats() const { return stats_; }

 private:
  const Program& program_;
  const ProgramAnalysis& analysis_;
  PathFinderConfig config_;
  mutable PathFinderStats stats_;
};

/// Region-sensitive match: does definition location `def_loc` define
/// (part of) the memory named by `use_expr`? Exact equality, equal
/// base with equal offset, or a whole-region def (deref(B)) covering
/// any deref(B+k) use.
bool DefCoversUse(const SymRef& def_loc, const SymRef& use_expr);

}  // namespace dtaint
