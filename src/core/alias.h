// Pointer-aliasing recognition — paper §III-C, Algorithm 1.
//
// The "move"-created alias (int *p = x; q = p) falls out of symbolic
// analysis for free: both names evaluate to the same symbolic value.
// The "store"-created alias is the interesting one:
//
//     int *p = x;  *(q+4) = p;   =>  *(*(q+4)) and *p alias
//
// i.e. whenever a definition pair says  deref(base1+off1) = base2+off2
// with a pointer-typed right side, any location addressed through
// base2 can equivalently be addressed through deref(base1+off1)-off2.
// AliasReplace materializes those alternate names as extra definition
// pairs so later def/use matching connects flows across both names.
#pragma once

#include <vector>

#include "src/resilience/budget.h"
#include "src/symexec/defpairs.h"

namespace dtaint {

/// One discovered alias fact: `alias_loc` (a deref expression) holds
/// the pointer `base + offset`.
struct AliasFact {
  SymRef alias_loc;  // d: deref(base1+off1)
  SymRef base;       // base2
  int64_t offset;    // off2
};

struct AliasResult {
  std::vector<AliasFact> facts;
  /// Number of definition pairs added by replacement.
  size_t pairs_added = 0;
};

/// Runs Algorithm 1 over a function summary *in place*: discovers alias
/// facts from its definition pairs and appends replaced (new_d, u)
/// pairs. `types` supplies the pointer-type evidence for `u`. The
/// rewrite phase is cubic in the worst case (pairs × pointers × facts),
/// so it charges the optional budget tracker cooperatively; on
/// exhaustion the rewrite stops early and the summary is marked
/// truncated (already-added pairs are kept — they are all sound).
AliasResult AliasReplace(FunctionSummary& summary,
                         BudgetTracker* budget = nullptr);

/// True when the value expression is known or strongly suspected to be
/// a pointer: typed as one, or structurally rooted at the stack, a
/// heap object, or a pointer-returning call.
bool IsPointerValue(const SymRef& value, const TypeMap& types);

}  // namespace dtaint
