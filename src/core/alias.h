// Pointer-aliasing recognition — paper §III-C, Algorithm 1.
//
// The "move"-created alias (int *p = x; q = p) falls out of symbolic
// analysis for free: both names evaluate to the same symbolic value.
// The "store"-created alias is the interesting one:
//
//     int *p = x;  *(q+4) = p;   =>  *(*(q+4)) and *p alias
//
// i.e. whenever a definition pair says  deref(base1+off1) = base2+off2
// with a pointer-typed right side, any location addressed through
// base2 can equivalently be addressed through deref(base1+off1)-off2.
// AliasReplace materializes those alternate names as extra definition
// pairs so later def/use matching connects flows across both names.
//
// Two modes exist (the authors' own follow-up, arXiv 2109.12209,
// replaced the eager pass with on-demand SSE equality):
//
//  * AliasMode::kEager — Algorithm 1 as published: rewrite every
//    function summary up front in phase 1 (AliasReplace below).
//  * AliasMode::kOnDemandSSE — no phase-1 rewrite; "may-alias?"
//    queries are answered lazily at taint-transfer and indirect-call
//    sites by comparing interned SSE base+offset expressions, memoized
//    per function (src/core/alias_ondemand.h). Because the query runs
//    against *linked* summaries, it also sees aliases created across
//    call boundaries that the eager pass structurally cannot.
#pragma once

#include <string_view>
#include <vector>

#include "src/resilience/budget.h"
#include "src/symexec/defpairs.h"

namespace dtaint {

/// When the alias step runs (see file comment). Part of the summary
/// cache key: EngineFingerprint mixes 0 (off) / 1 (eager) / 2
/// (on-demand), so summaries produced under different modes never
/// collide (eager summaries carry the rewrite, on-demand ones do not).
enum class AliasMode : uint8_t {
  kEager = 0,
  kOnDemandSSE = 1,
};

/// Stable flag-facing name: "eager" / "ondemand".
std::string_view AliasModeName(AliasMode mode);

/// Parses "eager" / "ondemand" (also accepts "on-demand" and
/// "ondemand-sse"). Returns false on anything else, leaving *out
/// untouched.
bool ParseAliasMode(std::string_view text, AliasMode* out);

/// One discovered alias fact: `alias_loc` (a deref expression) holds
/// the pointer `base + offset`.
struct AliasFact {
  SymRef alias_loc;  // d: deref(base1+off1)
  SymRef base;       // base2
  int64_t offset;    // off2
};

struct AliasResult {
  std::vector<AliasFact> facts;
  /// Number of definition pairs added by replacement.
  size_t pairs_added = 0;
};

/// Which stored values count as pointers when collecting facts.
enum class AliasFactPolicy : uint8_t {
  /// The paper's gate: typed as a pointer, or structurally rooted at
  /// the stack / a heap object (IsPointerValue). What eager Algorithm 1
  /// uses.
  kTyped,
  /// Additionally accepts Arg/Ret/Deref-rooted values without type
  /// evidence. The on-demand oracle needs this: it collects facts from
  /// *linked* summaries, where a callee's library-signature type
  /// observations are not visible (TypeMaps do not merge across
  /// linking), so the typed gate would drop facts the callee's eager
  /// pass had. Matches the SSE follow-up paper, which compares
  /// base+offset expressions without the type heuristic.
  kPermissive,
};

/// Algorithm 1 phase 1 (lines 3-12): scan the summary's definition
/// pairs for store-created aliases — deref locations whose stored
/// value is pointer-shaped under `policy`.
std::vector<AliasFact> CollectAliasFacts(
    const FunctionSummary& summary,
    AliasFactPolicy policy = AliasFactPolicy::kTyped);

/// Algorithm 1 phase 2 (lines 13-22): rewrite each deref-location pair
/// through every matching fact, producing twin pairs with the location
/// renamed (new_d = d.Replace(p, alias_loc - offset)). Does not mutate
/// the summary; returns the twins in deterministic (pair, pointer,
/// fact) order. The loop is cubic in the worst case, so it charges the
/// optional budget tracker cooperatively; on exhaustion it stops early
/// and sets *truncated (twins already computed are kept — all sound).
std::vector<DefPair> ComputeAliasTwins(const FunctionSummary& summary,
                                       const std::vector<AliasFact>& facts,
                                       BudgetTracker* budget,
                                       bool* truncated);

/// Runs Algorithm 1 over a function summary *in place* (the eager
/// mode): CollectAliasFacts + ComputeAliasTwins with the twins
/// appended to summary.def_pairs and the summary marked truncated on
/// budget exhaustion.
AliasResult AliasReplace(FunctionSummary& summary,
                         BudgetTracker* budget = nullptr);

/// True when the value expression is known or strongly suspected to be
/// a pointer: typed as one, or structurally rooted at the stack, a
/// heap object, or a pointer-returning call.
bool IsPointerValue(const SymRef& value, const TypeMap& types);

}  // namespace dtaint
