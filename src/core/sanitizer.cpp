#include "src/core/sanitizer.h"

namespace dtaint {

namespace {

constexpr uint32_t kSemicolon = 0x3B;

/// Does `expr` mention (contain or equal) any of the values the taint
/// flowed through, or share a memory region with one of them?
bool MentionsTracedValue(const SymRef& expr,
                         const std::vector<SymRef>& traced) {
  if (!expr) return false;
  for (const SymRef& t : traced) {
    if (!t) continue;
    if (SymExpr::Equal(expr, t)) return true;
    if (expr->Contains(t)) return true;
    // Region view: comparing deref(buf+k) sanitizes data traced as
    // deref(buf+j) / deref(buf).
    if (expr->kind() == SymKind::kDeref && t->kind() == SymKind::kDeref) {
      auto es = SymExpr::SplitBaseOffset(expr->lhs());
      auto ts = SymExpr::SplitBaseOffset(t->lhs());
      SymRef eb = StripIndex(es.base ? es.base : expr->lhs());
      SymRef tb = StripIndex(ts.base ? ts.base : t->lhs());
      if (SymExpr::Equal(eb, tb)) return true;
    }
  }
  return false;
}

/// True when the constraint upper-bounds `side` (lhs or rhs holds the
/// tainted value) on the path that was actually taken.
bool BoundsAbove(const PathConstraint& c, bool taint_on_lhs) {
  if (taint_on_lhs) {
    // taken:  n <  x  /  n <= x   bound
    // !taken: n >  x  /  n >= x   (i.e. the "safe" side fell through)
    if (c.taken && (c.op == BinOp::kCmpLt || c.op == BinOp::kCmpLe)) {
      return true;
    }
    if (!c.taken && (c.op == BinOp::kCmpGt || c.op == BinOp::kCmpGe)) {
      return true;
    }
  } else {
    if (c.taken && (c.op == BinOp::kCmpGt || c.op == BinOp::kCmpGe)) {
      return true;
    }
    if (!c.taken && (c.op == BinOp::kCmpLt || c.op == BinOp::kCmpLe)) {
      return true;
    }
  }
  return false;
}

}  // namespace

SanitizationVerdict CheckSanitization(const TaintPath& path) {
  SanitizationVerdict verdict;

  // Loop-copy sinks: bounding the store's index term bounds the write
  // address, which sanitizes the copy regardless of the data's value
  // (e.g. `for (i = 0; i < 48 && src[i]; ++i) dst[i] = src[i]`).
  if (path.sink_store_addr) {
    for (const PathConstraint& c : path.constraints) {
      bool lhs_is_index =
          c.lhs && c.lhs->kind() != SymKind::kConst &&
          path.sink_store_addr->Contains(c.lhs);
      bool rhs_is_index =
          c.rhs && c.rhs->kind() != SymKind::kConst &&
          path.sink_store_addr->Contains(c.rhs);
      if (lhs_is_index && BoundsAbove(c, /*taint_on_lhs=*/true)) {
        verdict.sanitized = true;
        verdict.reason = "index bound: " + c.ToString();
        return verdict;
      }
      if (rhs_is_index && BoundsAbove(c, /*taint_on_lhs=*/false)) {
        verdict.sanitized = true;
        verdict.reason = "index bound: " + c.ToString();
        return verdict;
      }
    }
  }

  for (const PathConstraint& c : path.constraints) {
    const bool lhs_tainted =
        MentionsTracedValue(c.lhs, path.traced_exprs) ||
        (c.lhs && c.lhs->IsTainted());
    const bool rhs_tainted =
        MentionsTracedValue(c.rhs, path.traced_exprs) ||
        (c.rhs && c.rhs->IsTainted());
    if (!lhs_tainted && !rhs_tainted) continue;

    switch (path.vuln_class) {
      case VulnClass::kBufferOverflow: {
        // Any upper bound on the tainted value counts: n < 64 (const)
        // or n < y (symbolic y), per the paper.
        if (lhs_tainted && BoundsAbove(c, /*taint_on_lhs=*/true)) {
          verdict.sanitized = true;
          verdict.reason = "length bound: " + c.ToString();
          return verdict;
        }
        if (rhs_tainted && BoundsAbove(c, /*taint_on_lhs=*/false)) {
          verdict.sanitized = true;
          verdict.reason = "length bound: " + c.ToString();
          return verdict;
        }
        break;
      }
      case VulnClass::kCommandInjection: {
        // A semicolon filter: some byte of the command string compared
        // against ';' (deref(cmd+i) == ';' on either branch polarity).
        const SymRef& other = lhs_tainted ? c.rhs : c.lhs;
        bool cmp_semicolon = other &&
                             other->kind() == SymKind::kConst &&
                             other->const_value() == kSemicolon &&
                             (c.op == BinOp::kCmpEq || c.op == BinOp::kCmpNe);
        if (cmp_semicolon) {
          verdict.sanitized = true;
          verdict.reason = "semicolon filter: " + c.ToString();
          return verdict;
        }
        break;
      }
    }
  }
  return verdict;
}

std::vector<TaintPath> FilterVulnerable(std::vector<TaintPath> paths) {
  std::vector<TaintPath> vulnerable;
  for (TaintPath& path : paths) {
    if (!CheckSanitization(path).sanitized) {
      vulnerable.push_back(std::move(path));
    }
  }
  return vulnerable;
}

}  // namespace dtaint
