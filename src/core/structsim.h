// Data-structure layout similarity — paper §III-D.
//
// Indirect calls take their target from memory, so the call graph (and
// hence data flow) breaks at them. DTaint's insight: the object passed
// to an indirectly-called function usually shares its data-structure
// layout with the functions that built the object. We therefore:
//
//  1. extract, per function, the layout of each structure it touches —
//     a multi-layer structure S = (S_1 ... S_n) where each S_i groups
//     fields (b, o, t) sharing one base address, bases are chained
//     derefs of a root pointer, and field types come from inference;
//  2. compare layouts with the paper's two gating rules (base-set
//     inclusion after root normalization; same-offset fields agree on
//     type) and the Jaccard-style similarity of Eq. (2);
//  3. resolve each symbolic indirect callsite to the address-taken
//     candidate functions whose parameter layout is most similar to
//     the layout of the object used at the callsite.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/binary/binary.h"
#include "src/cfg/cfg_builder.h"
#include "src/symexec/defpairs.h"

namespace dtaint {

class OnDemandAliasOracle;

/// One structure field: base + offset with an inferred type.
struct StructField {
  int64_t offset;
  ValueType type;

  bool operator<(const StructField& other) const {
    return offset != other.offset ? offset < other.offset
                                  : type < other.type;
  }
  bool operator==(const StructField& other) const = default;
};

/// A multi-layer structure layout rooted at one pointer. Base keys are
/// *normalized* base-path strings where the root pointer is replaced by
/// "R" (so layouts rooted at arg0 in one function and arg2 in another
/// compare equal), e.g. "R", "deref(R+0x58)".
struct StructLayout {
  SymRef root;  // the root pointer expression in its home function
  std::map<std::string, std::vector<StructField>> groups;

  size_t FieldCount() const {
    size_t total = 0;
    for (const auto& [_, fields] : groups) total += fields.size();
    return total;
  }
  bool empty() const { return groups.empty(); }
};

/// Extracts structure layouts from a function summary: one layout per
/// root pointer (formal arguments, returned heap objects, stack
/// objects passed onward). Fields are collected from every
/// base+constant-offset memory access in def pairs and undefined uses.
std::vector<StructLayout> ExtractLayouts(const FunctionSummary& summary);

/// Paper's gating rules: base-set inclusion + same-offset same-type.
bool LayoutsCompatible(const StructLayout& a, const StructLayout& b);

/// Eq. (2): sum over aligned base groups of |A_i ∩ B_j| / |A_i ∪ B_j|.
/// Returns 0 when the layouts are incompatible.
double LayoutSimilarity(const StructLayout& a, const StructLayout& b);

/// How a callsite was resolved (IndirectResolution::similarity):
///  * >= 0  — layout-similarity score (paper Eq. (2));
///  * kExactTarget (-1) — the engine concretized the target address;
///  * kSseTarget (-2) — the target SSE matched a known function-pointer
///    store through the on-demand alias oracle.
inline constexpr double kExactTarget = -1.0;
inline constexpr double kSseTarget = -2.0;

/// A resolved indirect callsite.
struct IndirectResolution {
  std::string caller;
  uint32_t callsite = 0;
  std::vector<std::string> targets;  // best-similarity candidates
  double similarity = 0.0;
};

/// Resolves indirect callsites across the program:
///  * constant targets (dispatch-table loads the engine concretized)
///    resolve directly to the function at that address;
///  * with `sse_oracle` set (AliasMode::kOnDemandSSE), symbolic targets
///    whose SSE — directly or through an alias twin — matches a linked
///    definition pair storing a known function address resolve exactly
///    (the cross-call-boundary case layout similarity cannot see);
///  * remaining symbolic targets are matched by structure-layout
///    similarity against address-taken candidate functions (functions
///    whose address appears in .data/.rodata).
/// Writes resolved targets into each CallSite::resolved_targets and
/// returns the resolution log.
std::vector<IndirectResolution> ResolveIndirectCalls(
    Program& program, const std::map<std::string, FunctionSummary>& summaries,
    OnDemandAliasOracle* sse_oracle = nullptr);

/// Functions whose address is stored in a data section (address-taken).
std::vector<std::string> AddressTakenFunctions(const Program& program);

}  // namespace dtaint
