#include "src/core/alias_ondemand.h"

#include "src/obs/log.h"
#include "src/obs/metrics.h"

namespace dtaint {

namespace {

/// Canonicalization fixpoint bound: alias facts can form cycles
/// (p stored in q's cell, q stored in p's), so rewriting runs at most
/// this many rounds. Real chains are 1-2 deep.
constexpr int kMaxCanonicalRounds = 8;

/// One public oracle query: bumps alias.ondemand.queries, and
/// alias.ondemand.hits when the memo already held the answer.
void CountQuery(bool hit) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.counter("alias.ondemand.queries").Add(1);
  if (hit) registry.counter("alias.ondemand.hits").Add(1);
}

}  // namespace

OnDemandAliasOracle::OnDemandAliasOracle(const AnalysisBudget& budget)
    : budget_(budget) {}

OnDemandAliasOracle::Entry& OnDemandAliasOracle::EntryForLocked(
    const FunctionSummary& summary) {
  Entry& entry = memo_[summary.name];
  if (entry.ready) return entry;
  // Permissive policy: the oracle works on *linked* summaries, where a
  // callee's library-signature type observations are not visible, so
  // the eager pass's typed gate would drop facts the callee had. See
  // AliasFactPolicy.
  entry.facts = CollectAliasFacts(summary, AliasFactPolicy::kPermissive);
  // Memo-table budget (AnalysisBudget::max_expr_nodes): once the
  // retained twin-pair total crosses the limit, later functions keep
  // an empty twin set. Conservative — fewer alias matches can only
  // drop findings — and sticky, so one run degrades monotonically.
  if (exhausted_ ||
      (budget_.max_expr_nodes > 0 && memo_pairs_ >= budget_.max_expr_nodes)) {
    if (!exhausted_) {
      DTAINT_LOG(obs::LogLevel::kDebug, "alias",
                 "on-demand memo budget exhausted at %zu pair(s); "
                 "further twin sets degrade to empty",
                 memo_pairs_);
    }
    exhausted_ = true;
  } else {
    bool truncated = false;
    entry.twins =
        ComputeAliasTwins(summary, entry.facts, nullptr, &truncated);
    memo_pairs_ += entry.twins.size();
  }
  entry.ready = true;
  return entry;
}

const std::vector<DefPair>& OnDemandAliasOracle::TwinsFor(
    const FunctionSummary& summary) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = memo_.find(summary.name);
  bool hit = it != memo_.end() && it->second.ready;
  CountQuery(hit);
  return (hit ? it->second : EntryForLocked(summary)).twins;
}

const std::vector<AliasFact>& OnDemandAliasOracle::FactsFor(
    const FunctionSummary& summary) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = memo_.find(summary.name);
  bool hit = it != memo_.end() && it->second.ready;
  CountQuery(hit);
  return (hit ? it->second : EntryForLocked(summary)).facts;
}

SymRef OnDemandAliasOracle::CanonicalSse(const FunctionSummary& summary,
                                         const SymRef& expr) {
  if (!expr) return expr;
  // Copy out under the lock: CanonicalSse runs expression rewrites
  // that must not hold the memo mutex.
  std::vector<AliasFact> facts;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memo_.find(summary.name);
    bool hit = it != memo_.end() && it->second.ready;
    CountQuery(hit);
    facts = (hit ? it->second : EntryForLocked(summary)).facts;
  }
  SymRef cur = expr;
  for (int round = 0; round < kMaxCanonicalRounds; ++round) {
    SymRef next = cur;
    for (const AliasFact& fact : facts) {
      if (!fact.alias_loc || !fact.base) continue;
      SymRef stored = SymAdd(fact.base, fact.offset);
      // A fact whose stored pointer mentions its own cell would grow
      // the expression every round — skip those (degenerate).
      if (stored->Contains(fact.alias_loc)) continue;
      if (!next->Contains(fact.alias_loc)) continue;
      next = SymExpr::Replace(next, fact.alias_loc, stored);
    }
    if (SymExpr::Equal(next, cur)) break;
    cur = next;
  }
  return cur;
}

bool OnDemandAliasOracle::MayAlias(const FunctionSummary& summary,
                                   const SymRef& a, const SymRef& b) {
  if (!a || !b) return false;
  if (SymExpr::Equal(a, b)) return true;
  return SymExpr::Equal(CanonicalSse(summary, a), CanonicalSse(summary, b));
}

size_t OnDemandAliasOracle::memo_functions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memo_.size();
}

size_t OnDemandAliasOracle::memo_pairs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memo_pairs_;
}

bool OnDemandAliasOracle::exhausted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return exhausted_;
}

}  // namespace dtaint
