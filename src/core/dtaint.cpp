#include "src/core/dtaint.h"

#include <algorithm>
#include <set>

#include "src/obs/events.h"
#include "src/obs/log.h"
#include "src/obs/stopwatch.h"
#include "src/obs/trace.h"
#include "src/resilience/fault.h"
#include "src/symexec/intern.h"
#include "src/util/strings.h"

namespace dtaint {

std::string Finding::Summary() const {
  std::string out(VulnClassName(path.vuln_class));
  out += ": " + path.source_name + " -> " + path.sink_name + " in " +
         path.sink_function + " @" + HexStr(path.sink_site) + " (" +
         std::to_string(path.hops.size()) + " hops)";
  return out;
}

Result<AnalysisReport> DTaint::Analyze(const Binary& binary) const {
  return AnalyzeFunctions(binary, {});
}

Result<AnalysisReport> DTaint::AnalyzeFunctions(
    const Binary& binary, const std::vector<std::string>& only) const {
  obs::Tracer& tracer = obs::Tracer::Global();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Stopwatch t_total;
  AnalysisReport report;
  report.binary_name = binary.soname;
  report.arch = binary.arch;
  obs::Span binary_span(tracer, "binary", report.binary_name);
  obs::EventStream& events = obs::EventStream::Global();
  obs::MetricsSnapshot metrics_before = registry.Snapshot();
  if (events.enabled()) {
    events.Emit(obs::Event("binary_begin")
                    .Str("binary", report.binary_name)
                    .Str("arch", ArchName(binary.arch)));
    events.Emit(obs::Event("alias_mode")
                    .Str("mode", config_.enable_alias
                                     ? AliasModeName(
                                           config_.interproc.alias_mode)
                                     : "off"));
  }
  DTAINT_LOG(obs::LogLevel::kInfo, "dtaint", "analyzing %s",
             report.binary_name.c_str());

  // 1. Lift and structure the whole binary.
  obs::Stopwatch t_ssa;
  obs::Span lift_span(tracer, "phase", "lift");
  obs::Stopwatch t_lift;
  if (events.enabled()) {
    events.Emit(obs::Event("phase_begin").Str("phase", "lift"));
  }
  CfgBuilder builder(binary);
  auto program_or = builder.BuildProgram();
  if (!program_or.ok()) {
    DTAINT_LOG(obs::LogLevel::kError, "dtaint", "lift failed for %s: %s",
               report.binary_name.c_str(),
               program_or.status().ToString().c_str());
    return program_or.status();
  }
  Program program = std::move(*program_or);
  lift_span.Finish();
  for (const auto& [fn_name, status] : program.lift_failures) {
    Incident incident;
    incident.binary = report.binary_name;
    incident.phase = "lift";
    incident.detail = fn_name;
    incident.status = status;
    if (events.enabled()) EmitIncident(events, incident);
    report.incidents.push_back(std::move(incident));
    DTAINT_LOG(obs::LogLevel::kWarn, "dtaint", "%s: lift skipped %s: %s",
               report.binary_name.c_str(), fn_name.c_str(),
               status.ToString().c_str());
  }

  report.functions = program.functions.size();
  report.blocks = program.TotalBlocks();
  registry.counter("lift.functions").Add(report.functions);
  registry.counter("lift.blocks").Add(report.blocks);
  if (events.enabled()) {
    events.Emit(obs::Event("phase_end")
                    .Str("phase", "lift")
                    .Double("duration_ms", t_lift.Seconds() * 1e3)
                    .Num("functions", static_cast<uint64_t>(report.functions))
                    .Num("blocks", static_cast<uint64_t>(report.blocks))
                    .Num("lift_failures",
                         static_cast<uint64_t>(
                             program.lift_failures.size())));
  }

  // Optional focus filter: keep the named functions plus everything
  // transitively reachable from them.
  std::set<std::string> keep;
  if (!only.empty()) {
    // Seed + direct-call closure. Address-taken functions stay too:
    // they are potential indirect-call targets, and dropping them
    // would blind the structure-similarity resolution.
    std::vector<std::string> work(only.begin(), only.end());
    if (config_.enable_structsim) {
      for (const std::string& name : AddressTakenFunctions(program)) {
        work.push_back(name);
      }
    }
    while (!work.empty()) {
      std::string name = std::move(work.back());
      work.pop_back();
      if (!program.functions.count(name)) continue;
      if (!keep.insert(name).second) continue;
      for (const CallSite& cs : program.functions.at(name).callsites) {
        if (!cs.is_indirect && !cs.target_is_import &&
            !cs.target_name.empty()) {
          work.push_back(cs.target_name);
        }
      }
    }
    for (auto it = program.functions.begin();
         it != program.functions.end();) {
      if (!keep.count(it->first)) {
        program.fn_by_addr.erase(it->second.addr);
        it = program.functions.erase(it);
      } else {
        ++it;
      }
    }
  }
  report.analyzed_functions = program.functions.size();

  // 2. Intraprocedural symbolic analysis, bottom-up; alias recognition.
  SymEngine engine(binary, config_.engine);
  InterprocConfig interproc_config = config_.interproc;
  interproc_config.apply_alias = config_.enable_alias;

  CallGraph graph = CallGraph::Build(program);
  ProgramAnalysis analysis =
      RunBottomUp(program, graph, engine, interproc_config);
  report.ssa_seconds = t_ssa.Seconds();
  // Stats that must combine across the two bottom-up passes (the
  // re-link after indirect-call resolution re-runs RunBottomUp, whose
  // stats are per-pass).
  double summary_seconds = analysis.stats.summary_seconds;
  size_t cache_hits = analysis.stats.cache_hits;
  size_t cache_misses = analysis.stats.cache_misses;
  std::vector<HotFunction> hot_functions = analysis.stats.hot_functions;

  // 3. Indirect-call resolution via structure-layout similarity, then
  // re-link so flows cross the resolved edges.
  obs::Stopwatch t_ddg;
  if (config_.enable_structsim) {
    obs::Span structsim_span(tracer, "phase", "structsim");
    obs::Stopwatch t_structsim;
    if (events.enabled()) {
      events.Emit(obs::Event("phase_begin").Str("phase", "structsim"));
    }
    // In on-demand alias mode the oracle adds the SSE resolution tier:
    // call-target SSEs matched against linked function-pointer stores
    // and their alias twins (null oracle = eager mode, tier disabled).
    auto resolutions = ResolveIndirectCalls(program, analysis.summaries,
                                            analysis.alias_oracle.get());
    report.indirect_calls_resolved = resolutions.size();
    registry.counter("structsim.indirect_calls_resolved")
        .Add(report.indirect_calls_resolved);
    structsim_span.Finish();
    if (events.enabled()) {
      events.Emit(obs::Event("phase_end")
                      .Str("phase", "structsim")
                      .Double("duration_ms", t_structsim.Seconds() * 1e3)
                      .Num("resolved",
                           static_cast<uint64_t>(
                               report.indirect_calls_resolved)));
    }
    if (!resolutions.empty()) {
      CallGraph graph2 = CallGraph::Build(program);
      analysis = RunBottomUp(program, graph2, engine, interproc_config);
      summary_seconds += analysis.stats.summary_seconds;
      cache_hits += analysis.stats.cache_hits;
      cache_misses += analysis.stats.cache_misses;
      hot_functions =
          MergeHotFunctions(std::move(hot_functions),
                            analysis.stats.hot_functions,
                            interproc_config.hot_function_count);
    }
  }
  report.interproc_stats = analysis.stats;
  // Both bottom-up passes produce summaries; report the combined time
  // and combined cache traffic.
  report.interproc_stats.summary_seconds = summary_seconds;
  report.interproc_stats.cache_hits = cache_hits;
  report.interproc_stats.cache_misses = cache_misses;
  report.interproc_stats.hot_functions = hot_functions;
  report.hot_functions = std::move(hot_functions);
  report.call_graph_edges = program.CallEdgeCount();

  // 4. Sink-to-source path search + sanitization checks.
  if (FaultPlan::Global().ShouldFail(FaultSite::kPathfinder,
                                     report.binary_name)) {
    return Internal("injected pathfinder fault: " + report.binary_name);
  }
  PathFinder finder(program, analysis, config_.pathfinder);
  report.sink_count = finder.SinkCount();
  obs::Span pathfind_span(tracer, "phase", "pathfind");
  obs::Stopwatch t_pathfind;
  if (events.enabled()) {
    events.Emit(obs::Event("phase_begin").Str("phase", "pathfind"));
  }
  std::vector<TaintPath> paths = finder.FindAll();
  pathfind_span.Finish();
  report.total_paths = paths.size();
  report.pathfinder_stats = finder.stats();
  if (events.enabled()) {
    events.Emit(obs::Event("phase_end")
                    .Str("phase", "pathfind")
                    .Double("duration_ms", t_pathfind.Seconds() * 1e3)
                    .Num("paths", static_cast<uint64_t>(report.total_paths))
                    .Num("sinks", static_cast<uint64_t>(report.sink_count)));
    events.Emit(obs::Event("phase_begin").Str("phase", "sanitize"));
  }
  obs::Span sanitize_span(tracer, "phase", "sanitize");
  obs::Stopwatch t_sanitize;
  std::vector<TaintPath> vulnerable = FilterVulnerable(std::move(paths));
  sanitize_span.Finish();
  report.pathfinder_stats.sanitized_away =
      report.total_paths - vulnerable.size();
  if (events.enabled()) {
    events.Emit(obs::Event("phase_end")
                    .Str("phase", "sanitize")
                    .Double("duration_ms", t_sanitize.Seconds() * 1e3)
                    .Num("sanitized",
                         static_cast<uint64_t>(
                             report.pathfinder_stats.sanitized_away)));
  }
  // Paths riding on degraded (over-approximated) flow are withheld:
  // reporting them would let a *smaller* budget produce *more*
  // findings. They count as suppressed and flip `complete` instead.
  size_t before_suppression = vulnerable.size();
  vulnerable.erase(std::remove_if(vulnerable.begin(), vulnerable.end(),
                                  [](const TaintPath& p) {
                                    return p.crossed_degraded;
                                  }),
                   vulnerable.end());
  report.suppressed_findings = before_suppression - vulnerable.size();
  report.vulnerable_paths = vulnerable.size();
  registry.counter("sanitize.paths_sanitized")
      .Add(report.pathfinder_stats.sanitized_away);
  registry.counter("resilience.findings_suppressed")
      .Add(report.suppressed_findings);
  for (TaintPath& path : vulnerable) {
    report.findings.push_back({std::move(path)});
  }
  if (events.enabled()) {
    for (const Finding& finding : report.findings) {
      const TaintPath& p = finding.path;
      events.Emit(obs::Event("finding")
                      .Str("class", VulnClassName(p.vuln_class))
                      .Str("source", p.source_name)
                      .Str("sink", p.sink_name)
                      .Str("sink_function", p.sink_function)
                      .Str("sink_site", HexStr(p.sink_site))
                      .Num("hops", static_cast<uint64_t>(p.hops.size()))
                      .Num("constraints",
                           static_cast<uint64_t>(p.constraints.size())));
    }
  }
  report.degraded_functions = report.interproc_stats.degraded_functions;
  for (const Incident& incident : report.interproc_stats.incidents) {
    if (events.enabled()) EmitIncident(events, incident);
    report.incidents.push_back(incident);
  }
  // Note: the engine's own max_paths truncation (FunctionSummary::
  // truncated) fires on nearly every real binary at default config and
  // is the normal bounded-exploration baseline, so it does NOT flip
  // `complete` — only the resilience machinery (lift failures, budget
  // degradation, finding suppression) and pathfinder depth pruning do.
  report.complete = report.incidents.empty() &&
                    report.suppressed_findings == 0 &&
                    report.degraded_functions == 0 &&
                    report.pathfinder_stats.pruned_by_depth == 0;
  report.ddg_seconds = t_ddg.Seconds();
  report.total_seconds = t_total.Seconds();
  // Fold the path-search/sanitization expression traffic into the
  // intern.* counters before the per-run delta is taken.
  ExprInterner::Global().PublishMetrics();
  report.metrics = registry.Snapshot().DeltaSince(metrics_before);
  if (events.enabled()) {
    events.Emit(obs::Event("binary_end")
                    .Str("binary", report.binary_name)
                    .Num("functions",
                         static_cast<uint64_t>(report.analyzed_functions))
                    .Num("findings",
                         static_cast<uint64_t>(report.findings.size()))
                    .Bool("complete", report.complete)
                    .Double("duration_ms", report.total_seconds * 1e3));
  }
  DTAINT_LOG(obs::LogLevel::kInfo, "dtaint",
             "%s: %zu findings (%zu paths, %zu sanitized) in %.3fs",
             report.binary_name.c_str(), report.findings.size(),
             report.total_paths, report.pathfinder_stats.sanitized_away,
             report.total_seconds);
  return report;
}

}  // namespace dtaint
