#include "src/core/dtaint.h"

#include <set>

#include "src/util/strings.h"

namespace dtaint {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

std::string Finding::Summary() const {
  std::string out(VulnClassName(path.vuln_class));
  out += ": " + path.source_name + " -> " + path.sink_name + " in " +
         path.sink_function + " @" + HexStr(path.sink_site) + " (" +
         std::to_string(path.hops.size()) + " hops)";
  return out;
}

Result<AnalysisReport> DTaint::Analyze(const Binary& binary) const {
  return AnalyzeFunctions(binary, {});
}

Result<AnalysisReport> DTaint::AnalyzeFunctions(
    const Binary& binary, const std::vector<std::string>& only) const {
  auto t_total = Clock::now();
  AnalysisReport report;
  report.binary_name = binary.soname;
  report.arch = binary.arch;

  // 1. Lift and structure the whole binary.
  auto t_ssa = Clock::now();
  CfgBuilder builder(binary);
  auto program_or = builder.BuildProgram();
  if (!program_or.ok()) return program_or.status();
  Program program = std::move(*program_or);

  report.functions = program.functions.size();
  report.blocks = program.TotalBlocks();

  // Optional focus filter: keep the named functions plus everything
  // transitively reachable from them.
  std::set<std::string> keep;
  if (!only.empty()) {
    // Seed + direct-call closure. Address-taken functions stay too:
    // they are potential indirect-call targets, and dropping them
    // would blind the structure-similarity resolution.
    std::vector<std::string> work(only.begin(), only.end());
    if (config_.enable_structsim) {
      for (const std::string& name : AddressTakenFunctions(program)) {
        work.push_back(name);
      }
    }
    while (!work.empty()) {
      std::string name = std::move(work.back());
      work.pop_back();
      if (!program.functions.count(name)) continue;
      if (!keep.insert(name).second) continue;
      for (const CallSite& cs : program.functions.at(name).callsites) {
        if (!cs.is_indirect && !cs.target_is_import &&
            !cs.target_name.empty()) {
          work.push_back(cs.target_name);
        }
      }
    }
    for (auto it = program.functions.begin();
         it != program.functions.end();) {
      if (!keep.count(it->first)) {
        program.fn_by_addr.erase(it->second.addr);
        it = program.functions.erase(it);
      } else {
        ++it;
      }
    }
  }
  report.analyzed_functions = program.functions.size();

  // 2. Intraprocedural symbolic analysis, bottom-up; alias recognition.
  SymEngine engine(binary, config_.engine);
  InterprocConfig interproc_config = config_.interproc;
  interproc_config.apply_alias = config_.enable_alias;

  CallGraph graph = CallGraph::Build(program);
  ProgramAnalysis analysis =
      RunBottomUp(program, graph, engine, interproc_config);
  report.ssa_seconds = SecondsSince(t_ssa);
  double summary_seconds = analysis.stats.summary_seconds;

  // 3. Indirect-call resolution via structure-layout similarity, then
  // re-link so flows cross the resolved edges.
  auto t_ddg = Clock::now();
  if (config_.enable_structsim) {
    auto resolutions = ResolveIndirectCalls(program, analysis.summaries);
    report.indirect_calls_resolved = resolutions.size();
    if (!resolutions.empty()) {
      CallGraph graph2 = CallGraph::Build(program);
      analysis = RunBottomUp(program, graph2, engine, interproc_config);
      summary_seconds += analysis.stats.summary_seconds;
    }
  }
  report.interproc_stats = analysis.stats;
  // Both bottom-up passes produce summaries; report the combined time.
  report.interproc_stats.summary_seconds = summary_seconds;
  report.call_graph_edges = program.CallEdgeCount();

  // 4. Sink-to-source path search + sanitization checks.
  PathFinder finder(program, analysis, config_.pathfinder);
  report.sink_count = finder.SinkCount();
  std::vector<TaintPath> paths = finder.FindAll();
  report.total_paths = paths.size();
  std::vector<TaintPath> vulnerable = FilterVulnerable(paths);
  report.vulnerable_paths = vulnerable.size();
  for (TaintPath& path : vulnerable) {
    report.findings.push_back({std::move(path)});
  }
  report.ddg_seconds = SecondsSince(t_ddg);
  report.total_seconds = SecondsSince(t_total);
  return report;
}

}  // namespace dtaint
