// Bottom-up interprocedural data flow — paper §III-E, Algorithm 2.
//
// The call graph is traversed in post-order (callees before callers;
// recursion handled by SCC condensation), and each function's
// intraprocedural summary is *linked* against its already-processed
// callees:
//
//  * ret_{callsite} symbols are replaced by the callee's actual return
//    value (ReplaceRetVariable); heap pointers returned by callees get
//    their identity re-hashed with the callsite so distinct callsites
//    yield distinct objects (Listing 1);
//  * the callee's escaping definitions — (d, u) pairs reaching the
//    exit whose root pointer is a formal argument or returned pointer
//    — are rewritten formal->actual (ReplaceFormalArgs) and pushed
//    into the caller's definition pairs (UpdateDefPairs);
//  * the callee's undefined uses are likewise rewritten and forwarded
//    to the caller (ForwardUndefinedUse).
//
// Every function's symbolic analysis runs exactly once; linking is a
// cheap substitution pass. This is the structural reason DTaint's DDG
// generation beats the top-down worklist baseline (paper Table VII).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/cfg/callgraph.h"
#include "src/cfg/cfg_builder.h"
#include "src/symexec/defpairs.h"
#include "src/symexec/engine.h"

namespace dtaint {

struct InterprocConfig {
  bool apply_alias = true;     // run Algorithm 1 on each summary
  /// Cap on defs/uses imported per callsite (keeps linking linear on
  /// pathological fan-in).
  size_t max_imported_per_callsite = 256;
  /// Worker threads for the intraprocedural phase. Per-function
  /// symbolic analyses are independent (results are identical for any
  /// thread count — tested), but the work is dominated by small
  /// shared_ptr/map allocations, so with the default glibc allocator
  /// extra threads contend and can run *slower* on the binaries in
  /// this repo (see bench/scaling_size). Worth >1 only with an
  /// arena/thread-caching allocator or far heavier per-function
  /// budgets. 1 = sequential (default; matches the paper's prototype).
  int num_threads = 1;
};

struct InterprocStats {
  size_t functions_processed = 0;
  size_t defs_propagated = 0;
  size_t uses_forwarded = 0;
  size_t rets_replaced = 0;
  size_t alias_pairs_added = 0;
};

/// Whole-program analysis state after the bottom-up pass: per-function
/// linked summaries (def pairs now include inherited callee effects).
struct ProgramAnalysis {
  std::map<std::string, FunctionSummary> summaries;
  InterprocStats stats;
};

/// Runs intraprocedural symbolic analysis (once per function, in
/// bottom-up call-graph order) and links summaries per Algorithm 2.
/// `graph` must be built over `program` (with indirect calls resolved
/// beforehand if structure-similarity resolution is enabled).
ProgramAnalysis RunBottomUp(const Program& program, const CallGraph& graph,
                            const SymEngine& engine,
                            const InterprocConfig& config = {});

}  // namespace dtaint
