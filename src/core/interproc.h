// Bottom-up interprocedural data flow — paper §III-E, Algorithm 2.
//
// The call graph is traversed in post-order (callees before callers;
// recursion handled by SCC condensation), and each function's
// intraprocedural summary is *linked* against its already-processed
// callees:
//
//  * ret_{callsite} symbols are replaced by the callee's actual return
//    value (ReplaceRetVariable); heap pointers returned by callees get
//    their identity re-hashed with the callsite so distinct callsites
//    yield distinct objects (Listing 1);
//  * the callee's escaping definitions — (d, u) pairs reaching the
//    exit whose root pointer is a formal argument or returned pointer
//    — are rewritten formal->actual (ReplaceFormalArgs) and pushed
//    into the caller's definition pairs (UpdateDefPairs);
//  * the callee's undefined uses are likewise rewritten and forwarded
//    to the caller (ForwardUndefinedUse).
//
// Every function's symbolic analysis runs exactly once; linking is a
// cheap substitution pass. This is the structural reason DTaint's DDG
// generation beats the top-down worklist baseline (paper Table VII).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cfg/callgraph.h"
#include "src/cfg/cfg_builder.h"
#include "src/core/alias.h"
#include "src/resilience/budget.h"
#include "src/resilience/incident.h"
#include "src/symexec/defpairs.h"
#include "src/symexec/engine.h"

namespace dtaint {

class SummaryCache;
class OnDemandAliasOracle;

struct InterprocConfig {
  bool apply_alias = true;     // run the alias step at all
  /// How the alias step runs when apply_alias is set:
  ///  * kEager — Algorithm 1 rewrites every summary in phase 1 (the
  ///    paper's design);
  ///  * kOnDemandSSE — phase 1 skips the rewrite; ProgramAnalysis
  ///    carries an OnDemandAliasOracle that answers alias queries
  ///    lazily against the *linked* summaries (pathfinder taint
  ///    transfer, structsim indirect-call resolution). The mode is
  ///    part of the summary-cache fingerprint, so cached eager and
  ///    on-demand summaries never mix.
  AliasMode alias_mode = AliasMode::kEager;
  /// Cap on defs/uses imported per callsite (keeps linking linear on
  /// pathological fan-in).
  size_t max_imported_per_callsite = 256;
  /// Worker threads for the intraprocedural phase. Per-function
  /// symbolic analyses are independent (results are identical for any
  /// thread count — tested by the differential suite). Since the
  /// expression interner landed (src/symexec/intern.h) the per-function
  /// work no longer hammers the allocator — equality is a pointer
  /// compare and factory hits allocate nothing — so extra threads pay
  /// off on multi-core hosts; bench/scaling_threads measures the
  /// sequential-vs-N speedup of the summary phase. Set to the core
  /// count for large binaries/fleets. 1 = sequential (default, and the
  /// right choice on single-core hosts).
  int num_threads = 1;
  /// Optional persistent function-summary cache (off by default). When
  /// set, the intraprocedural phase looks up each function's summary by
  /// its content-addressed key before analyzing, and stores misses
  /// after. Results are identical with or without the cache — enforced
  /// by the differential-oracle test suite. The cache is internally
  /// synchronized; sharing one across threads and scans is safe.
  SummaryCache* cache = nullptr;
  /// Size of the hot-function profile (top functions by summary-
  /// analysis wall time) kept in InterprocStats. 0 disables profiling.
  size_t hot_function_count = 10;
  /// Per-function analysis budget (0 limits = unbounded). Each worker
  /// charges its own BudgetTracker during symbolic exploration and the
  /// alias rewrite; an exhausted function yields the conservative
  /// degraded summary (never cached) and an Incident in the stats.
  AnalysisBudget budget;
};

/// One entry of the hot-function profile: where summary-production time
/// went (paper Tables VI/VII ask exactly this question per phase; this
/// answers it per function, which is what decides where summarization
/// or caching pays off).
struct HotFunction {
  std::string name;
  double seconds = 0.0;
  bool cached = false;  // summary served by the cache, not recomputed
};

struct InterprocStats {
  /// Wall time of phase 1 — per-function summary production (symbolic
  /// analysis + alias rewrite, or a cache hit). This is exactly the
  /// work a summary cache can serve, so bench/cache_warm reports its
  /// cold-vs-warm ratio separately from end-to-end wall time.
  double summary_seconds = 0.0;
  size_t functions_processed = 0;
  size_t defs_propagated = 0;
  size_t uses_forwarded = 0;
  size_t rets_replaced = 0;
  size_t alias_pairs_added = 0;
  /// Summary-cache counters for this pass (zero when no cache is
  /// configured). Hits + misses = functions looked up. Compatibility
  /// view: since the obs layer landed these are populated from the
  /// metrics registry ("cache.*" counters, which the cache itself
  /// increments), not read off the cache — proven equal to the cache's
  /// own CacheStats by the obs test suite. hits/misses are deltas for
  /// this pass; evictions is the registry's lifetime total (identical
  /// to the legacy semantics when one cache is shared, the supported
  /// configuration); memory_bytes is the "cache.memory_bytes" gauge.
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t cache_evictions = 0;   // lifetime evictions of the shared cache
  size_t cache_memory_bytes = 0;  // in-memory tier footprint after the pass
  /// Top functions by summary-production time this pass, most expensive
  /// first (bounded by InterprocConfig::hot_function_count).
  std::vector<HotFunction> hot_functions;
  /// Functions that exhausted their budget (or hit an injected summary
  /// fault) and were replaced by the conservative degraded summary.
  size_t degraded_functions = 0;
  /// Functions whose exploration hit any internal path/step cap
  /// (engine truncation or degraded — analysis incomplete either way).
  size_t truncated_functions = 0;
  /// One record per degraded function: phase "summary", the function
  /// name, and the budget counters at exhaustion.
  std::vector<Incident> incidents;
};

/// Whole-program analysis state after the bottom-up pass: per-function
/// linked summaries (def pairs now include inherited callee effects).
struct ProgramAnalysis {
  std::map<std::string, FunctionSummary> summaries;
  InterprocStats stats;
  /// Set iff the pass ran with AliasMode::kOnDemandSSE: the memoized
  /// alias-query oracle consumers (pathfinder, structsim) share.
  /// Null in eager mode — callers treat "no oracle" as "twins already
  /// materialized in the summaries".
  std::shared_ptr<OnDemandAliasOracle> alias_oracle;
};

/// Runs intraprocedural symbolic analysis (once per function, in
/// bottom-up call-graph order) and links summaries per Algorithm 2.
/// `graph` must be built over `program` (with indirect calls resolved
/// beforehand if structure-similarity resolution is enabled).
ProgramAnalysis RunBottomUp(const Program& program, const CallGraph& graph,
                            const SymEngine& engine,
                            const InterprocConfig& config = {});

/// Merges two hot-function profiles (e.g. the two bottom-up passes of
/// one analysis): per function the larger time wins; result sorted
/// descending and truncated to `limit`.
std::vector<HotFunction> MergeHotFunctions(std::vector<HotFunction> a,
                                           const std::vector<HotFunction>& b,
                                           size_t limit);

}  // namespace dtaint
