// Sanitization constraint checking (paper §IV).
//
// A discovered sink-to-source path is only a vulnerability if the data
// flows unchecked. Two constraint families are modeled:
//  * buffer overflow: the path is safe if any path constraint bounds
//    the tainted value from above ("n < 64", "n < y" with symbolic y,
//    or the negation "!(n > 64)" on the fallthrough side);
//  * command injection: the path is safe if any constraint compares a
//    byte of the tainted command string against ';' (0x3B) — the
//    semicolon filter the paper describes.
#pragma once

#include <vector>

#include "src/core/pathfinder.h"

namespace dtaint {

/// Verdict for one path after constraint checking.
struct SanitizationVerdict {
  bool sanitized = false;
  std::string reason;  // which constraint sanitized it, if any
};

/// Checks one traced path against its recorded constraints.
SanitizationVerdict CheckSanitization(const TaintPath& path);

/// Filters paths down to actual vulnerabilities (unsanitized paths).
/// Takes the paths by value: survivors are moved through, so a caller
/// done with its vector passes std::move and no TaintPath (hops,
/// traced expressions, constraint copies) is ever deep-copied.
std::vector<TaintPath> FilterVulnerable(std::vector<TaintPath> paths);

}  // namespace dtaint
