#include "src/core/sources_sinks.h"

namespace dtaint {

std::string_view VulnClassName(VulnClass cls) {
  switch (cls) {
    case VulnClass::kBufferOverflow:
      return "Buffer Overflow";
    case VulnClass::kCommandInjection:
      return "Command Injection";
  }
  return "?";
}

const std::vector<SinkSpec>& AllSinks() {
  static const std::vector<SinkSpec> kSinks = {
      // Unbounded string copies: dangerous when the *source string* is
      // attacker-controlled (param 1 for str*, param 2 for sprintf's
      // first vararg).
      {"strcpy", 1, VulnClass::kBufferOverflow},
      {"strcat", 1, VulnClass::kBufferOverflow},
      {"sprintf", 2, VulnClass::kBufferOverflow},
      {"sscanf", 0, VulnClass::kBufferOverflow},
      // Length-parameterized copies: dangerous when the *length* is
      // attacker-controlled (Heartbleed shape).
      {"memcpy", 2, VulnClass::kBufferOverflow},
      {"strncpy", 2, VulnClass::kBufferOverflow},
      // Command execution: dangerous when the command string is
      // attacker-controlled and unfiltered.
      {"system", 0, VulnClass::kCommandInjection},
      {"popen", 0, VulnClass::kCommandInjection},
      // Loop buffer copy (code pattern, not a call): the copied value
      // is "param 0" of the pseudo-sink.
      {"loop", 0, VulnClass::kBufferOverflow},
  };
  return kSinks;
}

std::optional<SinkSpec> FindSink(std::string_view name) {
  for (const SinkSpec& sink : AllSinks()) {
    if (sink.name == name) return sink;
  }
  return std::nullopt;
}

const std::vector<std::string>& AllSources() {
  static const std::vector<std::string> kSources = {
      "read",   "recv",  "recvfrom",   "recvmsg",
      "getenv", "fgets", "websGetVar", "find_var",
  };
  return kSources;
}

bool IsSource(std::string_view name) {
  for (const std::string& source : AllSources()) {
    if (source == name) return true;
  }
  return false;
}

}  // namespace dtaint
