#include "src/core/interproc.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>

#include "src/cache/summary_cache.h"
#include "src/core/alias.h"
#include "src/core/alias_ondemand.h"
#include "src/resilience/fault.h"
#include "src/symexec/intern.h"
#include "src/obs/events.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/stopwatch.h"
#include "src/obs/trace.h"
#include "src/util/hash.h"

namespace dtaint {

namespace {

/// Replaces every formal-argument symbol arg_i occurring in `expr`
/// with the i-th actual argument of the callsite (Algorithm 2's
/// ReplaceFormalArgs). Unmapped formals stay as-is.
SymRef ReplaceFormalArgs(const SymRef& expr,
                         const std::vector<SymRef>& actual_args) {
  // O(1) bail-out for the common case: nothing argument-rooted inside.
  if (!expr->ContainsKind(SymKind::kArg)) return expr;
  SymRef result = expr;
  for (int i = 0; i < kMaxModeledArgs; ++i) {
    SymRef formal = SymExpr::Arg(i);
    if (!result->Contains(formal)) continue;
    if (i < static_cast<int>(actual_args.size()) && actual_args[i]) {
      result = SymExpr::Replace(result, formal, actual_args[i]);
    }
  }
  return result;
}

/// Re-keys Heap identities with the callsite: the callee's heap object
/// hash is extended by the caller's callsite address, so two calls to
/// the same allocating callee produce distinct objects (Listing 1's
/// "hash value of the callsite chain").
SymRef RehashHeap(const SymRef& expr, uint32_t callsite) {
  // The kind bitmask proves heap-freeness without walking the tree.
  if (!expr->ContainsKind(SymKind::kHeap)) return expr;
  if (expr->kind() == SymKind::kHeap) {
    return SymExpr::Heap(HashCombine(expr->heap_id(), callsite));
  }
  if (!expr->lhs() && !expr->rhs()) return expr;
  SymRef lhs = expr->lhs() ? RehashHeap(expr->lhs(), callsite) : nullptr;
  SymRef rhs = expr->rhs() ? RehashHeap(expr->rhs(), callsite) : nullptr;
  if (lhs.get() == expr->lhs().get() && rhs.get() == expr->rhs().get()) {
    return expr;
  }
  if (expr->kind() == SymKind::kDeref) {
    return SymExpr::Deref(lhs, expr->deref_size());
  }
  if (expr->kind() == SymKind::kBin) {
    return SymExpr::Bin(expr->binop(), lhs, rhs);
  }
  return expr;
}

/// Picks the callee's representative return value: prefer a value that
/// carries structure (argument passthrough, heap pointer, tainted
/// expression) over opaque unknowns.
SymRef RepresentativeReturn(const FunctionSummary& callee) {
  SymRef best;
  for (const SymRef& ret : callee.return_values) {
    if (!ret) continue;
    if (!best) best = ret;
    switch (RootPointerOf(ret)->kind()) {
      case SymKind::kArg:
      case SymKind::kHeap:
      case SymKind::kTaint:
      case SymKind::kRet:
        return ret;
      default:
        break;
    }
    if (ret->IsTainted()) return ret;
  }
  return best;
}

/// Cache-key encoding of the alias configuration: 0 = alias off,
/// 1 = eager (the same bit the pre-mode bool mixed, so existing eager
/// caches stay valid), 2 = on-demand SSE (summaries carry no twins).
int AliasModeKey(const InterprocConfig& config) {
  if (!config.apply_alias) return 0;
  return config.alias_mode == AliasMode::kOnDemandSSE ? 2 : 1;
}

}  // namespace

ProgramAnalysis RunBottomUp(const Program& program, const CallGraph& graph,
                            const SymEngine& engine,
                            const InterprocConfig& config) {
  ProgramAnalysis analysis;
  const std::vector<std::string> order = graph.BottomUpOrder();
  obs::Tracer& tracer = obs::Tracer::Global();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::EventStream& events = obs::EventStream::Global();
  // Live progress gauge the heartbeat thread reads: bumped on EVERY
  // analyze_one entry — cache hit or miss — so the rate tracks work
  // retired, and so event-off and event-on runs stay byte-identical
  // (the differential oracles compare cold vs warm reports).
  obs::Counter& fns_done = registry.counter("summary.functions_done");
  // CoW-state and block-memoization traffic, folded out of each
  // summary's ExplorationStats here (the symexec layer stays obs-free).
  // Cache-served summaries carry zeros, so the counters reflect work
  // actually performed this run.
  obs::Counter& m_state_forks = registry.counter("engine.state_forks");
  obs::Counter& m_cow_copies = registry.counter("engine.cow_copies");
  obs::Counter& m_overlay_spills = registry.counter("engine.overlay_spills");
  obs::Counter& m_memo_hits = registry.counter("engine.block_memo_hits");
  obs::Counter& m_memo_lookups = registry.counter("engine.block_memo_lookups");
  obs::Counter& m_tainted_paths = registry.counter("engine.tainted_paths");

  // Phase 1: intraprocedural static symbolic analysis — exactly once
  // per function (and, with a summary cache configured, once per
  // function *content* across runs). The analyses are independent of
  // each other, so with num_threads > 1 they run on a worker pool;
  // results land in a pre-sized slot vector so no synchronization
  // beyond the work-index counter (and the cache's internal lock) is
  // needed.
  std::vector<FunctionSummary> base(order.size());
  // Per-function cost accounting for the hot-function profile and the
  // "summary.function_micros" histogram; slot-per-function, so the
  // worker pool writes without synchronization.
  std::vector<double> fn_seconds(order.size(), 0.0);
  std::vector<uint8_t> fn_cached(order.size(), 0);
  // Budget counters per degraded slot, turned into Incident records
  // after the pool joins (cause kNone = not degraded).
  std::vector<BudgetCounters> fn_budget(order.size());
  SummaryCache* cache = config.cache;
  Hash128 engine_fp;
  uint64_t cache_hits_before = 0;
  uint64_t cache_misses_before = 0;
  if (cache) {
    engine_fp = EngineFingerprint(engine.binary(), engine.config(),
                                  AliasModeKey(config));
    cache_hits_before = registry.counter("cache.hits").Value();
    cache_misses_before = registry.counter("cache.misses").Value();
  }

  // Step 2 (pointer-alias recognition, Algorithm 1) runs here rather
  // than in the linking phase: it is a per-function rewrite of the
  // summary alone, so it parallelizes with the analyses and — because
  // the alias mode is part of the engine fingerprint — its output is
  // just as content-addressable. Caching the post-alias summary keeps
  // the whole rewrite off the warm path. In on-demand mode the rewrite
  // is skipped entirely: the oracle created after linking computes
  // twins lazily for the functions the consumers actually query.
  bool eager_alias =
      config.apply_alias && config.alias_mode == AliasMode::kEager;
  auto produce = [&](const Function& fn, BudgetTracker& tracker) {
    if (FaultPlan::Global().ShouldFail(FaultSite::kSummary, fn.name)) {
      tracker.MarkInjected();
    }
    FunctionSummary summary = engine.Analyze(fn, &tracker);
    if (eager_alias && !summary.degraded) {
      summary.alias_pairs = AliasReplace(summary, &tracker).pairs_added;
      // The alias rewrite can be the step that exhausts the budget;
      // degrade the whole function then — a partially-aliased summary
      // would make findings depend on where the budget tripped.
      if (tracker.exhausted()) summary = MakeDegradedSummary(fn);
    }
    return summary;
  };
  auto analyze_one = [&](size_t i) {
    const Function* fn = program.FindFunction(order[i]);
    if (!fn) return;
    fns_done.Add();
    if (events.enabled()) {
      events.Emit(obs::Event("function_begin").Str("function", order[i]));
    }
    obs::Span span(tracer, "function", order[i]);
    obs::Stopwatch watch;
    BudgetTracker tracker(config.budget);
    bool from_cache = false;
    if (cache) {
      Hash128 key = FunctionKey(*fn, engine_fp);
      if (auto cached = cache->Lookup(key)) {
        base[i] = std::move(*cached);
        fn_cached[i] = 1;
        from_cache = true;
      } else {
        base[i] = produce(*fn, tracker);
        // Degraded summaries are budget artifacts, not function
        // content — never persist them, so a rerun with a larger
        // budget (or the fault removed) re-analyzes at full effort.
        if (!base[i].degraded) cache->Store(key, base[i]);
      }
    } else {
      base[i] = produce(*fn, tracker);
    }
    if (!from_cache && base[i].degraded) fn_budget[i] = tracker.counters();
    fn_seconds[i] = watch.Seconds();
    const ExplorationStats& es = base[i].engine_stats;
    m_state_forks.Add(es.state_forks);
    m_cow_copies.Add(es.cow_chunk_copies);
    m_overlay_spills.Add(es.overlay_spills);
    m_memo_hits.Add(es.memo_hits);
    m_memo_lookups.Add(es.memo_lookups);
    m_tainted_paths.Add(es.tainted_paths);
    if (events.enabled()) {
      events.Emit(obs::Event("function_end")
                      .Str("function", order[i])
                      .Num(
                          "micros",
                          static_cast<uint64_t>(fn_seconds[i] * 1e6))
                      .Bool("cached", from_cache)
                      .Bool("degraded", base[i].degraded)
                      .Num("forks", es.state_forks)
                      .Num("memo_hits", es.memo_hits)
                      .Num("memo_lookups", es.memo_lookups));
    }
  };

  // Clamp the pool to the number of work items: spawning thousands of
  // idle threads for a small binary wastes resources, and an oversized
  // request (`--threads 10000`) could otherwise die with
  // std::system_error at thread creation.
  int threads = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(std::max(1, config.num_threads)),
      std::max<size_t>(1, order.size())));
  if (events.enabled()) {
    events.Emit(obs::Event("phase_begin")
                    .Str("phase", "summary")
                    .Num("functions", static_cast<uint64_t>(order.size())));
  }
  {
    obs::Span summary_span(tracer, "phase", "summary");
    obs::Stopwatch phase1;
    if (threads == 1) {
      for (size_t i = 0; i < order.size(); ++i) analyze_one(i);
    } else {
      std::atomic<size_t> next{0};
      auto worker = [&] {
        for (;;) {
          size_t i = next.fetch_add(1);
          if (i >= order.size()) return;
          analyze_one(i);
        }
      };
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
      for (std::thread& t : pool) t.join();
    }
    analysis.stats.summary_seconds = phase1.Seconds();
  }
  for (size_t i = 0; i < order.size(); ++i) {
    if (fn_budget[i].exhausted_by == BudgetExhaustion::kNone) continue;
    Incident incident;
    incident.binary = engine.binary().soname;
    incident.phase = "summary";
    incident.detail = order[i];
    incident.status = OutOfRange(
        "analysis budget exhausted (" +
        std::string(BudgetExhaustionName(fn_budget[i].exhausted_by)) +
        "); degraded summary substituted");
    incident.budget = fn_budget[i];
    analysis.stats.incidents.push_back(std::move(incident));
  }
  {
    obs::Histogram& fn_micros = registry.histogram("summary.function_micros");
    for (double s : fn_seconds) {
      fn_micros.Observe(static_cast<uint64_t>(s * 1e6));
    }
  }
  if (config.hot_function_count > 0) {
    std::vector<size_t> by_cost(order.size());
    std::iota(by_cost.begin(), by_cost.end(), size_t{0});
    size_t keep = std::min(config.hot_function_count, by_cost.size());
    std::partial_sort(by_cost.begin(), by_cost.begin() + keep, by_cost.end(),
                      [&](size_t a, size_t b) {
                        return fn_seconds[a] > fn_seconds[b];
                      });
    analysis.stats.hot_functions.reserve(keep);
    for (size_t k = 0; k < keep; ++k) {
      size_t i = by_cost[k];
      analysis.stats.hot_functions.push_back(
          {order[i], fn_seconds[i], fn_cached[i] != 0});
    }
  }
  if (cache) {
    // Compatibility view: the cache mirrors its counters into the
    // global registry as it goes; read the pass's deltas back out
    // instead of snapshotting CacheStats (proven equal in obs_test).
    analysis.stats.cache_hits =
        registry.counter("cache.hits").Value() - cache_hits_before;
    analysis.stats.cache_misses =
        registry.counter("cache.misses").Value() - cache_misses_before;
    analysis.stats.cache_evictions = registry.counter("cache.evictions").Value();
    analysis.stats.cache_memory_bytes =
        static_cast<size_t>(registry.gauge("cache.memory_bytes").Value());
  }
  if (events.enabled()) {
    events.Emit(
        obs::Event("phase_end")
            .Str("phase", "summary")
            .Double("duration_ms", analysis.stats.summary_seconds * 1e3)
            .Num("functions", static_cast<uint64_t>(order.size()))
            .Num("cache_hits",
                 static_cast<uint64_t>(analysis.stats.cache_hits))
            .Num("cache_misses",
                 static_cast<uint64_t>(analysis.stats.cache_misses)));
    events.Emit(obs::Event("phase_begin").Str("phase", "link"));
  }

  // Phase 2: linking, sequential in bottom-up order (each caller needs
  // its callees' already-linked summaries).
  obs::Span link_span(tracer, "phase", "link");
  obs::Stopwatch link_watch;
  for (size_t order_index = 0; order_index < order.size(); ++order_index) {
    const std::string& name = order[order_index];
    const Function* fn = program.FindFunction(name);
    if (!fn) continue;

    FunctionSummary summary = std::move(base[order_index]);

    // Step 2 (alias recognition) already ran in phase 1; fold its
    // per-function count into the program stats.
    analysis.stats.alias_pairs_added += summary.alias_pairs;

    // Step 3: link against already-processed callees (Algorithm 2).
    std::vector<DefPair> imported_defs;
    std::vector<UseRecord> imported_uses;
    for (const CallEvent& call : summary.calls) {
      // Indirect calls may have several similarity-resolved targets.
      std::vector<std::string> targets;
      if (call.is_indirect) {
        const CallSite* cs = fn->CallSiteAt(call.callsite);
        if (cs) targets = cs->resolved_targets;
      } else if (!call.is_import && !call.callee.empty()) {
        targets.push_back(call.callee);
      }
      for (const std::string& target : targets) {
        auto callee_it = analysis.summaries.find(target);
        if (callee_it == analysis.summaries.end()) continue;  // SCC member
        const FunctionSummary& callee = callee_it->second;

        // -- ReplaceRetVariable: resolve ret_{cs} in the caller --------
        // A return value minted by a degraded callee (directly, or
        // transitively via its own callees) is an over-approximation:
        // taint the substituted pairs with the degraded flag and mark
        // the caller's returns contaminated, so the path finder can
        // suppress flows built on guessed data.
        bool callee_ret_degraded = callee.degraded || callee.ret_degraded;
        SymRef ret_sym = SymExpr::Ret(call.callsite);
        SymRef ret_value = RepresentativeReturn(callee);
        if (ret_value) {
          ret_value = ReplaceFormalArgs(ret_value, call.args);
          ret_value = RehashHeap(ret_value, call.callsite);
          for (DefPair& dp : summary.def_pairs) {
            bool touched = false;
            if (dp.d && dp.d->Contains(ret_sym)) {
              dp.d = SymExpr::Replace(dp.d, ret_sym, ret_value);
              touched = true;
            }
            if (dp.u && dp.u->Contains(ret_sym)) {
              dp.u = SymExpr::Replace(dp.u, ret_sym, ret_value);
              touched = true;
            }
            if (touched) {
              ++analysis.stats.rets_replaced;
              if (callee_ret_degraded) dp.degraded = true;
            }
          }
          for (SymRef& rv : summary.return_values) {
            if (rv && rv->Contains(ret_sym)) {
              rv = SymExpr::Replace(rv, ret_sym, ret_value);
              ++analysis.stats.rets_replaced;
              if (callee_ret_degraded) summary.ret_degraded = true;
            }
          }
        }

        // -- UpdateDefPairs: import callee's escaping definitions ------
        size_t imported = 0;
        for (const DefPair* dp : callee.EscapingDefs()) {
          if (imported >= config.max_imported_per_callsite) break;
          DefPair linked;
          linked.d = ReplaceFormalArgs(dp->d, call.args);
          linked.u = ReplaceFormalArgs(dp->u, call.args);
          linked.d = RehashHeap(linked.d, call.callsite);
          linked.u = RehashHeap(linked.u, call.callsite);
          linked.site = dp->site;        // original defining site
          linked.path_id = call.path_id; // caller's path context
          linked.degraded = dp->degraded || callee.degraded;
          imported_defs.push_back(std::move(linked));
          ++imported;
          ++analysis.stats.defs_propagated;
        }

        // -- ForwardUndefinedUse: lift unresolved uses into the caller -
        size_t forwarded = 0;
        for (const UseRecord& use : callee.undefined_uses) {
          if (forwarded >= config.max_imported_per_callsite) break;
          SymRef root = RootPointerOf(use.u);
          if (!root || root->kind() != SymKind::kArg) continue;
          UseRecord lifted;
          lifted.u = ReplaceFormalArgs(use.u, call.args);
          lifted.site = use.site;
          lifted.path_id = call.path_id;
          imported_uses.push_back(std::move(lifted));
          ++forwarded;
          ++analysis.stats.uses_forwarded;
        }
      }
    }
    summary.def_pairs.insert(summary.def_pairs.end(),
                             std::make_move_iterator(imported_defs.begin()),
                             std::make_move_iterator(imported_defs.end()));
    summary.undefined_uses.insert(
        summary.undefined_uses.end(),
        std::make_move_iterator(imported_uses.begin()),
        std::make_move_iterator(imported_uses.end()));

    ++analysis.stats.functions_processed;
    if (summary.degraded) ++analysis.stats.degraded_functions;
    if (summary.truncated) ++analysis.stats.truncated_functions;
    analysis.summaries.emplace(name, std::move(summary));
  }
  link_span.Finish();
  if (events.enabled()) {
    events.Emit(
        obs::Event("phase_end")
            .Str("phase", "link")
            .Double("duration_ms", link_watch.Seconds() * 1e3)
            .Num("defs_propagated",
                 static_cast<uint64_t>(analysis.stats.defs_propagated))
            .Num("uses_forwarded",
                 static_cast<uint64_t>(analysis.stats.uses_forwarded)));
  }

  if (config.apply_alias && config.alias_mode == AliasMode::kOnDemandSSE) {
    analysis.alias_oracle =
        std::make_shared<OnDemandAliasOracle>(config.budget);
  }

  registry.counter("summary.functions").Add(analysis.stats.functions_processed);
  registry.counter("summary.degraded").Add(analysis.stats.degraded_functions);
  registry.counter("link.defs_propagated").Add(analysis.stats.defs_propagated);
  registry.counter("link.uses_forwarded").Add(analysis.stats.uses_forwarded);
  registry.counter("link.rets_replaced").Add(analysis.stats.rets_replaced);
  registry.counter("alias.pairs_added").Add(analysis.stats.alias_pairs_added);
  // Expression-interner counters cover this pass's factory traffic
  // (worker pool included) once published.
  ExprInterner::Global().PublishMetrics();
  DTAINT_LOG(obs::LogLevel::kDebug, "interproc",
             "pass done: %zu functions in %.3fs, %zu defs propagated, "
             "%zu uses forwarded, %zu rets replaced, cache %zu/%zu hit/miss",
             analysis.stats.functions_processed,
             analysis.stats.summary_seconds, analysis.stats.defs_propagated,
             analysis.stats.uses_forwarded, analysis.stats.rets_replaced,
             analysis.stats.cache_hits, analysis.stats.cache_misses);
  return analysis;
}

std::vector<HotFunction> MergeHotFunctions(std::vector<HotFunction> a,
                                           const std::vector<HotFunction>& b,
                                           size_t limit) {
  for (const HotFunction& hot : b) {
    auto it = std::find_if(a.begin(), a.end(), [&](const HotFunction& h) {
      return h.name == hot.name;
    });
    if (it == a.end()) {
      a.push_back(hot);
    } else if (hot.seconds > it->seconds) {
      *it = hot;
    }
  }
  std::sort(a.begin(), a.end(), [](const HotFunction& x, const HotFunction& y) {
    if (x.seconds != y.seconds) return x.seconds > y.seconds;
    return x.name < y.name;
  });
  if (a.size() > limit) a.resize(limit);
  return a;
}

}  // namespace dtaint
