#include "src/core/structsim.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "src/core/alias_ondemand.h"
#include "src/core/pathfinder.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"

namespace dtaint {

namespace {

/// Can two field types denote the same field? Unknown is a wildcard.
bool TypesUnify(ValueType a, ValueType b) {
  if (a == ValueType::kUnknown || b == ValueType::kUnknown) return true;
  if (a == b) return true;
  // ptr and char* unify (char* is a refinement).
  return IsPointerType(a) && IsPointerType(b);
}

/// Normalized base-path key: the root pointer becomes "R".
std::string NormalizedBaseKey(const SymRef& base, const SymRef& root) {
  std::string base_str = base->ToString();
  std::string root_str = root->ToString();
  std::string out;
  size_t pos = 0;
  while (true) {
    size_t hit = base_str.find(root_str, pos);
    if (hit == std::string::npos) {
      out += base_str.substr(pos);
      break;
    }
    out += base_str.substr(pos, hit - pos);
    out += "R";
    pos = hit + root_str.size();
  }
  return out;
}

/// Collects (base, offset) pairs of every deref inside `expr`.
void CollectAccesses(const SymRef& expr,
                     std::vector<std::pair<SymRef, int64_t>>* out) {
  std::vector<SymRef> derefs;
  SymExpr::CollectDerefs(expr, &derefs);
  for (const SymRef& d : derefs) {
    auto split = SymExpr::SplitBaseOffset(d->lhs());
    if (!split.base) continue;  // constant address: not a structure
    out->push_back({split.base, split.offset});
  }
}

bool IsLayoutRoot(const SymRef& root) {
  switch (root->kind()) {
    case SymKind::kArg:
    case SymKind::kHeap:
    case SymKind::kSp0:
    case SymKind::kRet:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::vector<StructLayout> ExtractLayouts(const FunctionSummary& summary) {
  // Gather every base+offset access in the function. Summaries repeat
  // the same (canonical, so pointer-identical) expressions across many
  // def pairs and calls; a node walked once contributes the same
  // accesses to the same std::set groups every time, so the pointer
  // dedup is output-invariant and skips the repeated deref walks.
  std::vector<std::pair<SymRef, int64_t>> accesses;
  std::unordered_set<const SymExpr*> walked;
  auto collect_once = [&](const SymRef& e) {
    if (!e) return;
    if (!walked.insert(e.get()).second) return;
    CollectAccesses(e, &accesses);
  };
  for (const DefPair& dp : summary.def_pairs) {
    collect_once(dp.d);
    collect_once(dp.u);
  }
  for (const UseRecord& use : summary.undefined_uses) {
    collect_once(use.u);
  }
  for (const CallEvent& call : summary.calls) {
    for (const SymRef& arg : call.args) {
      collect_once(arg);
    }
    collect_once(call.indirect_target);
  }

  // Group by root pointer.
  struct Builder {
    SymRef root;
    std::map<std::string, std::set<StructField>> groups;
  };
  std::map<uint64_t, Builder> builders;
  for (const auto& [base, offset] : accesses) {
    SymRef root = RootPointerOf(base);
    if (!root || !IsLayoutRoot(root)) continue;
    Builder& b = builders[root->hash()];
    if (!b.root) b.root = root;
    std::string key = NormalizedBaseKey(base, root);
    // Field type evidence: the type observed for deref(base+offset).
    SymRef field_expr = SymExpr::Deref(SymAdd(base, offset));
    ValueType type = summary.types.TypeOf(field_expr);
    b.groups[key].insert({offset, type});
  }

  std::vector<StructLayout> layouts;
  for (auto& [_, b] : builders) {
    StructLayout layout;
    layout.root = b.root;
    for (auto& [key, fields] : b.groups) {
      layout.groups[key] =
          std::vector<StructField>(fields.begin(), fields.end());
    }
    if (!layout.empty()) layouts.push_back(std::move(layout));
  }
  return layouts;
}

bool LayoutsCompatible(const StructLayout& a, const StructLayout& b) {
  // Rule 1: base-set inclusion (either direction).
  auto keys_subset = [](const StructLayout& x, const StructLayout& y) {
    for (const auto& [key, _] : x.groups) {
      if (!y.groups.count(key)) return false;
    }
    return true;
  };
  if (!keys_subset(a, b) && !keys_subset(b, a)) return false;

  // Rule 2: fields at the same offset under the same base must agree
  // on type.
  for (const auto& [key, a_fields] : a.groups) {
    auto it = b.groups.find(key);
    if (it == b.groups.end()) continue;
    for (const StructField& fa : a_fields) {
      for (const StructField& fb : it->second) {
        if (fa.offset == fb.offset && !TypesUnify(fa.type, fb.type)) {
          return false;
        }
      }
    }
  }
  return true;
}

double LayoutSimilarity(const StructLayout& a, const StructLayout& b) {
  if (!LayoutsCompatible(a, b)) return 0.0;
  double sigma = 0.0;
  for (const auto& [key, a_fields] : a.groups) {
    auto it = b.groups.find(key);
    if (it == b.groups.end()) continue;
    // Offsets rule the field identity; types already passed the gate.
    std::set<int64_t> a_offsets, b_offsets, union_offsets;
    for (const StructField& f : a_fields) a_offsets.insert(f.offset);
    for (const StructField& f : it->second) b_offsets.insert(f.offset);
    union_offsets = a_offsets;
    union_offsets.insert(b_offsets.begin(), b_offsets.end());
    size_t intersect = 0;
    for (int64_t off : a_offsets) intersect += b_offsets.count(off);
    if (!union_offsets.empty()) {
      sigma += static_cast<double>(intersect) /
               static_cast<double>(union_offsets.size());
    }
  }
  return sigma;
}

std::vector<std::string> AddressTakenFunctions(const Program& program) {
  std::vector<std::string> result;
  if (!program.binary) return result;
  const Binary& bin = *program.binary;
  std::set<std::string> seen;
  for (const Section& sec : bin.sections) {
    if (sec.kind != SectionKind::kData && sec.kind != SectionKind::kRodata) {
      continue;
    }
    for (size_t off = 0; off + 4 <= sec.bytes.size(); off += 4) {
      uint32_t word = ReadWord(bin.arch, sec.bytes.data() + off);
      auto it = program.fn_by_addr.find(word);
      if (it != program.fn_by_addr.end() && seen.insert(it->second).second) {
        result.push_back(it->second);
      }
    }
  }
  return result;
}

std::vector<IndirectResolution> ResolveIndirectCalls(
    Program& program, const std::map<std::string, FunctionSummary>& summaries,
    OnDemandAliasOracle* sse_oracle) {
  std::vector<IndirectResolution> resolutions;

  // Candidate set: address-taken functions, with their parameter-rooted
  // layouts precomputed.
  std::vector<std::string> candidates = AddressTakenFunctions(program);
  std::map<std::string, std::vector<StructLayout>> candidate_layouts;
  for (const std::string& name : candidates) {
    auto it = summaries.find(name);
    if (it == summaries.end()) continue;
    std::vector<StructLayout> arg_layouts;
    for (StructLayout& layout : ExtractLayouts(it->second)) {
      if (layout.root->kind() == SymKind::kArg) {
        arg_layouts.push_back(std::move(layout));
      }
    }
    candidate_layouts[name] = std::move(arg_layouts);
  }

  for (auto& [caller_name, fn] : program.functions) {
    auto sum_it = summaries.find(caller_name);
    if (sum_it == summaries.end()) continue;
    const FunctionSummary& summary = sum_it->second;
    std::vector<StructLayout> caller_layouts = ExtractLayouts(summary);

    for (CallSite& cs : fn.callsites) {
      if (!cs.is_indirect || !cs.resolved_targets.empty()) continue;
      // Find the engine's view of this callsite.
      const CallEvent* event = nullptr;
      for (const CallEvent& call : summary.calls) {
        if (call.is_indirect && call.callsite == cs.call_addr) {
          event = &call;
          break;
        }
      }
      if (!event || !event->indirect_target) continue;

      IndirectResolution resolution;
      resolution.caller = caller_name;
      resolution.callsite = cs.call_addr;

      // Case 1: the engine concretized the target (dispatch-table load
      // from .rodata/.data).
      if (event->indirect_target->kind() == SymKind::kConst) {
        auto it =
            program.fn_by_addr.find(event->indirect_target->const_value());
        if (it != program.fn_by_addr.end()) {
          resolution.targets.push_back(it->second);
          resolution.similarity = kExactTarget;
          cs.resolved_targets = resolution.targets;
          resolutions.push_back(std::move(resolution));
        }
        continue;
      }

      // Case 1.5 (on-demand SSE mode): the symbolic target may read a
      // cell some *linked* definition pair stores a concrete function
      // address into — a registration store made in another function,
      // imported here by Algorithm 2. Match the target SSE against
      // every linked pair and its on-demand alias twins; a covering
      // pair whose value is a known function address resolves the call
      // exactly. Layout similarity never sees these: the registration
      // and the call use different names for the same storage.
      if (sse_oracle) {
        std::set<std::string> sse_targets;
        auto match_pair = [&](const DefPair& dp) {
          if (!dp.u || dp.u->kind() != SymKind::kConst) return;
          if (!dp.d || !DefCoversUse(dp.d, event->indirect_target)) return;
          auto fn_it = program.fn_by_addr.find(dp.u->const_value());
          if (fn_it != program.fn_by_addr.end()) {
            sse_targets.insert(fn_it->second);
          }
        };
        for (const DefPair& dp : summary.def_pairs) match_pair(dp);
        for (const DefPair& dp : sse_oracle->TwinsFor(summary)) {
          match_pair(dp);
        }
        if (!sse_targets.empty()) {
          resolution.targets.assign(sse_targets.begin(), sse_targets.end());
          resolution.similarity = kSseTarget;
          cs.resolved_targets = resolution.targets;
          obs::MetricsRegistry::Global()
              .counter("alias.ondemand.resolved_icalls")
              .Add(1);
          resolutions.push_back(std::move(resolution));
          continue;
        }
      }

      // Case 2: similarity matching. The structure at the callsite is
      // the one rooted where the target pointer (or the first call
      // argument) lives.
      std::vector<const StructLayout*> site_layouts;
      auto add_site_layout = [&](const SymRef& expr) {
        if (!expr) return;
        SymRef root = RootPointerOf(expr);
        if (!root) return;
        for (const StructLayout& layout : caller_layouts) {
          if (SymExpr::Equal(layout.root, root)) {
            site_layouts.push_back(&layout);
          }
        }
      };
      add_site_layout(event->indirect_target);
      if (!event->args.empty()) add_site_layout(event->args[0]);
      if (site_layouts.empty()) continue;

      double best = 0.0;
      std::vector<std::string> best_targets;
      for (const auto& [cand_name, layouts] : candidate_layouts) {
        if (cand_name == caller_name) continue;
        double cand_best = 0.0;
        for (const StructLayout* site : site_layouts) {
          for (const StructLayout& cand : layouts) {
            cand_best = std::max(cand_best, LayoutSimilarity(*site, cand));
          }
        }
        if (cand_best <= 0.0) continue;
        if (cand_best > best + 1e-9) {
          best = cand_best;
          best_targets = {cand_name};
        } else if (cand_best > best - 1e-9) {
          best_targets.push_back(cand_name);
        }
      }
      if (!best_targets.empty()) {
        resolution.targets = best_targets;
        resolution.similarity = best;
        cs.resolved_targets = std::move(best_targets);
        resolutions.push_back(std::move(resolution));
      }
    }
  }
  for (const IndirectResolution& r : resolutions) {
    DTAINT_LOG(obs::LogLevel::kDebug, "structsim",
               "%s @%#x -> %zu target(s), similarity %.3f", r.caller.c_str(),
               r.callsite, r.targets.size(), r.similarity);
  }
  return resolutions;
}

}  // namespace dtaint
