#include "src/cfg/function.h"

// Function is a plain aggregate; its behavior lives in cfg_builder.cpp.
// This TU anchors the header for build hygiene.
namespace dtaint {}
