// Function model: lifted basic blocks, CFG edges, and callsites.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/ir/block.h"

namespace dtaint {

/// A call instruction inside a function.
struct CallSite {
  uint32_t block_addr = 0;   // block that ends with the call
  uint32_t call_addr = 0;    // address of the BL/BLR instruction
  uint32_t return_addr = 0;  // fallthrough address
  bool is_indirect = false;
  // Direct calls: resolved target.
  uint32_t target_addr = 0;        // 0 for indirect
  std::string target_name;         // function or import name; "" if unknown
  bool target_is_import = false;
  // Indirect calls: targets resolved later by structure similarity.
  std::vector<std::string> resolved_targets;
};

/// One lifted, CFG-structured function.
struct Function {
  std::string name;
  uint32_t addr = 0;
  uint32_t size = 0;

  /// Basic blocks keyed by start address.
  std::map<uint32_t, IRBlock> blocks;
  /// CFG edges: block start -> successor block starts.
  std::map<uint32_t, std::vector<uint32_t>> succs;
  std::map<uint32_t, std::vector<uint32_t>> preds;
  /// Call sites in address order.
  std::vector<CallSite> callsites;

  size_t BlockCount() const { return blocks.size(); }
  const IRBlock* BlockAt(uint32_t addr) const {
    auto it = blocks.find(addr);
    return it == blocks.end() ? nullptr : &it->second;
  }
  const CallSite* CallSiteAt(uint32_t call_addr) const {
    for (const CallSite& cs : callsites) {
      if (cs.call_addr == call_addr) return &cs;
    }
    return nullptr;
  }
};

}  // namespace dtaint
