// CFGBuilder: function discovery + per-function CFG recovery.
//
// Mirrors the paper's §III-B front end: "DTaint first creates a control
// flow graph (CFG) for the firmware ... for each function separately."
// Two passes per function: (1) linear sweep collecting block leaders
// (branch targets, post-branch/post-call fallthroughs), (2) lift each
// leader-to-leader run into an IRBlock and wire CFG edges. Calls end
// blocks and fall through to their return address; the callee target is
// recorded as a CallSite (resolved to a symbol or import when direct).
#pragma once

#include <cstdint>

#include "src/binary/binary.h"
#include "src/cfg/function.h"
#include "src/lifter/lifter.h"
#include "src/resilience/fault.h"
#include "src/util/status.h"

namespace dtaint {

/// A whole lifted program: every function in the binary.
struct Program {
  const Binary* binary = nullptr;
  std::map<std::string, Function> functions;  // by name
  std::map<uint32_t, std::string> fn_by_addr;
  /// Functions whose CFG recovery failed (bad encoding, or an injected
  /// `lift` fault). They are simply absent from `functions` — one
  /// unliftable function must not sink the binary — and the detector
  /// reports each as an incident and marks the analysis incomplete.
  std::vector<std::pair<std::string, Status>> lift_failures;

  const Function* FunctionAt(uint32_t addr) const {
    auto it = fn_by_addr.find(addr);
    return it == fn_by_addr.end() ? nullptr : &functions.at(it->second);
  }
  const Function* FindFunction(const std::string& name) const {
    auto it = functions.find(name);
    return it == functions.end() ? nullptr : &it->second;
  }
  size_t TotalBlocks() const {
    size_t total = 0;
    for (const auto& [_, fn] : functions) total += fn.blocks.size();
    return total;
  }
  /// Direct call-graph edge count (indirect edges added after
  /// structure-similarity resolution are included once resolved).
  size_t CallEdgeCount() const;
};

class CfgBuilder {
 public:
  explicit CfgBuilder(const Binary& binary) : binary_(binary) {}

  /// Builds the CFG of a single function symbol.
  Result<Function> BuildFunction(const Symbol& symbol) const;

  /// Builds every function symbol in the binary. Per-function lift
  /// failures are isolated: the function is skipped and recorded in
  /// Program::lift_failures rather than failing the whole program.
  Result<Program> BuildProgram() const;

 private:
  const Binary& binary_;
};

}  // namespace dtaint
