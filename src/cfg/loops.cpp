#include "src/cfg/loops.h"

#include <algorithm>

namespace dtaint {

LoopInfo FindLoops(const Function& fn) {
  LoopInfo info;
  if (fn.blocks.empty()) return info;

  // Iterative DFS keeping an on-stack marker to find retreating edges.
  enum class Color { kWhite, kGray, kBlack };
  std::map<uint32_t, Color> color;
  for (const auto& [addr, _] : fn.blocks) color[addr] = Color::kWhite;

  struct Frame {
    uint32_t node;
    size_t next_succ = 0;
  };
  std::vector<Frame> stack;
  auto push = [&](uint32_t node) {
    color[node] = Color::kGray;
    stack.push_back({node, 0});
  };
  push(fn.addr);
  static const std::vector<uint32_t> kNoSuccs;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    auto it = fn.succs.find(frame.node);
    const std::vector<uint32_t>& succs =
        it == fn.succs.end() ? kNoSuccs : it->second;
    if (frame.next_succ < succs.size()) {
      uint32_t succ = succs[frame.next_succ++];
      auto cit = color.find(succ);
      if (cit == color.end()) continue;  // edge to unknown block
      if (cit->second == Color::kWhite) {
        push(succ);
      } else if (cit->second == Color::kGray) {
        info.back_edges.emplace_back(frame.node, succ);
      }
    } else {
      color[frame.node] = Color::kBlack;
      stack.pop_back();
    }
  }

  // Natural loop of back edge (tail -> header): header plus all blocks
  // that reach tail without going through header (reverse flood fill).
  for (const auto& [tail, header] : info.back_edges) {
    std::set<uint32_t>& members = info.loops[header];
    members.insert(header);
    std::vector<uint32_t> work;
    if (!members.count(tail)) {
      members.insert(tail);
      work.push_back(tail);
    }
    while (!work.empty()) {
      uint32_t node = work.back();
      work.pop_back();
      auto pit = fn.preds.find(node);
      if (pit == fn.preds.end()) continue;
      for (uint32_t pred : pit->second) {
        if (!fn.blocks.count(pred)) continue;
        if (members.insert(pred).second) work.push_back(pred);
      }
    }
  }
  return info;
}

}  // namespace dtaint
