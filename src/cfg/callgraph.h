// Call graph over a Program, with Tarjan SCC condensation and the
// bottom-up (post-order, callees before callers) traversal order that
// DTaint's interprocedural phase requires (paper §III-E: "traverse the
// call graph in post-order ... each function is analyzed only once").
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/cfg/cfg_builder.h"

namespace dtaint {

class CallGraph {
 public:
  /// Builds from a program's direct call edges plus any indirect-call
  /// targets already resolved into CallSite::resolved_targets.
  static CallGraph Build(const Program& program);

  const std::set<std::string>& Callees(const std::string& fn) const;
  const std::set<std::string>& Callers(const std::string& fn) const;

  /// Total directed edges (parallel callsites to the same callee count
  /// once here; use Program::CallEdgeCount for callsite-level counts).
  size_t EdgeCount() const;
  size_t NodeCount() const { return callees_.size(); }

  /// Functions in bottom-up order: every callee appears before each of
  /// its callers. Recursion is handled by SCC condensation — functions
  /// in the same SCC appear consecutively (in arbitrary inner order)
  /// and the whole SCC is placed after everything it calls.
  std::vector<std::string> BottomUpOrder() const;

  /// SCC id per function (functions in a cycle share an id).
  const std::map<std::string, int>& SccIds() const { return scc_id_; }

 private:
  std::map<std::string, std::set<std::string>> callees_;
  std::map<std::string, std::set<std::string>> callers_;
  std::map<std::string, int> scc_id_;
  std::vector<std::vector<std::string>> sccs_;  // id -> members

  void ComputeSccs();
};

}  // namespace dtaint
