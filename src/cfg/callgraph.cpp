#include "src/cfg/callgraph.h"

#include <algorithm>
#include <functional>

namespace dtaint {

CallGraph CallGraph::Build(const Program& program) {
  CallGraph graph;
  for (const auto& [name, fn] : program.functions) {
    graph.callees_[name];  // ensure node exists
    for (const CallSite& cs : fn.callsites) {
      std::vector<std::string> targets;
      if (cs.is_indirect) {
        targets = cs.resolved_targets;
      } else if (!cs.target_is_import && !cs.target_name.empty()) {
        targets.push_back(cs.target_name);
      }
      for (const std::string& callee : targets) {
        if (!program.functions.count(callee)) continue;
        graph.callees_[name].insert(callee);
        graph.callers_[callee].insert(name);
      }
    }
  }
  // Make sure every function has a callers entry too.
  for (const auto& [name, _] : graph.callees_) graph.callers_[name];
  graph.ComputeSccs();
  return graph;
}

const std::set<std::string>& CallGraph::Callees(const std::string& fn) const {
  static const std::set<std::string> kEmpty;
  auto it = callees_.find(fn);
  return it == callees_.end() ? kEmpty : it->second;
}

const std::set<std::string>& CallGraph::Callers(const std::string& fn) const {
  static const std::set<std::string> kEmpty;
  auto it = callers_.find(fn);
  return it == callers_.end() ? kEmpty : it->second;
}

size_t CallGraph::EdgeCount() const {
  size_t total = 0;
  for (const auto& [_, callees] : callees_) total += callees.size();
  return total;
}

void CallGraph::ComputeSccs() {
  // Iterative Tarjan.
  struct NodeState {
    int index = -1;
    int lowlink = -1;
    bool on_stack = false;
  };
  std::map<std::string, NodeState> state;
  std::vector<std::string> tarjan_stack;
  int next_index = 0;

  struct Frame {
    std::string node;
    std::set<std::string>::const_iterator it;
    std::set<std::string>::const_iterator end;
  };

  for (const auto& [root, _] : callees_) {
    if (state[root].index != -1) continue;
    std::vector<Frame> call_stack;
    auto enter = [&](const std::string& node) {
      NodeState& ns = state[node];
      ns.index = ns.lowlink = next_index++;
      ns.on_stack = true;
      tarjan_stack.push_back(node);
      const auto& succ = callees_.at(node);
      call_stack.push_back({node, succ.begin(), succ.end()});
    };
    enter(root);
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      if (frame.it != frame.end) {
        const std::string& succ = *frame.it++;
        NodeState& ss = state[succ];
        if (ss.index == -1) {
          enter(succ);
        } else if (ss.on_stack) {
          NodeState& ns = state[frame.node];
          ns.lowlink = std::min(ns.lowlink, ss.index);
        }
      } else {
        std::string node = frame.node;
        call_stack.pop_back();
        NodeState& ns = state[node];
        if (!call_stack.empty()) {
          NodeState& parent = state[call_stack.back().node];
          parent.lowlink = std::min(parent.lowlink, ns.lowlink);
        }
        if (ns.lowlink == ns.index) {
          std::vector<std::string> scc;
          for (;;) {
            std::string member = tarjan_stack.back();
            tarjan_stack.pop_back();
            state[member].on_stack = false;
            scc.push_back(member);
            if (member == node) break;
          }
          int id = static_cast<int>(sccs_.size());
          for (const std::string& member : scc) scc_id_[member] = id;
          sccs_.push_back(std::move(scc));
        }
      }
    }
  }
}

std::vector<std::string> CallGraph::BottomUpOrder() const {
  // Tarjan emits SCCs in reverse topological order of the condensation
  // — i.e. callees' SCCs before callers' SCCs — which is exactly the
  // bottom-up order DTaint needs.
  std::vector<std::string> order;
  order.reserve(scc_id_.size());
  for (const auto& scc : sccs_) {
    for (const std::string& member : scc) order.push_back(member);
  }
  return order;
}

}  // namespace dtaint
