// Natural-loop detection over a function CFG.
//
// Used for two things from the paper:
//  * the symbolic-analysis heuristic "blocks in the same loop are only
//    analyzed once" (§III-B) — implemented as not following back edges;
//  * "loop copy" sink detection (§IV Table I lists `loop` as a sink):
//    a store inside a loop body whose address varies per iteration.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "src/cfg/function.h"

namespace dtaint {

struct LoopInfo {
  /// Back edges (tail -> header) found by DFS.
  std::vector<std::pair<uint32_t, uint32_t>> back_edges;
  /// Natural loop membership: header -> set of member block addrs.
  std::map<uint32_t, std::set<uint32_t>> loops;

  bool IsBackEdge(uint32_t from, uint32_t to) const {
    for (const auto& [f, t] : back_edges) {
      if (f == from && t == to) return true;
    }
    return false;
  }
  /// True if the block is inside any natural loop.
  bool InAnyLoop(uint32_t block) const {
    for (const auto& [_, members] : loops) {
      if (members.count(block)) return true;
    }
    return false;
  }
};

/// Computes back edges and natural loops of `fn` (entry = fn.addr).
/// Back edges are DFS retreating edges to an ancestor on the DFS stack;
/// each loop body is the set of blocks that reach the tail without
/// passing through the header.
LoopInfo FindLoops(const Function& fn);

}  // namespace dtaint
