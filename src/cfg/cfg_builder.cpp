#include "src/cfg/cfg_builder.h"

#include <algorithm>
#include <set>

#include "src/isa/decode.h"

namespace dtaint {

size_t Program::CallEdgeCount() const {
  size_t total = 0;
  for (const auto& [_, fn] : functions) {
    for (const CallSite& cs : fn.callsites) {
      if (cs.is_indirect) {
        total += cs.resolved_targets.size();
      } else {
        total += 1;
      }
    }
  }
  return total;
}

Result<Function> CfgBuilder::BuildFunction(const Symbol& symbol) const {
  Function fn;
  fn.name = symbol.name;
  fn.addr = symbol.addr;
  fn.size = symbol.size;
  const uint32_t end = symbol.addr + symbol.size;

  // Pass 1: linear sweep for block leaders.
  std::set<uint32_t> leaders{symbol.addr};
  for (uint32_t pc = symbol.addr; pc < end; pc += kInsnSize) {
    auto word = binary_.ReadWordAt(pc);
    if (!word.ok()) return CorruptData("function runs off section: " + fn.name);
    auto insn = Decode(*word);
    if (!insn.ok()) {
      return CorruptData("undecodable instruction in " + fn.name + " at " +
                         std::to_string(pc));
    }
    uint32_t next_pc = pc + kInsnSize;
    switch (insn->op) {
      case Op::kB:
      case Op::kBeq:
      case Op::kBne:
      case Op::kBlt:
      case Op::kBge:
      case Op::kBle:
      case Op::kBgt: {
        uint32_t target = next_pc + static_cast<uint32_t>(insn->imm * 4);
        if (target < symbol.addr || target >= end) {
          return CorruptData("branch escapes function " + fn.name);
        }
        leaders.insert(target);
        if (next_pc < end) leaders.insert(next_pc);
        break;
      }
      case Op::kBl:
      case Op::kBlr:
        if (next_pc < end) leaders.insert(next_pc);
        break;
      case Op::kRet:
        if (next_pc < end) leaders.insert(next_pc);
        break;
      default:
        break;
    }
  }

  // Pass 2: lift leader-to-leader runs.
  Lifter lifter(binary_);
  std::vector<uint32_t> ordered(leaders.begin(), leaders.end());
  for (size_t i = 0; i < ordered.size(); ++i) {
    uint32_t start = ordered[i];
    uint32_t stop = (i + 1 < ordered.size()) ? ordered[i + 1] : end;
    auto block = lifter.LiftBlock(start, stop);
    if (!block.ok()) return block.status();
    fn.blocks.emplace(start, std::move(*block));
  }

  // Pass 3: wire edges and record callsites.
  auto add_edge = [&fn](uint32_t from, uint32_t to) {
    fn.succs[from].push_back(to);
    fn.preds[to].push_back(from);
  };
  for (auto& [start, block] : fn.blocks) {
    uint32_t call_addr = block.addr + block.size - kInsnSize;
    for (const Stmt& s : block.stmts) {
      if (s.kind == StmtKind::kExit) add_edge(start, s.target);
    }
    switch (block.jumpkind) {
      case JumpKind::kBoring:
        if (block.next && block.next->kind() == ExprKind::kConst) {
          uint32_t target = block.next->const_value();
          if (target >= symbol.addr && target < end) add_edge(start, target);
        }
        break;
      case JumpKind::kCall: {
        CallSite cs;
        cs.block_addr = start;
        cs.call_addr = call_addr;
        cs.return_addr = block.return_addr;
        cs.target_addr = block.next->const_value();
        if (const Import* imp = binary_.ImportAt(cs.target_addr)) {
          cs.target_name = imp->name;
          cs.target_is_import = true;
        } else if (const Symbol* callee = binary_.SymbolAt(cs.target_addr)) {
          cs.target_name = callee->name;
        }
        fn.callsites.push_back(std::move(cs));
        if (block.return_addr >= symbol.addr && block.return_addr < end) {
          add_edge(start, block.return_addr);
        }
        break;
      }
      case JumpKind::kIndirectCall: {
        CallSite cs;
        cs.block_addr = start;
        cs.call_addr = call_addr;
        cs.return_addr = block.return_addr;
        cs.is_indirect = true;
        fn.callsites.push_back(std::move(cs));
        if (block.return_addr >= symbol.addr && block.return_addr < end) {
          add_edge(start, block.return_addr);
        }
        break;
      }
      case JumpKind::kRet:
        break;
    }
  }

  // Deduplicate edges (a conditional branch to the fallthrough would
  // otherwise double-count).
  for (auto* edges : {&fn.succs, &fn.preds}) {
    for (auto& [_, v] : *edges) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    }
  }
  return fn;
}

Result<Program> CfgBuilder::BuildProgram() const {
  Program prog;
  prog.binary = &binary_;
  for (const Symbol& sym : binary_.symbols) {
    if (!sym.is_function || sym.size == 0) continue;
    if (FaultPlan::Global().ShouldFail(FaultSite::kLift, sym.name)) {
      prog.lift_failures.emplace_back(
          sym.name, Internal("injected lift fault: " + sym.name));
      continue;
    }
    auto fn = BuildFunction(sym);
    if (!fn.ok()) {
      prog.lift_failures.emplace_back(sym.name, fn.status());
      continue;
    }
    prog.fn_by_addr[sym.addr] = sym.name;
    prog.functions.emplace(sym.name, std::move(*fn));
  }
  return prog;
}

}  // namespace dtaint
