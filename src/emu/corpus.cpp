#include "src/emu/corpus.h"

namespace dtaint {

namespace {

const char* kVendors[] = {"D-Link",  "Netgear",  "TP-Link", "Linksys",
                          "Tenda",   "Hikvision", "Uniview", "Dahua",
                          "Axis",    "Foscam",   "Zyxel",   "Belkin"};

}  // namespace

std::vector<int> ImagesPerYear(const CorpusConfig& config) {
  // Corpus grows roughly linearly with a late-years surge; weights are
  // normalized to total_images.
  int years = config.last_year - config.first_year + 1;
  std::vector<double> weights;
  for (int i = 0; i < years; ++i) {
    weights.push_back(0.4 + 0.18 * i);  // 2009 small, 2016 largest
  }
  double total_weight = 0;
  for (double w : weights) total_weight += w;
  std::vector<int> counts(years);
  int assigned = 0;
  for (int i = 0; i < years; ++i) {
    counts[i] = static_cast<int>(config.total_images * weights[i] /
                                 total_weight);
    assigned += counts[i];
  }
  counts[years - 1] += config.total_images - assigned;  // round residue
  return counts;
}

std::vector<CorpusEntry> GenerateCorpus(const CorpusConfig& config) {
  Rng rng(config.seed);
  std::vector<int> per_year = ImagesPerYear(config);
  std::vector<CorpusEntry> corpus;
  corpus.reserve(config.total_images);

  for (size_t yi = 0; yi < per_year.size(); ++yi) {
    uint16_t year = static_cast<uint16_t>(config.first_year + yi);
    // Year index 0..7; later devices are more vendor-locked.
    double t = static_cast<double>(yi) / (per_year.size() - 1);
    // Calibrated rates:
    //  * unpack failure >65% overall (§VI), drifting up over time
    //    (more vendor encryption);
    //  * of the unpackable ones, most still fail to boot under
    //    emulation (custom peripherals / NVRAM / network init), so
    //    that ~670 of 6,529 emulate successfully overall (Fig. 1).
    double p_unpack = 0.42 - 0.10 * t;        // 42% -> 32% unpackable
    double p_peripheral = 0.45 + 0.15 * t;    // grows with integration
    double p_nvram = 0.22 + 0.08 * t;
    double p_netinit = 0.85 - 0.08 * t;

    for (int i = 0; i < per_year[yi]; ++i) {
      CorpusEntry entry;
      entry.vendor = kVendors[rng.Below(std::size(kVendors))];
      entry.year = year;
      entry.unpackable = rng.Chance(p_unpack);
      entry.needs_custom_peripheral = rng.Chance(p_peripheral);
      entry.needs_nvram = rng.Chance(p_nvram);
      entry.network_init_ok = rng.Chance(p_netinit);
      corpus.push_back(std::move(entry));
    }
  }
  return corpus;
}

}  // namespace dtaint
