#include "src/emu/firmadyne_sim.h"

namespace dtaint {

std::string_view EmulationOutcomeName(EmulationOutcome outcome) {
  switch (outcome) {
    case EmulationOutcome::kSuccess:
      return "success";
    case EmulationOutcome::kUnpackFailed:
      return "unpack-failed";
    case EmulationOutcome::kPeripheralFault:
      return "peripheral-fault";
    case EmulationOutcome::kNvramFault:
      return "nvram-fault";
    case EmulationOutcome::kNetworkInitFailed:
      return "network-init-failed";
  }
  return "?";
}

EmulationOutcome AttemptEmulation(const CorpusEntry& entry) {
  if (!entry.unpackable) return EmulationOutcome::kUnpackFailed;
  if (entry.needs_custom_peripheral) {
    return EmulationOutcome::kPeripheralFault;
  }
  if (entry.needs_nvram) return EmulationOutcome::kNvramFault;
  if (!entry.network_init_ok) {
    return EmulationOutcome::kNetworkInitFailed;
  }
  return EmulationOutcome::kSuccess;
}

std::map<uint16_t, YearTally> RunEmulationStudy(
    const std::vector<CorpusEntry>& corpus) {
  std::map<uint16_t, YearTally> tallies;
  for (const CorpusEntry& entry : corpus) {
    YearTally& tally = tallies[entry.year];
    ++tally.total;
    EmulationOutcome outcome = AttemptEmulation(entry);
    ++tally.by_outcome[outcome];
    if (outcome == EmulationOutcome::kSuccess) ++tally.emulated;
  }
  return tallies;
}

}  // namespace dtaint
