// Firmware-corpus model for the paper's empirical study (§II-A,
// Figure 1): 6,529 images from 12 manufacturers, released 2009-2016.
//
// Each corpus entry carries the attributes that decide the fate of
// real images in that study: whether the filesystem can be unpacked
// (the paper reports >65% cannot), whether boot needs proprietary
// peripherals or NVRAM, and whether network init succeeds under
// emulation. Attribute probabilities are year-dependent (devices grew
// more integrated and more vendor-locked over time), calibrated so the
// aggregate matches the paper's headline numbers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/rng.h"

namespace dtaint {

struct CorpusEntry {
  std::string vendor;
  uint16_t year = 2012;
  bool unpackable = true;          // filesystem extraction succeeds
  bool needs_custom_peripheral = false;  // boot touches vendor hardware
  bool needs_nvram = false;        // boot reads board NVRAM
  bool network_init_ok = true;     // emulated NIC config succeeds
};

struct CorpusConfig {
  int total_images = 6529;
  uint16_t first_year = 2009;
  uint16_t last_year = 2016;
  uint64_t seed = 20180625;  // DSN'18 presentation day
};

/// Samples a synthetic corpus with year-dependent attribute rates.
std::vector<CorpusEntry> GenerateCorpus(const CorpusConfig& config = {});

/// Number of images per year (corpus grows over time, like Fig. 1).
std::vector<int> ImagesPerYear(const CorpusConfig& config);

}  // namespace dtaint
