// FIRMADYNE-like full-system emulation attempt (paper §II-A).
//
// The real study boots each image in FIRMADYNE's instrumented QEMU.
// Our stand-in replays the same decision pipeline against the corpus
// entry's attributes: unpack -> kernel boot (fails on proprietary
// peripherals / missing NVRAM) -> network init. Only an image passing
// all three counts as "successfully emulated", exactly the bar Fig. 1
// uses.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/emu/corpus.h"

namespace dtaint {

enum class EmulationOutcome : uint8_t {
  kSuccess = 0,
  kUnpackFailed,
  kPeripheralFault,   // boot touched custom/proprietary hardware
  kNvramFault,        // board NVRAM unavailable in the emulator
  kNetworkInitFailed, // functionality bar: services never came up
};

std::string_view EmulationOutcomeName(EmulationOutcome outcome);

/// Attempts to "emulate" one corpus entry.
EmulationOutcome AttemptEmulation(const CorpusEntry& entry);

/// Per-year tallies backing Figure 1.
struct YearTally {
  int total = 0;
  int emulated = 0;
  std::map<EmulationOutcome, int> by_outcome;
};

/// Runs the whole corpus; returns year -> tally.
std::map<uint16_t, YearTally> RunEmulationStudy(
    const std::vector<CorpusEntry>& corpus);

}  // namespace dtaint
