// Lifter: DT-RISC machine code -> VEX-like IR, one basic block at a
// time (the shape Angr/pyvex exposes and the paper's analysis consumes).
#pragma once

#include <cstdint>

#include "src/binary/binary.h"
#include "src/ir/block.h"
#include "src/util/status.h"

namespace dtaint {

class Lifter {
 public:
  explicit Lifter(const Binary& binary) : binary_(binary) {}

  /// Lifts the basic block starting at `addr`. Lifting stops at the
  /// first control-flow instruction (branch/call/ret), or just before
  /// `stop_before` (a known block leader inside a straight-line run),
  /// whichever comes first. `stop_before == 0` means "no limit".
  Result<IRBlock> LiftBlock(uint32_t addr, uint32_t stop_before = 0) const;

  const Binary& binary() const { return binary_; }

 private:
  const Binary& binary_;
};

}  // namespace dtaint
