#include "src/lifter/lifter.h"

#include "src/isa/decode.h"

namespace dtaint {

namespace {

/// Per-block lifting context: allocates temporaries and appends stmts.
class BlockCtx {
 public:
  explicit BlockCtx(IRBlock& block) : block_(block) {}

  ExprRef Tmp(ExprRef value) {
    int t = block_.next_tmp++;
    block_.stmts.push_back(Stmt::WrTmp(t, std::move(value)));
    return Expr::MakeRdTmp(t);
  }
  void Put(int reg, ExprRef value) {
    block_.stmts.push_back(Stmt::Put(reg, std::move(value)));
  }
  void Store(ExprRef addr, ExprRef data, uint8_t size) {
    block_.stmts.push_back(Stmt::Store(std::move(addr), std::move(data), size));
  }
  void Exit(ExprRef guard, uint32_t target) {
    block_.stmts.push_back(Stmt::Exit(std::move(guard), target));
  }
  ExprRef Get(int reg) { return Tmp(Expr::MakeGet(reg)); }
  ExprRef Const(uint32_t v) { return Expr::MakeConst(v); }
  ExprRef Bin(BinOp op, ExprRef a, ExprRef b) {
    return Tmp(Expr::MakeBinop(op, std::move(a), std::move(b)));
  }
  ExprRef Load(ExprRef addr, uint8_t size) {
    return Tmp(Expr::MakeLoad(std::move(addr), size));
  }

 private:
  IRBlock& block_;
};

BinOp AluOp(Op op) {
  switch (op) {
    case Op::kAddR:
    case Op::kAddI:
      return BinOp::kAdd;
    case Op::kSubR:
    case Op::kSubI:
      return BinOp::kSub;
    case Op::kMulR:
      return BinOp::kMul;
    case Op::kAndR:
    case Op::kAndI:
      return BinOp::kAnd;
    case Op::kOrrR:
    case Op::kOrrI:
      return BinOp::kOr;
    case Op::kXorR:
    case Op::kXorI:
      return BinOp::kXor;
    case Op::kLslI:
      return BinOp::kShl;
    case Op::kLsrI:
      return BinOp::kShr;
    default:
      return BinOp::kAdd;
  }
}

BinOp CondOp(Op op) {
  switch (op) {
    case Op::kBeq:
      return BinOp::kCmpEq;
    case Op::kBne:
      return BinOp::kCmpNe;
    case Op::kBlt:
      return BinOp::kCmpLt;
    case Op::kBge:
      return BinOp::kCmpGe;
    case Op::kBle:
      return BinOp::kCmpLe;
    case Op::kBgt:
      return BinOp::kCmpGt;
    default:
      return BinOp::kCmpEq;
  }
}

}  // namespace

Result<IRBlock> Lifter::LiftBlock(uint32_t addr, uint32_t stop_before) const {
  if (addr % kInsnSize != 0) {
    return InvalidArgument("unaligned block address");
  }
  IRBlock block;
  block.addr = addr;
  BlockCtx ctx(block);

  uint32_t pc = addr;
  for (;;) {
    if (stop_before != 0 && pc >= stop_before && pc != addr) break;
    auto word = binary_.ReadWordAt(pc);
    if (!word.ok()) {
      return CorruptData("block runs off mapped memory at " +
                         std::to_string(pc));
    }
    auto decoded = Decode(*word);
    if (!decoded.ok()) return decoded.status();
    const Insn& insn = *decoded;
    uint32_t next_pc = pc + kInsnSize;
    block.stmts.push_back(Stmt::IMark(pc));

    switch (insn.op) {
      case Op::kMovR:
        ctx.Put(insn.rd, ctx.Get(insn.rm));
        break;
      case Op::kMovI:
        ctx.Put(insn.rd, ctx.Const(static_cast<uint32_t>(insn.imm)));
        break;
      case Op::kMovHi: {
        ExprRef low = ctx.Bin(BinOp::kAnd, ctx.Get(insn.rd),
                              ctx.Const(0xFFFF));
        ExprRef combined = ctx.Bin(
            BinOp::kOr, low,
            ctx.Const(static_cast<uint32_t>(insn.imm) << 16));
        ctx.Put(insn.rd, combined);
        break;
      }
      case Op::kAddR:
      case Op::kSubR:
      case Op::kMulR:
      case Op::kAndR:
      case Op::kOrrR:
      case Op::kXorR:
        ctx.Put(insn.rd,
                ctx.Bin(AluOp(insn.op), ctx.Get(insn.rn), ctx.Get(insn.rm)));
        break;
      case Op::kAddI:
      case Op::kSubI:
      case Op::kAndI:
      case Op::kOrrI:
      case Op::kXorI:
      case Op::kLslI:
      case Op::kLsrI:
        ctx.Put(insn.rd,
                ctx.Bin(AluOp(insn.op), ctx.Get(insn.rn),
                        ctx.Const(static_cast<uint32_t>(insn.imm))));
        break;
      case Op::kLdrW:
      case Op::kLdrB: {
        ExprRef ea = ctx.Bin(BinOp::kAdd, ctx.Get(insn.rn),
                             ctx.Const(static_cast<uint32_t>(insn.imm)));
        ctx.Put(insn.rd, ctx.Load(ea, insn.op == Op::kLdrW ? 4 : 1));
        break;
      }
      case Op::kStrW:
      case Op::kStrB: {
        ExprRef ea = ctx.Bin(BinOp::kAdd, ctx.Get(insn.rn),
                             ctx.Const(static_cast<uint32_t>(insn.imm)));
        ctx.Store(ea, ctx.Get(insn.rd), insn.op == Op::kStrW ? 4 : 1);
        break;
      }
      case Op::kLdrWR:
      case Op::kLdrBR: {
        ExprRef ea =
            ctx.Bin(BinOp::kAdd, ctx.Get(insn.rn), ctx.Get(insn.rm));
        ctx.Put(insn.rd, ctx.Load(ea, insn.op == Op::kLdrWR ? 4 : 1));
        break;
      }
      case Op::kStrWR:
      case Op::kStrBR: {
        ExprRef ea =
            ctx.Bin(BinOp::kAdd, ctx.Get(insn.rn), ctx.Get(insn.rm));
        ctx.Store(ea, ctx.Get(insn.rd), insn.op == Op::kStrWR ? 4 : 1);
        break;
      }
      case Op::kCmpR:
        ctx.Put(kFlagLhs, ctx.Get(insn.rn));
        ctx.Put(kFlagRhs, ctx.Get(insn.rm));
        break;
      case Op::kCmpI:
        ctx.Put(kFlagLhs, ctx.Get(insn.rn));
        ctx.Put(kFlagRhs, ctx.Const(static_cast<uint32_t>(insn.imm)));
        break;
      case Op::kB: {
        uint32_t target = next_pc + static_cast<uint32_t>(insn.imm * 4);
        block.size = next_pc - addr;
        block.next = ctx.Const(target);
        block.jumpkind = JumpKind::kBoring;
        return block;
      }
      case Op::kBeq:
      case Op::kBne:
      case Op::kBlt:
      case Op::kBge:
      case Op::kBle:
      case Op::kBgt: {
        uint32_t target = next_pc + static_cast<uint32_t>(insn.imm * 4);
        // The guard stays an inline Binop (not a temp) so consumers can
        // read the compared operands directly off the Exit statement.
        ExprRef guard =
            Expr::MakeBinop(CondOp(insn.op), Expr::MakeGet(kFlagLhs),
                            Expr::MakeGet(kFlagRhs));
        ctx.Exit(guard, target);
        block.size = next_pc - addr;
        block.next = ctx.Const(next_pc);
        block.jumpkind = JumpKind::kBoring;
        return block;
      }
      case Op::kBl: {
        uint32_t target = next_pc + static_cast<uint32_t>(insn.imm * 4);
        ctx.Put(kRegLr, ctx.Const(next_pc));
        block.size = next_pc - addr;
        block.next = ctx.Const(target);
        block.jumpkind = JumpKind::kCall;
        block.return_addr = next_pc;
        return block;
      }
      case Op::kBlr: {
        ExprRef target = ctx.Get(insn.rm);
        ctx.Put(kRegLr, ctx.Const(next_pc));
        block.size = next_pc - addr;
        block.next = target;
        block.jumpkind = JumpKind::kIndirectCall;
        block.return_addr = next_pc;
        return block;
      }
      case Op::kRet: {
        block.size = next_pc - addr;
        block.next = ctx.Get(kRegLr);
        block.jumpkind = JumpKind::kRet;
        return block;
      }
      case Op::kNop:
      case Op::kSvc:
        break;
      case Op::kInvalid:
        return CorruptData("invalid opcode while lifting");
    }
    pc = next_pc;
  }

  // Fell through to stop_before: straight-line block ending in an
  // implicit fallthrough edge.
  block.size = pc - addr;
  block.next = Expr::MakeConst(pc);
  block.jumpkind = JumpKind::kBoring;
  return block;
}

}  // namespace dtaint
