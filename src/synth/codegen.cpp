#include "src/synth/codegen.h"

namespace dtaint {

namespace {

/// Sources that return a pointer to attacker bytes (vs filling a
/// caller buffer).
bool IsPtrReturningSource(const std::string& source) {
  return source == "getenv" || source == "websGetVar" ||
         source == "find_var";
}

/// Sinks whose dangerous parameter is a length (vs string contents).
bool IsLengthSink(const std::string& sink) {
  return sink == "memcpy" || sink == "strncpy";
}

bool IsCommandSink(const std::string& sink) {
  return sink == "system" || sink == "popen";
}

}  // namespace

CodeGen::CodeGen(const ProgramSpec& spec, BinaryWriter& writer)
    : spec_(spec), writer_(writer), rng_(spec.seed) {
  const CallingConvention& cc = ConventionFor(spec.arch);
  r_.a0 = cc.arg_regs[0];
  r_.a1 = cc.arg_regs[1];
  r_.a2 = cc.arg_regs[2];
  r_.a3 = cc.arg_regs[3];
  r_.rv = cc.ret_reg;
  if (spec.arch == Arch::kDtArm) {
    r_.s0 = 4; r_.s1 = 5; r_.s2 = 6; r_.s3 = 7; r_.s4 = 8; r_.s5 = 9;
  } else {
    r_.s0 = 8; r_.s1 = 9; r_.s2 = 10; r_.s3 = 11; r_.s4 = 12; r_.s5 = 3;
  }
}

uint32_t CodeGen::StrAddr(const std::string& text) {
  auto it = string_pool_.find(text);
  if (it != string_pool_.end()) return it->second;
  std::vector<uint8_t> bytes(text.begin(), text.end());
  bytes.push_back(0);
  uint32_t addr = kRodataBase + writer_.AddRodata(std::move(bytes));
  string_pool_[text] = addr;
  return addr;
}

void CodeGen::Import(const std::string& name) {
  if (imports_.insert(name).second) writer_.AddImport(name);
}

void CodeGen::Prologue(FnBuilder& b, int frame) {
  b.SubI(kRegSp, kRegSp, frame);
  b.StrW(kRegLr, kRegSp, frame - 4);
}

void CodeGen::Epilogue(FnBuilder& b, int frame) {
  b.LdrW(kRegLr, kRegSp, frame - 4);
  b.AddI(kRegSp, kRegSp, frame);
}

Status CodeGen::Finish(FnBuilder&& b) {
  auto fn = std::move(b).Finish();
  if (!fn.ok()) return fn.status();
  writer_.AddFunction(std::move(*fn));
  return Status::Ok();
}

void CodeGen::RecordPlant(const PlantSpec& plant,
                          const std::string& sink_fn, bool needs_alias,
                          bool needs_structsim, bool interprocedural) {
  PlantedVuln v;
  v.id = plant.id;
  v.sink_function = sink_fn;
  v.sink = plant.sink;
  v.source = plant.source;
  v.vuln_class = IsCommandSink(plant.sink)
                     ? VulnClass::kCommandInjection
                     : VulnClass::kBufferOverflow;
  v.sanitized = plant.sanitized;
  v.needs_alias = needs_alias;
  v.needs_structsim = needs_structsim;
  v.interprocedural = interprocedural;
  v.cve_label = plant.cve_label;
  ground_truth_.push_back(std::move(v));
}

bool CodeGen::EmitSource(FnBuilder& b, const std::string& source) {
  Import(source);
  if (IsPtrReturningSource(source)) {
    if (source == "getenv") {
      b.MovConst(r_.a0, StrAddr("HTTP_COOKIE"));
    } else if (source == "websGetVar") {
      b.MovI(r_.a0, 0);  // wp handle
      b.MovConst(r_.a1, StrAddr("host_name"));
      b.MovConst(r_.a2, StrAddr(""));
    } else {  // find_var
      b.MovI(r_.a0, 0);
      b.MovConst(r_.a1, StrAddr("cmd"));
    }
    b.Call(source);
    b.MovR(r_.s0, r_.rv);
    return true;
  }
  if (source == "recv" || source == "read" || source == "recvfrom" ||
      source == "recvmsg") {
    b.AddI(r_.s0, kRegSp, 0x40);  // buf on the frame
    b.MovI(r_.a0, 3);             // fd
    b.MovR(r_.a1, r_.s0);
    b.MovI(r_.a2, 0x100);
    if (source == "recvfrom" || source == "recv") b.MovI(r_.a3, 0);
    b.Call(source);
    return true;
  }
  if (source == "fgets") {
    b.AddI(r_.s0, kRegSp, 0x40);
    b.MovR(r_.a0, r_.s0);
    b.MovI(r_.a1, 0x100);
    b.MovI(r_.a2, 0);  // stdin handle
    b.Call(source);
    return true;
  }
  return false;
}

bool CodeGen::EmitSink(FnBuilder& b, const std::string& sink,
                       bool sanitized) {
  Import(sink);
  if (IsCommandSink(sink)) {
    if (sanitized) {
      // Semicolon filter: scan the command string; reject on ';'.
      b.MovI(r_.s2, 0);
      b.Label("scan");
      b.LdrBR(r_.s3, r_.s0, r_.s2);
      b.CmpI(r_.s3, 0x3B);  // ';'
      b.Beq("out");
      b.AddI(r_.s2, r_.s2, 1);
      b.CmpI(r_.s3, 0);
      b.Bne("scan");
    }
    b.MovR(r_.a0, r_.s0);
    if (sink == "popen") b.MovConst(r_.a1, StrAddr("r"));
    b.Call(sink);
    return true;
  }
  if (IsLengthSink(sink)) {
    // Tainted length: pulled out of the attacker-controlled bytes.
    b.LdrW(r_.s1, r_.s0, 4);
    if (sanitized) {
      b.CmpI(r_.s1, 0x40);
      b.Bge("out");
    }
    b.AddI(r_.a0, kRegSp, 0x160);  // dst buffer
    b.AddI(r_.a1, r_.s0, 8);       // payload after the header
    b.MovR(r_.a2, r_.s1);
    b.Call(sink);
    return true;
  }
  // String-content sinks.
  if (sanitized) {
    Import("strlen");
    b.MovR(r_.a0, r_.s0);
    b.Call("strlen");
    b.MovR(r_.s1, r_.rv);
    b.CmpI(r_.s1, 0x40);
    b.Bge("out");
  }
  if (sink == "strcpy" || sink == "strcat") {
    b.AddI(r_.a0, kRegSp, 0x160);
    b.MovR(r_.a1, r_.s0);
    b.Call(sink);
    return true;
  }
  if (sink == "sprintf") {
    b.AddI(r_.a0, kRegSp, 0x160);
    b.MovConst(r_.a1, StrAddr("name=%s"));
    b.MovR(r_.a2, r_.s0);
    b.Call(sink);
    return true;
  }
  if (sink == "sscanf") {
    b.MovR(r_.a0, r_.s0);
    b.MovConst(r_.a1, StrAddr("%254s"));
    b.AddI(r_.a2, kRegSp, 0x160);
    b.Call(sink);
    return true;
  }
  return false;
}

Status CodeGen::EmitDirect(const PlantSpec& plant) {
  std::string handler = plant.id + "_handler";
  FnBuilder b(handler);
  Prologue(b, 0x200);
  if (!EmitSource(b, plant.source)) {
    return Unsupported("source " + plant.source);
  }
  if (!EmitSink(b, plant.sink, plant.sanitized)) {
    return Unsupported("sink " + plant.sink);
  }
  b.Label("out");
  Epilogue(b, 0x200);
  b.Ret();
  if (Status s = Finish(std::move(b)); !s.ok()) return s;
  entry_functions_.push_back(handler);
  RecordPlant(plant, handler, false, false, false);
  return Status::Ok();
}

Status CodeGen::EmitWrapper(const PlantSpec& plant) {
  // Source lives in a callee that fills the caller's buffer; the sink
  // fires in the caller — requires bottom-up summary propagation.
  std::string handler = plant.id + "_handler";
  std::vector<std::string> fills;
  std::vector<std::string> fill_sources{plant.source};
  for (int i = 0; i < plant.extra_callers; ++i) {
    // Extra taint paths into the same sink via alternative sources.
    fill_sources.push_back(i % 2 == 0 ? "read" : "recv");
  }
  for (size_t i = 0; i < fill_sources.size(); ++i) {
    std::string fill = plant.id + "_fill" + std::to_string(i);
    const std::string& source = fill_sources[i];
    Import(source);
    FnBuilder fb(fill);
    Prologue(fb, 0x10);
    // arg0 = destination buffer.
    if (IsPtrReturningSource(source)) {
      // Copy the returned attacker string into the caller's buffer.
      fb.MovR(r_.s4, r_.a0);
      fb.MovConst(r_.a0, StrAddr("SOAPAction"));
      if (source == "websGetVar" || source == "find_var") {
        fb.MovI(r_.a0, 0);
        fb.MovConst(r_.a1, StrAddr("ping_IPAddr"));
        if (source == "websGetVar") fb.MovConst(r_.a2, StrAddr(""));
      }
      fb.Call(source);
      // Copy the attacker string into the caller's buffer with a
      // bounded strncpy: the contents stay tainted (that's the point of
      // the plant) but this copy itself is not an unchecked sink.
      // Read the return register before a0 is repurposed (on ARM the
      // return register IS a0).
      Import("strncpy");
      fb.MovR(r_.a1, r_.rv);
      fb.MovR(r_.a0, r_.s4);
      fb.MovI(r_.a2, 0x100);
      fb.Call("strncpy");
    } else {
      fb.MovR(r_.a1, r_.a0);
      fb.MovI(r_.a0, 3);
      fb.MovI(r_.a2, 0x200);
      fb.Call(source);
    }
    Epilogue(fb, 0x10);
    fb.Ret();
    if (Status s = Finish(std::move(fb)); !s.ok()) return s;
    fills.push_back(fill);
  }

  FnBuilder b(handler);
  Prologue(b, 0x300);
  b.AddI(r_.s0, kRegSp, 0x40);
  if (fills.size() == 1) {
    b.MovR(r_.a0, r_.s0);
    b.Call(fills[0]);
  } else {
    // Pick a fill variant based on an input byte (symbolic), so every
    // variant's source yields a distinct path to the one sink.
    b.LdrB(r_.s2, r_.s0, 0);
    for (size_t i = 0; i + 1 < fills.size(); ++i) {
      std::string next = "try" + std::to_string(i + 1);
      b.CmpI(r_.s2, static_cast<int32_t>(0x41 + i));
      b.Bne(next);
      b.MovR(r_.a0, r_.s0);
      b.Call(fills[i]);
      b.B("copy");
      b.Label(next);
    }
    b.MovR(r_.a0, r_.s0);
    b.Call(fills.back());
    b.Label("copy");
  }
  if (!EmitSink(b, plant.sink, plant.sanitized)) {
    return Unsupported("sink " + plant.sink);
  }
  b.Label("out");
  Epilogue(b, 0x300);
  b.Ret();
  if (Status s = Finish(std::move(b)); !s.ok()) return s;
  entry_functions_.push_back(handler);
  RecordPlant(plant, handler, false, false, true);
  return Status::Ok();
}

Status CodeGen::EmitAliasChain(const PlantSpec& plant) {
  // The paper's foo/woo shape (Fig. 5-7): woo parks the request buffer
  // pointer in a context-struct field and taints the buffer; foo reads
  // the pointer back through the field (the alias name) and sinks it.
  std::string woo = plant.id + "_woo";
  std::string handler = plant.id + "_handler";
  std::string entry = plant.id + "_entry";
  Import(plant.source);

  {
    FnBuilder b(woo);  // woo(ctx, req)
    Prologue(b, 0x10);
    b.LdrW(r_.s0, r_.a1, 0x24);  // s0 = req->buf
    b.StrW(r_.s0, r_.a0, 0x4C);  // ctx->cache = s0   (the alias store)
    b.MovI(r_.a0, 3);
    b.MovR(r_.a1, r_.s0);
    b.MovI(r_.a2, 0x200);
    b.Call(plant.source);        // taints *s0
    Epilogue(b, 0x10);
    b.Ret();
    if (Status s = Finish(std::move(b)); !s.ok()) return s;
  }
  {
    FnBuilder b(handler);  // foo(ctx, req)
    Prologue(b, 0x200);
    b.MovR(r_.s2, r_.a0);  // save ctx across the call
    b.Call(woo);           // args still live in a0/a1
    b.LdrW(r_.s0, r_.s2, 0x4C);  // read back via the alias name
    if (!EmitSink(b, plant.sink, plant.sanitized)) {
      return Unsupported("sink " + plant.sink);
    }
    b.Label("out");
    Epilogue(b, 0x200);
    b.Ret();
    if (Status s = Finish(std::move(b)); !s.ok()) return s;
  }
  {
    FnBuilder b(entry);
    Prologue(b, 0x400);
    b.AddI(r_.s0, kRegSp, 0x10);   // ctx struct
    b.AddI(r_.s1, kRegSp, 0x80);   // req struct
    b.AddI(r_.s2, kRegSp, 0x100);  // network buffer
    b.StrW(r_.s2, r_.s1, 0x24);    // req->buf = buffer
    b.MovR(r_.a0, r_.s0);
    b.MovR(r_.a1, r_.s1);
    b.Call(handler);
    Epilogue(b, 0x400);
    b.Ret();
    if (Status s = Finish(std::move(b)); !s.ok()) return s;
  }
  entry_functions_.push_back(entry);
  RecordPlant(plant, handler, /*needs_alias=*/true, false, true);
  return Status::Ok();
}

Status CodeGen::EmitDispatch(const PlantSpec& plant) {
  // Sink behind an indirect call through a message-type dispatch
  // table; the callee is reachable only via structure-layout matching.
  std::string impl = plant.id + "_impl";
  std::string decoy = plant.id + "_decoy";
  std::string setup = plant.id + "_setup";
  std::string dispatch = plant.id + "_dispatch";
  std::string entry = plant.id + "_entry";
  Import(plant.source);
  Import("malloc");

  {
    FnBuilder b(impl);  // impl(msg): msg->{+0xC buf, +0x10 len}
    b.LdrW(r_.s0, r_.a0, 0xC);
    b.LdrW(r_.s1, r_.a0, 0x10);
    Prologue(b, 0x80);
    if (plant.sanitized) {
      b.CmpI(r_.s1, 0x40);
      b.Bge("out");
    }
    Import("memcpy");
    b.AddI(r_.a0, kRegSp, 0x10);
    b.MovR(r_.a1, r_.s0);
    b.MovR(r_.a2, r_.s1);
    b.Call("memcpy");
    b.Label("out");
    Epilogue(b, 0x80);
    b.Ret();
    if (Status s = Finish(std::move(b)); !s.ok()) return s;
  }
  {
    FnBuilder b(decoy);  // decoy(cfg): completely different layout
    b.LdrW(r_.s0, r_.a0, 0x4);
    b.LdrW(r_.s1, r_.a0, 0x24);
    b.AddR(r_.s0, r_.s0, r_.s1);
    b.MovR(r_.rv, r_.s0);
    b.Ret();
    if (Status s = Finish(std::move(b)); !s.ok()) return s;
  }
  {
    FnBuilder b(setup);  // setup(msg): allocate + taint the buffer
    Prologue(b, 0x10);
    b.MovR(r_.s3, r_.a0);
    b.MovI(r_.a0, 0x200);
    b.Call("malloc");
    b.MovR(r_.s0, r_.rv);
    b.StrW(r_.s0, r_.s3, 0xC);
    b.MovI(r_.a0, 3);
    b.MovR(r_.a1, r_.s0);
    b.MovI(r_.a2, 0x200);
    b.Call(plant.source);
    b.LdrW(r_.s1, r_.s0, 0);   // attacker-controlled length field
    b.StrW(r_.s1, r_.s3, 0x10);
    Epilogue(b, 0x10);
    b.Ret();
    if (Status s = Finish(std::move(b)); !s.ok()) return s;
  }

  // Dispatch table in .data: [impl, decoy].
  uint32_t table_off = writer_.AddData(std::vector<uint8_t>(8, 0));
  writer_.AddDataReloc({".data", table_off, impl});
  writer_.AddDataReloc({".data", table_off + 4, decoy});
  uint32_t table_addr = kDataBase + table_off;

  {
    FnBuilder b(dispatch);  // dispatch(msg, kind)
    Prologue(b, 0x10);
    // Touch the same struct fields the impl uses so the layouts align
    // (these reads are what real dispatchers do: validate the message).
    b.LdrW(r_.s2, r_.a0, 0xC);
    b.LdrW(r_.s1, r_.a0, 0x10);
    b.MovConst(r_.s0, table_addr);
    b.LslI(r_.s4, r_.a1, 2);
    b.LdrWR(r_.s0, r_.s0, r_.s4);  // fptr = table[kind]  (symbolic)
    b.CallReg(r_.s0);               // msg still in a0
    Epilogue(b, 0x10);
    b.Ret();
    if (Status s = Finish(std::move(b)); !s.ok()) return s;
  }
  {
    FnBuilder b(entry);
    Prologue(b, 0x100);
    b.AddI(r_.s3, kRegSp, 0x20);  // msg struct on the stack
    b.MovR(r_.a0, r_.s3);
    b.Call(setup);
    b.MovR(r_.a0, r_.s3);
    b.LdrW(r_.a1, r_.s3, 0x14);   // message kind (symbolic index)
    b.Call(dispatch);
    Epilogue(b, 0x100);
    b.Ret();
    if (Status s = Finish(std::move(b)); !s.ok()) return s;
  }
  entry_functions_.push_back(entry);
  RecordPlant(plant, impl, false, /*needs_structsim=*/true, true);
  return Status::Ok();
}

Status CodeGen::EmitLoopCopy(const PlantSpec& plant) {
  std::string handler = plant.id + "_handler";
  Import(plant.source);
  FnBuilder b(handler);
  Prologue(b, 0x300);
  b.AddI(r_.s0, kRegSp, 0x10);   // src buffer (0x200 bytes)
  b.MovI(r_.a0, 3);
  b.MovR(r_.a1, r_.s0);
  b.MovI(r_.a2, 0x200);
  b.Call(plant.source);
  b.LdrW(r_.s2, r_.s0, 4);       // start offset: attacker-controlled
  b.AddI(r_.s1, kRegSp, 0x210);  // dst buffer (48 bytes)
  b.Label("loop");
  if (plant.sanitized) {
    b.CmpI(r_.s2, 0x2F);
    b.Bge("out");
  }
  b.LdrBR(r_.s3, r_.s0, r_.s2);
  b.StrBR(r_.s3, r_.s1, r_.s2);  // dst[off] = src[off] — the loop sink
  b.AddI(r_.s2, r_.s2, 1);
  b.CmpI(r_.s3, 0);
  b.Bne("loop");
  b.Label("out");
  Epilogue(b, 0x300);
  b.Ret();
  if (Status s = Finish(std::move(b)); !s.ok()) return s;
  entry_functions_.push_back(handler);
  PlantSpec adjusted = plant;
  adjusted.sink = "loop";
  RecordPlant(adjusted, handler, false, false, false);
  return Status::Ok();
}

Status CodeGen::EmitCrossCallAlias(const PlantSpec& plant) {
  // A handler registration spread across call boundaries, the shape
  // the eager alias pass structurally misses: link_ctx parks the ctx
  // pointer in a container field, install writes the handler address
  // into ctx, and the entry calls container->ctx->handler(msg). No
  // single function sees both the registration store and the indirect
  // call, so Algorithm 1 (per-function, pre-link) produces no usable
  // twin and layout similarity scores zero (the entry touches the
  // structs through stack roots, the impl through its argument). The
  // on-demand oracle runs on the *linked* entry summary where both
  // imported stores are visible, rewrites the call-target SSE through
  // the cross-boundary alias fact, and resolves the call exactly.
  std::string impl = plant.id + "_impl";
  std::string link_ctx = plant.id + "_link";
  std::string install = plant.id + "_install";
  std::string setup = plant.id + "_setup";
  std::string entry = plant.id + "_entry";
  Import(plant.source);
  Import("malloc");

  {
    FnBuilder b(impl);  // impl(msg): msg->{+0xC buf, +0x10 len}
    b.LdrW(r_.s0, r_.a0, 0xC);
    b.LdrW(r_.s1, r_.a0, 0x10);
    Prologue(b, 0x80);
    if (plant.sanitized) {
      b.CmpI(r_.s1, 0x40);
      b.Bge("out");
    }
    Import("memcpy");
    b.AddI(r_.a0, kRegSp, 0x10);
    b.MovR(r_.a1, r_.s0);
    b.MovR(r_.a2, r_.s1);
    b.Call("memcpy");
    b.Label("out");
    Epilogue(b, 0x80);
    b.Ret();
    if (Status s = Finish(std::move(b)); !s.ok()) return s;
  }
  {
    FnBuilder b(link_ctx);  // link_ctx(container, ctx)
    b.StrW(r_.a1, r_.a0, 0x8);  // container->ctx = ctx (the alias store)
    b.Ret();
    if (Status s = Finish(std::move(b)); !s.ok()) return s;
  }

  // Handler registry in .data: a single function-pointer slot holding
  // the impl's address (also what makes the impl address-taken).
  uint32_t slot_off = writer_.AddData(std::vector<uint8_t>(4, 0));
  writer_.AddDataReloc({".data", slot_off, impl});
  uint32_t slot_addr = kDataBase + slot_off;

  {
    FnBuilder b(install);  // install(ctx): ctx->handler = registry[0]
    b.MovConst(r_.s0, slot_addr);
    b.LdrW(r_.s0, r_.s0, 0);
    b.StrW(r_.s0, r_.a0, 0x30);
    b.Ret();
    if (Status s = Finish(std::move(b)); !s.ok()) return s;
  }
  {
    FnBuilder b(setup);  // setup(msg): allocate + taint the buffer
    Prologue(b, 0x10);
    b.MovR(r_.s3, r_.a0);
    b.MovI(r_.a0, 0x200);
    b.Call("malloc");
    b.MovR(r_.s0, r_.rv);
    b.StrW(r_.s0, r_.s3, 0xC);
    b.MovI(r_.a0, 3);
    b.MovR(r_.a1, r_.s0);
    b.MovI(r_.a2, 0x200);
    b.Call(plant.source);
    b.LdrW(r_.s1, r_.s0, 0);   // attacker-controlled length field
    b.StrW(r_.s1, r_.s3, 0x10);
    Epilogue(b, 0x10);
    b.Ret();
    if (Status s = Finish(std::move(b)); !s.ok()) return s;
  }
  {
    FnBuilder b(entry);
    Prologue(b, 0x100);
    b.AddI(r_.s1, kRegSp, 0x18);  // container struct
    b.AddI(r_.s2, kRegSp, 0x40);  // ctx struct
    b.AddI(r_.s3, kRegSp, 0x80);  // msg struct
    b.MovR(r_.a0, r_.s1);
    b.MovR(r_.a1, r_.s2);
    b.Call(link_ctx);
    b.MovR(r_.a0, r_.s2);
    b.Call(install);
    b.MovR(r_.a0, r_.s3);
    b.Call(setup);
    // Reload through the container: the engine has no store to forward
    // here (the stores happened in the callees), so the target stays
    // the symbolic chain deref(deref(sp0+cont+8)+0x30).
    b.LdrW(r_.s4, r_.s1, 0x8);
    b.LdrW(r_.s4, r_.s4, 0x30);
    b.MovR(r_.a0, r_.s3);
    b.CallReg(r_.s4);
    Epilogue(b, 0x100);
    b.Ret();
    if (Status s = Finish(std::move(b)); !s.ok()) return s;
  }
  entry_functions_.push_back(entry);
  RecordPlant(plant, impl, /*needs_alias=*/true, /*needs_structsim=*/true,
              true);
  return Status::Ok();
}

Status CodeGen::EmitPlant(const PlantSpec& plant) {
  switch (plant.pattern) {
    case VulnPattern::kDirect:
      return EmitDirect(plant);
    case VulnPattern::kWrapper:
      return EmitWrapper(plant);
    case VulnPattern::kAliasChain:
      return EmitAliasChain(plant);
    case VulnPattern::kDispatch:
      return EmitDispatch(plant);
    case VulnPattern::kLoopCopy:
      return EmitLoopCopy(plant);
    case VulnPattern::kCrossCallAlias:
      return EmitCrossCallAlias(plant);
  }
  return Unsupported("unknown pattern");
}

Status CodeGen::EmitFillers() {
  static const char* kSafeStrings[] = {"GET", "POST", "Content-Length",
                                       "text/html", "admin", "/tmp/run",
                                       "reboot", "br0", "eth0"};
  for (int i = 0; i < spec_.filler_functions; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "fn_%05x", i);
    FnBuilder b(name);
    int frame = static_cast<int>(rng_.Range(4, 32)) * 8;
    Prologue(b, frame);

    int target_blocks = static_cast<int>(
        rng_.Range(spec_.filler_min_blocks, spec_.filler_max_blocks));
    int diamonds = std::max(1, (target_blocks - 2) / 2);
    int calls_left = static_cast<int>(
        rng_.Range(0, static_cast<int64_t>(2 * spec_.filler_call_density)));

    for (int d = 0; d < diamonds; ++d) {
      std::string skip = "skip" + std::to_string(d);
      // Optional checksum/parse-style arithmetic: pure scratch-register
      // compute, never stored or passed — heavy to execute, invisible
      // in the summary.
      // (s3/s4 only: those never reach a store, argument, or return,
      // so the burst cannot inflate the recorded summary.)
      for (int k = 0; k < spec_.filler_alu_burst; ++k) {
        switch (k % 3) {
          case 0:
            b.AddR(r_.s4, r_.s4, r_.s3);
            break;
          case 1:
            b.LslI(r_.s3, r_.s4, static_cast<int32_t>(rng_.Range(1, 3)));
            break;
          default:
            b.MulR(r_.s4, r_.s3, r_.s4);
            break;
        }
      }
      // A few ALU ops on scratch registers.
      int ops = static_cast<int>(rng_.Range(1, 4));
      for (int k = 0; k < ops; ++k) {
        switch (rng_.Below(4)) {
          case 0:
            b.AddI(r_.s0, r_.s1, static_cast<int32_t>(rng_.Range(1, 64)));
            break;
          case 1:
            // Stay clear of the saved-lr slot at [sp + frame - 4].
            b.LdrW(r_.s1, kRegSp,
                   static_cast<int32_t>(rng_.Range(0, frame / 4 - 2)) * 4);
            break;
          case 2:
            b.StrW(r_.s0, kRegSp,
                   static_cast<int32_t>(rng_.Range(0, frame / 4 - 2)) * 4);
            break;
          default:
            b.LslI(r_.s2, r_.s0, static_cast<int32_t>(rng_.Range(1, 3)));
            break;
        }
      }
      b.CmpI(r_.s0, static_cast<int32_t>(rng_.Range(0, 255)));
      b.Bne(skip);
      // Then-branch: maybe a safe library call or a filler call.
      switch (rng_.Below(6)) {
        case 0: {  // bounded memcpy: a sink with untainted args
          Import("memcpy");
          b.AddI(r_.a0, kRegSp, 0);
          b.AddI(r_.a1, kRegSp, frame / 2);
          b.MovI(r_.a2, static_cast<int32_t>(rng_.Range(4, 32)));
          b.Call("memcpy");
          break;
        }
        case 1: {  // strncpy with constant bound
          Import("strncpy");
          b.AddI(r_.a0, kRegSp, 0);
          b.MovConst(r_.a1, StrAddr(
              kSafeStrings[rng_.Below(std::size(kSafeStrings))]));
          b.MovI(r_.a2, 16);
          b.Call("strncpy");
          break;
        }
        case 2: {  // constant command: system("reboot")-style sink
          Import("system");
          b.MovConst(r_.a0, StrAddr("reboot"));
          b.Call("system");
          break;
        }
        case 3: {  // strcmp against a literal
          Import("strcmp");
          b.AddI(r_.a0, kRegSp, 8);
          b.MovConst(r_.a1, StrAddr(
              kSafeStrings[rng_.Below(std::size(kSafeStrings))]));
          b.Call("strcmp");
          break;
        }
        case 4: {  // call an earlier filler (acyclic call graph)
          if (calls_left > 0 && !filler_names_.empty()) {
            b.MovI(r_.a0, 0);
            b.Call(filler_names_[rng_.Below(filler_names_.size())]);
            --calls_left;
          } else {
            b.AddI(r_.s3, r_.s3, 1);
          }
          break;
        }
        default:
          b.MulR(r_.s2, r_.s0, r_.s1);
          break;
      }
      b.Label(skip);
    }
    // Occasional small counted loop over the frame.
    if (rng_.Chance(0.35)) {
      b.LdrW(r_.s2, kRegSp, 0);  // symbolic trip count
      b.MovI(r_.s4, 0);
      b.Label("lp");
      b.LdrW(r_.s1, kRegSp, 8);
      b.AddI(r_.s4, r_.s4, 1);
      b.CmpR(r_.s4, r_.s2);
      b.Blt("lp");
    }
    // Drain remaining call budget with tail calls to earlier fillers.
    while (calls_left-- > 0 && !filler_names_.empty()) {
      b.MovI(r_.a0, 1);
      b.Call(filler_names_[rng_.Below(filler_names_.size())]);
    }
    b.MovR(r_.rv, r_.s0);
    Epilogue(b, frame);
    b.Ret();
    if (Status s = Finish(std::move(b)); !s.ok()) return s;
    filler_names_.push_back(name);
  }
  return Status::Ok();
}

Status CodeGen::EmitMain() {
  FnBuilder b("main");
  Prologue(b, 0x40);
  for (const std::string& handler : entry_functions_) {
    b.Call(handler);
  }
  // Root a slice of the filler forest so it is reachable from main.
  size_t stride = filler_names_.empty()
                      ? 1
                      : std::max<size_t>(1, filler_names_.size() / 8);
  for (size_t i = 0; i < filler_names_.size(); i += stride) {
    b.MovI(r_.a0, 0);
    b.Call(filler_names_[i]);
  }
  b.MovI(r_.rv, 0);
  Epilogue(b, 0x40);
  b.Ret();
  return Finish(std::move(b));
}

Status CodeGen::EmitAll() {
  for (const PlantSpec& plant : spec_.plants) {
    if (Status s = EmitPlant(plant); !s.ok()) {
      return Status(s.code(), "plant " + plant.id + ": " + s.message());
    }
  }
  if (Status s = EmitFillers(); !s.ok()) return s;
  if (Status s = EmitMain(); !s.ok()) return s;
  writer_.SetEntry("main");
  return Status::Ok();
}

}  // namespace dtaint
