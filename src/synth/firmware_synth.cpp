#include "src/synth/firmware_synth.h"

#include "src/binary/writer.h"
#include "src/synth/codegen.h"

namespace dtaint {

Result<SynthOutput> SynthesizeBinary(const ProgramSpec& spec) {
  BinaryWriter writer(spec.arch, spec.name);
  CodeGen gen(spec, writer);
  if (Status s = gen.EmitAll(); !s.ok()) return s;
  auto binary = writer.Build();
  if (!binary.ok()) return binary.status();
  SynthOutput out;
  out.binary = std::move(*binary);
  out.ground_truth = gen.ground_truth();
  return out;
}

Result<FirmwareSynthOutput> SynthesizeFirmware(const FirmwareSpec& spec) {
  auto built = SynthesizeBinary(spec.program);
  if (!built.ok()) return built.status();

  FirmwareSynthOutput out;
  out.ground_truth = std::move(built->ground_truth);
  FirmwareImage& image = out.image;
  image.vendor = spec.vendor;
  image.product = spec.product;
  image.version = spec.version;
  image.release_year = spec.release_year;
  image.arch = spec.program.arch;
  image.packing = spec.packing;

  auto text_file = [](std::string path, std::string body) {
    FirmwareFile f;
    f.path = std::move(path);
    f.bytes.assign(body.begin(), body.end());
    return f;
  };
  image.files.push_back(text_file(
      "/etc/passwd", "root:x:0:0:root:/root:/bin/sh\n"
                     "admin:x:1000:1000::/home/admin:/bin/sh\n"));
  image.files.push_back(text_file(
      "/etc/version", spec.vendor + " " + spec.product + " v" +
                          spec.version + "\n"));
  image.files.push_back(
      text_file("/www/index.html",
                "<html><title>" + spec.product + "</title></html>\n"));
  image.files.push_back(text_file("/etc/init.d/rcS",
                                  "#!/bin/sh\n" + spec.binary_path + " &\n"));

  FirmwareFile bin_file;
  bin_file.path = spec.binary_path;
  bin_file.bytes = BinaryWriter::Serialize(built->binary);
  image.files.push_back(std::move(bin_file));
  return out;
}

}  // namespace dtaint
