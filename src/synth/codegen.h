// CodeGen: emits DT-RISC functions for vulnerability-pattern plants
// and filler parser/utility code, into a BinaryWriter.
//
// Every plant pattern has a vulnerable form and a sanitized twin
// (`PlantSpec::sanitized`); the twin differs only by the bounds check /
// semicolon filter the paper's constraint expressions look for, which
// is what makes precision measurable.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/binary/writer.h"
#include "src/synth/progspec.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace dtaint {

class CodeGen {
 public:
  CodeGen(const ProgramSpec& spec, BinaryWriter& writer);

  /// Emits all plants, fillers, and the root "main" dispatcher.
  /// On success the writer holds the full program.
  Status EmitAll();

  const std::vector<PlantedVuln>& ground_truth() const {
    return ground_truth_;
  }

 private:
  struct RegMap {
    int a0, a1, a2, a3;  // argument registers
    int rv;              // return-value register
    int s0, s1, s2, s3, s4, s5;  // scratch registers
  };

  Status EmitPlant(const PlantSpec& plant);
  Status EmitDirect(const PlantSpec& plant);
  Status EmitWrapper(const PlantSpec& plant);
  Status EmitAliasChain(const PlantSpec& plant);
  Status EmitDispatch(const PlantSpec& plant);
  Status EmitLoopCopy(const PlantSpec& plant);
  Status EmitCrossCallAlias(const PlantSpec& plant);
  Status EmitFillers();
  Status EmitMain();

  /// Emits "acquire tainted data" preamble into `b`; afterwards s0
  /// holds a pointer to attacker bytes (stack buffer or returned ptr).
  /// Returns false if the source name is unsupported.
  bool EmitSource(FnBuilder& b, const std::string& source);
  /// Emits the sink call consuming the tainted pointer in s0, guarded
  /// by the sanitizing check when `sanitized`. The "out" label must be
  /// placed by the caller (EmitSinkTail does it).
  bool EmitSink(FnBuilder& b, const std::string& sink, bool sanitized);

  /// Standard function prologue/epilogue: allocate the frame and
  /// save/restore the link register in its top slot, like real
  /// firmware code does — required for the generated binaries to be
  /// *executable* (the verification VM runs them), not just
  /// analyzable.
  void Prologue(FnBuilder& b, int frame);
  void Epilogue(FnBuilder& b, int frame);

  /// Address of a NUL-terminated string in .rodata (deduplicated).
  uint32_t StrAddr(const std::string& text);
  /// Registers a libc import on first use.
  void Import(const std::string& name);
  /// Finalizes a builder and hands the function to the writer.
  Status Finish(FnBuilder&& b);

  void RecordPlant(const PlantSpec& plant, const std::string& sink_fn,
                   bool needs_alias, bool needs_structsim,
                   bool interprocedural);

  const ProgramSpec& spec_;
  BinaryWriter& writer_;
  RegMap r_;
  Rng rng_;
  std::map<std::string, uint32_t> string_pool_;
  std::set<std::string> imports_;
  std::vector<std::string> entry_functions_;  // called from main
  std::vector<std::string> filler_names_;
  std::vector<PlantedVuln> ground_truth_;
};

}  // namespace dtaint
