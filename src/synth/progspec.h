// Program specifications for the firmware synthesizer.
//
// The paper's evaluation runs on proprietary vendor binaries we cannot
// ship; the synthesizer regenerates binaries with the same *shape*
// (function/block/call-edge counts, protocol-parser structure) and —
// unlike real firmware — exact ground truth: every planted taint-style
// vulnerability and every deliberately-sanitized twin is recorded for
// scoring (see DESIGN.md, substitutions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/binary/binary.h"
#include "src/report/scoring.h"
#include "src/util/status.h"

namespace dtaint {

/// The code shape a plant is built from.
enum class VulnPattern : uint8_t {
  kDirect,     // source and sink in one handler function
  kWrapper,    // source in a callee, sink in the caller (interprocedural)
  kAliasChain, // the paper's foo/woo shape: pointer parked in a struct
               // field, buffer tainted under one name, sunk under the
               // alias (needs Algorithm 1 + bottom-up flow)
  kDispatch,   // sink behind an indirect call resolved only by
               // structure-layout similarity (§III-D)
  kLoopCopy,   // loop copy at an attacker-controlled offset (Table I's
               // "loop" sink)
  kCrossCallAlias,  // function pointer registered through an alias
                    // created across a call boundary: one callee links
                    // ctx into a container, another installs the
                    // handler into ctx, the entry calls through
                    // container->ctx->handler. Only the on-demand SSE
                    // oracle resolves the indirect call (the eager
                    // pass runs pre-link and never sees the
                    // cross-boundary facts; layout similarity scores 0)
};

std::string_view VulnPatternName(VulnPattern pattern);

/// One pattern instance to synthesize.
struct PlantSpec {
  std::string id;        // unique tag; function names derive from it
  VulnPattern pattern = VulnPattern::kDirect;
  std::string source;    // "recv", "getenv", "websGetVar", ...
  std::string sink;      // "strcpy", "system", "memcpy", "loop", ...
  bool sanitized = false;  // emit the safe twin (bounds/semicolon check)
  int extra_callers = 0;   // additional call paths into the handler
                           // (yields several vulnerable paths per bug)
  std::string cve_label;   // display name for Table IV/V rows
};

/// A whole binary to synthesize.
struct ProgramSpec {
  std::string name = "a.out";   // soname, e.g. "cgibin"
  Arch arch = Arch::kDtArm;
  uint64_t seed = 1;
  std::vector<PlantSpec> plants;
  /// Filler parser/utility functions to reach a target program shape.
  int filler_functions = 50;
  int filler_min_blocks = 4;
  int filler_max_blocks = 22;
  /// Average outgoing direct calls per filler (call-edge density).
  double filler_call_density = 3.0;
  /// Extra straight-line ALU instructions per filler block, modeling
  /// compute-dense firmware (checksum/parse arithmetic). They cost
  /// symbolic-execution time on every path but record nothing in the
  /// function summary, so they shift the analyze-vs-summary-size
  /// balance toward analysis. 0 = the classic shape.
  int filler_alu_burst = 0;
};

/// Synthesis output: the built binary plus its ground truth.
struct SynthOutput {
  Binary binary;
  std::vector<PlantedVuln> ground_truth;
};

}  // namespace dtaint
