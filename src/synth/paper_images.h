// The six paper-shaped firmware images (paper Tables II-V).
//
// Each spec mirrors one row of Table II: vendor, product, architecture,
// binary name, and program shape (function / block / call-edge
// counts), with the image's vulnerabilities planted after Tables IV/V:
// the same source/sink pairs, the same pattern classes (the three
// Hikvision URL-parameter bugs use the alias and structure-similarity
// patterns, as §V-A4 describes), plus sanitized twins so precision is
// measurable. The two largest binaries (Uniview mwareserver, Hikvision
// centaurus) are scaled to ~1/10 of their function counts — the paper
// itself only analyzes a module subset of those — and the scale factor
// is recorded so benches can report it.
#pragma once

#include <string>
#include <vector>

#include "src/synth/firmware_synth.h"

namespace dtaint {

struct PaperTable2Row {
  std::string manufacturer;
  std::string firmware_version;
  std::string arch;
  std::string binary;
  int size_kb;
  int functions;
  int blocks;
  int call_edges;
};

struct PaperTable3Row {
  int analysis_functions;
  int sinks;
  double minutes;
  int vulnerable_paths;
  int vulnerabilities;
};

struct PaperImageSpec {
  FirmwareSpec firmware;
  PaperTable2Row paper_table2;   // the values the paper reports
  PaperTable3Row paper_table3;
  double scale = 1.0;            // our function count / paper's
  /// Non-empty: analyze only these entry functions plus their callees
  /// (the paper's module restriction for the two big binaries).
  std::vector<std::string> focus;
};

/// All six images, in Table II order.
std::vector<PaperImageSpec> PaperImageSpecs();

/// Builds one image (binary + rootfs + ground truth).
Result<FirmwareSynthOutput> BuildPaperImage(const PaperImageSpec& spec);

/// Number of functions a plant contributes (used to size fillers).
int PlantFunctionCount(const PlantSpec& plant);

}  // namespace dtaint
