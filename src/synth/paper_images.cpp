#include "src/synth/paper_images.h"

namespace dtaint {

int PlantFunctionCount(const PlantSpec& plant) {
  switch (plant.pattern) {
    case VulnPattern::kDirect:
      return 1;
    case VulnPattern::kWrapper:
      return 2 + plant.extra_callers;  // handler + fill variants
    case VulnPattern::kAliasChain:
      return 3;  // woo + handler + entry
    case VulnPattern::kDispatch:
      return 5;  // impl + decoy + setup + dispatch + entry
    case VulnPattern::kLoopCopy:
      return 1;
    case VulnPattern::kCrossCallAlias:
      return 5;  // impl + link + install + setup + entry
  }
  return 1;
}

namespace {

PlantSpec Plant(std::string id, VulnPattern pattern, std::string source,
                std::string sink, bool sanitized = false,
                int extra_callers = 0, std::string cve_label = {}) {
  PlantSpec p;
  p.id = std::move(id);
  p.pattern = pattern;
  p.source = std::move(source);
  p.sink = std::move(sink);
  p.sanitized = sanitized;
  p.extra_callers = extra_callers;
  p.cve_label = std::move(cve_label);
  return p;
}

/// Completes a ProgramSpec: computes the filler count so the total
/// function count (plants + fillers + main) hits `target_functions`.
void SizeProgram(ProgramSpec& prog, int target_functions,
                 int avg_blocks_per_fn, double call_density) {
  int plant_fns = 1;  // main
  for (const PlantSpec& p : prog.plants) plant_fns += PlantFunctionCount(p);
  prog.filler_functions = std::max(0, target_functions - plant_fns);
  prog.filler_min_blocks = std::max(3, avg_blocks_per_fn - 5);
  prog.filler_max_blocks = avg_blocks_per_fn + 7;
  prog.filler_call_density = call_density;
}

}  // namespace

std::vector<PaperImageSpec> PaperImageSpecs() {
  std::vector<PaperImageSpec> specs;

  // ---- 1. D-Link DIR-645_1.03 (MIPS, cgibin) ---------------------------
  {
    PaperImageSpec s;
    s.firmware.vendor = "D-Link";
    s.firmware.product = "DIR-645";
    s.firmware.version = "1.03";
    s.firmware.release_year = 2013;
    s.firmware.binary_path = "/htdocs/cgibin";
    ProgramSpec& prog = s.firmware.program;
    prog.name = "cgibin";
    prog.arch = Arch::kDtMips;
    prog.seed = 645;
    prog.plants = {
        // CVE-2013-7389: two bugs — the POST "password" strncpy overflow
        // and the overlong-cookie sprintf overflow.
        Plant("dir645_cve_2013_7389a", VulnPattern::kDirect, "read",
              "strncpy", false, 0, "CVE-2013-7389"),
        Plant("dir645_cve_2013_7389b", VulnPattern::kDirect, "getenv",
              "sprintf", false, 0, "CVE-2013-7389"),
        // CVE-2015-2051: SOAPAction command injection.
        Plant("dir645_cve_2015_2051", VulnPattern::kWrapper, "getenv",
              "system", false, 1, "CVE-2015-2051"),
        // The previously-unknown command injection (paper §V-A1).
        Plant("dir645_zero_cmdinj", VulnPattern::kWrapper, "getenv",
              "system", false, 1, "unknown (reported)"),
        // Sanitized twins: must NOT be reported.
        Plant("dir645_safe_strcpy", VulnPattern::kDirect, "getenv",
              "strcpy", true),
        Plant("dir645_safe_system", VulnPattern::kDirect, "getenv",
              "system", true),
    };
    SizeProgram(prog, 237, 14, 2.6);
    s.paper_table2 = {"D-Link", "DIR-645_1.03", "MIPS", "cgibin",
                      156,      237,            3414,   1087};
    s.paper_table3 = {237, 176, 1.18, 7, 4};
    specs.push_back(std::move(s));
  }

  // ---- 2. D-Link DIR-890L_1.03 (ARM, cgibin) ---------------------------
  {
    PaperImageSpec s;
    s.firmware.vendor = "D-Link";
    s.firmware.product = "DIR-890L";
    s.firmware.version = "1.03";
    s.firmware.release_year = 2015;
    s.firmware.binary_path = "/htdocs/cgibin";
    ProgramSpec& prog = s.firmware.program;
    prog.name = "cgibin";
    prog.arch = Arch::kDtArm;
    prog.seed = 890;
    prog.plants = {
        // CVE-2016-5681: overlong session cookie into a 152-byte stack
        // buffer via strcpy.
        Plant("dir890l_cve_2016_5681", VulnPattern::kWrapper, "getenv",
              "strcpy", false, 2, "CVE-2016-5681"),
        // CVE-2015-2051 is shared with DIR-645 (same cgibin lineage).
        Plant("dir890l_cve_2015_2051", VulnPattern::kDirect, "getenv",
              "system", false, 0, "CVE-2015-2051"),
        Plant("dir890l_safe_sprintf", VulnPattern::kDirect, "getenv",
              "sprintf", true),
        Plant("dir890l_safe_system", VulnPattern::kDirect, "getenv",
              "system", true),
    };
    SizeProgram(prog, 358, 10, 2.5);
    s.paper_table2 = {"D-Link", "DIR-890L_1.03", "ARM", "cgibin",
                      151,      358,             3913,  1418};
    s.paper_table3 = {358, 276, 1.48, 5, 2};
    specs.push_back(std::move(s));
  }

  // ---- 3. Netgear DGN1000-V1.1.00.46 (MIPS, setup.cgi) ------------------
  {
    PaperImageSpec s;
    s.firmware.vendor = "Netgear";
    s.firmware.product = "DGN1000";
    s.firmware.version = "V1.1.00.46";
    s.firmware.release_year = 2014;
    s.firmware.binary_path = "/usr/sbin/setup.cgi";
    ProgramSpec& prog = s.firmware.program;
    prog.name = "setup.cgi";
    prog.arch = Arch::kDtMips;
    prog.seed = 1000;
    prog.plants = {
        // CVE-2017-6334: host_name -> system.
        Plant("dgn1000_cve_2017_6334", VulnPattern::kWrapper, "websGetVar",
              "system", false, 2, "CVE-2017-6334"),
        // CVE-2017-6077: ping_IPAddr -> system.
        Plant("dgn1000_cve_2017_6077", VulnPattern::kDirect, "websGetVar",
              "system", false, 0, "CVE-2017-6077"),
        // Four previously-unknown command injections + one overflow
        // (paper Table V).
        Plant("dgn1000_zero_cmdinj1", VulnPattern::kWrapper, "websGetVar",
              "system", false, 2, "unknown"),
        Plant("dgn1000_zero_cmdinj2", VulnPattern::kDirect, "getenv",
              "system", false, 0, "unknown"),
        Plant("dgn1000_zero_cmdinj3", VulnPattern::kAliasChain, "recv",
              "system", false, 0, "unknown (reviewing)"),
        Plant("dgn1000_zero_overflow", VulnPattern::kLoopCopy, "recv",
              "loop", false, 0, "unknown"),
        Plant("dgn1000_safe_system", VulnPattern::kDirect, "websGetVar",
              "system", true),
        Plant("dgn1000_safe_strcpy", VulnPattern::kWrapper, "recv",
              "strcpy", true),
    };
    SizeProgram(prog, 732, 7, 2.9);
    s.paper_table2 = {"Netgear", "DGN1000-V1.1.00.46", "MIPS", "setup.cgi",
                      331,       732,                  4943,   2457};
    s.paper_table3 = {732, 958, 3.19, 19, 6};
    specs.push_back(std::move(s));
  }

  // ---- 4. Netgear DGN2200-V1.0.0.50 (MIPS, httpd) -----------------------
  {
    PaperImageSpec s;
    s.firmware.vendor = "Netgear";
    s.firmware.product = "DGN2200";
    s.firmware.version = "V1.0.0.50";
    s.firmware.release_year = 2014;
    s.firmware.binary_path = "/usr/sbin/httpd";
    ProgramSpec& prog = s.firmware.program;
    prog.name = "httpd";
    prog.arch = Arch::kDtMips;
    prog.seed = 2200;
    prog.plants = {
        // EDB-ID:43055: cmd -> popen.
        Plant("dgn2200_edb_43055", VulnPattern::kWrapper, "find_var",
              "popen", false, 2, "EDB-ID:43055"),
        Plant("dgn2200_zero_cmdinj", VulnPattern::kWrapper, "getenv",
              "system", false, 2, "unknown (reviewing)"),
        Plant("dgn2200_safe_popen", VulnPattern::kDirect, "find_var",
              "popen", true),
        Plant("dgn2200_safe_memcpy", VulnPattern::kDirect, "recv",
              "memcpy", true),
    };
    SizeProgram(prog, 796, 14, 3.2);
    s.paper_table2 = {"Netgear", "DGN2200-V1.0.0.50", "MIPS", "httpd",
                      994,       796,                 11183,  4497};
    s.paper_table3 = {796, 1264, 6.62, 14, 2};
    specs.push_back(std::move(s));
  }

  // ---- 5. Uniview IPC_6201 (ARM, mwareserver), scaled 1/10 --------------
  {
    PaperImageSpec s;
    s.firmware.vendor = "Uniview";
    s.firmware.product = "IPC";
    s.firmware.version = "6201";
    s.firmware.release_year = 2016;
    s.firmware.binary_path = "/usr/bin/mwareserver";
    ProgramSpec& prog = s.firmware.program;
    prog.name = "mwareserver";
    prog.arch = Arch::kDtArm;
    prog.seed = 6201;
    prog.plants = {
        // The zero-day: RTSP "session" field, sscanf copies up to 254
        // chars into a 180-byte stack buffer.
        Plant("uniview_zero_sscanf", VulnPattern::kWrapper, "read",
              "sscanf", false, 2, "unknown (reviewing)"),
        Plant("uniview_safe_sscanf", VulnPattern::kDirect, "read",
              "sscanf", true),
        Plant("uniview_safe_memcpy", VulnPattern::kWrapper, "recv",
              "memcpy", true, 0),
    };
    SizeProgram(prog, 671, 14, 3.4);
    s.scale = 0.1;
    s.paper_table2 = {"Uniview", "IPC_6201", "ARM",  "mwareserver",
                      4813,      6714,       99958, 32495};
    s.paper_table3 = {430, 447, 3.97, 10, 1};
    // The paper analyzes the RTSP/HTTP module subset (430 of 6,714
    // functions); here: the plant entries plus a filler slice.
    s.focus = {"uniview_zero_sscanf_handler", "uniview_safe_sscanf_handler",
               "uniview_safe_memcpy_handler"};
    for (int i = 0; i < 40; ++i) {
      char name[32];
      std::snprintf(name, sizeof(name), "fn_%05x", i);
      s.focus.push_back(name);
    }
    specs.push_back(std::move(s));
  }

  // ---- 6. Hikvision DS-2CD6233F (ARM, centaurus), scaled 1/10 -----------
  {
    PaperImageSpec s;
    s.firmware.vendor = "Hikvision";
    s.firmware.product = "DS-2CD6233F";
    s.firmware.version = "5.2";
    s.firmware.release_year = 2016;
    s.firmware.binary_path = "/usr/bin/centaurus";
    ProgramSpec& prog = s.firmware.program;
    prog.name = "centaurus";
    prog.arch = Arch::kDtArm;
    prog.seed = 6233;
    prog.plants = {
        // 1: 48-byte stack buffer memcpy with unchecked length.
        Plant("hik_zero_memcpy", VulnPattern::kDirect, "read", "memcpy",
              false, 0, "unknown (repaired)"),
        // 2: two loop-copy overflows of a 2048-byte read.
        Plant("hik_zero_loop1", VulnPattern::kLoopCopy, "read", "loop",
              false, 0, "unknown (repaired)"),
        Plant("hik_zero_loop2", VulnPattern::kLoopCopy, "read", "loop",
              false, 0, "unknown (repaired)"),
        // 3: three URL-parameter overflows "associated with pointer
        // alias and the similarity of data structure" (§V-A4).
        Plant("hik_zero_url1", VulnPattern::kAliasChain, "recv", "strcpy",
              false, 0, "unknown (repaired)"),
        Plant("hik_zero_url2", VulnPattern::kDispatch, "recv", "memcpy",
              false, 0, "unknown (repaired)"),
        Plant("hik_zero_url3", VulnPattern::kAliasChain, "recv", "memcpy",
              false, 0, "unknown (repaired)"),
        Plant("hik_safe_memcpy", VulnPattern::kDispatch, "recv", "memcpy",
              true),
        Plant("hik_safe_loop", VulnPattern::kLoopCopy, "read", "loop",
              true),
        Plant("hik_safe_strcpy", VulnPattern::kAliasChain, "recv",
              "strcpy", true),
    };
    SizeProgram(prog, 1403, 14, 3.0);
    s.scale = 0.1;
    s.paper_table2 = {"Hikvision", "DS-2CD6233F", "ARM",   "centaurus",
                      13199,       14035,         219945, 68974};
    s.paper_table3 = {3233, 2052, 31.89, 30, 6};
    // RTSP/HTTP/ONVIF/ISAPI module subset (3,233 of 14,035 -> scaled):
    // all plant entries + a filler slice.
    s.focus = {"hik_zero_memcpy_handler", "hik_zero_loop1_handler",
               "hik_zero_loop2_handler",  "hik_zero_url1_entry",
               "hik_zero_url2_entry",     "hik_zero_url3_entry",
               "hik_safe_memcpy_entry",   "hik_safe_loop_handler",
               "hik_safe_strcpy_entry"};
    for (int i = 0; i < 300; ++i) {
      char name[32];
      std::snprintf(name, sizeof(name), "fn_%05x", i);
      s.focus.push_back(name);
    }
    specs.push_back(std::move(s));
  }

  return specs;
}

Result<FirmwareSynthOutput> BuildPaperImage(const PaperImageSpec& spec) {
  return SynthesizeFirmware(spec.firmware);
}

}  // namespace dtaint
