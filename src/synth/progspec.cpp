#include "src/synth/progspec.h"

namespace dtaint {

std::string_view VulnPatternName(VulnPattern pattern) {
  switch (pattern) {
    case VulnPattern::kDirect:
      return "direct";
    case VulnPattern::kWrapper:
      return "wrapper";
    case VulnPattern::kAliasChain:
      return "alias-chain";
    case VulnPattern::kDispatch:
      return "dispatch";
    case VulnPattern::kLoopCopy:
      return "loop-copy";
    case VulnPattern::kCrossCallAlias:
      return "cross-call-alias";
  }
  return "?";
}

}  // namespace dtaint
