// FirmwareSynthesizer: builds a complete binary from a ProgramSpec and
// wraps it (plus auxiliary rootfs files) into a FirmwareImage.
#pragma once

#include <string>

#include "src/firmware/image.h"
#include "src/synth/progspec.h"
#include "src/util/status.h"

namespace dtaint {

/// Builds the binary described by `spec` (plants + fillers + main).
Result<SynthOutput> SynthesizeBinary(const ProgramSpec& spec);

/// Firmware-level description: the program plus vendor metadata.
struct FirmwareSpec {
  ProgramSpec program;
  std::string vendor = "Acme";
  std::string product = "RT-1000";
  std::string version = "1.0";
  uint16_t release_year = 2015;
  Packing packing = Packing::kPlain;
  std::string binary_path = "/bin/httpd";
};

struct FirmwareSynthOutput {
  FirmwareImage image;
  std::vector<PlantedVuln> ground_truth;
};

/// Builds a full firmware image: the synthesized binary at
/// `binary_path` plus a realistic sprinkling of rootfs files.
Result<FirmwareSynthOutput> SynthesizeFirmware(const FirmwareSpec& spec);

}  // namespace dtaint
