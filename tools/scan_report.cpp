// scan_report: fleet summary over one or more NDJSON event streams.
//
//   scan_report [--json] [--top N] events.ndjson [more.ndjson ...]
//
// Aggregates the streams written by `corpus_scan --events-out` /
// `dtaint_cli --events-out` — including truncated ones left by killed
// or crashed workers — into a per-image status table, phase time
// breakdown, top-N hot functions, and incident/degradation counts.
// Markdown by default (drop it into a PR comment or
// $GITHUB_STEP_SUMMARY); --json for machines. A torn final line or
// malformed record is skipped and counted, never fatal; only an
// unreadable file is an error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/obs/scan_report.h"

using namespace dtaint;

int main(int argc, char** argv) {
  bool json = false;
  obs::ScanReportOptions options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      options.top_functions = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: scan_report [--json] [--top N] events.ndjson "
                  "[more.ndjson ...]\n");
      return 0;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "scan_report: no event stream files given "
                         "(--help for usage)\n");
    return 2;
  }
  auto agg = obs::AggregateEventFiles(paths, options);
  if (!agg.ok()) {
    std::fprintf(stderr, "scan_report: %s\n",
                 agg.status().ToString().c_str());
    return 2;
  }
  std::string out = json ? obs::AggregateToJson(*agg)
                         : obs::AggregateToMarkdown(*agg);
  std::fputs(out.c_str(), stdout);
  if (out.empty() || out.back() != '\n') std::fputc('\n', stdout);
  return 0;
}
