// bench_diff — compares two BENCH_*.json documents or trees and gates
// on regressions. The CI bench-regression job runs it against the
// committed baselines in bench/baselines/; locally:
//
//   bench_diff bench/baselines build/bench_out            # whole tree
//   bench_diff BENCH_cache_warm.json fresh.json --all     # one bench
//
// Flags:
//   --threshold X      time-metric regression ratio gate (default 1.5)
//   --noise-floor S    seconds below which times are not gated (0.02)
//   --noise-floor-nanos N  same for `_nanos` metrics (50)
//   --rel-tol T        tolerance for deterministic counts (default 0)
//   --allow-missing    missing runs/metrics become notes, not failures
//   --all              print every row, not just the notable ones
//
// Prints a markdown delta table per bench. Exit codes: 0 = no
// regression (improvements included), 1 = regression / drifted count /
// missing metric, 2 = usage, I/O, or parse error.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/benchdiff.h"
#include "src/util/strings.h"

using namespace dtaint;

namespace {

bool ReadFile(const std::filesystem::path& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// A path names either one document or a tree of BENCH_*.json files;
/// returns filename -> path.
std::map<std::string, std::filesystem::path> CollectDocs(
    const std::filesystem::path& path) {
  std::map<std::string, std::filesystem::path> docs;
  if (std::filesystem::is_directory(path)) {
    for (const auto& entry : std::filesystem::directory_iterator(path)) {
      std::string name = entry.path().filename().string();
      if (entry.is_regular_file() && StartsWith(name, "BENCH_") &&
          name.ends_with(".json")) {
        docs[name] = entry.path();
      }
    }
  } else {
    docs[path.filename().string()] = path;
  }
  return docs;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_diff BASELINE CURRENT [--threshold X] "
               "[--noise-floor S] [--noise-floor-nanos N] [--rel-tol T] "
               "[--allow-missing] [--all]\n"
               "  BASELINE/CURRENT: a BENCH_*.json file or a directory "
               "of them\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  bench::DiffOptions options;
  bool print_all = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      options.time_threshold = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--noise-floor") == 0 && i + 1 < argc) {
      options.noise_floor_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--noise-floor-nanos") == 0 &&
               i + 1 < argc) {
      options.noise_floor_nanos = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--rel-tol") == 0 && i + 1 < argc) {
      options.value_rel_tol = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--allow-missing") == 0) {
      options.allow_missing = true;
    } else if (std::strcmp(argv[i], "--all") == 0) {
      print_all = true;
    } else if (argv[i][0] == '-') {
      return Usage();
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() != 2 || options.time_threshold <= 1.0) {
    return Usage();
  }

  auto baselines = CollectDocs(positional[0]);
  auto currents = CollectDocs(positional[1]);
  if (baselines.empty()) {
    std::fprintf(stderr, "bench_diff: no BENCH_*.json under %s\n",
                 positional[0].c_str());
    return 2;
  }

  // When diffing file-vs-file the filenames may differ; pair them up
  // directly (DiffBenchDocs still insists the bench names match).
  if (baselines.size() == 1 && currents.size() == 1 &&
      baselines.begin()->first != currents.begin()->first &&
      !std::filesystem::is_directory(positional[0]) &&
      !std::filesystem::is_directory(positional[1])) {
    auto doc = currents.begin()->second;
    currents.clear();
    currents[baselines.begin()->first] = doc;
  }

  bool regression = false;
  bool compared_any = false;
  for (const auto& [name, base_path] : baselines) {
    auto cur_it = currents.find(name);
    if (cur_it == currents.end()) {
      std::printf("## %s\n\nmissing from %s%s\n\n", name.c_str(),
                  positional[1].c_str(),
                  options.allow_missing ? " (allowed)" : " — REGRESSION");
      if (!options.allow_missing) regression = true;
      continue;
    }
    std::string base_text, cur_text;
    if (!ReadFile(base_path, &base_text) ||
        !ReadFile(cur_it->second, &cur_text)) {
      std::fprintf(stderr, "bench_diff: cannot read %s\n", name.c_str());
      return 2;
    }
    auto report = bench::DiffBenchJson(base_text, cur_text, options);
    if (!report.ok()) {
      std::fprintf(stderr, "bench_diff: %s: %s\n", name.c_str(),
                   report.status().ToString().c_str());
      return 2;
    }
    compared_any = true;
    std::printf("## %s\n\n%s\n", name.c_str(),
                report->ToMarkdown(!print_all).c_str());
    regression = regression || report->HasRegression();
  }
  for (const auto& [name, path] : currents) {
    if (baselines.find(name) == baselines.end()) {
      std::printf("## %s\n\nnew bench (no baseline yet)\n\n", name.c_str());
    }
  }
  if (!compared_any && !regression) {
    std::fprintf(stderr, "bench_diff: nothing compared\n");
    return 2;
  }
  std::printf("%s\n", regression ? "RESULT: REGRESSION" : "RESULT: ok");
  return regression ? 1 : 0;
}
