# Empty dependencies file for dtaint.
# This may be replaced when dependencies are built.
