file(REMOVE_RECURSE
  "libdtaint.a"
)
