
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/naive_reachability.cpp" "src/CMakeFiles/dtaint.dir/baseline/naive_reachability.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/baseline/naive_reachability.cpp.o.d"
  "/root/repo/src/baseline/worklist_ddg.cpp" "src/CMakeFiles/dtaint.dir/baseline/worklist_ddg.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/baseline/worklist_ddg.cpp.o.d"
  "/root/repo/src/binary/binary.cpp" "src/CMakeFiles/dtaint.dir/binary/binary.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/binary/binary.cpp.o.d"
  "/root/repo/src/binary/loader.cpp" "src/CMakeFiles/dtaint.dir/binary/loader.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/binary/loader.cpp.o.d"
  "/root/repo/src/binary/writer.cpp" "src/CMakeFiles/dtaint.dir/binary/writer.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/binary/writer.cpp.o.d"
  "/root/repo/src/cfg/callgraph.cpp" "src/CMakeFiles/dtaint.dir/cfg/callgraph.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/cfg/callgraph.cpp.o.d"
  "/root/repo/src/cfg/cfg_builder.cpp" "src/CMakeFiles/dtaint.dir/cfg/cfg_builder.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/cfg/cfg_builder.cpp.o.d"
  "/root/repo/src/cfg/function.cpp" "src/CMakeFiles/dtaint.dir/cfg/function.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/cfg/function.cpp.o.d"
  "/root/repo/src/cfg/loops.cpp" "src/CMakeFiles/dtaint.dir/cfg/loops.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/cfg/loops.cpp.o.d"
  "/root/repo/src/core/alias.cpp" "src/CMakeFiles/dtaint.dir/core/alias.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/core/alias.cpp.o.d"
  "/root/repo/src/core/dtaint.cpp" "src/CMakeFiles/dtaint.dir/core/dtaint.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/core/dtaint.cpp.o.d"
  "/root/repo/src/core/interproc.cpp" "src/CMakeFiles/dtaint.dir/core/interproc.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/core/interproc.cpp.o.d"
  "/root/repo/src/core/pathfinder.cpp" "src/CMakeFiles/dtaint.dir/core/pathfinder.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/core/pathfinder.cpp.o.d"
  "/root/repo/src/core/sanitizer.cpp" "src/CMakeFiles/dtaint.dir/core/sanitizer.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/core/sanitizer.cpp.o.d"
  "/root/repo/src/core/sources_sinks.cpp" "src/CMakeFiles/dtaint.dir/core/sources_sinks.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/core/sources_sinks.cpp.o.d"
  "/root/repo/src/core/structsim.cpp" "src/CMakeFiles/dtaint.dir/core/structsim.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/core/structsim.cpp.o.d"
  "/root/repo/src/emu/corpus.cpp" "src/CMakeFiles/dtaint.dir/emu/corpus.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/emu/corpus.cpp.o.d"
  "/root/repo/src/emu/firmadyne_sim.cpp" "src/CMakeFiles/dtaint.dir/emu/firmadyne_sim.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/emu/firmadyne_sim.cpp.o.d"
  "/root/repo/src/firmware/extractor.cpp" "src/CMakeFiles/dtaint.dir/firmware/extractor.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/firmware/extractor.cpp.o.d"
  "/root/repo/src/firmware/image.cpp" "src/CMakeFiles/dtaint.dir/firmware/image.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/firmware/image.cpp.o.d"
  "/root/repo/src/firmware/packer.cpp" "src/CMakeFiles/dtaint.dir/firmware/packer.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/firmware/packer.cpp.o.d"
  "/root/repo/src/ir/block.cpp" "src/CMakeFiles/dtaint.dir/ir/block.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/ir/block.cpp.o.d"
  "/root/repo/src/ir/expr.cpp" "src/CMakeFiles/dtaint.dir/ir/expr.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/ir/expr.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/CMakeFiles/dtaint.dir/ir/printer.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/ir/printer.cpp.o.d"
  "/root/repo/src/ir/stmt.cpp" "src/CMakeFiles/dtaint.dir/ir/stmt.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/ir/stmt.cpp.o.d"
  "/root/repo/src/isa/asm_builder.cpp" "src/CMakeFiles/dtaint.dir/isa/asm_builder.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/isa/asm_builder.cpp.o.d"
  "/root/repo/src/isa/decode.cpp" "src/CMakeFiles/dtaint.dir/isa/decode.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/isa/decode.cpp.o.d"
  "/root/repo/src/isa/encode.cpp" "src/CMakeFiles/dtaint.dir/isa/encode.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/isa/encode.cpp.o.d"
  "/root/repo/src/isa/insn.cpp" "src/CMakeFiles/dtaint.dir/isa/insn.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/isa/insn.cpp.o.d"
  "/root/repo/src/isa/regs.cpp" "src/CMakeFiles/dtaint.dir/isa/regs.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/isa/regs.cpp.o.d"
  "/root/repo/src/lifter/lifter.cpp" "src/CMakeFiles/dtaint.dir/lifter/lifter.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/lifter/lifter.cpp.o.d"
  "/root/repo/src/report/json.cpp" "src/CMakeFiles/dtaint.dir/report/json.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/report/json.cpp.o.d"
  "/root/repo/src/report/scoring.cpp" "src/CMakeFiles/dtaint.dir/report/scoring.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/report/scoring.cpp.o.d"
  "/root/repo/src/report/table.cpp" "src/CMakeFiles/dtaint.dir/report/table.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/report/table.cpp.o.d"
  "/root/repo/src/symexec/defpairs.cpp" "src/CMakeFiles/dtaint.dir/symexec/defpairs.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/symexec/defpairs.cpp.o.d"
  "/root/repo/src/symexec/engine.cpp" "src/CMakeFiles/dtaint.dir/symexec/engine.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/symexec/engine.cpp.o.d"
  "/root/repo/src/symexec/symexpr.cpp" "src/CMakeFiles/dtaint.dir/symexec/symexpr.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/symexec/symexpr.cpp.o.d"
  "/root/repo/src/symexec/symstate.cpp" "src/CMakeFiles/dtaint.dir/symexec/symstate.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/symexec/symstate.cpp.o.d"
  "/root/repo/src/symexec/types.cpp" "src/CMakeFiles/dtaint.dir/symexec/types.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/symexec/types.cpp.o.d"
  "/root/repo/src/synth/codegen.cpp" "src/CMakeFiles/dtaint.dir/synth/codegen.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/synth/codegen.cpp.o.d"
  "/root/repo/src/synth/firmware_synth.cpp" "src/CMakeFiles/dtaint.dir/synth/firmware_synth.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/synth/firmware_synth.cpp.o.d"
  "/root/repo/src/synth/paper_images.cpp" "src/CMakeFiles/dtaint.dir/synth/paper_images.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/synth/paper_images.cpp.o.d"
  "/root/repo/src/synth/progspec.cpp" "src/CMakeFiles/dtaint.dir/synth/progspec.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/synth/progspec.cpp.o.d"
  "/root/repo/src/util/hash.cpp" "src/CMakeFiles/dtaint.dir/util/hash.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/util/hash.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/dtaint.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/status.cpp" "src/CMakeFiles/dtaint.dir/util/status.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/util/status.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/CMakeFiles/dtaint.dir/util/strings.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/util/strings.cpp.o.d"
  "/root/repo/src/vm/vm.cpp" "src/CMakeFiles/dtaint.dir/vm/vm.cpp.o" "gcc" "src/CMakeFiles/dtaint.dir/vm/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
