file(REMOVE_RECURSE
  "CMakeFiles/poc_verify.dir/poc_verify.cpp.o"
  "CMakeFiles/poc_verify.dir/poc_verify.cpp.o.d"
  "poc_verify"
  "poc_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poc_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
