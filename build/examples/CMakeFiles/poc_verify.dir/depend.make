# Empty dependencies file for poc_verify.
# This may be replaced when dependencies are built.
