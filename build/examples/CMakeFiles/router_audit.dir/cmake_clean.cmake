file(REMOVE_RECURSE
  "CMakeFiles/router_audit.dir/router_audit.cpp.o"
  "CMakeFiles/router_audit.dir/router_audit.cpp.o.d"
  "router_audit"
  "router_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
