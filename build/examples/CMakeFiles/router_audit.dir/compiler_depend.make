# Empty compiler generated dependencies file for router_audit.
# This may be replaced when dependencies are built.
