file(REMOVE_RECURSE
  "CMakeFiles/dtaint_cli.dir/dtaint_cli.cpp.o"
  "CMakeFiles/dtaint_cli.dir/dtaint_cli.cpp.o.d"
  "dtaint_cli"
  "dtaint_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtaint_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
