# Empty compiler generated dependencies file for dtaint_cli.
# This may be replaced when dependencies are built.
