# Empty compiler generated dependencies file for emulation_study.
# This may be replaced when dependencies are built.
