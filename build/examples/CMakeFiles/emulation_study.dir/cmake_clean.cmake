file(REMOVE_RECURSE
  "CMakeFiles/emulation_study.dir/emulation_study.cpp.o"
  "CMakeFiles/emulation_study.dir/emulation_study.cpp.o.d"
  "emulation_study"
  "emulation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emulation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
