# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_router_audit "/root/repo/build/examples/router_audit")
set_tests_properties(example_router_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_corpus_scan "/root/repo/build/examples/corpus_scan")
set_tests_properties(example_corpus_scan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heartbleed_demo "/root/repo/build/examples/heartbleed_demo")
set_tests_properties(example_heartbleed_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_poc_verify "/root/repo/build/examples/poc_verify")
set_tests_properties(example_poc_verify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
