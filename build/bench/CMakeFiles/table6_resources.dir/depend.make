# Empty dependencies file for table6_resources.
# This may be replaced when dependencies are built.
