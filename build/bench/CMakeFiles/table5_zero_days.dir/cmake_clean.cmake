file(REMOVE_RECURSE
  "CMakeFiles/table5_zero_days.dir/table5_zero_days.cpp.o"
  "CMakeFiles/table5_zero_days.dir/table5_zero_days.cpp.o.d"
  "table5_zero_days"
  "table5_zero_days.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_zero_days.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
