# Empty compiler generated dependencies file for table5_zero_days.
# This may be replaced when dependencies are built.
