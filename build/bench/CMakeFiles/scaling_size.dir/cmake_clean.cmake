file(REMOVE_RECURSE
  "CMakeFiles/scaling_size.dir/scaling_size.cpp.o"
  "CMakeFiles/scaling_size.dir/scaling_size.cpp.o.d"
  "scaling_size"
  "scaling_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
