# Empty compiler generated dependencies file for scaling_size.
# This may be replaced when dependencies are built.
