# Empty dependencies file for table4_known_vulns.
# This may be replaced when dependencies are built.
