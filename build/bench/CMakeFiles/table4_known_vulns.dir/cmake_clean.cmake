file(REMOVE_RECURSE
  "CMakeFiles/table4_known_vulns.dir/table4_known_vulns.cpp.o"
  "CMakeFiles/table4_known_vulns.dir/table4_known_vulns.cpp.o.d"
  "table4_known_vulns"
  "table4_known_vulns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_known_vulns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
