file(REMOVE_RECURSE
  "CMakeFiles/table3_detection.dir/table3_detection.cpp.o"
  "CMakeFiles/table3_detection.dir/table3_detection.cpp.o.d"
  "table3_detection"
  "table3_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
