# Empty compiler generated dependencies file for table7_time_cost.
# This may be replaced when dependencies are built.
