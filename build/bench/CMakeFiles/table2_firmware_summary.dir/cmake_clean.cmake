file(REMOVE_RECURSE
  "CMakeFiles/table2_firmware_summary.dir/table2_firmware_summary.cpp.o"
  "CMakeFiles/table2_firmware_summary.dir/table2_firmware_summary.cpp.o.d"
  "table2_firmware_summary"
  "table2_firmware_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_firmware_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
