file(REMOVE_RECURSE
  "CMakeFiles/fig1_emulation.dir/fig1_emulation.cpp.o"
  "CMakeFiles/fig1_emulation.dir/fig1_emulation.cpp.o.d"
  "fig1_emulation"
  "fig1_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
