# Empty compiler generated dependencies file for fig1_emulation.
# This may be replaced when dependencies are built.
