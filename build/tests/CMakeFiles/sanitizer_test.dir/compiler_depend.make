# Empty compiler generated dependencies file for sanitizer_test.
# This may be replaced when dependencies are built.
