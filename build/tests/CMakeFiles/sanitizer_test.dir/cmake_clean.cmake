file(REMOVE_RECURSE
  "CMakeFiles/sanitizer_test.dir/sanitizer_test.cpp.o"
  "CMakeFiles/sanitizer_test.dir/sanitizer_test.cpp.o.d"
  "sanitizer_test"
  "sanitizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sanitizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
