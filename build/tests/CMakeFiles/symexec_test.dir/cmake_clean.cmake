file(REMOVE_RECURSE
  "CMakeFiles/symexec_test.dir/symexec_test.cpp.o"
  "CMakeFiles/symexec_test.dir/symexec_test.cpp.o.d"
  "symexec_test"
  "symexec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symexec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
