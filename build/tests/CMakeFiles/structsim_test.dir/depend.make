# Empty dependencies file for structsim_test.
# This may be replaced when dependencies are built.
