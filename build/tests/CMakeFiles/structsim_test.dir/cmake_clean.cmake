file(REMOVE_RECURSE
  "CMakeFiles/structsim_test.dir/structsim_test.cpp.o"
  "CMakeFiles/structsim_test.dir/structsim_test.cpp.o.d"
  "structsim_test"
  "structsim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
