file(REMOVE_RECURSE
  "CMakeFiles/dtaint_test.dir/dtaint_test.cpp.o"
  "CMakeFiles/dtaint_test.dir/dtaint_test.cpp.o.d"
  "dtaint_test"
  "dtaint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtaint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
