# Empty compiler generated dependencies file for dtaint_test.
# This may be replaced when dependencies are built.
