# Empty compiler generated dependencies file for lifter_test.
# This may be replaced when dependencies are built.
