file(REMOVE_RECURSE
  "CMakeFiles/pathfinder_test.dir/pathfinder_test.cpp.o"
  "CMakeFiles/pathfinder_test.dir/pathfinder_test.cpp.o.d"
  "pathfinder_test"
  "pathfinder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathfinder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
