file(REMOVE_RECURSE
  "CMakeFiles/emu_test.dir/emu_test.cpp.o"
  "CMakeFiles/emu_test.dir/emu_test.cpp.o.d"
  "emu_test"
  "emu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
