# Empty dependencies file for symexpr_test.
# This may be replaced when dependencies are built.
