file(REMOVE_RECURSE
  "CMakeFiles/symexpr_test.dir/symexpr_test.cpp.o"
  "CMakeFiles/symexpr_test.dir/symexpr_test.cpp.o.d"
  "symexpr_test"
  "symexpr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symexpr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
