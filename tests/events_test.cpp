// Event stream, flight recorder, and scan_report tests.
//
// Covers the crash-safety contract end to end: every emitted line is
// parseable NDJSON (validated against the repo's own JSON parser),
// per-type event counts are deterministic across identical runs, the
// flight-recorder ring wraps and dumps correctly (from normal context
// and after a real fatal signal in a child process), and scan_report
// produces a correct partial fleet summary from the truncated stream a
// killed corpus_scan worker leaves behind — checked against the ground
// truth of a clean run of the same corpus.
//
// All file outputs land under obs_artifacts/ in the working directory
// so CI can upload them from failing jobs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/dtaint.h"
#include "src/obs/events.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/scan_report.h"
#include "src/obs/trace.h"
#include "src/synth/firmware_synth.h"
#include "src/util/json.h"

namespace dtaint {
namespace {

namespace fs = std::filesystem;

fs::path ArtifactDir() {
  fs::path dir = "obs_artifacts";
  fs::create_directories(dir);
  return dir;
}

std::string ReadAll(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      lines.push_back(text.substr(pos));
      break;
    }
    lines.push_back(text.substr(pos, eol - pos));
    pos = eol + 1;
  }
  return lines;
}

/// Parses every line of a stream file and tallies per-type counts;
/// fails the test on any unparseable line.
std::map<std::string, uint64_t> CountsFromFile(const fs::path& path) {
  std::map<std::string, uint64_t> counts;
  for (const std::string& line : Lines(ReadAll(path))) {
    if (line.empty()) continue;
    auto parsed = ParseJson(line);
    EXPECT_TRUE(parsed.ok()) << "unparseable line: " << line;
    if (!parsed.ok() || !parsed->is_object()) {
      ADD_FAILURE() << "not an object: " << line;
      continue;
    }
    const JsonValue* v = parsed->Find("v");
    const JsonValue* type = parsed->Find("type");
    if (!v || !type) {
      ADD_FAILURE() << "missing envelope: " << line;
      continue;
    }
    EXPECT_EQ(static_cast<int>(v->number()), obs::kEventSchemaVersion);
    ++counts[type->string()];
  }
  return counts;
}

SynthOutput SmallProgram(uint64_t seed = 41) {
  ProgramSpec spec;
  spec.name = "events";
  spec.arch = Arch::kDtArm;
  spec.seed = seed;
  spec.filler_functions = 20;
  PlantSpec p;
  p.id = "e1";
  p.pattern = VulnPattern::kDirect;
  p.source = "getenv";
  p.sink = "system";
  spec.plants.push_back(p);
  PlantSpec q = p;
  q.id = "e2";
  q.pattern = VulnPattern::kWrapper;
  q.source = "recv";
  q.sink = "strcpy";
  spec.plants.push_back(q);
  return std::move(*SynthesizeBinary(spec));
}

/// Runs a full analysis with the global stream open; returns per-type
/// counts parsed back from the file.
std::map<std::string, uint64_t> AnalyzeWithEvents(const fs::path& path,
                                                  size_t* findings) {
  obs::EventStream& events = obs::EventStream::Global();
  EXPECT_TRUE(events.Open(path.string(), "events_test"));
  SynthOutput synth = SmallProgram();
  DTaint detector{DTaintConfig{}};
  auto report = detector.Analyze(synth.binary);
  EXPECT_TRUE(report.ok());
  if (findings && report.ok()) *findings = report->findings.size();
  events.Close("ok");
  return CountsFromFile(path);
}

// ------------------------------------------------------------ event stream

TEST(EventStream, LinesParseAndEnvelopeIsComplete) {
  fs::path path = ArtifactDir() / "stream_basic.ndjson";
  obs::EventStream& events = obs::EventStream::Global();
  ASSERT_TRUE(events.Open(path.string(), "events_test"));
  events.Emit(obs::Event("image_begin")
                  .Str("image", "Acme RT-1")
                  .Str("vendor", "Acme \"quoted\"")
                  .Str("arch", "arm"));
  events.Emit(obs::Event("image_end")
                  .Str("image", "Acme RT-1")
                  .Str("status", "ok")
                  .Bool("complete", true)
                  .Num("functions", 12)
                  .Num("findings", 2)
                  .Double("duration_ms", 1.25));
  events.EmitHeartbeat(1, 8, 12, 3.5);
  events.Close("ok");
  EXPECT_FALSE(events.enabled());

  std::vector<std::string> lines = Lines(ReadAll(path));
  ASSERT_EQ(lines.size(), 5u);  // begin, 2 events, heartbeat, end
  auto first = ParseJson(lines.front());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->Find("type")->string(), "stream_begin");
  EXPECT_EQ(first->Find("tool")->string(), "events_test");
  EXPECT_NE(first->Find("pid"), nullptr);
  auto last = ParseJson(lines.back());
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->Find("type")->string(), "stream_end");
  EXPECT_EQ(last->Find("outcome")->string(), "ok");
  EXPECT_EQ(static_cast<uint64_t>(last->Find("events")->number()), 5u);
  for (const std::string& line : lines) {
    auto parsed = ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_EQ(static_cast<int>(parsed->Find("v")->number()),
              obs::kEventSchemaVersion);
    EXPECT_NE(parsed->Find("ts_ms"), nullptr);
    EXPECT_NE(parsed->Find("tid"), nullptr);
  }
  auto heartbeat = ParseJson(lines[3]);
  ASSERT_TRUE(heartbeat.ok());
  EXPECT_EQ(heartbeat->Find("type")->string(), "heartbeat");
  EXPECT_EQ(static_cast<int>(heartbeat->Find("images_done")->number()), 1);
  EXPECT_EQ(static_cast<int>(heartbeat->Find("images_total")->number()), 8);
}

TEST(EventStream, PipelineEmitsDeterministicCountsAcrossRuns) {
  size_t findings1 = 0, findings2 = 0;
  auto counts1 =
      AnalyzeWithEvents(ArtifactDir() / "pipeline_run1.ndjson", &findings1);
  auto counts2 =
      AnalyzeWithEvents(ArtifactDir() / "pipeline_run2.ndjson", &findings2);
  EXPECT_EQ(counts1, counts2);
  EXPECT_EQ(findings1, findings2);

  // The pipeline's full vocabulary shows up.
  EXPECT_EQ(counts1["stream_begin"], 1u);
  EXPECT_EQ(counts1["stream_end"], 1u);
  EXPECT_EQ(counts1["binary_begin"], 1u);
  EXPECT_EQ(counts1["binary_end"], 1u);
  EXPECT_EQ(counts1["alias_mode"], 1u);
  EXPECT_GE(counts1["phase_begin"], 4u);
  EXPECT_EQ(counts1["phase_begin"], counts1["phase_end"]);
  EXPECT_GT(counts1["function_begin"], 0u);
  EXPECT_EQ(counts1["function_begin"], counts1["function_end"]);
  EXPECT_EQ(counts1["finding"], findings1);
  EXPECT_GT(findings1, 0u);
}

TEST(EventStream, DisabledStreamEmitsNothingAndCountsZero) {
  obs::EventStream stream;
  EXPECT_FALSE(stream.enabled());
  stream.Emit(obs::Event("finding").Str("sink", "system"));
  stream.EmitHeartbeat(0, 0, 0, 0.0);
  EXPECT_EQ(stream.EventCount(), 0u);
  stream.Close("ok");  // safe when never opened
}

// --------------------------------------------------------- flight recorder

TEST(FlightRecorder, RingWrapsAndDumpsOldestFirst) {
  fs::path path = ArtifactDir() / "ring_wrap.flight.ndjson";
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  recorder.Arm(path.string());
  constexpr size_t kTotal = obs::FlightRecorder::kSlots + 50;
  for (size_t i = 0; i < kTotal; ++i) {
    recorder.Record("{\"type\":\"log\",\"seq\":" + std::to_string(i) + "}");
  }
  EXPECT_EQ(recorder.recorded(), kTotal);
  ASSERT_TRUE(recorder.Dump());
  recorder.Disarm();

  std::vector<std::string> lines = Lines(ReadAll(path));
  ASSERT_EQ(lines.size(), obs::FlightRecorder::kSlots);
  // Oldest surviving line is kTotal - kSlots; newest is kTotal - 1.
  auto first = ParseJson(lines.front());
  auto last = ParseJson(lines.back());
  ASSERT_TRUE(first.ok() && last.ok());
  EXPECT_EQ(static_cast<size_t>(first->Find("seq")->number()),
            kTotal - obs::FlightRecorder::kSlots);
  EXPECT_EQ(static_cast<size_t>(last->Find("seq")->number()), kTotal - 1);
}

TEST(FlightRecorder, LongLinesAreTruncatedNotCorrupting) {
  fs::path path = ArtifactDir() / "ring_trunc.flight.ndjson";
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  recorder.Arm(path.string());
  recorder.Record(std::string(obs::FlightRecorder::kSlotBytes * 2, 'x'));
  recorder.Record("short");
  ASSERT_TRUE(recorder.Dump());
  recorder.Disarm();
  std::vector<std::string> lines = Lines(ReadAll(path));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_LE(lines[0].size(), obs::FlightRecorder::kSlotBytes);
  EXPECT_EQ(lines[1], "short");
}

TEST(FlightRecorder, LogRecordsAreTeedIntoRecorderNotMainStream) {
  fs::path path = ArtifactDir() / "log_tee.ndjson";
  obs::EventStream& events = obs::EventStream::Global();
  ASSERT_TRUE(events.Open(path.string(), "events_test"));
  obs::LogLevel saved = obs::GetLogLevel();
  obs::SetLogLevel(obs::LogLevel::kWarn);
  DTAINT_LOG(obs::LogLevel::kWarn, "tee_test", "flight %d", 42);
  obs::SetLogLevel(saved);
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  ASSERT_TRUE(recorder.Dump());
  std::string flight = ReadAll(path.string() + ".flight.ndjson");
  EXPECT_NE(flight.find("\"type\":\"log\""), std::string::npos);
  EXPECT_NE(flight.find("flight 42"), std::string::npos);
  events.Close("ok");
  // Log records go to the recorder only — the durable stream carries
  // scan events, not chatter.
  EXPECT_EQ(ReadAll(path).find("tee_test"), std::string::npos);
}

TEST(FlightRecorder, IncidentEmissionFlushesFlightFile) {
  fs::path path = ArtifactDir() / "incident_flush.ndjson";
  fs::path flight = path.string() + ".flight.ndjson";
  fs::remove(flight);
  obs::EventStream& events = obs::EventStream::Global();
  ASSERT_TRUE(events.Open(path.string(), "events_test"));
  Incident incident;
  incident.binary = "acme.bin";
  incident.phase = "summary";
  incident.detail = "parse_uri";
  incident.status = OutOfRange("budget exhausted");
  incident.budget.exhausted_by = BudgetExhaustion::kSteps;
  incident.budget.steps = 1000;
  obs::EmitIncident(events, incident);
  events.Close("ok");

  ASSERT_TRUE(fs::exists(flight));
  std::string main_stream = ReadAll(path);
  EXPECT_NE(main_stream.find("\"type\":\"incident\""), std::string::npos);
  EXPECT_NE(main_stream.find("\"cause\":"), std::string::npos);
  for (const std::string& line : Lines(ReadAll(flight))) {
    if (line.empty()) continue;
    EXPECT_TRUE(ParseJson(line).ok()) << line;
  }
}

// -------------------------------------------------------------- aggregation

constexpr const char* kCompleteStream =
    R"({"v":1,"type":"stream_begin","ts_ms":0,"tid":0,"tool":"corpus_scan","pid":7,"unix_ms":5}
{"v":1,"type":"corpus_begin","ts_ms":0.1,"tid":0,"images":2}
{"v":1,"type":"image_begin","ts_ms":1,"tid":0,"image":"A 1","vendor":"A","product":"1","arch":"arm","packing":"plain"}
{"v":1,"type":"phase_end","ts_ms":2,"tid":0,"phase":"lift","duration_ms":1.5}
{"v":1,"type":"function_end","ts_ms":3,"tid":1,"function":"main","micros":1500,"cached":false,"degraded":false}
{"v":1,"type":"function_end","ts_ms":4,"tid":1,"function":"helper","micros":500,"cached":true,"degraded":true}
{"v":1,"type":"finding","ts_ms":5,"tid":0,"class":"command_injection","source":"getenv","sink":"system"}
{"v":1,"type":"image_end","ts_ms":6,"tid":0,"image":"A 1","status":"ok","complete":true,"functions":12,"findings":1,"duration_ms":5.0}
{"v":1,"type":"image_begin","ts_ms":7,"tid":0,"image":"B 2","vendor":"B","product":"2","arch":"mips","packing":"encrypted"}
{"v":1,"type":"image_end","ts_ms":8,"tid":0,"image":"B 2","status":"unextractable","complete":false,"functions":0,"findings":0,"duration_ms":0.5}
{"v":1,"type":"heartbeat","ts_ms":9,"tid":2,"images_done":2,"images_total":2,"functions_done":12,"functions_per_sec":4.0,"rss_mb":31.5}
{"v":1,"type":"corpus_end","ts_ms":10,"tid":0,"images":2,"complete":1}
{"v":1,"type":"stream_end","ts_ms":11,"tid":0,"outcome":"ok","events":13}
)";

// Killed worker: no stream_end, an incident, and a torn final line.
constexpr const char* kTruncatedStream =
    R"({"v":1,"type":"stream_begin","ts_ms":0,"tid":0,"tool":"corpus_scan","pid":9,"unix_ms":6}
{"v":1,"type":"image_begin","ts_ms":1,"tid":0,"image":"C 3","vendor":"C","product":"3","arch":"arm","packing":"xor"}
{"v":1,"type":"incident","ts_ms":2,"tid":0,"binary":"C 3","phase":"extract","detail":"C 3","status":"CORRUPT_DATA"}
not json at all
{"v":1,"type":"image_begin","ts_ms":3,"tid":0,"image":"D 4","ven)";

TEST(ScanReport, AggregatesCompleteAndTruncatedStreams) {
  obs::ScanAggregate agg;
  obs::AggregateEvents(kCompleteStream, &agg);
  obs::AggregateEvents(kTruncatedStream, &agg);
  obs::FinalizeAggregate(&agg, obs::ScanReportOptions{});

  EXPECT_EQ(agg.streams, 2u);
  EXPECT_EQ(agg.truncated_streams, 1u);
  // "not json" + the torn final line.
  EXPECT_EQ(agg.malformed_lines, 2u);
  EXPECT_EQ(agg.events, 16u);

  ASSERT_EQ(agg.images.size(), 3u);
  EXPECT_EQ(agg.images[0].image, "A 1");
  EXPECT_EQ(agg.images[0].status, "ok");
  EXPECT_TRUE(agg.images[0].complete);
  EXPECT_EQ(agg.images[0].functions, 12u);
  EXPECT_EQ(agg.images[1].status, "unextractable");
  // The killed worker's in-progress image: begin without end.
  EXPECT_EQ(agg.images[2].image, "C 3");
  EXPECT_EQ(agg.images[2].status, "in_flight");

  EXPECT_EQ(agg.findings, 1u);
  EXPECT_EQ(agg.incidents, 1u);
  EXPECT_EQ(agg.incidents_by_phase.at("extract"), 1u);
  EXPECT_EQ(agg.degraded_functions, 1u);
  EXPECT_EQ(agg.heartbeats, 1u);
  EXPECT_EQ(agg.last_images_done, 2u);

  ASSERT_EQ(agg.functions.size(), 2u);
  EXPECT_EQ(agg.functions[0].function, "main");  // 1.5ms > 0.5ms
  EXPECT_EQ(agg.functions[1].cached, 1u);

  ASSERT_EQ(agg.phases.size(), 1u);
  EXPECT_EQ(agg.phases[0].phase, "lift");
  EXPECT_DOUBLE_EQ(agg.phases[0].total_ms, 1.5);
}

TEST(ScanReport, MarkdownAndJsonRender) {
  obs::ScanAggregate agg;
  obs::AggregateEvents(kCompleteStream, &agg);
  obs::AggregateEvents(kTruncatedStream, &agg);
  obs::FinalizeAggregate(&agg, obs::ScanReportOptions{});

  std::string md = obs::AggregateToMarkdown(agg);
  EXPECT_NE(md.find("# Fleet scan report"), std::string::npos);
  EXPECT_NE(md.find("| A 1 |"), std::string::npos);
  EXPECT_NE(md.find("in_flight"), std::string::npos);
  EXPECT_NE(md.find("## Phase time"), std::string::npos);

  std::string json = obs::AggregateToJson(agg);
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(static_cast<int>(parsed->Find("truncated_streams")->number()), 1);
  EXPECT_EQ(parsed->Find("images")->array().size(), 3u);
  EXPECT_EQ(parsed->Find("images")->array()[2].Find("status")->string(),
            "in_flight");
  EXPECT_EQ(static_cast<int>(parsed->Find("malformed_lines")->number()), 2);
}

TEST(ScanReport, TopFunctionsTruncationIsDeterministic) {
  obs::ScanAggregate agg;
  std::string stream =
      "{\"v\":1,\"type\":\"stream_begin\",\"ts_ms\":0,\"tid\":0}\n";
  for (int i = 0; i < 20; ++i) {
    stream += "{\"v\":1,\"type\":\"function_end\",\"ts_ms\":1,\"tid\":0,"
              "\"function\":\"fn" +
              std::to_string(i) + "\",\"micros\":" +
              std::to_string(1000 * (i + 1)) + ",\"cached\":false}\n";
  }
  stream += "{\"v\":1,\"type\":\"stream_end\",\"ts_ms\":2,\"tid\":0}\n";
  obs::AggregateEvents(stream, &agg);
  obs::ScanReportOptions options;
  options.top_functions = 5;
  obs::FinalizeAggregate(&agg, options);
  ASSERT_EQ(agg.functions.size(), 5u);
  EXPECT_EQ(agg.functions[0].function, "fn19");  // most expensive first
  EXPECT_EQ(agg.functions[4].function, "fn15");
}

// ------------------------------------------------------- kill-mid-scan oracle

/// Path of the corpus_scan binary, provided by CTest via the
/// DTAINT_CORPUS_SCAN_BIN environment property.
const char* CorpusScanBin() { return std::getenv("DTAINT_CORPUS_SCAN_BIN"); }

TEST(KillMidScan, TruncatedStreamYieldsCorrectPartialFleetSummary) {
  const char* bin = CorpusScanBin();
  if (!bin) GTEST_SKIP() << "DTAINT_CORPUS_SCAN_BIN not set";
  fs::path dir = ArtifactDir();
  fs::path clean = dir / "kill_clean.ndjson";
  fs::path crashed = dir / "kill_crashed.ndjson";
  fs::path flight = dir / "kill_crashed.ndjson.flight.ndjson";
  fs::remove(flight);

  // Ground truth: the same corpus scanned to completion. Heartbeats
  // off so both event streams are fully deterministic.
  std::string base = std::string("\"") + bin +
                     "\" --heartbeat-ms 0 --events-out ";
  int rc_clean =
      std::system((base + "\"" + clean.string() + "\" > /dev/null").c_str());
  ASSERT_NE(rc_clean, -1);

  // Crash the worker on the third image (the first two D-Link images
  // complete first; the corpus order is deterministic).
  ::setenv("DTAINT_FAULTS", "crash@Netgear R7000", 1);
  int rc_crash = std::system(
      (base + "\"" + crashed.string() + "\" > /dev/null 2>&1").c_str());
  ::unsetenv("DTAINT_FAULTS");
  EXPECT_NE(rc_crash, 0) << "crash fault should have killed the worker";

  // The clean stream terminates, the crashed one does not.
  auto clean_agg = obs::AggregateEventFiles({clean.string()});
  ASSERT_TRUE(clean_agg.ok());
  EXPECT_EQ(clean_agg->truncated_streams, 0u);
  EXPECT_EQ(clean_agg->malformed_lines, 0u);

  auto crash_agg = obs::AggregateEventFiles({crashed.string()});
  ASSERT_TRUE(crash_agg.ok());
  EXPECT_EQ(crash_agg->streams, 1u);
  EXPECT_EQ(crash_agg->truncated_streams, 1u);

  // Every image that finished before the crash reports exactly the
  // clean run's outcome; the in-progress one is flagged in_flight.
  ASSERT_EQ(crash_agg->images.size(), 3u);
  ASSERT_GE(clean_agg->images.size(), 3u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(crash_agg->images[i].image, clean_agg->images[i].image);
    EXPECT_EQ(crash_agg->images[i].status, clean_agg->images[i].status);
    EXPECT_EQ(crash_agg->images[i].complete, clean_agg->images[i].complete);
    EXPECT_EQ(crash_agg->images[i].functions,
              clean_agg->images[i].functions);
    EXPECT_EQ(crash_agg->images[i].findings, clean_agg->images[i].findings);
  }
  EXPECT_EQ(crash_agg->images[2].image, "Netgear R7000");
  EXPECT_EQ(crash_agg->images[2].status, "in_flight");

  // The SIGABRT hook dumped the flight recorder; every line of the
  // dump is valid NDJSON and the tail matches the main stream's tail.
  ASSERT_TRUE(fs::exists(flight));
  std::vector<std::string> flight_lines = Lines(ReadAll(flight));
  ASSERT_FALSE(flight_lines.empty());
  size_t parseable = 0;
  for (const std::string& line : flight_lines) {
    if (line.empty()) continue;
    if (ParseJson(line).ok()) ++parseable;
  }
  EXPECT_EQ(parseable, flight_lines.size());
  EXPECT_NE(ReadAll(flight).find("Netgear R7000"), std::string::npos);

  // A fleet report over both workers' streams still renders.
  // A fleet report over both workers' streams still renders. The same
  // image completed in the clean worker, so its rollup is no longer
  // in_flight — the truncation shows up as stream health instead.
  auto fleet =
      obs::AggregateEventFiles({clean.string(), crashed.string()});
  ASSERT_TRUE(fleet.ok());
  EXPECT_EQ(fleet->streams, 2u);
  EXPECT_EQ(fleet->truncated_streams, 1u);
  std::string md = obs::AggregateToMarkdown(*fleet);
  EXPECT_NE(md.find("(1 truncated)"), std::string::npos);
  // The crashed worker's own stream does report the in-flight image.
  std::string solo = obs::AggregateToMarkdown(*crash_agg);
  EXPECT_NE(solo.find("in_flight"), std::string::npos);
}

// ----------------------------------------------------------- trace streaming

TEST(TraceStreaming, UnfinishedStreamRecoversWithSingleBracket) {
  fs::path path = ArtifactDir() / "trace_stream.json";
  obs::Tracer tracer;
  ASSERT_TRUE(tracer.StreamTo(path.string()));
  tracer.RecordComplete("phase", "lift", 1000, 2000);
  tracer.RecordComplete("phase", "summary", 3000, 4000);
  EXPECT_EQ(tracer.EventCount(), 2u);

  // Simulate the crash: no FinishStream. The recovery contract is
  // "append one ']'".
  std::string torn = ReadAll(path);
  auto recovered = ParseJson(torn + "]");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_TRUE(recovered->is_array());
  ASSERT_EQ(recovered->array().size(), 2u);
  EXPECT_EQ(recovered->array()[0].Find("name")->string(), "lift");
  EXPECT_EQ(recovered->array()[1].Find("name")->string(), "summary");

  // Finishing normally yields a valid array with no repair needed.
  ASSERT_TRUE(tracer.FinishStream());
  auto finished = ParseJson(ReadAll(path));
  ASSERT_TRUE(finished.ok());
  EXPECT_EQ(finished->array().size(), 2u);
}

TEST(TraceStreaming, ZeroEventCrashRecoversToEmptyArray) {
  fs::path path = ArtifactDir() / "trace_empty.json";
  obs::Tracer tracer;
  ASSERT_TRUE(tracer.StreamTo(path.string()));
  std::string torn = ReadAll(path);
  auto recovered = ParseJson(torn + "]");
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->is_array());
  EXPECT_TRUE(recovered->array().empty());
  ASSERT_TRUE(tracer.FinishStream());
}

}  // namespace
}  // namespace dtaint
