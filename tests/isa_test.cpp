#include <gtest/gtest.h>

#include "src/isa/asm_builder.h"
#include "src/isa/decode.h"
#include "src/isa/encode.h"

namespace dtaint {
namespace {

TEST(Encode, RTypeFields) {
  auto word = Encode({Op::kAddR, 1, 2, 3, 0});
  ASSERT_TRUE(word.ok());
  EXPECT_EQ(*word >> 24, static_cast<uint32_t>(Op::kAddR));
  EXPECT_EQ((*word >> 20) & 0xF, 1u);
  EXPECT_EQ((*word >> 16) & 0xF, 2u);
  EXPECT_EQ((*word >> 12) & 0xF, 3u);
}

TEST(Encode, ITypeSignedImm) {
  auto word = Encode({Op::kAddI, 1, 2, 0, -5});
  ASSERT_TRUE(word.ok());
  auto back = Decode(*word);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->imm, -5);
}

TEST(Encode, Imm16OutOfRangeFails) {
  EXPECT_FALSE(Encode({Op::kAddI, 1, 2, 0, 40000}).ok());
  EXPECT_FALSE(Encode({Op::kAddI, 1, 2, 0, -40000}).ok());
}

TEST(Encode, Imm24Branch) {
  auto word = Encode({Op::kB, 0, 0, 0, -100});
  ASSERT_TRUE(word.ok());
  auto back = Decode(*word);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->imm, -100);
}

TEST(Encode, Imm24OutOfRangeFails) {
  EXPECT_FALSE(Encode({Op::kB, 0, 0, 0, 1 << 23}).ok());
}

TEST(Encode, MovHiUnsignedImm) {
  EXPECT_TRUE(Encode({Op::kMovHi, 1, 0, 0, 0xFFFF}).ok());
  EXPECT_FALSE(Encode({Op::kMovHi, 1, 0, 0, -1}).ok());
  EXPECT_FALSE(Encode({Op::kMovHi, 1, 0, 0, 0x10000}).ok());
}

TEST(Encode, BadRegisterFails) {
  Insn insn{Op::kMovR, 16, 0, 0, 0};
  EXPECT_FALSE(Encode(insn).ok());
}

TEST(Encode, InvalidOpcodeFails) {
  EXPECT_FALSE(Encode({Op::kInvalid, 0, 0, 0, 0}).ok());
}

TEST(Decode, UnknownOpcodeFails) {
  EXPECT_FALSE(Decode(0xFF000000).ok());
  EXPECT_FALSE(Decode(0x00000000).ok());
  EXPECT_FALSE(IsValidOpcode(0xAB000000));
  EXPECT_TRUE(IsValidOpcode(*Encode({Op::kNop, 0, 0, 0, 0})));
}

TEST(Format, Classification) {
  EXPECT_EQ(FormatOf(Op::kMovR), OpFormat::kR);
  EXPECT_EQ(FormatOf(Op::kMovI), OpFormat::kI);
  EXPECT_EQ(FormatOf(Op::kBl), OpFormat::kB);
  EXPECT_EQ(FormatOf(Op::kRet), OpFormat::kNone);
  EXPECT_EQ(FormatOf(Op::kLdrWR), OpFormat::kR);
}

TEST(Format, Terminators) {
  EXPECT_TRUE(IsBlockTerminator(Op::kB));
  EXPECT_TRUE(IsBlockTerminator(Op::kBeq));
  EXPECT_TRUE(IsBlockTerminator(Op::kRet));
  EXPECT_FALSE(IsBlockTerminator(Op::kBl));  // calls fall through
  EXPECT_FALSE(IsBlockTerminator(Op::kAddR));
  EXPECT_TRUE(IsCondBranch(Op::kBgt));
  EXPECT_FALSE(IsCondBranch(Op::kB));
}

TEST(Disasm, RendersOperands) {
  Insn ldr{Op::kLdrW, 1, 5, 0, 0x4C};
  EXPECT_EQ(ldr.ToString(Arch::kDtArm), "ldr r1, [r5, #76]");
  Insn bl{Op::kBl, 0, 0, 0, 3};
  EXPECT_EQ(bl.ToString(Arch::kDtArm), "bl #+12");
  Insn cmp{Op::kCmpI, 0, 4, 0, 8};
  EXPECT_EQ(cmp.ToString(Arch::kDtMips), "cmp a0, #8");
}

TEST(Regs, Names) {
  EXPECT_EQ(RegName(Arch::kDtArm, 13), "sp");
  EXPECT_EQ(RegName(Arch::kDtArm, 14), "lr");
  EXPECT_EQ(RegName(Arch::kDtArm, 0), "r0");
  EXPECT_EQ(RegName(Arch::kDtMips, 4), "a0");
  EXPECT_EQ(RegName(Arch::kDtMips, 2), "v0");
}

TEST(Regs, Conventions) {
  const CallingConvention& arm = ConventionFor(Arch::kDtArm);
  EXPECT_EQ(arm.ArgReg(0), 0);
  EXPECT_EQ(arm.ArgReg(3), 3);
  EXPECT_EQ(arm.ArgReg(4), -1);  // stack-passed
  EXPECT_EQ(arm.ret_reg, 0);
  EXPECT_EQ(arm.ArgIndexOfReg(2), 2);
  EXPECT_EQ(arm.ArgIndexOfReg(7), -1);
  EXPECT_EQ(arm.StackArgOffset(4), 0);
  EXPECT_EQ(arm.StackArgOffset(6), 8);

  const CallingConvention& mips = ConventionFor(Arch::kDtMips);
  EXPECT_EQ(mips.ArgReg(0), 4);
  EXPECT_EQ(mips.ret_reg, 2);
}

TEST(Regs, Endianness) {
  uint8_t buf[4];
  WriteWord(Arch::kDtArm, buf, 0x11223344);
  EXPECT_EQ(buf[0], 0x44);  // little-endian
  EXPECT_EQ(ReadWord(Arch::kDtArm, buf), 0x11223344u);
  WriteWord(Arch::kDtMips, buf, 0x11223344);
  EXPECT_EQ(buf[0], 0x11);  // big-endian
  EXPECT_EQ(ReadWord(Arch::kDtMips, buf), 0x11223344u);
}

TEST(AsmBuilder, BackwardBranchResolves) {
  FnBuilder b("f");
  b.Label("top");
  b.AddI(1, 1, 1);
  b.CmpI(1, 10);
  b.Blt("top");
  b.Ret();
  auto fn = std::move(b).Finish();
  ASSERT_TRUE(fn.ok());
  // blt is insn 2; target insn 0; offset = 0 - (2+1) = -3.
  EXPECT_EQ(fn->insns[2].imm, -3);
}

TEST(AsmBuilder, ForwardBranchResolves) {
  FnBuilder b("f");
  b.CmpI(1, 0);
  b.Beq("end");
  b.AddI(1, 1, 1);
  b.Label("end");
  b.Ret();
  auto fn = std::move(b).Finish();
  ASSERT_TRUE(fn.ok());
  EXPECT_EQ(fn->insns[1].imm, 1);  // skip one instruction
}

TEST(AsmBuilder, UndefinedLabelFails) {
  FnBuilder b("f");
  b.B("nowhere");
  auto fn = std::move(b).Finish();
  EXPECT_FALSE(fn.ok());
  EXPECT_EQ(fn.status().code(), StatusCode::kInvalidArgument);
}

TEST(AsmBuilder, CallsStaySymbolic) {
  FnBuilder b("f");
  b.Call("memcpy");
  b.Ret();
  auto fn = std::move(b).Finish();
  ASSERT_TRUE(fn.ok());
  ASSERT_EQ(fn->call_fixups.size(), 1u);
  EXPECT_EQ(fn->call_fixups[0].target, "memcpy");
  EXPECT_EQ(fn->call_fixups[0].insn_index, 0u);
}

TEST(AsmBuilder, MovConstSmall) {
  FnBuilder b("f");
  b.MovConst(1, 42);
  EXPECT_EQ(b.size(), 1u);  // one MovI suffices
}

TEST(AsmBuilder, MovConstLargeUsesMovHi) {
  FnBuilder b("f");
  b.MovConst(1, 0x00800010);
  b.Ret();
  auto fn = std::move(b).Finish();
  ASSERT_TRUE(fn.ok());
  ASSERT_EQ(fn->insns.size(), 3u);
  EXPECT_EQ(fn->insns[0].op, Op::kMovI);
  EXPECT_EQ(fn->insns[1].op, Op::kMovHi);
  EXPECT_EQ(fn->insns[1].imm, 0x80);
}

TEST(AsmBuilder, MovConstNegativePattern) {
  // 0xFFFF8000 sign-extends from the low half alone: no MovHi needed.
  FnBuilder b("f");
  b.MovConst(1, 0xFFFF8000);
  EXPECT_EQ(b.size(), 1u);
}

}  // namespace
}  // namespace dtaint
