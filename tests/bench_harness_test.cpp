// Tests for the benchmark telemetry harness (src/obs/bench.h) and the
// BENCH document comparison engine (src/obs/benchdiff.h): schema
// round-trip through the in-repo JSON parser, median-of-N determinism
// under a scripted clock, per-rep metrics isolation, environment-block
// completeness, and the bench_diff gate semantics (regression /
// improvement / missing metric / noise floor / count drift).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/bench.h"
#include "src/obs/benchdiff.h"
#include "src/obs/metrics.h"
#include "src/util/json.h"

namespace dtaint::bench {
namespace {

/// Clock stub: each call pops the next scripted timestamp (the harness
/// reads it twice per rep, at rep start and rep end).
class ScriptedClock {
 public:
  explicit ScriptedClock(std::vector<double> times)
      : times_(std::move(times)) {}
  double operator()() {
    double t = times_.at(next_);
    ++next_;
    return t;
  }

 private:
  std::vector<double> times_;
  size_t next_ = 0;
};

// ---- schema round-trip -----------------------------------------------------

TEST(BenchHarness, JsonSchemaRoundTrip) {
  Harness harness("demo");
  obs::MetricsRegistry registry;
  harness.SetRegistryForTest(&registry);
  // Start=0, end=0.25: one rep with a deterministic quarter-second.
  harness.SetClockForTest(ScriptedClock({0.0, 0.25}));

  harness.Note("unit test");
  harness.Run("r1", [&](Rep& rep) {
    registry.counter("test.count").Add(3);
    rep.Value("findings", 7.0);
  });
  harness.AddExternalRun("micro", 1.5, {{"real_nanos", 42.0}});

  auto doc = ParseJson(harness.ToJson(true));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  EXPECT_EQ(static_cast<int>(doc->Find("schema_version")->number()),
            kBenchSchemaVersion);
  EXPECT_EQ(doc->Find("bench")->string(), "demo");
  EXPECT_TRUE(doc->Find("ok")->boolean());
  ASSERT_TRUE(doc->Find("notes")->is_array());
  EXPECT_EQ(doc->Find("notes")->array().at(0).string(), "unit test");

  const JsonValue* runs = doc->Find("runs");
  ASSERT_TRUE(runs && runs->is_array());
  ASSERT_EQ(runs->array().size(), 2u);

  const JsonValue& r1 = runs->array()[0];
  EXPECT_EQ(r1.Find("name")->string(), "r1");
  EXPECT_EQ(r1.Find("reps")->number(), 1.0);
  EXPECT_EQ(r1.Find("median_key")->string(), "wall_seconds");
  EXPECT_DOUBLE_EQ(r1.Find("wall_seconds")->number(), 0.25);
  EXPECT_DOUBLE_EQ(r1.Find("values")->Find("findings")->number(), 7.0);
  // The per-rep metrics delta rides along inside the run.
  EXPECT_EQ(r1.Find("metrics")->Find("counters")->Find("test.count")
                ->number(),
            3.0);

  const JsonValue& micro = runs->array()[1];
  EXPECT_EQ(micro.Find("name")->string(), "micro");
  EXPECT_DOUBLE_EQ(micro.Find("wall_seconds")->number(), 1.5);
  EXPECT_DOUBLE_EQ(micro.Find("values")->Find("real_nanos")->number(),
                   42.0);
}

TEST(BenchHarness, EnvBlockIsComplete) {
  EnvBlock env = CaptureEnv();
  EXPECT_FALSE(env.git_sha.empty());
  EXPECT_FALSE(env.compiler.empty());
  EXPECT_FALSE(env.os.empty());
  EXPECT_GE(env.cpu_count, 1u);

  // And the serialized document carries every env key.
  Harness harness("envtest");
  obs::MetricsRegistry registry;
  harness.SetRegistryForTest(&registry);
  auto doc = ParseJson(harness.ToJson(true));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* env_obj = doc->Find("env");
  ASSERT_TRUE(env_obj && env_obj->is_object());
  for (const char* key : {"git_sha", "compiler", "compiler_flags",
                          "build_type", "os", "cpu_count", "env"}) {
    EXPECT_NE(env_obj->Find(key), nullptr) << "missing env key " << key;
  }
}

// ---- median selection ------------------------------------------------------

TEST(BenchHarness, MedianOfNByWallClockIsDeterministic) {
  Harness harness("median");
  obs::MetricsRegistry registry;
  harness.SetRegistryForTest(&registry);
  // Three reps with walls 5, 1, 3 — median 3, min 1, max 5.
  harness.SetClockForTest(ScriptedClock({0, 5, 10, 11, 20, 23}));

  RunOptions opts;
  opts.reps = 3;
  const RunResult& result = harness.Run("r", opts, [](Rep&) {});
  EXPECT_DOUBLE_EQ(result.wall_seconds, 3.0);
  EXPECT_DOUBLE_EQ(result.wall_min, 1.0);
  EXPECT_DOUBLE_EQ(result.wall_max, 5.0);
}

TEST(BenchHarness, MedianByDesignatedKeyPicksWholeRep) {
  Harness harness("median");
  obs::MetricsRegistry registry;
  harness.SetRegistryForTest(&registry);
  harness.SetClockForTest(ScriptedClock({0, 1, 2, 3, 4, 5}));

  RunOptions opts;
  opts.reps = 3;
  opts.median_key = "score";
  int call = 0;
  const double scores[] = {10.0, 30.0, 20.0};
  const RunResult& result = harness.Run("r", opts, [&](Rep& rep) {
    rep.Value("score", scores[call]);
    rep.Value("probe", static_cast<double>(call));
    ++call;
  });
  // Median by score is the third rep (20) — and the result must carry
  // that rep's values wholesale, not a mix.
  EXPECT_DOUBLE_EQ(result.values.at("score"), 20.0);
  EXPECT_DOUBLE_EQ(result.values.at("probe"), 2.0);
}

TEST(BenchHarness, TiesResolveToStableOrder) {
  Harness harness("ties");
  obs::MetricsRegistry registry;
  harness.SetRegistryForTest(&registry);
  // All three reps take exactly 1s: stable sort keeps rep order, so
  // the median is rep index 1 every time.
  harness.SetClockForTest(ScriptedClock({0, 1, 2, 3, 4, 5}));
  RunOptions opts;
  opts.reps = 3;
  int call = 0;
  const RunResult& result = harness.Run("r", opts, [&](Rep& rep) {
    rep.Value("probe", static_cast<double>(call));
    ++call;
  });
  EXPECT_DOUBLE_EQ(result.values.at("probe"), 1.0);
}

TEST(BenchHarness, PerRepMetricsDeltaDoesNotAccumulate) {
  Harness harness("delta");
  obs::MetricsRegistry registry;
  harness.SetRegistryForTest(&registry);
  harness.SetClockForTest(ScriptedClock({0, 1, 2, 3, 4, 5}));

  RunOptions opts;
  opts.reps = 3;
  const RunResult& result = harness.Run("r", opts, [&](Rep&) {
    registry.counter("work.items").Add(5);
    registry.histogram("work.size").Observe(8);
  });
  // Every rep added 5 and observed one sample; the cumulative registry
  // holds 15/3 but each rep's delta must be exactly its own share.
  EXPECT_EQ(result.metrics.CounterValue("work.items"), 5u);
  EXPECT_EQ(result.metrics.histograms.at("work.size").count, 1u);
  EXPECT_EQ(registry.Snapshot().CounterValue("work.items"), 15u);
}

TEST(BenchHarness, RepsOverrideFromArgv) {
  const char* argv_c[] = {"prog", "--reps", "7"};
  Harness harness("flags", 3, const_cast<char**>(argv_c));
  EXPECT_EQ(harness.RepsFor(3), 7);
}

TEST(BenchHarness, FinishWritesParsableJson) {
  std::string path =
      testing::TempDir() + "/BENCH_finish_test.json";
  const char* argv_c[] = {"prog", "--json-out", path.c_str()};
  Harness harness("finish", 3, const_cast<char**>(argv_c));
  obs::MetricsRegistry registry;
  harness.SetRegistryForTest(&registry);
  harness.SetClockForTest(ScriptedClock({0, 1}));
  harness.Run("r", [](Rep& rep) { rep.Value("n", 1.0); });
  EXPECT_EQ(harness.Finish(true), 0);

  std::ifstream in(path);
  std::stringstream text;
  text << in.rdbuf();
  auto doc = ParseJson(text.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("bench")->string(), "finish");
  std::remove(path.c_str());
}

// ---- bench_diff gate semantics ---------------------------------------------

/// Builds a minimal schema-valid document with one run.
std::string Doc(double wall, const std::string& values_json,
                int schema_version = kBenchSchemaVersion) {
  std::ostringstream out;
  out << "{\"schema_version\":" << schema_version
      << ",\"bench\":\"b\",\"ok\":true,\"runs\":[{\"name\":\"r\","
      << "\"wall_seconds\":" << wall << ",\"values\":{" << values_json
      << "}}]}";
  return out.str();
}

DiffStatus StatusOf(const DiffReport& report, std::string_view metric) {
  for (const MetricDelta& row : report.rows) {
    if (row.metric == metric) return row.status;
  }
  ADD_FAILURE() << "no row for metric " << metric;
  return DiffStatus::kOk;
}

TEST(BenchDiff, IdenticalDocumentsPass) {
  std::string doc = Doc(1.0, "\"findings\":5");
  auto report = DiffBenchJson(doc, doc, DiffOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->HasRegression());
}

TEST(BenchDiff, TimeRegressionFailsGate) {
  auto report = DiffBenchJson(Doc(1.0, ""), Doc(2.0, ""), DiffOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(StatusOf(*report, "wall_seconds"), DiffStatus::kRegressed);
  EXPECT_TRUE(report->HasRegression());
}

TEST(BenchDiff, TimeImprovementPasses) {
  auto report = DiffBenchJson(Doc(2.0, ""), Doc(1.0, ""), DiffOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(StatusOf(*report, "wall_seconds"), DiffStatus::kImproved);
  EXPECT_FALSE(report->HasRegression());
}

TEST(BenchDiff, BelowNoiseFloorIsNotGated) {
  // 10x slower but both sides under the 20ms floor: scheduler noise.
  auto report =
      DiffBenchJson(Doc(0.001, ""), Doc(0.01, ""), DiffOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(StatusOf(*report, "wall_seconds"), DiffStatus::kBelowFloor);
  EXPECT_FALSE(report->HasRegression());
}

TEST(BenchDiff, NanosMetricsUseTheirOwnFloor) {
  DiffOptions options;
  auto below = DiffBenchJson(Doc(1.0, "\"op_nanos\":10"),
                             Doc(1.0, "\"op_nanos\":40"), options);
  ASSERT_TRUE(below.ok());
  EXPECT_EQ(StatusOf(*below, "op_nanos"), DiffStatus::kBelowFloor);
  auto above = DiffBenchJson(Doc(1.0, "\"op_nanos\":100"),
                             Doc(1.0, "\"op_nanos\":400"), options);
  ASSERT_TRUE(above.ok());
  EXPECT_EQ(StatusOf(*above, "op_nanos"), DiffStatus::kRegressed);
}

TEST(BenchDiff, CountDriftFailsEvenWhenFast) {
  auto report = DiffBenchJson(Doc(1.0, "\"findings\":5"),
                              Doc(1.0, "\"findings\":6"), DiffOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(StatusOf(*report, "findings"), DiffStatus::kChanged);
  EXPECT_TRUE(report->HasRegression());
}

TEST(BenchDiff, InformationalMetricsNeverGate) {
  auto report =
      DiffBenchJson(Doc(1.0, "\"warm_speedup\":4.0,\"rss_mb\":10"),
                    Doc(1.0, "\"warm_speedup\":1.0,\"rss_mb\":99"),
                    DiffOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(StatusOf(*report, "warm_speedup"), DiffStatus::kInfo);
  EXPECT_EQ(StatusOf(*report, "rss_mb"), DiffStatus::kInfo);
  EXPECT_FALSE(report->HasRegression());
}

TEST(BenchDiff, MissingMetricFailsUnlessAllowed) {
  std::string base = Doc(1.0, "\"findings\":5");
  std::string cur = Doc(1.0, "");
  auto strict = DiffBenchJson(base, cur, DiffOptions{});
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(StatusOf(*strict, "findings"), DiffStatus::kMissing);
  EXPECT_TRUE(strict->HasRegression());

  DiffOptions lax;
  lax.allow_missing = true;
  auto allowed = DiffBenchJson(base, cur, lax);
  ASSERT_TRUE(allowed.ok());
  EXPECT_FALSE(allowed->HasRegression());
}

TEST(BenchDiff, NewMetricsPass) {
  auto report = DiffBenchJson(Doc(1.0, ""), Doc(1.0, "\"extra\":3"),
                              DiffOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(StatusOf(*report, "extra"), DiffStatus::kNew);
  EXPECT_FALSE(report->HasRegression());
}

TEST(BenchDiff, SchemaVersionMismatchIsAnError) {
  auto report = DiffBenchJson(Doc(1.0, "", kBenchSchemaVersion + 1),
                              Doc(1.0, ""), DiffOptions{});
  EXPECT_FALSE(report.ok());
}

TEST(BenchDiff, BenchNameMismatchIsAnError) {
  std::string other =
      "{\"schema_version\":1,\"bench\":\"other\",\"runs\":[]}";
  auto report = DiffBenchJson(Doc(1.0, ""), other, DiffOptions{});
  EXPECT_FALSE(report.ok());
}

TEST(BenchDiff, ClassifyMetricContract) {
  EXPECT_EQ(ClassifyMetric("wall_seconds"), MetricClass::kTimeSeconds);
  EXPECT_EQ(ClassifyMetric("summary_seconds"), MetricClass::kTimeSeconds);
  EXPECT_EQ(ClassifyMetric("real_nanos"), MetricClass::kTimeNanos);
  EXPECT_EQ(ClassifyMetric("warm_speedup"), MetricClass::kInformational);
  EXPECT_EQ(ClassifyMetric("hit_ratio"), MetricClass::kInformational);
  EXPECT_EQ(ClassifyMetric("cpu_pct"), MetricClass::kInformational);
  EXPECT_EQ(ClassifyMetric("rss_growth_mb"), MetricClass::kInformational);
  EXPECT_EQ(ClassifyMetric("findings"), MetricClass::kCount);
  EXPECT_EQ(ClassifyMetric("hits"), MetricClass::kCount);
}

TEST(BenchDiff, MarkdownTableListsRegressions) {
  auto report = DiffBenchJson(Doc(1.0, "\"findings\":5"),
                              Doc(2.5, "\"findings\":5"), DiffOptions{});
  ASSERT_TRUE(report.ok());
  std::string md = report->ToMarkdown(/*only_notable=*/true);
  EXPECT_NE(md.find("wall_seconds"), std::string::npos);
  EXPECT_NE(md.find("REGRESSED"), std::string::npos);
  // findings matched exactly — hidden in notable-only mode.
  EXPECT_EQ(md.find("findings"), std::string::npos);
}

}  // namespace
}  // namespace dtaint::bench
