#include <gtest/gtest.h>

#include "src/emu/corpus.h"
#include "src/emu/firmadyne_sim.h"

namespace dtaint {
namespace {

TEST(Corpus, SizeAndYearsMatchConfig) {
  CorpusConfig config;
  config.total_images = 500;
  auto corpus = GenerateCorpus(config);
  EXPECT_EQ(corpus.size(), 500u);
  for (const CorpusEntry& entry : corpus) {
    EXPECT_GE(entry.year, config.first_year);
    EXPECT_LE(entry.year, config.last_year);
    EXPECT_FALSE(entry.vendor.empty());
  }
}

TEST(Corpus, PerYearCountsSumToTotal) {
  CorpusConfig config;
  config.total_images = 6529;
  auto per_year = ImagesPerYear(config);
  EXPECT_EQ(per_year.size(), 8u);
  int sum = 0;
  for (int n : per_year) sum += n;
  EXPECT_EQ(sum, 6529);
  // The corpus grows over time (Fig. 1 shape).
  EXPECT_LT(per_year.front(), per_year.back());
}

TEST(Corpus, Deterministic) {
  CorpusConfig config;
  config.total_images = 100;
  auto a = GenerateCorpus(config);
  auto b = GenerateCorpus(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].vendor, b[i].vendor);
    EXPECT_EQ(a[i].unpackable, b[i].unpackable);
  }
}

TEST(Emulation, OutcomeDecisionPipeline) {
  CorpusEntry entry;
  entry.unpackable = false;
  EXPECT_EQ(AttemptEmulation(entry), EmulationOutcome::kUnpackFailed);
  entry.unpackable = true;
  entry.needs_custom_peripheral = true;
  EXPECT_EQ(AttemptEmulation(entry), EmulationOutcome::kPeripheralFault);
  entry.needs_custom_peripheral = false;
  entry.needs_nvram = true;
  EXPECT_EQ(AttemptEmulation(entry), EmulationOutcome::kNvramFault);
  entry.needs_nvram = false;
  entry.network_init_ok = false;
  EXPECT_EQ(AttemptEmulation(entry),
            EmulationOutcome::kNetworkInitFailed);
  entry.network_init_ok = true;
  EXPECT_EQ(AttemptEmulation(entry), EmulationOutcome::kSuccess);
}

TEST(Emulation, StudyTalliesConsistent) {
  CorpusConfig config;
  config.total_images = 2000;
  auto corpus = GenerateCorpus(config);
  auto tallies = RunEmulationStudy(corpus);
  int total = 0, emulated = 0;
  for (const auto& [year, tally] : tallies) {
    total += tally.total;
    emulated += tally.emulated;
    int outcome_sum = 0;
    for (const auto& [_, n] : tally.by_outcome) outcome_sum += n;
    EXPECT_EQ(outcome_sum, tally.total);
    EXPECT_LE(tally.emulated, tally.total);
  }
  EXPECT_EQ(total, 2000);
  EXPECT_GT(emulated, 0);
}

TEST(Emulation, HeadlineRatesMatchPaper) {
  // Full-size corpus: ~10% emulable, >60% unpack failures.
  auto corpus = GenerateCorpus({});
  auto tallies = RunEmulationStudy(corpus);
  int total = 0, emulated = 0, unpack_failed = 0;
  for (const auto& [year, tally] : tallies) {
    total += tally.total;
    emulated += tally.emulated;
    auto it = tally.by_outcome.find(EmulationOutcome::kUnpackFailed);
    if (it != tally.by_outcome.end()) unpack_failed += it->second;
  }
  EXPECT_EQ(total, 6529);
  double emulable = static_cast<double>(emulated) / total;
  EXPECT_GT(emulable, 0.05);
  EXPECT_LT(emulable, 0.15);  // paper: <670/6529 ~ 10%
  EXPECT_GT(static_cast<double>(unpack_failed) / total, 0.60);
}

TEST(Emulation, OutcomeNames) {
  EXPECT_EQ(EmulationOutcomeName(EmulationOutcome::kSuccess), "success");
  EXPECT_EQ(EmulationOutcomeName(EmulationOutcome::kPeripheralFault),
            "peripheral-fault");
}

}  // namespace
}  // namespace dtaint
