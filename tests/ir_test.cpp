#include <gtest/gtest.h>

#include "src/ir/block.h"
#include "src/ir/expr.h"
#include "src/ir/stmt.h"

namespace dtaint {
namespace {

TEST(Expr, Factories) {
  ExprRef c = Expr::MakeConst(0x4C);
  EXPECT_EQ(c->kind(), ExprKind::kConst);
  EXPECT_EQ(c->const_value(), 0x4Cu);

  ExprRef t = Expr::MakeRdTmp(3);
  EXPECT_EQ(t->kind(), ExprKind::kRdTmp);
  EXPECT_EQ(t->tmp(), 3);

  ExprRef g = Expr::MakeGet(5);
  EXPECT_EQ(g->reg(), 5);

  ExprRef load = Expr::MakeLoad(g, 1);
  EXPECT_EQ(load->kind(), ExprKind::kLoad);
  EXPECT_EQ(load->load_size(), 1);
  EXPECT_EQ(load->lhs().get(), g.get());

  ExprRef bin = Expr::MakeBinop(BinOp::kAdd, g, c);
  EXPECT_EQ(bin->binop(), BinOp::kAdd);
}

TEST(Expr, ToString) {
  ExprRef e = Expr::MakeBinop(BinOp::kAdd, Expr::MakeGet(5),
                              Expr::MakeConst(0x4C));
  EXPECT_EQ(e->ToString(), "Add(Get(5), 0x4c)");
  EXPECT_EQ(Expr::MakeLoad(e, 4)->ToString(), "Load4(Add(Get(5), 0x4c))");
}

TEST(Expr, BinOpNames) {
  EXPECT_EQ(BinOpName(BinOp::kCmpLe), "CmpLE");
  EXPECT_TRUE(IsCompare(BinOp::kCmpEq));
  EXPECT_FALSE(IsCompare(BinOp::kXor));
}

TEST(Stmt, ToStringForms) {
  EXPECT_EQ(Stmt::WrTmp(2, Expr::MakeConst(7)).ToString(), "t2 = 0x7");
  EXPECT_EQ(Stmt::Put(0, Expr::MakeRdTmp(1)).ToString(), "PUT(0) = t1");
  Stmt store = Stmt::Store(Expr::MakeGet(13), Expr::MakeConst(0), 4);
  EXPECT_EQ(store.ToString(), "STORE4(Get(13)) = 0x0");
  Stmt exit = Stmt::Exit(
      Expr::MakeBinop(BinOp::kCmpEq, Expr::MakeGet(16), Expr::MakeGet(17)),
      0x10050);
  EXPECT_EQ(exit.ToString(),
            "if (CmpEQ(Get(16), Get(17))) goto 0x10050");
}

TEST(Stmt, JumpKindNames) {
  EXPECT_EQ(JumpKindName(JumpKind::kCall), "Ijk_Call");
  EXPECT_EQ(JumpKindName(JumpKind::kIndirectCall), "Ijk_IndirectCall");
}

TEST(Block, EndAddr) {
  IRBlock block;
  block.addr = 0x10000;
  block.size = 12;
  EXPECT_EQ(block.EndAddr(), 0x1000Cu);
}

TEST(Block, ToStringIncludesNext) {
  IRBlock block;
  block.addr = 0x10000;
  block.next = Expr::MakeConst(0x10010);
  block.jumpkind = JumpKind::kBoring;
  block.stmts.push_back(Stmt::IMark(0x10000));
  std::string s = block.ToString();
  EXPECT_NE(s.find("IRBlock @ 0x10000"), std::string::npos);
  EXPECT_NE(s.find("NEXT: 0x10010; Ijk_Boring"), std::string::npos);
}

}  // namespace
}  // namespace dtaint
