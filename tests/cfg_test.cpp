#include <gtest/gtest.h>

#include <set>

#include "src/binary/writer.h"
#include "src/cfg/callgraph.h"
#include "src/cfg/cfg_builder.h"
#include "src/cfg/loops.h"
#include "src/isa/asm_builder.h"

namespace dtaint {
namespace {

Binary DiamondBinary() {
  BinaryWriter writer(Arch::kDtArm, "t");
  FnBuilder b("f");
  b.CmpI(1, 0);        // 0x10000
  b.Beq("else");       // 0x10004
  b.MovI(2, 1);        // 0x10008 (then)
  b.B("join");         // 0x1000c
  b.Label("else");
  b.MovI(2, 2);        // 0x10010
  b.Label("join");
  b.Ret();             // 0x10014
  writer.AddFunction(std::move(b).Finish().value());
  return writer.Build().value();
}

TEST(Cfg, DiamondShape) {
  Binary bin = DiamondBinary();
  CfgBuilder builder(bin);
  Function fn = builder.BuildFunction(*bin.FindSymbol("f")).value();
  // Blocks: entry(0x10000-0x10004), then(0x10008-0x1000c),
  // else(0x10010), join(0x10014).
  EXPECT_EQ(fn.blocks.size(), 4u);
  ASSERT_TRUE(fn.succs.count(0x10000));
  std::set<uint32_t> entry_succs(fn.succs.at(0x10000).begin(),
                                 fn.succs.at(0x10000).end());
  EXPECT_EQ(entry_succs, (std::set<uint32_t>{0x10008, 0x10010}));
  EXPECT_EQ(fn.succs.at(0x10008), std::vector<uint32_t>{0x10014});
  EXPECT_EQ(fn.succs.at(0x10010), std::vector<uint32_t>{0x10014});
  // preds mirror succs.
  std::set<uint32_t> join_preds(fn.preds.at(0x10014).begin(),
                                fn.preds.at(0x10014).end());
  EXPECT_EQ(join_preds, (std::set<uint32_t>{0x10008, 0x10010}));
}

TEST(Cfg, EveryInstructionInExactlyOneBlock) {
  Binary bin = DiamondBinary();
  CfgBuilder builder(bin);
  Function fn = builder.BuildFunction(*bin.FindSymbol("f")).value();
  std::set<uint32_t> covered;
  for (const auto& [addr, block] : fn.blocks) {
    for (uint32_t pc = addr; pc < block.EndAddr(); pc += kInsnSize) {
      EXPECT_TRUE(covered.insert(pc).second) << "overlap at " << pc;
    }
  }
  EXPECT_EQ(covered.size(), fn.size / kInsnSize);
}

TEST(Cfg, CallsitesResolved) {
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddImport("recv");
  {
    FnBuilder b("callee");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  {
    FnBuilder b("caller");
    b.Call("callee");
    b.Call("recv");
    b.CallReg(5);
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  Binary bin = writer.Build().value();
  CfgBuilder builder(bin);
  Function fn = builder.BuildFunction(*bin.FindSymbol("caller")).value();
  ASSERT_EQ(fn.callsites.size(), 3u);
  EXPECT_EQ(fn.callsites[0].target_name, "callee");
  EXPECT_FALSE(fn.callsites[0].target_is_import);
  EXPECT_EQ(fn.callsites[1].target_name, "recv");
  EXPECT_TRUE(fn.callsites[1].target_is_import);
  EXPECT_TRUE(fn.callsites[2].is_indirect);
  EXPECT_NE(fn.CallSiteAt(fn.callsites[1].call_addr), nullptr);
  EXPECT_EQ(fn.CallSiteAt(0xDEAD), nullptr);
}

TEST(Cfg, BranchEscapingFunctionRejected) {
  // Hand-craft a symbol whose size cuts a branch target off.
  BinaryWriter writer(Arch::kDtArm, "t");
  FnBuilder b("f");
  b.CmpI(1, 0);
  b.Beq("far");
  for (int i = 0; i < 4; ++i) b.Nop();
  b.Label("far");
  b.Ret();
  writer.AddFunction(std::move(b).Finish().value());
  Binary bin = writer.Build().value();
  Symbol truncated = *bin.FindSymbol("f");
  truncated.size = 3 * kInsnSize;  // branch target now outside
  CfgBuilder builder(bin);
  EXPECT_FALSE(builder.BuildFunction(truncated).ok());
}

TEST(Loops, SimpleLoopDetected) {
  BinaryWriter writer(Arch::kDtArm, "t");
  FnBuilder b("f");
  b.MovI(1, 0);        // 0x10000
  b.Label("top");
  b.AddI(1, 1, 1);     // 0x10004
  b.CmpI(1, 10);       // 0x10008
  b.Blt("top");        // 0x1000c
  b.Ret();             // 0x10010
  writer.AddFunction(std::move(b).Finish().value());
  Binary bin = writer.Build().value();
  CfgBuilder builder(bin);
  Function fn = builder.BuildFunction(*bin.FindSymbol("f")).value();
  LoopInfo loops = FindLoops(fn);
  ASSERT_EQ(loops.back_edges.size(), 1u);
  EXPECT_EQ(loops.back_edges[0].second, 0x10004u);  // header
  EXPECT_TRUE(loops.IsBackEdge(loops.back_edges[0].first, 0x10004));
  EXPECT_TRUE(loops.InAnyLoop(0x10004));
  EXPECT_FALSE(loops.InAnyLoop(0x10000));
  EXPECT_FALSE(loops.InAnyLoop(0x10010));
}

TEST(Loops, StraightLineHasNone) {
  Binary bin = DiamondBinary();
  CfgBuilder builder(bin);
  Function fn = builder.BuildFunction(*bin.FindSymbol("f")).value();
  LoopInfo loops = FindLoops(fn);
  EXPECT_TRUE(loops.back_edges.empty());
  EXPECT_TRUE(loops.loops.empty());
}

TEST(Loops, NestedBodyMembership) {
  BinaryWriter writer(Arch::kDtArm, "t");
  FnBuilder b("f");
  b.MovI(1, 0);
  b.Label("outer");
  b.MovI(2, 0);
  b.Label("inner");
  b.AddI(2, 2, 1);
  b.CmpI(2, 4);
  b.Blt("inner");
  b.AddI(1, 1, 1);
  b.CmpI(1, 4);
  b.Blt("outer");
  b.Ret();
  writer.AddFunction(std::move(b).Finish().value());
  Binary bin = writer.Build().value();
  CfgBuilder builder(bin);
  Function fn = builder.BuildFunction(*bin.FindSymbol("f")).value();
  LoopInfo loops = FindLoops(fn);
  EXPECT_EQ(loops.back_edges.size(), 2u);
  EXPECT_EQ(loops.loops.size(), 2u);
}

Binary ChainBinary() {
  // main -> a -> b; main -> b; c uncalled.
  BinaryWriter writer(Arch::kDtArm, "t");
  auto leaf = [&](const char* name) {
    FnBuilder b(name);
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  };
  leaf("b");
  leaf("c");
  {
    FnBuilder b("a");
    b.Call("b");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  {
    FnBuilder b("main");
    b.Call("a");
    b.Call("b");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  return writer.Build().value();
}

TEST(CallGraph, EdgesAndOrder) {
  Binary bin = ChainBinary();
  CfgBuilder builder(bin);
  Program program = builder.BuildProgram().value();
  CallGraph graph = CallGraph::Build(program);
  EXPECT_EQ(graph.NodeCount(), 4u);
  EXPECT_EQ(graph.EdgeCount(), 3u);  // main->a, main->b, a->b
  EXPECT_TRUE(graph.Callees("main").count("a"));
  EXPECT_TRUE(graph.Callers("b").count("a"));
  EXPECT_TRUE(graph.Callers("b").count("main"));

  // Bottom-up: every callee before each caller.
  std::vector<std::string> order = graph.BottomUpOrder();
  auto pos = [&](const std::string& n) {
    return std::find(order.begin(), order.end(), n) - order.begin();
  };
  EXPECT_LT(pos("b"), pos("a"));
  EXPECT_LT(pos("a"), pos("main"));
  EXPECT_LT(pos("b"), pos("main"));
}

TEST(CallGraph, RecursionFormsScc) {
  BinaryWriter writer(Arch::kDtArm, "t");
  {
    FnBuilder b("even");
    b.Call("odd");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  {
    FnBuilder b("odd");
    b.Call("even");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  Binary bin = writer.Build().value();
  CfgBuilder builder(bin);
  Program program = builder.BuildProgram().value();
  CallGraph graph = CallGraph::Build(program);
  EXPECT_EQ(graph.SccIds().at("even"), graph.SccIds().at("odd"));
  EXPECT_EQ(graph.BottomUpOrder().size(), 2u);  // still terminates
}

TEST(CallGraph, IndirectResolvedTargetsAddEdges) {
  Binary bin = ChainBinary();
  CfgBuilder builder(bin);
  Program program = builder.BuildProgram().value();
  // Manually resolve an indirect edge main -> c (as structsim would).
  Function& main_fn = program.functions.at("main");
  CallSite fake;
  fake.is_indirect = true;
  fake.resolved_targets = {"c"};
  main_fn.callsites.push_back(fake);
  CallGraph graph = CallGraph::Build(program);
  EXPECT_TRUE(graph.Callees("main").count("c"));
  std::vector<std::string> order = graph.BottomUpOrder();
  auto pos = [&](const std::string& n) {
    return std::find(order.begin(), order.end(), n) - order.begin();
  };
  EXPECT_LT(pos("c"), pos("main"));
}

TEST(Program, LookupHelpers) {
  Binary bin = ChainBinary();
  CfgBuilder builder(bin);
  Program program = builder.BuildProgram().value();
  EXPECT_NE(program.FindFunction("a"), nullptr);
  EXPECT_EQ(program.FindFunction("zz"), nullptr);
  const Symbol* a = bin.FindSymbol("a");
  EXPECT_EQ(program.FunctionAt(a->addr)->name, "a");
  EXPECT_GT(program.TotalBlocks(), 0u);
  EXPECT_EQ(program.CallEdgeCount(), 3u);
}

}  // namespace
}  // namespace dtaint
