#include <gtest/gtest.h>

#include "src/binary/writer.h"
#include "src/isa/asm_builder.h"
#include "src/lifter/lifter.h"

namespace dtaint {
namespace {

/// Builds a one-function binary from a builder callback.
Binary BuildWith(void (*author)(FnBuilder&), Arch arch = Arch::kDtArm) {
  BinaryWriter writer(arch, "t");
  writer.AddImport("memcpy");
  FnBuilder b("f");
  author(b);
  writer.AddFunction(std::move(b).Finish().value());
  return writer.Build().value();
}

/// Counts statements of a given kind.
int Count(const IRBlock& block, StmtKind kind) {
  int n = 0;
  for (const Stmt& s : block.stmts) {
    if (s.kind == kind) ++n;
  }
  return n;
}

TEST(Lifter, LoadBecomesBaseOffsetAddress) {
  Binary bin = BuildWith([](FnBuilder& b) {
    b.LdrW(1, 5, 0x4C);
    b.Ret();
  });
  Lifter lifter(bin);
  IRBlock block = lifter.LiftBlock(kTextBase).value();
  // Expect: Get(r5), Add(+0x4C), Load, Put(r1), then the ret tail.
  ASSERT_GE(block.stmts.size(), 5u);
  bool saw_load_put = false;
  for (const Stmt& s : block.stmts) {
    if (s.kind == StmtKind::kPut && s.reg == 1) {
      saw_load_put = true;
      EXPECT_EQ(s.expr->kind(), ExprKind::kRdTmp);
    }
  }
  EXPECT_TRUE(saw_load_put);
  EXPECT_EQ(block.jumpkind, JumpKind::kRet);
}

TEST(Lifter, StoreByteHasSizeOne) {
  Binary bin = BuildWith([](FnBuilder& b) {
    b.StrB(2, 3, 7);
    b.Ret();
  });
  IRBlock block = Lifter(bin).LiftBlock(kTextBase).value();
  for (const Stmt& s : block.stmts) {
    if (s.kind == StmtKind::kStore) {
      EXPECT_EQ(s.size, 1);
    }
  }
  EXPECT_EQ(Count(block, StmtKind::kStore), 1);
}

TEST(Lifter, ConditionalBranchEmitsExitWithInlineGuard) {
  Binary bin = BuildWith([](FnBuilder& b) {
    b.CmpI(1, 8);
    b.Beq("skip");
    b.Nop();
    b.Label("skip");
    b.Ret();
  });
  IRBlock block = Lifter(bin).LiftBlock(kTextBase).value();
  ASSERT_EQ(Count(block, StmtKind::kExit), 1);
  for (const Stmt& s : block.stmts) {
    if (s.kind != StmtKind::kExit) continue;
    // The guard must be an inline Binop over the flag registers so
    // consumers can read the compared operands.
    ASSERT_EQ(s.expr->kind(), ExprKind::kBinop);
    EXPECT_EQ(s.expr->binop(), BinOp::kCmpEq);
    EXPECT_EQ(s.expr->lhs()->reg(), kFlagLhs);
    EXPECT_EQ(s.target, kTextBase + 3 * kInsnSize);
  }
  // Fallthrough next.
  EXPECT_EQ(block.next->const_value(), kTextBase + 2 * kInsnSize);
  EXPECT_EQ(block.jumpkind, JumpKind::kBoring);
}

TEST(Lifter, CallEndsBlockWithReturnAddr) {
  Binary bin = BuildWith([](FnBuilder& b) {
    b.Call("memcpy");
    b.Ret();
  });
  IRBlock block = Lifter(bin).LiftBlock(kTextBase).value();
  EXPECT_EQ(block.jumpkind, JumpKind::kCall);
  EXPECT_EQ(block.return_addr, kTextBase + kInsnSize);
  EXPECT_EQ(block.next->const_value(), kPltBase);  // first import stub
  // lr must have been set to the return address.
  bool lr_set = false;
  for (const Stmt& s : block.stmts) {
    if (s.kind == StmtKind::kPut && s.reg == kRegLr) {
      lr_set = true;
      EXPECT_EQ(s.expr->const_value(), kTextBase + kInsnSize);
    }
  }
  EXPECT_TRUE(lr_set);
}

TEST(Lifter, IndirectCallKeepsSymbolicTarget) {
  Binary bin = BuildWith([](FnBuilder& b) {
    b.CallReg(6);
    b.Ret();
  });
  IRBlock block = Lifter(bin).LiftBlock(kTextBase).value();
  EXPECT_EQ(block.jumpkind, JumpKind::kIndirectCall);
  EXPECT_EQ(block.next->kind(), ExprKind::kRdTmp);
}

TEST(Lifter, RetReadsLinkRegister) {
  Binary bin = BuildWith([](FnBuilder& b) { b.Ret(); });
  IRBlock block = Lifter(bin).LiftBlock(kTextBase).value();
  EXPECT_EQ(block.jumpkind, JumpKind::kRet);
  EXPECT_EQ(block.size, kInsnSize);
}

TEST(Lifter, StopBeforeCutsStraightLine) {
  Binary bin = BuildWith([](FnBuilder& b) {
    b.Nop();
    b.Nop();
    b.Nop();
    b.Ret();
  });
  IRBlock block =
      Lifter(bin).LiftBlock(kTextBase, kTextBase + 2 * kInsnSize).value();
  EXPECT_EQ(block.size, 2 * kInsnSize);
  EXPECT_EQ(block.jumpkind, JumpKind::kBoring);
  EXPECT_EQ(block.next->const_value(), kTextBase + 2 * kInsnSize);
}

TEST(Lifter, IMarksTrackGuestAddresses) {
  Binary bin = BuildWith([](FnBuilder& b) {
    b.MovI(1, 1);
    b.MovI(2, 2);
    b.Ret();
  });
  IRBlock block = Lifter(bin).LiftBlock(kTextBase).value();
  std::vector<uint32_t> marks;
  for (const Stmt& s : block.stmts) {
    if (s.kind == StmtKind::kIMark) marks.push_back(s.addr);
  }
  EXPECT_EQ(marks,
            (std::vector<uint32_t>{kTextBase, kTextBase + 4, kTextBase + 8}));
}

TEST(Lifter, UnalignedAddressRejected) {
  Binary bin = BuildWith([](FnBuilder& b) { b.Ret(); });
  EXPECT_FALSE(Lifter(bin).LiftBlock(kTextBase + 2).ok());
}

TEST(Lifter, UnmappedAddressRejected) {
  Binary bin = BuildWith([](FnBuilder& b) { b.Ret(); });
  EXPECT_FALSE(Lifter(bin).LiftBlock(0x5000000).ok());
}

TEST(Lifter, CmpWritesFlagRegisters) {
  Binary bin = BuildWith([](FnBuilder& b) {
    b.CmpR(3, 4);
    b.Ret();
  });
  IRBlock block = Lifter(bin).LiftBlock(kTextBase).value();
  bool lhs = false, rhs = false;
  for (const Stmt& s : block.stmts) {
    if (s.kind == StmtKind::kPut && s.reg == kFlagLhs) lhs = true;
    if (s.kind == StmtKind::kPut && s.reg == kFlagRhs) rhs = true;
  }
  EXPECT_TRUE(lhs);
  EXPECT_TRUE(rhs);
}

TEST(Lifter, BigEndianFlavorDecodesIdentically) {
  auto author = [](FnBuilder& b) {
    b.AddI(1, 2, 100);
    b.Ret();
  };
  Binary arm = BuildWith(author, Arch::kDtArm);
  Binary mips = BuildWith(author, Arch::kDtMips);
  IRBlock ba = Lifter(arm).LiftBlock(kTextBase).value();
  IRBlock bm = Lifter(mips).LiftBlock(kTextBase).value();
  ASSERT_EQ(ba.stmts.size(), bm.stmts.size());
  for (size_t i = 0; i < ba.stmts.size(); ++i) {
    EXPECT_EQ(ba.stmts[i].ToString(), bm.stmts[i].ToString());
  }
}

}  // namespace
}  // namespace dtaint

// ---- IR printer (appended) ----------------------------------------------------

#include "src/ir/printer.h"

namespace dtaint {
namespace {

TEST(Printer, InterleavesDisasmWithIr) {
  Binary bin = BuildWith([](FnBuilder& b) {
    b.LdrW(1, 5, 0x4C);
    b.Ret();
  });
  IRBlock block = Lifter(bin).LiftBlock(kTextBase).value();
  std::string out = PrintBlockWithDisasm(bin, block);
  // Guest disassembly line...
  EXPECT_NE(out.find("ldr r1, [r5, #76]"), std::string::npos);
  // ...followed by the lifted statements and the block terminator.
  EXPECT_NE(out.find("t0 = Get(5)"), std::string::npos);
  EXPECT_NE(out.find("NEXT(Ijk_Ret)"), std::string::npos);
}

TEST(Printer, MipsRegisterNames) {
  Binary bin = BuildWith(
      [](FnBuilder& b) {
        b.MovR(5, 4);  // mov a1, a0 under MIPS names
        b.Ret();
      },
      Arch::kDtMips);
  IRBlock block = Lifter(bin).LiftBlock(kTextBase).value();
  std::string out = PrintBlockWithDisasm(bin, block);
  EXPECT_NE(out.find("mov a1, a0"), std::string::npos);
}

}  // namespace
}  // namespace dtaint
