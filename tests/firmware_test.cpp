#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/firmware/extractor.h"
#include "src/firmware/packer.h"

namespace dtaint {
namespace {

FirmwareImage TestImage(Packing packing = Packing::kPlain) {
  FirmwareImage image;
  image.vendor = "Acme";
  image.product = "RT-1";
  image.version = "2.0";
  image.release_year = 2015;
  image.arch = Arch::kDtMips;
  image.packing = packing;
  image.files.push_back({"/etc/passwd", {'r', 'o', 'o', 't'}});
  image.files.push_back({"/bin/httpd", {'D', 'T', 'B', '1', 0, 0}});
  image.files.push_back({"/www/index.html", {'<', 'h', '1', '>'}});
  return image;
}

TEST(Packer, RoundTripPlain) {
  FirmwareImage image = TestImage();
  std::vector<uint8_t> blob = FirmwarePacker::Pack(image);
  auto out = FirmwareExtractor::Extract(blob);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->image.vendor, "Acme");
  EXPECT_EQ(out->image.product, "RT-1");
  EXPECT_EQ(out->image.release_year, 2015);
  EXPECT_EQ(out->image.arch, Arch::kDtMips);
  ASSERT_EQ(out->image.files.size(), 3u);
  EXPECT_EQ(out->image.files[0].path, "/etc/passwd");
  EXPECT_EQ(out->image.files[0].bytes, image.files[0].bytes);
}

TEST(Packer, RoundTripXor) {
  std::vector<uint8_t> blob = FirmwarePacker::Pack(TestImage(Packing::kXor));
  auto out = FirmwareExtractor::Extract(blob);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->image.files[2].bytes, TestImage().files[2].bytes);
}

TEST(Packer, XorActuallyObfuscates) {
  std::vector<uint8_t> plain = FirmwarePacker::Pack(TestImage());
  std::vector<uint8_t> xored =
      FirmwarePacker::Pack(TestImage(Packing::kXor));
  // Same sizes, different payload bytes.
  ASSERT_EQ(plain.size(), xored.size());
  EXPECT_NE(plain, xored);
}

TEST(Extractor, EncryptedRefused) {
  std::vector<uint8_t> blob =
      FirmwarePacker::Pack(TestImage(Packing::kEncrypted));
  auto out = FirmwareExtractor::Extract(blob);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnsupported);
}

TEST(Extractor, UnknownFormatRefused) {
  std::vector<uint8_t> blob =
      FirmwarePacker::Pack(TestImage(Packing::kUnknown));
  EXPECT_FALSE(FirmwareExtractor::Extract(blob).ok());
}

TEST(Extractor, FindsMagicPastVendorHeader) {
  std::vector<uint8_t> blob = FirmwarePacker::Pack(TestImage());
  std::vector<uint8_t> wrapped(64, 0xEE);  // vendor header junk
  wrapped.insert(wrapped.end(), blob.begin(), blob.end());
  auto offset = FirmwareExtractor::FindMagic(wrapped);
  ASSERT_TRUE(offset.has_value());
  EXPECT_EQ(*offset, 64u);
  auto out = FirmwareExtractor::Extract(wrapped);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->image.files.size(), 3u);
}

TEST(Extractor, NoMagicIsNotFound) {
  std::vector<uint8_t> junk(256, 0x41);
  auto out = FirmwareExtractor::Extract(junk);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST(Extractor, PayloadCorruptionDetected) {
  std::vector<uint8_t> blob = FirmwarePacker::Pack(TestImage());
  blob[blob.size() - 3] ^= 0xFF;  // flip a payload byte
  auto out = FirmwareExtractor::Extract(blob);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruptData);
}

TEST(Extractor, TruncationDetected) {
  std::vector<uint8_t> blob = FirmwarePacker::Pack(TestImage());
  blob.resize(blob.size() / 3);
  EXPECT_FALSE(FirmwareExtractor::Extract(blob).ok());
}

TEST(Extractor, SpotsExecutables) {
  std::vector<uint8_t> blob = FirmwarePacker::Pack(TestImage());
  auto out = FirmwareExtractor::Extract(blob);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->executable_paths.size(), 1u);
  EXPECT_EQ(out->executable_paths[0], "/bin/httpd");
}

TEST(Image, Helpers) {
  FirmwareImage image = TestImage();
  EXPECT_EQ(image.Label(), "Acme RT-1_2.0");
  EXPECT_NE(image.FindFile("/etc/passwd"), nullptr);
  EXPECT_EQ(image.FindFile("/nope"), nullptr);
  EXPECT_EQ(image.TotalBytes(), 4u + 6u + 4u);
}

TEST(Image, PackingNames) {
  EXPECT_EQ(PackingName(Packing::kPlain), "plain");
  EXPECT_EQ(PackingName(Packing::kEncrypted), "encrypted");
}

TEST(Extractor, CrasherCorpusIsRejectedWithoutCrashing) {
  // Regression corpus: firmware blobs that exposed missing validation
  // during development (truncation inside the filesystem table). Each
  // must come back as a structured error, never a crash or an accept.
  namespace fs = std::filesystem;
  fs::path dir = fs::path(__FILE__).parent_path() / "testing" / "crashers";
  ASSERT_TRUE(fs::exists(dir));
  int replayed = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".dtfw") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    ASSERT_FALSE(bytes.empty()) << entry.path();
    auto r = FirmwareExtractor::Extract(bytes,
                                        entry.path().filename().string());
    EXPECT_FALSE(r.ok()) << entry.path() << " extracted successfully";
    ++replayed;
  }
  EXPECT_GE(replayed, 1);
}

}  // namespace
}  // namespace dtaint
