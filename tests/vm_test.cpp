// Dynamic-verification VM tests: execute synthesized plants with
// attacker-crafted input and observe the exploit (or, for sanitized
// twins, its absence) — the repo's stand-in for the paper's
// verification on physical devices.
#include <gtest/gtest.h>

#include "src/binary/writer.h"
#include "src/isa/asm_builder.h"
#include "src/synth/firmware_synth.h"
#include "src/vm/vm.h"

namespace dtaint {
namespace {

/// Attacker payload shaped for a given sink: string sinks need a long
/// NUL-free string; length sinks need a huge length field; loop sinks
/// a small start offset; command sinks an embedded ';'.
std::vector<uint8_t> AttackFor(const std::string& sink,
                               VulnPattern pattern, Arch arch) {
  // Multi-byte payload fields are crafted in the *target's* byte
  // order, exactly as a real exploit writer would.
  std::vector<uint8_t> bytes(0x200, 'A');
  auto put_word = [&](size_t off, uint32_t v) {
    WriteWord(arch, bytes.data() + off, v);
  };
  if (sink == "memcpy" || sink == "strncpy") {
    // The tainted length field lives at +4 (direct plants) or +0
    // (dispatch setup); poison both.
    put_word(0, 0x600);
    put_word(4, 0x600);
  } else if (sink == "loop") {
    put_word(4, 8);  // copy start offset
  } else if (sink == "system" || sink == "popen") {
    const char* cmd = "x;rm -rf /";  // the classic
    for (size_t i = 0; cmd[i]; ++i) {
      bytes[i] = static_cast<uint8_t>(cmd[i]);
    }
    bytes.resize(64);  // short command string
  }
  (void)pattern;
  return bytes;
}

std::string EntryFor(const std::string& id, VulnPattern pattern) {
  switch (pattern) {
    case VulnPattern::kAliasChain:
    case VulnPattern::kDispatch:
      return id + "_entry";
    default:
      return id + "_handler";
  }
}

VmResult RunPlantInVm(VulnPattern pattern, const std::string& source,
                      const std::string& sink, bool sanitized,
                      Arch arch = Arch::kDtArm) {
  ProgramSpec spec;
  spec.name = "vmtest";
  spec.arch = arch;
  spec.seed = 55;
  spec.filler_functions = 2;
  PlantSpec p;
  p.id = "v";
  p.pattern = pattern;
  p.source = source;
  p.sink = sink;
  p.sanitized = sanitized;
  spec.plants = {p};
  auto out = SynthesizeBinary(spec);
  EXPECT_TRUE(out.ok()) << out.status().ToString();

  VmConfig config;
  config.attacker_bytes = AttackFor(sink, pattern, arch);
  Vm vm(out->binary, config);
  auto result = vm.Run(EntryFor("v", pattern));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

struct VmCase {
  VulnPattern pattern;
  const char* source;
  const char* sink;
  bool expect_injection;  // else expect stack smash
};

class VmExploit
    : public ::testing::TestWithParam<std::tuple<VmCase, Arch>> {};

TEST_P(VmExploit, VulnerableFormActuallyExploits) {
  const auto& [c, arch] = GetParam();
  VmResult result =
      RunPlantInVm(c.pattern, c.source, c.sink, /*sanitized=*/false, arch);
  if (c.expect_injection) {
    EXPECT_TRUE(result.Injected())
        << c.source << "->" << c.sink << ": no ';' reached the shell";
  } else {
    EXPECT_TRUE(result.Smashed())
        << c.source << "->" << c.sink
        << ": saved return address survived";
  }
}

TEST_P(VmExploit, SanitizedTwinSurvivesSameAttack) {
  const auto& [c, arch] = GetParam();
  VmResult result =
      RunPlantInVm(c.pattern, c.source, c.sink, /*sanitized=*/true, arch);
  EXPECT_TRUE(result.violations.empty())
      << c.source << "->" << c.sink << ": " << result.violations.size()
      << " violations on the sanitized twin";
  EXPECT_TRUE(result.halted_cleanly);
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, VmExploit,
    ::testing::Combine(
        ::testing::Values(
            VmCase{VulnPattern::kDirect, "getenv", "system", true},
            VmCase{VulnPattern::kDirect, "getenv", "strcpy", false},
            VmCase{VulnPattern::kDirect, "recv", "memcpy", false},
            VmCase{VulnPattern::kDirect, "read", "sscanf", false},
            VmCase{VulnPattern::kWrapper, "recv", "strcpy", false},
            VmCase{VulnPattern::kWrapper, "getenv", "system", true},
            VmCase{VulnPattern::kAliasChain, "recv", "strcpy", false},
            VmCase{VulnPattern::kAliasChain, "recv", "memcpy", false},
            VmCase{VulnPattern::kDispatch, "recv", "memcpy", false},
            VmCase{VulnPattern::kLoopCopy, "recv", "loop", false}),
        ::testing::Values(Arch::kDtArm, Arch::kDtMips)));

// ---- VM unit behavior --------------------------------------------------------

TEST(Vm, RunsHandAssembledArithmetic) {
  BinaryWriter writer(Arch::kDtArm, "t");
  FnBuilder b("f");
  b.MovI(1, 6);
  b.MovI(2, 7);
  b.MulR(0, 1, 2);
  b.Ret();
  writer.AddFunction(std::move(b).Finish().value());
  Binary bin = writer.Build().value();
  Vm vm(bin, {});
  auto result = vm.Run("f");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->halted_cleanly);
  EXPECT_TRUE(result->violations.empty());
  EXPECT_EQ(result->steps, 4u);
}

TEST(Vm, LoopsExecuteConcretely) {
  BinaryWriter writer(Arch::kDtArm, "t");
  FnBuilder b("f");
  b.MovI(1, 0);
  b.Label("top");
  b.AddI(1, 1, 1);
  b.CmpI(1, 10);
  b.Blt("top");
  b.Ret();
  writer.AddFunction(std::move(b).Finish().value());
  Binary bin = writer.Build().value();
  Vm vm(bin, {});
  auto result = vm.Run("f");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->halted_cleanly);
  EXPECT_EQ(result->steps, 1 + 10 * 3 + 1u);  // init + 10 iterations + ret
}

TEST(Vm, StepBudgetStopsRunaways) {
  BinaryWriter writer(Arch::kDtArm, "t");
  FnBuilder b("f");
  b.Label("spin");
  b.B("spin");
  writer.AddFunction(std::move(b).Finish().value());
  Binary bin = writer.Build().value();
  VmConfig config;
  config.max_steps = 100;
  Vm vm(bin, config);
  auto result = vm.Run("f");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->halted_cleanly);
  EXPECT_EQ(result->steps, 100u);
}

TEST(Vm, MissingFunctionIsNotFound) {
  BinaryWriter writer(Arch::kDtArm, "t");
  FnBuilder b("f");
  b.Ret();
  writer.AddFunction(std::move(b).Finish().value());
  Binary bin = writer.Build().value();
  Vm vm(bin, {});
  EXPECT_FALSE(vm.Run("ghost").ok());
}

TEST(Vm, CleanCommandIsNotInjection) {
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddImport("system");
  uint32_t cmd = kRodataBase + writer.AddRodata(
      {'r', 'e', 'b', 'o', 'o', 't', 0});
  FnBuilder b("f");
  b.MovConst(0, cmd);
  b.Call("system");
  b.Ret();
  writer.AddFunction(std::move(b).Finish().value());
  Binary bin = writer.Build().value();
  Vm vm(bin, {});
  auto result = vm.Run("f");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->violations.empty());
  ASSERT_EQ(result->executed_commands.size(), 1u);
  EXPECT_EQ(result->executed_commands[0], "reboot");
}

}  // namespace
}  // namespace dtaint
