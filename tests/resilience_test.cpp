// Resilience layer tests: analysis budgets and graceful degradation,
// deterministic fault injection at every instrumented pipeline site,
// retry-with-backoff on cache I/O, and the differential guarantees the
// degraded-summary design promises (tiny-budget findings are a subset
// of generous-budget findings; degraded summaries never enter the
// persistent cache).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "src/binary/loader.h"
#include "src/binary/writer.h"
#include "src/cache/summary_cache.h"
#include "src/core/dtaint.h"
#include "src/firmware/extractor.h"
#include "src/firmware/packer.h"
#include "src/report/json.h"
#include "src/report/scoring.h"
#include "src/resilience/budget.h"
#include "src/resilience/fault.h"
#include "src/resilience/retry.h"
#include "src/synth/firmware_synth.h"

namespace dtaint {
namespace {

namespace fs = std::filesystem;

/// Every test that installs fault rules cleans the global plan up, so
/// suites can run in any order.
class ResilienceTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultPlan::Global().Clear(); }
};

SynthOutput MixedProgram(uint64_t seed = 77) {
  ProgramSpec spec;
  spec.name = "resil";
  spec.arch = Arch::kDtArm;
  spec.seed = seed;
  spec.filler_functions = 30;
  auto plant = [](const char* id, VulnPattern pattern, const char* source,
                  const char* sink, bool sanitized = false) {
    PlantSpec p;
    p.id = id;
    p.pattern = pattern;
    p.source = source;
    p.sink = sink;
    p.sanitized = sanitized;
    return p;
  };
  spec.plants = {
      plant("r1", VulnPattern::kDirect, "getenv", "system"),
      plant("r2", VulnPattern::kWrapper, "recv", "strcpy"),
      plant("r3", VulnPattern::kAliasChain, "recv", "strcpy"),
      plant("r4", VulnPattern::kDirect, "getenv", "system", true),
  };
  return std::move(*SynthesizeBinary(spec));
}

std::vector<std::string> FindingKeys(const AnalysisReport& report) {
  std::vector<std::string> keys;
  for (const Finding& f : report.findings) {
    keys.push_back(f.path.sink_function + "|" + f.path.sink_name + "|" +
                   f.path.source_name);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// ---------- BudgetTracker ----------------------------------------------------

TEST_F(ResilienceTest, UnlimitedBudgetNeverTrips) {
  BudgetTracker tracker(AnalysisBudget{});
  for (int i = 0; i < 100000; ++i) EXPECT_FALSE(tracker.ChargeStep());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(tracker.ChargeState());
  EXPECT_FALSE(tracker.exhausted());
  EXPECT_EQ(tracker.counters().exhausted_by, BudgetExhaustion::kNone);
  EXPECT_EQ(tracker.counters().steps, 100000u);
  EXPECT_EQ(tracker.counters().states, 1000u);
}

TEST_F(ResilienceTest, StepLimitTripsExactlyAtTheLimitAndIsSticky) {
  AnalysisBudget budget;
  budget.max_steps = 10;
  BudgetTracker tracker(budget);
  for (int i = 0; i < 9; ++i) {
    EXPECT_FALSE(tracker.ChargeStep()) << "step " << i;
  }
  EXPECT_TRUE(tracker.ChargeStep());  // 10th step trips
  EXPECT_TRUE(tracker.exhausted());
  EXPECT_EQ(tracker.cause(), BudgetExhaustion::kSteps);
  EXPECT_TRUE(tracker.ChargeStep());  // sticky
  EXPECT_TRUE(tracker.ChargeState());
}

TEST_F(ResilienceTest, StateLimitTripsIndependentlyOfSteps) {
  AnalysisBudget budget;
  budget.max_states = 3;
  BudgetTracker tracker(budget);
  EXPECT_FALSE(tracker.ChargeStep());
  EXPECT_FALSE(tracker.ChargeState());
  EXPECT_FALSE(tracker.ChargeState());
  EXPECT_TRUE(tracker.ChargeState());
  EXPECT_EQ(tracker.cause(), BudgetExhaustion::kStates);
}

TEST_F(ResilienceTest, MarkInjectedReportsInjectedCause) {
  BudgetTracker tracker(AnalysisBudget{});
  tracker.MarkInjected();
  EXPECT_TRUE(tracker.exhausted());
  EXPECT_EQ(tracker.counters().exhausted_by, BudgetExhaustion::kInjected);
}

TEST_F(ResilienceTest, ExhaustionCauseNamesAreStable) {
  EXPECT_EQ(BudgetExhaustionName(BudgetExhaustion::kNone), "none");
  EXPECT_EQ(BudgetExhaustionName(BudgetExhaustion::kDeadline), "deadline");
  EXPECT_EQ(BudgetExhaustionName(BudgetExhaustion::kSteps), "steps");
  EXPECT_EQ(BudgetExhaustionName(BudgetExhaustion::kStates), "states");
  EXPECT_EQ(BudgetExhaustionName(BudgetExhaustion::kExprNodes),
            "expr_nodes");
  EXPECT_EQ(BudgetExhaustionName(BudgetExhaustion::kInjected), "injected");
}

// ---------- FaultPlan spec parsing -------------------------------------------

TEST_F(ResilienceTest, SpecGrammarRoundTrips) {
  FaultPlan& plan = FaultPlan::Global();
  ASSERT_TRUE(plan.InstallSpec("lift@parse_uri;summary:2+1,cache_read:*")
                  .ok());
  // lift@parse_uri: only matching detail fails, once.
  EXPECT_FALSE(plan.ShouldFail(FaultSite::kLift, "main"));
  EXPECT_TRUE(plan.ShouldFail(FaultSite::kLift, "parse_uri"));
  EXPECT_FALSE(plan.ShouldFail(FaultSite::kLift, "parse_uri"));
  // summary:2+1: skip the first occurrence, fail the next two.
  EXPECT_FALSE(plan.ShouldFail(FaultSite::kSummary, "a"));
  EXPECT_TRUE(plan.ShouldFail(FaultSite::kSummary, "b"));
  EXPECT_TRUE(plan.ShouldFail(FaultSite::kSummary, "c"));
  EXPECT_FALSE(plan.ShouldFail(FaultSite::kSummary, "d"));
  // cache_read:*: every occurrence fails.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(plan.ShouldFail(FaultSite::kCacheRead, "k"));
  }
}

TEST_F(ResilienceTest, BadSpecsAreRejectedWithContext) {
  FaultPlan& plan = FaultPlan::Global();
  EXPECT_FALSE(plan.InstallSpec("no_such_site").ok());
  EXPECT_FALSE(plan.InstallSpec("lift:notanumber").ok());
  EXPECT_FALSE(plan.InstallSpec("lift+x").ok());
  // A failed install leaves no rules behind.
  EXPECT_FALSE(plan.ShouldFail(FaultSite::kLift, "anything"));
}

TEST_F(ResilienceTest, SiteNamesRoundTrip) {
  const FaultSite sites[] = {
      FaultSite::kLift,       FaultSite::kSummary,    FaultSite::kPathfinder,
      FaultSite::kCacheRead,  FaultSite::kCacheWrite, FaultSite::kExtract,
      FaultSite::kLoad,       FaultSite::kCrash,      FaultSite::kWorkerKill,
      FaultSite::kWorkerHang, FaultSite::kJournalTorn};
  for (FaultSite site : sites) {
    FaultSite parsed;
    ASSERT_TRUE(ParseFaultSite(FaultSiteName(site), &parsed));
    EXPECT_EQ(parsed, site);
  }
  FaultSite dummy;
  EXPECT_FALSE(ParseFaultSite("bogus", &dummy));
}

// ---------- RetryIo ----------------------------------------------------------

TEST_F(ResilienceTest, RetryIoRecoversFromTransientFailures) {
  RetryPolicy policy;
  policy.attempts = 3;
  policy.initial_backoff_us = 1;
  int calls = 0;
  int retries = 0;
  bool ok = RetryIo(
      policy, [&] { return ++calls >= 3; }, &retries);
  EXPECT_TRUE(ok);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2);
}

TEST_F(ResilienceTest, RetryIoGivesUpAfterAttempts) {
  RetryPolicy policy;
  policy.attempts = 4;
  policy.initial_backoff_us = 1;
  int calls = 0;
  bool ok = RetryIo(policy, [&] {
    ++calls;
    return false;
  });
  EXPECT_FALSE(ok);
  EXPECT_EQ(calls, 4);
}

TEST_F(ResilienceTest, RetryScheduleIsDeterministicAndJitterBounded) {
  RetryPolicy policy;
  policy.attempts = 6;
  policy.initial_backoff_us = 200;
  policy.max_total_backoff_us = 0;  // uncapped: test the raw jitter shape
  policy.jitter_seed = 0xfeedULL;

  std::vector<int> plan = RetryScheduleUs(policy);
  ASSERT_EQ(plan.size(), 5u);
  // Same policy, same schedule — fault-injection runs replay exactly.
  EXPECT_EQ(plan, RetryScheduleUs(policy));
  // Every sleep stays in [base/2, base] for base = initial << (retry-1).
  for (size_t i = 0; i < plan.size(); ++i) {
    int64_t base = static_cast<int64_t>(policy.initial_backoff_us) << i;
    EXPECT_GE(plan[i], base / 2) << "retry " << i + 1;
    EXPECT_LE(plan[i], base) << "retry " << i + 1;
  }
}

TEST_F(ResilienceTest, RetryScheduleSeedsDecorrelate) {
  // Two workers hammering the same disk must not retry in lockstep:
  // distinct jitter seeds (the supervisor derives them from the image
  // fingerprint) must yield distinct schedules.
  RetryPolicy a;
  a.attempts = 8;
  a.initial_backoff_us = 1000;
  a.max_total_backoff_us = 0;
  a.jitter_seed = 1;
  RetryPolicy b = a;
  b.jitter_seed = 2;
  EXPECT_NE(RetryScheduleUs(a), RetryScheduleUs(b));
}

TEST_F(ResilienceTest, RetryScheduleHonorsTotalWallClockCap) {
  RetryPolicy policy;
  policy.attempts = 12;          // doubling would sleep for minutes
  policy.initial_backoff_us = 1000;
  policy.max_total_backoff_us = 5000;
  std::vector<int> plan = RetryScheduleUs(policy);
  ASSERT_EQ(plan.size(), 11u);
  int64_t total = 0;
  for (int sleep_us : plan) {
    EXPECT_GE(sleep_us, 0);
    total += sleep_us;
  }
  EXPECT_LE(total, 5000);
  // Once the cap is spent, the remaining retries run back-to-back.
  EXPECT_EQ(plan.back(), 0);
}

// ---------- budget exhaustion degrades, never aborts -------------------------

TEST_F(ResilienceTest, TinyStepBudgetDegradesButCompletes) {
  SynthOutput out = MixedProgram();
  DTaintConfig config;
  config.interproc.budget.max_steps = 50;
  auto report = DTaint(config).Analyze(out.binary);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->degraded_functions, 0u);
  EXPECT_FALSE(report->complete);
  EXPECT_FALSE(report->incidents.empty());
  for (const Incident& inc : report->incidents) {
    EXPECT_EQ(inc.phase, "summary");
    EXPECT_EQ(inc.status.code(), StatusCode::kOutOfRange);
    EXPECT_EQ(inc.budget.exhausted_by, BudgetExhaustion::kSteps);
    EXPECT_FALSE(inc.detail.empty());
  }
}

TEST_F(ResilienceTest, GenerousBudgetMatchesUnbudgetedRun) {
  SynthOutput out = MixedProgram();
  auto unbudgeted = DTaint().Analyze(out.binary);
  DTaintConfig config;
  config.interproc.budget.max_steps = 50'000'000;
  config.interproc.budget.max_states = 50'000'000;
  auto generous = DTaint(config).Analyze(out.binary);
  ASSERT_TRUE(unbudgeted.ok());
  ASSERT_TRUE(generous.ok());
  EXPECT_EQ(generous->degraded_functions, 0u);
  EXPECT_TRUE(generous->complete);
  EXPECT_EQ(FindingKeys(*generous), FindingKeys(*unbudgeted));
  EXPECT_EQ(FindingsToJson(generous->findings),
            FindingsToJson(unbudgeted->findings));
}

TEST_F(ResilienceTest, TinyBudgetFindingsAreSubsetOfGenerous) {
  SynthOutput out = MixedProgram();
  auto generous = DTaint().Analyze(out.binary);
  ASSERT_TRUE(generous.ok());
  std::vector<std::string> full = FindingKeys(*generous);
  // Sweep budgets from starved to roomy: at every level the findings
  // must be a subset of the full run's — degraded summaries may hide
  // paths (counted in suppressed_findings) but never invent them.
  for (uint64_t max_steps : {20u, 100u, 500u, 2000u, 20000u}) {
    DTaintConfig config;
    config.interproc.budget.max_steps = max_steps;
    auto tiny = DTaint(config).Analyze(out.binary);
    ASSERT_TRUE(tiny.ok()) << "max_steps=" << max_steps;
    for (const std::string& key : FindingKeys(*tiny)) {
      EXPECT_TRUE(std::binary_search(full.begin(), full.end(), key))
          << "spurious finding under max_steps=" << max_steps << ": "
          << key;
    }
    if (tiny->degraded_functions > 0) EXPECT_FALSE(tiny->complete);
  }
}

TEST_F(ResilienceTest, DeadlineBudgetDegradesStateExplosion) {
  // Wall-clock budgets are inherently nondeterministic in *which*
  // function trips, but an absurdly small deadline must degrade the
  // analysis rather than hang or crash it.
  SynthOutput out = MixedProgram();
  DTaintConfig config;
  config.interproc.budget.deadline_ms = 0.0001;
  auto report = DTaint(config).Analyze(out.binary);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->degraded_functions, 0u);
  for (const Incident& inc : report->incidents) {
    EXPECT_EQ(inc.budget.exhausted_by, BudgetExhaustion::kDeadline);
  }
}

// ---------- on-demand alias oracle under expression budget -------------------

TEST_F(ResilienceTest, OnDemandAliasMemoBudgetDegradesConservatively) {
  // A program whose cross-call plant is detectable only through the
  // on-demand SSE oracle. The oracle's memo table charges against
  // max_expr_nodes; starving it must shed findings (empty twin sets →
  // fewer alias matches), never invent them — at every budget level
  // the findings are a subset of the generous on-demand run's.
  ProgramSpec spec;
  spec.name = "resil_alias";
  spec.arch = Arch::kDtArm;
  spec.seed = 88;
  spec.filler_functions = 20;
  PlantSpec xcall;
  xcall.id = "xa";
  xcall.pattern = VulnPattern::kCrossCallAlias;
  xcall.source = "recv";
  xcall.sink = "memcpy";
  PlantSpec direct;
  direct.id = "xd";
  direct.pattern = VulnPattern::kDirect;
  direct.source = "getenv";
  direct.sink = "system";
  spec.plants = {xcall, direct};
  auto out = SynthesizeBinary(spec);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  DTaintConfig config;
  config.interproc.alias_mode = AliasMode::kOnDemandSSE;
  auto generous = DTaint(config).Analyze(out->binary);
  ASSERT_TRUE(generous.ok());
  DetectionScore full_score =
      ScoreFindings(generous->findings, out->ground_truth);
  ASSERT_EQ(full_score.true_positives, 2u)
      << "generous on-demand run must find both plants";
  std::vector<std::string> full = FindingKeys(*generous);

  for (uint64_t nodes : {1u, 8u, 64u, 4096u}) {
    DTaintConfig starved = config;
    starved.interproc.budget.max_expr_nodes = nodes;
    auto tiny = DTaint(starved).Analyze(out->binary);
    ASSERT_TRUE(tiny.ok()) << "max_expr_nodes=" << nodes;
    for (const std::string& key : FindingKeys(*tiny)) {
      EXPECT_TRUE(std::binary_search(full.begin(), full.end(), key))
          << "spurious finding under max_expr_nodes=" << nodes << ": "
          << key;
    }
    // Fewer memoized twin pairs can only lose indirect-call
    // resolutions, never gain them.
    EXPECT_LE(tiny->indirect_calls_resolved,
              generous->indirect_calls_resolved)
        << "max_expr_nodes=" << nodes;
  }
}

// ---------- fault sites ------------------------------------------------------

TEST_F(ResilienceTest, InjectedLiftFaultIsIsolatedToOneFunction) {
  SynthOutput out = MixedProgram();
  auto clean = DTaint().Analyze(out.binary);
  ASSERT_TRUE(clean.ok());

  // Fail the lift of one filler function; everything else (including
  // every planted vulnerability) must still be found.
  ASSERT_TRUE(FaultPlan::Global().InstallSpec("lift@fill").ok());
  auto faulted = DTaint().Analyze(out.binary);
  ASSERT_TRUE(faulted.ok());
  ASSERT_EQ(faulted->incidents.size(), 1u);
  EXPECT_EQ(faulted->incidents[0].phase, "lift");
  EXPECT_FALSE(faulted->complete);
  EXPECT_EQ(faulted->analyzed_functions, clean->analyzed_functions - 1);
  std::vector<std::string> full = FindingKeys(*clean);
  for (const std::string& key : FindingKeys(*faulted)) {
    EXPECT_TRUE(std::binary_search(full.begin(), full.end(), key)) << key;
  }
}

TEST_F(ResilienceTest, InjectedSummaryFaultDegradesExactlyOneFunction) {
  SynthOutput out = MixedProgram();
  ASSERT_TRUE(FaultPlan::Global().InstallSpec("summary@fill").ok());
  auto report = DTaint().Analyze(out.binary);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->degraded_functions, 1u);
  ASSERT_EQ(report->incidents.size(), 1u);
  EXPECT_EQ(report->incidents[0].phase, "summary");
  EXPECT_EQ(report->incidents[0].budget.exhausted_by,
            BudgetExhaustion::kInjected);
  EXPECT_FALSE(report->complete);
}

TEST_F(ResilienceTest, InjectedPathfinderFaultFailsTheBinaryNotTheProcess) {
  SynthOutput out = MixedProgram();
  ASSERT_TRUE(FaultPlan::Global().InstallSpec("pathfind").ok());
  auto report = DTaint().Analyze(out.binary);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().ToString().find("pathfinder"),
            std::string::npos);
  // The very next analysis (fault consumed) succeeds.
  auto retry = DTaint().Analyze(out.binary);
  EXPECT_TRUE(retry.ok());
}

TEST_F(ResilienceTest, InjectedExtractFaultReturnsStatus) {
  auto fw = [] {
    FirmwareSpec spec;
    spec.vendor = "V";
    spec.product = "P";
    spec.version = "1";
    spec.binary_path = "/bin/httpd";
    spec.program.name = "httpd";
    spec.program.filler_functions = 4;
    return SynthesizeFirmware(spec);
  }();
  ASSERT_TRUE(fw.ok());
  std::vector<uint8_t> blob = FirmwarePacker::Pack(fw->image);

  ASSERT_TRUE(FaultPlan::Global().InstallSpec("extract@img.bin").ok());
  auto faulted = FirmwareExtractor::Extract(blob, "img.bin");
  ASSERT_FALSE(faulted.ok());
  EXPECT_NE(faulted.status().ToString().find("img.bin"), std::string::npos);
  // Fault consumed: same bytes extract fine afterwards.
  EXPECT_TRUE(FirmwareExtractor::Extract(blob, "img.bin").ok());
}

TEST_F(ResilienceTest, InjectedLoadFaultReturnsStatus) {
  SynthOutput out = MixedProgram();
  std::vector<uint8_t> bytes = BinaryWriter::Serialize(out.binary);
  ASSERT_TRUE(FaultPlan::Global().InstallSpec("load@resil.bin").ok());
  auto faulted = BinaryLoader::Load(bytes, "resil.bin");
  ASSERT_FALSE(faulted.ok());
  EXPECT_NE(faulted.status().ToString().find("resil.bin"),
            std::string::npos);
  EXPECT_TRUE(BinaryLoader::Load(bytes, "resil.bin").ok());
}

TEST_F(ResilienceTest, TransientCacheReadFaultIsRetriedThrough) {
  fs::path dir = "resilience_cache_retry";
  fs::remove_all(dir);
  CacheConfig config;
  config.disk_dir = dir.string();
  config.retry.initial_backoff_us = 1;
  Hash128 key{9, 1};
  FunctionSummary s;
  s.name = "victim";
  {
    SummaryCache writer(config);
    writer.Store(key, s);
  }
  // One transient failure, then the (retried) read succeeds — the
  // entry is served and the retry is accounted.
  ASSERT_TRUE(FaultPlan::Global().InstallSpec("cache_read:1").ok());
  SummaryCache reader(config);
  auto hit = reader.Lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->name, "victim");
  EXPECT_GE(reader.stats().io_retries, 1u);
  EXPECT_EQ(reader.stats().io_failures, 0u);
  fs::remove_all(dir);
}

TEST_F(ResilienceTest, PersistentCacheReadFaultFallsBackToMiss) {
  fs::path dir = "resilience_cache_readfail";
  fs::remove_all(dir);
  CacheConfig config;
  config.disk_dir = dir.string();
  config.retry.initial_backoff_us = 1;
  Hash128 key{9, 2};
  FunctionSummary s;
  s.name = "unreachable";
  {
    SummaryCache writer(config);
    writer.Store(key, s);
  }
  ASSERT_TRUE(FaultPlan::Global().InstallSpec("cache_read:*").ok());
  SummaryCache reader(config);
  EXPECT_FALSE(reader.Lookup(key).has_value());  // miss, not a crash
  EXPECT_GE(reader.stats().io_failures, 1u);
  EXPECT_EQ(reader.stats().misses, 1u);
  fs::remove_all(dir);
}

TEST_F(ResilienceTest, PersistentCacheWriteFaultKeepsMemoryTier) {
  fs::path dir = "resilience_cache_writefail";
  fs::remove_all(dir);
  CacheConfig config;
  config.disk_dir = dir.string();
  config.retry.initial_backoff_us = 1;
  ASSERT_TRUE(FaultPlan::Global().InstallSpec("cache_write:*").ok());
  SummaryCache cache(config);
  Hash128 key{9, 3};
  FunctionSummary s;
  s.name = "memonly";
  cache.Store(key, s);
  EXPECT_GE(cache.stats().io_failures, 1u);
  // Disk tier never materialized, memory tier still serves.
  EXPECT_FALSE(fs::exists(dir / (key.ToHex() + ".dtsc")));
  auto hit = cache.Lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->name, "memonly");
  fs::remove_all(dir);
}

// ---------- degraded summaries and the persistent cache ----------------------

TEST_F(ResilienceTest, DegradedSummariesAreNeverStored) {
  SynthOutput out = MixedProgram();
  fs::path dir = "resilience_degraded_cache";
  fs::remove_all(dir);
  CacheConfig cache_config;
  cache_config.disk_dir = dir.string();
  SummaryCache cache(cache_config);

  DTaintConfig starved;
  starved.interproc.cache = &cache;
  starved.interproc.budget.max_steps = 200;
  auto tiny = DTaint(starved).Analyze(out.binary);
  ASSERT_TRUE(tiny.ok());
  ASSERT_GT(tiny->degraded_functions, 0u);

  // Warm rerun with no budget: previously degraded functions cannot be
  // served from the cache (they were never stored), so the full run's
  // findings match a cache-free analysis exactly.
  DTaintConfig generous;
  generous.interproc.cache = &cache;
  auto warm = DTaint(generous).Analyze(out.binary);
  auto reference = DTaint().Analyze(out.binary);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(warm->degraded_functions, 0u);
  EXPECT_TRUE(warm->complete);
  EXPECT_EQ(FindingsToJson(warm->findings),
            FindingsToJson(reference->findings));
  fs::remove_all(dir);
}

// ---------- end-to-end: the report tells the truth ---------------------------

TEST_F(ResilienceTest, JsonReportCarriesIncidentsAndCompleteness) {
  SynthOutput out = MixedProgram();
  ASSERT_TRUE(FaultPlan::Global().InstallSpec("summary@fill").ok());
  auto report = DTaint().Analyze(out.binary);
  ASSERT_TRUE(report.ok());
  std::string json = ReportToJson(*report);
  EXPECT_NE(json.find("\"complete\":false"), std::string::npos);
  EXPECT_NE(json.find("\"incidents\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"phase\":\"summary\""), std::string::npos);
  EXPECT_NE(json.find("\"exhausted_by\":\"injected\""), std::string::npos);
  EXPECT_NE(json.find("\"resilience\""), std::string::npos);
}

}  // namespace
}  // namespace dtaint
