#include <gtest/gtest.h>

#include <set>

#include "src/binary/writer.h"
#include "src/cfg/cfg_builder.h"
#include "src/isa/asm_builder.h"
#include "src/symexec/engine.h"
#include "src/symexec/symstate.h"

namespace dtaint {
namespace {

/// Analyzes a single authored function (plus imports) and returns its
/// summary.
FunctionSummary Analyze(void (*author)(FnBuilder&),
                        Arch arch = Arch::kDtArm, EngineConfig config = {}) {
  BinaryWriter writer(arch, "t");
  for (const char* imp :
       {"recv", "getenv", "strcpy", "memcpy", "malloc", "strlen",
        "system", "read", "recvfrom"}) {
    writer.AddImport(imp);
  }
  FnBuilder b("f");
  author(b);
  writer.AddFunction(std::move(b).Finish().value());
  Binary bin = writer.Build().value();
  CfgBuilder builder(bin);
  Function fn = builder.BuildFunction(*bin.FindSymbol("f")).value();
  SymEngine engine(bin, config);
  return engine.Analyze(fn);
}

const DefPair* FindDef(const FunctionSummary& summary,
                       const std::string& d_str) {
  for (const DefPair& dp : summary.def_pairs) {
    if (dp.d && dp.d->ToString() == d_str) return &dp;
  }
  return nullptr;
}

TEST(SymState, EntryConventionArm) {
  SymState state = SymState::Entry(Arch::kDtArm);
  EXPECT_EQ(state.Reg(0)->ToString(), "arg0");
  EXPECT_EQ(state.Reg(3)->ToString(), "arg3");
  EXPECT_EQ(state.Reg(kRegSp)->kind(), SymKind::kSp0);
  EXPECT_EQ(state.Reg(5)->kind(), SymKind::kInit);
  // Stack args pre-seeded at [SP + k].
  bool defined = false;
  SymRef v = state.LoadMem(SymAdd(SymExpr::Sp0(), 4), 4, &defined);
  EXPECT_TRUE(defined);
  EXPECT_EQ(v->ToString(), "arg5");
}

TEST(SymState, EntryConventionMips) {
  SymState state = SymState::Entry(Arch::kDtMips);
  EXPECT_EQ(state.Reg(4)->ToString(), "arg0");
  EXPECT_EQ(state.Reg(7)->ToString(), "arg3");
  EXPECT_EQ(state.Reg(0)->kind(), SymKind::kInit);
}

TEST(SymState, StoreLoadRoundTrip) {
  SymState state = SymState::Entry(Arch::kDtArm);
  SymRef addr = SymAdd(SymExpr::Arg(0), 0x4C);
  SymRef value = SymExpr::Const(7);
  state.StoreMem(addr, value, 4);
  bool defined = false;
  SymRef out = state.LoadMem(addr, 4, &defined);
  EXPECT_TRUE(defined);
  EXPECT_TRUE(SymExpr::Equal(out, value));
  // Overwrite replaces.
  state.StoreMem(addr, SymExpr::Const(9), 4);
  EXPECT_EQ(state.LoadMem(addr, 4, nullptr)->const_value(), 9u);
}

TEST(SymState, LazyDerefForUndefined) {
  SymState state = SymState::Entry(Arch::kDtArm);
  SymRef addr = SymAdd(SymExpr::Arg(1), 0x24);
  bool defined = true;
  SymRef out = state.LoadMem(addr, 4, &defined);
  EXPECT_FALSE(defined);
  EXPECT_EQ(out->ToString(), "deref(arg1+0x24)");
}

TEST(Engine, StoreRecordsDefPair) {
  // str arg1 into [arg0 + 0x4C]: def deref(arg0+0x4c) = arg1.
  FunctionSummary summary = Analyze([](FnBuilder& b) {
    b.StrW(1, 0, 0x4C);
    b.Ret();
  });
  const DefPair* dp = FindDef(summary, "deref(arg0+0x4c)");
  ASSERT_NE(dp, nullptr);
  EXPECT_EQ(dp->u->ToString(), "arg1");
}

TEST(Engine, LoadedChainMatchesPaperNotation) {
  // ldr r5,[r1,0x24]; str r5,[r0,0x4C]  (the paper's woo body).
  FunctionSummary summary = Analyze([](FnBuilder& b) {
    b.LdrW(5, 1, 0x24);
    b.StrW(5, 0, 0x4C);
    b.Ret();
  });
  const DefPair* dp = FindDef(summary, "deref(arg0+0x4c)");
  ASSERT_NE(dp, nullptr);
  EXPECT_EQ(dp->u->ToString(), "deref(arg1+0x24)");
  // The load from an argument-rooted unknown is an undefined use.
  ASSERT_FALSE(summary.undefined_uses.empty());
  EXPECT_EQ(summary.undefined_uses[0].u->ToString(), "deref(arg1+0x24)");
}

TEST(Engine, BranchForksAndRecordsConstraints) {
  FunctionSummary summary = Analyze([](FnBuilder& b) {
    b.CmpI(0, 0x40);       // arg0 vs 64
    b.Bge("out");
    b.MovI(2, 1);
    b.Label("out");
    b.Ret();
  });
  EXPECT_EQ(summary.paths_explored, 2);
  EXPECT_EQ(summary.return_values.size(), 2u);
}

TEST(Engine, ConcreteBranchDoesNotFork) {
  FunctionSummary summary = Analyze([](FnBuilder& b) {
    b.MovI(1, 5);
    b.CmpI(1, 5);          // 5 == 5: concrete
    b.Bne("dead");
    b.MovI(2, 1);
    b.Ret();
    b.Label("dead");
    b.MovI(2, 2);
    b.Ret();
  });
  EXPECT_EQ(summary.paths_explored, 1);
}

TEST(Engine, LoopBlocksAnalyzedOncePerPath) {
  // A loop with a symbolic bound still terminates with bounded paths.
  FunctionSummary summary = Analyze([](FnBuilder& b) {
    b.MovI(5, 0);
    b.Label("top");
    b.AddI(5, 5, 1);
    b.CmpR(5, 0);          // vs arg0 (symbolic)
    b.Blt("top");
    b.Ret();
  });
  EXPECT_LE(summary.paths_explored, 3);
  EXPECT_FALSE(summary.truncated);
}

TEST(Engine, RecvTaintsBuffer) {
  FunctionSummary summary = Analyze([](FnBuilder& b) {
    b.MovI(0, 3);
    b.MovR(1, 4);          // buf in r4 (init symbol)
    b.MovI(2, 0x200);
    b.Call("recv");
    b.Ret();
  });
  bool found = false;
  for (const DefPair& dp : summary.def_pairs) {
    if (dp.u && dp.u->IsTainted()) found = true;
  }
  EXPECT_TRUE(found);
  ASSERT_EQ(summary.calls.size(), 1u);
  EXPECT_EQ(summary.calls[0].callee, "recv");
  EXPECT_TRUE(summary.calls[0].is_import);
}

TEST(Engine, GetenvReturnsTaintedPointer) {
  FunctionSummary summary = Analyze([](FnBuilder& b) {
    b.MovI(0, 0x100);
    b.Call("getenv");
    b.LdrB(5, 0, 0);       // read *ret
    b.StrW(5, 13, 8);      // park it so a def pair exists
    b.Ret();
  });
  const DefPair* dp = FindDef(summary, "deref(SP+0x8)");
  ASSERT_NE(dp, nullptr);
  EXPECT_TRUE(dp->u->IsTainted());
}

TEST(Engine, StrcpyCopiesPointeeValue) {
  FunctionSummary summary = Analyze([](FnBuilder& b) {
    b.MovR(0, 4);          // dst
    b.MovR(1, 5);          // src
    b.Call("strcpy");
    b.Ret();
  });
  bool found = false;
  for (const DefPair& dp : summary.def_pairs) {
    if (dp.d->ToString() == "deref(init_r4)" &&
        dp.u->ToString() == "deref(init_r5)") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // strcpy returns dst.
  ASSERT_FALSE(summary.return_values.empty());
  EXPECT_EQ(summary.return_values[0]->ToString(), "init_r4");
}

TEST(Engine, MallocYieldsHeapIdentityPerCallsite) {
  FunctionSummary summary = Analyze([](FnBuilder& b) {
    b.MovI(0, 16);
    b.Call("malloc");
    b.MovR(4, 0);
    b.MovI(0, 16);
    b.Call("malloc");
    b.MovR(5, 0);
    b.StrW(4, 13, 0);
    b.StrW(5, 13, 4);
    b.Ret();
  });
  const DefPair* a = FindDef(summary, "deref(SP)");
  const DefPair* b2 = FindDef(summary, "deref(SP+0x4)");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b2, nullptr);
  EXPECT_EQ(a->u->kind(), SymKind::kHeap);
  EXPECT_EQ(b2->u->kind(), SymKind::kHeap);
  EXPECT_NE(a->u->heap_id(), b2->u->heap_id());  // distinct callsites
}

TEST(Engine, StrlenReturnsBufferFunction) {
  FunctionSummary summary = Analyze([](FnBuilder& b) {
    b.MovR(0, 4);
    b.Call("strlen");
    b.StrW(0, 13, 0);
    b.Ret();
  });
  const DefPair* dp = FindDef(summary, "deref(SP)");
  ASSERT_NE(dp, nullptr);
  EXPECT_EQ(dp->u->ToString(), "deref(init_r4)");
}

TEST(Engine, LocalCallYieldsRetSymbol) {
  BinaryWriter writer(Arch::kDtArm, "t");
  {
    FnBuilder b("callee");
    b.MovI(0, 7);
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  {
    FnBuilder b("f");
    b.Call("callee");
    b.StrW(0, 13, 0);
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  Binary bin = writer.Build().value();
  CfgBuilder builder(bin);
  Function fn = builder.BuildFunction(*bin.FindSymbol("f")).value();
  SymEngine engine(bin);
  FunctionSummary summary = engine.Analyze(fn);
  const DefPair* dp = FindDef(summary, "deref(SP)");
  ASSERT_NE(dp, nullptr);
  EXPECT_EQ(dp->u->kind(), SymKind::kRet);
}

TEST(Engine, StackPassedCallArgsCollected) {
  FunctionSummary summary = Analyze([](FnBuilder& b) {
    b.SubI(13, 13, 0x20);
    b.MovI(5, 42);
    b.StrW(5, 13, 0);       // 5th argument on the stack
    b.MovI(0, 1);
    b.MovI(1, 2);
    b.MovI(2, 3);
    b.MovI(3, 4);
    b.Call("system");       // modeled with 1 param, but CollectArgs is
    b.Ret();                // exercised via the event regardless
  });
  ASSERT_EQ(summary.calls.size(), 1u);
  EXPECT_EQ(summary.calls[0].args[0]->const_value(), 1u);
}

TEST(Engine, TypeInferenceFromLoadsAndCompares) {
  FunctionSummary summary = Analyze([](FnBuilder& b) {
    b.LdrW(5, 0, 8);   // arg0 used as pointer
    b.CmpI(5, 10);     // loaded value compared to an int
    b.Beq("out");
    b.Label("out");
    b.Ret();
  });
  EXPECT_EQ(summary.types.TypeOf(SymExpr::Arg(0)), ValueType::kPtr);
  EXPECT_EQ(summary.types.TypeOf(
                SymExpr::Deref(SymAdd(SymExpr::Arg(0), 8))),
            ValueType::kInt);
}

TEST(Engine, LibSignatureTypesRecorded) {
  FunctionSummary summary = Analyze([](FnBuilder& b) {
    b.MovR(0, 4);
    b.MovR(1, 5);
    b.Call("strcpy");
    b.Ret();
  });
  EXPECT_EQ(summary.types.TypeOf(SymExpr::InitReg(4)),
            ValueType::kCharPtr);
}

TEST(Engine, PathBudgetSetsTruncatedFlag) {
  EngineConfig tight;
  tight.max_paths = 2;
  FunctionSummary summary = Analyze(
      [](FnBuilder& b) {
        for (int i = 0; i < 4; ++i) {
          b.CmpR(0, 1);
          b.Beq("l" + std::to_string(i));
          b.Label("l" + std::to_string(i));
        }
        b.Ret();
      },
      Arch::kDtArm, tight);
  EXPECT_TRUE(summary.truncated);
  EXPECT_LE(summary.paths_explored, 2);
}

TEST(Engine, DefPairsCarryConstraints) {
  FunctionSummary summary = Analyze([](FnBuilder& b) {
    b.CmpI(0, 0x40);
    b.Bge("out");
    b.StrW(1, 13, 0);   // store under the constraint arg0 < 0x40
    b.Label("out");
    b.Ret();
  });
  const DefPair* dp = FindDef(summary, "deref(SP)");
  ASSERT_NE(dp, nullptr);
  ASSERT_EQ(dp->constraints.size(), 1u);
  EXPECT_EQ(dp->constraints[0].op, BinOp::kCmpGe);
  EXPECT_FALSE(dp->constraints[0].taken);
}

TEST(Engine, TypeMapJoinSemantics) {
  EXPECT_EQ(JoinTypes(ValueType::kUnknown, ValueType::kInt),
            ValueType::kInt);
  EXPECT_EQ(JoinTypes(ValueType::kInt, ValueType::kPtr), ValueType::kPtr);
  EXPECT_EQ(JoinTypes(ValueType::kPtr, ValueType::kCharPtr),
            ValueType::kCharPtr);
  EXPECT_TRUE(IsPointerType(ValueType::kCharPtr));
  EXPECT_FALSE(IsPointerType(ValueType::kChar));
}

TEST(LibModels, TableLookups) {
  ASSERT_NE(FindLibModel("recv"), nullptr);
  EXPECT_EQ(FindLibModel("recv")->taints_pointee_of_arg, 1);
  ASSERT_NE(FindLibModel("getenv"), nullptr);
  EXPECT_TRUE(FindLibModel("getenv")->returns_tainted_buffer);
  ASSERT_NE(FindLibModel("memcpy"), nullptr);
  EXPECT_EQ(FindLibModel("memcpy")->copy_dst_arg, 0);
  EXPECT_EQ(FindLibModel("no_such_fn"), nullptr);
  ASSERT_NE(FindLibSignature("sprintf"), nullptr);
  EXPECT_EQ(FindLibSignature("sprintf")->params[0], ValueType::kCharPtr);
}

}  // namespace
}  // namespace dtaint

// ---- summary dump (appended) -------------------------------------------------

namespace dtaint {
namespace {

TEST(SummaryDump, RendersAllSections) {
  FunctionSummary summary = Analyze([](FnBuilder& b) {
    b.MovI(0, 3);
    b.MovR(1, 4);
    b.MovI(2, 0x200);
    b.Call("recv");
    b.StrW(0, 13, 0);
    b.Ret();
  });
  summary.name = "dump_me";
  std::string out = SummaryToString(summary);
  EXPECT_NE(out.find("summary of dump_me"), std::string::npos);
  EXPECT_NE(out.find("definition pairs"), std::string::npos);
  EXPECT_NE(out.find("recv("), std::string::npos);
  EXPECT_NE(out.find("returns:"), std::string::npos);
  EXPECT_NE(out.find("taint(recv@"), std::string::npos);
}

TEST(SummaryDump, TruncatesLongLists) {
  FunctionSummary summary;
  summary.name = "long";
  for (int i = 0; i < 100; ++i) {
    DefPair dp;
    dp.d = SymExpr::Deref(SymAdd(SymExpr::Sp0(), i * 4));
    dp.u = SymExpr::Const(i);
    summary.def_pairs.push_back(std::move(dp));
  }
  std::string out = SummaryToString(summary, /*max_items=*/5);
  EXPECT_NE(out.find("..."), std::string::npos);
  // 5 entries + ellipsis, not 100.
  EXPECT_LT(out.size(), 1000u);
}

}  // namespace
}  // namespace dtaint

// ---- widening and stack-args (appended) ---------------------------------------

namespace dtaint {
namespace {

TEST(EngineLimits, DeepExpressionsAreWidened) {
  // A long dependent ALU chain on a symbolic input must not build an
  // unbounded expression tree: beyond max_expr_depth values become
  // fresh opaque symbols.
  EngineConfig tight;
  tight.max_expr_depth = 8;
  FunctionSummary summary = Analyze(
      [](FnBuilder& b) {
        b.MovR(5, 0);  // start from arg0
        for (int i = 0; i < 40; ++i) {
          b.AddR(5, 5, 1);   // r5 = r5 + arg1 (depth grows each step)
        }
        b.StrW(5, 13, 0);
        b.Ret();
      },
      Arch::kDtArm, tight);
  const DefPair* dp = FindDef(summary, "deref(SP)");
  ASSERT_NE(dp, nullptr);
  EXPECT_LE(dp->u->Depth(), 8 + 2);  // widened, not 80-node monster
}

TEST(EngineArgs, SixParameterImportReadsStackSlots) {
  // recvfrom has 6 modeled parameters; 4 travel in registers, the
  // last two on the stack at [sp], [sp+4].
  FunctionSummary summary = Analyze([](FnBuilder& b) {
    b.SubI(13, 13, 0x20);
    b.MovI(5, 0x111);
    b.StrW(5, 13, 0);     // arg4
    b.MovI(5, 0x222);
    b.StrW(5, 13, 4);     // arg5
    b.MovI(0, 3);
    b.MovR(1, 4);
    b.MovI(2, 0x100);
    b.MovI(3, 0);
    b.Call("recvfrom");
    b.Ret();
  });
  // recvfrom isn't in the Analyze() import list by default; re-check
  // via whichever call event got recorded.
  ASSERT_FALSE(summary.calls.empty());
  const CallEvent& call = summary.calls.back();
  ASSERT_GE(call.args.size(), 6u);
  EXPECT_EQ(call.args[4]->const_value(), 0x111u);
  EXPECT_EQ(call.args[5]->const_value(), 0x222u);
}

TEST(EngineReturns, PathsYieldDistinctReturnValues) {
  FunctionSummary summary = Analyze([](FnBuilder& b) {
    b.CmpI(0, 0);
    b.Beq("zero");
    b.MovI(0, 1);
    b.Ret();
    b.Label("zero");
    b.MovI(0, 2);
    b.Ret();
  });
  ASSERT_EQ(summary.return_values.size(), 2u);
  std::set<uint32_t> values;
  for (const SymRef& ret : summary.return_values) {
    values.insert(ret->const_value());
  }
  EXPECT_EQ(values, (std::set<uint32_t>{1, 2}));
}

}  // namespace
}  // namespace dtaint
