#include <gtest/gtest.h>

#include "src/binary/writer.h"
#include "src/cfg/callgraph.h"
#include "src/cfg/cfg_builder.h"
#include "src/core/pathfinder.h"
#include "src/isa/asm_builder.h"

namespace dtaint {
namespace {

struct Pipeline {
  Binary binary;
  Program program;
  ProgramAnalysis analysis;
};

Pipeline RunPipeline(BinaryWriter& writer) {
  Pipeline out{writer.Build().value(), {}, {}};
  CfgBuilder builder(out.binary);
  out.program = builder.BuildProgram().value();
  SymEngine engine(out.binary);
  CallGraph graph = CallGraph::Build(out.program);
  out.analysis = RunBottomUp(out.program, graph, engine);
  return out;
}

TEST(DefCoversUse, ExactAndFieldMatch) {
  SymRef buf = SymAdd(SymExpr::Arg(0), 0x10);
  SymRef loc = SymExpr::Deref(SymAdd(buf, 4));
  EXPECT_TRUE(DefCoversUse(loc, loc));
  // Same base+offset, different size view.
  EXPECT_TRUE(DefCoversUse(loc, SymExpr::Deref(SymAdd(buf, 4), 1)));
  // Different offsets do not cover.
  EXPECT_FALSE(DefCoversUse(loc, SymExpr::Deref(SymAdd(buf, 8))));
  // Different bases do not cover.
  EXPECT_FALSE(
      DefCoversUse(loc, SymExpr::Deref(SymAdd(SymExpr::Arg(1), 4))));
  // Non-deref expressions never cover.
  EXPECT_FALSE(DefCoversUse(buf, loc));
}

TEST(PathFinder, DirectSourceToSink) {
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddImport("getenv");
  writer.AddImport("system");
  FnBuilder b("h");
  b.MovI(0, 0x100);
  b.Call("getenv");
  b.Call("system");  // r0 still holds getenv's return
  b.Ret();
  writer.AddFunction(std::move(b).Finish().value());
  Pipeline p = RunPipeline(writer);
  PathFinder finder(p.program, p.analysis);
  EXPECT_EQ(finder.SinkCount(), 1u);
  auto paths = finder.FindAll();
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].sink_name, "system");
  EXPECT_EQ(paths[0].source_name, "getenv");
  EXPECT_EQ(paths[0].vuln_class, VulnClass::kCommandInjection);
  EXPECT_EQ(paths[0].sink_function, "h");
}

TEST(PathFinder, CrossFunctionViaCallers) {
  // Sink consumes its formal argument; the caller supplies tainted
  // data — the trace must lift into the caller.
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddImport("getenv");
  writer.AddImport("system");
  {
    FnBuilder b("do_cmd");  // do_cmd(cmd) -> system(cmd)
    b.Call("system");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  {
    FnBuilder b("top");
    b.MovI(0, 0x100);
    b.Call("getenv");
    b.Call("do_cmd");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  Pipeline p = RunPipeline(writer);
  PathFinder finder(p.program, p.analysis);
  auto paths = finder.FindAll();
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].sink_function, "do_cmd");
  // The trace crossed into `top`.
  bool crossed = false;
  for (const PathHop& hop : paths[0].hops) {
    if (hop.function == "top") crossed = true;
  }
  EXPECT_TRUE(crossed);
}

TEST(PathFinder, UntaintedSinkYieldsNoPath) {
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddImport("system");
  uint32_t cmd = kRodataBase + writer.AddRodata({'l', 's', 0});
  FnBuilder b("h");
  b.MovConst(0, cmd);
  b.Call("system");
  b.Ret();
  writer.AddFunction(std::move(b).Finish().value());
  Pipeline p = RunPipeline(writer);
  PathFinder finder(p.program, p.analysis);
  EXPECT_EQ(finder.SinkCount(), 1u);
  EXPECT_TRUE(finder.FindAll().empty());
}

TEST(PathFinder, LoopCopySinkDetected) {
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddImport("recv");
  FnBuilder b("h");
  b.SubI(13, 13, 0x300);
  b.AddI(4, 13, 0x10);   // src
  b.MovI(0, 3);
  b.MovR(1, 4);
  b.MovI(2, 0x200);
  b.Call("recv");
  b.LdrW(6, 4, 4);       // attacker-controlled offset
  b.AddI(5, 13, 0x210);  // dst
  b.Label("loop");
  b.LdrBR(7, 4, 6);
  b.StrBR(7, 5, 6);      // dst[off] = src[off]
  b.AddI(6, 6, 1);
  b.CmpI(7, 0);
  b.Bne("loop");
  b.AddI(13, 13, 0x300);
  b.Ret();
  writer.AddFunction(std::move(b).Finish().value());
  Pipeline p = RunPipeline(writer);
  PathFinder finder(p.program, p.analysis);
  auto paths = finder.FindAll();
  bool loop_path = false;
  for (const TaintPath& path : paths) {
    if (path.sink_name == "loop") {
      loop_path = true;
      EXPECT_EQ(path.source_name, "recv");
      EXPECT_TRUE(path.sink_store_addr != nullptr);
    }
  }
  EXPECT_TRUE(loop_path);
}

TEST(PathFinder, LoopCopyDisabledByConfig) {
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddImport("recv");
  FnBuilder b("h");
  b.SubI(13, 13, 0x300);
  b.AddI(4, 13, 0x10);
  b.MovI(0, 3);
  b.MovR(1, 4);
  b.MovI(2, 0x200);
  b.Call("recv");
  b.LdrW(6, 4, 4);
  b.AddI(5, 13, 0x210);
  b.Label("loop");
  b.LdrBR(7, 4, 6);
  b.StrBR(7, 5, 6);
  b.AddI(6, 6, 1);
  b.CmpI(7, 0);
  b.Bne("loop");
  b.Ret();
  writer.AddFunction(std::move(b).Finish().value());
  Pipeline p = RunPipeline(writer);
  PathFinderConfig config;
  config.detect_loop_copies = false;
  PathFinder finder(p.program, p.analysis, config);
  for (const TaintPath& path : finder.FindAll()) {
    EXPECT_NE(path.sink_name, "loop");
  }
}

TEST(PathFinder, DepthBudgetStopsRunawayTraces) {
  // A chain of N wrappers; with max_depth < N the source is out of
  // reach and no path is reported (bounded work, no crash).
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddImport("getenv");
  writer.AddImport("system");
  {
    FnBuilder b("sinkfn");
    b.Call("system");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  std::string prev = "sinkfn";
  for (int i = 0; i < 6; ++i) {
    FnBuilder b("wrap" + std::to_string(i));
    b.Call(prev);
    b.Ret();
    prev = "wrap" + std::to_string(i);
    writer.AddFunction(std::move(b).Finish().value());
  }
  {
    FnBuilder b("top");
    b.MovI(0, 0x100);
    b.Call("getenv");
    b.Call(prev);
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  Pipeline p = RunPipeline(writer);
  PathFinderConfig tight;
  tight.max_depth = 3;
  PathFinder finder(p.program, p.analysis, tight);
  EXPECT_TRUE(finder.FindAll().empty());
  PathFinderConfig enough;
  enough.max_depth = 24;
  PathFinder finder2(p.program, p.analysis, enough);
  EXPECT_EQ(finder2.FindAll().size(), 1u);
}

TEST(PathFinder, DuplicatePathsDeduplicated) {
  // Two distinct flows from the same source callsite to the same sink
  // callsite collapse into one reported path.
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddImport("getenv");
  writer.AddImport("system");
  FnBuilder b("h");
  b.MovI(0, 0x100);
  b.Call("getenv");
  b.MovR(4, 0);
  b.StrW(4, 13, -8);   // also park it in memory
  b.LdrW(5, 13, -8);
  b.MovR(0, 5);
  b.Call("system");
  b.Ret();
  writer.AddFunction(std::move(b).Finish().value());
  Pipeline p = RunPipeline(writer);
  PathFinder finder(p.program, p.analysis);
  EXPECT_EQ(finder.FindAll().size(), 1u);
}

}  // namespace
}  // namespace dtaint
