#include <gtest/gtest.h>

#include "src/core/sanitizer.h"

namespace dtaint {
namespace {

PathConstraint Constraint(BinOp op, SymRef lhs, SymRef rhs, bool taken) {
  PathConstraint c;
  c.op = op;
  c.lhs = std::move(lhs);
  c.rhs = std::move(rhs);
  c.taken = taken;
  return c;
}

TaintPath OverflowPath(SymRef tainted) {
  TaintPath path;
  path.sink_name = "memcpy";
  path.vuln_class = VulnClass::kBufferOverflow;
  path.sink_arg = tainted;
  path.traced_exprs = {tainted};
  return path;
}

TaintPath InjectionPath(SymRef cmd) {
  TaintPath path;
  path.sink_name = "system";
  path.vuln_class = VulnClass::kCommandInjection;
  path.sink_arg = cmd;
  path.traced_exprs = {cmd, SymExpr::Deref(cmd)};
  return path;
}

TEST(Sanitizer, NoConstraintsMeansVulnerable) {
  TaintPath path = OverflowPath(SymExpr::Deref(SymExpr::Arg(0)));
  EXPECT_FALSE(CheckSanitization(path).sanitized);
}

TEST(Sanitizer, UpperBoundTakenSanitizes) {
  SymRef n = SymExpr::Deref(SymExpr::Arg(0));
  TaintPath path = OverflowPath(n);
  // n < 64 taken.
  path.constraints.push_back(
      Constraint(BinOp::kCmpLt, n, SymExpr::Const(64), true));
  auto verdict = CheckSanitization(path);
  EXPECT_TRUE(verdict.sanitized);
  EXPECT_NE(verdict.reason.find("length bound"), std::string::npos);
}

TEST(Sanitizer, NotGreaterFallthroughSanitizes) {
  SymRef n = SymExpr::Deref(SymExpr::Arg(0));
  TaintPath path = OverflowPath(n);
  // !(n >= 64): the fallthrough side of a bge guard.
  path.constraints.push_back(
      Constraint(BinOp::kCmpGe, n, SymExpr::Const(64), false));
  EXPECT_TRUE(CheckSanitization(path).sanitized);
}

TEST(Sanitizer, LowerBoundDoesNotSanitize) {
  SymRef n = SymExpr::Deref(SymExpr::Arg(0));
  TaintPath path = OverflowPath(n);
  // n > 0 taken: bounds below, still unbounded above.
  path.constraints.push_back(
      Constraint(BinOp::kCmpGt, n, SymExpr::Const(0), true));
  EXPECT_FALSE(CheckSanitization(path).sanitized);
}

TEST(Sanitizer, SymbolicUpperBoundCounts) {
  // The paper explicitly allows "n < y, y is a symbolic value".
  SymRef n = SymExpr::Deref(SymExpr::Arg(0));
  TaintPath path = OverflowPath(n);
  path.constraints.push_back(
      Constraint(BinOp::kCmpLt, n, SymExpr::Arg(1), true));
  EXPECT_TRUE(CheckSanitization(path).sanitized);
}

TEST(Sanitizer, ReversedOperandsBound) {
  // 64 > n taken also bounds n from above.
  SymRef n = SymExpr::Deref(SymExpr::Arg(0));
  TaintPath path = OverflowPath(n);
  path.constraints.push_back(
      Constraint(BinOp::kCmpGt, SymExpr::Const(64), n, true));
  EXPECT_TRUE(CheckSanitization(path).sanitized);
}

TEST(Sanitizer, UnrelatedConstraintIgnored) {
  TaintPath path = OverflowPath(SymExpr::Deref(SymExpr::Arg(0)));
  path.constraints.push_back(Constraint(
      BinOp::kCmpLt, SymExpr::Arg(3), SymExpr::Const(64), true));
  EXPECT_FALSE(CheckSanitization(path).sanitized);
}

TEST(Sanitizer, RegionMatchTiesStrlenToBuffer) {
  // Traced: deref(buf+4); constraint on deref(buf) (strlen's modeled
  // return) must still count — same region.
  SymRef buf = SymAdd(SymExpr::Sp0(), 0x40);
  TaintPath path = OverflowPath(SymExpr::Deref(SymAdd(buf, 4)));
  path.constraints.push_back(Constraint(
      BinOp::kCmpLt, SymExpr::Deref(buf), SymExpr::Const(64), true));
  EXPECT_TRUE(CheckSanitization(path).sanitized);
}

TEST(Sanitizer, SemicolonFilterSanitizesInjection) {
  SymRef cmd = SymExpr::Ret(0x100);
  TaintPath path = InjectionPath(cmd);
  // deref8(cmd+i) == ';' observed on either polarity.
  SymRef byte = SymExpr::Deref(SymAdd(cmd, 3), 1);
  path.constraints.push_back(
      Constraint(BinOp::kCmpEq, byte, SymExpr::Const(0x3B), false));
  auto verdict = CheckSanitization(path);
  EXPECT_TRUE(verdict.sanitized);
  EXPECT_NE(verdict.reason.find("semicolon"), std::string::npos);
}

TEST(Sanitizer, LengthCheckDoesNotSanitizeInjection) {
  // A length bound is NOT a semicolon filter; injections stay.
  SymRef cmd = SymExpr::Ret(0x100);
  TaintPath path = InjectionPath(cmd);
  path.constraints.push_back(Constraint(
      BinOp::kCmpLt, SymExpr::Deref(cmd), SymExpr::Const(64), true));
  EXPECT_FALSE(CheckSanitization(path).sanitized);
}

TEST(Sanitizer, CompareAgainstOtherCharNotEnough) {
  SymRef cmd = SymExpr::Ret(0x100);
  TaintPath path = InjectionPath(cmd);
  SymRef byte = SymExpr::Deref(cmd, 1);
  path.constraints.push_back(
      Constraint(BinOp::kCmpEq, byte, SymExpr::Const('a'), false));
  EXPECT_FALSE(CheckSanitization(path).sanitized);
}

TEST(Sanitizer, LoopIndexBoundSanitizes) {
  SymRef idx = SymExpr::Deref(SymAdd(SymExpr::Sp0(), 0x14));
  SymRef dst = SymAdd(SymExpr::Sp0(), 0x210);
  TaintPath path;
  path.sink_name = "loop";
  path.vuln_class = VulnClass::kBufferOverflow;
  path.sink_store_addr = SymExpr::Bin(BinOp::kAdd, dst, idx);
  path.traced_exprs = {SymExpr::Deref(SymAdd(SymExpr::Sp0(), 0x10))};
  // !(idx >= 0x2F): the in-loop side of the bounds check.
  path.constraints.push_back(
      Constraint(BinOp::kCmpGe, idx, SymExpr::Const(0x2F), false));
  EXPECT_TRUE(CheckSanitization(path).sanitized);
}

TEST(Sanitizer, LoopWithoutIndexBoundVulnerable) {
  SymRef idx = SymExpr::Deref(SymAdd(SymExpr::Sp0(), 0x14));
  SymRef dst = SymAdd(SymExpr::Sp0(), 0x210);
  TaintPath path;
  path.sink_name = "loop";
  path.vuln_class = VulnClass::kBufferOverflow;
  path.sink_store_addr = SymExpr::Bin(BinOp::kAdd, dst, idx);
  path.traced_exprs = {SymExpr::Deref(SymAdd(SymExpr::Sp0(), 0x10))};
  // Only the copy-termination compare (data vs 0): not a bound.
  path.constraints.push_back(Constraint(
      BinOp::kCmpNe, SymExpr::Deref(SymExpr::Sp0(), 1),
      SymExpr::Const(0), true));
  EXPECT_FALSE(CheckSanitization(path).sanitized);
}

TEST(Sanitizer, FilterVulnerableSplits) {
  SymRef n = SymExpr::Deref(SymExpr::Arg(0));
  TaintPath safe = OverflowPath(n);
  safe.constraints.push_back(
      Constraint(BinOp::kCmpLt, n, SymExpr::Const(64), true));
  TaintPath unsafe = OverflowPath(n);
  auto vulnerable = FilterVulnerable({safe, unsafe});
  EXPECT_EQ(vulnerable.size(), 1u);
}

}  // namespace
}  // namespace dtaint
