#include <gtest/gtest.h>

#include "src/symexec/defpairs.h"
#include "src/symexec/symexpr.h"

namespace dtaint {
namespace {

TEST(SymExpr, ConstantFolding) {
  SymRef e = SymExpr::Bin(BinOp::kAdd, SymExpr::Const(3), SymExpr::Const(4));
  ASSERT_EQ(e->kind(), SymKind::kConst);
  EXPECT_EQ(e->const_value(), 7u);
  e = SymExpr::Bin(BinOp::kMul, SymExpr::Const(5), SymExpr::Const(6));
  EXPECT_EQ(e->const_value(), 30u);
  // Wrap-around semantics.
  e = SymExpr::Bin(BinOp::kAdd, SymExpr::Const(0xFFFFFFFF),
                   SymExpr::Const(1));
  EXPECT_EQ(e->const_value(), 0u);
}

TEST(SymExpr, ComparesDoNotFoldToConstKindWhenSymbolic) {
  SymRef cmp = SymExpr::Bin(BinOp::kCmpLt, SymExpr::Arg(0),
                            SymExpr::Const(64));
  EXPECT_EQ(cmp->kind(), SymKind::kBin);
}

TEST(SymExpr, AddReassociation) {
  // (arg0 + 8) + 8 -> arg0 + 16
  SymRef e = SymAdd(SymAdd(SymExpr::Arg(0), 8), 8);
  auto split = SymExpr::SplitBaseOffset(e);
  ASSERT_TRUE(split.base);
  EXPECT_EQ(split.base->kind(), SymKind::kArg);
  EXPECT_EQ(split.offset, 16);
}

TEST(SymExpr, AddZeroIdentity) {
  SymRef a = SymExpr::Arg(1);
  EXPECT_TRUE(SymExpr::Equal(SymAdd(a, 0), a));
}

TEST(SymExpr, SubConstBecomesNegativeAdd) {
  SymRef e = SymExpr::Bin(BinOp::kSub, SymExpr::Sp0(), SymExpr::Const(0x118));
  auto split = SymExpr::SplitBaseOffset(e);
  EXPECT_EQ(split.base->kind(), SymKind::kSp0);
  EXPECT_EQ(split.offset, -0x118);
  // ... and cancels back.
  EXPECT_TRUE(SymExpr::Equal(SymAdd(e, 0x118), SymExpr::Sp0()));
}

TEST(SymExpr, SubSelfIsZero) {
  SymRef a = SymExpr::Arg(2);
  SymRef e = SymExpr::Bin(BinOp::kSub, a, a);
  ASSERT_EQ(e->kind(), SymKind::kConst);
  EXPECT_EQ(e->const_value(), 0u);
}

TEST(SymExpr, EqualityIsStructural) {
  SymRef a = SymExpr::Deref(SymAdd(SymExpr::Arg(0), 0x4C));
  SymRef b = SymExpr::Deref(SymAdd(SymExpr::Arg(0), 0x4C));
  SymRef c = SymExpr::Deref(SymAdd(SymExpr::Arg(1), 0x4C));
  EXPECT_TRUE(SymExpr::Equal(a, b));
  EXPECT_EQ(a->hash(), b->hash());
  EXPECT_FALSE(SymExpr::Equal(a, c));
}

TEST(SymExpr, DerefSizeDistinguishes) {
  SymRef a = SymExpr::Deref(SymExpr::Arg(0), 4);
  SymRef b = SymExpr::Deref(SymExpr::Arg(0), 1);
  EXPECT_FALSE(SymExpr::Equal(a, b));
}

TEST(SymExpr, Contains) {
  SymRef needle = SymExpr::Arg(0);
  SymRef hay = SymExpr::Deref(SymAdd(SymExpr::Arg(0), 8));
  EXPECT_TRUE(hay->Contains(needle));
  EXPECT_FALSE(hay->Contains(SymExpr::Arg(3)));
}

TEST(SymExpr, ReplaceRewritesAllOccurrences) {
  SymRef arg = SymExpr::Arg(0);
  SymRef expr = SymExpr::Bin(BinOp::kAdd, SymExpr::Deref(arg), arg);
  SymRef replacement = SymExpr::Sp0();
  SymRef out = SymExpr::Replace(expr, arg, replacement);
  EXPECT_FALSE(out->Contains(arg));
  EXPECT_TRUE(out->Contains(replacement));
}

TEST(SymExpr, ReplaceNoMatchReturnsSamePointer) {
  SymRef expr = SymExpr::Deref(SymExpr::Arg(0));
  SymRef out = SymExpr::Replace(expr, SymExpr::Arg(5), SymExpr::Sp0());
  EXPECT_EQ(out.get(), expr.get());
}

TEST(SymExpr, CollectDerefs) {
  // deref(deref(arg0+0x58)+0xEC) has two deref nodes.
  SymRef inner = SymExpr::Deref(SymAdd(SymExpr::Arg(0), 0x58));
  SymRef outer = SymExpr::Deref(SymAdd(inner, 0xEC));
  std::vector<SymRef> all;
  SymExpr::CollectDerefs(outer, &all);
  EXPECT_EQ(all.size(), 2u);
  std::vector<SymRef> skip;
  SymExpr::CollectDerefs(outer, &skip, /*skip_self=*/true);
  ASSERT_EQ(skip.size(), 1u);
  EXPECT_TRUE(SymExpr::Equal(skip[0], inner));
}

TEST(SymExpr, TaintDetection) {
  SymRef taint = SymExpr::Taint(0x6C78, "recv");
  SymRef wrapped = SymAdd(SymExpr::Bin(BinOp::kAnd, taint,
                                       SymExpr::Const(0xFF)), 4);
  EXPECT_TRUE(wrapped->IsTainted());
  auto found = wrapped->FindTaint();
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->first, 0x6C78u);
  EXPECT_EQ(found->second, "recv");
  EXPECT_FALSE(SymExpr::Arg(0)->IsTainted());
}

TEST(SymExpr, ToStringMirrorsPaperNotation) {
  SymRef e = SymExpr::Deref(SymAdd(SymExpr::Arg(0), 0x4C));
  EXPECT_EQ(e->ToString(), "deref(arg0+0x4c)");
  EXPECT_EQ(SymAdd(SymExpr::Sp0(), -0x100)->ToString(), "SP-0x100");
  EXPECT_EQ(SymExpr::Ret(0x6C4C)->ToString(), "ret_{0x6c4c}");
  EXPECT_EQ(SymExpr::Taint(0x10, "recv")->ToString(),
            "taint(recv@0x10)");
  EXPECT_EQ(SymExpr::Deref(SymExpr::Arg(1), 1)->ToString(),
            "deref8(arg1)");
}

TEST(SymExpr, StripIndex) {
  SymRef buf = SymAdd(SymExpr::Sp0(), 0x10);
  SymRef idx = SymExpr::Deref(SymAdd(SymExpr::Sp0(), 0x14));
  SymRef walked = SymExpr::Bin(BinOp::kAdd, buf, idx);
  EXPECT_TRUE(SymExpr::Equal(StripIndex(walked), buf));
  EXPECT_TRUE(SymExpr::Equal(StripIndex(buf), buf));
}

TEST(SymExpr, DepthGrows) {
  SymRef e = SymExpr::Arg(0);
  int d0 = e->Depth();
  SymRef deeper = SymExpr::Deref(SymAdd(e, 4));
  EXPECT_GT(deeper->Depth(), d0);
}

TEST(RootPointer, StripsDerefsAndOffsets) {
  SymRef e = SymExpr::Deref(
      SymAdd(SymExpr::Deref(SymAdd(SymExpr::Arg(0), 0x58)), 0xEC));
  SymRef root = RootPointerOf(e);
  ASSERT_TRUE(root);
  EXPECT_EQ(root->kind(), SymKind::kArg);
  EXPECT_EQ(root->arg_index(), 0);
}

TEST(RootPointer, DescendsArrayWalks) {
  // deref(buf + i) with buf = Sp0+0x10: root is Sp0.
  SymRef buf = SymAdd(SymExpr::Sp0(), 0x10);
  SymRef idx = SymExpr::InitReg(5);
  SymRef e = SymExpr::Deref(SymExpr::Bin(BinOp::kAdd, buf, idx));
  EXPECT_EQ(RootPointerOf(e)->kind(), SymKind::kSp0);
}

TEST(DefPair, ToStringReadable) {
  DefPair dp;
  dp.d = SymExpr::Deref(SymAdd(SymExpr::Arg(0), 0x4C));
  dp.u = SymExpr::Taint(0x20, "recv");
  dp.site = 0x10010;
  EXPECT_EQ(dp.ToString(),
            "deref(arg0+0x4c) = taint(recv@0x20)  @0x10010");
}

TEST(PathConstraintFmt, NegatedForm) {
  PathConstraint c;
  c.op = BinOp::kCmpGe;
  c.lhs = SymExpr::Arg(0);
  c.rhs = SymExpr::Const(0x40);
  c.taken = false;
  c.site = 0x10;
  EXPECT_EQ(c.ToString(), "!(arg0 CmpGE 0x40)  @0x10");
}

TEST(EscapingDefs, FiltersByRoot) {
  FunctionSummary summary;
  DefPair escaping;
  escaping.d = SymExpr::Deref(SymAdd(SymExpr::Arg(0), 8));
  escaping.u = SymExpr::Const(1);
  DefPair local;
  local.d = SymExpr::Deref(SymAdd(SymExpr::Sp0(), -16));
  local.u = SymExpr::Const(2);
  DefPair heap;
  heap.d = SymExpr::Deref(SymExpr::Heap(99));
  heap.u = SymExpr::Const(3);
  summary.def_pairs = {escaping, local, heap};
  auto escaped = summary.EscapingDefs();
  ASSERT_EQ(escaped.size(), 2u);
  EXPECT_TRUE(SymExpr::Equal(escaped[0]->d, escaping.d));
  EXPECT_TRUE(SymExpr::Equal(escaped[1]->d, heap.d));
}

}  // namespace
}  // namespace dtaint
