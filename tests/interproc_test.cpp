#include <gtest/gtest.h>

#include "src/binary/writer.h"
#include "src/cfg/callgraph.h"
#include "src/cfg/cfg_builder.h"
#include "src/core/interproc.h"
#include "src/isa/asm_builder.h"

namespace dtaint {
namespace {

ProgramAnalysis RunAnalysis(const Binary& bin, InterprocConfig config = {}) {
  CfgBuilder builder(bin);
  Program program = builder.BuildProgram().value();
  SymEngine engine(bin);
  CallGraph graph = CallGraph::Build(program);
  return RunBottomUp(program, graph, engine, config);
}

/// The paper's Fig. 5/6/7 worked example: woo taints the buffer whose
/// pointer it parks in ctx+0x4C; foo copies through the alias into a
/// stack buffer via memcpy.
Binary FooWooBinary() {
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddImport("recv");
  writer.AddImport("memcpy");
  {
    FnBuilder b("woo");        // woo(ctx=r0, req=r1)
    b.LdrW(5, 1, 0x24);        // r5 = deref(arg1+0x24)
    b.StrW(5, 0, 0x4C);        // *(ctx+0x4C) = r5
    b.MovI(2, 0x200);
    b.MovR(1, 5);
    b.MovI(0, 3);
    b.Call("recv");            // taints *r5
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  {
    FnBuilder b("foo");        // foo(ctx=r0, req=r1)
    b.SubI(13, 13, 0x118);
    b.MovR(7, 0);              // save ctx
    b.Call("woo");
    b.LdrW(1, 7, 0x4C);        // src = *(ctx+0x4C) via the alias name
    b.AddI(0, 13, 0x18);       // dst = SP-0x100 (frame SP0-0x118+0x18)
    b.MovI(2, 0x80);
    b.Call("memcpy");
    b.AddI(13, 13, 0x118);
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  return writer.Build().value();
}

TEST(BottomUp, FooWooWorkedExample) {
  Binary bin = FooWooBinary();
  ProgramAnalysis analysis = RunAnalysis(bin);
  ASSERT_TRUE(analysis.summaries.count("foo"));
  const FunctionSummary& foo = analysis.summaries.at("foo");

  // woo's tainted definition arrived in foo, expressed through foo's
  // formals: deref(deref(arg1+0x24)) = taint (and, via Algorithm 1,
  // the alias twin deref(deref(arg0+0x4c)) = taint).
  bool direct = false, via_alias = false;
  for (const DefPair& dp : foo.def_pairs) {
    if (!dp.u || !dp.u->IsTainted()) continue;
    std::string d = dp.d->ToString();
    if (d == "deref(deref(arg1+0x24))") direct = true;
    if (d == "deref(deref(arg0+0x4c))") via_alias = true;
  }
  EXPECT_TRUE(direct);
  EXPECT_TRUE(via_alias);

  // The memcpy call sees the paper's Fig. 6 source argument.
  const CallEvent* memcpy_call = nullptr;
  for (const CallEvent& call : foo.calls) {
    if (call.callee == "memcpy") memcpy_call = &call;
  }
  ASSERT_NE(memcpy_call, nullptr);
  EXPECT_EQ(memcpy_call->args[1]->ToString(), "deref(arg0+0x4c)");
  EXPECT_EQ(memcpy_call->args[0]->ToString(), "SP-0x100");
}

TEST(BottomUp, AliasOffCanBeDisabled) {
  Binary bin = FooWooBinary();
  InterprocConfig config;
  config.apply_alias = false;
  ProgramAnalysis analysis = RunAnalysis(bin, config);
  const FunctionSummary& foo = analysis.summaries.at("foo");
  for (const DefPair& dp : foo.def_pairs) {
    if (dp.u && dp.u->IsTainted()) {
      EXPECT_NE(dp.d->ToString(), "deref(deref(arg0+0x4c))");
    }
  }
  EXPECT_EQ(analysis.stats.alias_pairs_added, 0u);
}

TEST(BottomUp, EachFunctionProcessedOnce) {
  Binary bin = FooWooBinary();
  ProgramAnalysis analysis = RunAnalysis(bin);
  EXPECT_EQ(analysis.stats.functions_processed, 2u);
  EXPECT_GT(analysis.stats.defs_propagated, 0u);
}

TEST(BottomUp, RetValueReplaced) {
  BinaryWriter writer(Arch::kDtArm, "t");
  {
    FnBuilder b("get_arg");   // returns its first argument
    b.Ret();                  // r0 already holds arg0
    writer.AddFunction(std::move(b).Finish().value());
  }
  {
    FnBuilder b("caller");
    b.MovR(0, 4);             // pass init_r4
    b.Call("get_arg");
    b.StrW(0, 13, 0);         // park the "returned" value
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  ProgramAnalysis analysis = RunAnalysis(writer.Build().value());
  const FunctionSummary& caller = analysis.summaries.at("caller");
  bool replaced = false;
  for (const DefPair& dp : caller.def_pairs) {
    if (dp.d->ToString() == "deref(SP)" &&
        dp.u->ToString() == "init_r4") {
      replaced = true;
    }
  }
  EXPECT_TRUE(replaced);
  EXPECT_GT(analysis.stats.rets_replaced, 0u);
}

TEST(BottomUp, ListingOneHeapIdentities) {
  // Paper Listing 1: x = B(); y = B(); with B returning malloc —
  // the two callsites must yield distinct heap objects.
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddImport("malloc");
  {
    FnBuilder b("B");
    b.MovI(0, 4);
    b.Call("malloc");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  {
    FnBuilder b("A");
    b.SubI(13, 13, 0x10);
    b.Call("B");
    b.MovR(4, 0);
    b.Call("B");
    b.MovR(5, 0);
    b.StrW(4, 13, 0);
    b.StrW(5, 13, 4);
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  ProgramAnalysis analysis = RunAnalysis(writer.Build().value());
  const FunctionSummary& a = analysis.summaries.at("A");
  SymRef x, y;
  for (const DefPair& dp : a.def_pairs) {
    if (dp.d->ToString() == "deref(SP-0x10)") x = dp.u;
    if (dp.d->ToString() == "deref(SP-0xc)") y = dp.u;
  }
  ASSERT_TRUE(x);
  ASSERT_TRUE(y);
  EXPECT_EQ(x->kind(), SymKind::kHeap);
  EXPECT_EQ(y->kind(), SymKind::kHeap);
  EXPECT_NE(x->heap_id(), y->heap_id());
}

TEST(BottomUp, UndefinedUsesForwardToCallers) {
  // Callee reads deref(arg0+8) without defining it; the caller passes
  // a stack struct; the lifted use must appear in the caller's list.
  BinaryWriter writer(Arch::kDtArm, "t");
  {
    FnBuilder b("reader");
    b.LdrW(5, 0, 8);
    b.MovR(0, 5);
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  {
    FnBuilder b("caller");
    b.SubI(13, 13, 0x20);
    b.MovR(0, 13);
    b.Call("reader");
    b.AddI(13, 13, 0x20);
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  ProgramAnalysis analysis = RunAnalysis(writer.Build().value());
  const FunctionSummary& caller = analysis.summaries.at("caller");
  bool forwarded = false;
  for (const UseRecord& use : caller.undefined_uses) {
    if (use.u->ToString() == "deref(SP-0x18)") forwarded = true;
  }
  EXPECT_TRUE(forwarded);
  EXPECT_GT(analysis.stats.uses_forwarded, 0u);
}

TEST(BottomUp, MutualRecursionTerminates) {
  BinaryWriter writer(Arch::kDtArm, "t");
  {
    FnBuilder b("ping");
    b.CmpI(0, 0);
    b.Beq("done");
    b.SubI(0, 0, 1);
    b.Call("pong");
    b.Label("done");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  {
    FnBuilder b("pong");
    b.Call("ping");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  ProgramAnalysis analysis = RunAnalysis(writer.Build().value());
  EXPECT_EQ(analysis.stats.functions_processed, 2u);
}

TEST(BottomUp, ImportCapBoundsWork) {
  // max_imported_per_callsite truncates pathological fan-in.
  BinaryWriter writer(Arch::kDtArm, "t");
  {
    FnBuilder b("many_defs");
    for (int i = 0; i < 20; ++i) b.StrW(1, 0, i * 4);
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  {
    FnBuilder b("caller");
    b.Call("many_defs");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  InterprocConfig config;
  config.max_imported_per_callsite = 5;
  ProgramAnalysis analysis = RunAnalysis(writer.Build().value(), config);
  EXPECT_EQ(analysis.stats.defs_propagated, 5u);
}

}  // namespace
}  // namespace dtaint
