// Tests of the DTaint facade: configuration toggles, the function
// focus filter, parallel analysis equivalence, and report bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/dtaint.h"
#include "src/report/scoring.h"
#include "src/synth/firmware_synth.h"

namespace dtaint {
namespace {

SynthOutput MixedProgram(uint64_t seed = 21) {
  ProgramSpec spec;
  spec.name = "facade";
  spec.arch = Arch::kDtArm;
  spec.seed = seed;
  spec.filler_functions = 40;
  auto plant = [](const char* id, VulnPattern pattern, const char* source,
                  const char* sink, bool sanitized = false) {
    PlantSpec p;
    p.id = id;
    p.pattern = pattern;
    p.source = source;
    p.sink = sink;
    p.sanitized = sanitized;
    return p;
  };
  spec.plants = {
      plant("f1", VulnPattern::kDirect, "getenv", "system"),
      plant("f2", VulnPattern::kWrapper, "recv", "strcpy"),
      plant("f3", VulnPattern::kDispatch, "recv", "memcpy"),
      plant("f4", VulnPattern::kDirect, "getenv", "system", true),
  };
  return std::move(*SynthesizeBinary(spec));
}

TEST(Facade, ReportShapeBookkeeping) {
  SynthOutput out = MixedProgram();
  DTaint detector;
  auto report = detector.Analyze(out.binary);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->binary_name, "facade");
  EXPECT_EQ(report->functions, out.binary.symbols.size());
  EXPECT_EQ(report->analyzed_functions, report->functions);
  EXPECT_GT(report->blocks, 0u);
  EXPECT_GT(report->sink_count, 0u);
  EXPECT_GE(report->total_paths, report->vulnerable_paths);
  EXPECT_GT(report->ssa_seconds, 0.0);
  EXPECT_GE(report->total_seconds,
            report->ssa_seconds);
  EXPECT_EQ(report->findings.size(), report->vulnerable_paths);
  EXPECT_GT(report->interproc_stats.functions_processed, 0u);
  EXPECT_EQ(report->indirect_calls_resolved, 1u);  // the dispatch plant
}

TEST(Facade, FocusFilterRestrictsAnalysis) {
  SynthOutput out = MixedProgram();
  DTaint detector;
  auto full = detector.Analyze(out.binary);
  auto focused = detector.AnalyzeFunctions(out.binary, {"f1_handler"});
  ASSERT_TRUE(focused.ok());
  EXPECT_LT(focused->analyzed_functions, full->analyzed_functions);
  // The focused handler's bug is still found.
  bool found = false;
  for (const Finding& f : focused->findings) {
    if (f.path.sink_function == "f1_handler") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Facade, FocusKeepsAddressTakenTargets) {
  // Focusing on the dispatch entry must keep the address-taken impl
  // alive or the indirect edge cannot be resolved.
  SynthOutput out = MixedProgram();
  DTaint detector;
  auto focused = detector.AnalyzeFunctions(out.binary, {"f3_entry"});
  ASSERT_TRUE(focused.ok());
  bool found = false;
  for (const Finding& f : focused->findings) {
    if (f.path.sink_function == "f3_impl") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Facade, UnknownFocusFunctionYieldsEmptyAnalysis) {
  SynthOutput out = MixedProgram();
  DTaint detector;
  auto report = detector.AnalyzeFunctions(out.binary, {"no_such_fn"});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->findings.size(), 0u);
}

TEST(Facade, ParallelAnalysisMatchesSequential) {
  SynthOutput out = MixedProgram();
  DTaintConfig seq_config;
  seq_config.interproc.num_threads = 1;
  DTaintConfig par_config;
  par_config.interproc.num_threads = 4;

  auto seq = DTaint(seq_config).Analyze(out.binary);
  auto par = DTaint(par_config).Analyze(out.binary);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(seq->vulnerable_paths, par->vulnerable_paths);
  EXPECT_EQ(seq->total_paths, par->total_paths);
  EXPECT_EQ(seq->sink_count, par->sink_count);

  auto key = [](const Finding& f) {
    return f.path.sink_function + "|" + f.path.sink_name + "|" +
           f.path.source_name;
  };
  std::vector<std::string> a, b;
  for (const Finding& f : seq->findings) a.push_back(key(f));
  for (const Finding& f : par->findings) b.push_back(key(f));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(Facade, TogglesChangeDetection) {
  SynthOutput out = MixedProgram();
  DTaintConfig off;
  off.enable_structsim = false;
  auto with = DTaint().Analyze(out.binary);
  auto without = DTaint(off).Analyze(out.binary);
  DetectionScore score_with =
      ScoreFindings(with->findings, out.ground_truth);
  DetectionScore score_without =
      ScoreFindings(without->findings, out.ground_truth);
  EXPECT_GT(score_with.true_positives, score_without.true_positives);
  EXPECT_EQ(without->indirect_calls_resolved, 0u);
}

TEST(Facade, EngineBudgetsRespected) {
  SynthOutput out = MixedProgram();
  DTaintConfig tiny;
  tiny.engine.max_paths = 1;
  tiny.engine.max_block_visits = 8;
  auto report = DTaint(tiny).Analyze(out.binary);
  ASSERT_TRUE(report.ok());  // degrades, never crashes
}

TEST(Facade, DeterministicAcrossRuns) {
  SynthOutput out = MixedProgram();
  auto a = DTaint().Analyze(out.binary);
  auto b = DTaint().Analyze(out.binary);
  EXPECT_EQ(a->vulnerable_paths, b->vulnerable_paths);
  EXPECT_EQ(a->total_paths, b->total_paths);
}

}  // namespace
}  // namespace dtaint
